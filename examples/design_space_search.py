"""Sweep a multi-dimensional cluster design space and read its frontier.

The paper sweeps one axis — Beefy/Wimpy mixes of an 8-node cluster
(Section 5.4).  This example uses :class:`repro.DesignSpaceSearch` to
sweep a much larger space in one shot:

* cluster sizes 6..16 nodes,
* every Beefy/Wimpy split of each size,
* three cluster-wide DVFS states (100%, 80%, 60% clock),

for the Section 5.4 join (700 GB ORDERS x 2.8 TB LINEITEM), then extracts
the Pareto frontier, the knee, the EDP optimum, and the cheapest design
under a response-time SLA.  A second sweep demonstrates the evaluation
cache: zero new model evaluations.

The final section goes adaptive: on the same 216-design space, a seeded
successive-halving optimizer recovers a nightly suite's exhaustive knee
with roughly a third of the grid's fresh evaluations — the path to
design spaces too large to enumerate at all.

Run:  python examples/design_space_search.py
"""

from repro import (
    CLUSTER_V_NODE,
    WIMPY_LAPTOP_B,
    DesignGrid,
    DesignSpaceSearch,
    EvaluationCache,
    ModelEvaluator,
    Study,
    q3_join,
    section54_join,
)
from repro.analysis.export import frontier_to_csv
from repro.workloads.suite import WorkloadSuite

query = section54_join()  # ORDERS 10% selectivity, LINEITEM 1%

grid = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(6, 8, 10, 12, 14, 16),
    frequency_factors=(1.0, 0.8, 0.6),
)
print(f"Design space: {len(grid)} candidate designs")

cache = EvaluationCache()
search = DesignSpaceSearch(evaluator=ModelEvaluator(), workers=2, cache=cache)
result = search.search(grid, query)

feasible = result.feasible_points
print(
    f"Evaluated {result.evaluations} designs on {result.workers_used} workers: "
    f"{len(feasible)} feasible, {len(result.infeasible_points)} infeasible"
)

frontier = result.pareto_frontier()
print(f"\nPareto frontier ({len(frontier)} designs, fastest first):")
for point in frontier[:10]:
    print(f"  {point.label:24s}  {point.time_s:9.1f} s  {point.energy_j / 1e6:8.2f} MJ")
if len(frontier) > 10:
    print(f"  ... and {len(frontier) - 10} more")

knee = result.knee()
edp_best = result.edp_optimal()
print(f"\nKnee of the frontier: {knee.label} ({knee.time_s:.1f} s)")
print(f"EDP-optimal design:   {edp_best.label} ({edp_best.edp:.3g} J*s)")

# SLA-constrained selection: cheapest design within 40% of the fastest.
fastest = min(p.time_s for p in feasible)
sla = 1.4 * fastest
winner = result.best_under_sla(sla)
print(
    f"\nBest design under a {sla:.0f} s SLA: {winner.label} "
    f"({winner.time_s:.1f} s, {winner.energy_j / 1e6:.2f} MJ)"
)

# The cache makes a repeated sweep free.
again = search.search(grid, query)
print(
    f"\nRe-sweep: {again.evaluations} new evaluations, "
    f"{again.cache_hits} cache hits (hit rate {cache.stats.hit_rate:.0%})"
)

csv_text = frontier_to_csv(result)
print(f"\nFrontier CSV export: {len(csv_text.splitlines()) - 1} rows")

# ---------------------------------------------------------------- adaptive
# The same space, searched adaptively: successive halving races every
# design on a cheap one-entry rung of a 4-query nightly suite, promotes
# Pareto-ranked survivors to ever-larger entry prefixes, and recovers the
# exhaustive knee for a fraction of the evaluations.
nightly = WorkloadSuite.of(
    "nightly", *[q3_join(100, 0.01 * (i + 1), 0.05) for i in range(4)]
)
study = Study(grid).with_workload(nightly)
optimized = study.optimize(optimizer="successive-halving", seed=0)
exhaustive = study.run()  # warmed by the optimizer: only the rest is fresh

grid_cost = optimized.fresh_query_evaluations + exhaustive.search.query_evaluations
print(
    f"\nAdaptive search ({optimized.optimizer_name}, seed 0) on the "
    f"nightly suite:"
)
for point in optimized.trajectory:
    print(
        f"  rung {point.rung}: {point.candidates:3d} designs at "
        f"{point.fidelity:.0%} fidelity, "
        f"{point.fresh_query_evaluations:3d} evaluations so far"
    )
print(
    f"  knee {optimized.knee().label} == exhaustive knee "
    f"{exhaustive.knee().label}: "
    f"{optimized.knee().label == exhaustive.knee().label}"
)
print(
    f"  {optimized.fresh_query_evaluations} of {grid_cost} fresh "
    f"evaluations "
    f"({optimized.fresh_query_evaluations / grid_cost:.0%} of the grid cost)"
)
