"""Quickstart: explore the energy/performance trade-off of a cluster design.

This walks the paper's core loop in ~40 lines:

1. describe a parallel hash-join workload (tables, selectivities),
2. run a Study over the Beefy/Wimpy designs with the analytical model,
3. look at the normalized energy-vs-performance curve and the EDP line,
4. pick the best design for a performance target.

Run:  python examples/quickstart.py
"""

from repro import CLUSTER_V_NODE, WIMPY_LAPTOP_B, DesignSpaceExplorer, HashJoinQuery, Study
from repro.analysis.report import render_normalized_curve

# The Section 5.4 join: a 700 GB ORDERS table (10% of tuples pass the
# predicate) joined against a 2.8 TB LINEITEM table (1% pass).
query = HashJoinQuery(
    name="orders-x-lineitem",
    build_volume_mb=700_000.0,
    probe_volume_mb=2_800_000.0,
    build_selectivity=0.10,
    probe_selectivity=0.01,
)

# An 8-node cluster that can mix traditional Xeon servers ("Beefy") with
# low-power laptops-as-servers ("Wimpy").
explorer = DesignSpaceExplorer(
    beefy=CLUSTER_V_NODE, wimpy=WIMPY_LAPTOP_B, cluster_size=8
)

# A Study is the one entry point: the same two lines price a single join,
# a weighted WorkloadSuite, or an arrival-trace mix over the space.
curve = Study(explorer).with_workload(query).run().curve()
print(render_normalized_curve("8-node designs, normalized to all-Beefy", curve.normalized()))
print()

below = curve.below_edp_points()
print(f"{len(below)} designs beat the constant-EDP trade-off:")
for point in below:
    print(
        f"  {point.label}: {1 - point.energy:.0%} energy saved for "
        f"{1 - point.performance:.0%} performance lost"
    )
print()

# "We can tolerate a 30% slowdown" -> which design minimizes energy?
best = curve.best_design(target_performance=0.70)
norm = curve.normalized_point(best.label)
print(
    f"Best design at a 0.70 performance target: {best.label} "
    f"(energy ratio {norm.energy:.2f}, performance ratio {norm.performance:.2f})"
)
