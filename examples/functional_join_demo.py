"""Functional P-store: actually execute a parallel join on real tuples.

Generates a synthetic TPC-H pair (ORDERS, LINEITEM), places it on four
virtual nodes with the paper's partition-incompatible layout (ORDERS hashed
on O_CUSTKEY, LINEITEM on L_SHIPDATE), then runs the TPC-H Q3 join both
ways — dual shuffle and broadcast — and verifies against a single-node
reference join.  The exchange statistics show the (n-1)/n shuffle fraction
and the (n-1)x broadcast blow-up that drive every energy result in the
paper.

Run:  python examples/functional_join_demo.py
"""

from repro.analysis.report import render_table
from repro.pstore.catalog import PartitionScheme
from repro.pstore.functional import FunctionalCluster
from repro.pstore.operators.hashjoin import hash_join_batches
from repro.pstore.storage import PartitionedStore
from repro.workloads import datagen

NUM_NODES = 4
SCALE_FACTOR = 0.01  # 15,000 orders, ~60,000 lineitems

orders, lineitem = datagen.generate_join_pair(SCALE_FACTOR, seed=42)
print(f"generated {orders.num_rows} ORDERS and {lineitem.num_rows} LINEITEM rows")

# Partition-incompatible placement (Section 4.3): neither table is
# partitioned on the ORDERKEY join attribute.
orders_parts = PartitionedStore(
    "orders", orders, PartitionScheme.hash("o_custkey"), NUM_NODES
).partitions()
lineitem_parts = PartitionedStore(
    "lineitem", lineitem, PartitionScheme.hash("l_shipdate"), NUM_NODES
).partitions()

# Q3-style predicates: ~5% of each table qualifies.
cutoff = datagen.date_cutoff_for_selectivity(0.05)
orders_predicate = lambda b: b.column("o_orderdate") < cutoff  # noqa: E731
lineitem_predicate = lambda b: b.column("l_shipdate") < cutoff  # noqa: E731

cluster = FunctionalCluster(NUM_NODES)
shuffle = cluster.shuffle_join(
    orders_parts, lineitem_parts,
    build_key="o_orderkey", probe_key="l_orderkey",
    build_predicate=orders_predicate, probe_predicate=lineitem_predicate,
)
broadcast = cluster.broadcast_join(
    orders_parts, lineitem_parts,
    build_key="o_orderkey", probe_key="l_orderkey",
    build_predicate=orders_predicate, probe_predicate=lineitem_predicate,
)

# Single-node reference answer.
reference = hash_join_batches(
    orders.filter(orders_predicate(orders)),
    lineitem.filter(lineitem_predicate(lineitem)),
    key="o_orderkey",
    probe_key="l_orderkey",
)

print(
    render_table(
        ("plan", "result rows", "build rows over network", "probe rows over network"),
        [
            ("dual shuffle", shuffle.total_rows,
             shuffle.build_stats.rows_sent, shuffle.probe_stats.rows_sent),
            ("broadcast", broadcast.total_rows,
             broadcast.build_stats.rows_sent, broadcast.probe_stats.rows_sent),
            ("single-node reference", reference.num_rows, "-", "-"),
        ],
        title="TPC-H Q3 join on 4 virtual nodes (5% selectivity both sides)",
    )
)

assert shuffle.total_rows == reference.num_rows, "shuffle join disagrees!"
assert broadcast.total_rows == reference.num_rows, "broadcast join disagrees!"
print("\nboth parallel plans match the reference join ✓")
print(
    f"shuffle moved {shuffle.build_stats.network_fraction:.0%} of qualifying "
    f"build rows over the network (theory: {(NUM_NODES - 1) / NUM_NODES:.0%}); "
    f"broadcast moved {NUM_NODES - 1} copies of every qualifying build row."
)
