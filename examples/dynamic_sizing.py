"""Dynamic cluster sizing: replicas + power states around a bottlenecked join.

Combines three pieces the paper points at but leaves to future work:

1. **replication** (chained declustering) lets a query run on fewer nodes
   without repartitioning — the inactive nodes' partitions are served by
   replicas on the survivors;
2. **power-state costs** decide whether the inactive nodes are worth
   actually powering off (boot/shutdown cycles cost time and energy);
3. the **simulator** prices the shrunk configuration, including the load
   imbalance the replica assignment induces.

Run:  python examples/dynamic_sizing.py
"""

from repro import ClusterSpec, CLUSTER_V_NODE
from repro.analysis.report import render_table
from repro.hardware.powerstate import (
    TRADITIONAL_SERVER,
    downsizing_break_even_s,
    downsizing_net_energy_j,
)
from repro.pstore import PStore, PStoreConfig
from repro.pstore.replication import ReplicatedLayout
from repro.workloads.queries import q3_join

WORKLOAD = q3_join(scale_factor=1000, build_selectivity=0.05, probe_selectivity=0.05)
LAYOUT = ReplicatedLayout(num_nodes=8, num_partitions=16, replication_factor=2)
CONFIG = PStoreConfig(warm_cache=True)

rows = []
baseline = None
for active_count in (8, 6, 5, 4):
    active = LAYOUT.choose_active_nodes(active_count)
    weights = LAYOUT.load_weights(active)
    engine = PStore(
        ClusterSpec.homogeneous(CLUSTER_V_NODE, active_count, name=f"{active_count}N"),
        config=CONFIG,
        record_intervals=False,
    )
    result = engine.simulate(WORKLOAD, partition_weights=weights)
    if baseline is None:
        baseline = result
    rows.append(
        (
            f"{active_count} of 8",
            f"{max(weights):.2f}x",
            f"{result.makespan_s:.1f}",
            f"{baseline.makespan_s / result.makespan_s:.2f}",
            f"{1 - result.energy_j / baseline.energy_j:+.1%}",
        )
    )

print(
    render_table(
        ("active nodes", "hottest node load", "time (s)", "perf ratio",
         "query energy saving"),
        rows,
        title="Replica-served downsizing of a network-bound shuffle join",
    )
)
print()

break_even = downsizing_break_even_s(CLUSTER_V_NODE, model=TRADITIONAL_SERVER)
print(
    f"Powering an idle cluster-V node off pays for its boot/shutdown cycle "
    f"after ~{break_even / 60:.1f} minutes of idleness."
)
for hours in (0.05, 0.5, 4.0):
    net = downsizing_net_energy_j(
        CLUSTER_V_NODE, idle_nodes=4, off_duration_s=hours * 3600
    )
    verdict = "saves" if net > 0 else "wastes"
    print(
        f"  turning 4 nodes off for {hours:g} h {verdict} "
        f"{abs(net) / 1000:.0f} kJ net"
    )
