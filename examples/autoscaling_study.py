"""Autoscaling study: search (design x control policy) jointly.

Static provisioning answers "how many nodes, which kind?" once, and
then burns idle power all through the quiet hours.  A *control policy*
changes the answer over time: power-gate the wimpy nodes when the
cluster has sat idle, wake them when work arrives — trading a wake-up
latency hit for the idle energy.  This example makes the (design,
policy) pair the searched object: a ``SearchSpace`` built with
``policies=`` crosses every cluster design with every candidate policy,
and ``Study.optimize`` explores the joint space on a diurnal trace.

Run:  python examples/autoscaling_study.py
"""

from repro import (
    CLUSTER_V_NODE,
    WIMPY_LAPTOP_B,
    DesignGrid,
    PowerGatePolicy,
    PowerStateModel,
    SearchSpace,
    SimulatorEvaluator,
    StaticPolicy,
    Study,
    TimedTrace,
)
from repro.workloads.arrivals import diurnal_arrivals
from repro.workloads.queries import q3_join

# ------------------------------------------------------------------ workload
# A few diurnal days in miniature: the arrival rate swings sinusoidally
# from a near-silent trough to a busy peak every 120 s.  Individual joins
# take ~1-2 s on these designs, so the troughs are long stretches of
# genuine idleness — the window gating exploits.
query = q3_join(100, 0.05, 0.05)
schedule = diurnal_arrivals(
    45,
    base_rate_per_s=0.002,
    peak_rate_per_s=0.25,
    period_s=120.0,
    seed=7,
)
trace = TimedTrace.from_schedule("diurnal-day", query, schedule)
print(
    f"Trace: {len(schedule)} arrivals over {schedule[-1]:.0f} s "
    f"({schedule[-1] / 120.0:.1f} diurnal cycles)"
)

# ------------------------------------------------------- designs x policies
grid = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(4, 6, 8),
)

# Second-scale power-state transitions (fast-sleep hardware): gating costs
# a 0.2 s boot on the next arrival and the gated nodes still leak 5% of
# their idle power.
transitions = PowerStateModel(
    shutdown_s=0.1,
    boot_s=0.2,
    transition_power_fraction=0.5,
    gated_power_fraction=0.05,
)
policies = (
    StaticPolicy(),  # the always-on baseline, searched on equal footing
    PowerGatePolicy(min_idle_s=2.0, transitions=transitions),
    PowerGatePolicy(min_idle_s=6.0, transitions=transitions),
)
space = SearchSpace.from_grid(grid, policies=policies, control_interval_s=0.5)
print(f"Joint space: {len(grid)} designs x {len(policies)} policies")

# ----------------------------------------------------------------- optimize
# The budget is in per-arrival evaluations (one trace replay on one
# candidate costs len(schedule)), so 1500 covers ~33 candidates.
study = Study(space).with_workload(trace).with_evaluator(SimulatorEvaluator())
result = study.optimize(budget=1500, optimizer="random", seed=0, batch_size=9)
print(f"Evaluated {result.evaluations} (design, policy) candidates")

print("\nPareto frontier (fastest first):")
for point in result.pareto_frontier()[:8]:
    gated = point.gated_node_seconds or 0.0
    print(
        f"  {point.label:28s}  {point.energy_j / 1e3:7.1f} kJ  "
        f"p99 {point.latency.p99_s:6.2f} s  gated {gated:7.1f} node-s"
    )

# -------------------------------------------------- energy at an equal SLA
# The fair comparison: hold the latency requirement fixed at what the best
# *static* candidate achieves, then ask what the best *dynamic* candidate
# costs under that same requirement.
static_points = [p for p in result.feasible_points if p.policy == "static"]
dynamic_points = [p for p in result.feasible_points if p.policy != "static"]
best_static = min(static_points, key=lambda p: p.energy_j)
sla_s = best_static.latency.p99_s
meeting = [p for p in dynamic_points if p.latency.p99_s <= sla_s]
if meeting:
    best_dynamic = min(meeting, key=lambda p: p.energy_j)
    saved = best_static.energy_j - best_dynamic.energy_j
    print(f"\nAt the static p99 SLA of {sla_s:.2f} s:")
    print(
        f"  best static   {best_static.label:28s} "
        f"{best_static.energy_j / 1e3:7.1f} kJ"
    )
    print(
        f"  best dynamic  {best_dynamic.label:28s} "
        f"{best_dynamic.energy_j / 1e3:7.1f} kJ"
    )
    print(
        f"  gating saves {saved / 1e3:.1f} kJ "
        f"({100 * saved / best_static.energy_j:.1f}%) at equal p99"
    )
else:
    print("\nNo dynamic candidate met the static SLA under this budget.")
