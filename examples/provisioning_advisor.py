"""Provisioning advisor: apply the paper's design principles to an SLA.

Scenario: a nightly reporting workload runs a large repartitioning join.
The SLA tolerates a 40% slowdown relative to the full 8-server cluster.
Should we (a) keep all servers, (b) power a subset, or (c) swap servers
for low-power nodes?  This is Figure 12 as a decision tool.

Run:  python examples/provisioning_advisor.py
"""

from repro import CLUSTER_V_NODE, WIMPY_LAPTOP_B, recommend_design
from repro.core.design_space import DesignSpaceExplorer
from repro.pstore.plans import ExecutionMode
from repro.workloads.queries import section54_join

TARGET = 0.60  # normalized performance floor from the SLA

explorer = DesignSpaceExplorer(
    CLUSTER_V_NODE, WIMPY_LAPTOP_B, cluster_size=8, strict_paper_conditions=True
)

SCENARIOS = {
    "highly selective scan-heavy query (scales ideally)": section54_join(0.01, 0.01),
    "repartitioning join, selective probe (bottlenecked)": section54_join(0.10, 0.02),
}

for description, workload in SCENARIOS.items():
    print(f"--- {description} ---")
    homo = explorer.sweep_sizes(
        workload, sizes=(8, 6, 4, 2), mode=ExecutionMode.HOMOGENEOUS
    )
    try:
        hetero = explorer.sweep(workload)
    except Exception:
        hetero = None
    recommendation = recommend_design(
        homo, target_performance=TARGET, heterogeneous_curve=hetero
    )
    print(f"principle: {recommendation.principle.value}")
    print(f"recommended design: {recommendation.design.label}")
    print(
        f"expected: {recommendation.normalized_performance:.0%} of full-cluster "
        f"performance at {recommendation.normalized_energy:.0%} of its energy"
    )
    print(f"why: {recommendation.rationale}")
    print()
