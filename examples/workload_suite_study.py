"""Workload-suite study: designing for a whole nightly batch, not one query.

The paper's future-work: "expand the study to include entire workloads".
This example prices a weighted mix of three reports — a scalable scan, a
moderately bottlenecked join, and a heavily repartitioning join — across
all Beefy/Wimpy designs of an 8-node cluster, and picks a design for a 30%
acceptable slowdown.

Run:  python examples/workload_suite_study.py
"""

from repro import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.analysis.report import render_normalized_curve
from repro.core.design_space import DesignSpaceExplorer
from repro.workloads.queries import JoinWorkloadSpec
from repro.workloads.suite import SuiteEntry, WorkloadSuite, suite_tradeoff_curve


def report(name, build_sel, probe_sel, weight):
    return SuiteEntry(
        JoinWorkloadSpec(
            name=name,
            build_volume_mb=700_000.0,
            probe_volume_mb=2_800_000.0,
            build_selectivity=build_sel,
            probe_selectivity=probe_sel,
        ),
        weight=weight,
    )


SUITE = WorkloadSuite(
    name="nightly-batch",
    entries=(
        report("daily-scan-report", 0.01, 0.01, weight=5.0),   # scalable, frequent
        report("weekly-rollup", 0.01, 0.10, weight=2.0),       # network-bound probe
        report("quarterly-reparth", 0.10, 0.02, weight=1.0),   # heterogeneous-mode
    ),
)

explorer = DesignSpaceExplorer(CLUSTER_V_NODE, WIMPY_LAPTOP_B, cluster_size=8)
curve = suite_tradeoff_curve(SUITE, explorer)

print(
    render_normalized_curve(
        f"suite '{SUITE.name}' across 8-node designs (vs all-Beefy)",
        curve.normalized(),
    )
)
print()

for target in (0.9, 0.7, 0.5):
    try:
        best = curve.best_design(target_performance=target)
        norm = curve.normalized_point(best.label)
        print(
            f"target {target:.0%} performance -> {best.label}: "
            f"energy {norm.energy:.2f}, performance {norm.performance:.2f}"
        )
    except Exception as error:  # pragma: no cover - illustrative
        print(f"target {target:.0%}: {error}")
