"""Workload-suite study: designing for a whole nightly batch, not one query.

The paper's future-work: "expand the study to include entire workloads".
This example prices a weighted mix of three reports — a scalable scan, a
moderately bottlenecked join, and a heavily repartitioning join — across
all Beefy/Wimpy designs of an 8-node cluster through the ``Study`` facade
(so the suite gets the memoized search engine, the Pareto selections,
*and* the normalized-curve analyses), and picks a design for a 30%
acceptable slowdown.

Run:  python examples/workload_suite_study.py
"""

from repro import CLUSTER_V_NODE, WIMPY_LAPTOP_B, Study
from repro.analysis.report import render_normalized_curve
from repro.core.design_space import DesignSpaceExplorer
from repro.workloads.queries import JoinWorkloadSpec
from repro.workloads.suite import SuiteEntry, WorkloadSuite


def report(name, build_sel, probe_sel, weight):
    return SuiteEntry(
        JoinWorkloadSpec(
            name=name,
            build_volume_mb=700_000.0,
            probe_volume_mb=2_800_000.0,
            build_selectivity=build_sel,
            probe_selectivity=probe_sel,
        ),
        weight=weight,
    )


SUITE = WorkloadSuite(
    name="nightly-batch",
    entries=(
        report("daily-scan-report", 0.01, 0.01, weight=5.0),   # scalable, frequent
        report("weekly-rollup", 0.01, 0.10, weight=2.0),       # network-bound probe
        report("quarterly-reparth", 0.10, 0.02, weight=1.0),   # heterogeneous-mode
    ),
)

explorer = DesignSpaceExplorer(CLUSTER_V_NODE, WIMPY_LAPTOP_B, cluster_size=8)
result = Study(explorer).with_workload(SUITE).run()
curve = result.curve()

print(
    render_normalized_curve(
        f"suite '{SUITE.name}' across 8-node designs (vs all-Beefy)",
        curve.normalized(),
    )
)
print()

# Suites now run through the search engine, so the raw-frontier selections
# apply to whole workloads too.
frontier = result.pareto_frontier()
print(f"Pareto frontier: {[p.label for p in frontier]}")
print(f"Knee of the frontier: {result.knee().label}")
print(f"EDP-optimal design:   {result.edp_optimal().label}")
print()

for target in (0.9, 0.7, 0.5):
    try:
        best = curve.best_design(target_performance=target)
        norm = curve.normalized_point(best.label)
        print(
            f"target {target:.0%} performance -> {best.label}: "
            f"energy {norm.energy:.2f}, performance {norm.performance:.2f}"
        )
    except Exception as error:  # pragma: no cover - illustrative
        print(f"target {target:.0%}: {error}")
