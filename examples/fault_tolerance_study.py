"""Fault-tolerance study: pick a cluster design that survives failures.

The healthy-cluster knee is the wrong design to buy if nodes crash: a
tight design that wins on energy at full strength has no headroom when a
node drops out mid-burst, while a slightly larger design absorbs the
outage.  This example evaluates the same design grid twice — once on the
healthy diurnal trace, once under a nemesis schedule (a node crash during
the peak, a straggler after it) — and compares the design each SLA rule
selects.

Run:  python examples/fault_tolerance_study.py
"""

from repro import (
    CLUSTER_V_NODE,
    WIMPY_LAPTOP_B,
    DesignGrid,
    FailurePolicy,
    FaultSchedule,
    NodeCrash,
    PowerStateModel,
    SimulatorEvaluator,
    Straggler,
    Study,
    TimedTrace,
)
from repro.workloads.arrivals import diurnal_arrivals
from repro.workloads.queries import q3_join

# ------------------------------------------------------------------ workload
# One diurnal day in miniature: arrivals swing from a quiet trough to a
# busy peak every 120 s.  The fault schedule below is aimed at the peak,
# where losing a node hurts the most.
query = q3_join(100, 0.05, 0.05)
schedule = diurnal_arrivals(
    45,
    base_rate_per_s=0.002,
    peak_rate_per_s=0.25,
    period_s=120.0,
    seed=7,
)
trace = TimedTrace.from_schedule("diurnal-day", query, schedule)
print(
    f"Trace: {len(schedule)} arrivals over {schedule[-1]:.0f} s "
    f"({schedule[-1] / 120.0:.1f} diurnal cycles)"
)

# ------------------------------------------------------------------- faults
# The nemesis scenario: node 1 crashes just after a peak-hour arrival (so
# a query dies mid-flight on every design) and takes a while to come
# back; later, node 2 limps at 60% speed for a stretch.  Killed queries
# abort and retry with capped exponential backoff; the crashed node
# reboots like fast-sleep hardware.
transitions = PowerStateModel(
    shutdown_s=0.1,
    boot_s=5.0,
    transition_power_fraction=0.8,
    gated_power_fraction=0.05,
)
crash_at = schedule[len(schedule) // 3] + 0.1
faults = FaultSchedule(
    events=(
        NodeCrash(node=1, at_s=crash_at, recover_at_s=crash_at + 35.0),
        Straggler(node=2, at_s=crash_at + 45.0, slowdown=0.6, duration_s=40.0),
    ),
    name="peak-crash",
)
policy = FailurePolicy.abort_and_retry(backoff_base_s=1.0, transitions=transitions)
faulted = trace.with_faults(faults, failure_policy=policy)
print(f"Faults: {len(faults)} events ({faults.name})")

# ------------------------------------------------------------------- search
grid = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(4, 6, 8),
)
study = Study(grid).with_evaluator(SimulatorEvaluator())
healthy = study.with_workload(trace).run()
degraded = study.with_workload(faulted).run()
print(f"Evaluated {len(grid)} designs healthy and under faults")

print("\nHealthy vs degraded response (fastest first):")
for before, after in zip(healthy.feasible_points, degraded.feasible_points):
    print(
        f"  {before.label:20s}  p99 {before.latency.p99_s:6.2f} s healthy | "
        f"{after.degraded_latency.p99_s:6.2f} s degraded  "
        f"retries {after.retried_jobs}  "
        f"recovery {after.recovery_energy_j / 1e3:.1f} kJ"
    )

# ----------------------------------------------------- selection at one SLA
# Hold one p99 requirement fixed and ask both questions: which design is
# cheapest when everything works, and which is cheapest when the nemesis
# schedule plays out?  When the answers differ, the gap is the price of
# provisioning for failure.  The requirement is set with just enough
# headroom over the most robust design's degraded response that at least
# one design survives the nemesis inside it.
sla_s = 1.05 * min(p.degraded_latency.p99_s for p in degraded.feasible_points)
best_healthy = healthy.best_under_latency_sla(sla_s, metric="p99")
print(f"\nAt a p99 SLA of {sla_s:.2f} s:")
print(
    f"  healthy pick   {best_healthy.label:20s} "
    f"{best_healthy.energy_j / 1e3:7.1f} kJ"
)
try:
    best_degraded = degraded.best_under_degraded_sla(sla_s, metric="p99")
except Exception as exc:
    print(f"  no design meets the SLA under faults ({exc})")
else:
    print(
        f"  degraded pick  {best_degraded.label:20s} "
        f"{best_degraded.energy_j / 1e3:7.1f} kJ"
    )
    if best_degraded.label != best_healthy.label:
        extra = best_degraded.energy_j - best_healthy.energy_j
        print(
            f"  surviving the nemesis costs {extra / 1e3:.1f} kJ more "
            f"and a different design"
        )
    else:
        print("  the same design wins healthy and degraded")
