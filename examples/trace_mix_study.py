"""Trace-derived workload study: design for what actually arrives.

A day of query traffic is rarely a single join: it is a *stream* of
reports at different frequencies.  This example derives a weighted
workload mix straight from an arrival trace (Poisson-scheduled daily
reports interleaved with a periodic rollup), then searches a
multi-dimensional design space for it through the ``Study`` facade —
with the evaluation cache persisted to disk, so re-running this script
performs zero new model evaluations.

Run:  python examples/trace_mix_study.py
"""

from pathlib import Path

from repro import (
    CLUSTER_V_NODE,
    WIMPY_LAPTOP_B,
    ArrivalMix,
    DesignGrid,
    JoinWorkloadSpec,
    Study,
)
from repro.workloads.arrivals import periodic_arrivals, poisson_arrivals

daily_report = JoinWorkloadSpec(
    name="daily-report",
    build_volume_mb=700_000.0,
    probe_volume_mb=2_800_000.0,
    build_selectivity=0.01,
    probe_selectivity=0.01,
)
rollup = JoinWorkloadSpec(
    name="rollup",
    build_volume_mb=700_000.0,
    probe_volume_mb=2_800_000.0,
    build_selectivity=0.01,
    probe_selectivity=0.10,
)

# One simulated day: ~12 daily reports (Poisson) + 4 six-hourly rollups.
events = [(daily_report, t) for t in poisson_arrivals(12, rate_per_s=12 / 86_400)]
events += [(rollup, t) for t in periodic_arrivals(4, interval_s=21_600.0)]
events.sort(key=lambda event: event[1])

mix = ArrivalMix.from_trace("one-day-trace", events)
for query, weight in mix:
    print(f"  {query.name}: weight {weight:g}")

grid = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(6, 8, 10, 12),
    frequency_factors=(1.0, 0.8),
)
print(f"Design space: {len(grid)} candidates for mix '{mix.name}'")

# Per-user cache dir: /tmp is world-writable, and the cache deserializes
# its rows, so it must never be a path another user can pre-create.
cache_dir = Path.home() / ".cache" / "repro"
cache_dir.mkdir(parents=True, exist_ok=True)
cache_path = cache_dir / "trace-mix-cache.sqlite"
study = (
    Study(grid)
    .with_workload(mix)
    .with_workers(2)
    .with_cache(str(cache_path))
)

result = study.run()
print(
    f"Evaluated {result.evaluations} fresh designs "
    f"({result.cache_hits} served from {cache_path})"
)

print("\nPareto frontier (fastest first):")
for point in result.pareto_frontier()[:8]:
    print(
        f"  {point.label:18s}  {point.time_s:10.1f} weighted-s  "
        f"{point.energy_j / 1e6:8.2f} MJ"
    )

knee = result.knee()
print(f"\nKnee design for the whole day's mix: {knee.label}")
print(f"EDP-optimal: {result.edp_optimal().label}")

# Normalized Section 6 selection over the same result.
best = result.curve(reference_label=result.feasible_points[0].label).best_design(0.7)
print(f"Best design within 30% of the reference: {best.label}")
