"""Trace-derived workload study: design for what actually arrives.

A day of query traffic is rarely a single join: it is a *stream* of
reports at different frequencies.  This example derives a weighted
workload mix straight from an arrival trace (Poisson-scheduled daily
reports interleaved with a periodic rollup), then searches a
multi-dimensional design space for it through the ``Study`` facade —
with the evaluation cache persisted to disk, so re-running this script
performs zero new model evaluations.

Run:  python examples/trace_mix_study.py
"""

from pathlib import Path

from repro import (
    CLUSTER_V_NODE,
    WIMPY_LAPTOP_B,
    ArrivalMix,
    DesignGrid,
    JoinWorkloadSpec,
    SimulatorEvaluator,
    Study,
    TimedTrace,
)
from repro.workloads.arrivals import periodic_arrivals, poisson_arrivals

daily_report = JoinWorkloadSpec(
    name="daily-report",
    build_volume_mb=700_000.0,
    probe_volume_mb=2_800_000.0,
    build_selectivity=0.01,
    probe_selectivity=0.01,
)
rollup = JoinWorkloadSpec(
    name="rollup",
    build_volume_mb=700_000.0,
    probe_volume_mb=2_800_000.0,
    build_selectivity=0.01,
    probe_selectivity=0.10,
)

# One simulated day: ~12 daily reports (Poisson) + 4 six-hourly rollups.
events = [(daily_report, t) for t in poisson_arrivals(12, rate_per_s=12 / 86_400)]
events += [(rollup, t) for t in periodic_arrivals(4, interval_s=21_600.0)]
events.sort(key=lambda event: event[1])

mix = ArrivalMix.from_trace("one-day-trace", events)
for query, weight in mix:
    print(f"  {query.name}: weight {weight:g}")

grid = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(6, 8, 10, 12),
    frequency_factors=(1.0, 0.8),
)
print(f"Design space: {len(grid)} candidates for mix '{mix.name}'")

# Per-user cache dir: /tmp is world-writable, and the cache deserializes
# its rows, so it must never be a path another user can pre-create.
cache_dir = Path.home() / ".cache" / "repro"
cache_dir.mkdir(parents=True, exist_ok=True)
cache_path = cache_dir / "trace-mix-cache.sqlite"
study = (
    Study(grid)
    .with_workload(mix)
    .with_workers(2)
    .with_cache(str(cache_path))
)

result = study.run()
print(
    f"Evaluated {result.evaluations} fresh designs "
    f"({result.cache_hits} served from {cache_path})"
)

print("\nPareto frontier (fastest first):")
for point in result.pareto_frontier()[:8]:
    print(
        f"  {point.label:18s}  {point.time_s:10.1f} weighted-s  "
        f"{point.energy_j / 1e6:8.2f} MJ"
    )

knee = result.knee()
print(f"\nKnee design for the whole day's mix: {knee.label}")
print(f"EDP-optimal: {result.edp_optimal().label}")

# Normalized Section 6 selection over the same result.
best = result.curve(reference_label=result.feasible_points[0].label).best_design(0.7)
print(f"Best design within 30% of the reference: {best.label}")

# ---------------------------------------------------------------- latency SLA
# The weighted mix above prices the day's *total* cost; it cannot say how
# long any one report waited.  A TimedTrace keeps the arrival times, and a
# stream-capable evaluator replays them under queueing — so the same study
# also answers "which design keeps every query under an SLA, cheapest?"
trace = TimedTrace.from_trace("one-day-timed", events)
latency_grid = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(8,),
)
# Same disk cache as the weights-only study: timed records persist under
# their own time-inclusive keys, so re-running replays zero streams too.
timed = (
    Study(latency_grid)
    .with_workload(trace)
    .with_evaluator(SimulatorEvaluator())
    .with_cache(str(cache_path))
    .run()
)
print(
    f"\nReplayed the timed trace on {timed.evaluations} designs "
    f"({timed.cache_hits} served from the cache)"
)

print("\nResponse times under queueing (per design, simulator):")
for point in timed.feasible_points[:6]:
    profile = point.latency
    print(
        f"  {point.label:8s}  p99 {profile.p99_s:9.1f} s  "
        f"worst {profile.max_s:9.1f} s  {point.energy_j / 1e6:8.2f} MJ"
    )

# Least-energy design whose worst-case response time meets the SLA.
sla_s = min(p.latency.max_s for p in timed.feasible_points) * 1.25
pick = timed.best_under_latency_sla(sla_s)
print(
    f"\nCheapest design with worst-case response <= {sla_s:.0f} s: "
    f"{pick.label} ({pick.energy_j / 1e6:.2f} MJ, "
    f"worst {pick.latency.max_s:.1f} s)"
)
