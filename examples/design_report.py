"""Full design study in one call.

`design_report` runs the library's complete pipeline — plan, simulate,
diagnose the bottleneck, sweep homogeneous sizes and Beefy/Wimpy mixes,
apply the Section 6 principles, and sanity-check against a faster
interconnect — and renders it as a single operator-facing report.

Run:  python examples/design_report.py
"""

from repro import CLUSTER_V_NODE, WIMPY_LAPTOP_B, section54_join
from repro.core.report import design_report

report = design_report(
    query=section54_join(build_selectivity=0.10, probe_selectivity=0.02),
    beefy=CLUSTER_V_NODE,
    wimpy=WIMPY_LAPTOP_B,
    cluster_size=8,
    target_performance=0.60,  # the SLA tolerates a 40% slowdown
)
print(report)
