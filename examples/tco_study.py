"""TCO study: carbon and dollars as first-class objectives.

The paper optimizes (time, energy); total cost of ownership adds two more
currencies — amortized hardware dollars and grams of CO₂ — and the
cheapest design is not the most energy-efficient one:

1. **price** includes capex amortization over *wall time*, so a slow
   wimpy-heavy design that sips joules still pays for every node-hour it
   occupies — the price-optimal pick is faster than the energy-optimal;
2. **carbon** depends on *when* energy is drawn: under a diurnal grid
   (wind-heavy trough at night, gas peakers in the evening) a design
   that finishes inside the trough beats one that drifts into the peak,
   even at slightly more joules.

Part 1 sweeps a 216-design campaign (sizes x mixes x DVFS) under the
analytical model with a flat grid; Part 2 replays a timed trace under a
time-of-day carbon curve, where the simulator's per-interval energy is
integrated against the curve exactly.

Run:  python examples/tco_study.py
"""

from repro import (
    CLUSTER_V_NODE,
    WIMPY_LAPTOP_B,
    CarbonIntensityCurve,
    CostModel,
    DesignGrid,
    SimulatorEvaluator,
    Study,
)
from repro.analysis.report import render_table
from repro.workloads.protocol import TimedTrace
from repro.workloads.queries import q3_join

QUERY = q3_join(scale_factor=1000, build_selectivity=0.05, probe_selectivity=0.05)

# ----------------------------------------------------------- part 1: dollars
CAMPAIGN = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(6, 8, 10, 12, 14, 16),
    frequency_factors=(1.0, 0.8, 0.6),
)

FLAT_GRID_MODEL = CostModel(
    tariff_usd_per_kwh=0.12,
    carbon_g_per_kwh=400.0,
    # a beefy server amortizes ~10x a laptop-class node
    capex_usd_per_node_hour={"cluster-V": 0.80, "wimpy-laptopB": 0.08},
)

result = (
    Study(CAMPAIGN).with_workload(QUERY).with_cost_model(FLAT_GRID_MODEL).run()
)
feasible = result.feasible_points

picks = {
    "fastest": min(feasible, key=lambda p: p.time_s),
    "energy-optimal": min(feasible, key=lambda p: p.energy_j),
    "price-optimal": min(feasible, key=lambda p: p.price_usd),
    "2-obj knee (time, energy)": result.knee(),
    "4-obj knee (+price, carbon)": result.knee(
        objectives=("time_s", "energy_j", "price_usd", "carbon_g")
    ),
}
print(
    render_table(
        ("selection", "design", "time (s)", "energy (kJ)", "price ($)",
         "carbon (g)"),
        [
            (
                name,
                p.label,
                f"{p.time_s:.1f}",
                f"{p.energy_j / 1000:.0f}",
                f"{p.price_usd:.3f}",
                f"{p.carbon_g:.1f}",
            )
            for name, p in picks.items()
        ],
        title=f"TCO selections over {len(feasible)} feasible designs "
        "(flat 400 g/kWh grid)",
    )
)
print()
budget = picks["price-optimal"].price_usd * 1.5
capped = result.best_under_budget(budget)
print(
    f"Fastest design under a ${budget:.3f} budget: {capped.label} "
    f"({capped.time_s:.1f} s at ${capped.price_usd:.3f})"
)
print()

# ------------------------------------------------- part 2: time-of-day carbon
solo = SimulatorEvaluator().evaluate_query(
    CAMPAIGN.candidate_list()[0], QUERY
).time_s
# a burst of 8 queries landing in the grid's wind window: fast designs
# finish before the peakers come online, slow ones drift past the step
PERIOD = 30.0 * solo
BURST = [3.0 * solo + k * 0.5 * solo for k in range(8)]
TRACE = TimedTrace.from_schedule("trough-burst-q3", QUERY, BURST)
# night wind at 20 g/kWh for half the cycle, then 900 g/kWh gas peakers
CURVE = CarbonIntensityCurve(
    slots=(20.0, 20.0, 20.0, 900.0, 900.0, 900.0), period_s=PERIOD
)
DIURNAL_MODEL = CostModel(
    tariff_usd_per_kwh=0.12,
    carbon_g_per_kwh=CURVE,
    capex_usd_per_node_hour={"cluster-V": 0.80, "wimpy-laptopB": 0.08},
)

NIGHT_GRID = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(6,),
    frequency_factors=(1.0, 0.6),
)
timed = (
    Study(NIGHT_GRID)
    .with_workload(TRACE)
    .with_evaluator(SimulatorEvaluator())
    .with_cost_model(DIURNAL_MODEL)
    .run()
)
night = timed.feasible_points
energy_pick = min(night, key=lambda p: p.energy_j)
carbon_pick = min(night, key=lambda p: p.carbon_g)

rows = []
for p in sorted(night, key=lambda p: p.carbon_g):
    effective = p.carbon_g / (p.energy_j / 3.6e6)  # realized g/kWh
    rows.append(
        (
            p.label,
            f"{p.time_s:.0f}",
            f"{p.energy_j / 1000:.0f}",
            f"{p.carbon_g:.1f}",
            f"{effective:.0f}",
        )
    )
print(
    render_table(
        ("design", "makespan (s)", "energy (kJ)", "carbon (g)",
         "realized g/kWh"),
        rows,
        title="Timed replay under a 20/900 g/kWh wind-then-peakers grid "
        f"(cycle mean {CURVE.mean:.0f})",
    )
)
print()
print(
    f"Energy-optimal: {energy_pick.label} "
    f"({energy_pick.energy_j / 1000:.0f} kJ, {energy_pick.carbon_g:.1f} g)"
)
print(
    f"Carbon-optimal: {carbon_pick.label} "
    f"({carbon_pick.energy_j / 1000:.0f} kJ, {carbon_pick.carbon_g:.1f} g)"
)
if carbon_pick.label != energy_pick.label:
    print(
        "The picks diverge: finishing before the grid's peak is worth "
        "more grams than the joules it costs."
    )
else:
    print("On this trace the two picks coincide.")
