"""Observing a search: telemetry spans and counters on a real campaign.

Where does the wall time of a design-space campaign actually go — cache
lookups, worker dispatch, the simulator's event loop?  This example
turns on :mod:`repro.telemetry`, replays the reference 216-design
diurnal campaign (the same space ``benchmarks/test_policy.py`` and
``BENCH_stream.json`` pin), and prints the recorded breakdown: the
per-stage span tree with an explicit unattributed remainder, then the
exact counters (cache hits, dispatched chunks, simulator events).

Telemetry is off by default and changes no result when on: counters are
deterministic at a fixed seed, wall times are measurements only.

Run:  python examples/telemetry_report.py
"""

import repro.telemetry as telemetry
from repro import (
    CLUSTER_V_NODE,
    WIMPY_LAPTOP_B,
    DesignGrid,
    SimulatorEvaluator,
    Study,
    TimedTrace,
)
from repro.analysis.export import telemetry_to_json
from repro.workloads.arrivals import diurnal_arrivals
from repro.workloads.queries import q3_join

# ---------------------------------------------------------------- telemetry
# One call arms the registry; configure_logging additionally surfaces the
# repro.* loggers (dispatch retries, cache lock backoff) on stderr.
telemetry.enable()
telemetry.configure_logging()

# ----------------------------------------------------------------- workload
# The reference diurnal trace, calibrated in solo runtimes of the q3 join
# on the grid's first design: the rate crests at ~0.5 arrivals per solo
# runtime and troughs near silence.
query = q3_join(100, 0.05, 0.05)
solo = SimulatorEvaluator().evaluate_query(
    DesignGrid(
        node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
        cluster_sizes=(6,),
    ).candidate_list()[0],
    query,
).time_s
schedule = diurnal_arrivals(
    48,
    base_rate_per_s=0.005 / solo,
    peak_rate_per_s=0.5 / solo,
    period_s=55.0 * solo,
    seed=11,
)
trace = TimedTrace.from_schedule("diurnal-campaign", query, schedule)
print(f"Trace: {len(schedule)} arrivals over {schedule[-1]:.0f} s")

# -------------------------------------------------------------- the campaign
# The reference 216-design space: one node pair, six cluster sizes, three
# DVFS states, every beefy/wimpy split.
grid = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(6, 8, 10, 12, 14, 16),
    frequency_factors=(1.0, 0.8, 0.6),
)
with Study(
    grid,
    workload=trace,
    evaluator=SimulatorEvaluator(),
    workers=2,
    min_dispatch_tasks=1,
) as study:
    result = study.run()
    print(
        f"Searched {len(result.points)} designs "
        f"({len(result.feasible_points)} feasible, "
        f"knee = {result.knee().label})"
    )

    # -------------------------------------------------------------- report
    # The span tree: where the campaign's wall time went, stage by stage,
    # with worker-side chunk time merged under search.dispatch.  The
    # counters below it are exact and reproduce bit-for-bit at this seed.
    print()
    print(study.report(title="216-design diurnal campaign"))

    # Machine-readable form of the same registry, for dashboards or to
    # archive next to a benchmark's BENCH_*.json.
    summary = telemetry.attribution(telemetry.get_telemetry())
    print()
    print(
        f"JSON export: {len(telemetry_to_json())} bytes, "
        f"{summary['fraction']:.1%} of root wall time attributed"
    )
