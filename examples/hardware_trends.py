"""Hardware-trend study: does the Wimpy advantage survive faster networks?

Section 4.1 assumes the network-CPU gap persists.  This example sweeps the
interconnect from the paper's 1 Gb/s up to 40 Gb/s-class bandwidth and asks,
for the Figure 10(b) workload that *punished* heterogeneous designs: at
what network speed does Wimpy substitution start winning?

Run:  python examples/hardware_trends.py
"""

from repro import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.analysis.report import render_table
from repro.core.sensitivity import sweep_parameter
from repro.workloads.queries import section54_join

# The join that made heterogeneous designs look bad at 1 Gb/s (Figure 10b).
QUERY = section54_join(build_selectivity=0.10, probe_selectivity=0.10)

NETWORKS = [100.0, 200.0, 400.0, 1000.0, 4000.0]  # MB/s usable

points = sweep_parameter(
    QUERY,
    CLUSTER_V_NODE,
    WIMPY_LAPTOP_B,
    parameter="network_mbps",
    values=NETWORKS,
    target_performance=0.6,
)

rows = []
for point in points:
    below = len(point.curve.below_edp_points())
    rows.append(
        (
            f"{point.value:g} MB/s",
            point.best_label,
            f"{point.best_energy:.2f}",
            f"{point.best_performance:.2f}",
            below,
        )
    )

print(
    render_table(
        ("interconnect", "best design @0.6", "energy ratio", "perf ratio",
         "designs below EDP"),
        rows,
        title="ORDERS 10% x LINEITEM 10% join: best 8-node design vs network speed",
    )
)
print()
print(
    "At the paper's 100 MB/s the Beefy ingest bottleneck keeps the all-Beefy\n"
    "design on top; once the interconnect outruns the disks, the bottleneck\n"
    "moves to storage, Wimpy CPUs are masked, and the heterogeneous designs\n"
    "take over — the Figure 10(a) regime, reached through hardware evolution."
)
