"""Concurrency study: how concurrent queries change the downsizing math.

The Figure 3 experiment as a library workflow: simulate 1..4 concurrent
partition-incompatible joins on clusters of 4-8 nodes (with the calibrated
switch-contention model) and report how much energy a half-size cluster
saves at each concurrency level.

Run:  python examples/concurrency_study.py
"""

from repro import ClusterSpec, CLUSTER_V_NODE
from repro.analysis.report import render_table
from repro.pstore import PStore, PStoreConfig
from repro.simulator.network import SMC_GS5_SWITCH
from repro.workloads.queries import q3_join

WORKLOAD = q3_join(scale_factor=1000, build_selectivity=0.05, probe_selectivity=0.05)

rows = []
for concurrency in (1, 2, 4):
    results = {}
    for nodes in (8, 4):
        engine = PStore(
            ClusterSpec.homogeneous(CLUSTER_V_NODE, nodes, name=f"{nodes}N"),
            switch=SMC_GS5_SWITCH,
            config=PStoreConfig(warm_cache=True),
            record_intervals=False,
        )
        results[nodes] = engine.simulate(WORKLOAD, concurrency=concurrency)
    performance_ratio = results[8].makespan_s / results[4].makespan_s
    energy_saving = 1.0 - results[4].energy_j / results[8].energy_j
    rows.append(
        (
            concurrency,
            f"{results[8].makespan_s:.1f}",
            f"{results[4].makespan_s:.1f}",
            f"{performance_ratio:.2f}",
            f"{energy_saving:.1%}",
        )
    )

print(
    render_table(
        ("concurrent joins", "8N time (s)", "4N time (s)",
         "4N perf ratio", "4N energy saving"),
        rows,
        title="Half-cluster trade-off for a network-bound dual-shuffle join",
    )
)
print()
print(
    "Takeaway: the busier the network, the less the big cluster helps — "
    "energy savings from downsizing grow with concurrency."
)
