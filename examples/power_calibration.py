"""Power-model calibration: from meter readings to a SysPower regression.

The Section 3.1 workflow for onboarding a new server type:

1. hold the node at a series of CPU-utilization levels (the paper ran
   concurrent hash joins to do this),
2. read average power through the management interface (iLO2: 5-minute
   windows, three per level),
3. fit exponential, power-law, and logarithmic regressions,
4. keep the best R² — that becomes the node's SysPower model.

Here the "server" is a simulated machine whose true behaviour we know, so
you can see the recovered model match the ground truth.

Run:  python examples/power_calibration.py
"""

from repro import NodeSpec, PowerLawModel
from repro.analysis.report import render_table
from repro.hardware.calibration import (
    fit_best_model,
    fit_exponential,
    fit_logarithmic,
    fit_power_law,
)
from repro.hardware.meter import ILO2Interface

# Ground truth for the "new" server: a power-law curve we pretend not to know.
TRUE_MODEL = PowerLawModel(coefficient=95.0, exponent=0.31)

UTILIZATION_LEVELS = (0.05, 0.10, 0.20, 0.35, 0.50, 0.65, 0.80, 0.90, 1.00)

ilo2 = ILO2Interface(accuracy=0.01, seed=7)
readings = ilo2.utilization_sweep(TRUE_MODEL.power, UTILIZATION_LEVELS)

print(
    render_table(
        ("CPU utilization", "measured watts"),
        [(f"{u:.0%}", f"{w:.1f}") for u, w in readings],
        title="iLO2 readings (three 5-minute windows per level, 1% accuracy)",
    )
)
print()

fits = [fit_power_law(readings), fit_exponential(readings), fit_logarithmic(readings)]
print(
    render_table(
        ("family", "fitted model", "R²"),
        [(f.family, f.model.formula(), f"{f.r2:.5f}") for f in fits],
        title="Candidate regressions",
    )
)
print()

best = fit_best_model(readings)
print(f"selected: {best}")
print(f"ground truth was: {TRUE_MODEL.formula()}")

# The fitted model can go straight into a NodeSpec for cluster studies:
node = NodeSpec(
    name="new-server",
    cpu_bandwidth_mbps=3000.0,
    memory_mb=64_000.0,
    disk_bandwidth_mbps=800.0,
    nic_bandwidth_mbps=100.0,
    power_model=best.model,
    engine_base_utilization=0.20,
)
print(f"\nready for design studies: {node}")
print(f"idle ~{node.idle_power_w:.0f} W, peak ~{node.peak_power_w:.0f} W")
