"""Property-based invariants of the fluid simulator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.cluster import ClusterSpec
from repro.hardware.node import NodeSpec
from repro.hardware.power import PowerLawModel
from repro.simulator.engine import ClusterSimulator
from repro.simulator.jobs import FlowSpec, Job, Phase
from repro.simulator.resources import cpu, disk

NODE = NodeSpec(
    name="p",
    cpu_bandwidth_mbps=1000.0,
    memory_mb=1000.0,
    disk_bandwidth_mbps=250.0,
    nic_bandwidth_mbps=100.0,
    power_model=PowerLawModel(80.0, 0.3),
    engine_base_utilization=0.1,
)


def job(name, volume, node=0, start=0.0):
    return Job(
        name=name,
        phases=(
            Phase("p", (FlowSpec(f"{name}-f", volume, {disk(node): 1.0, cpu(node): 1.0}),)),
        ),
        start_time_s=start,
    )


@given(st.lists(st.floats(1.0, 500.0), min_size=1, max_size=5))
def test_makespan_independent_of_job_order(volumes):
    """Admission order of simultaneous jobs must not change the outcome."""
    cluster = ClusterSpec.homogeneous(NODE, 1)
    jobs_fwd = [job(f"j{i}", v) for i, v in enumerate(volumes)]
    jobs_rev = list(reversed(jobs_fwd))
    a = ClusterSimulator(cluster, record_intervals=False).run(jobs_fwd)
    b = ClusterSimulator(cluster, record_intervals=False).run(jobs_rev)
    assert a.makespan_s == pytest.approx(b.makespan_s)
    assert a.energy_j == pytest.approx(b.energy_j)


@given(st.floats(1.0, 400.0), st.floats(0.0, 50.0))
def test_time_shift_invariance(volume, offset):
    """Delaying a lone job shifts completion, not duration."""
    cluster = ClusterSpec.homogeneous(NODE, 1)
    base = ClusterSimulator(cluster, record_intervals=False).run([job("j", volume)])
    shifted = ClusterSimulator(cluster, record_intervals=False).run(
        [job("j", volume, start=offset)]
    )
    assert shifted.response_time_s("j") == pytest.approx(base.response_time_s("j"))
    assert shifted.makespan_s == pytest.approx(base.makespan_s + offset)


@given(st.lists(st.floats(10.0, 300.0), min_size=2, max_size=4))
def test_work_conservation(volumes):
    """Total served volume / makespan never exceeds the disk capacity."""
    cluster = ClusterSpec.homogeneous(NODE, 1)
    jobs = [job(f"j{i}", v) for i, v in enumerate(volumes)]
    result = ClusterSimulator(cluster, record_intervals=False).run(jobs)
    throughput = sum(volumes) / result.makespan_s
    assert throughput <= NODE.disk_bandwidth_mbps * (1 + 1e-6)
    # ...and the disk is actually saturated while work remains
    assert throughput == pytest.approx(NODE.disk_bandwidth_mbps)


@given(st.floats(10.0, 300.0), st.integers(1, 4))
def test_energy_scales_with_idle_nodes(volume, extra_nodes):
    """Adding idle nodes adds exactly their idle energy."""
    small = ClusterSimulator(
        ClusterSpec.homogeneous(NODE, 1), record_intervals=False
    ).run([job("j", volume)])
    big = ClusterSimulator(
        ClusterSpec.homogeneous(NODE, 1 + extra_nodes), record_intervals=False
    ).run([job("j", volume)])
    idle_power = NODE.power_model.power(NODE.utilization(0.0))
    expected = small.energy_j + extra_nodes * idle_power * small.makespan_s
    assert big.energy_j == pytest.approx(expected)
    assert big.makespan_s == pytest.approx(small.makespan_s)
