"""Max-min fair allocation (progressive filling)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.simulator.allocation import max_min_fair_allocation, max_min_fair_rates


def test_single_flow_gets_bottleneck_rate():
    rates = max_min_fair_rates(
        [{"disk": 1.0, "nic": 0.5}],
        {"disk": 200.0, "nic": 50.0},
    )
    # nic caps it: 0.5 * rate <= 50 -> rate 100; disk would allow 200
    assert rates == [pytest.approx(100.0)]


def test_two_identical_flows_split_equally():
    demands = [{"nic": 1.0}, {"nic": 1.0}]
    rates = max_min_fair_rates(demands, {"nic": 100.0})
    assert rates == [pytest.approx(50.0)] * 2


def test_max_min_redistribution():
    """A flow capped elsewhere frees capacity for its peers."""
    demands = [
        {"shared": 1.0, "private": 1.0},  # private caps this one at 10
        {"shared": 1.0},
    ]
    rates = max_min_fair_rates(demands, {"shared": 100.0, "private": 10.0})
    assert rates[0] == pytest.approx(10.0)
    assert rates[1] == pytest.approx(90.0)


def test_weighted_demand_coefficients():
    # flow 0 uses 2 units of nic per unit rate, flow 1 uses 1
    demands = [{"nic": 2.0}, {"nic": 1.0}]
    rates = max_min_fair_rates(demands, {"nic": 90.0})
    # progressive filling raises both at the same pace: 2r + r = 90 -> r = 30
    assert rates == [pytest.approx(30.0), pytest.approx(30.0)]


def test_empty_flow_list():
    assert max_min_fair_rates([], {"nic": 10.0}) == []


def test_flow_without_demands_rejected():
    with pytest.raises(SimulationError, match="unbounded"):
        max_min_fair_rates([{}], {"nic": 10.0})


def test_unknown_resource_rejected():
    with pytest.raises(SimulationError, match="unknown resource"):
        max_min_fair_rates([{"ghost": 1.0}], {"nic": 10.0})


def test_nonpositive_coefficient_rejected():
    with pytest.raises(SimulationError):
        max_min_fair_rates([{"nic": 0.0}], {"nic": 10.0})


def test_three_tier_sharing():
    """Classic max-min example: three flows, two links."""
    demands = [
        {"link1": 1.0},
        {"link1": 1.0, "link2": 1.0},
        {"link2": 1.0},
    ]
    rates = max_min_fair_rates(demands, {"link1": 10.0, "link2": 4.0})
    # link2 saturates first at rate 2 (flows 1 and 2 frozen);
    # flow 0 then takes the rest of link1.
    assert rates[1] == pytest.approx(2.0)
    assert rates[2] == pytest.approx(2.0)
    assert rates[0] == pytest.approx(8.0)


class TestBindings:
    def test_binding_names_the_saturated_resource(self):
        rates, bindings = max_min_fair_allocation(
            [{"disk": 1.0, "nic": 0.5}],
            {"disk": 200.0, "nic": 50.0},
        )
        assert bindings == ["nic"]

    def test_bindings_differ_across_flows(self):
        rates, bindings = max_min_fair_allocation(
            [
                {"shared": 1.0, "private": 1.0},  # frozen by its private link
                {"shared": 1.0},  # frozen by the shared link
            ],
            {"shared": 100.0, "private": 10.0},
        )
        assert bindings == ["private", "shared"]

    def test_binding_prefers_heaviest_saturated_resource(self):
        # both resources saturate together; the heavier coefficient wins
        rates, bindings = max_min_fair_allocation(
            [{"a": 2.0, "b": 1.0}],
            {"a": 20.0, "b": 10.0},
        )
        assert bindings == ["a"]

    def test_every_flow_gets_a_binding(self):
        demands = [{"x": 1.0}, {"x": 1.0, "y": 1.0}, {"y": 3.0}]
        rates, bindings = max_min_fair_allocation(
            demands, {"x": 10.0, "y": 30.0}
        )
        assert all(bindings)
        for demand, binding in zip(demands, bindings):
            assert binding in demand


@st.composite
def scenario(draw):
    num_resources = draw(st.integers(1, 4))
    resources = {f"r{i}": draw(st.floats(1.0, 1000.0)) for i in range(num_resources)}
    num_flows = draw(st.integers(1, 6))
    demands = []
    for _ in range(num_flows):
        used = draw(
            st.lists(
                st.sampled_from(sorted(resources)), min_size=1, max_size=num_resources, unique=True
            )
        )
        demands.append({r: draw(st.floats(0.1, 4.0)) for r in used})
    return demands, resources


@given(scenario())
def test_property_capacities_never_exceeded(case):
    demands, resources = case
    rates = max_min_fair_rates(demands, resources)
    for resource, capacity in resources.items():
        usage = sum(d.get(resource, 0.0) * r for d, r in zip(demands, rates))
        assert usage <= capacity * (1 + 1e-6)


@given(scenario())
def test_property_all_rates_positive(case):
    demands, resources = case
    rates = max_min_fair_rates(demands, resources)
    assert all(rate > 0 for rate in rates)


@given(scenario())
def test_property_every_flow_touches_a_saturated_resource(case):
    """Max-min allocations are Pareto efficient: each flow is blocked by
    some saturated resource (can't be raised without lowering another)."""
    demands, resources = case
    rates = max_min_fair_rates(demands, resources)
    usage = {
        resource: sum(d.get(resource, 0.0) * r for d, r in zip(demands, rates))
        for resource in resources
    }
    for demand in demands:
        assert any(
            usage[r] >= resources[r] * (1 - 1e-6) for r in demand
        ), "a flow could still be increased"
