"""Resource pool, switch model, and job-description validation."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.cluster import ClusterSpec
from repro.hardware.presets import BEEFY_L5630, CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.simulator.jobs import FlowSpec, Job, Phase
from repro.simulator.network import IDEAL_SWITCH, SMC_GS5_SWITCH, SwitchModel
from repro.simulator.resources import ResourcePool, cpu, disk, nic_in, nic_out


class TestResourcePool:
    def test_four_resources_per_node(self):
        pool = ResourcePool(ClusterSpec.homogeneous(CLUSTER_V_NODE, 3))
        assert len(pool) == 12
        assert pool.num_nodes == 3

    def test_capacities_from_spec(self):
        pool = ResourcePool(ClusterSpec.homogeneous(CLUSTER_V_NODE, 1))
        caps = pool.capacities()
        assert caps[cpu(0)] == CLUSTER_V_NODE.cpu_bandwidth_mbps
        assert caps[disk(0)] == CLUSTER_V_NODE.disk_bandwidth_mbps
        assert caps[nic_in(0)] == CLUSTER_V_NODE.nic_bandwidth_mbps
        assert caps[nic_out(0)] == CLUSTER_V_NODE.nic_bandwidth_mbps

    def test_mixed_cluster_capacities(self):
        pool = ResourcePool(ClusterSpec.beefy_wimpy(BEEFY_L5630, 1, WIMPY_LAPTOP_B, 1))
        caps = pool.capacities()
        assert caps[cpu(0)] == BEEFY_L5630.cpu_bandwidth_mbps
        assert caps[cpu(1)] == WIMPY_LAPTOP_B.cpu_bandwidth_mbps
        assert pool.node_role(0) == "beefy"
        assert pool.node_role(1) == "wimpy"

    def test_network_kind_detection(self):
        pool = ResourcePool(ClusterSpec.homogeneous(CLUSTER_V_NODE, 1))
        assert pool.is_network(nic_in(0))
        assert pool.is_network(nic_out(0))
        assert not pool.is_network(cpu(0))
        assert not pool.is_network(disk(0))

    def test_contains_and_lookup(self):
        pool = ResourcePool(ClusterSpec.homogeneous(CLUSTER_V_NODE, 2))
        assert cpu(1) in pool
        assert "cpu:9" not in pool
        assert pool.resource(disk(1)).kind == "disk"
        with pytest.raises(ConfigurationError):
            pool.resource("ghost:0")

    def test_capacities_are_a_fresh_dict(self):
        pool = ResourcePool(ClusterSpec.homogeneous(CLUSTER_V_NODE, 1))
        caps = pool.capacities()
        caps[cpu(0)] = 1.0
        assert pool.capacities()[cpu(0)] == CLUSTER_V_NODE.cpu_bandwidth_mbps


class TestSwitchModel:
    def test_ideal_switch_is_lossless(self):
        assert IDEAL_SWITCH.efficiency(1) == 1.0
        assert IDEAL_SWITCH.efficiency(1000) == 1.0

    def test_single_flow_never_penalized(self):
        assert SMC_GS5_SWITCH.efficiency(1) == 1.0
        assert SMC_GS5_SWITCH.efficiency(0) == 1.0

    def test_efficiency_decreases_with_flows(self):
        values = [SMC_GS5_SWITCH.efficiency(n) for n in (2, 8, 32)]
        assert values == sorted(values, reverse=True)
        assert all(0.0 < v < 1.0 for v in values)

    def test_calibrated_value(self):
        # eta = 0.012: 8 flows -> 1/(1 + 0.012*7)
        assert SMC_GS5_SWITCH.efficiency(8) == pytest.approx(1.0 / 1.084)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SwitchModel(per_flow_interference=-0.1)


class TestJobValidation:
    def test_flow_negative_volume(self):
        with pytest.raises(ConfigurationError):
            FlowSpec("f", -1.0, {cpu(0): 1.0})

    def test_flow_volume_without_demands(self):
        with pytest.raises(ConfigurationError):
            FlowSpec("f", 10.0, {})

    def test_flow_zero_volume_without_demands_allowed(self):
        assert FlowSpec("f", 0.0, {}).volume_mb == 0.0

    def test_flow_nonpositive_coefficient(self):
        with pytest.raises(ConfigurationError):
            FlowSpec("f", 10.0, {cpu(0): 0.0})

    def test_phase_needs_flows(self):
        with pytest.raises(ConfigurationError):
            Phase("p", ())

    def test_job_needs_phases(self):
        with pytest.raises(ConfigurationError):
            Job("j", ())

    def test_job_negative_start(self):
        phase = Phase("p", (FlowSpec("f", 1.0, {cpu(0): 1.0}),))
        with pytest.raises(ConfigurationError):
            Job("j", (phase,), start_time_s=-1.0)

    def test_volume_accounting(self):
        phase = Phase(
            "p",
            (
                FlowSpec("a", 10.0, {cpu(0): 1.0}),
                FlowSpec("b", 20.0, {cpu(1): 1.0}),
            ),
        )
        job = Job("j", (phase, phase))
        assert phase.total_volume_mb == 30.0
        assert job.total_volume_mb == 60.0


class TestIntervalBindings:
    def test_engine_records_flow_bindings(self):
        from repro.pstore.engine import PStore, PStoreConfig
        from repro.workloads.queries import q3_join

        engine = PStore(
            ClusterSpec.homogeneous(CLUSTER_V_NODE, 4),
            config=PStoreConfig(warm_cache=True),
        )
        result = engine.simulate(q3_join(100, 0.05, 0.05))
        for interval in result.intervals:
            assert len(interval.flow_bindings) == len(interval.flow_names)
            assert all(interval.flow_bindings)
