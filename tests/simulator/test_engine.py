"""The fluid cluster simulator."""

import pytest

from repro.errors import SimulationError
from repro.hardware.cluster import ClusterSpec
from repro.hardware.node import NodeSpec
from repro.hardware.power import PowerLawModel
from repro.simulator.engine import ClusterSimulator
from repro.simulator.jobs import FlowSpec, Job, Phase
from repro.simulator.network import SwitchModel
from repro.simulator.resources import cpu, disk, nic_in, nic_out
from repro.simulator.trace import energy_from_intervals, power_function, utilization_series

NODE = NodeSpec(
    name="n",
    cpu_bandwidth_mbps=1000.0,
    memory_mb=8000.0,
    disk_bandwidth_mbps=200.0,
    nic_bandwidth_mbps=100.0,
    power_model=PowerLawModel(50.0, 0.25),
    engine_base_utilization=0.0,
)


def cluster(n=2):
    return ClusterSpec.homogeneous(NODE, n)


def single_flow_job(volume=400.0, demands=None, name="job"):
    demands = demands or {disk(0): 1.0, cpu(0): 1.0}
    return Job(
        name=name,
        phases=(Phase(name="p", flows=(FlowSpec("f", volume, demands),)),),
    )


class TestTiming:
    def test_disk_bound_single_flow(self):
        sim = ClusterSimulator(cluster(1))
        result = sim.run([single_flow_job(volume=400.0)])
        # disk 200 MB/s is the bottleneck (cpu 1000): 2 s
        assert result.makespan_s == pytest.approx(2.0)
        assert result.response_time_s("job") == pytest.approx(2.0)

    def test_cpu_bound_when_disk_fast(self):
        fast_disk = NODE.with_overrides(disk_bandwidth_mbps=5000.0)
        sim = ClusterSimulator(ClusterSpec.homogeneous(fast_disk, 1))
        result = sim.run([single_flow_job(volume=2000.0)])
        assert result.makespan_s == pytest.approx(2.0)  # cpu 1000 MB/s

    def test_two_phases_are_sequential(self):
        job = Job(
            name="j",
            phases=(
                Phase("a", (FlowSpec("f1", 200.0, {disk(0): 1.0}),)),
                Phase("b", (FlowSpec("f2", 400.0, {disk(0): 1.0}),)),
            ),
        )
        result = ClusterSimulator(cluster(1)).run([job])
        assert result.makespan_s == pytest.approx(1.0 + 2.0)

    def test_phase_barrier_waits_for_slowest_flow(self):
        job = Job(
            name="j",
            phases=(
                Phase(
                    "a",
                    (
                        FlowSpec("fast", 100.0, {disk(0): 1.0}),
                        FlowSpec("slow", 400.0, {disk(1): 1.0}),
                    ),
                ),
                Phase("b", (FlowSpec("next", 200.0, {disk(0): 1.0}),)),
            ),
        )
        result = ClusterSimulator(cluster(2)).run([job])
        # phase a: max(0.5, 2.0) = 2.0; phase b: 1.0
        assert result.makespan_s == pytest.approx(3.0)

    def test_concurrent_jobs_share_resources(self):
        jobs = [
            single_flow_job(volume=200.0, name="a"),
            single_flow_job(volume=200.0, name="b"),
        ]
        result = ClusterSimulator(cluster(1)).run(jobs)
        # both share disk 200: each runs at 100 MB/s -> both end at 2 s
        assert result.makespan_s == pytest.approx(2.0)
        assert result.response_time_s("a") == pytest.approx(2.0)

    def test_unequal_concurrent_jobs(self):
        jobs = [
            single_flow_job(volume=100.0, name="small"),
            single_flow_job(volume=300.0, name="big"),
        ]
        result = ClusterSimulator(cluster(1)).run(jobs)
        # share until small finishes at t=1 (100 each); big has 200 left
        # at full rate 200 -> 1 more second
        assert result.response_time_s("small") == pytest.approx(1.0)
        assert result.response_time_s("big") == pytest.approx(2.0)

    def test_delayed_job_start(self):
        late = Job(
            name="late",
            phases=(Phase("p", (FlowSpec("f", 200.0, {disk(0): 1.0}),)),),
            start_time_s=5.0,
        )
        result = ClusterSimulator(cluster(1)).run([late])
        assert result.job_start_s["late"] == pytest.approx(5.0)
        assert result.makespan_s == pytest.approx(6.0)
        assert result.response_time_s("late") == pytest.approx(1.0)

    def test_network_flow_timing(self):
        # shuffle-like: 0.5 of the scanned bytes leave over nic_out
        job = single_flow_job(
            volume=400.0,
            demands={cpu(0): 1.0, nic_out(0): 0.5, nic_in(1): 0.5},
        )
        result = ClusterSimulator(cluster(2)).run([job])
        # nic 100 caps rate at 200 (0.5 coef); cpu 1000 not binding
        assert result.makespan_s == pytest.approx(2.0)


class TestEnergy:
    def test_energy_matches_power_model(self):
        sim = ClusterSimulator(cluster(1))
        result = sim.run([single_flow_job(volume=400.0)])
        util = NODE.utilization(200.0)  # disk-bound rate
        expected = NODE.power_model.power(util) * 2.0
        assert result.energy_j == pytest.approx(expected)

    def test_idle_node_still_draws_power(self):
        sim = ClusterSimulator(cluster(2))
        result = sim.run([single_flow_job(volume=400.0)])  # touches node 0 only
        idle_energy = NODE.power_model.power(NODE.utilization(0.0)) * 2.0
        assert result.node_energy_j[1] == pytest.approx(idle_energy)

    def test_node_energy_sums_to_total(self):
        result = ClusterSimulator(cluster(3)).run([single_flow_job()])
        assert sum(result.node_energy_j) == pytest.approx(result.energy_j)

    def test_average_power(self):
        result = ClusterSimulator(cluster(1)).run([single_flow_job()])
        assert result.average_power_w == pytest.approx(result.energy_j / result.makespan_s)

    def test_intervals_energy_consistent(self):
        result = ClusterSimulator(cluster(2)).run([single_flow_job()])
        assert energy_from_intervals(result.intervals) == pytest.approx(result.energy_j)

    def test_record_intervals_can_be_disabled(self):
        sim = ClusterSimulator(cluster(1), record_intervals=False)
        result = sim.run([single_flow_job()])
        assert result.intervals == []
        assert result.energy_j > 0


class TestSwitchContention:
    def test_interference_slows_network_flows(self):
        demands = {cpu(0): 1.0, nic_out(0): 1.0, nic_in(1): 1.0}
        job2 = Job(
            name="j2",
            phases=(
                Phase(
                    "p",
                    (
                        FlowSpec("f0", 100.0, demands),
                        FlowSpec(
                            "f1", 100.0, {cpu(1): 1.0, nic_out(1): 1.0, nic_in(0): 1.0}
                        ),
                    ),
                ),
            ),
        )
        ideal = ClusterSimulator(cluster(2)).run([job2])
        contended = ClusterSimulator(
            cluster(2), switch=SwitchModel(per_flow_interference=0.10)
        ).run([job2])
        assert contended.makespan_s > ideal.makespan_s
        assert contended.makespan_s == pytest.approx(ideal.makespan_s * 1.10)

    def test_interference_ignores_local_flows(self):
        local = single_flow_job()  # no nic demands
        ideal = ClusterSimulator(cluster(1)).run([local])
        contended = ClusterSimulator(
            cluster(1), switch=SwitchModel(per_flow_interference=0.5)
        ).run([local])
        assert contended.makespan_s == pytest.approx(ideal.makespan_s)


class TestErrorsAndEdges:
    def test_no_jobs(self):
        with pytest.raises(SimulationError):
            ClusterSimulator(cluster(1)).run([])

    def test_duplicate_job_names(self):
        with pytest.raises(SimulationError, match="duplicate"):
            ClusterSimulator(cluster(1)).run([single_flow_job(), single_flow_job()])

    def test_unknown_resource_in_flow(self):
        bad = single_flow_job(demands={"disk:99": 1.0})
        with pytest.raises(SimulationError, match="unknown resource"):
            ClusterSimulator(cluster(1)).run([bad])

    def test_zero_volume_phase_completes_instantly(self):
        job = Job(
            name="j",
            phases=(
                Phase("empty", (FlowSpec("f", 0.0, {}),)),
                Phase("real", (FlowSpec("g", 200.0, {disk(0): 1.0}),)),
            ),
        )
        result = ClusterSimulator(cluster(1)).run([job])
        assert result.makespan_s == pytest.approx(1.0)

    def test_all_empty_job_completes_at_start(self):
        job = Job(name="j", phases=(Phase("empty", (FlowSpec("f", 0.0, {}),)),))
        result = ClusterSimulator(cluster(1)).run([job])
        assert result.response_time_s("j") == 0.0

    def test_unknown_job_response_time(self):
        result = ClusterSimulator(cluster(1)).run([single_flow_job()])
        with pytest.raises(SimulationError):
            result.response_time_s("nope")


class TestTrace:
    def test_power_function_steps(self):
        result = ClusterSimulator(cluster(1)).run([single_flow_job()])
        power = power_function(result)
        assert power(0.5) == pytest.approx(result.intervals[0].cluster_power_w)

    def test_power_function_before_start(self):
        result = ClusterSimulator(cluster(1)).run([single_flow_job()])
        with pytest.raises(SimulationError):
            power_function(result)(-1.0)

    def test_utilization_series(self):
        result = ClusterSimulator(cluster(1)).run([single_flow_job()])
        series = utilization_series(result, 0)
        assert len(series) == len(result.intervals)
        assert series[0][1] == pytest.approx(NODE.utilization(200.0))

    def test_mean_utilization(self):
        result = ClusterSimulator(cluster(1)).run([single_flow_job()])
        assert result.mean_utilization(0) == pytest.approx(NODE.utilization(200.0))


class TestRegressions:
    def test_early_admission_does_not_backdate_job_start(self):
        """A job admitted within the completion epsilon of its arrival must
        record its true arrival time, not the (earlier) event time —
        otherwise its queueing delay goes negative."""
        # 200 MB on a 200 MB/s disk: the first event lands at exactly 1.0 s,
        # within epsilon of the second job's arrival
        late = 1.0 + 5e-10
        rider = Job(
            name="rider",
            phases=(Phase("p", (FlowSpec("f2", 100.0, {disk(0): 1.0}),)),),
            start_time_s=late,
        )
        result = ClusterSimulator(cluster(1)).run(
            [single_flow_job(volume=200.0, name="first"), rider]
        )
        assert result.job_start_s["rider"] == late
        assert result.job_start_s["rider"] - rider.start_time_s >= 0.0

    def test_queueing_delay_never_negative(self):
        jobs = [
            Job(
                name=f"j{i}",
                phases=(
                    Phase("p", (FlowSpec(f"f{i}", 150.0, {disk(0): 1.0}),)),
                ),
                start_time_s=start,
            )
            for i, start in enumerate([0.0, 0.3, 0.7, 0.7, 2.5])
        ]
        result = ClusterSimulator(cluster(1)).run(jobs)
        for job in jobs:
            assert result.job_start_s[job.name] >= job.start_time_s

    def test_power_at_requires_intervals(self):
        sim = ClusterSimulator(cluster(1), record_intervals=False)
        result = sim.run([single_flow_job()])
        with pytest.raises(SimulationError, match="record_intervals"):
            result.power_at(0.5)

    def test_mean_utilization_requires_intervals(self):
        sim = ClusterSimulator(cluster(1), record_intervals=False)
        result = sim.run([single_flow_job()])
        with pytest.raises(SimulationError, match="record_intervals"):
            result.mean_utilization(0)
