"""Node power states under dynamic control policies.

Exercises the controlled event loop (`ClusterSimulator._run_controlled`):
gating and waking around idle stretches, the wake-up latency penalty on
held jobs, per-state energy pricing, and exact parity of the static path.
"""

import pytest

from repro.errors import SimulationError
from repro.hardware.cluster import WIMPY
from repro.hardware.powerstate import PowerStateModel
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.policy import (
    ControlPolicy,
    DvfsLadderPolicy,
    GateNode,
    PowerGatePolicy,
    StaticPolicy,
)
from repro.pstore.planner import plan_join
from repro.pstore.simulated import SimulatedPStore, trace_jobs
from repro.search.grid import DesignGrid
from repro.workloads.queries import q3_join


class GateAndForgetPolicy(ControlPolicy):
    """Pathological controller: gates the wimpy nodes and never wakes them."""

    @property
    def label(self):
        return "gate-and-forget"

    def cache_key(self):
        return ("gate-and-forget",)

    def power_state_model(self):
        return PowerStateModel(shutdown_s=0.01, boot_s=0.01)

    def observe(self, state):
        return [
            GateNode(node_id)
            for node_id in state.nodes_in_state("active", WIMPY)
        ]


@pytest.fixture(scope="module")
def rig():
    grid = DesignGrid(
        node_pairs=[(CLUSTER_V_NODE, WIMPY_LAPTOP_B)], cluster_sizes=(6,)
    )
    candidate = grid.candidate_list()[4]  # 2 Beefy, 4 Wimpy
    cluster = candidate.cluster()
    store = SimulatedPStore(cluster)
    plan = plan_join(cluster, q3_join(100, 0.05, 0.05))
    solo = store.run(plan).makespan_s
    return store, plan, solo


def gappy_schedule(plan, solo):
    """Two bursts separated by a long idle stretch (the gating window)."""
    return [
        (plan, 0.0),
        (plan, 0.2 * solo),
        (plan, 30.0 * solo),
        (plan, 30.2 * solo),
    ]


def fast_transitions(solo):
    return PowerStateModel(
        shutdown_s=0.05 * solo,
        boot_s=0.1 * solo,
        transition_power_fraction=0.5,
        gated_power_fraction=0.05,
    )


def gate_policy(solo, **overrides):
    kwargs = dict(
        utilization_floor=0.05,
        min_idle_s=1.0 * solo,
        transitions=fast_transitions(solo),
    )
    kwargs.update(overrides)
    return PowerGatePolicy(**kwargs)


class TestPowerGating:
    def test_gating_saves_energy_on_gappy_trace(self, rig):
        store, plan, solo = rig
        schedule = gappy_schedule(plan, solo)
        static = store.run_trace(schedule)
        gated = store.run_trace(
            schedule,
            policy=gate_policy(solo),
            control_interval_s=0.25 * solo,
        )
        assert gated.gated_node_seconds > 0
        assert gated.energy_saved_j > 0
        assert gated.energy_j < static.energy_j

    def test_wake_latency_lands_in_response_times(self, rig):
        store, plan, solo = rig
        schedule = gappy_schedule(plan, solo)
        static = store.run_trace(schedule)
        gated = store.run_trace(
            schedule,
            policy=gate_policy(solo),
            control_interval_s=0.25 * solo,
        )
        name = f"{plan.workload.name}#2"  # first arrival after the idle gap
        penalty = gated.response_time_s(name) - static.response_time_s(name)
        model = fast_transitions(solo)
        assert penalty > 0
        # at least the boot delay, at most boot + one full control tick +
        # the shutdown still in flight when the arrival lands
        assert penalty >= model.boot_s - 1e-9
        assert penalty <= model.boot_s + model.shutdown_s + 0.25 * solo + 1e-9
        # jobs before the gap never waited on a wake-up
        first = f"{plan.workload.name}#0"
        assert gated.response_time_s(first) == pytest.approx(
            static.response_time_s(first)
        )

    def test_min_idle_hysteresis_prevents_gating_in_short_gaps(self, rig):
        store, plan, solo = rig
        # gaps much shorter than min_idle_s: the policy must never fire
        schedule = [(plan, i * 1.5 * solo) for i in range(4)]
        result = store.run_trace(
            schedule,
            policy=gate_policy(solo, min_idle_s=10.0 * solo),
            control_interval_s=0.25 * solo,
        )
        assert result.gated_node_seconds == 0.0
        assert result.energy_saved_j == 0.0

    def test_gated_residual_power_is_priced(self, rig):
        store, plan, solo = rig
        schedule = gappy_schedule(plan, solo)
        leaky = store.run_trace(
            schedule,
            policy=gate_policy(solo),
            control_interval_s=0.25 * solo,
        )
        hard_off = store.run_trace(
            schedule,
            policy=gate_policy(
                solo,
                transitions=PowerStateModel(
                    shutdown_s=0.05 * solo,
                    boot_s=0.1 * solo,
                    transition_power_fraction=0.5,
                    gated_power_fraction=0.0,
                ),
            ),
            control_interval_s=0.25 * solo,
        )
        # standby leakage costs energy relative to a hard power-off
        assert hard_off.energy_j < leaky.energy_j

    def test_energy_conservation_against_intervals(self, rig):
        store, plan, solo = rig
        result = store.run_trace(
            gappy_schedule(plan, solo),
            policy=gate_policy(solo),
            control_interval_s=0.25 * solo,
        )
        assert sum(i.energy_j for i in result.intervals) == pytest.approx(
            result.energy_j
        )

    def test_zero_duration_transitions(self, rig):
        store, plan, solo = rig
        instant = PowerStateModel(
            shutdown_s=0.0,
            boot_s=0.0,
            transition_power_fraction=0.5,
            gated_power_fraction=0.0,
        )
        result = store.run_trace(
            gappy_schedule(plan, solo),
            policy=gate_policy(solo, transitions=instant),
            control_interval_s=0.25 * solo,
        )
        assert result.gated_node_seconds > 0
        # Instant transitions leave only control-tick granularity as wake
        # penalty: the ungate lands at one tick, the release at the next
        # event — so each response sits within two ticks of the static one.
        static = store.run_trace(gappy_schedule(plan, solo))
        tick = 0.25 * solo
        for name in static.job_completion_s:
            penalty = result.response_time_s(name) - static.response_time_s(name)
            assert -1e-9 <= penalty <= 2 * tick + 1e-9


class TestStaticParity:
    def test_static_policy_bit_identical_to_no_policy(self, rig):
        store, plan, solo = rig
        jobs = trace_jobs(gappy_schedule(plan, solo))
        plain = store.simulator.run(jobs)
        static = store.simulator.run(jobs, policy=StaticPolicy())
        assert static.makespan_s == plain.makespan_s
        assert static.energy_j == plain.energy_j
        assert static.node_energy_j == plain.node_energy_j
        assert static.job_start_s == plain.job_start_s
        assert static.job_completion_s == plain.job_completion_s
        assert static.gated_node_seconds == 0.0
        assert static.energy_saved_j == 0.0


class TestDvfsLadder:
    def test_idle_clock_down_slows_and_saves_power(self, rig):
        store, plan, solo = rig
        # hold the wimpy nodes at half clock regardless of load
        policy = DvfsLadderPolicy(ladder=((0, 0.5),), node_role=WIMPY)
        schedule = [(plan, 0.0), (plan, 2.0 * solo)]
        static = store.run_trace(schedule)
        slowed = store.run_trace(
            schedule, policy=policy, control_interval_s=0.1 * solo
        )
        # half-clock wimpy nodes stretch the join (they bind the plan)
        assert slowed.makespan_s > static.makespan_s
        # no gating happened, only frequency steps
        assert slowed.gated_node_seconds == 0.0


class TestGuards:
    def test_never_waking_policy_stalls_into_max_events(self, rig):
        store, plan, solo = rig
        jobs = trace_jobs(gappy_schedule(plan, solo))
        with pytest.raises(SimulationError, match="exceeded"):
            store.simulator.run(
                jobs,
                policy=GateAndForgetPolicy(),
                control_interval_s=0.25 * solo,
                max_events=2_000,
            )

    def test_control_interval_must_be_positive(self, rig):
        store, plan, solo = rig
        jobs = trace_jobs([(plan, 0.0)])
        with pytest.raises(SimulationError, match="control interval"):
            store.simulator.run(
                jobs, policy=gate_policy(solo), control_interval_s=0.0
            )

    def test_gating_never_strands_a_running_job(self, rig):
        """A policy with no idle hysteresis tries to gate at every tick;
        nodes demanded by running jobs must be protected, so every job
        still completes."""
        store, plan, solo = rig
        schedule = [(plan, 0.0), (plan, 0.5 * solo), (plan, 4.0 * solo)]
        result = store.run_trace(
            schedule,
            policy=gate_policy(solo, min_idle_s=0.0),
            control_interval_s=0.1 * solo,
        )
        assert len(result.job_completion_s) == 3
