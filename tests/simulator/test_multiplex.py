"""The multiplexed engine against its oracle: the serial event loop.

:func:`repro.simulator.multiplex.run_multiplexed` promises results
*bit-identical* to running each (simulator, jobs) pair through
``ClusterSimulator.run`` alone — every comparison here is exact ``==``,
never approx.  The generators deliberately cover what the flat fast path
has to get right: mixed beefy/wimpy clusters of different sizes in one
batch, network flows under a lossy switch (efficiency rescaling),
multi-phase jobs (barriers), staggered arrivals (idle gaps and admission
ties), and lanes finishing at different times.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.cluster import ClusterSpec
from repro.hardware.node import NodeSpec
from repro.hardware.power import IdlePeakModel, PowerLawModel
from repro.simulator.engine import ClusterSimulator
from repro.simulator.jobs import FlowSpec, Job, Phase
from repro.simulator.multiplex import run_multiplexed
from repro.simulator.network import SMC_GS5_SWITCH
from repro.simulator.resources import cpu, disk, nic_in, nic_out

BEEFY = NodeSpec(
    name="beefy",
    cpu_bandwidth_mbps=1000.0,
    memory_mb=4000.0,
    disk_bandwidth_mbps=250.0,
    nic_bandwidth_mbps=100.0,
    power_model=PowerLawModel(80.0, 0.3),
    engine_base_utilization=0.1,
)

WIMPY = NodeSpec(
    name="wimpy",
    cpu_bandwidth_mbps=300.0,
    memory_mb=1000.0,
    disk_bandwidth_mbps=80.0,
    nic_bandwidth_mbps=100.0,
    power_model=IdlePeakModel(idle_w=10.0, peak_w=30.0, exponent=1.0),
    engine_base_utilization=0.05,
)


@st.composite
def lane_jobs(draw):
    """One lane: a mixed cluster plus staggered multi-phase jobs."""
    n_beefy = draw(st.integers(0, 2))
    n_wimpy = draw(st.integers(0 if n_beefy else 1, 2))
    cluster = ClusterSpec.beefy_wimpy(BEEFY, n_beefy, WIMPY, n_wimpy)
    n = cluster.num_nodes

    jobs = []
    n_jobs = draw(st.integers(1, 3))
    for j in range(n_jobs):
        start = draw(st.floats(0.0, 4.0, allow_nan=False, allow_infinity=False))
        phases = []
        for p in range(draw(st.integers(1, 2))):
            flows = []
            for node in range(n):
                volume = draw(st.floats(1.0, 200.0))
                demands = {cpu(node): 1.0, disk(node): 1.0}
                if n > 1 and draw(st.booleans()):
                    other = (node + 1) % n
                    demands[nic_out(node)] = 0.5
                    demands[nic_in(other)] = 0.5
                flows.append(
                    FlowSpec(f"j{j}p{p}n{node}", volume, demands)
                )
            phases.append(Phase(f"p{p}", tuple(flows)))
        jobs.append(Job(name=f"j{j}", phases=tuple(phases), start_time_s=start))
    return cluster, jobs


def assert_identical(got, oracle):
    assert got.makespan_s == oracle.makespan_s
    assert got.energy_j == oracle.energy_j
    assert got.node_energy_j == oracle.node_energy_j
    assert got.job_start_s == oracle.job_start_s
    assert got.job_completion_s == oracle.job_completion_s
    assert got.intervals == oracle.intervals


def oracle_run(cluster, jobs, record):
    return ClusterSimulator(
        cluster, switch=SMC_GS5_SWITCH, record_intervals=record
    ).run(jobs)


@settings(max_examples=40, deadline=None)
@given(st.lists(lane_jobs(), min_size=1, max_size=4), st.booleans())
def test_multiplexed_matches_serial(lanes, record):
    """A whole batch reproduces each lane's solo serial run bit for bit."""
    runs = [
        (
            ClusterSimulator(
                cluster, switch=SMC_GS5_SWITCH, record_intervals=record
            ),
            jobs,
        )
        for cluster, jobs in lanes
    ]
    results = run_multiplexed(runs)
    assert len(results) == len(lanes)
    for (cluster, jobs), got in zip(lanes, results):
        assert_identical(got, oracle_run(cluster, jobs, record))


@settings(max_examples=25, deadline=None)
@given(st.lists(lane_jobs(), min_size=2, max_size=4), st.data())
def test_batch_composition_independence(lanes, data):
    """How lanes are grouped into batches must not change any result."""
    records = [data.draw(st.booleans()) for _ in lanes]

    def sim(i):
        return ClusterSimulator(
            lanes[i][0], switch=SMC_GS5_SWITCH, record_intervals=records[i]
        )

    together = run_multiplexed([(sim(i), lanes[i][1]) for i in range(len(lanes))])
    split = len(lanes) // 2
    apart = run_multiplexed(
        [(sim(i), lanes[i][1]) for i in range(split)]
    ) + run_multiplexed(
        [(sim(i), lanes[i][1]) for i in range(split, len(lanes))]
    )
    for got, ref in zip(together, apart):
        assert_identical(got, ref)


def test_empty_batch():
    assert run_multiplexed([]) == []


def test_mixed_recording_in_one_batch():
    """Recording and non-recording lanes ride one call, results in order."""
    lanes = [
        (ClusterSpec.homogeneous(BEEFY, 1), None),
        (ClusterSpec.beefy_wimpy(BEEFY, 1, WIMPY, 1), None),
        (ClusterSpec.homogeneous(WIMPY, 2), None),
    ]
    jobs = [
        Job(
            name="j",
            phases=(
                Phase(
                    "p",
                    tuple(
                        FlowSpec(
                            f"f{node}",
                            50.0 * (node + 1),
                            {cpu(node): 1.0, disk(node): 1.0},
                        )
                        for node in range(n)
                    ),
                ),
            ),
            start_time_s=1.5,
        )
        for n in (1, 2, 2)
    ]
    records = [False, True, False]
    results = run_multiplexed(
        [
            (
                ClusterSimulator(
                    cluster, switch=SMC_GS5_SWITCH, record_intervals=record
                ),
                job,
            )
            for (cluster, _), job, record in zip(lanes, [[j] for j in jobs], records)
        ]
    )
    for (cluster, _), job, record, got in zip(
        lanes, [[j] for j in jobs], records, results
    ):
        assert_identical(got, oracle_run(cluster, job, record))
    assert results[1].intervals and not results[0].intervals
