"""Tests for repro.policy: control policies and (design x policy) candidates."""
