"""PolicyCandidate: the (design x policy) search object."""

import pickle
from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.policy import PolicyCandidate, PowerGatePolicy, StaticPolicy
from repro.pstore.plans import ExecutionMode
from repro.search.grid import DesignGrid


def designs():
    grid = DesignGrid(
        node_pairs=[(CLUSTER_V_NODE, WIMPY_LAPTOP_B)], cluster_sizes=(6,)
    )
    return grid.candidate_list()


class TestConstruction:
    def test_auto_label(self):
        design = designs()[2]
        candidate = PolicyCandidate(design=design, policy=StaticPolicy())
        assert candidate.label == f"{design.label}|static"

    def test_explicit_label_preserved(self):
        candidate = PolicyCandidate(
            design=designs()[0], policy=StaticPolicy(), label="renamed"
        )
        assert candidate.label == "renamed"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PolicyCandidate(design=designs()[0], policy="not-a-policy")
        with pytest.raises(ConfigurationError):
            PolicyCandidate(
                design=designs()[0],
                policy=StaticPolicy(),
                control_interval_s=0.0,
            )


class TestDesignSurface:
    def test_delegates_design_accessors(self):
        design = designs()[3]
        candidate = PolicyCandidate(design=design, policy=PowerGatePolicy())
        assert candidate.num_beefy == design.num_beefy
        assert candidate.num_wimpy == design.num_wimpy
        assert candidate.num_nodes == design.num_nodes
        assert candidate.beefy is design.beefy
        assert candidate.wimpy is design.wimpy
        assert candidate.frequency_factor == design.frequency_factor
        assert candidate.effective_beefy_frequency == design.effective_beefy_frequency
        assert candidate.effective_wimpy_frequency == design.effective_wimpy_frequency
        assert candidate.homogeneous == design.homogeneous
        assert candidate.mode is design.mode
        assert candidate.cluster().num_nodes == design.cluster().num_nodes

    def test_with_mode_forces_design_mode(self):
        candidate = PolicyCandidate(design=designs()[1], policy=StaticPolicy())
        forced = candidate.with_mode(ExecutionMode.HETEROGENEOUS)
        assert forced.mode is ExecutionMode.HETEROGENEOUS
        assert forced.policy == candidate.policy
        assert forced.label == candidate.label  # label survives the rewrap

    def test_engine_relabeling_via_replace_works(self):
        candidate = PolicyCandidate(design=designs()[0], policy=StaticPolicy())
        renamed = replace(candidate, label="other")
        assert renamed.label == "other"
        assert renamed.key() == candidate.key()


class TestKeys:
    def test_namespaced_and_disjoint_from_design_keys(self):
        """Policy keys can never collide with design-only keys — tested in
        both directions (no policy key equals any design key, and no
        design key equals any policy key)."""
        all_designs = designs()
        design_keys = {design.key() for design in all_designs}
        policy_keys = {
            PolicyCandidate(design=design, policy=policy).key()
            for design in all_designs
            for policy in (StaticPolicy(), PowerGatePolicy())
        }
        assert design_keys.isdisjoint(policy_keys)
        assert policy_keys.isdisjoint(design_keys)
        # and policy keys are unique across (design, policy) pairs
        assert len(policy_keys) == 2 * len(all_designs)

    def test_key_varies_with_policy_and_interval(self):
        design = designs()[0]
        a = PolicyCandidate(design=design, policy=StaticPolicy())
        b = PolicyCandidate(design=design, policy=PowerGatePolicy())
        c = PolicyCandidate(
            design=design, policy=StaticPolicy(), control_interval_s=2.0
        )
        assert len({a.key(), b.key(), c.key()}) == 3

    def test_static_policy_key_differs_from_bare_design(self):
        """A StaticPolicy candidate evaluates identically to its bare
        design but must never share its cache row (the record carries
        policy annotations)."""
        design = designs()[0]
        wrapped = PolicyCandidate(design=design, policy=StaticPolicy())
        assert wrapped.key() != design.key()


class TestPickling:
    def test_round_trips_through_pickle(self):
        candidate = PolicyCandidate(
            design=designs()[2], policy=PowerGatePolicy(min_idle_s=3.0)
        )
        clone = pickle.loads(pickle.dumps(candidate))
        assert clone.key() == candidate.key()
        assert clone.label == candidate.label
        assert clone.policy == candidate.policy
