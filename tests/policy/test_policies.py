"""Control-policy behavior: observe() semantics, validation, cache keys."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.cluster import BEEFY, WIMPY
from repro.hardware.powerstate import TRADITIONAL_SERVER, PowerStateModel
from repro.policy import (
    ACTIVE,
    GATED,
    ClusterState,
    DvfsLadderPolicy,
    GateNode,
    PolicyChain,
    PowerGatePolicy,
    SetFrequency,
    StaticPolicy,
    UngateNode,
)


def make_state(
    states=(ACTIVE, ACTIVE, ACTIVE, ACTIVE),
    roles=(BEEFY, BEEFY, WIMPY, WIMPY),
    utilization=None,
    factors=None,
    queue_depth=0,
    held_jobs=0,
    idle_s=0.0,
):
    n = len(states)
    return ClusterState(
        time_s=10.0,
        node_roles=tuple(roles),
        node_states=tuple(states),
        node_utilization=(
            tuple(utilization) if utilization is not None else (0.0,) * n
        ),
        frequency_factors=tuple(factors) if factors is not None else (1.0,) * n,
        queue_depth=queue_depth,
        held_jobs=held_jobs,
        idle_s=idle_s,
    )


class TestClusterState:
    def test_nodes_in_state_filters_by_role(self):
        state = make_state(states=(ACTIVE, GATED, ACTIVE, GATED))
        assert state.nodes_in_state(ACTIVE) == [0, 2]
        assert state.nodes_in_state(GATED, WIMPY) == [3]
        assert state.nodes_in_state(ACTIVE, BEEFY) == [0]

    def test_mean_utilization_over_active_nodes_only(self):
        state = make_state(
            states=(ACTIVE, ACTIVE, ACTIVE, GATED),
            utilization=(0.5, 0.3, 0.2, 0.0),
        )
        assert state.mean_utilization(BEEFY) == pytest.approx(0.4)
        # the gated wimpy node does not dilute the role mean
        assert state.mean_utilization(WIMPY) == pytest.approx(0.2)

    def test_mean_utilization_all_gated_role_is_zero(self):
        state = make_state(states=(ACTIVE, ACTIVE, GATED, GATED))
        assert state.mean_utilization(WIMPY) == 0.0


class TestStaticPolicy:
    def test_never_acts_and_is_static(self):
        policy = StaticPolicy()
        assert policy.is_static
        assert policy.observe(make_state(held_jobs=3)) == []
        assert policy.cache_key() == ("static",)
        assert policy.label == "static"


class TestPowerGatePolicy:
    def test_gates_idle_wimpy_nodes(self):
        policy = PowerGatePolicy(utilization_floor=0.05)
        actions = policy.observe(make_state(idle_s=5.0))
        assert actions == [GateNode(2), GateNode(3)]

    def test_respects_min_active(self):
        policy = PowerGatePolicy(min_active=1)
        actions = policy.observe(make_state(idle_s=5.0))
        assert actions == [GateNode(3)]

    def test_waits_for_min_idle(self):
        policy = PowerGatePolicy(min_idle_s=10.0)
        assert policy.observe(make_state(idle_s=5.0)) == []
        assert policy.observe(make_state(idle_s=15.0)) != []

    def test_no_gating_above_utilization_floor(self):
        policy = PowerGatePolicy(utilization_floor=0.05)
        busy = make_state(utilization=(0.0, 0.0, 0.5, 0.5))
        assert policy.observe(busy) == []

    def test_wakes_gated_nodes_when_jobs_held(self):
        policy = PowerGatePolicy()
        state = make_state(states=(ACTIVE, ACTIVE, GATED, GATED), held_jobs=2)
        assert policy.observe(state) == [UngateNode(2), UngateNode(3)]

    def test_gates_other_role_when_configured(self):
        policy = PowerGatePolicy(node_role=BEEFY)
        actions = policy.observe(make_state(idle_s=5.0))
        assert actions == [GateNode(0), GateNode(1)]

    def test_is_dynamic(self):
        assert not PowerGatePolicy().is_static

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PowerGatePolicy(utilization_floor=1.5)
        with pytest.raises(ConfigurationError):
            PowerGatePolicy(min_active=-1)
        with pytest.raises(ConfigurationError):
            PowerGatePolicy(min_idle_s=-0.1)

    def test_cache_key_covers_transition_pricing(self):
        base = PowerGatePolicy()
        other = PowerGatePolicy(
            transitions=PowerStateModel(boot_s=1.0, shutdown_s=1.0)
        )
        assert base.cache_key() != other.cache_key()
        assert base.cache_key() == PowerGatePolicy().cache_key()

    def test_power_state_model_is_own_transitions(self):
        model = PowerStateModel(boot_s=2.0)
        assert PowerGatePolicy(transitions=model).power_state_model() is model


class TestDvfsLadderPolicy:
    def test_target_factor_picks_largest_rung(self):
        policy = DvfsLadderPolicy(ladder=((0, 0.6), (2, 0.8), (4, 1.0)))
        assert policy.target_factor(0) == 0.6
        assert policy.target_factor(1) == 0.6
        assert policy.target_factor(2) == 0.8
        assert policy.target_factor(7) == 1.0

    def test_steps_only_mismatched_nodes(self):
        policy = DvfsLadderPolicy(ladder=((0, 0.6), (2, 1.0)))
        state = make_state(queue_depth=3, factors=(1.0, 1.0, 0.6, 1.0))
        assert policy.observe(state) == [SetFrequency(2, 1.0)]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DvfsLadderPolicy(ladder=())
        with pytest.raises(ConfigurationError):
            DvfsLadderPolicy(ladder=((1, 0.5),))  # must start at depth 0
        with pytest.raises(ConfigurationError):
            DvfsLadderPolicy(ladder=((0, 0.5), (0, 0.8)))  # not increasing
        with pytest.raises(ConfigurationError):
            DvfsLadderPolicy(ladder=((0, 1.5),))  # factor out of range

    def test_set_frequency_validates_factor(self):
        with pytest.raises(ConfigurationError):
            SetFrequency(0, 0.0)
        with pytest.raises(ConfigurationError):
            SetFrequency(0, 1.2)


class TestPolicyChain:
    def test_concatenates_actions_in_order(self):
        chain = PolicyChain(
            policies=(
                PowerGatePolicy(node_role=WIMPY),
                DvfsLadderPolicy(ladder=((0, 0.6),), node_role=BEEFY),
            )
        )
        actions = chain.observe(make_state(idle_s=5.0))
        assert actions == [
            GateNode(2),
            GateNode(3),
            SetFrequency(0, 0.6),
            SetFrequency(1, 0.6),
        ]

    def test_static_only_if_all_members_static(self):
        assert PolicyChain(policies=(StaticPolicy(), StaticPolicy())).is_static
        assert not PolicyChain(
            policies=(StaticPolicy(), PowerGatePolicy())
        ).is_static

    def test_rejects_ambiguous_transition_pricing(self):
        a = PowerGatePolicy(transitions=PowerStateModel(boot_s=1.0))
        b = PowerGatePolicy(
            node_role=BEEFY, transitions=PowerStateModel(boot_s=9.0)
        )
        with pytest.raises(ConfigurationError):
            PolicyChain(policies=(a, b))

    def test_single_nondefault_model_wins(self):
        model = PowerStateModel(boot_s=1.0)
        chain = PolicyChain(
            policies=(StaticPolicy(), PowerGatePolicy(transitions=model))
        )
        assert chain.power_state_model() is model
        default = PolicyChain(policies=(StaticPolicy(),))
        assert default.power_state_model() is TRADITIONAL_SERVER

    def test_needs_at_least_one_policy(self):
        with pytest.raises(ConfigurationError):
            PolicyChain(policies=())

    def test_cache_key_and_label_compose(self):
        chain = PolicyChain(policies=(StaticPolicy(), PowerGatePolicy()))
        assert chain.cache_key()[0] == "chain"
        assert chain.label == "static+" + PowerGatePolicy().label
