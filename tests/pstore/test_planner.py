"""The P-store planner: execution-mode and join-method resolution."""

import pytest

from repro.errors import PlanError
from repro.hardware.cluster import ClusterSpec
from repro.hardware.presets import BEEFY_L5630, CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.pstore.planner import broadcast_network_mb, plan_join, shuffle_network_mb
from repro.pstore.plans import ExecutionMode
from repro.workloads.queries import JoinMethod, JoinWorkloadSpec, q3_join, section54_join


def workload(build_mb, sel=0.1, probe_mb=None, method=JoinMethod.SHUFFLE):
    return JoinWorkloadSpec(
        name="w",
        build_volume_mb=build_mb,
        probe_volume_mb=probe_mb or build_mb * 4,
        build_selectivity=sel,
        probe_selectivity=0.05,
        method=method,
    )


BW = ClusterSpec.beefy_wimpy(CLUSTER_V_NODE, 2, WIMPY_LAPTOP_B, 6)
AB = ClusterSpec.homogeneous(CLUSTER_V_NODE, 8)


class TestModeSelection:
    def test_homogeneous_when_hash_table_fits(self):
        """Figure 10(a)'s case: 875 MB/node fits the 7 GB Wimpy memory."""
        plan = plan_join(BW, section54_join(0.01, 0.10))
        assert plan.mode is ExecutionMode.HOMOGENEOUS
        assert plan.num_join_nodes == 8

    def test_heterogeneous_when_wimpy_memory_insufficient(self):
        """Figure 10(b)'s case: 8.75 GB/node exceeds Wimpy's 7 GB."""
        plan = plan_join(BW, section54_join(0.10, 0.10))
        assert plan.mode is ExecutionMode.HETEROGENEOUS
        assert plan.num_join_nodes == 2  # beefy nodes only

    def test_infeasible_when_beefy_memory_insufficient(self):
        """'1 Beefy node cannot build the entire hash table.'"""
        one_beefy = ClusterSpec.beefy_wimpy(CLUSTER_V_NODE, 1, WIMPY_LAPTOP_B, 7)
        with pytest.raises(PlanError, match="heterogeneous"):
            plan_join(one_beefy, section54_join(0.10, 0.10))

    def test_infeasible_all_wimpy(self):
        all_wimpy = ClusterSpec.beefy_wimpy(CLUSTER_V_NODE, 0, WIMPY_LAPTOP_B, 8)
        with pytest.raises(PlanError, match="2-pass"):
            plan_join(all_wimpy, section54_join(0.10, 0.10))

    def test_homogeneous_cluster_out_of_memory(self):
        tiny = ClusterSpec.homogeneous(
            CLUSTER_V_NODE.with_overrides(memory_mb=100.0), 4
        )
        with pytest.raises(PlanError):
            plan_join(tiny, section54_join(0.10, 0.10))

    def test_force_heterogeneous(self):
        """Section 5.2's SF400 runs: hetero despite tiny hash shares."""
        cluster = ClusterSpec.beefy_wimpy(BEEFY_L5630, 2, WIMPY_LAPTOP_B, 2)
        plan = plan_join(
            cluster, q3_join(400, 0.10, 0.50), force_mode=ExecutionMode.HETEROGENEOUS
        )
        assert plan.mode is ExecutionMode.HETEROGENEOUS
        assert plan.num_join_nodes == 2

    def test_force_homogeneous_fails_when_impossible(self):
        with pytest.raises(PlanError, match="forced"):
            plan_join(
                BW, section54_join(0.10, 0.10), force_mode=ExecutionMode.HOMOGENEOUS
            )


class TestMethodSelection:
    def test_explicit_shuffle(self):
        plan = plan_join(AB, q3_join(1000))
        assert plan.method is JoinMethod.SHUFFLE

    def test_local_method(self):
        plan = plan_join(AB, workload(1000.0, method=JoinMethod.LOCAL))
        assert plan.method is JoinMethod.LOCAL
        assert plan.mode is ExecutionMode.HOMOGENEOUS

    def test_broadcast_feasible(self):
        plan = plan_join(AB, q3_join(1000, 0.01, 0.05, method=JoinMethod.BROADCAST))
        assert plan.method is JoinMethod.BROADCAST
        # full qualifying table on every node
        assert plan.hash_table_share_mb() == pytest.approx(300.0)

    def test_broadcast_infeasible_memory(self):
        big = workload(CLUSTER_V_NODE.memory_mb * 2, sel=1.0, method=JoinMethod.BROADCAST)
        with pytest.raises(PlanError, match="broadcast"):
            plan_join(AB, big)

    def test_broadcast_infeasible_heterogeneous(self):
        with pytest.raises(PlanError):
            plan_join(
                BW,
                section54_join(0.10, 0.10).with_method(JoinMethod.BROADCAST),
            )

    def test_auto_picks_broadcast_for_tiny_build(self):
        """A 1%-selective small build table is cheaper to broadcast."""
        q = workload(100.0, sel=0.01, probe_mb=100_000.0, method=JoinMethod.AUTO)
        plan = plan_join(AB, q)
        assert plan.method is JoinMethod.BROADCAST
        assert any("auto-chose" in note for note in plan.notes)

    def test_auto_picks_shuffle_for_large_build(self):
        q = workload(50_000.0, sel=1.0, probe_mb=50_000.0, method=JoinMethod.AUTO)
        plan = plan_join(AB, q)
        assert plan.method is JoinMethod.SHUFFLE


class TestNetworkVolumes:
    def test_shuffle_homogeneous_fraction(self):
        q = workload(8000.0, sel=0.5, probe_mb=8000.0)
        # qualifying = 4000 + 400; each node keeps 1/8
        expected = (4000.0 + 400.0) * 7 / 8
        assert shuffle_network_mb(q, 8, 8) == pytest.approx(expected)

    def test_shuffle_total_traffic_independent_of_join_nodes(self):
        """Total shuffle bytes are (n-1)/n * qualifying regardless of how many
        nodes build hash tables — heterogeneity *concentrates* ingestion on
        the Beefy NICs (Section 5.4's bottleneck) without adding bytes."""
        q = workload(8000.0, sel=0.5)
        assert shuffle_network_mb(q, 8, 2) == pytest.approx(
            shuffle_network_mb(q, 8, 8)
        )
        # but per-receiver ingest doubles going from 8 to 2 join nodes
        per_receiver_m2 = shuffle_network_mb(q, 8, 2) / 2
        per_receiver_m8 = shuffle_network_mb(q, 8, 8) / 8
        assert per_receiver_m2 == pytest.approx(4 * per_receiver_m8)

    def test_broadcast_scales_with_nodes(self):
        """The algorithmic bottleneck: volume grows ~linearly with n."""
        q = workload(1000.0, sel=0.1)
        assert broadcast_network_mb(q, 16) == pytest.approx(100.0 * 15)
        assert broadcast_network_mb(q, 32) == pytest.approx(100.0 * 31)

    def test_shuffle_invalid_join_nodes(self):
        with pytest.raises(PlanError):
            shuffle_network_mb(workload(10.0), 4, 0)


class TestPlanObject:
    def test_explain_mentions_key_facts(self):
        plan = plan_join(BW, section54_join(0.10, 0.10))
        text = plan.explain()
        assert "heterogeneous" in text
        assert "shuffle" in text
        assert "hash table/node" in text

    def test_plan_validation(self):
        plan = plan_join(AB, q3_join(1000))
        with pytest.raises(PlanError):
            type(plan)(
                workload=plan.workload,
                cluster=plan.cluster,
                method=JoinMethod.AUTO,  # unresolved
                mode=plan.mode,
                join_node_ids=plan.join_node_ids,
            )

    def test_join_node_ids_validated(self):
        plan = plan_join(AB, q3_join(1000))
        with pytest.raises(PlanError, match="out of range"):
            type(plan)(
                workload=plan.workload,
                cluster=plan.cluster,
                method=plan.method,
                mode=plan.mode,
                join_node_ids=(99,),
            )
