"""Catalog placement metadata and functional partitioned storage."""

import numpy as np
import pytest

from repro.data import RecordBatch
from repro.errors import ExecutionError, WorkloadError
from repro.pstore.catalog import Catalog, CatalogTable, PartitionKind, PartitionScheme
from repro.pstore.operators.exchange import hash_key_to_node
from repro.pstore.storage import PartitionedStore
from repro.workloads import tpch


def test_scheme_builders():
    h = PartitionScheme.hash("l_orderkey")
    assert h.kind is PartitionKind.HASH
    r = PartitionScheme.replicated()
    assert r.kind is PartitionKind.REPLICATED


def test_scheme_validation():
    with pytest.raises(WorkloadError):
        PartitionScheme(kind=PartitionKind.HASH, attribute=None)
    with pytest.raises(WorkloadError):
        PartitionScheme(kind=PartitionKind.REPLICATED, attribute="x")


def test_compatibility():
    assert PartitionScheme.hash("a").compatible_with_key("a")
    assert not PartitionScheme.hash("a").compatible_with_key("b")
    assert PartitionScheme.replicated().compatible_with_key("anything")


def test_paper_layout_compatibility():
    """Section 3.1's layout decides which joins repartition."""
    catalog = Catalog.paper_layout()
    # CUSTOMER x ORDERS on custkey: both hashed on custkey -> compatible.
    assert catalog.join_is_partition_compatible(
        "customer", "orders", "c_custkey", "o_custkey"
    )
    # ORDERS x LINEITEM on orderkey: ORDERS is on custkey -> incompatible.
    assert not catalog.join_is_partition_compatible(
        "orders", "lineitem", "o_orderkey", "l_orderkey"
    )
    # replicated NATION joins compatibly with anything
    assert catalog.join_is_partition_compatible(
        "nation", "supplier", "n_nationkey", "s_nationkey"
    ) is PartitionScheme.hash("s_suppkey").compatible_with_key("s_suppkey")


def test_catalog_registry():
    catalog = Catalog()
    table = CatalogTable(tpch.ORDERS, PartitionScheme.hash("o_custkey"))
    catalog.register(table)
    assert "orders" in catalog
    assert catalog.table("orders") is table
    with pytest.raises(WorkloadError, match="already registered"):
        catalog.register(table)
    with pytest.raises(WorkloadError, match="unknown table"):
        catalog.table("ghost")


def make_batch(n=1000):
    return RecordBatch(
        {"key": np.arange(n, dtype=np.int64), "v": np.ones(n)}
    )


class TestPartitionedStore:
    def test_hash_partitioning_complete_and_disjoint(self):
        store = PartitionedStore("t", make_batch(), PartitionScheme.hash("key"), 4)
        assert store.total_rows == 1000
        seen = np.concatenate([p.column("key") for p in store.partitions()])
        assert sorted(seen) == list(range(1000))

    def test_placement_matches_exchange_routing(self):
        """Partition-compatible joins find all rows locally."""
        data = make_batch(500)
        store = PartitionedStore("t", data, PartitionScheme.hash("key"), 4)
        expected = hash_key_to_node(data.column("key"), 4)
        for node in range(4):
            keys = store.partition(node).column("key")
            assert np.array_equal(
                hash_key_to_node(keys, 4), np.full(len(keys), node)
            )
            assert len(keys) == int(np.sum(expected == node))

    def test_replicated(self):
        store = PartitionedStore("t", make_batch(100), PartitionScheme.replicated(), 3)
        assert all(p.num_rows == 100 for p in store.partitions())
        assert store.total_rows == 100
        assert store.imbalance() == 1.0

    def test_imbalance_near_one_for_uniform_keys(self):
        store = PartitionedStore("t", make_batch(20_000), PartitionScheme.hash("key"), 4)
        assert store.imbalance() == pytest.approx(1.0, abs=0.1)

    def test_partition_bounds(self):
        store = PartitionedStore("t", make_batch(10), PartitionScheme.hash("key"), 2)
        with pytest.raises(ExecutionError):
            store.partition(2)

    def test_invalid_num_nodes(self):
        with pytest.raises(ExecutionError):
            PartitionedStore("t", make_batch(10), PartitionScheme.hash("key"), 0)
