"""Functional P-store: parallel joins really compute the right answer."""

import numpy as np
import pytest

from repro.data import RecordBatch
from repro.errors import ExecutionError
from repro.pstore.catalog import PartitionScheme
from repro.pstore.functional import FunctionalCluster
from repro.pstore.operators.hashjoin import hash_join_batches
from repro.pstore.storage import PartitionedStore
from repro.workloads import datagen

SF = 0.002


@pytest.fixture(scope="module")
def dataset():
    orders, lineitem = datagen.generate_join_pair(SF, seed=21)
    return orders, lineitem


def partitioned(batch, key, n):
    return PartitionedStore("t", batch, PartitionScheme.hash(key), n).partitions()


def reference_join(orders, lineitem, build_pred=None, probe_pred=None):
    """Single-node reference answer."""
    if build_pred is not None:
        orders = orders.filter(build_pred(orders))
    if probe_pred is not None:
        lineitem = lineitem.filter(probe_pred(lineitem))
    return hash_join_batches(orders, lineitem, key="o_orderkey", probe_key="l_orderkey")


def orders_pred(selectivity):
    cutoff = datagen.date_cutoff_for_selectivity(selectivity)
    return lambda b: b.column("o_orderdate") < cutoff


def lineitem_pred(selectivity):
    cutoff = datagen.date_cutoff_for_selectivity(selectivity)
    return lambda b: b.column("l_shipdate") < cutoff


def sorted_pairs(joined):
    """Canonical multiset of joined (orderkey, extendedprice) pairs."""
    keys = joined.column("o_orderkey")
    prices = joined.column("l_extendedprice")
    order = np.lexsort((prices, keys))
    return list(zip(keys[order], prices[order]))


class TestShuffleJoin:
    def test_matches_reference(self, dataset):
        orders, lineitem = dataset
        cluster = FunctionalCluster(num_nodes=4)
        # partition-incompatible placement, as in the paper's Q3 setup
        result = cluster.shuffle_join(
            partitioned(orders, "o_custkey", 4),
            partitioned(lineitem, "l_shipdate", 4),
            build_key="o_orderkey",
            probe_key="l_orderkey",
        )
        expected = reference_join(orders, lineitem)
        assert result.total_rows == expected.num_rows
        assert sorted_pairs(result.result) == sorted_pairs(expected)

    def test_with_predicates(self, dataset):
        orders, lineitem = dataset
        cluster = FunctionalCluster(num_nodes=4)
        result = cluster.shuffle_join(
            partitioned(orders, "o_custkey", 4),
            partitioned(lineitem, "l_shipdate", 4),
            build_key="o_orderkey",
            probe_key="l_orderkey",
            build_predicate=orders_pred(0.20),
            probe_predicate=lineitem_pred(0.30),
        )
        expected = reference_join(
            orders, lineitem, build_pred=orders_pred(0.20), probe_pred=lineitem_pred(0.30)
        )
        assert result.total_rows == expected.num_rows

    def test_heterogeneous_join_nodes(self, dataset):
        """Only nodes 0 and 1 build hash tables; 2 and 3 feed them."""
        orders, lineitem = dataset
        cluster = FunctionalCluster(num_nodes=4)
        result = cluster.shuffle_join(
            partitioned(orders, "o_custkey", 4),
            partitioned(lineitem, "l_shipdate", 4),
            build_key="o_orderkey",
            probe_key="l_orderkey",
            join_node_ids=[0, 1],
        )
        expected = reference_join(orders, lineitem)
        assert result.total_rows == expected.num_rows
        # feeder nodes produce no results
        assert len(result.per_node_result_rows) == 2

    def test_network_fraction_homogeneous(self, dataset):
        """~(n-1)/n of routed rows cross the network under uniform hashing."""
        orders, lineitem = dataset
        cluster = FunctionalCluster(num_nodes=4)
        result = cluster.shuffle_join(
            partitioned(orders, "o_custkey", 4),
            partitioned(lineitem, "l_shipdate", 4),
            build_key="o_orderkey",
            probe_key="l_orderkey",
        )
        assert result.build_stats.network_fraction == pytest.approx(0.75, abs=0.05)
        assert result.probe_stats.network_fraction == pytest.approx(0.75, abs=0.05)

    def test_network_fraction_heterogeneous_higher(self, dataset):
        orders, lineitem = dataset
        cluster = FunctionalCluster(num_nodes=4)
        result = cluster.shuffle_join(
            partitioned(orders, "o_custkey", 4),
            partitioned(lineitem, "l_shipdate", 4),
            build_key="o_orderkey",
            probe_key="l_orderkey",
            join_node_ids=[0, 1],
        )
        # feeders send everything; join nodes keep 1/2:
        # expected fraction = (2/4) + (2/4)*(1/2) = 0.75... per-row accounting:
        # half the data comes from feeders (all sent), half from join nodes
        # (half sent) -> 0.5 + 0.25 = 0.75 of rows cross the network.
        assert result.build_stats.network_fraction == pytest.approx(0.75, abs=0.05)

    def test_partition_compatible_placement_stays_local(self, dataset):
        """Pre-partitioned on the join key: nothing crosses the network."""
        orders, lineitem = dataset
        cluster = FunctionalCluster(num_nodes=4)
        result = cluster.shuffle_join(
            partitioned(orders, "o_orderkey", 4),
            partitioned(lineitem, "l_orderkey", 4),
            build_key="o_orderkey",
            probe_key="l_orderkey",
        )
        assert result.build_stats.network_fraction == 0.0
        assert result.probe_stats.network_fraction == 0.0
        expected = reference_join(orders, lineitem)
        assert result.total_rows == expected.num_rows

    def test_partition_count_mismatch(self, dataset):
        orders, lineitem = dataset
        cluster = FunctionalCluster(num_nodes=4)
        with pytest.raises(ExecutionError, match="expected 4 partitions"):
            cluster.shuffle_join(
                partitioned(orders, "o_custkey", 3),
                partitioned(lineitem, "l_shipdate", 4),
                build_key="o_orderkey",
                probe_key="l_orderkey",
            )

    def test_invalid_join_nodes(self, dataset):
        orders, lineitem = dataset
        cluster = FunctionalCluster(num_nodes=2)
        with pytest.raises(ExecutionError):
            cluster.shuffle_join(
                partitioned(orders, "o_custkey", 2),
                partitioned(lineitem, "l_shipdate", 2),
                build_key="o_orderkey",
                probe_key="l_orderkey",
                join_node_ids=[5],
            )


class TestBroadcastJoin:
    def test_matches_reference(self, dataset):
        orders, lineitem = dataset
        cluster = FunctionalCluster(num_nodes=4)
        result = cluster.broadcast_join(
            partitioned(orders, "o_custkey", 4),
            partitioned(lineitem, "l_shipdate", 4),
            build_key="o_orderkey",
            probe_key="l_orderkey",
            build_predicate=orders_pred(0.10),
        )
        expected = reference_join(orders, lineitem, build_pred=orders_pred(0.10))
        assert result.total_rows == expected.num_rows
        assert sorted_pairs(result.result) == sorted_pairs(expected)

    def test_broadcast_traffic_is_n_minus_1_copies(self, dataset):
        orders, lineitem = dataset
        cluster = FunctionalCluster(num_nodes=4)
        result = cluster.broadcast_join(
            partitioned(orders, "o_custkey", 4),
            partitioned(lineitem, "l_shipdate", 4),
            build_key="o_orderkey",
            probe_key="l_orderkey",
        )
        assert result.build_stats.rows_sent == orders.num_rows * 3
        # probe never leaves its node
        assert result.probe_stats.rows_sent == 0

    def test_same_result_as_shuffle(self, dataset):
        """Method choice must not change the answer."""
        orders, lineitem = dataset
        cluster = FunctionalCluster(num_nodes=3)
        shuffle = cluster.shuffle_join(
            partitioned(orders, "o_custkey", 3),
            partitioned(lineitem, "l_shipdate", 3),
            build_key="o_orderkey",
            probe_key="l_orderkey",
            build_predicate=orders_pred(0.15),
            probe_predicate=lineitem_pred(0.25),
        )
        broadcast = cluster.broadcast_join(
            partitioned(orders, "o_custkey", 3),
            partitioned(lineitem, "l_shipdate", 3),
            build_key="o_orderkey",
            probe_key="l_orderkey",
            build_predicate=orders_pred(0.15),
            probe_predicate=lineitem_pred(0.25),
        )
        assert sorted_pairs(shuffle.result) == sorted_pairs(broadcast.result)


class TestEdgeCases:
    def test_empty_result(self):
        cluster = FunctionalCluster(num_nodes=2)
        orders = RecordBatch(
            {"o_orderkey": np.array([1, 2], dtype=np.int64)}
        )
        lineitem = RecordBatch(
            {"l_orderkey": np.array([99], dtype=np.int64)}
        )
        result = cluster.shuffle_join(
            partitioned(orders, "o_orderkey", 2),
            partitioned(lineitem, "l_orderkey", 2),
            build_key="o_orderkey",
            probe_key="l_orderkey",
        )
        assert result.total_rows == 0

    def test_invalid_cluster_size(self):
        with pytest.raises(ExecutionError):
            FunctionalCluster(num_nodes=0)
