"""One plan object, two executors: pricing and execution must agree."""

import pytest

from repro.errors import PlanError
from repro.hardware.cluster import ClusterSpec
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.pstore.bridge import execute_plan
from repro.pstore.operators.hashjoin import hash_join_batches
from repro.pstore.planner import plan_join
from repro.pstore.plans import ExecutionMode
from repro.workloads import datagen
from repro.workloads.queries import JoinMethod, JoinWorkloadSpec


@pytest.fixture(scope="module")
def tables():
    return datagen.generate_join_pair(0.003, seed=55)


def workload(method=JoinMethod.SHUFFLE, sb=0.3, sp=0.3):
    return JoinWorkloadSpec(
        name="bridge-test",
        build_volume_mb=100.0,
        probe_volume_mb=400.0,
        build_selectivity=sb,
        probe_selectivity=sp,
        method=method,
    )


def predicates(sb, sp):
    build_cut = datagen.date_cutoff_for_selectivity(sb)
    probe_cut = datagen.date_cutoff_for_selectivity(sp)
    return (
        lambda b: b.column("o_orderdate") < build_cut,
        lambda b: b.column("l_shipdate") < probe_cut,
    )


def reference(tables, sb, sp):
    orders, lineitem = tables
    build_pred, probe_pred = predicates(sb, sp)
    return hash_join_batches(
        orders.filter(build_pred(orders)),
        lineitem.filter(probe_pred(lineitem)),
        key="o_orderkey",
        probe_key="l_orderkey",
    )


CLUSTER = ClusterSpec.homogeneous(CLUSTER_V_NODE, 4)


class TestBridge:
    def test_shuffle_plan_executes_correctly(self, tables):
        plan = plan_join(CLUSTER, workload())
        build_pred, probe_pred = predicates(0.3, 0.3)
        result = execute_plan(
            plan, *tables,
            build_predicate=build_pred, probe_predicate=probe_pred,
        )
        assert result.total_rows == reference(tables, 0.3, 0.3).num_rows
        assert result.build_stats.rows_sent > 0

    def test_broadcast_plan_executes_correctly(self, tables):
        plan = plan_join(CLUSTER, workload(method=JoinMethod.BROADCAST, sb=0.1))
        build_pred, probe_pred = predicates(0.1, 0.3)
        result = execute_plan(
            plan, *tables,
            build_predicate=build_pred, probe_predicate=probe_pred,
        )
        assert result.total_rows == reference(tables, 0.1, 0.3).num_rows
        # broadcast: probe stays local
        assert result.probe_stats.rows_sent == 0

    def test_heterogeneous_plan_uses_join_subset(self, tables):
        mixed = ClusterSpec.beefy_wimpy(CLUSTER_V_NODE, 2, WIMPY_LAPTOP_B, 2)
        plan = plan_join(
            mixed, workload(), force_mode=ExecutionMode.HETEROGENEOUS
        )
        assert plan.num_join_nodes == 2
        build_pred, probe_pred = predicates(0.3, 0.3)
        result = execute_plan(
            plan, *tables,
            build_predicate=build_pred, probe_predicate=probe_pred,
        )
        assert result.total_rows == reference(tables, 0.3, 0.3).num_rows
        assert len(result.per_node_result_rows) == 2

    def test_local_plan_requires_compatible_placement(self, tables):
        plan = plan_join(CLUSTER, workload(method=JoinMethod.LOCAL))
        with pytest.raises(PlanError, match="partitioned on"):
            execute_plan(plan, *tables)  # default Q3 placement: incompatible

    def test_local_plan_with_compatible_placement(self, tables):
        plan = plan_join(CLUSTER, workload(method=JoinMethod.LOCAL))
        build_pred, probe_pred = predicates(0.3, 0.3)
        result = execute_plan(
            plan, *tables,
            build_predicate=build_pred, probe_predicate=probe_pred,
            build_placement=None, probe_placement=None,
        )
        assert result.total_rows == reference(tables, 0.3, 0.3).num_rows
        # partition-compatible: no rows cross the network
        assert result.build_stats.rows_sent == 0
        assert result.probe_stats.rows_sent == 0

    def test_all_methods_same_answer(self, tables):
        """Pricing may differ wildly; answers never do."""
        build_pred, probe_pred = predicates(0.1, 0.3)
        counts = set()
        for method in (JoinMethod.SHUFFLE, JoinMethod.BROADCAST):
            plan = plan_join(CLUSTER, workload(method=method, sb=0.1))
            result = execute_plan(
                plan, *tables,
                build_predicate=build_pred, probe_predicate=probe_pred,
            )
            counts.add(result.total_rows)
        assert len(counts) == 1
