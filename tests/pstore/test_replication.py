"""Replication-based dynamic cluster sizing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.pstore.replication import ReplicatedLayout


def layout(n=8, partitions=16, r=2):
    return ReplicatedLayout(num_nodes=n, num_partitions=partitions, replication_factor=r)


class TestPlacement:
    def test_replica_nodes_consecutive(self):
        lay = layout()
        assert lay.replica_nodes(0) == (0, 1)
        assert lay.replica_nodes(7) == (7, 0)  # wraps around the ring
        assert lay.replica_nodes(9) == (1, 2)  # partition 9 -> node 1

    def test_replication_factor_one_is_primary_only(self):
        lay = layout(r=1)
        assert lay.replica_nodes(3) == (3,)

    def test_partitions_on_node(self):
        lay = layout()
        on_zero = lay.partitions_on(0)
        # primaries 0 and 8, plus replicas of partitions whose primary is 7
        assert set(on_zero) == {0, 8, 7, 15}

    def test_storage_blowup(self):
        assert layout(r=3).storage_blowup == 3.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReplicatedLayout(num_nodes=0, num_partitions=4)
        with pytest.raises(ConfigurationError):
            ReplicatedLayout(num_nodes=8, num_partitions=4)  # fewer parts than nodes
        with pytest.raises(ConfigurationError):
            ReplicatedLayout(num_nodes=4, num_partitions=8, replication_factor=5)
        with pytest.raises(ConfigurationError):
            layout().replica_nodes(99)
        with pytest.raises(ConfigurationError):
            layout().partitions_on(99)


class TestCoverage:
    def test_full_set_always_covers(self):
        lay = layout()
        assert lay.covers(range(8))

    def test_alternating_half_covers_at_r2(self):
        lay = layout()
        assert lay.covers([0, 2, 4, 6])

    def test_consecutive_gap_of_r_loses_coverage(self):
        lay = layout()
        # nodes 0 and 1 both off -> partitions with primary 0 are lost
        assert not lay.covers([2, 3, 4, 5, 6, 7][:5] + [7])
        assert not lay.covers([2, 3, 4, 5, 6, 7])

    def test_minimum_active_nodes(self):
        assert layout(n=8, r=2).minimum_active_nodes() == 4
        assert layout(n=8, r=4).minimum_active_nodes() == 2
        assert layout(n=8, r=1).minimum_active_nodes() == 8

    def test_choose_active_nodes_covers(self):
        lay = layout()
        for count in (4, 5, 6, 7, 8):
            active = lay.choose_active_nodes(count)
            assert len(active) == count
            assert lay.covers(active)

    def test_choose_below_minimum_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot cover"):
            layout().choose_active_nodes(3)

    def test_choose_invalid_count(self):
        with pytest.raises(ConfigurationError):
            layout().choose_active_nodes(0)
        with pytest.raises(ConfigurationError):
            layout().choose_active_nodes(9)


class TestCoverageDiagnostics:
    """Regression: losing coverage must raise a clear error, never return
    silently wrong answers (the pre-1.3 behavior surfaced only through
    ``covers`` booleans, which mid-trace fault handling could miss)."""

    def test_uncovered_partitions_names_the_lost_partitions(self):
        lay = layout()
        # nodes 0 and 1 both down: partition 0 (primary 0, replica 1)
        # and partition 8 (same placement) lose every copy
        lost = lay.uncovered_partitions([2, 3, 4, 5, 6, 7])
        assert lost == (0, 8)

    def test_uncovered_partitions_empty_when_covered(self):
        lay = layout()
        assert lay.uncovered_partitions([0, 2, 4, 6]) == ()

    def test_uncovered_partitions_rejects_out_of_range_nodes(self):
        with pytest.raises(ConfigurationError):
            layout().uncovered_partitions([0, 99])
        with pytest.raises(ConfigurationError):
            layout().uncovered_partitions([-1])

    def test_require_coverage_raises_simulation_error(self):
        from repro.errors import SimulationError

        lay = layout()
        with pytest.raises(SimulationError, match="replica coverage lost"):
            lay.require_coverage([2, 3, 4, 5, 6, 7])

    def test_require_coverage_error_names_partitions_and_context(self):
        from repro.errors import SimulationError

        lay = layout()
        with pytest.raises(SimulationError) as excinfo:
            lay.require_coverage([2, 3, 4, 5, 6, 7], context="after crash of node 1")
        message = str(excinfo.value)
        assert "after crash of node 1" in message
        assert "[0, 8]" in message
        assert "replication factor 2" in message

    def test_require_coverage_passes_on_covering_sets(self):
        lay = layout()
        lay.require_coverage(range(8))
        lay.require_coverage([0, 2, 4, 6])


class TestAssignment:
    def test_every_partition_assigned_exactly_once(self):
        lay = layout()
        assignment = lay.assignment([0, 2, 4, 6])
        assigned = sorted(p for parts in assignment.values() for p in parts)
        assert assigned == list(range(16))

    def test_assignment_respects_placement(self):
        lay = layout()
        assignment = lay.assignment([0, 2, 4, 6])
        for node, parts in assignment.items():
            for partition in parts:
                assert node in lay.replica_nodes(partition)

    def test_balanced_when_divisible(self):
        lay = layout()
        weights = lay.load_weights([0, 2, 4, 6])
        assert weights == pytest.approx([1.0, 1.0, 1.0, 1.0])

    def test_imbalance_when_not_divisible(self):
        lay = ReplicatedLayout(num_nodes=8, num_partitions=16, replication_factor=2)
        weights = lay.load_weights(lay.choose_active_nodes(5))
        assert len(weights) == 5
        assert sum(weights) == pytest.approx(5.0)
        assert max(weights) > 1.0  # someone carries an extra partition

    def test_uncovering_set_rejected(self):
        with pytest.raises(ConfigurationError, match="does not cover"):
            layout().assignment([0, 1])

    def test_empty_active_set_rejected(self):
        with pytest.raises(ConfigurationError):
            layout().assignment([])


@given(
    st.integers(2, 12),
    st.integers(1, 4),
    st.integers(1, 3),
)
def test_property_chosen_sets_always_cover(n, r_raw, parts_per_node):
    r = min(r_raw, n)
    lay = ReplicatedLayout(
        num_nodes=n, num_partitions=n * parts_per_node, replication_factor=r
    )
    for count in range(lay.minimum_active_nodes(), n + 1):
        active = lay.choose_active_nodes(count)
        assert lay.covers(active)
        weights = lay.load_weights(active)
        assert sum(weights) == pytest.approx(len(active))


class TestEndToEnd:
    def test_replica_downsizing_saves_energy(self):
        """Run the Figure 3 workload on 8-node data with only 4 active
        nodes via replicas: the energy drops, as the cited replication work
        promises, without repartitioning the tables."""
        from repro.hardware.cluster import ClusterSpec
        from repro.hardware.presets import CLUSTER_V_NODE
        from repro.pstore.engine import PStore, PStoreConfig
        from repro.workloads.queries import q3_join

        lay = layout()
        workload = q3_join(1000, 0.05, 0.05)
        config = PStoreConfig(warm_cache=True)

        full = PStore(
            ClusterSpec.homogeneous(CLUSTER_V_NODE, 8),
            config=config, record_intervals=False,
        ).simulate(workload)

        active = lay.choose_active_nodes(4)
        weights = lay.load_weights(active)
        half = PStore(
            ClusterSpec.homogeneous(CLUSTER_V_NODE, 4),
            config=config, record_intervals=False,
        ).simulate(workload, partition_weights=weights)

        assert half.energy_j < full.energy_j
        assert half.makespan_s > full.makespan_s
