"""Functional P-store operators: scan, filter, project, join, aggregate."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data import RecordBatch
from repro.errors import ExecutionError
from repro.pstore.operators.aggregate import HashAggregate, merge_partial_aggregates
from repro.pstore.operators.base import Operator
from repro.pstore.operators.exchange import (
    broadcast_batches,
    hash_key_to_node,
    hash_partition,
)
from repro.pstore.operators.filter import Filter, column_between, column_less_than
from repro.pstore.operators.hashjoin import HashJoin, hash_join_batches
from repro.pstore.operators.project import Project
from repro.pstore.operators.scan import MemoryScan


def batch(**cols):
    return RecordBatch({k: np.asarray(v) for k, v in cols.items()})


SAMPLE = batch(k=[1, 2, 3, 4, 5, 6], v=[10.0, 20.0, 30.0, 40.0, 50.0, 60.0])


class TestScan:
    def test_passthrough(self):
        out = MemoryScan([SAMPLE]).collect()
        assert out.num_rows == 6

    def test_reblocking(self):
        blocks = list(MemoryScan([SAMPLE], batch_rows=4))
        assert [b.num_rows for b in blocks] == [4, 2]

    def test_multiple_partitions(self):
        out = MemoryScan([SAMPLE, SAMPLE]).collect()
        assert out.num_rows == 12

    def test_skips_empty_partitions(self):
        empty = SAMPLE.take(np.arange(0))
        assert list(MemoryScan([empty])) == []

    def test_invalid_batch_rows(self):
        with pytest.raises(ExecutionError):
            MemoryScan([SAMPLE], batch_rows=0)


class TestFilter:
    def test_predicate_filters_rows(self):
        out = Filter(MemoryScan([SAMPLE]), column_less_than("k", 4)).collect()
        assert list(out.column("k")) == [1, 2, 3]

    def test_between(self):
        out = Filter(MemoryScan([SAMPLE]), column_between("k", 2, 5)).collect()
        assert list(out.column("k")) == [2, 3, 4]

    def test_empty_batches_suppressed(self):
        op = Filter(MemoryScan([SAMPLE]), column_less_than("k", -1))
        assert list(op) == []

    def test_non_bool_mask_rejected(self):
        op = Filter(MemoryScan([SAMPLE]), lambda b: b.column("k"))
        with pytest.raises(ExecutionError, match="dtype"):
            list(op)

    def test_wrong_shape_mask_rejected(self):
        op = Filter(MemoryScan([SAMPLE]), lambda b: np.array([True]))
        with pytest.raises(ExecutionError, match="shape"):
            list(op)


class TestProject:
    def test_column_subset(self):
        out = Project(MemoryScan([SAMPLE]), ["v"]).collect()
        assert out.column_names == ("v",)

    def test_rename(self):
        out = Project(MemoryScan([SAMPLE]), ["k"], rename={"k": "key"}).collect()
        assert out.column_names == ("key",)


class TestHashJoin:
    def test_one_to_one(self):
        build = batch(k=[1, 2, 3], b=[100, 200, 300])
        probe = batch(k=[2, 3, 4], p=[20, 30, 40])
        out = hash_join_batches(build, probe, key="k")
        assert sorted(out.column("k")) == [2, 3]
        assert sorted(out.column("b")) == [200, 300]
        assert sorted(out.column("p")) == [20, 30]

    def test_duplicates_on_both_sides(self):
        build = batch(k=[1, 1, 2], b=[10, 11, 20])
        probe = batch(k=[1, 1], p=[5, 6])
        out = hash_join_batches(build, probe, key="k")
        assert out.num_rows == 4  # 2 build x 2 probe matches for key 1

    def test_no_matches_preserves_schema(self):
        build = batch(k=[1], b=[10])
        probe = batch(k=[99], p=[5])
        out = hash_join_batches(build, probe, key="k")
        assert out.num_rows == 0
        assert set(out.column_names) == {"k", "b", "p"}

    def test_matches_numpy_reference(self):
        rng = np.random.default_rng(0)
        build = batch(k=rng.integers(0, 50, 200), b=rng.integers(0, 1000, 200))
        probe = batch(k=rng.integers(0, 50, 300), p=rng.integers(0, 1000, 300))
        out = hash_join_batches(build, probe, key="k")
        expected = sum(
            int(np.sum(build.column("k") == key)) for key in probe.column("k")
        )
        assert out.num_rows == expected

    def test_join_values_are_consistent(self):
        """Every output row must pair a real build row with a real probe row."""
        build = batch(k=[1, 2, 3], b=[10, 20, 30])
        probe = batch(k=[1, 2, 2, 3], p=[100, 200, 201, 300])
        out = hash_join_batches(build, probe, key="k")
        build_map = dict(zip(build.column("k"), build.column("b")))
        for key, b_val in zip(out.column("k"), out.column("b")):
            assert build_map[key] == b_val

    def test_streaming_operator(self):
        build = MemoryScan([batch(k=[1, 2], b=[10, 20])])
        probe = MemoryScan([batch(k=[1], p=[5]), batch(k=[2], p=[6])], batch_rows=1)
        out = HashJoin(build, probe, "k", "k").collect()
        assert out.num_rows == 2

    def test_memory_limit_enforced(self):
        build = MemoryScan([batch(k=np.arange(1000), b=np.arange(1000))])
        probe = MemoryScan([batch(k=[1], p=[5])])
        join = HashJoin(build, probe, "k", "k", memory_limit_mb=1e-6)
        with pytest.raises(ExecutionError, match="2-pass"):
            list(join)

    def test_different_key_names(self):
        build = batch(bk=[1, 2], b=[10, 20])
        probe = batch(pk=[2], p=[7])
        out = hash_join_batches(build, probe, key="bk", probe_key="pk")
        assert out.num_rows == 1
        assert 7 in out.column("p")

    def test_non_integer_key_rejected(self):
        build = batch(k=[1.5, 2.5], b=[1, 2])
        probe = batch(k=[1, 2], p=[1, 2])
        with pytest.raises(ExecutionError, match="integer"):
            hash_join_batches(build, probe, key="k")

    @given(
        st.lists(st.integers(0, 20), min_size=0, max_size=50),
        st.lists(st.integers(0, 20), min_size=0, max_size=50),
    )
    def test_property_match_count(self, build_keys, probe_keys):
        if not build_keys or not probe_keys:
            return
        build = batch(k=np.asarray(build_keys, dtype=np.int64))
        probe = batch(
            k=np.asarray(probe_keys, dtype=np.int64),
            p=np.arange(len(probe_keys)),
        )
        out = hash_join_batches(build, probe, key="k")
        expected = sum(build_keys.count(key) for key in probe_keys)
        assert out.num_rows == expected


class TestExchange:
    def test_partitions_are_disjoint_and_complete(self):
        parts = hash_partition(SAMPLE, key="k", num_nodes=3)
        assert sum(p.num_rows for p in parts) == SAMPLE.num_rows
        all_keys = sorted(k for p in parts for k in p.column("k"))
        assert all_keys == sorted(SAMPLE.column("k"))

    def test_routing_is_deterministic(self):
        a = hash_key_to_node(np.arange(100, dtype=np.int64), 4)
        b = hash_key_to_node(np.arange(100, dtype=np.int64), 4)
        assert np.array_equal(a, b)

    def test_same_key_same_node(self):
        keys = np.asarray([7, 7, 7, 7], dtype=np.int64)
        assert len(np.unique(hash_key_to_node(keys, 8))) == 1

    def test_routing_roughly_balanced(self):
        keys = np.arange(10_000, dtype=np.int64)
        assignment = hash_key_to_node(keys, 4)
        counts = np.bincount(assignment, minlength=4)
        assert counts.min() > 0.8 * counts.mean()

    def test_broadcast(self):
        copies = broadcast_batches(SAMPLE, 3)
        assert len(copies) == 3
        assert all(c.num_rows == SAMPLE.num_rows for c in copies)

    def test_invalid_num_nodes(self):
        with pytest.raises(ExecutionError):
            hash_key_to_node(np.arange(3), 0)
        with pytest.raises(ExecutionError):
            broadcast_batches(SAMPLE, 0)

    @given(st.integers(1, 16))
    def test_property_partition_count(self, n):
        parts = hash_partition(SAMPLE, key="k", num_nodes=n)
        assert len(parts) == n
        assert sum(p.num_rows for p in parts) == SAMPLE.num_rows


class TestAggregate:
    def test_group_by_sum_and_count(self):
        data = batch(g=[1, 1, 2, 2, 2], x=[1.0, 2.0, 3.0, 4.0, 5.0])
        out = HashAggregate(
            MemoryScan([data]),
            group_by=["g"],
            aggregates={"total": ("sum", "x"), "n": ("count", "x")},
        ).collect()
        by_group = dict(zip(out.column("g"), out.column("total")))
        assert by_group == {1: 3.0, 2: 12.0}
        counts = dict(zip(out.column("g"), out.column("n")))
        assert counts == {1: 2, 2: 3}

    def test_min_max_mean(self):
        data = batch(g=[1, 1, 1], x=[5.0, 1.0, 3.0])
        out = HashAggregate(
            MemoryScan([data]),
            group_by=["g"],
            aggregates={
                "lo": ("min", "x"),
                "hi": ("max", "x"),
                "avg": ("mean", "x"),
            },
        ).collect()
        assert out.column("lo")[0] == 1.0
        assert out.column("hi")[0] == 5.0
        assert out.column("avg")[0] == pytest.approx(3.0)

    def test_multi_column_group_by(self):
        data = batch(a=[1, 1, 2], b=[1, 2, 1], x=[1.0, 1.0, 1.0])
        out = HashAggregate(
            MemoryScan([data]), group_by=["a", "b"], aggregates={"n": ("count", "x")}
        ).collect()
        assert out.num_rows == 3

    def test_unsupported_function(self):
        with pytest.raises(ExecutionError, match="unsupported"):
            HashAggregate(
                MemoryScan([SAMPLE]), group_by=["k"], aggregates={"z": ("median", "v")}
            )

    def test_requires_group_and_aggregates(self):
        with pytest.raises(ExecutionError):
            HashAggregate(MemoryScan([SAMPLE]), group_by=[], aggregates={"n": ("count", "v")})
        with pytest.raises(ExecutionError):
            HashAggregate(MemoryScan([SAMPLE]), group_by=["k"], aggregates={})

    def test_merge_partial_aggregates(self):
        """Parallel Q1: local partial sums merge to the global answer."""
        p1 = batch(g=[1, 2], total=[3.0, 4.0])
        p2 = batch(g=[1, 3], total=[2.0, 9.0])
        merged = merge_partial_aggregates([p1, p2], group_by=["g"], sum_columns=["total"])
        result = dict(zip(merged.column("g"), merged.column("total")))
        assert result == {1: 5.0, 2: 4.0, 3: 9.0}


class TestOperatorBase:
    def test_total_rows(self):
        assert MemoryScan([SAMPLE]).total_rows() == 6

    def test_operator_is_abstract(self):
        with pytest.raises(TypeError):
            Operator()  # type: ignore[abstract]
