"""The PStore facade: plan/simulate/explain wiring."""

import pytest

from repro.errors import PlanError
from repro.hardware.cluster import ClusterSpec
from repro.hardware.presets import BEEFY_L5630, CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.pstore.engine import PStore, PStoreConfig
from repro.pstore.plans import ExecutionMode, JoinPlan
from repro.simulator.network import SMC_GS5_SWITCH
from repro.workloads.queries import JoinMethod, q3_join, section54_join


@pytest.fixture(scope="module")
def engine():
    return PStore(
        ClusterSpec.homogeneous(CLUSTER_V_NODE, 4),
        config=PStoreConfig(warm_cache=True),
        record_intervals=False,
    )


def test_plan_returns_join_plan(engine):
    plan = engine.plan(q3_join(100))
    assert isinstance(plan, JoinPlan)
    assert plan.cluster is engine.cluster


def test_config_propagates_to_plans(engine):
    config = PStoreConfig(warm_cache=False, pipeline_cpu_cost=2.5, receive_cpu_cost=0.3)
    cold_engine = PStore(ClusterSpec.homogeneous(CLUSTER_V_NODE, 4), config=config)
    plan = cold_engine.plan(q3_join(100))
    assert plan.warm_cache is False
    assert plan.pipeline_cpu_cost == 2.5
    assert plan.receive_cpu_cost == 0.3


def test_simulate_accepts_workload_or_plan(engine):
    workload = q3_join(100)
    via_workload = engine.simulate(workload)
    via_plan = engine.simulate(engine.plan(workload))
    assert via_workload.makespan_s == pytest.approx(via_plan.makespan_s)
    assert via_workload.energy_j == pytest.approx(via_plan.energy_j)


def test_force_mode_passes_through():
    mixed = PStore(
        ClusterSpec.beefy_wimpy(BEEFY_L5630, 2, WIMPY_LAPTOP_B, 2),
        config=PStoreConfig(warm_cache=True),
        record_intervals=False,
    )
    plan = mixed.plan(q3_join(400, 0.01, 0.50), force_mode=ExecutionMode.HETEROGENEOUS)
    assert plan.mode is ExecutionMode.HETEROGENEOUS
    result = mixed.simulate(
        q3_join(400, 0.01, 0.50), force_mode=ExecutionMode.HETEROGENEOUS
    )
    assert result.makespan_s > 0


def test_switch_is_used(engine):
    contended = PStore(
        ClusterSpec.homogeneous(CLUSTER_V_NODE, 4),
        switch=SMC_GS5_SWITCH,
        config=PStoreConfig(warm_cache=True),
        record_intervals=False,
    )
    workload = q3_join(1000, 0.05, 0.05)  # network-bound
    assert contended.simulate(workload).makespan_s > engine.simulate(workload).makespan_s


def test_explain_returns_text(engine):
    text = engine.explain(q3_join(100))
    assert "JoinPlan" in text
    assert "shuffle" in text


def test_plan_errors_surface(engine):
    huge = section54_join(1.0, 0.01)  # 700 GB hash table: nothing fits
    with pytest.raises(PlanError):
        engine.plan(huge)


def test_broadcast_plan_through_facade(engine):
    result = engine.simulate(q3_join(100, 0.01, 0.05, method=JoinMethod.BROADCAST))
    assert result.makespan_s > 0


def test_stream_facade(engine):
    result = engine.simulate_stream(q3_join(100), [0.0, 100.0])
    assert result.job_start_s["join#1"] == pytest.approx(100.0)
