"""Functional TPC-H Q3 (join + revenue aggregation + top-k) and TopK operator."""

import numpy as np
import pytest

from repro.data import RecordBatch
from repro.errors import ExecutionError
from repro.pstore.catalog import PartitionScheme
from repro.pstore.operators.scan import MemoryScan
from repro.pstore.operators.topk import TopK, merge_top_k
from repro.pstore.queries import parallel_q3, single_node_q3
from repro.pstore.storage import PartitionedStore
from repro.workloads import datagen

ORDER_CUTOFF = datagen.date_cutoff_for_selectivity(0.6)
SHIP_CUTOFF = datagen.date_cutoff_for_selectivity(0.4)


@pytest.fixture(scope="module")
def tables():
    return datagen.generate_join_pair(0.004, seed=91)


def partitioned(batch, key, n=4):
    return PartitionedStore("t", batch, PartitionScheme.hash(key), n).partitions()


class TestTopKOperator:
    def test_keeps_k_largest(self):
        batch = RecordBatch({"v": np.array([5.0, 1.0, 9.0, 3.0, 7.0])})
        out = TopK(MemoryScan([batch]), by="v", k=2).collect()
        assert list(out.column("v")) == [9.0, 7.0]

    def test_ascending(self):
        batch = RecordBatch({"v": np.array([5.0, 1.0, 9.0])})
        out = TopK(MemoryScan([batch]), by="v", k=2, ascending=True).collect()
        assert list(out.column("v")) == [1.0, 5.0]

    def test_k_larger_than_input(self):
        batch = RecordBatch({"v": np.array([2.0, 1.0])})
        out = TopK(MemoryScan([batch]), by="v", k=10).collect()
        assert list(out.column("v")) == [2.0, 1.0]

    def test_streaming_across_batches(self):
        batches = [
            RecordBatch({"v": np.array([1.0, 8.0])}),
            RecordBatch({"v": np.array([9.0, 2.0])}),
            RecordBatch({"v": np.array([7.0, 3.0])}),
        ]
        out = TopK(MemoryScan(batches), by="v", k=3).collect()
        assert list(out.column("v")) == [9.0, 8.0, 7.0]

    def test_invalid_k(self):
        with pytest.raises(ExecutionError):
            TopK(MemoryScan([]), by="v", k=0)

    def test_merge_top_k(self):
        partial_a = RecordBatch({"v": np.array([9.0, 5.0])})
        partial_b = RecordBatch({"v": np.array([8.0, 7.0])})
        merged = merge_top_k([partial_a, partial_b], by="v", k=3)
        assert list(merged.column("v")) == [9.0, 8.0, 7.0]

    def test_merge_requires_data(self):
        with pytest.raises(ExecutionError):
            merge_top_k([], by="v", k=2)

    def test_top_k_matches_full_sort(self):
        rng = np.random.default_rng(4)
        values = rng.uniform(0.0, 1e6, size=500)
        batch = RecordBatch({"v": values})
        out = TopK(MemoryScan([batch], batch_rows=64), by="v", k=25).collect()
        expected = np.sort(values)[::-1][:25]
        assert np.allclose(out.column("v"), expected)


class TestParallelQ3:
    def test_matches_single_node_reference(self, tables):
        orders, lineitem = tables
        parallel = parallel_q3(
            partitioned(orders, "o_custkey"),
            partitioned(lineitem, "l_shipdate"),
            ORDER_CUTOFF,
            SHIP_CUTOFF,
            k=10,
        )
        reference = single_node_q3(orders, lineitem, ORDER_CUTOFF, SHIP_CUTOFF, k=10)
        assert parallel.num_rows == reference.num_rows
        assert np.allclose(parallel.column("revenue"), reference.column("revenue"))
        assert np.array_equal(
            parallel.column("o_orderkey"), reference.column("o_orderkey")
        )

    def test_revenue_sorted_descending(self, tables):
        orders, lineitem = tables
        result = parallel_q3(
            partitioned(orders, "o_custkey"),
            partitioned(lineitem, "l_shipdate"),
            ORDER_CUTOFF,
            SHIP_CUTOFF,
        )
        revenue = result.column("revenue")
        assert np.all(revenue[:-1] >= revenue[1:])

    def test_heterogeneous_join_nodes_same_answer(self, tables):
        orders, lineitem = tables
        hetero = parallel_q3(
            partitioned(orders, "o_custkey"),
            partitioned(lineitem, "l_shipdate"),
            ORDER_CUTOFF,
            SHIP_CUTOFF,
            join_node_ids=[0, 1],
        )
        reference = single_node_q3(orders, lineitem, ORDER_CUTOFF, SHIP_CUTOFF)
        assert np.allclose(hetero.column("revenue"), reference.column("revenue"))

    def test_revenue_values_verified_independently(self, tables):
        """Check the top revenue against a hand-rolled computation."""
        orders, lineitem = tables
        result = parallel_q3(
            partitioned(orders, "o_custkey"),
            partitioned(lineitem, "l_shipdate"),
            ORDER_CUTOFF,
            SHIP_CUTOFF,
            k=1,
        )
        top_key = result.column("o_orderkey")[0]
        odate = orders.column("o_orderdate")[orders.column("o_orderkey") == top_key][0]
        assert odate < ORDER_CUTOFF
        mask = (lineitem.column("l_orderkey") == top_key) & (
            lineitem.column("l_shipdate") > SHIP_CUTOFF
        )
        expected = np.sum(
            lineitem.column("l_extendedprice")[mask]
            * (1.0 - lineitem.column("l_discount")[mask])
        )
        assert result.column("revenue")[0] == pytest.approx(expected)

    def test_mismatched_partition_counts(self, tables):
        orders, lineitem = tables
        with pytest.raises(ExecutionError, match="partition counts"):
            parallel_q3(
                partitioned(orders, "o_custkey", 3),
                partitioned(lineitem, "l_shipdate", 4),
                ORDER_CUTOFF,
                SHIP_CUTOFF,
            )

    def test_empty_join_raises(self, tables):
        orders, lineitem = tables
        with pytest.raises(ExecutionError, match="no rows"):
            parallel_q3(
                partitioned(orders, "o_custkey"),
                partitioned(lineitem, "l_shipdate"),
                order_date_cutoff=-1,  # nothing qualifies
                ship_date_cutoff=SHIP_CUTOFF,
            )
