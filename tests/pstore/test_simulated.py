"""Simulated P-store executor: flow construction and closed-form timings."""

import pytest

from repro.errors import PlanError, SimulationError
from repro.hardware.cluster import ClusterSpec
from repro.hardware.node import NodeSpec
from repro.hardware.power import PowerLawModel
from repro.pstore.engine import PStore, PStoreConfig
from repro.pstore.planner import plan_join
from repro.pstore.simulated import build_join_job
from repro.simulator.resources import cpu, disk, nic_in, nic_out
from repro.workloads.queries import JoinMethod, JoinWorkloadSpec

# A deliberately simple node so timings are hand-computable.
NODE = NodeSpec(
    name="simple",
    cpu_bandwidth_mbps=1000.0,
    memory_mb=100_000.0,
    disk_bandwidth_mbps=200.0,
    nic_bandwidth_mbps=100.0,
    power_model=PowerLawModel(100.0, 0.25),
    engine_base_utilization=0.0,
)


def make_workload(method=JoinMethod.SHUFFLE, sb=0.5, sp=0.5):
    return JoinWorkloadSpec(
        name="w",
        build_volume_mb=800.0,
        probe_volume_mb=1600.0,
        build_selectivity=sb,
        probe_selectivity=sp,
        method=method,
    )


def cluster(n=4):
    return ClusterSpec.homogeneous(NODE, n)


class TestFlowConstruction:
    def test_shuffle_flow_demands(self):
        plan = plan_join(cluster(4), make_workload(), warm_cache=True)
        job = build_join_job(plan)
        build_flow = job.phases[0].flows[0]
        assert build_flow.volume_mb == pytest.approx(200.0)  # 800 / 4
        # sender keeps 1/4: outbound = S * 3/4
        assert build_flow.demands[nic_out(0)] == pytest.approx(0.5 * 0.75)
        # per-destination inbound = S / 4 on each other join node
        assert build_flow.demands[nic_in(1)] == pytest.approx(0.5 / 4)
        assert nic_in(0) not in build_flow.demands
        assert build_flow.demands[cpu(0)] == pytest.approx(1.0)
        assert disk(0) not in build_flow.demands  # warm cache

    def test_cold_cache_adds_disk(self):
        plan = plan_join(cluster(4), make_workload(), warm_cache=False)
        job = build_join_job(plan)
        assert job.phases[0].flows[0].demands[disk(0)] == pytest.approx(1.0)

    def test_broadcast_build_demands(self):
        plan = plan_join(
            cluster(4), make_workload(method=JoinMethod.BROADCAST, sb=0.1)
        )
        job = build_join_job(plan)
        flow = job.phases[0].flows[0]
        # every qualifying byte goes to all 3 peers
        assert flow.demands[nic_out(0)] == pytest.approx(0.1 * 3)
        assert flow.demands[nic_in(2)] == pytest.approx(0.1)

    def test_broadcast_probe_is_local(self):
        plan = plan_join(cluster(4), make_workload(method=JoinMethod.BROADCAST, sb=0.1))
        job = build_join_job(plan)
        probe_flow = job.phases[1].flows[0]
        assert set(probe_flow.demands) == {cpu(0)}

    def test_local_join_has_no_network(self):
        plan = plan_join(cluster(4), make_workload(method=JoinMethod.LOCAL))
        job = build_join_job(plan)
        for phase in job.phases:
            for flow in phase.flows:
                assert all(not r.startswith("nic") for r in flow.demands)

    def test_heterogeneous_feeders_send_everything(self):
        wimpy = NODE.with_overrides(memory_mb=1.0)
        mixed = ClusterSpec.beefy_wimpy(NODE, 2, wimpy, 2)
        plan = plan_join(mixed, make_workload(sb=0.5))
        assert plan.num_join_nodes == 2
        job = build_join_job(plan)
        feeder = job.phases[0].flows[3]  # a wimpy node
        # all qualifying tuples leave the feeder
        assert feeder.demands[nic_out(3)] == pytest.approx(0.5)
        # split across the two beefy nodes
        assert feeder.demands[nic_in(0)] == pytest.approx(0.25)
        assert feeder.demands[nic_in(1)] == pytest.approx(0.25)

    def test_receive_cpu_cost(self):
        plan = plan_join(cluster(2), make_workload(sb=0.5), receive_cpu_cost=0.8)
        job = build_join_job(plan)
        flow = job.phases[0].flows[0]
        # destination node 1 is charged receive cost: 0.8 * S/m = 0.8 * 0.25
        assert flow.demands[cpu(1)] == pytest.approx(0.8 * 0.5 / 2)

    def test_partition_weights_skew_volumes(self):
        plan = plan_join(cluster(2), make_workload())
        job = build_join_job(plan, partition_weights=[3.0, 1.0])
        volumes = [f.volume_mb for f in job.phases[0].flows]
        assert volumes == [pytest.approx(600.0), pytest.approx(200.0)]

    def test_partition_weights_validated(self):
        plan = plan_join(cluster(2), make_workload())
        with pytest.raises(PlanError):
            build_join_job(plan, partition_weights=[1.0])
        with pytest.raises(PlanError):
            build_join_job(plan, partition_weights=[-1.0, 1.0])


class TestClosedFormTimings:
    def test_network_bound_shuffle(self):
        """Outbound NIC binds: rate = L / (S * (n-1)/n)."""
        engine = PStore(cluster(4), config=PStoreConfig(warm_cache=True))
        result = engine.simulate(make_workload(sb=0.5, sp=0.5))
        rate = 100.0 / (0.5 * 0.75)  # 266.7 MB/s pre-filter
        expected = 200.0 / rate + 400.0 / rate
        assert result.makespan_s == pytest.approx(expected, rel=1e-6)

    def test_cpu_bound_shuffle(self):
        """At 1% selectivity the network is idle; CPU 1000 MB/s binds."""
        engine = PStore(cluster(4), config=PStoreConfig(warm_cache=True))
        result = engine.simulate(make_workload(sb=0.01, sp=0.01))
        expected = 200.0 / 1000.0 + 400.0 / 1000.0
        assert result.makespan_s == pytest.approx(expected, rel=1e-6)

    def test_disk_bound_cold_cache(self):
        engine = PStore(
            cluster(4), config=PStoreConfig(warm_cache=False, pipeline_cpu_cost=1.0)
        )
        result = engine.simulate(make_workload(sb=0.01, sp=0.01))
        expected = 200.0 / 200.0 + 400.0 / 200.0  # disk 200 MB/s
        assert result.makespan_s == pytest.approx(expected, rel=1e-6)

    def test_pipeline_cpu_cost_slows_scan(self):
        engine = PStore(
            cluster(4),
            config=PStoreConfig(warm_cache=True, pipeline_cpu_cost=2.0),
        )
        result = engine.simulate(make_workload(sb=0.01, sp=0.01))
        expected = (200.0 + 400.0) / (1000.0 / 2.0)
        assert result.makespan_s == pytest.approx(expected, rel=1e-6)

    def test_broadcast_build_ingest_bound(self):
        """Each node must receive (n-1)/n of the qualifying build table."""
        engine = PStore(cluster(4), config=PStoreConfig(warm_cache=True))
        result = engine.simulate(make_workload(method=JoinMethod.BROADCAST, sb=0.1, sp=0.5))
        # build: outbound coef 0.3 -> rate 333.3; 200 MB -> 0.6 s
        # probe: local cpu-bound: 400/1000 = 0.4 s
        assert result.makespan_s == pytest.approx(200.0 / (100.0 / 0.3) + 0.4, rel=1e-6)

    def test_heterogeneous_ingest_bound(self):
        """Beefy inbound NICs gate the phase (Section 5.4's bottleneck)."""
        wimpy = NODE.with_overrides(memory_mb=1.0)
        mixed = ClusterSpec.beefy_wimpy(NODE, 2, wimpy, 6)
        engine = PStore(mixed, config=PStoreConfig(warm_cache=True))
        result = engine.simulate(make_workload(sb=1.0, sp=1.0))
        # Every node ships its full partition to 2 beefy nodes.
        # Beefy inbound: from 6 wimpies (r/2 each) + 1 beefy (r/2) = 3.5r <= 100
        rate = 100.0 / 3.5
        expected = (100.0 + 200.0) / rate  # per-node volumes: 100 build, 200 probe
        assert result.makespan_s == pytest.approx(expected, rel=1e-6)


class TestConcurrency:
    def test_concurrent_joins_share_cluster(self):
        engine = PStore(cluster(4), config=PStoreConfig(warm_cache=True))
        one = engine.simulate(make_workload(), concurrency=1)
        four = engine.simulate(make_workload(), concurrency=4)
        assert four.makespan_s == pytest.approx(4 * one.makespan_s, rel=0.01)

    def test_concurrency_validated(self):
        engine = PStore(cluster(2))
        with pytest.raises(PlanError):
            engine.simulate(make_workload(), concurrency=0)

    def test_explain(self):
        engine = PStore(cluster(2))
        assert "JoinPlan" in engine.explain(make_workload())


class TestRunTrace:
    """Heterogeneous timed traces through SimulatedPStore.run_trace."""

    def store_and_plans(self):
        from repro.pstore.simulated import SimulatedPStore

        spec = cluster(4)
        store = SimulatedPStore(spec, record_intervals=False)
        light = plan_join(spec, make_workload(sb=0.1, sp=0.1), warm_cache=True)
        heavy = plan_join(spec, make_workload(sb=0.5, sp=0.5), warm_cache=True)
        return store, light, heavy

    def test_mixed_queries_and_job_names(self):
        store, light, heavy = self.store_and_plans()
        result = store.run_trace([(light, 0.0), (heavy, 1.0), (light, 2.0)])
        assert set(result.job_completion_s) == {"w#0", "w#1", "w#2"}
        assert all(result.response_time_s(name) > 0 for name in result.job_completion_s)

    def test_spaced_trace_runs_in_isolation(self):
        store, light, heavy = self.store_and_plans()
        solo_light = store.run(light).makespan_s
        solo_heavy = store.run(heavy).makespan_s
        spacing = 4 * max(solo_light, solo_heavy)
        result = store.run_trace([(light, 0.0), (heavy, spacing)])
        assert result.response_time_s("w#0") == pytest.approx(solo_light, rel=1e-6)
        assert result.response_time_s("w#1") == pytest.approx(solo_heavy, rel=1e-6)

    def test_job_label_override(self):
        store, light, _ = self.store_and_plans()
        result = store.run_trace([(light, 0.0)], job_label="join")
        assert "join#0" in result.job_completion_s

    def test_validation(self):
        store, light, _ = self.store_and_plans()
        with pytest.raises(PlanError):
            store.run_trace([])
        # Schedule defects fail upfront, before any job is built.
        with pytest.raises(SimulationError, match="negative arrival"):
            store.run_trace([(light, -0.5)])
        with pytest.raises(SimulationError, match="non-finite"):
            store.run_trace([(light, 0.0), (light, float("nan"))])
        with pytest.raises(SimulationError, match="non-finite"):
            store.run_trace([(light, float("inf"))])
        with pytest.raises(SimulationError, match="not a number"):
            store.run_trace([(light, None)])
