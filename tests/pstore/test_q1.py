"""The functional parallel Q1 pipeline (scan -> filter -> extend -> aggregate)."""

import numpy as np
import pytest

from repro.data import RecordBatch
from repro.errors import ExecutionError
from repro.pstore.catalog import PartitionScheme
from repro.pstore.operators.extend import Extend
from repro.pstore.operators.scan import MemoryScan
from repro.pstore.queries import parallel_q1, q1_local_aggregate, single_node_q1
from repro.pstore.storage import PartitionedStore
from repro.workloads import datagen

CUTOFF = datagen.date_cutoff_for_selectivity(0.95)


@pytest.fixture(scope="module")
def lineitem():
    return datagen.generate_lineitem(0.005, seed=17)


def partitions(batch, n=4):
    return PartitionedStore(
        "lineitem", batch, PartitionScheme.hash("l_orderkey"), n
    ).partitions()


class TestExtendOperator:
    def test_appends_column(self):
        batch = RecordBatch({"x": np.array([1.0, 2.0])})
        out = Extend(MemoryScan([batch]), "y", lambda b: b.column("x") * 2).collect()
        assert list(out.column("y")) == [2.0, 4.0]
        assert out.column_names == ("x", "y")

    def test_duplicate_column_rejected(self):
        batch = RecordBatch({"x": np.array([1.0])})
        op = Extend(MemoryScan([batch]), "x", lambda b: b.column("x"))
        with pytest.raises(ExecutionError, match="already exists"):
            list(op)

    def test_wrong_shape_rejected(self):
        batch = RecordBatch({"x": np.array([1.0, 2.0])})
        op = Extend(MemoryScan([batch]), "y", lambda b: np.array([1.0]))
        with pytest.raises(ExecutionError, match="shape"):
            list(op)


class TestParallelQ1:
    def test_matches_single_node_reference(self, lineitem):
        parallel = parallel_q1(partitions(lineitem), CUTOFF)
        reference = single_node_q1(lineitem, CUTOFF)
        assert parallel.num_rows == reference.num_rows
        for column in ("sum_qty", "sum_base_price", "sum_disc_price", "count_order"):
            assert np.allclose(parallel.column(column), reference.column(column))

    def test_six_groups(self, lineitem):
        """3 returnflags x 2 linestatuses."""
        result = parallel_q1(partitions(lineitem), CUTOFF)
        assert result.num_rows == 6

    def test_counts_cover_qualifying_rows(self, lineitem):
        result = parallel_q1(partitions(lineitem), CUTOFF)
        qualifying = int(np.sum(lineitem.column("l_shipdate") <= CUTOFF))
        assert int(result.column("count_order").sum()) == qualifying

    def test_averages_consistent(self, lineitem):
        result = parallel_q1(partitions(lineitem), CUTOFF)
        assert np.allclose(
            result.column("avg_qty"),
            result.column("sum_qty") / result.column("count_order"),
        )

    def test_disc_price_expression(self, lineitem):
        """sum_disc_price must equal sum of price*(1-discount) per group."""
        result = parallel_q1(partitions(lineitem), CUTOFF)
        mask = lineitem.column("l_shipdate") <= CUTOFF
        flags = lineitem.column("l_returnflag")[mask]
        statuses = lineitem.column("l_linestatus")[mask]
        disc_price = (
            lineitem.column("l_extendedprice")[mask]
            * (1.0 - lineitem.column("l_discount")[mask])
        )
        for row in range(result.num_rows):
            flag = result.column("l_returnflag")[row]
            status = result.column("l_linestatus")[row]
            expected = disc_price[(flags == flag) & (statuses == status)].sum()
            assert result.column("sum_disc_price")[row] == pytest.approx(expected)

    def test_output_sorted_by_group(self, lineitem):
        result = parallel_q1(partitions(lineitem), CUTOFF)
        keys = list(zip(result.column("l_returnflag"), result.column("l_linestatus")))
        assert keys == sorted(keys)

    def test_partition_count_invariance(self, lineitem):
        """Q1 is perfectly partitionable: any node count, same answer."""
        two = parallel_q1(partitions(lineitem, 2), CUTOFF)
        eight = parallel_q1(partitions(lineitem, 8), CUTOFF)
        assert np.allclose(two.column("sum_qty"), eight.column("sum_qty"))

    def test_local_aggregate_is_small(self, lineitem):
        """The reason Q1 scales: partials are tiny (<= 6 rows/node)."""
        for partition in partitions(lineitem):
            partial = q1_local_aggregate(partition, CUTOFF)
            assert partial is not None
            assert partial.num_rows <= 6

    def test_empty_selection_raises(self, lineitem):
        with pytest.raises(ExecutionError, match="no rows"):
            parallel_q1(partitions(lineitem), date_cutoff=-1)

    def test_needs_partitions(self):
        with pytest.raises(ExecutionError):
            parallel_q1([], CUTOFF)
