"""Shared pytest configuration."""

from hypothesis import HealthCheck, settings

# CI-friendly hypothesis profile: deterministic, no wall-clock deadline
# (the fluid simulator's property tests legitimately take a few ms/case).
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")
