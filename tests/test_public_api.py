"""The documented public API surface stays importable and coherent."""

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.5.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"


def test_quickstart_docstring_workflow():
    """The workflow shown in the package docstring actually runs."""
    query = repro.HashJoinQuery.tpch_orders_lineitem(
        scale_factor=1000, build_selectivity=0.10, probe_selectivity=0.01
    )
    explorer = repro.DesignSpaceExplorer(
        beefy=repro.CLUSTER_V_NODE, wimpy=repro.WIMPY_LAPTOP_B, cluster_size=8
    )
    curve = explorer.sweep(query)
    best = curve.best_design(target_performance=0.6)
    assert best.cluster.num_nodes == 8
    assert best.num_wimpy > 0


@pytest.mark.parametrize(
    "module",
    [
        "repro.hardware",
        "repro.hardware.power",
        "repro.hardware.calibration",
        "repro.hardware.meter",
        "repro.hardware.presets",
        "repro.hardware.dvfs",
        "repro.hardware.powerstate",
        "repro.simulator",
        "repro.simulator.engine",
        "repro.simulator.allocation",
        "repro.simulator.network",
        "repro.simulator.trace",
        "repro.study",
        "repro.workloads",
        "repro.workloads.protocol",
        "repro.workloads.tpch",
        "repro.workloads.datagen",
        "repro.workloads.queries",
        "repro.workloads.microbench",
        "repro.workloads.skew",
        "repro.workloads.suite",
        "repro.workloads.arrivals",
        "repro.costmodel",
        "repro.costmodel.carbon",
        "repro.costmodel.model",
        "repro.policy",
        "repro.policy.policies",
        "repro.policy.candidate",
        "repro.pstore",
        "repro.pstore.operators",
        "repro.pstore.planner",
        "repro.pstore.simulated",
        "repro.pstore.functional",
        "repro.pstore.queries",
        "repro.pstore.replication",
        "repro.dbms",
        "repro.core",
        "repro.core.model",
        "repro.core.design_space",
        "repro.core.edp",
        "repro.core.principles",
        "repro.core.validation",
        "repro.analysis",
        "repro.analysis.metrics",
        "repro.analysis.report",
        "repro.analysis.export",
        "repro.analysis.bottlenecks",
        "repro.telemetry",
        "repro.telemetry.registry",
        "repro.telemetry.report",
        "repro.experiments",
    ],
)
def test_module_imports_cleanly(module):
    assert importlib.import_module(module) is not None


def test_module_docstrings_present():
    """Every public module documents itself."""
    for module_name in (
        "repro",
        "repro.core.model",
        "repro.simulator.engine",
        "repro.pstore.planner",
        "repro.dbms.vertica_like",
    ):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__) > 80


def test_errors_all_derive_from_repro_error():
    from repro import errors

    for name in errors.__all__:
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)
