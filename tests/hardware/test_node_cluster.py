"""NodeSpec and ClusterSpec behaviour."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.cluster import ClusterSpec, NodeGroup
from repro.hardware.node import NodeSpec
from repro.hardware.power import PowerLawModel
from repro.hardware.presets import BEEFY_L5630, CLUSTER_V_NODE, WIMPY_LAPTOP_B


def make_node(**overrides):
    base = dict(
        name="test",
        cpu_bandwidth_mbps=1000.0,
        memory_mb=8000.0,
        disk_bandwidth_mbps=200.0,
        nic_bandwidth_mbps=100.0,
        power_model=PowerLawModel(50.0, 0.25),
        engine_base_utilization=0.10,
    )
    base.update(overrides)
    return NodeSpec(**base)


class TestNodeSpec:
    def test_utilization_includes_engine_base(self):
        node = make_node()
        assert node.utilization(0.0) == pytest.approx(0.10)
        assert node.utilization(500.0) == pytest.approx(0.60)

    def test_utilization_clamps_at_one(self):
        assert make_node().utilization(5000.0) == 1.0

    def test_utilization_rejects_negative_rate(self):
        with pytest.raises(ConfigurationError):
            make_node().utilization(-1.0)

    def test_power_at_rate(self):
        node = make_node()
        assert node.power_at_rate(500.0) == pytest.approx(
            node.power_model.power(0.60)
        )

    def test_idle_and_peak_power(self):
        node = make_node()
        assert node.idle_power_w == pytest.approx(node.power_model.power(0.10))
        assert node.peak_power_w == pytest.approx(node.power_model.power(1.0))

    def test_invalid_fields(self):
        with pytest.raises(ConfigurationError):
            make_node(cpu_bandwidth_mbps=0.0)
        with pytest.raises(ConfigurationError):
            make_node(memory_mb=-1.0)
        with pytest.raises(ConfigurationError):
            make_node(engine_base_utilization=1.0)
        with pytest.raises(ConfigurationError):
            make_node(cores=0)

    def test_with_overrides(self):
        node = make_node().with_overrides(disk_bandwidth_mbps=1200.0)
        assert node.disk_bandwidth_mbps == 1200.0
        assert node.cpu_bandwidth_mbps == 1000.0  # unchanged

    def test_str(self):
        assert "test" in str(make_node())


class TestClusterSpec:
    def test_homogeneous_builder(self):
        cluster = ClusterSpec.homogeneous(CLUSTER_V_NODE, 8)
        assert cluster.num_nodes == 8
        assert cluster.num_beefy == 8
        assert cluster.num_wimpy == 0
        assert cluster.is_homogeneous

    def test_homogeneous_invalid_count(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec.homogeneous(CLUSTER_V_NODE, 0)

    def test_beefy_wimpy_builder(self):
        cluster = ClusterSpec.beefy_wimpy(BEEFY_L5630, 2, WIMPY_LAPTOP_B, 6)
        assert cluster.name == "2B,6W"
        assert cluster.num_beefy == 2
        assert cluster.num_wimpy == 6
        assert not cluster.is_homogeneous

    def test_beefy_wimpy_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec.beefy_wimpy(BEEFY_L5630, 0, WIMPY_LAPTOP_B, 0)

    def test_all_wimpy_mix_is_valid(self):
        cluster = ClusterSpec.beefy_wimpy(BEEFY_L5630, 0, WIMPY_LAPTOP_B, 8)
        assert cluster.num_nodes == 8
        with pytest.raises(ConfigurationError):
            _ = cluster.beefy_spec

    def test_nodes_order_beefy_first(self):
        cluster = ClusterSpec.beefy_wimpy(BEEFY_L5630, 2, WIMPY_LAPTOP_B, 2)
        roles = [role for _, role in cluster.nodes()]
        assert roles == ["beefy", "beefy", "wimpy", "wimpy"]

    def test_total_memory(self):
        cluster = ClusterSpec.beefy_wimpy(BEEFY_L5630, 1, WIMPY_LAPTOP_B, 1)
        assert cluster.total_memory_mb == pytest.approx(
            BEEFY_L5630.memory_mb + WIMPY_LAPTOP_B.memory_mb
        )

    def test_idle_power_sums_nodes(self):
        cluster = ClusterSpec.homogeneous(WIMPY_LAPTOP_B, 3)
        assert cluster.idle_power_w == pytest.approx(3 * WIMPY_LAPTOP_B.idle_power_w)

    def test_subset(self):
        cluster = ClusterSpec.homogeneous(CLUSTER_V_NODE, 16)
        sub = cluster.subset(10)
        assert sub.num_nodes == 10

    def test_subset_across_groups(self):
        cluster = ClusterSpec.beefy_wimpy(BEEFY_L5630, 2, WIMPY_LAPTOP_B, 2)
        sub = cluster.subset(3)
        assert sub.num_beefy == 2
        assert sub.num_wimpy == 1

    def test_subset_invalid(self):
        cluster = ClusterSpec.homogeneous(CLUSTER_V_NODE, 4)
        with pytest.raises(ConfigurationError):
            cluster.subset(5)
        with pytest.raises(ConfigurationError):
            cluster.subset(0)

    def test_node_group_validation(self):
        with pytest.raises(ConfigurationError):
            NodeGroup(spec=CLUSTER_V_NODE, count=-1)
        with pytest.raises(ConfigurationError):
            NodeGroup(spec=CLUSTER_V_NODE, count=1, role="mystery")

    def test_str(self):
        assert "2B,6W" in str(ClusterSpec.beefy_wimpy(BEEFY_L5630, 2, WIMPY_LAPTOP_B, 6))
