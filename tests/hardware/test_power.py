"""Power models: the paper's SysPower regressions and alternatives."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hardware.power import (
    MIN_UTILIZATION,
    ExponentialModel,
    IdlePeakModel,
    LogarithmicModel,
    PowerLawModel,
)

CLUSTER_V = PowerLawModel(130.03, 0.2369)
LAPTOP_B = PowerLawModel(10.994, 0.2875)


def test_cluster_v_power_at_full_utilization():
    # 130.03 * 100^0.2369
    assert CLUSTER_V.power(1.0) == pytest.approx(130.03 * 100**0.2369)


def test_cluster_v_power_at_one_percent():
    # (100 * 0.01)^b == 1 -> exactly the coefficient
    assert CLUSTER_V.power(0.01) == pytest.approx(130.03)


def test_laptop_b_full_load_near_published_average():
    # Section 5.2 reports ~37 W average laptop power; the model peaks ~41 W.
    assert 35.0 < LAPTOP_B.power(1.0) < 45.0


def test_clamping_below_minimum():
    assert CLUSTER_V.power(0.0) == CLUSTER_V.power(MIN_UTILIZATION)
    assert CLUSTER_V.power(-5.0) == CLUSTER_V.power(MIN_UTILIZATION)


def test_clamping_above_one():
    assert CLUSTER_V.power(3.0) == CLUSTER_V.power(1.0)


def test_nan_utilization_rejected():
    with pytest.raises(ConfigurationError):
        CLUSTER_V.power(float("nan"))


def test_energy():
    assert CLUSTER_V.energy(1.0, 10.0) == pytest.approx(10.0 * CLUSTER_V.power(1.0))


def test_energy_negative_duration():
    with pytest.raises(ConfigurationError):
        CLUSTER_V.energy(0.5, -1.0)


def test_idle_and_peak_properties():
    assert CLUSTER_V.idle_power == CLUSTER_V.power(MIN_UTILIZATION)
    assert CLUSTER_V.peak_power == CLUSTER_V.power(1.0)
    assert CLUSTER_V.idle_power < CLUSTER_V.peak_power


def test_power_law_requires_positive_coefficient():
    with pytest.raises(ConfigurationError):
        PowerLawModel(-1.0, 0.2)


def test_exponential_model():
    model = ExponentialModel(coefficient=50.0, rate=0.01)
    assert model.power(0.5) == pytest.approx(50.0 * math.exp(0.01 * 50.0))
    with pytest.raises(ConfigurationError):
        ExponentialModel(0.0, 0.01)


def test_logarithmic_model():
    model = LogarithmicModel(offset=100.0, slope=20.0)
    assert model.power(0.01) == pytest.approx(100.0)  # ln(1) == 0
    assert model.power(1.0) == pytest.approx(100.0 + 20.0 * math.log(100.0))


def test_logarithmic_never_negative():
    model = LogarithmicModel(offset=0.5, slope=-10.0)
    assert model.power(1.0) == 0.0


def test_idle_peak_model_bounds():
    model = IdlePeakModel(idle_w=11.0, peak_w=20.0)
    assert model.power(1.0) == pytest.approx(20.0)
    assert model.idle_power == pytest.approx(11.0)
    assert 11.0 < model.power(0.5) < 20.0


def test_idle_peak_model_validation():
    with pytest.raises(ConfigurationError):
        IdlePeakModel(idle_w=-1.0, peak_w=20.0)
    with pytest.raises(ConfigurationError):
        IdlePeakModel(idle_w=30.0, peak_w=20.0)
    with pytest.raises(ConfigurationError):
        IdlePeakModel(idle_w=10.0, peak_w=20.0, exponent=0.0)


def test_formula_strings():
    assert "130.03" in CLUSTER_V.formula()
    assert "ln" in LogarithmicModel(1.0, 2.0).formula()
    assert "e^" in ExponentialModel(1.0, 0.1).formula()


@given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
def test_power_law_monotone(u1, u2):
    """More utilization never draws less power."""
    lo, hi = sorted((u1, u2))
    assert CLUSTER_V.power(lo) <= CLUSTER_V.power(hi) + 1e-9


@given(st.floats(0.0, 1.0))
def test_all_models_positive(util):
    for model in (
        CLUSTER_V,
        LAPTOP_B,
        ExponentialModel(50.0, 0.005),
        IdlePeakModel(10.0, 30.0),
    ):
        assert model.power(util) > 0.0
