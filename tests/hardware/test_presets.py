"""Published hardware presets (Tables 1, 2 and 3)."""

import pytest

from repro.hardware.presets import (
    BEEFY_L5630,
    CLUSTER_V_NODE,
    DESKTOP_ATOM,
    LAPTOP_A,
    LAPTOP_B,
    TABLE2_SYSTEMS,
    WIMPY_LAPTOP_B,
    WORKSTATION_A,
    WORKSTATION_B,
)


def test_cluster_v_table3_constants():
    assert CLUSTER_V_NODE.cpu_bandwidth_mbps == 5037.0  # CB
    assert CLUSTER_V_NODE.engine_base_utilization == 0.25  # GB
    assert CLUSTER_V_NODE.power_model.coefficient == 130.03
    assert CLUSTER_V_NODE.power_model.exponent == 0.2369


def test_cluster_v_section54_parameters():
    assert CLUSTER_V_NODE.memory_mb == 47_000.0  # MB
    assert CLUSTER_V_NODE.disk_bandwidth_mbps == 1200.0  # I
    assert CLUSTER_V_NODE.nic_bandwidth_mbps == 100.0  # L


def test_wimpy_table3_constants():
    assert WIMPY_LAPTOP_B.cpu_bandwidth_mbps == 1129.0  # CW
    assert WIMPY_LAPTOP_B.engine_base_utilization == 0.13  # GW
    assert WIMPY_LAPTOP_B.memory_mb == 7_000.0  # MW
    assert WIMPY_LAPTOP_B.power_model.coefficient == 10.994
    assert WIMPY_LAPTOP_B.power_model.exponent == 0.2875


def test_beefy_l5630_section531_constants():
    assert BEEFY_L5630.cpu_bandwidth_mbps == 4034.0
    assert BEEFY_L5630.memory_mb == 31_000.0
    assert BEEFY_L5630.disk_bandwidth_mbps == 270.0
    assert BEEFY_L5630.nic_bandwidth_mbps == 95.0
    assert BEEFY_L5630.power_model.coefficient == 79.006
    assert BEEFY_L5630.power_model.exponent == 0.2451


def test_table2_idle_powers_as_published():
    expected = {
        "workstation-A": 93.0,
        "workstation-B": 69.0,
        "desktop-atom": 28.0,
        "laptop-A": 12.0,
        "laptop-B": 11.0,
    }
    for system in TABLE2_SYSTEMS:
        assert system.power_model.idle_power == pytest.approx(expected[system.name])


def test_table2_order_matches_paper():
    assert [s.name for s in TABLE2_SYSTEMS] == [
        "workstation-A",
        "workstation-B",
        "desktop-atom",
        "laptop-A",
        "laptop-B",
    ]


def test_table2_memory_sizes():
    assert WORKSTATION_A.memory_mb == 12_000.0
    assert WORKSTATION_B.memory_mb == 24_000.0
    assert DESKTOP_ATOM.memory_mb == 4_000.0
    assert LAPTOP_A.memory_mb == 4_000.0
    assert LAPTOP_B.memory_mb == 8_000.0


def test_workstations_faster_than_laptops():
    assert WORKSTATION_A.cpu_bandwidth_mbps > LAPTOP_B.cpu_bandwidth_mbps
    assert WORKSTATION_B.cpu_bandwidth_mbps > LAPTOP_A.cpu_bandwidth_mbps


def test_wimpy_draws_far_less_power_than_cluster_v_beefy():
    # the premise of the whole design space: ~10x power gap
    ratio = WIMPY_LAPTOP_B.peak_power_w / CLUSTER_V_NODE.peak_power_w
    assert ratio < 0.15
