"""Power-state transition costs and downsizing break-even."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.powerstate import (
    TRADITIONAL_SERVER,
    PowerStateModel,
    downsizing_break_even_s,
    downsizing_net_energy_j,
)
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B


def test_cycle_duration():
    model = PowerStateModel(shutdown_s=30.0, boot_s=120.0)
    assert model.cycle_s == 150.0


def test_cycle_energy():
    model = PowerStateModel(shutdown_s=10.0, boot_s=90.0, transition_power_fraction=0.5)
    expected = 100.0 * 0.5 * CLUSTER_V_NODE.peak_power_w
    assert model.cycle_energy_j(CLUSTER_V_NODE) == pytest.approx(expected)


def test_validation():
    with pytest.raises(ConfigurationError):
        PowerStateModel(shutdown_s=-1.0)
    with pytest.raises(ConfigurationError):
        PowerStateModel(transition_power_fraction=0.0)
    with pytest.raises(ConfigurationError):
        downsizing_break_even_s(CLUSTER_V_NODE, idle_nodes=0)
    with pytest.raises(ConfigurationError):
        downsizing_net_energy_j(CLUSTER_V_NODE, 2, off_duration_s=-1.0)


def test_break_even_definition():
    """Break-even = cycle energy / idle power, per node."""
    expected = TRADITIONAL_SERVER.cycle_energy_j(CLUSTER_V_NODE) / (
        CLUSTER_V_NODE.idle_power_w
    )
    assert downsizing_break_even_s(CLUSTER_V_NODE, idle_nodes=4) == pytest.approx(
        expected
    )


def test_break_even_independent_of_node_count():
    one = downsizing_break_even_s(CLUSTER_V_NODE, idle_nodes=1)
    many = downsizing_break_even_s(CLUSTER_V_NODE, idle_nodes=7)
    assert one == pytest.approx(many)


def test_break_even_is_minutes_not_hours_for_beefy_servers():
    """Cluster-V nodes idle at ~280 W with ~46 kJ cycle cost: turning them
    off pays within a few minutes — the paper's consolidation premise."""
    seconds = downsizing_break_even_s(CLUSTER_V_NODE)
    assert 60.0 < seconds < 600.0


def test_wimpy_nodes_take_longer_to_break_even():
    """Low idle power means less to save: Wimpy break-even is longer."""
    assert downsizing_break_even_s(WIMPY_LAPTOP_B) > downsizing_break_even_s(
        CLUSTER_V_NODE
    )


def test_net_energy_sign_flips_at_break_even():
    node = CLUSTER_V_NODE
    breakeven = downsizing_break_even_s(node)
    assert downsizing_net_energy_j(node, 2, breakeven * 0.5) < 0
    assert downsizing_net_energy_j(node, 2, breakeven * 2.0) > 0
    assert downsizing_net_energy_j(node, 2, breakeven) == pytest.approx(0.0, abs=1e-6)


def test_net_energy_scales_with_idle_nodes():
    node = CLUSTER_V_NODE
    duration = 3600.0
    two = downsizing_net_energy_j(node, 2, duration)
    four = downsizing_net_energy_j(node, 4, duration)
    assert four == pytest.approx(2 * two)
