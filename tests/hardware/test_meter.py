"""Simulated WattsUp and iLO2 meters."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.calibration import fit_best_model
from repro.hardware.meter import ILO2Interface, WattsUpMeter
from repro.hardware.power import PowerLawModel


def constant_power(watts):
    return lambda _t: watts


class TestWattsUpMeter:
    def test_sample_count_at_1hz(self):
        meter = WattsUpMeter(seed=1)
        samples = meter.sample(constant_power(100.0), duration_s=10.0)
        assert len(samples) == 10

    def test_sample_count_other_rate(self):
        meter = WattsUpMeter(sample_hz=2.0, seed=1)
        assert len(meter.sample(constant_power(50.0), duration_s=5.0)) == 10

    def test_accuracy_bound_respected(self):
        meter = WattsUpMeter(accuracy=0.015, seed=42)
        samples = meter.sample(constant_power(200.0), duration_s=100.0)
        for s in samples:
            assert 200.0 * 0.985 <= s.watts <= 200.0 * 1.015

    def test_zero_accuracy_is_exact(self):
        meter = WattsUpMeter(accuracy=0.0, seed=0)
        samples = meter.sample(constant_power(123.0), duration_s=5.0)
        assert all(s.watts == pytest.approx(123.0) for s in samples)

    def test_energy_integration_constant_power(self):
        meter = WattsUpMeter(accuracy=0.0, seed=0)
        samples = meter.sample(constant_power(100.0), duration_s=60.0)
        # 59 trapezoid intervals of 1 s at 100 W
        assert WattsUpMeter.energy_joules(samples) == pytest.approx(5900.0)

    def test_energy_needs_two_samples(self):
        with pytest.raises(ConfigurationError):
            WattsUpMeter.energy_joules([])

    def test_average_watts(self):
        meter = WattsUpMeter(accuracy=0.0, seed=0)
        samples = meter.sample(constant_power(77.0), duration_s=3.0)
        assert WattsUpMeter.average_watts(samples) == pytest.approx(77.0)

    def test_negative_power_rejected(self):
        meter = WattsUpMeter(seed=0)
        with pytest.raises(ConfigurationError):
            meter.sample(constant_power(-1.0), duration_s=2.0)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            WattsUpMeter(sample_hz=0.0)
        with pytest.raises(ConfigurationError):
            WattsUpMeter(accuracy=-0.1)

    def test_invalid_duration(self):
        with pytest.raises(ConfigurationError):
            WattsUpMeter(seed=0).sample(constant_power(1.0), duration_s=0.0)

    def test_deterministic_with_seed(self):
        a = WattsUpMeter(seed=9).sample(constant_power(100.0), 5.0)
        b = WattsUpMeter(seed=9).sample(constant_power(100.0), 5.0)
        assert [s.watts for s in a] == [s.watts for s in b]


class TestILO2Interface:
    def test_measure_constant_power(self):
        ilo = ILO2Interface(accuracy=0.0, seed=0)
        assert ilo.measure(constant_power(150.0)) == pytest.approx(150.0)

    def test_measure_respects_accuracy(self):
        ilo = ILO2Interface(accuracy=0.01, seed=5)
        value = ilo.measure(constant_power(150.0), windows=3)
        assert 150.0 * 0.99 <= value <= 150.0 * 1.01

    def test_invalid_windows(self):
        with pytest.raises(ConfigurationError):
            ILO2Interface(seed=0).measure(constant_power(1.0), windows=0)

    def test_utilization_sweep_shape(self):
        ilo = ILO2Interface(accuracy=0.0, seed=0)
        model = PowerLawModel(130.03, 0.2369)
        readings = ilo.utilization_sweep(model.power, [0.1, 0.5, 1.0])
        assert [u for u, _ in readings] == [0.1, 0.5, 1.0]
        assert readings[-1][1] == pytest.approx(model.power(1.0))

    def test_utilization_sweep_invalid_level(self):
        ilo = ILO2Interface(seed=0)
        with pytest.raises(ConfigurationError):
            ilo.utilization_sweep(lambda u: 100.0, [0.0])

    def test_end_to_end_calibration_recovers_table1_model(self):
        """The Table 1 workflow: iLO2 sweep -> regression -> SysPower."""
        truth = PowerLawModel(130.03, 0.2369)
        ilo = ILO2Interface(accuracy=0.01, seed=11)
        readings = ilo.utilization_sweep(
            truth.power, [0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0]
        )
        best = fit_best_model(readings)
        assert best.family == "power"
        assert best.model.coefficient == pytest.approx(130.03, rel=0.05)
        assert best.model.exponent == pytest.approx(0.2369, rel=0.10)
