"""DVFS frequency scaling of node specs."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.dvfs import DVFSPowerModel, dvfs_variant
from repro.hardware.power import MIN_UTILIZATION
from repro.hardware.presets import CLUSTER_V_NODE


class TestDVFSPowerModel:
    def test_full_frequency_is_identity(self):
        model = DVFSPowerModel(CLUSTER_V_NODE.power_model, 1.0)
        for util in (0.1, 0.5, 1.0):
            assert model.power(util) == pytest.approx(
                CLUSTER_V_NODE.power_model.power(util)
            )

    def test_idle_power_unchanged(self):
        model = DVFSPowerModel(CLUSTER_V_NODE.power_model, 0.5)
        assert model.power(MIN_UTILIZATION) == pytest.approx(
            CLUSTER_V_NODE.power_model.power(MIN_UTILIZATION)
        )

    def test_dynamic_power_scales_cubically(self):
        base = CLUSTER_V_NODE.power_model
        model = DVFSPowerModel(base, 0.5)
        idle = base.power(MIN_UTILIZATION)
        expected = idle + (base.power(1.0) - idle) * 0.125
        assert model.power(1.0) == pytest.approx(expected)

    def test_invalid_factor(self):
        with pytest.raises(ConfigurationError):
            DVFSPowerModel(CLUSTER_V_NODE.power_model, 0.0)
        with pytest.raises(ConfigurationError):
            DVFSPowerModel(CLUSTER_V_NODE.power_model, 1.5)

    def test_formula_mentions_factor(self):
        assert "0.6" in DVFSPowerModel(CLUSTER_V_NODE.power_model, 0.6).formula()


class TestDVFSVariant:
    def test_cpu_bandwidth_scales_linearly(self):
        slow = dvfs_variant(CLUSTER_V_NODE, 0.6)
        assert slow.cpu_bandwidth_mbps == pytest.approx(5037.0 * 0.6)

    def test_io_untouched(self):
        slow = dvfs_variant(CLUSTER_V_NODE, 0.6)
        assert slow.disk_bandwidth_mbps == CLUSTER_V_NODE.disk_bandwidth_mbps
        assert slow.nic_bandwidth_mbps == CLUSTER_V_NODE.nic_bandwidth_mbps
        assert slow.memory_mb == CLUSTER_V_NODE.memory_mb

    def test_name_records_frequency(self):
        assert "60%" in dvfs_variant(CLUSTER_V_NODE, 0.6).name

    def test_invalid_factor(self):
        with pytest.raises(ConfigurationError):
            dvfs_variant(CLUSTER_V_NODE, 0.0)


class TestDVFSOnWorkloads:
    def test_network_bound_join_keeps_performance_sheds_watts(self):
        """For a network-bound shuffle, DVFS is (near) free performance-wise
        but cuts energy — the 'slow down to win the race' effect."""
        from repro.hardware.cluster import ClusterSpec
        from repro.pstore.engine import PStore, PStoreConfig
        from repro.workloads.queries import q3_join

        workload = q3_join(1000, 0.05, 0.05)  # network-bound at 8 nodes
        config = PStoreConfig(warm_cache=True)
        nominal = PStore(
            ClusterSpec.homogeneous(CLUSTER_V_NODE, 8),
            config=config, record_intervals=False,
        ).simulate(workload)
        scaled = PStore(
            ClusterSpec.homogeneous(dvfs_variant(CLUSTER_V_NODE, 0.6), 8),
            config=config, record_intervals=False,
        ).simulate(workload)
        assert scaled.makespan_s == pytest.approx(nominal.makespan_s, rel=0.02)
        assert scaled.energy_j < 0.75 * nominal.energy_j

    def test_cpu_bound_join_slows_proportionally(self):
        from repro.hardware.cluster import ClusterSpec
        from repro.pstore.engine import PStore, PStoreConfig
        from repro.workloads.queries import q3_join

        workload = q3_join(1000, 0.005, 0.005)  # CPU-bound
        config = PStoreConfig(warm_cache=True)
        nominal = PStore(
            ClusterSpec.homogeneous(CLUSTER_V_NODE, 8),
            config=config, record_intervals=False,
        ).simulate(workload)
        scaled = PStore(
            ClusterSpec.homogeneous(dvfs_variant(CLUSTER_V_NODE, 0.5), 8),
            config=config, record_intervals=False,
        ).simulate(workload)
        assert scaled.makespan_s == pytest.approx(2.0 * nominal.makespan_s, rel=0.02)
