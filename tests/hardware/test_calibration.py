"""Regression fitting: the Section 3.1 calibration procedure."""

import numpy as np
import pytest

from repro.errors import CalibrationError
from repro.hardware.calibration import (
    fit_best_model,
    fit_exponential,
    fit_logarithmic,
    fit_power_law,
    r_squared,
)
from repro.hardware.power import (
    ExponentialModel,
    LogarithmicModel,
    PowerLawModel,
)

UTILS = [0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 1.00]


def samples_from(model, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    return [
        (u, model.power(u) * (1.0 + rng.uniform(-noise, noise))) for u in UTILS
    ]


def test_power_law_exact_recovery():
    truth = PowerLawModel(130.03, 0.2369)
    result = fit_power_law(samples_from(truth))
    assert result.model.coefficient == pytest.approx(130.03, rel=1e-6)
    assert result.model.exponent == pytest.approx(0.2369, rel=1e-6)
    assert result.r2 == pytest.approx(1.0)


def test_exponential_exact_recovery():
    truth = ExponentialModel(60.0, 0.008)
    result = fit_exponential(samples_from(truth))
    assert result.model.coefficient == pytest.approx(60.0, rel=1e-6)
    assert result.model.rate == pytest.approx(0.008, rel=1e-6)


def test_logarithmic_exact_recovery():
    truth = LogarithmicModel(80.0, 25.0)
    result = fit_logarithmic(samples_from(truth))
    assert result.model.offset == pytest.approx(80.0, rel=1e-6)
    assert result.model.slope == pytest.approx(25.0, rel=1e-6)


def test_best_model_selects_power_law_for_power_law_data():
    truth = PowerLawModel(130.03, 0.2369)
    best = fit_best_model(samples_from(truth, noise=0.01, seed=3))
    assert best.family == "power"
    assert best.r2 > 0.98


def test_best_model_selects_logarithmic_for_logarithmic_data():
    truth = LogarithmicModel(90.0, 30.0)
    best = fit_best_model(samples_from(truth, noise=0.002, seed=4))
    assert best.family == "logarithmic"


def test_noisy_power_law_recovery_within_tolerance():
    truth = PowerLawModel(130.03, 0.2369)
    result = fit_power_law(samples_from(truth, noise=0.015, seed=7))
    assert result.model.coefficient == pytest.approx(130.03, rel=0.05)
    assert result.model.exponent == pytest.approx(0.2369, rel=0.15)


def test_r_squared_perfect_and_mean():
    y = [1.0, 2.0, 3.0]
    assert r_squared(y, y) == pytest.approx(1.0)
    assert r_squared(y, [2.0, 2.0, 2.0]) == pytest.approx(0.0)


def test_r_squared_constant_observations():
    assert r_squared([5.0, 5.0], [5.0, 5.0]) == 1.0
    assert r_squared([5.0, 5.0], [4.0, 6.0]) == 0.0


def test_r_squared_shape_mismatch():
    with pytest.raises(CalibrationError):
        r_squared([1.0], [1.0, 2.0])


def test_too_few_samples():
    with pytest.raises(CalibrationError, match="at least"):
        fit_power_law([(0.5, 100.0), (0.6, 110.0)])


def test_invalid_utilization():
    with pytest.raises(CalibrationError):
        fit_power_law([(0.0, 10.0), (0.5, 100.0), (1.0, 120.0)])
    with pytest.raises(CalibrationError):
        fit_power_law([(1.5, 10.0), (0.5, 100.0), (1.0, 120.0)])


def test_invalid_watts():
    with pytest.raises(CalibrationError):
        fit_power_law([(0.1, -5.0), (0.5, 100.0), (1.0, 120.0)])


def test_calibration_result_str():
    result = fit_power_law(samples_from(PowerLawModel(100.0, 0.3)))
    assert "power" in str(result)
    assert "R²" in str(result)
