"""Report rendering, attribution math, logging setup, JSON export."""

import io
import json
import logging

from repro.analysis.export import telemetry_to_dict, telemetry_to_json
from repro.telemetry import (
    Telemetry,
    TelemetrySnapshot,
    attribution,
    capture,
    configure_logging,
    render_report,
    span_rows,
)


def _registry_with_tree() -> Telemetry:
    telemetry = Telemetry(enabled=True)
    with telemetry.span("root"):
        with telemetry.span("child"):
            pass
        with telemetry.span("child"):
            pass
    telemetry.count("hits", 3)
    telemetry.gauge("width", 8.0)
    return telemetry


class TestSpanRows:
    def test_rows_are_depth_first_with_depths(self):
        rows = span_rows(_registry_with_tree())
        assert [(row["name"], row["depth"]) for row in rows] == [
            ("root", 0),
            ("child", 1),
        ]
        assert rows[1]["calls"] == 2

    def test_self_time_subtracts_direct_children(self):
        snap = TelemetrySnapshot(
            spans={("root",): (1, 10.0), ("root", "child"): (2, 4.0)}
        )
        rows = {row["name"]: row for row in span_rows(snap)}
        assert rows["root"]["child_s"] == 4.0
        assert rows["root"]["self_s"] == 6.0
        assert rows["child"]["self_s"] == 4.0

    def test_self_time_clamps_when_parallel_children_overlap(self):
        """Worker chunks measure in-worker seconds, which overlap in wall
        time — their sum can exceed the parent's."""
        snap = TelemetrySnapshot(
            spans={("dispatch",): (1, 1.0), ("dispatch", "worker.chunk"): (4, 3.5)}
        )
        (root_row,) = [r for r in span_rows(snap) if r["depth"] == 0]
        assert root_row["self_s"] == 0.0

    def test_accepts_registry_or_snapshot(self):
        telemetry = _registry_with_tree()
        assert span_rows(telemetry) == span_rows(telemetry.snapshot())


class TestAttribution:
    def test_fraction_over_root_spans(self):
        snap = TelemetrySnapshot(
            spans={("root",): (1, 10.0), ("root", "child"): (1, 9.5)}
        )
        summary = attribution(snap)
        assert summary["total_s"] == 10.0
        assert summary["attributed_s"] == 9.5
        assert summary["unattributed_s"] == 0.5
        assert summary["fraction"] == 0.95

    def test_empty_registry_is_fully_attributed(self):
        """Nothing measured must never read as nothing attributed."""
        assert attribution(TelemetrySnapshot())["fraction"] == 1.0

    def test_root_filter(self):
        snap = TelemetrySnapshot(
            spans={
                ("a",): (1, 10.0),
                ("a", "x"): (1, 10.0),
                ("b",): (1, 4.0),
            }
        )
        assert attribution(snap, root="a")["fraction"] == 1.0
        assert attribution(snap, root="b")["fraction"] == 0.0


class TestRenderReport:
    def test_empty_registry_says_how_to_enable(self):
        text = render_report(Telemetry())
        assert "no telemetry recorded" in text
        assert "repro.telemetry.enable()" in text

    def test_report_shows_tree_counters_and_gauges(self):
        text = render_report(_registry_with_tree(), title="unit report")
        assert text.startswith("unit report\n===========")
        assert "root" in text
        assert "  child" in text  # indented beneath its parent
        assert "(unattributed)" in text
        assert "attributed to named spans:" in text
        assert "hits" in text and "3" in text
        assert "width" in text

    def test_percentages_are_relative_to_the_root(self):
        snap = TelemetrySnapshot(
            spans={("root",): (1, 2.0), ("root", "half"): (1, 1.0)}
        )
        text = render_report(snap)
        assert "100.0%" in text
        assert " 50.0%" in text


class TestConfigureLogging:
    def test_attaches_one_handler_and_is_idempotent(self):
        logger = logging.getLogger("repro")
        before = list(logger.handlers)
        stream = io.StringIO()
        try:
            configure_logging(level=logging.INFO, stream=stream)
            configure_logging(level=logging.DEBUG, stream=stream)
            added = [h for h in logger.handlers if h not in before]
            assert len(added) == 1
            assert logger.level == logging.DEBUG
        finally:
            for handler in list(logger.handlers):
                if handler not in before:
                    logger.removeHandler(handler)
            logger.setLevel(logging.NOTSET)

    def test_child_module_records_reach_the_repro_handler(self):
        logger = logging.getLogger("repro")
        before = list(logger.handlers)
        stream = io.StringIO()
        try:
            configure_logging(level=logging.WARNING, stream=stream)
            logging.getLogger("repro.search.cache").warning("store is locked")
            assert "repro.search.cache: store is locked" in stream.getvalue()
        finally:
            for handler in list(logger.handlers):
                if handler not in before:
                    logger.removeHandler(handler)
            logger.setLevel(logging.NOTSET)


class TestJsonExport:
    def test_dict_shape_and_path_join(self):
        payload = telemetry_to_dict(_registry_with_tree())
        assert payload["counters"] == {"hits": 3}
        assert payload["gauges"] == {"width": 8.0}
        assert [row["path"] for row in payload["spans"]] == [
            "root",
            "root/child",
        ]
        assert payload["attribution"]["fraction"] <= 1.0

    def test_json_is_parseable_and_defaults_to_active_registry(self):
        with capture() as telemetry:
            telemetry.count("n", 2)
            parsed = json.loads(telemetry_to_json())
        assert parsed["counters"] == {"n": 2}

    def test_accepts_snapshots(self):
        snap = TelemetrySnapshot(counters={"n": 1})
        assert telemetry_to_dict(snap)["counters"] == {"n": 1}
