"""Registry semantics: the recording contract everything else builds on."""

import pickle

import pytest

from repro.telemetry import Telemetry, TelemetrySnapshot, capture
from repro.telemetry.registry import _NULL_SPAN


class TestDisabledIsNoop:
    def test_disabled_records_nothing(self):
        telemetry = Telemetry(enabled=False)
        telemetry.count("a", 3)
        telemetry.gauge("g", 1.5)
        with telemetry.span("s"):
            pass
        assert telemetry.counters == {}
        assert telemetry.gauges == {}
        assert telemetry.spans == {}

    def test_disabled_span_is_the_shared_null_singleton(self):
        """No allocation on the disabled path: every disabled span() is
        one shared object."""
        telemetry = Telemetry(enabled=False)
        assert telemetry.span("a") is _NULL_SPAN
        assert telemetry.span("b") is _NULL_SPAN

    def test_registries_start_disabled(self):
        assert not Telemetry().enabled


class TestRecording:
    def test_counters_accumulate(self):
        telemetry = Telemetry(enabled=True)
        telemetry.count("hits")
        telemetry.count("hits", 4)
        assert telemetry.counter("hits") == 5
        assert telemetry.counter("never", default=-1) == -1

    def test_gauges_last_write_wins(self):
        telemetry = Telemetry(enabled=True)
        telemetry.gauge("width", 8.0)
        telemetry.gauge("width", 16.0)
        assert telemetry.gauges == {"width": 16.0}

    def test_nested_spans_record_stack_paths(self):
        telemetry = Telemetry(enabled=True)
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
            with telemetry.span("inner"):
                pass
        paths = telemetry.spans
        assert set(paths) == {("outer",), ("outer", "inner")}
        assert paths[("outer",)][0] == 1
        assert paths[("outer", "inner")][0] == 2
        # the parent's wall time covers its children's
        assert paths[("outer",)][1] >= paths[("outer", "inner")][1]

    def test_span_stats_sums_across_parents(self):
        telemetry = Telemetry(enabled=True)
        with telemetry.span("a"):
            with telemetry.span("leaf"):
                pass
        with telemetry.span("b"):
            with telemetry.span("leaf"):
                pass
        calls, total = telemetry.span_stats("leaf")
        assert calls == 2
        assert total > 0.0
        assert telemetry.span_stats("never") == (0, 0.0)

    def test_span_pops_the_stack_on_exception(self):
        telemetry = Telemetry(enabled=True)
        with pytest.raises(ValueError):
            with telemetry.span("outer"):
                raise ValueError("boom")
        assert telemetry._stack == []
        assert telemetry.spans[("outer",)][0] == 1

    def test_reset_keeps_the_enabled_flag(self):
        telemetry = Telemetry(enabled=True)
        telemetry.count("a")
        with telemetry.span("s"):
            pass
        telemetry.reset()
        assert telemetry.enabled
        assert telemetry.counters == {}
        assert telemetry.spans == {}


class TestSnapshotAndMerge:
    def test_snapshot_pickles_roundtrip(self):
        """Snapshots must cross the worker pool's result channel."""
        telemetry = Telemetry(enabled=True)
        telemetry.count("n", 7)
        telemetry.gauge("g", 2.5)
        with telemetry.span("s"):
            pass
        snap = telemetry.snapshot()
        clone = pickle.loads(pickle.dumps(snap))
        assert clone == snap
        assert clone.counters == {"n": 7}
        assert ("s",) in clone.spans

    def test_snapshot_is_a_copy(self):
        telemetry = Telemetry(enabled=True)
        telemetry.count("n")
        snap = telemetry.snapshot()
        telemetry.count("n")
        assert snap.counters == {"n": 1}

    def test_merge_adds_counters_and_updates_gauges(self):
        parent = Telemetry(enabled=True)
        parent.count("n", 1)
        parent.gauge("g", 1.0)
        parent.merge(TelemetrySnapshot(counters={"n": 2, "m": 5}, gauges={"g": 9.0}))
        assert parent.counters == {"n": 3, "m": 5}
        assert parent.gauges == {"g": 9.0}

    def test_merge_nests_spans_under_the_open_stack(self):
        """A worker snapshot merged while search.dispatch is open lands
        its worker.chunk time beneath dispatch in the tree."""
        worker = Telemetry(enabled=True)
        with worker.span("worker.chunk"):
            pass
        parent = Telemetry(enabled=True)
        with parent.span("search"):
            with parent.span("search.dispatch"):
                parent.merge(worker.snapshot())
        assert ("search", "search.dispatch", "worker.chunk") in parent.spans

    def test_merge_with_explicit_prefix(self):
        parent = Telemetry(enabled=True)
        child = Telemetry(enabled=True)
        with child.span("leaf"):
            pass
        parent.merge(child.snapshot(), at=("root",))
        assert set(parent.spans) == {("root", "leaf")}

    def test_merge_accumulates_repeated_span_paths(self):
        parent = Telemetry(enabled=True)
        for _ in range(2):
            child = Telemetry(enabled=True)
            with child.span("leaf"):
                pass
            parent.merge(child.snapshot(), at=())
        assert parent.spans[("leaf",)][0] == 2

    def test_merge_is_unguarded_by_enabled(self):
        """Explicitly collected data folds in even if the parent stopped
        collecting between dispatch and harvest."""
        parent = Telemetry(enabled=False)
        parent.merge(TelemetrySnapshot(counters={"n": 1}))
        assert parent.counters == {"n": 1}


class TestModuleLevelState:
    def test_capture_swaps_and_restores_the_active_registry(self):
        import repro.telemetry as T

        before = T.get_telemetry()
        with capture() as local:
            assert T.get_telemetry() is local
            assert local.enabled
            T.count("in-capture")
        assert T.get_telemetry() is before
        assert local.counter("in-capture") == 1
        assert before.counter("in-capture") == 0

    def test_capture_restores_on_exception(self):
        import repro.telemetry as T

        before = T.get_telemetry()
        with pytest.raises(RuntimeError):
            with capture():
                raise RuntimeError("boom")
        assert T.get_telemetry() is before

    def test_capture_disabled_registry(self):
        with capture(enabled=False) as local:
            import repro.telemetry as T

            T.count("ignored")
        assert local.counters == {}

    def test_enable_disable_toggle_without_reset(self):
        import repro.telemetry as T

        with capture(enabled=False):
            registry = T.enable()
            assert T.enabled()
            T.count("kept")
            T.disable()
            assert not T.enabled()
            T.count("dropped")
            assert registry.counter("kept") == 1
            assert registry.counter("dropped") == 0
            # enable again: prior content survives (enable is not a reset)
            T.enable()
            assert registry.counter("kept") == 1
            T.reset()
            assert registry.counter("kept") == 0
            assert T.enabled()
