"""The Vertica-like stage model and the published query profiles."""

import pytest

from repro.dbms.calibration import Q1_PROFILE, Q12_PROFILE, Q21_PROFILE
from repro.dbms.vertica_like import QueryProfile, VerticaLikeDBMS
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def dbms():
    return VerticaLikeDBMS()


class TestProfiles:
    def test_published_splits(self):
        assert Q1_PROFILE.local_fraction == 1.0
        assert Q21_PROFILE.local_fraction == pytest.approx(0.945)
        assert Q12_PROFILE.local_fraction == pytest.approx(0.52)

    def test_profile_validation(self):
        with pytest.raises(ConfigurationError):
            QueryProfile("bad", local_fraction=1.5, reference_nodes=8,
                         reference_time_s=10.0, shuffle_scaling=0.3)
        with pytest.raises(ConfigurationError):
            QueryProfile("bad", local_fraction=0.5, reference_nodes=0,
                         reference_time_s=10.0, shuffle_scaling=0.3)
        with pytest.raises(ConfigurationError):
            QueryProfile("bad", local_fraction=0.5, reference_nodes=8,
                         reference_time_s=10.0, shuffle_scaling=2.0)
        with pytest.raises(ConfigurationError):
            QueryProfile("bad", local_fraction=0.5, reference_nodes=8,
                         reference_time_s=10.0, shuffle_scaling=0.3,
                         local_utilization=0.0)


class TestRun:
    def test_reference_time_reproduced(self, dbms):
        result = dbms.run(Q12_PROFILE, Q12_PROFILE.reference_nodes)
        assert result.time_s == pytest.approx(Q12_PROFILE.reference_time_s)

    def test_local_stage_scales_linearly(self, dbms):
        r8 = dbms.run(Q1_PROFILE, 8)
        r16 = dbms.run(Q1_PROFILE, 16)
        assert r16.local_time_s == pytest.approx(r8.local_time_s / 2)

    def test_invalid_size(self, dbms):
        with pytest.raises(ConfigurationError):
            dbms.run(Q1_PROFILE, 0)

    def test_average_power_positive(self, dbms):
        assert dbms.run(Q12_PROFILE, 8).average_power_w > 0


class TestPaperShapes:
    def test_q1_linear_speedup_flat_energy(self, dbms):
        """Figure 2(a): perf(8N) ~ 0.5, energy ratio ~ 1.0 throughout."""
        curve = dbms.size_sweep(Q1_PROFILE, [8, 10, 12, 14, 16])
        norm = {p.label: p for p in curve.normalized()}
        assert norm["8N"].performance == pytest.approx(0.5, abs=0.02)
        for p in norm.values():
            assert p.energy == pytest.approx(1.0, abs=0.02)

    def test_q21_nearly_linear(self, dbms):
        """Figure 2(b): 94.5% local -> almost ideal speedup."""
        curve = dbms.size_sweep(Q21_PROFILE, [8, 16])
        norm = {p.label: p for p in curve.normalized()}
        assert norm["8N"].performance == pytest.approx(0.52, abs=0.03)
        assert norm["8N"].energy == pytest.approx(1.0, abs=0.05)

    def test_q12_sublinear_with_energy_savings(self, dbms):
        """Figure 1(a): 8N at ~0.64 performance and lower energy."""
        curve = dbms.size_sweep(Q12_PROFILE, [8, 10, 12, 14, 16])
        norm = {p.label: p for p in curve.normalized()}
        assert norm["8N"].performance == pytest.approx(0.64, abs=0.03)
        assert norm["8N"].energy < 0.85
        # the paper's 10N quote: ~24% perf penalty for ~16% energy saving
        assert norm["10N"].performance == pytest.approx(0.76, abs=0.04)
        assert norm["10N"].energy == pytest.approx(0.84, abs=0.04)

    def test_q12_all_points_above_edp(self, dbms):
        """Figure 1(a): homogeneous downsizing never beats constant EDP."""
        curve = dbms.size_sweep(Q12_PROFILE, [8, 10, 12, 14, 16])
        for p in curve.normalized()[1:]:
            assert p.edp_ratio > 1.0

    def test_energy_monotone_decreasing_for_q12(self, dbms):
        curve = dbms.size_sweep(Q12_PROFILE, [8, 10, 12, 14, 16])
        energies = [p.energy for p in curve.normalized()]
        assert energies == sorted(energies, reverse=True)

    def test_sweep_requires_sizes(self, dbms):
        with pytest.raises(ConfigurationError):
            dbms.size_sweep(Q1_PROFILE, [])
