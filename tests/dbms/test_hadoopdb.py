"""The HadoopDB-like coordination-overhead model (Section 3.2)."""

import pytest

from repro.dbms.calibration import Q1_PROFILE, Q12_PROFILE
from repro.dbms.hadoopdb_like import HadoopDBLike, HadoopOverheads
from repro.dbms.vertica_like import VerticaLikeDBMS
from repro.errors import ConfigurationError


def test_overhead_time_grows_with_nodes():
    o = HadoopOverheads(job_startup_s=15.0, per_node_s=1.0)
    assert o.time_s(8) == pytest.approx(23.0)
    assert o.time_s(16) == pytest.approx(31.0)


def test_overhead_validation():
    with pytest.raises(ConfigurationError):
        HadoopOverheads(job_startup_s=-1.0)
    with pytest.raises(ConfigurationError):
        HadoopOverheads(coordination_utilization=0.0)


def test_hadoopdb_slower_than_vertica_like():
    """'The performance of HadoopDB was limited by the Hadoop bottleneck.'"""
    vertica = VerticaLikeDBMS()
    hadoop = HadoopDBLike()
    for n in (8, 12, 16):
        assert hadoop.run(Q12_PROFILE, n).time_s > vertica.run(Q12_PROFILE, n).time_s


def test_overhead_energy_charged_to_all_nodes():
    hadoop = HadoopDBLike()
    vertica = VerticaLikeDBMS()
    assert hadoop.run(Q1_PROFILE, 8).energy_j > vertica.run(Q1_PROFILE, 8).energy_j


def test_best_performing_not_most_energy_efficient():
    """Section 3.2's (omitted-figure) finding reproduced: the largest
    cluster is fastest but not the energy minimum."""
    hadoop = HadoopDBLike()
    curve = hadoop.size_sweep(Q12_PROFILE, [4, 8, 12, 16])
    norm = curve.normalized()
    fastest = max(norm, key=lambda p: p.performance)
    cheapest = min(norm, key=lambda p: p.energy)
    assert fastest.label == "16N"
    assert cheapest.label != "16N"


def test_even_scalable_queries_lose_efficiency_at_scale():
    """Per-node overhead makes energy grow with cluster size for Q1."""
    hadoop = HadoopDBLike()
    curve = hadoop.size_sweep(Q1_PROFILE, [4, 16])
    norm = {p.label: p for p in curve.normalized()}
    assert norm["4N"].energy < 1.0


def test_size_sweep_reference_is_largest(monkeypatch):
    hadoop = HadoopDBLike()
    curve = hadoop.size_sweep(Q12_PROFILE, [8, 16, 12])
    assert curve.reference_label == "16N"


def test_sweep_requires_sizes():
    with pytest.raises(ConfigurationError):
        HadoopDBLike().size_sweep(Q1_PROFILE, [])
