"""Fault-event/schedule validation, determinism, and cache-key hygiene."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FailurePolicy,
    FaultSchedule,
    NetworkDegrade,
    NodeCrash,
    Straggler,
    correlated_rack_failure,
    random_crashes,
    rolling_restart,
)


# ------------------------------------------------------------------- events
def test_node_crash_validation():
    with pytest.raises(ConfigurationError):
        NodeCrash(node=-1, at_s=1.0)
    with pytest.raises(ConfigurationError):
        NodeCrash(node=0, at_s=-1.0)
    with pytest.raises(ConfigurationError):
        NodeCrash(node=0, at_s=5.0, recover_at_s=5.0)  # must recover later
    with pytest.raises(ConfigurationError):
        NodeCrash(node=0, at_s=math.inf)


def test_node_crash_defaults_to_fail_stop():
    crash = NodeCrash(node=2, at_s=10.0)
    assert crash.recover_at_s == math.inf


def test_straggler_validation():
    with pytest.raises(ConfigurationError):
        Straggler(node=0, at_s=0.0, slowdown=0.0, duration_s=1.0)
    with pytest.raises(ConfigurationError):
        Straggler(node=0, at_s=0.0, slowdown=1.0, duration_s=1.0)
    with pytest.raises(ConfigurationError):
        Straggler(node=0, at_s=0.0, slowdown=0.5, duration_s=0.0)
    s = Straggler(node=0, at_s=2.0, slowdown=0.5, duration_s=3.0)
    assert s.end_s == 5.0


def test_network_degrade_validation():
    with pytest.raises(ConfigurationError):
        NetworkDegrade(factor=0.0, at_s=0.0, duration_s=1.0)
    with pytest.raises(ConfigurationError):
        NetworkDegrade(factor=1.5, at_s=0.0, duration_s=1.0)
    d = NetworkDegrade(factor=0.5, at_s=1.0, duration_s=4.0)
    assert d.end_s == 5.0


# ----------------------------------------------------------------- schedule
def test_schedule_sorts_events_by_onset():
    a = NodeCrash(node=0, at_s=10.0, recover_at_s=20.0)
    b = Straggler(node=1, at_s=2.0, slowdown=0.5, duration_s=1.0)
    schedule = FaultSchedule(events=(a, b))
    assert schedule.events == (b, a)
    assert len(schedule) == 2
    assert list(schedule) == [b, a]


def test_schedule_rejects_foreign_event_types():
    with pytest.raises(ConfigurationError):
        FaultSchedule(events=("not-an-event",))


def test_empty_schedule_properties():
    empty = FaultSchedule()
    assert empty.is_empty
    assert empty.span_s == 0.0
    assert len(empty) == 0


def test_schedule_merge_keeps_both_and_resorts():
    a = FaultSchedule(events=(NodeCrash(node=0, at_s=10.0),), name="a")
    b = FaultSchedule(events=(NodeCrash(node=1, at_s=5.0),), name="b")
    merged = a + b
    assert [event.at_s for event in merged.events] == [5.0, 10.0]


def test_schedule_cache_key_distinguishes_contents_and_name():
    a = FaultSchedule(events=(NodeCrash(node=0, at_s=1.0),), name="x")
    b = FaultSchedule(events=(NodeCrash(node=0, at_s=2.0),), name="x")
    c = FaultSchedule(events=(NodeCrash(node=0, at_s=1.0),), name="y")
    keys = {a.cache_key(), b.cache_key(), c.cache_key()}
    assert len(keys) == 3


# --------------------------------------------------------------- generators
def test_random_crashes_deterministic_per_seed():
    kwargs = dict(num_nodes=8, horizon_s=100.0, count=4, mttr_s=30.0)
    assert (
        random_crashes(seed=3, **kwargs).cache_key()
        == random_crashes(seed=3, **kwargs).cache_key()
    )
    assert (
        random_crashes(seed=3, **kwargs).cache_key()
        != random_crashes(seed=4, **kwargs).cache_key()
    )


def test_random_crashes_shape():
    schedule = random_crashes(num_nodes=8, horizon_s=100.0, count=5, mttr_s=30.0, seed=1)
    assert len(schedule) == 5
    for event in schedule:
        assert isinstance(event, NodeCrash)
        assert 0 <= event.node < 8
        assert 0 <= event.at_s < 100.0
        # mttr jitter stays within the documented 0.5x-1.5x band
        assert 15.0 <= event.recover_at_s - event.at_s <= 45.0


def test_rolling_restart_staggers_every_node_once():
    schedule = rolling_restart(num_nodes=4, downtime_s=10.0, stagger_s=60.0, start_s=5.0)
    assert len(schedule) == 4
    assert [event.node for event in schedule] == [0, 1, 2, 3]
    assert [event.at_s for event in schedule] == [5.0, 65.0, 125.0, 185.0]
    assert all(event.recover_at_s == event.at_s + 10.0 for event in schedule)
    # deterministic without any seed
    assert schedule.cache_key() == rolling_restart(
        num_nodes=4, downtime_s=10.0, stagger_s=60.0, start_s=5.0
    ).cache_key()


def test_correlated_rack_failure_hits_all_nodes_at_once():
    schedule = correlated_rack_failure(nodes=(2, 3), at_s=50.0, downtime_s=40.0)
    assert sorted(event.node for event in schedule) == [2, 3]
    assert all(event.at_s == 50.0 for event in schedule)
    assert all(event.recover_at_s == 90.0 for event in schedule)


def test_correlated_rack_failure_default_is_fail_stop():
    schedule = correlated_rack_failure(nodes=(0,), at_s=1.0)
    assert schedule.events[0].recover_at_s == math.inf


def test_correlated_rack_failure_rejects_duplicates_and_empty():
    with pytest.raises(ConfigurationError):
        correlated_rack_failure(nodes=(), at_s=1.0)
    with pytest.raises(ConfigurationError):
        correlated_rack_failure(nodes=(1, 1), at_s=1.0)


# ----------------------------------------------------------- failure policy
def test_backoff_is_capped_exponential():
    policy = FailurePolicy.abort_and_retry(
        max_retries=5, backoff_base_s=1.0, backoff_cap_s=4.0
    )
    delays = [policy.backoff_delay_s("job", attempt) for attempt in (1, 2, 3, 4, 5)]
    assert delays == [1.0, 2.0, 4.0, 4.0, 4.0]


def test_backoff_jitter_is_seeded_deterministic():
    a = FailurePolicy.abort_and_retry(jitter=0.5, seed=11)
    b = FailurePolicy.abort_and_retry(jitter=0.5, seed=11)
    c = FailurePolicy.abort_and_retry(jitter=0.5, seed=12)
    samples_a = [a.backoff_delay_s("q#3", k) for k in range(1, 6)]
    samples_b = [b.backoff_delay_s("q#3", k) for k in range(1, 6)]
    samples_c = [c.backoff_delay_s("q#3", k) for k in range(1, 6)]
    assert samples_a == samples_b
    assert samples_a != samples_c
    # different jobs draw different jitter from the same seed
    assert a.backoff_delay_s("q#3", 1) != a.backoff_delay_s("q#4", 1)


def test_backoff_rejects_zeroth_attempt():
    with pytest.raises(ConfigurationError):
        FailurePolicy().backoff_delay_s("job", 0)


def test_drop_policy_disables_retries():
    policy = FailurePolicy.drop()
    assert policy.max_retries == 0
    assert not policy.retries_enabled


def test_failure_policy_cache_key_covers_transitions():
    from repro.hardware.powerstate import PowerStateModel

    a = FailurePolicy()
    b = FailurePolicy(transitions=PowerStateModel(shutdown_s=1.0, boot_s=2.0))
    assert a.cache_key() != b.cache_key()
