"""Fault injection inside :class:`ClusterSimulator`: the nemesis loop."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.faults import (
    FailurePolicy,
    FaultSchedule,
    NetworkDegrade,
    NodeCrash,
    Straggler,
)
from repro.hardware.cluster import ClusterSpec
from repro.hardware.node import NodeSpec
from repro.hardware.power import PowerLawModel
from repro.hardware.powerstate import PowerStateModel
from repro.pstore.replication import ReplicatedLayout
from repro.simulator.engine import ClusterSimulator
from repro.simulator.jobs import FlowSpec, Job, Phase
from repro.simulator.resources import cpu, nic_in, nic_out

NODE = NodeSpec(
    name="f",
    cpu_bandwidth_mbps=1000.0,
    memory_mb=1000.0,
    disk_bandwidth_mbps=250.0,
    nic_bandwidth_mbps=100.0,
    power_model=PowerLawModel(80.0, 0.3),
    engine_base_utilization=0.1,
)

#: fast transitions so recovery does not dwarf the work in tests
FAST = PowerStateModel(
    shutdown_s=0.0, boot_s=2.0, transition_power_fraction=0.8,
    gated_power_fraction=0.1,
)
RETRY = FailurePolicy.abort_and_retry(backoff_base_s=1.0, transitions=FAST)
DROP = FailurePolicy.drop(transitions=FAST)


def simulator(num_nodes=4):
    return ClusterSimulator(ClusterSpec.homogeneous(NODE, num_nodes))


def cpu_job(name, volume_mb, node=0, start=0.0):
    return Job(
        name=name,
        phases=(Phase("p", (FlowSpec(f"{name}-f", volume_mb, {cpu(node): 1.0}),)),),
        start_time_s=start,
    )


def net_job(name, volume_mb, src=0, dst=1, start=0.0):
    demands = {cpu(src): 0.1, nic_out(src): 1.0, nic_in(dst): 1.0}
    return Job(
        name=name,
        phases=(Phase("x", (FlowSpec(f"{name}-f", volume_mb, demands),)),),
        start_time_s=start,
    )


# ----------------------------------------------------------------- crashes
def test_crash_aborts_and_retries_with_backoff_and_boot():
    sim = simulator()
    healthy = sim.run([cpu_job("a", 5000.0)])
    crash = FaultSchedule(events=(NodeCrash(node=0, at_s=1.0, recover_at_s=3.0),))
    result = sim.run([cpu_job("a", 5000.0)], faults=crash, failure_policy=RETRY)
    # progress is lost: recover at 3, boot 2, backoff already elapsed ->
    # restart at ~5, full rerun
    assert result.makespan_s == pytest.approx(5.0 + healthy.makespan_s, rel=1e-6)
    assert result.retried_jobs == 1
    assert result.dropped_jobs == 0
    assert result.faults_survived == 1
    # response time includes the outage: started at 0, finished at makespan
    assert result.response_time_s("a") == pytest.approx(result.makespan_s)


def test_crash_recovery_energy_is_priced():
    sim = simulator()
    crash = FaultSchedule(events=(NodeCrash(node=0, at_s=1.0, recover_at_s=3.0),))
    result = sim.run([cpu_job("a", 5000.0)], faults=crash, failure_policy=RETRY)
    # boot_s at transition_power_fraction * peak
    expected = FAST.boot_s * FAST.transition_power_fraction * NODE.peak_power_w
    assert result.recovery_energy_j == pytest.approx(expected, rel=1e-6)


def test_crash_on_idle_node_leaves_jobs_alone():
    sim = simulator()
    healthy = sim.run([cpu_job("a", 1000.0)])
    crash = FaultSchedule(events=(NodeCrash(node=3, at_s=0.5, recover_at_s=2.0),))
    result = sim.run([cpu_job("a", 1000.0)], faults=crash, failure_policy=RETRY)
    assert result.retried_jobs == 0
    assert result.job_completion_s == healthy.job_completion_s


def test_fail_stop_crash_drops_all_owning_jobs_and_raises():
    sim = simulator()
    crash = FaultSchedule(events=(NodeCrash(node=0, at_s=1.0),))
    with pytest.raises(SimulationError, match="no job survived"):
        sim.run([cpu_job("a", 5000.0)], faults=crash, failure_policy=DROP)


def test_fail_stop_crash_spares_jobs_on_other_nodes():
    sim = simulator()
    crash = FaultSchedule(events=(NodeCrash(node=0, at_s=1.0),))
    result = sim.run(
        [cpu_job("a", 5000.0, node=0), cpu_job("b", 5000.0, node=1)],
        faults=crash,
        failure_policy=DROP,
    )
    assert result.dropped_job_names == ("a",)
    assert result.dropped_jobs == 1
    assert list(result.job_completion_s) == ["b"]


def test_arrival_during_fail_stop_outage_is_shed():
    sim = simulator()
    crash = FaultSchedule(events=(NodeCrash(node=0, at_s=1.0),))
    result = sim.run(
        [cpu_job("late", 100.0, node=0, start=5.0), cpu_job("b", 5000.0, node=1)],
        faults=crash,
        failure_policy=RETRY,
    )
    assert result.dropped_job_names == ("late",)


def test_arrival_during_recoverable_outage_waits_and_pays_latency():
    sim = simulator()
    crash = FaultSchedule(events=(NodeCrash(node=0, at_s=1.0, recover_at_s=4.0),))
    result = sim.run(
        [cpu_job("late", 1000.0, node=0, start=2.0)],
        faults=crash,
        failure_policy=RETRY,
    )
    # arrived at 2 into a dead node; runs after recovery (4) + boot (2)
    assert result.job_start_s["late"] == pytest.approx(2.0)
    assert result.job_completion_s["late"] > 6.0
    assert result.retried_jobs == 0  # held, never killed


def test_retry_exhaustion_drops_the_job():
    sim = simulator()
    # crash again the moment the job restarts, more times than max_retries
    crashes = FaultSchedule(
        events=tuple(
            NodeCrash(node=0, at_s=t, recover_at_s=t + 0.5)
            for t in (0.5, 4.0, 8.0, 12.0, 16.0, 20.0)
        )
    )
    policy = FailurePolicy.abort_and_retry(
        max_retries=2, backoff_base_s=0.1, transitions=FAST
    )
    with pytest.raises(SimulationError, match="no job survived"):
        sim.run([cpu_job("a", 3000.0)], faults=crashes, failure_policy=policy)


def test_node_index_wraps_modulo_cluster_size():
    sim = simulator(num_nodes=4)
    direct = FaultSchedule(events=(NodeCrash(node=0, at_s=1.0, recover_at_s=3.0),))
    wrapped = FaultSchedule(events=(NodeCrash(node=4, at_s=1.0, recover_at_s=3.0),))
    a = sim.run([cpu_job("a", 5000.0)], faults=direct, failure_policy=RETRY)
    b = sim.run([cpu_job("a", 5000.0)], faults=wrapped, failure_policy=RETRY)
    assert a == b


# -------------------------------------------------------------- stragglers
def test_straggler_scales_completion_time():
    sim = simulator()
    healthy = sim.run([cpu_job("a", 2000.0)])
    slow = FaultSchedule(
        events=(Straggler(node=0, at_s=0.0, slowdown=0.5, duration_s=1e6),)
    )
    result = sim.run([cpu_job("a", 2000.0)], faults=slow)
    assert result.makespan_s == pytest.approx(2.0 * healthy.makespan_s, rel=1e-6)
    assert result.faults_survived == 1
    assert result.retried_jobs == 0


def test_straggler_window_ends():
    sim = simulator()
    healthy = sim.run([cpu_job("a", 2000.0)])
    # straggle only the first half-second, then full speed
    slow = FaultSchedule(
        events=(Straggler(node=0, at_s=0.0, slowdown=0.5, duration_s=0.5),)
    )
    result = sim.run([cpu_job("a", 2000.0)], faults=slow)
    assert healthy.makespan_s < result.makespan_s < 2.0 * healthy.makespan_s


def test_overlapping_stragglers_compose_multiplicatively():
    sim = simulator()
    healthy = sim.run([cpu_job("a", 2000.0)])
    slow = FaultSchedule(
        events=(
            Straggler(node=0, at_s=0.0, slowdown=0.5, duration_s=1e6),
            Straggler(node=0, at_s=0.0, slowdown=0.5, duration_s=1e6),
        )
    )
    result = sim.run([cpu_job("a", 2000.0)], faults=slow)
    assert result.makespan_s == pytest.approx(4.0 * healthy.makespan_s, rel=1e-6)


# --------------------------------------------------------- network degrade
def test_network_degrade_scales_shuffle_time():
    sim = simulator()
    healthy = sim.run([net_job("n", 500.0)])
    degrade = FaultSchedule(
        events=(NetworkDegrade(factor=0.25, at_s=0.0, duration_s=1e6),)
    )
    result = sim.run([net_job("n", 500.0)], faults=degrade)
    assert result.makespan_s == pytest.approx(4.0 * healthy.makespan_s, rel=1e-6)


def test_network_degrade_does_not_touch_cpu_jobs():
    sim = simulator()
    healthy = sim.run([cpu_job("a", 2000.0)])
    degrade = FaultSchedule(
        events=(NetworkDegrade(factor=0.25, at_s=0.0, duration_s=1e6),)
    )
    result = sim.run([cpu_job("a", 2000.0)], faults=degrade)
    assert result.makespan_s == pytest.approx(healthy.makespan_s, rel=1e-6)


# ----------------------------------------------------------- replica cover
def test_coverage_loss_raises_named_simulation_error():
    sim = simulator()
    layout = ReplicatedLayout(num_nodes=4, num_partitions=8, replication_factor=1)
    crash = FaultSchedule(events=(NodeCrash(node=0, at_s=1.0, recover_at_s=3.0),))
    with pytest.raises(SimulationError, match="replica coverage lost"):
        sim.run(
            [cpu_job("a", 5000.0)],
            faults=crash,
            failure_policy=RETRY,
            layout=layout,
        )


def test_single_crash_survives_with_replication():
    sim = simulator()
    layout = ReplicatedLayout(num_nodes=4, num_partitions=8, replication_factor=2)
    crash = FaultSchedule(events=(NodeCrash(node=0, at_s=1.0, recover_at_s=3.0),))
    result = sim.run(
        [cpu_job("a", 5000.0)], faults=crash, failure_policy=RETRY, layout=layout
    )
    assert result.faults_survived == 1
    assert list(result.job_completion_s) == ["a"]


def test_adjacent_double_crash_defeats_r2_chained_declustering():
    sim = simulator()
    layout = ReplicatedLayout(num_nodes=4, num_partitions=8, replication_factor=2)
    crash = FaultSchedule(
        events=(
            NodeCrash(node=0, at_s=1.0, recover_at_s=10.0),
            NodeCrash(node=1, at_s=2.0, recover_at_s=10.0),
        )
    )
    with pytest.raises(SimulationError, match="replica coverage lost"):
        sim.run(
            [cpu_job("a", 20000.0)],
            faults=crash,
            failure_policy=RETRY,
            layout=layout,
        )


# ------------------------------------------------------------ empty parity
def test_empty_schedule_is_bit_identical_to_no_faults():
    sim = simulator()
    jobs = [cpu_job("a", 1000.0), cpu_job("b", 500.0, node=1, start=0.3)]
    assert sim.run(jobs, faults=FaultSchedule()) == sim.run(jobs)
    assert sim.run(jobs, faults=None) == sim.run(jobs)


@settings(max_examples=25, deadline=None)
@given(
    volumes=st.lists(st.floats(1.0, 500.0), min_size=1, max_size=4),
    starts=st.lists(st.floats(0.0, 2.0), min_size=4, max_size=4),
)
def test_empty_schedule_parity_property(volumes, starts):
    """An empty FaultSchedule never changes any run, whatever the jobs."""
    sim = simulator()
    jobs = [
        cpu_job(f"j{i}", volume, node=i % 4, start=starts[i % 4])
        for i, volume in enumerate(volumes)
    ]
    assert sim.run(jobs, faults=FaultSchedule()) == sim.run(jobs)


def test_faulted_runs_are_deterministic():
    sim = simulator()
    crash = FaultSchedule(
        events=(
            NodeCrash(node=0, at_s=0.5, recover_at_s=2.0),
            Straggler(node=1, at_s=0.2, slowdown=0.5, duration_s=3.0),
            NetworkDegrade(factor=0.5, at_s=0.1, duration_s=5.0),
        )
    )
    jobs = [cpu_job("a", 2000.0), net_job("n", 200.0, src=1, dst=2, start=0.1)]
    policy = FailurePolicy.abort_and_retry(jitter=0.3, seed=7, transitions=FAST)
    first = sim.run(jobs, faults=crash, failure_policy=policy)
    second = sim.run(jobs, faults=crash, failure_policy=policy)
    assert first == second
