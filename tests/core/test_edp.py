"""EDP metrics and normalized trade-off points."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.edp import (
    NormalizedPoint,
    constant_edp_energy,
    edp,
    normalized_point,
    normalized_series,
)
from repro.errors import ModelError


def test_edp_product():
    assert edp(1000.0, 10.0) == 10_000.0


def test_edp_rejects_negative():
    with pytest.raises(ModelError):
        edp(-1.0, 1.0)


def test_normalized_point_against_reference():
    p = normalized_point("8N", time_s=20.0, energy_j=500.0,
                         reference_time_s=10.0, reference_energy_j=1000.0)
    assert p.performance == pytest.approx(0.5)
    assert p.energy == pytest.approx(0.5)
    assert p.edp_ratio == pytest.approx(1.0)


def test_below_edp_classification():
    below = NormalizedPoint("x", performance=0.8, energy=0.5)
    above = NormalizedPoint("y", performance=0.5, energy=0.8)
    on = NormalizedPoint("z", performance=0.7, energy=0.7)
    assert below.below_edp_curve
    assert not above.below_edp_curve
    assert not on.below_edp_curve
    assert below.edp_margin() == pytest.approx(0.3)
    assert above.edp_margin() == pytest.approx(-0.3)


def test_normalized_series_default_reference_is_first():
    series = normalized_series(
        [("16N", 10.0, 1000.0), ("8N", 20.0, 600.0)]
    )
    assert series[0].performance == 1.0
    assert series[0].energy == 1.0
    assert series[1].performance == pytest.approx(0.5)
    assert series[1].energy == pytest.approx(0.6)


def test_normalized_series_named_reference():
    series = normalized_series(
        [("8N", 20.0, 600.0), ("16N", 10.0, 1000.0)], reference_label="16N"
    )
    assert series[0].performance == pytest.approx(0.5)


def test_normalized_series_unknown_reference():
    with pytest.raises(ModelError):
        normalized_series([("a", 1.0, 1.0)], reference_label="b")


def test_normalized_series_empty():
    with pytest.raises(ModelError):
        normalized_series([])


def test_constant_edp_curve_is_identity():
    assert constant_edp_energy(0.7) == pytest.approx(0.7)
    with pytest.raises(ModelError):
        constant_edp_energy(0.0)


def test_invalid_point():
    with pytest.raises(ModelError):
        NormalizedPoint("bad", performance=0.0, energy=0.5)


@given(st.floats(0.05, 1.0), st.floats(0.0, 2.0))
def test_property_edp_ratio_sign(perf, energy):
    point = NormalizedPoint("p", performance=perf, energy=energy)
    assert point.below_edp_curve == (energy / perf < 1.0)


@given(
    st.lists(
        st.tuples(st.floats(0.1, 100.0), st.floats(1.0, 1e6)),
        min_size=1,
        max_size=10,
    )
)
def test_property_reference_always_unity(measurements):
    points = [(f"p{i}", t, e) for i, (t, e) in enumerate(measurements)]
    series = normalized_series(points)
    assert series[0].performance == pytest.approx(1.0)
    assert series[0].energy == pytest.approx(1.0)
