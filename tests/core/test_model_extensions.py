"""Model extensions: per-type I/O bandwidths and property-based invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.model import ModelParameters, PStoreModel
from repro.errors import ModelError
from repro.hardware.power import PowerLawModel
from repro.pstore.plans import ExecutionMode
from repro.workloads.queries import JoinWorkloadSpec, section54_join


def params(nb=4, nw=4, **overrides):
    base = dict(
        num_beefy=nb,
        num_wimpy=nw,
        beefy_memory_mb=47_000.0,
        wimpy_memory_mb=7_000.0,
        disk_mbps=1200.0,
        network_mbps=100.0,
        beefy_cpu_mbps=5037.0,
        wimpy_cpu_mbps=1129.0,
        beefy_base_util=0.25,
        wimpy_base_util=0.13,
        beefy_power=PowerLawModel(130.03, 0.2369),
        wimpy_power=PowerLawModel(10.994, 0.2875),
    )
    base.update(overrides)
    return ModelParameters(**base)


class TestPerTypeIO:
    """'We can easily extend our model to account for separate Wimpy and
    Beefy I/O bandwidths' — the extension, exercised."""

    def test_defaults_preserve_uniformity(self):
        p = params()
        assert p.effective_wimpy_disk_mbps == p.disk_mbps
        assert p.effective_wimpy_network_mbps == p.network_mbps

    def test_uniform_matches_paper_behaviour(self):
        q = section54_join(0.01, 0.10)
        uniform = PStoreModel(params()).predict(q)
        explicit = PStoreModel(
            params(wimpy_disk_mbps=1200.0, wimpy_network_mbps=100.0)
        ).predict(q)
        assert uniform.time_s == pytest.approx(explicit.time_s)
        assert uniform.energy_j == pytest.approx(explicit.energy_j)

    def test_slower_wimpy_disk_slows_disk_bound_phases(self):
        q = section54_join(0.01, 0.01)  # disk bound
        uniform = PStoreModel(params()).predict(q)
        slow = PStoreModel(params(wimpy_disk_mbps=300.0)).predict(q)
        assert slow.time_s > uniform.time_s
        # the barrier waits for the slow Wimpy scans of the 87.5 GB
        # per-node partition: 700000/8 MB at 300 MB/s
        assert slow.build.time_s == pytest.approx(700_000.0 / 8 / 300.0)

    def test_slower_wimpy_nic_binds_network_phases(self):
        # generous memory keeps the 10% build homogeneous-feasible
        q = section54_join(0.10, 0.10)  # network bound homogeneous
        roomy = dict(wimpy_memory_mb=20_000.0)
        uniform = PStoreModel(params(**roomy)).predict(
            q, mode=ExecutionMode.HOMOGENEOUS
        )
        slow = PStoreModel(params(wimpy_network_mbps=50.0, **roomy)).predict(
            q, mode=ExecutionMode.HOMOGENEOUS
        )
        assert slow.time_s > uniform.time_s

    def test_hetero_supply_uses_wimpy_nic(self):
        q = section54_join(0.10, 0.01)
        p = params(nb=2, nw=6, wimpy_network_mbps=10.0)
        prediction = PStoreModel(p).predict(q)
        # probe supply per wimpy is capped by its 10 MB/s NIC
        assert prediction.probe.time_s >= (q.qualifying_probe_mb / 8) / 10.0 * 0.99

    def test_validation(self):
        with pytest.raises(ModelError):
            params(wimpy_disk_mbps=0.0)
        with pytest.raises(ModelError):
            params(wimpy_network_mbps=-5.0)


class TestModelInvariants:
    @given(st.floats(0.01, 0.99), st.floats(0.01, 0.99))
    def test_time_and_energy_positive(self, sb, sp):
        q = JoinWorkloadSpec(
            name="prop",
            build_volume_mb=10_000.0,
            probe_volume_mb=40_000.0,
            build_selectivity=sb,
            probe_selectivity=sp,
        )
        prediction = PStoreModel(params(nb=8, nw=0)).predict(
            q, mode=ExecutionMode.HOMOGENEOUS
        )
        assert prediction.time_s > 0
        assert prediction.energy_j > 0

    @given(st.integers(2, 16))
    def test_homogeneous_time_weakly_decreases_with_nodes(self, n):
        q = section54_join(0.01, 0.01)
        small = PStoreModel(params(nb=n, nw=0)).predict(q, mode=ExecutionMode.HOMOGENEOUS)
        big = PStoreModel(params(nb=n + 2, nw=0)).predict(
            q, mode=ExecutionMode.HOMOGENEOUS
        )
        assert big.time_s <= small.time_s * (1 + 1e-9)

    @given(st.floats(0.02, 0.99))
    def test_selectivity_scales_disk_bound_qualifying_linearly(self, sel):
        """Disk-bound phases take the same time regardless of selectivity
        (the scan reads everything); energy follows time."""
        q = section54_join(0.01, 0.01).with_selectivities(build=min(sel, 0.066))
        # keep I*S below the network rate so the phase stays disk-bound
        prediction = PStoreModel(params(nb=8, nw=0)).predict(
            q, mode=ExecutionMode.HOMOGENEOUS
        )
        expected = 700_000.0 / (8 * 1200.0)
        assert prediction.build.time_s == pytest.approx(expected)

    @given(st.integers(0, 6))
    def test_fig10a_energy_monotone_in_wimpy_count(self, nw):
        """In the homogeneous, bottleneck-masked regime, every Beefy->Wimpy
        swap strictly reduces energy."""
        q = section54_join(0.01, 0.10)
        fewer = PStoreModel(params(nb=8 - nw, nw=nw)).predict(q)
        more = PStoreModel(params(nb=8 - nw - 1, nw=nw + 1)).predict(q)
        assert more.energy_j < fewer.energy_j

    @given(st.floats(0.3, 1.0))
    def test_pipeline_cost_never_speeds_things_up(self, cost_scale):
        q = section54_join(0.05, 0.05)
        base = PStoreModel(params(nb=8, nw=0), warm_cache=True, pipeline_cpu_cost=1.0)
        heavy = PStoreModel(
            params(nb=8, nw=0), warm_cache=True, pipeline_cpu_cost=1.0 / cost_scale
        )
        assert heavy.predict(q, mode=ExecutionMode.HOMOGENEOUS).time_s >= (
            base.predict(q, mode=ExecutionMode.HOMOGENEOUS).time_s * (1 - 1e-9)
        )
