"""Model-vs-observation comparison (Figure 8/9 methodology)."""

import pytest

from repro.core.validation import ValidationRow, compare_normalized, normalize_by
from repro.errors import ModelError


def test_normalize_by():
    out = normalize_by({"a": 2.0, "b": 4.0}, reference="a")
    assert out == {"a": 1.0, "b": 2.0}


def test_normalize_by_missing_reference():
    with pytest.raises(ModelError):
        normalize_by({"a": 1.0}, reference="z")


def test_normalize_by_zero_reference():
    with pytest.raises(ModelError):
        normalize_by({"a": 0.0}, reference="a")


def test_compare_normalized_perfect_match():
    report = compare_normalized(
        "rt",
        observed={"L1": 5.0, "L100": 50.0},
        modeled={"L1": 10.0, "L100": 100.0},  # same ratios
        reference="L100",
    )
    assert report.max_error == pytest.approx(0.0)
    assert report.within(0.05)


def test_compare_normalized_error_metric():
    report = compare_normalized(
        "rt",
        observed={"L1": 4.0, "L100": 10.0},  # 0.4
        modeled={"L1": 5.0, "L100": 10.0},  # 0.5
        reference="L100",
    )
    assert report.max_error == pytest.approx(0.1)
    assert not report.within(0.05)
    assert report.within(0.10)


def test_compare_normalized_label_mismatch():
    with pytest.raises(ModelError):
        compare_normalized("rt", {"a": 1.0}, {"b": 1.0}, reference="a")


def test_row_ordering():
    report = compare_normalized(
        "e",
        observed={"x": 1.0, "y": 2.0, "ref": 4.0},
        modeled={"x": 1.0, "y": 2.0, "ref": 4.0},
        reference="ref",
        order=["ref", "y", "x"],
    )
    assert [row.label for row in report.rows] == ["ref", "y", "x"]


def test_report_str():
    report = compare_normalized(
        "energy", {"a": 1.0, "b": 2.0}, {"a": 1.0, "b": 2.0}, reference="a"
    )
    text = str(report)
    assert "energy" in text
    assert "max error" in text


def test_validation_row_error():
    row = ValidationRow(label="x", observed=0.5, modeled=0.45)
    assert row.error == pytest.approx(0.05)
