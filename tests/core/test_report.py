"""The one-call design report."""

import pytest

from repro.core.principles import Principle
from repro.core.report import design_report
from repro.errors import ReproError
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.workloads.queries import section54_join


@pytest.fixture(scope="module")
def bottlenecked_report():
    return design_report(
        section54_join(0.10, 0.02),
        CLUSTER_V_NODE,
        WIMPY_LAPTOP_B,
        cluster_size=8,
        target_performance=0.6,
    )


def test_report_sections_present(bottlenecked_report):
    text = bottlenecked_report.text
    for heading in (
        "DESIGN REPORT",
        "execution plan",
        "bottleneck profile",
        "homogeneous size sweep",
        "Beefy/Wimpy mixes",
        "recommendation",
        "network-trend check",
    ):
        assert heading in text, heading
    assert str(bottlenecked_report) == text


def test_bottlenecked_workload_recommends_heterogeneous(bottlenecked_report):
    rec = bottlenecked_report.recommendation
    assert rec.principle is Principle.HETEROGENEOUS_SUBSTITUTION
    assert rec.design.num_wimpy > 0
    assert rec.normalized_performance >= 0.6


def test_bottleneck_profile_consistent(bottlenecked_report):
    shares = bottlenecked_report.bottlenecks
    assert sum(shares.values()) == pytest.approx(1.0)
    # ORDERS 10% build shuffles hard; LINEITEM 2% probe is disk bound
    assert shares["disk"] > 0.5


def test_scalable_workload_recommends_full_cluster():
    report = design_report(
        section54_join(0.01, 0.01),
        CLUSTER_V_NODE,
        WIMPY_LAPTOP_B,
        cluster_size=8,
    )
    assert report.recommendation.principle is Principle.SCALABLE_USE_ALL_NODES
    assert report.recommendation.design.cluster.num_nodes == 8


def test_sensitivity_included(bottlenecked_report):
    assert len(bottlenecked_report.network_sensitivity) == 2
    assert bottlenecked_report.network_sensitivity[0].parameter == "network_mbps"


def test_validation():
    with pytest.raises(ReproError):
        design_report(
            section54_join(0.10, 0.02), CLUSTER_V_NODE, WIMPY_LAPTOP_B, cluster_size=1
        )
