"""The Section 6 design-principles advisor (Figure 12)."""

import pytest

from repro.core.design_space import DesignPoint, TradeoffCurve
from repro.core.principles import (
    Principle,
    classify_scalability,
    recommend_design,
)
from repro.errors import ModelError
from repro.hardware.cluster import ClusterSpec
from repro.hardware.presets import CLUSTER_V_NODE


def point(label, time_s, energy_j):
    return DesignPoint(
        label=label,
        cluster=ClusterSpec.homogeneous(CLUSTER_V_NODE, 2, name=label),
        time_s=time_s,
        energy_j=energy_j,
    )


def scalable_curve():
    """Figure 12(a): linear speedup, flat energy."""
    return TradeoffCurve(
        [point("8N", 10.0, 800.0), point("6N", 13.3, 798.0),
         point("4N", 20.0, 802.0), point("2N", 40.0, 800.0)]
    )


def bottlenecked_curve():
    """Figure 12(b): sub-linear speedup, energy drops with size."""
    return TradeoffCurve(
        [point("8N", 10.0, 1000.0), point("6N", 12.0, 880.0),
         point("4N", 16.0, 760.0), point("2N", 28.0, 640.0)]
    )


def heterogeneous_curve():
    """Figure 12(c): mixes that go below the EDP curve."""
    return TradeoffCurve(
        [point("8B,0W", 10.0, 1000.0), point("6B,2W", 11.5, 750.0),
         point("4B,4W", 13.5, 560.0), point("2B,6W", 16.0, 420.0)]
    )


def test_classify_scalable():
    assert classify_scalability(scalable_curve())
    assert not classify_scalability(bottlenecked_curve())


def test_principle_a_scalable_uses_all_nodes():
    rec = recommend_design(scalable_curve(), target_performance=0.6)
    assert rec.principle is Principle.SCALABLE_USE_ALL_NODES
    assert rec.design.label == "8N"
    assert rec.normalized_performance == pytest.approx(1.0)


def test_principle_b_bottlenecked_downsizes():
    """Figure 12(b): with a 0.6 target, 4N (perf 0.625) is the pick."""
    rec = recommend_design(bottlenecked_curve(), target_performance=0.6)
    assert rec.principle is Principle.BOTTLENECKED_DOWNSIZE
    assert rec.design.label == "4N"
    assert rec.normalized_performance >= 0.6


def test_principle_c_heterogeneous_wins():
    """Figure 12(c): the 2B,6W mix beats the best homogeneous design."""
    rec = recommend_design(
        bottlenecked_curve(),
        target_performance=0.6,
        heterogeneous_curve=heterogeneous_curve(),
    )
    assert rec.principle is Principle.HETEROGENEOUS_SUBSTITUTION
    assert rec.design.label == "2B,6W"
    assert rec.normalized_energy < 0.76  # beats 4N's 0.76
    assert "less" in rec.rationale


def test_heterogeneous_ignored_when_worse():
    worse_hetero = TradeoffCurve(
        [point("8B,0W", 10.0, 1000.0), point("2B,6W", 15.0, 950.0)]
    )
    rec = recommend_design(
        bottlenecked_curve(), target_performance=0.6, heterogeneous_curve=worse_hetero
    )
    assert rec.principle is Principle.BOTTLENECKED_DOWNSIZE


def test_heterogeneous_ignored_when_misses_target():
    slow_hetero = TradeoffCurve(
        [point("8B,0W", 10.0, 1000.0), point("2B,6W", 100.0, 100.0)]
    )
    rec = recommend_design(
        bottlenecked_curve(), target_performance=0.6, heterogeneous_curve=slow_hetero
    )
    assert rec.principle is Principle.BOTTLENECKED_DOWNSIZE


def test_invalid_target():
    with pytest.raises(ModelError):
        recommend_design(scalable_curve(), target_performance=0.0)
    with pytest.raises(ModelError):
        recommend_design(scalable_curve(), target_performance=1.5)
