"""Hardware sensitivity sweeps."""

import pytest

from repro.core.sensitivity import PARAMETERS, sweep_parameter
from repro.errors import ModelError
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.workloads.queries import section54_join


def sweep(parameter, values, query=None, target=0.6):
    return sweep_parameter(
        query or section54_join(0.10, 0.10),
        CLUSTER_V_NODE,
        WIMPY_LAPTOP_B,
        parameter,
        values,
        target_performance=target,
    )


class TestValidation:
    def test_unknown_parameter(self):
        with pytest.raises(ModelError, match="unknown parameter"):
            sweep("magic", [1.0])

    def test_empty_values(self):
        with pytest.raises(ModelError):
            sweep("network_mbps", [])

    def test_nonpositive_value(self):
        with pytest.raises(ModelError):
            sweep("network_mbps", [0.0])

    def test_registry_contents(self):
        assert set(PARAMETERS) == {
            "network_mbps",
            "disk_mbps",
            "wimpy_cpu_mbps",
            "wimpy_memory_mb",
        }


class TestNetworkTrend:
    def test_fast_network_unlocks_wimpy_substitution(self):
        """At the paper's 100 MB/s the O10/L10 join punishes Wimpy-heavy
        designs (Figure 10b); with a 10x faster interconnect the ingest
        bottleneck vanishes and the Wimpy-heavy design wins."""
        points = sweep("network_mbps", [100.0, 1000.0])
        slow, fast = points
        assert slow.best_label in ("8B,0W", "7B,1W")
        assert fast.best_label == "2B,6W"
        assert fast.best_energy < 0.6
        assert fast.best_performance >= 0.6

    def test_points_record_parameter(self):
        points = sweep("network_mbps", [100.0])
        assert points[0].parameter == "network_mbps"
        assert points[0].value == 100.0
        assert "network_mbps" in str(points[0])


class TestMemoryTrend:
    def test_bigger_wimpy_memory_enables_homogeneous_execution(self):
        """Give the Wimpy nodes server-class memory and the O10 join goes
        homogeneous, making the all-Wimpy-ish designs feasible."""
        query = section54_join(0.10, 0.01)
        small = sweep("wimpy_memory_mb", [7_000.0], query=query)[0]
        big = sweep("wimpy_memory_mb", [47_000.0], query=query)[0]
        assert len(big.curve) > len(small.curve)  # more feasible designs
        assert big.best_energy <= small.best_energy


class TestCpuTrend:
    def test_wimpy_cpu_hardly_matters_when_network_bound(self):
        """Figure 10(a)'s masking effect as a sensitivity statement: a
        3.5x faster Wimpy CPU changes neither the chosen design nor its
        performance (only its utilization, hence a modest energy delta)."""
        query = section54_join(0.01, 0.10)
        slow, fast = sweep("wimpy_cpu_mbps", [1129.0, 4000.0], query=query, target=0.9)
        assert slow.best_label == fast.best_label == "0B,8W"
        assert slow.best_performance == pytest.approx(fast.best_performance, abs=0.05)
        assert slow.best_energy < 0.2 and fast.best_energy < 0.2


class TestDiskTrend:
    def test_slower_disks_still_pick_a_design(self):
        points = sweep("disk_mbps", [300.0, 1200.0])
        assert all(p.best_performance >= 0.6 for p in points)
