"""Analytic broadcast-join prediction vs the simulator."""

import pytest

from repro.core.model import ModelParameters, PStoreModel
from repro.errors import ModelError
from repro.hardware.cluster import ClusterSpec
from repro.hardware.presets import CLUSTER_V_NODE
from repro.pstore.engine import PStore, PStoreConfig
from repro.workloads.queries import JoinMethod, q3_join


def model(n=8, warm=True):
    return PStoreModel(
        ModelParameters.from_specs(CLUSTER_V_NODE, n), warm_cache=warm
    )


def test_build_phase_shows_the_algorithmic_bottleneck():
    """Build time is nearly size-independent: (N-1)/N of the table per NIC."""
    q = q3_join(1000, 0.01, 0.05, method=JoinMethod.BROADCAST)
    t8 = model(8).predict_broadcast(q).build.time_s
    t16 = model(16).predict_broadcast(q).build.time_s
    # paper: "(15m/16) vs (31m/32) ... changes by a small amount"
    assert t16 / t8 == pytest.approx((15 / 16) / (7 / 8), rel=1e-6)
    assert t16 > 0.9 * t8


def test_probe_phase_scales_linearly():
    q = q3_join(1000, 0.01, 0.05, method=JoinMethod.BROADCAST)
    p8 = model(8).predict_broadcast(q).probe.time_s
    p16 = model(16).predict_broadcast(q).probe.time_s
    assert p16 == pytest.approx(p8 / 2)


def test_memory_feasibility_enforced():
    # 60 GB qualifying table exceeds the 47 GB node memory
    q = q3_join(2000, 1.0, 0.05, method=JoinMethod.BROADCAST)
    with pytest.raises(ModelError, match="broadcast"):
        model(8).predict_broadcast(q)


def test_matches_simulator_without_switch_contention():
    """On an ideal switch the analytic broadcast and the fluid simulator
    agree closely (the Figure 4 bench then adds contention on top)."""
    q = q3_join(1000, 0.01, 0.05, method=JoinMethod.BROADCAST)
    for n in (4, 8):
        engine = PStore(
            ClusterSpec.homogeneous(CLUSTER_V_NODE, n),
            config=PStoreConfig(warm_cache=True),
            record_intervals=False,
        )
        simulated = engine.simulate(q)
        predicted = model(n).predict_broadcast(q)
        assert simulated.makespan_s == pytest.approx(predicted.time_s, rel=0.10)
        assert simulated.energy_j == pytest.approx(predicted.energy_j, rel=0.10)


def test_broadcast_edp_shape_from_the_model_alone():
    """The Figure 4 conclusion derived purely analytically: the 8->4 node
    trade sits near the constant-EDP line."""
    q = q3_join(1000, 0.01, 0.05, method=JoinMethod.BROADCAST)
    p8 = model(8).predict_broadcast(q)
    p4 = model(4).predict_broadcast(q)
    perf_ratio = p8.time_s / p4.time_s
    energy_ratio = p4.energy_j / p8.energy_j
    assert 0.6 <= perf_ratio <= 0.8
    assert abs(energy_ratio - perf_ratio) <= 0.10  # on/near the EDP line
