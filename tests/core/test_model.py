"""The Section 5.3 analytical model."""

import pytest

from repro.errors import ModelError
from repro.core.model import (
    TABLE3,
    HashJoinQuery,
    ModelConstants,
    ModelParameters,
    PStoreModel,
)
from repro.hardware.cluster import ClusterSpec
from repro.hardware.power import PowerLawModel
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.pstore.plans import ExecutionMode
from repro.workloads.queries import JoinWorkloadSpec, section54_join


def params(nb=8, nw=0, **overrides):
    base = dict(
        num_beefy=nb,
        num_wimpy=nw,
        beefy_memory_mb=47_000.0,
        wimpy_memory_mb=7_000.0,
        disk_mbps=1200.0,
        network_mbps=100.0,
        beefy_cpu_mbps=5037.0,
        wimpy_cpu_mbps=1129.0,
        beefy_base_util=0.25,
        wimpy_base_util=0.13,
        beefy_power=PowerLawModel(130.03, 0.2369),
        wimpy_power=PowerLawModel(10.994, 0.2875),
    )
    base.update(overrides)
    return ModelParameters(**base)


def query(sb=0.10, sp=0.01):
    return section54_join(sb, sp)


class TestTable3Constants:
    def test_published_values(self):
        constants = ModelConstants()
        assert constants.CB == 5037.0
        assert constants.CW == 1129.0
        assert constants.GB == 0.25
        assert constants.GW == 0.13
        assert constants.beefy_power_model().power(0.01) == pytest.approx(130.03)
        assert constants.wimpy_power_model().power(0.01) == pytest.approx(10.994)

    def test_module_singleton(self):
        assert TABLE3 == ModelConstants()


class TestParameters:
    def test_from_specs_uses_beefy_io_uniformly(self):
        p = ModelParameters.from_specs(CLUSTER_V_NODE, 0, WIMPY_LAPTOP_B, 8)
        assert p.disk_mbps == CLUSTER_V_NODE.disk_bandwidth_mbps
        assert p.network_mbps == CLUSTER_V_NODE.nic_bandwidth_mbps

    def test_from_cluster(self):
        cluster = ClusterSpec.beefy_wimpy(CLUSTER_V_NODE, 3, WIMPY_LAPTOP_B, 5)
        p = ModelParameters.from_cluster(cluster)
        assert (p.num_beefy, p.num_wimpy) == (3, 5)

    def test_validation(self):
        with pytest.raises(ModelError):
            params(nb=0, nw=0)
        with pytest.raises(ModelError):
            params(disk_mbps=0.0)
        with pytest.raises(ModelError):
            ModelParameters(**{**params().__dict__, "num_beefy": -1})


class TestHPredicate:
    def test_h_true_small_hash_table(self):
        """Figure 10(a): 875 MB share fits 7 GB Wimpy memory."""
        model = PStoreModel(params(nb=4, nw=4))
        assert model.hash_table_fits_everywhere(query(sb=0.01))

    def test_h_false_large_hash_table(self):
        """Figure 10(b): 8.75 GB share exceeds Wimpy memory."""
        model = PStoreModel(params(nb=4, nw=4))
        assert not model.hash_table_fits_everywhere(query(sb=0.10))

    def test_resolve_mode_auto(self):
        model = PStoreModel(params(nb=4, nw=4))
        assert model.resolve_mode(query(sb=0.01)) is ExecutionMode.HOMOGENEOUS
        assert model.resolve_mode(query(sb=0.10)) is ExecutionMode.HETEROGENEOUS

    def test_forced_homogeneous_infeasible(self):
        model = PStoreModel(params(nb=4, nw=4))
        with pytest.raises(ModelError, match="forced"):
            model.predict(query(sb=0.10), mode=ExecutionMode.HOMOGENEOUS)

    def test_heterogeneous_infeasible_on_beefy_memory(self):
        model = PStoreModel(params(nb=1, nw=7))
        with pytest.raises(ModelError, match="Beefy"):
            model.predict(query(sb=0.10))

    def test_all_wimpy_infeasible(self):
        model = PStoreModel(params(nb=0, nw=8))
        with pytest.raises(ModelError, match="2-pass"):
            model.predict(query(sb=0.10))


class TestHomogeneousEquations:
    """Closed-form checks of the printed equations."""

    def test_disk_bound_phase(self):
        """I*S < L: R = I*S, U = I, T = Vol*S/(N*I*S) = Vol/(N*I)."""
        model = PStoreModel(params(nb=8))
        p = model.predict(query(sb=0.01, sp=0.01))
        # build: 700 GB over 8 nodes at I = 1200 MB/s
        assert p.build.time_s == pytest.approx(700_000.0 / (8 * 1200.0))
        assert p.build.bottleneck == "disk"
        # U = I -> util = GB + I/CB
        assert p.build.beefy_utilization == pytest.approx(0.25 + 1200.0 / 5037.0)

    def test_network_bound_phase(self):
        """I*S >= L: R = N*L/(N-1), U = R/S."""
        model = PStoreModel(params(nb=8))
        p = model.predict(query(sb=0.10, sp=0.10), mode=ExecutionMode.HOMOGENEOUS)
        rate = 8 * 100.0 / 7  # qualifying MB/s per node
        assert p.build.time_s == pytest.approx(70_000.0 / (8 * rate))
        assert p.build.bottleneck == "network"
        assert p.build.beefy_utilization == pytest.approx(
            0.25 + (rate / 0.10) / 5037.0
        )

    def test_energy_formula(self):
        model = PStoreModel(params(nb=8))
        p = model.predict(query(sb=0.01, sp=0.01))
        power = PowerLawModel(130.03, 0.2369).power(p.build.beefy_utilization)
        assert p.build.energy_j == pytest.approx(p.build.time_s * 8 * power)

    def test_mixed_cluster_wimpy_clamps_at_full_utilization(self):
        model = PStoreModel(params(nb=4, nw=4))
        p = model.predict(query(sb=0.01, sp=0.10))
        # probe network-bound: U = (N L/(N-1))/S = 1142.9 > CW -> clamp
        assert p.probe.wimpy_utilization == 1.0

    def test_totals_are_sums(self):
        model = PStoreModel(params(nb=8))
        p = model.predict(query())
        assert p.time_s == pytest.approx(p.build.time_s + p.probe.time_s)
        assert p.energy_j == pytest.approx(p.build.energy_j + p.probe.energy_j)
        assert p.performance == pytest.approx(1.0 / p.time_s)
        assert p.edp == pytest.approx(p.energy_j * p.time_s)

    def test_single_node_is_scan_bound(self):
        """n == 1: no exchange, so the network can never be the bottleneck
        even at selectivities where I*S >= L."""
        model = PStoreModel(params(nb=1))
        small = JoinWorkloadSpec(
            name="single-node",
            build_volume_mb=1000.0,
            probe_volume_mb=4000.0,
            build_selectivity=0.5,
            probe_selectivity=0.5,
        )
        p = model.predict(small, mode=ExecutionMode.HOMOGENEOUS)
        assert p.build.bottleneck == "disk"
        assert p.build.time_s == pytest.approx(1000.0 / 1200.0)


class TestHeterogeneousModel:
    def test_ingest_bound_build(self):
        """Figure 1(b)'s build phase: Beefy inbound NICs gate it."""
        model = PStoreModel(params(nb=2, nw=6))
        p = model.predict(query(sb=0.10, sp=0.01))
        ingest = 2 * 100.0 * 8 / 7
        assert p.build.time_s == pytest.approx(70_000.0 / ingest)
        assert p.build.bottleneck == "ingest"

    def test_supply_bound_probe(self):
        """At 1% probe selectivity sources cannot saturate Beefy NICs."""
        model = PStoreModel(params(nb=2, nw=6))
        p = model.predict(query(sb=0.10, sp=0.01))
        assert p.probe.bottleneck in ("disk", "cpu")
        # wimpy supply = min(min(1200, 1129)*0.01, 100) = 11.29 MB/s
        assert p.probe.time_s == pytest.approx((28_000.0 / 8) / 11.29, rel=1e-3)

    def test_knee_position_matches_supply_ingest_balance(self):
        """Figure 11: the knee sits where supply == ingest capacity."""
        # probe S = 0.06: supply = 8*72 = 576; ingest = NB * 114.3
        # -> balance at NB ~= 5
        for nb, expected in ((7, "disk"), (3, "ingest")):
            model = PStoreModel(params(nb=nb, nw=8 - nb))
            p = model.predict(query(sb=0.10, sp=0.06))
            assert p.probe.bottleneck == expected, nb

    def test_energy_decreases_with_wimpy_substitution_at_low_selectivity(self):
        """Figure 1(b): replacing Beefy with Wimpy nodes saves energy."""
        energies = []
        for nb in (8, 5, 2):
            model = PStoreModel(params(nb=nb, nw=8 - nb))
            mode = None if nb < 8 else ExecutionMode.HOMOGENEOUS
            energies.append(model.predict(query(sb=0.10, sp=0.01), mode=mode).energy_j)
        assert energies[0] > energies[1] > energies[2]


class TestHashJoinQueryFactory:
    def test_tpch_factory_volumes(self):
        q = HashJoinQuery.tpch_orders_lineitem(400, 0.01, 0.5)
        assert q.build_volume_mb == pytest.approx(12_000.0)
        assert q.probe_volume_mb == pytest.approx(48_000.0)
        assert isinstance(q, JoinWorkloadSpec)

    def test_pipeline_cost_validation(self):
        with pytest.raises(ModelError):
            PStoreModel(params(), pipeline_cpu_cost=0.0)

    def test_warm_cache_uses_cpu_limits(self):
        warm = PStoreModel(params(nb=8), warm_cache=True)
        p = warm.predict(query(sb=0.001, sp=0.001), mode=ExecutionMode.HOMOGENEOUS)
        # scan at CB: 700 GB over 8 nodes at 5037 MB/s
        assert p.build.time_s == pytest.approx(700_000.0 / (8 * 5037.0))
        assert p.build.bottleneck == "cpu"
