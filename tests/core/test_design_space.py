"""Design-space exploration: mixes, curves, knees, best designs."""

import pytest

from repro.core.design_space import DesignPoint, DesignSpaceExplorer, TradeoffCurve
from repro.errors import ModelError
from repro.hardware.cluster import ClusterSpec
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.workloads.queries import section54_join


@pytest.fixture(scope="module")
def explorer():
    return DesignSpaceExplorer(CLUSTER_V_NODE, WIMPY_LAPTOP_B, cluster_size=8)


def make_point(label, time_s, energy_j):
    return DesignPoint(
        label=label,
        cluster=ClusterSpec.homogeneous(CLUSTER_V_NODE, 2, name=label),
        time_s=time_s,
        energy_j=energy_j,
    )


class TestExplorer:
    def test_mixes_enumerate_full_axis(self, explorer):
        mixes = explorer.mixes()
        assert len(mixes) == 9
        assert mixes[0].name == "8B,0W"
        assert mixes[-1].name == "0B,8W"

    def test_sweep_skips_infeasible_designs(self, explorer):
        """Figure 10(b)/11: fewer than 2 Beefy nodes cannot hold the table."""
        curve = explorer.sweep(section54_join(0.10, 0.10))
        labels = [p.label for p in curve]
        assert "1B,7W" not in labels
        assert "0B,8W" not in labels
        assert labels[0] == "8B,0W"
        assert labels[-1] == "2B,6W"

    def test_sweep_keeps_all_designs_when_feasible(self, explorer):
        curve = explorer.sweep(section54_join(0.01, 0.10))
        assert len(curve) == 9

    def test_evaluate_attaches_prediction(self, explorer):
        point = explorer.evaluate(explorer.mixes()[0], section54_join())
        assert point.prediction is not None
        assert point.time_s == pytest.approx(point.prediction.time_s)

    def test_custom_evaluator(self):
        explorer = DesignSpaceExplorer(
            CLUSTER_V_NODE,
            WIMPY_LAPTOP_B,
            4,
            evaluator=lambda cluster, q: (float(cluster.num_beefy), 100.0),
        )
        curve = explorer.sweep(section54_join())
        assert curve.points[0].time_s == 4.0

    def test_sweep_sizes(self, explorer):
        curve = explorer.sweep_sizes(section54_join(0.10, 0.01), sizes=[8, 6, 4, 2])
        assert [p.label for p in curve] == ["8B", "6B", "4B", "2B"]
        assert curve.reference_label == "8B"

    def test_invalid_cluster_size(self):
        with pytest.raises(ModelError):
            DesignSpaceExplorer(CLUSTER_V_NODE, WIMPY_LAPTOP_B, 0)


class TestTradeoffCurve:
    def test_normalized_reference(self):
        curve = TradeoffCurve(
            [make_point("a", 10.0, 100.0), make_point("b", 20.0, 50.0)]
        )
        norm = curve.normalized()
        assert norm[0].performance == 1.0
        assert norm[1].energy == pytest.approx(0.5)

    def test_best_design_min_energy_meeting_target(self):
        curve = TradeoffCurve(
            [
                make_point("ref", 10.0, 100.0),
                make_point("fast-costly", 11.0, 95.0),
                make_point("slow-cheap", 16.0, 60.0),
                make_point("too-slow", 40.0, 30.0),
            ]
        )
        best = curve.best_design(target_performance=0.6)
        assert best.label == "slow-cheap"

    def test_best_design_unreachable_target(self):
        curve = TradeoffCurve([make_point("ref", 10.0, 100.0), make_point("x", 100.0, 1.0)])
        with pytest.raises(ModelError, match="target"):
            curve.best_design(target_performance=2.0)

    def test_below_edp_points(self):
        curve = TradeoffCurve(
            [
                make_point("ref", 10.0, 100.0),
                make_point("good", 12.5, 60.0),  # perf 0.8, energy 0.6
                make_point("bad", 20.0, 90.0),  # perf 0.5, energy 0.9
            ]
        )
        below = curve.below_edp_points()
        assert [p.label for p in below] == ["good"]

    def test_knee_of_elbowed_curve(self):
        curve = TradeoffCurve(
            [
                make_point("a", 10.0, 100.0),
                make_point("b", 10.5, 70.0),  # big energy drop, tiny perf loss
                make_point("c", 20.0, 65.0),  # long flat tail
            ]
        )
        assert curve.knee().label == "b"

    def test_energy_span(self):
        curve = TradeoffCurve(
            [make_point("a", 10.0, 100.0), make_point("b", 10.0, 50.0)]
        )
        assert curve.energy_span() == pytest.approx(2.0)

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ModelError):
            TradeoffCurve([make_point("a", 1.0, 1.0), make_point("a", 2.0, 2.0)])

    def test_point_lookup(self):
        curve = TradeoffCurve([make_point("a", 1.0, 1.0)])
        assert curve.point("a").label == "a"
        with pytest.raises(ModelError):
            curve.point("z")
        with pytest.raises(ModelError):
            curve.normalized_point("z")

    def test_iteration_and_len(self):
        curve = TradeoffCurve([make_point("a", 1.0, 1.0), make_point("b", 2.0, 2.0)])
        assert len(curve) == 2
        assert [p.label for p in curve] == ["a", "b"]
