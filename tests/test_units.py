"""Unit-conversion helpers."""

import pytest

from repro import units


def test_gb_to_mb():
    assert units.gb(1) == 1000.0
    assert units.gb(2.8) == pytest.approx(2800.0)


def test_tb_to_mb():
    assert units.tb(2.8) == pytest.approx(2_800_000.0)


def test_kb_to_mb():
    assert units.kb(500) == pytest.approx(0.5)


def test_gbps_roundtrip():
    assert units.mbps_to_gbps(units.gbps(1.0)) == pytest.approx(1.0)


def test_gbps_line_rate():
    assert units.gbps(1.0) == 125.0


def test_joules_to_kilojoules():
    assert units.joules_to_kilojoules(2500.0) == pytest.approx(2.5)


def test_watt_hours():
    assert units.watt_hours(3600.0) == pytest.approx(1.0)


def test_clamp_inside():
    assert units.clamp(0.5, 0.0, 1.0) == 0.5


def test_clamp_below_and_above():
    assert units.clamp(-3.0, 0.0, 1.0) == 0.0
    assert units.clamp(7.0, 0.0, 1.0) == 1.0


def test_clamp_invalid_interval():
    with pytest.raises(ValueError):
        units.clamp(0.5, 2.0, 1.0)


def test_approx_equal():
    assert units.approx_equal(1.0, 1.0 + 1e-12)
    assert not units.approx_equal(1.0, 1.1)
