"""The TCO cost model: curve arithmetic and per-evaluation pricing."""

import math
import pickle
import random

import pytest

from repro.costmodel import CarbonIntensityCurve, CostModel, JOULES_PER_KWH
from repro.errors import ConfigurationError
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.search.grid import DesignCandidate


def candidate(num_beefy=2, num_wimpy=3):
    return DesignCandidate(
        label="cand",
        beefy=CLUSTER_V_NODE,
        wimpy=WIMPY_LAPTOP_B,
        num_beefy=num_beefy,
        num_wimpy=num_wimpy,
    )


class TestCarbonIntensityCurve:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="at least one slot"):
            CarbonIntensityCurve(slots=(), period_s=86400.0)
        with pytest.raises(ConfigurationError, match="negative"):
            CarbonIntensityCurve(slots=(100.0, -1.0), period_s=86400.0)
        with pytest.raises(ConfigurationError, match="period"):
            CarbonIntensityCurve(slots=(100.0,), period_s=0.0)
        with pytest.raises(ConfigurationError, match="slots"):
            CarbonIntensityCurve.diurnal(100.0, 500.0, slots=0)

    def test_at_reads_the_slot_in_force(self):
        curve = CarbonIntensityCurve(slots=(10.0, 20.0, 30.0, 40.0), period_s=4.0)
        assert curve.slot_s == 1.0
        assert curve.at(0.0) == 10.0
        assert curve.at(0.999) == 10.0
        assert curve.at(1.0) == 20.0  # right-open slots
        assert curve.at(3.5) == 40.0
        # the profile repeats in both directions
        assert curve.at(4.0) == 10.0
        assert curve.at(9.0) == 20.0
        assert curve.at(-1.0) == 40.0

    def test_mean_is_time_weighted(self):
        curve = CarbonIntensityCurve(slots=(100.0, 300.0), period_s=7200.0)
        assert curve.mean == 200.0
        diurnal = CarbonIntensityCurve.diurnal(100.0, 500.0)
        assert diurnal.mean == pytest.approx(300.0)

    def test_diurnal_shape(self):
        curve = CarbonIntensityCurve.diurnal(100.0, 500.0, slots=24)
        assert len(curve.slots) == 24
        assert all(100.0 <= s <= 500.0 for s in curve.slots)
        # trough at t=0, peak half a period later
        assert curve.at(0.0) < curve.at(43200.0)
        assert min(curve.slots) == pytest.approx(curve.slots[0])
        assert max(curve.slots) == pytest.approx(curve.slots[12])

    def test_integral_whole_period_is_mean_times_period(self):
        curve = CarbonIntensityCurve.diurnal(100.0, 500.0)
        assert curve.integral(0.0, 86400.0) == pytest.approx(
            curve.mean * 86400.0
        )
        # arbitrary whole-period windows too
        assert curve.integral(1234.5, 1234.5 + 86400.0) == pytest.approx(
            curve.mean * 86400.0
        )

    def test_integral_matches_numeric_oracle(self):
        curve = CarbonIntensityCurve.diurnal(80.0, 420.0, period_s=600.0, slots=7)
        rng = random.Random(7)
        for _ in range(20):
            start = rng.uniform(-900.0, 900.0)
            end = start + rng.uniform(0.0, 1500.0)
            steps = 200_000
            width = (end - start) / steps
            oracle = sum(
                curve.at(start + (k + 0.5) * width) for k in range(steps)
            ) * width
            assert curve.integral(start, end) == pytest.approx(
                oracle, rel=1e-3, abs=1e-6
            )

    def test_integral_is_additive_and_empty_on_inverted_ranges(self):
        curve = CarbonIntensityCurve(slots=(5.0, 15.0, 10.0), period_s=30.0)
        assert curve.integral(3.0, 3.0) == 0.0
        assert curve.integral(9.0, 2.0) == 0.0
        whole = curve.integral(1.0, 77.0)
        split = curve.integral(1.0, 25.0) + curve.integral(25.0, 77.0)
        assert whole == pytest.approx(split)

    def test_fingerprint_is_primitive_and_value_keyed(self):
        a = CarbonIntensityCurve(slots=(1.0, 2.0), period_s=10.0)
        b = CarbonIntensityCurve(slots=(1.0, 2.0), period_s=10.0)
        c = CarbonIntensityCurve(slots=(2.0, 1.0), period_s=10.0)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()
        assert all(
            isinstance(part, (str, float)) for part in a.fingerprint()
        )


class TestCostModel:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="tariff"):
            CostModel(tariff_usd_per_kwh=-0.1)
        with pytest.raises(ConfigurationError, match="carbon"):
            CostModel(carbon_g_per_kwh=-1.0)
        with pytest.raises(ConfigurationError, match="capex"):
            CostModel(capex_usd_per_node_hour={"beefy": -0.5})
        with pytest.raises(ConfigurationError, match="default capex"):
            CostModel(default_capex_usd_per_node_hour=-0.5)

    def test_capex_mapping_is_canonicalized_hashable_and_comparable(self):
        a = CostModel(capex_usd_per_node_hour={"b": 2.0, "a": 1.0})
        b = CostModel(capex_usd_per_node_hour=(("a", 1.0), ("b", 2.0)))
        assert a == b
        assert hash(a) == hash(b)
        assert a.capex_usd_per_node_hour == (("a", 1.0), ("b", 2.0))

    def test_node_rate_falls_back_to_default(self):
        model = CostModel(
            capex_usd_per_node_hour={"cluster-V": 0.9},
            default_capex_usd_per_node_hour=0.2,
        )
        assert model.node_rate_usd_per_hour("cluster-V") == 0.9
        assert model.node_rate_usd_per_hour("wimpy-laptopB") == 0.2
        assert model.capex_rate_usd_per_hour(candidate(2, 3)) == pytest.approx(
            2 * 0.9 + 3 * 0.2
        )

    def test_price_is_capex_over_time_plus_tariff_over_energy(self):
        model = CostModel(
            tariff_usd_per_kwh=0.12,
            capex_usd_per_node_hour={"cluster-V": 1.0, "wimpy-laptopB": 0.1},
        )
        price = model.price_usd(candidate(2, 3), time_s=1800.0, energy_j=7.2e6)
        assert price == pytest.approx((2 * 1.0 + 3 * 0.1) * 0.5 + 0.12 * 2.0)

    def test_price_is_linear_in_time_and_energy(self):
        model = CostModel(
            tariff_usd_per_kwh=0.3, default_capex_usd_per_node_hour=0.7
        )
        cand = candidate()
        a = model.price_usd(cand, 10.0, 5e5)
        b = model.price_usd(cand, 25.0, 9e5)
        assert model.price_usd(cand, 35.0, 14e5) == pytest.approx(a + b)

    def test_flat_carbon(self):
        model = CostModel(carbon_g_per_kwh=400.0)
        assert not model.time_varying
        assert model.mean_carbon_g_per_kwh == 400.0
        assert model.carbon_g(JOULES_PER_KWH) == pytest.approx(400.0)
        assert model.carbon_g(0.0) == 0.0

    def test_curve_carbon_prices_untimed_energy_at_the_cycle_mean(self):
        curve = CarbonIntensityCurve.diurnal(100.0, 500.0)
        model = CostModel(carbon_g_per_kwh=curve)
        assert model.time_varying
        assert model.mean_carbon_g_per_kwh == pytest.approx(curve.mean)
        assert model.carbon_g(2 * JOULES_PER_KWH) == pytest.approx(
            2 * curve.mean
        )

    def test_timed_carbon_with_flat_grid_reduces_to_energy_pricing(self):
        class Interval:
            def __init__(self, start_s, end_s, cluster_power_w):
                self.start_s = start_s
                self.end_s = end_s
                self.cluster_power_w = cluster_power_w

        model = CostModel(carbon_g_per_kwh=250.0)
        intervals = [Interval(0.0, 10.0, 100.0), Interval(10.0, 40.0, 50.0)]
        energy = 10.0 * 100.0 + 30.0 * 50.0
        assert model.carbon_g_timed(intervals) == pytest.approx(
            model.carbon_g(energy)
        )

    def test_timed_carbon_integrates_the_curve_per_interval(self):
        class Interval:
            def __init__(self, start_s, end_s, cluster_power_w):
                self.start_s = start_s
                self.end_s = end_s
                self.cluster_power_w = cluster_power_w

        curve = CarbonIntensityCurve(slots=(100.0, 500.0), period_s=20.0)
        model = CostModel(carbon_g_per_kwh=curve)
        # 1 kW in the trough slot only: priced at 100, not at the 300 mean
        trough = [Interval(0.0, 10.0, 1000.0)]
        expected = 1000.0 * 100.0 * 10.0 / JOULES_PER_KWH
        assert model.carbon_g_timed(trough) == pytest.approx(expected)
        # the same energy burned in the peak slot costs 5x
        peak = [Interval(10.0, 20.0, 1000.0)]
        assert model.carbon_g_timed(peak) == pytest.approx(5 * expected)

    def test_fingerprint_distinguishes_models_and_is_picklable(self):
        flat = CostModel(tariff_usd_per_kwh=0.1, carbon_g_per_kwh=300.0)
        twin = CostModel(tariff_usd_per_kwh=0.1, carbon_g_per_kwh=300.0)
        curve = CostModel(
            tariff_usd_per_kwh=0.1,
            carbon_g_per_kwh=CarbonIntensityCurve.diurnal(100.0, 500.0),
        )
        capex = CostModel(
            tariff_usd_per_kwh=0.1,
            carbon_g_per_kwh=300.0,
            capex_usd_per_node_hour={"cluster-V": 1.0},
        )
        prints = [m.fingerprint() for m in (flat, curve, capex)]
        assert flat.fingerprint() == twin.fingerprint()
        assert len(set(prints)) == 3
        for model in (flat, curve, capex):
            clone = pickle.loads(pickle.dumps(model))
            assert clone == model
            assert clone.fingerprint() == model.fingerprint()

    def test_zero_model_prices_everything_at_zero(self):
        model = CostModel()
        assert model.price_usd(candidate(), 100.0, 1e6) == 0.0
        assert model.carbon_g(1e6) == 0.0
