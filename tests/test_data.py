"""RecordBatch: the columnar tuple container."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data import RecordBatch
from repro.errors import ExecutionError


def make_batch(n=5):
    return RecordBatch(
        {"k": np.arange(n, dtype=np.int64), "v": np.arange(n, dtype=np.float64) * 2.0}
    )


def test_basic_properties():
    batch = make_batch(5)
    assert batch.num_rows == 5
    assert len(batch) == 5
    assert batch.column_names == ("k", "v")
    assert "k" in batch and "missing" not in batch


def test_ragged_columns_rejected():
    with pytest.raises(ExecutionError, match="ragged"):
        RecordBatch({"a": np.arange(3), "b": np.arange(4)})


def test_empty_columns_rejected():
    with pytest.raises(ExecutionError):
        RecordBatch({})


def test_unknown_column():
    with pytest.raises(ExecutionError, match="no column"):
        make_batch().column("zzz")


def test_take_reorders():
    batch = make_batch(4)
    taken = batch.take(np.array([3, 0]))
    assert list(taken.column("k")) == [3, 0]


def test_filter_mask():
    batch = make_batch(6)
    kept = batch.filter(batch.column("k") % 2 == 0)
    assert list(kept.column("k")) == [0, 2, 4]


def test_filter_bad_mask_length():
    with pytest.raises(ExecutionError, match="mask length"):
        make_batch(3).filter(np.array([True]))


def test_project_subset_and_order():
    batch = make_batch()
    proj = batch.project(["v"])
    assert proj.column_names == ("v",)


def test_project_empty_rejected():
    with pytest.raises(ExecutionError):
        make_batch().project([])


def test_rename():
    renamed = make_batch().rename({"k": "key"})
    assert renamed.column_names == ("key", "v")


def test_slices_cover_all_rows():
    batch = make_batch(10)
    chunks = list(batch.slices(3))
    assert [c.num_rows for c in chunks] == [3, 3, 3, 1]
    assert list(RecordBatch.concat(chunks).column("k")) == list(range(10))


def test_slices_invalid():
    with pytest.raises(ExecutionError):
        list(make_batch().slices(0))


def test_concat_schema_mismatch():
    a = make_batch()
    b = RecordBatch({"x": np.arange(2)})
    with pytest.raises(ExecutionError, match="column mismatch"):
        RecordBatch.concat([a, b])


def test_concat_empty_list():
    with pytest.raises(ExecutionError):
        RecordBatch.concat([])


def test_nbytes_positive():
    assert make_batch().nbytes() > 0


def test_empty_like():
    empty = RecordBatch.empty_like(make_batch())
    assert empty.num_rows == 0
    assert empty.column_names == ("k", "v")


@given(st.lists(st.integers(-(2**31), 2**31), min_size=1, max_size=50))
def test_filter_then_concat_roundtrip(values):
    """Splitting by a predicate and concatenating preserves multiset."""
    arr = np.asarray(values, dtype=np.int64)
    batch = RecordBatch({"k": arr})
    mask = arr % 2 == 0
    evens, odds = batch.filter(mask), batch.filter(~mask)
    assert evens.num_rows + odds.num_rows == batch.num_rows
    merged = sorted(list(evens.column("k")) + list(odds.column("k")))
    assert merged == sorted(values)


@given(st.integers(1, 40), st.integers(1, 15))
def test_slices_total_rows(n, block):
    batch = RecordBatch({"k": np.arange(n)})
    chunks = list(batch.slices(block))
    assert sum(c.num_rows for c in chunks) == n
    assert all(c.num_rows <= block for c in chunks)
