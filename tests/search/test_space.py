"""SearchSpace: sampling, mutation, grid compatibility, enumeration."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.hardware.presets import BEEFY_L5630, CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.pstore.plans import ExecutionMode
from repro.search import ChoiceAxis, DesignGrid, RangeAxis, SearchSpace


def reference_grid():
    return DesignGrid(
        node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
        cluster_sizes=(6, 8, 10),
        frequency_factors=(1.0, 0.8),
    )


def open_space(**overrides):
    settings = dict(
        node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
        cluster_sizes=RangeAxis("cluster_size", 4, 24, integer=True),
        frequency_factors=RangeAxis("frequency_factor", 0.5, 1.0),
    )
    settings.update(overrides)
    return SearchSpace(**settings)


class TestAxes:
    def test_choice_axis_samples_its_values(self):
        axis = ChoiceAxis("phi", (1.0, 0.8, 0.6))
        rng = random.Random(0)
        assert {axis.sample(rng) for _ in range(64)} == {1.0, 0.8, 0.6}

    def test_choice_axis_mutation_moves_to_a_neighbor(self):
        axis = ChoiceAxis("phi", (1.0, 0.8, 0.6))
        rng = random.Random(0)
        for _ in range(32):
            assert axis.mutate(0.8, rng) in (1.0, 0.6)
            assert axis.mutate(1.0, rng) == 0.8  # endpoint: one neighbor
            assert axis.mutate(0.6, rng) == 0.8

    def test_range_axis_stays_in_bounds(self):
        axis = RangeAxis("phi", 0.5, 1.0)
        rng = random.Random(1)
        for _ in range(200):
            assert 0.5 <= axis.sample(rng) <= 1.0
            assert 0.5 <= axis.mutate(0.98, rng) <= 1.0

    def test_integer_range_axis_yields_integers_and_never_stalls(self):
        axis = RangeAxis("n", 4, 24, integer=True)
        rng = random.Random(2)
        for _ in range(100):
            drawn = axis.sample(rng)
            assert isinstance(drawn, int) and 4 <= drawn <= 24
            mutant = axis.mutate(drawn, rng)
            assert isinstance(mutant, int) and 4 <= mutant <= 24
            assert mutant != drawn  # a zero-step integer move is no mutation

    def test_empty_choice_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="no values"):
            ChoiceAxis("phi", ())

    def test_inverted_range_rejected(self):
        with pytest.raises(ConfigurationError, match="low < high"):
            RangeAxis("phi", 1.0, 0.5)


class TestGridBackedSpace:
    def test_enumeration_is_exactly_the_grid(self):
        grid = reference_grid()
        space = SearchSpace.from_grid(grid)
        assert space.finite
        assert len(space) == len(grid)
        assert [c.label for c in space.candidate_list()] == [
            c.label for c in grid.candidate_list()
        ]

    def test_samples_are_grid_points_with_grid_labels(self):
        grid = reference_grid()
        space = SearchSpace.from_grid(grid)
        by_key = {c.key(): c.label for c in grid.candidate_list()}
        rng = random.Random(7)
        for _ in range(100):
            candidate = space.sample(rng)
            assert candidate.key() in by_key
            assert candidate.label == by_key[candidate.key()]

    def test_mutants_are_grid_points(self):
        grid = reference_grid()
        space = SearchSpace.from_grid(grid)
        keys = {c.key() for c in grid.candidate_list()}
        rng = random.Random(11)
        candidate = space.sample(rng)
        for _ in range(100):
            candidate = space.mutate(candidate, rng)
            assert candidate.key() in keys

    def test_sampling_is_deterministic_under_a_seed(self):
        space = SearchSpace.from_grid(reference_grid())
        first = [space.sample(random.Random(3)) for _ in range(1)]
        # same seed, fresh rng: identical draws
        draws_a = [space.sample(rng) for rng in [random.Random(3)] for _ in range(1)]
        rng_a, rng_b = random.Random(9), random.Random(9)
        seq_a = [space.sample(rng_a).label for _ in range(20)]
        seq_b = [space.sample(rng_b).label for _ in range(20)]
        assert seq_a == seq_b
        assert first[0].label == draws_a[0].label

    def test_mix_step_grids_only_sample_allowed_splits(self):
        grid = DesignGrid(
            node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
            cluster_sizes=(8,),
            mix_step=2,
        )
        space = SearchSpace.from_grid(grid)
        allowed = {c.num_beefy for c in grid.candidate_list()}
        rng = random.Random(5)
        for _ in range(60):
            assert space.sample(rng).num_beefy in allowed


class TestOpenSpace:
    def test_open_space_is_not_finite_and_refuses_enumeration(self):
        space = open_space()
        assert not space.finite
        with pytest.raises(ConfigurationError, match="cannot be enumerated"):
            space.candidate_list()

    def test_samples_respect_every_axis(self):
        space = open_space()
        rng = random.Random(13)
        for _ in range(100):
            candidate = space.sample(rng)
            assert 4 <= candidate.num_nodes <= 24
            assert 0 <= candidate.num_beefy <= candidate.num_nodes
            assert 0.5 <= candidate.frequency_factor <= 1.0

    def test_mutation_changes_exactly_one_axis_dimension(self):
        space = open_space()
        rng = random.Random(17)
        parent = space.sample(rng)
        for _ in range(50):
            child = space.mutate(parent, rng)
            changed = sum(
                1
                for probe in (
                    child.num_nodes != parent.num_nodes,
                    child.num_beefy != parent.num_beefy
                    and child.num_nodes == parent.num_nodes,
                    child.frequency_factor != parent.frequency_factor,
                )
                if probe
            )
            assert changed >= 1

    def test_discrete_non_grid_space_enumerates(self):
        space = SearchSpace(
            node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
            cluster_sizes=(4,),
            beefy_fractions=(0.0, 0.5, 1.0),
            frequency_factors=(1.0, 0.8),
        )
        assert space.finite
        labels = [c.label for c in space.candidate_list()]
        assert len(labels) == len(set(labels)) == 6  # 3 splits x 2 DVFS states
        assert {c.num_beefy for c in space.candidate_list()} == {0, 2, 4}

    def test_mode_axis_and_with_mode(self):
        space = SearchSpace(
            node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
            cluster_sizes=(4,),
            beefy_fractions=(0.5,),
            modes=(ExecutionMode.HOMOGENEOUS, ExecutionMode.HETEROGENEOUS),
        )
        rng = random.Random(19)
        drawn_modes = {space.sample(rng).mode for _ in range(40)}
        assert drawn_modes == {
            ExecutionMode.HOMOGENEOUS,
            ExecutionMode.HETEROGENEOUS,
        }
        forced = space.with_mode(ExecutionMode.HOMOGENEOUS)
        assert all(
            forced.sample(rng).mode is ExecutionMode.HOMOGENEOUS
            for _ in range(20)
        )

    def test_multi_pair_spaces_label_the_pair(self):
        space = SearchSpace(
            node_pairs=(
                (CLUSTER_V_NODE, WIMPY_LAPTOP_B),
                (BEEFY_L5630, WIMPY_LAPTOP_B),
            ),
            cluster_sizes=(4,),
            beefy_fractions=(0.5,),
        )
        rng = random.Random(23)
        names = {space.sample(rng).beefy.name for _ in range(40)}
        assert len(names) == 2

    def test_mutating_a_foreign_candidate_with_per_type_dvfs(self):
        """A candidate carrying per-type DVFS factors mutates cleanly in
        a space without those axes (regression: AttributeError)."""
        from repro.search import DesignCandidate

        space = SearchSpace(
            node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
            cluster_sizes=(4, 8),
            beefy_fractions=(0.0, 0.5, 1.0),
        )
        foreign = DesignCandidate(
            label="4B,4W|phiB0.8",
            beefy=CLUSTER_V_NODE,
            wimpy=WIMPY_LAPTOP_B,
            num_beefy=4,
            num_wimpy=4,
            beefy_frequency_factor=0.8,
        )
        rng = random.Random(31)
        for _ in range(30):
            mutant = space.mutate(foreign, rng)
            assert mutant.num_nodes in (4, 8)
            assert mutant.beefy_frequency_factor == 0.8  # carried through
            if mutant.num_nodes != foreign.num_nodes:
                assert "phiB0.8" in mutant.label

    def test_size_range_must_be_integer(self):
        with pytest.raises(ConfigurationError, match="integer"):
            SearchSpace(
                node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
                cluster_sizes=RangeAxis("cluster_size", 4.0, 8.5),
            )

    def test_frequency_range_must_stay_in_unit_interval(self):
        with pytest.raises(ConfigurationError, match="frequency_factor"):
            open_space(frequency_factors=RangeAxis("frequency_factor", 0.0, 1.0))


class TestCandidateListSpace:
    def test_from_candidates_samples_the_list(self):
        grid = reference_grid()
        listed = grid.candidate_list()[:5]
        space = SearchSpace.from_candidates(listed)
        assert space.finite
        assert space.candidate_list() == listed
        rng = random.Random(29)
        keys = {c.key() for c in listed}
        for _ in range(40):
            assert space.sample(rng).key() in keys
            assert space.mutate(listed[0], rng).key() in keys

    def test_empty_candidate_list_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            SearchSpace.from_candidates([])
