"""The parallel search path returns byte-identical results to serial."""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.presets import BEEFY_L5630, CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.search import (
    CallableEvaluator,
    DesignGrid,
    DesignSpaceSearch,
    EvaluationCache,
    ModelEvaluator,
)
from repro.workloads.queries import section54_join


def run(grid, query, workers, **kwargs):
    # These tests pin the parallel path itself, so the cheap-batch
    # threshold is disabled: tiny grids must still fan out here.
    kwargs.setdefault("min_dispatch_tasks", 1)
    search = DesignSpaceSearch(workers=workers, cache=EvaluationCache(), **kwargs)
    return search.search(grid, query)


def test_parallel_matches_serial_on_the_reference_grid():
    grid = DesignGrid(
        node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
        cluster_sizes=(6, 8, 10),
        frequency_factors=(1.0, 0.7),
    )
    query = section54_join()
    serial = run(grid, query, workers=1)
    parallel = run(grid, query, workers=3)
    assert parallel.workers_used == 3
    # Byte-identical results: every float agrees bit for bit (== would
    # already reject differing values, but packing to IEEE-754 bytes also
    # pins down 0.0 vs -0.0 and rules out any NaN sneaking through).
    assert serial.points == parallel.points
    for ours, theirs in zip(serial.points, parallel.points):
        assert float_bytes(ours) == float_bytes(theirs)


def float_bytes(point):
    """The point's numeric payload as exact IEEE-754 bytes."""
    fields = [point.time_s, point.energy_j]
    if point.prediction is not None:
        for phase in (point.prediction.build, point.prediction.probe):
            fields += [
                phase.time_s,
                phase.energy_j,
                phase.beefy_utilization,
                phase.wimpy_utilization,
            ]
    return struct.pack(f"{len(fields)}d", *fields)


@settings(max_examples=8, deadline=None)
@given(
    build_selectivity=st.sampled_from([0.01, 0.05, 0.10, 0.25]),
    probe_selectivity=st.sampled_from([0.01, 0.10]),
    cluster_size=st.integers(min_value=2, max_value=10),
    workers=st.integers(min_value=2, max_value=4),
    chunk_size=st.one_of(st.none(), st.integers(min_value=1, max_value=5)),
    warm_cache=st.booleans(),
)
def test_parallel_matches_serial_property(
    build_selectivity, probe_selectivity, cluster_size, workers, chunk_size, warm_cache
):
    """Seeded grids: every parallel configuration equals the serial sweep."""
    grid = DesignGrid.paper_axis(BEEFY_L5630, WIMPY_LAPTOP_B, cluster_size)
    query = section54_join(build_selectivity, probe_selectivity)
    evaluator = ModelEvaluator(warm_cache=warm_cache)
    serial = run(grid, query, workers=1, evaluator=evaluator)
    parallel = run(
        grid, query, workers=workers, chunk_size=chunk_size, evaluator=evaluator
    )
    assert serial.points == parallel.points
    assert [p.feasible for p in serial.points] == [p.feasible for p in parallel.points]


def test_unpicklable_evaluator_degrades_to_serial():
    grid = DesignGrid.paper_axis(CLUSTER_V_NODE, WIMPY_LAPTOP_B, 4)
    evaluator = CallableEvaluator(lambda cluster, query: (1.0, 2.0))
    result = run(grid, section54_join(), workers=4, evaluator=evaluator)
    assert result.workers_used == 1  # lambda cannot cross a process boundary
    assert all(p.time_s == 1.0 for p in result.points)


def test_parallel_resweep_is_served_from_cache():
    grid = DesignGrid.paper_axis(CLUSTER_V_NODE, WIMPY_LAPTOP_B, 8)
    search = DesignSpaceSearch(workers=2)
    first = search.search(grid, section54_join())
    second = search.search(grid, section54_join())
    assert first.evaluations == len(grid)
    assert second.evaluations == 0
    assert second.workers_used == 1  # nothing left to fan out
    assert second.points == first.points
