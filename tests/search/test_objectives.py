"""Objective registry, N-dimensional selection, and 2-objective parity.

The property tests pin the compatibility contract: under the default
``("time_s", "energy_j")`` configuration the generalized machinery must
reproduce the classic sweep/chord selections *exactly* on random point
sets, and an added objective can only grow the frontier, never shrink it.
"""

import random
from dataclasses import replace

import pytest

from repro.costmodel import CostModel
from repro.errors import ConfigurationError, ModelError
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.search.evaluators import EvaluatedDesign
from repro.search.grid import DesignCandidate
from repro.search.objectives import (
    DEFAULT_OBJECTIVES,
    Objective,
    best_under_budget,
    best_under_carbon,
    dominates,
    frontier_nd,
    knee_nd,
    objective_vector,
    register_objective,
    resolve_objectives,
)
from repro.search.pareto import best_under_sla, knee_point, pareto_frontier


def point(label, time_s, energy_j, feasible=True, carbon_g=None, price_usd=None):
    candidate = DesignCandidate(
        label=label, beefy=CLUSTER_V_NODE, wimpy=WIMPY_LAPTOP_B,
        num_beefy=1, num_wimpy=1,
    )
    return EvaluatedDesign(
        candidate=candidate,
        time_s=time_s,
        energy_j=energy_j,
        feasible=feasible,
        infeasible_reason="" if feasible else "does not fit",
        carbon_g=carbon_g,
        price_usd=price_usd,
    )


def random_cloud(rng, n, priced=False, duplicate_fraction=0.3):
    """A random point set with deliberate exact duplicates and ties."""
    points = []
    for k in range(n):
        time_s = rng.choice([1.0, 2.0, 3.0, 5.0, rng.uniform(0.5, 10.0)])
        energy_j = rng.choice([10.0, 25.0, 40.0, rng.uniform(5.0, 100.0)])
        kwargs = {}
        if priced:
            kwargs = {
                "carbon_g": rng.uniform(1.0, 50.0),
                "price_usd": rng.uniform(0.1, 5.0),
            }
        points.append(point(f"p{k:03d}", time_s, energy_j, **kwargs))
    for k in range(int(n * duplicate_fraction)):
        twin = rng.choice(points)
        points.append(replace(twin, candidate=replace(
            twin.candidate, label=f"d{k:03d}")))
    rng.shuffle(points)
    return points


class TestObjective:
    def test_direction_validated(self):
        with pytest.raises(ConfigurationError, match="direction"):
            Objective("time_s", direction="sideways")

    def test_max_direction_negates(self):
        throughput = Objective(
            "throughput", accessor=lambda p: 1.0 / p.time_s, direction="max"
        )
        p = point("a", 4.0, 1.0)
        assert throughput.raw_value(p) == 0.25
        assert throughput.value(p) == -0.25

    def test_missing_value_is_a_named_error_with_hint(self):
        unpriced = point("a", 1.0, 1.0)
        with pytest.raises(ModelError, match="CostModel"):
            resolve_objectives(("time_s", "price_usd"))[1].value(unpriced)

    def test_registry_rejects_silent_overwrite(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_objective(Objective("time_s"))

    def test_resolve_validation(self):
        assert [o.name for o in resolve_objectives(None)] == list(
            DEFAULT_OBJECTIVES
        )
        with pytest.raises(ConfigurationError, match="unknown objective"):
            resolve_objectives(("time_s", "dollars"))
        with pytest.raises(ConfigurationError, match="duplicate"):
            resolve_objectives(("time_s", "time_s"))
        with pytest.raises(ConfigurationError, match="at least two"):
            resolve_objectives(("time_s",))


class TestDominance:
    def test_componentwise_rules(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))
        assert dominates((1.0, 2.0), (1.0, 3.0))
        assert not dominates((1.0, 1.0), (1.0, 1.0))  # equal: no strict axis
        assert not dominates((1.0, 3.0), (2.0, 2.0))  # incomparable
        assert not dominates((2.0, 2.0), (1.0, 1.0))

    def test_extra_axis_can_break_dominance(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))
        assert not dominates((1.0, 1.0, 9.0), (2.0, 2.0, 1.0))


class TestTwoObjectiveParity:
    """frontier_nd/knee_nd under the default axes == the classic code."""

    def test_frontier_matches_legacy_on_random_clouds(self):
        rng = random.Random(42)
        for trial in range(50):
            points = random_cloud(rng, rng.randint(1, 40))
            legacy = pareto_frontier(points)
            general = frontier_nd(points, DEFAULT_OBJECTIVES)
            assert [p.label for p in general] == [p.label for p in legacy], (
                f"trial {trial}: frontier diverged"
            )
            # and the objectives= passthrough on the classic entry point
            routed = pareto_frontier(points, objectives=DEFAULT_OBJECTIVES)
            assert [p.label for p in routed] == [p.label for p in legacy]

    def test_knee_matches_legacy_on_random_clouds(self):
        rng = random.Random(1337)
        for trial in range(50):
            points = random_cloud(rng, rng.randint(1, 40))
            if not any(p.feasible for p in points):
                continue
            assert knee_nd(points, DEFAULT_OBJECTIVES).label == (
                knee_point(points).label
            ), f"trial {trial}: knee diverged"

    def test_best_under_sla_is_untouched_by_the_refactor(self):
        """The SLA selector ignores objectives entirely; pin its rule
        against a from-scratch oracle on random clouds."""
        rng = random.Random(9)
        for _ in range(30):
            points = random_cloud(rng, rng.randint(1, 30))
            feasible = [p for p in points if p.feasible]
            sla = rng.uniform(0.5, 12.0)
            eligible = [p for p in feasible if p.time_s <= sla]
            if not eligible:
                with pytest.raises(ModelError):
                    best_under_sla(points, sla)
                continue
            oracle = min(eligible, key=lambda p: (p.energy_j, p.time_s, p.label))
            assert best_under_sla(points, sla).label == oracle.label


class TestFrontierProperties:
    def test_exact_duplicates_keep_first_label(self):
        rng = random.Random(5)
        for _ in range(30):
            points = random_cloud(rng, rng.randint(2, 30), duplicate_fraction=1.0)
            by_vector = {}
            for p in points:
                if p.feasible:
                    by_vector.setdefault((p.time_s, p.energy_j), []).append(p.label)
            for p in frontier_nd(points, DEFAULT_OBJECTIVES):
                assert p.label == min(by_vector[(p.time_s, p.energy_j)])

    def test_adding_an_objective_never_shrinks_the_frontier(self):
        """Label-for-label inclusion, for clouds where cost is a function
        of (time, energy) — as it is for every CostModel-priced record,
        where price/carbon derive linearly from the base axes."""
        rng = random.Random(77)
        for trial in range(30):
            points = [
                replace(
                    p,
                    carbon_g=2.0 * p.energy_j + 1.0,
                    price_usd=0.5 * p.time_s + 0.01 * p.energy_j,
                )
                for p in random_cloud(rng, rng.randint(1, 30))
            ]
            base = {p.label for p in frontier_nd(points, DEFAULT_OBJECTIVES)}
            for extra in (
                ("time_s", "energy_j", "price_usd"),
                ("time_s", "energy_j", "carbon_g"),
                ("time_s", "energy_j", "price_usd", "carbon_g"),
            ):
                wider = {p.label for p in frontier_nd(points, extra)}
                assert base <= wider, (
                    f"trial {trial}: {extra} dropped {base - wider}"
                )

    def test_adding_an_objective_keeps_every_base_vector(self):
        """With arbitrary (even decorrelated) extra-axis values, the 2-D
        dedupe representative may lose to a same-(time, energy) twin with
        lower cost — but every base frontier *vector* stays represented."""
        rng = random.Random(78)
        for trial in range(30):
            points = random_cloud(rng, rng.randint(1, 30), priced=True)
            base = {
                (p.time_s, p.energy_j)
                for p in frontier_nd(points, DEFAULT_OBJECTIVES)
            }
            wider = {
                (p.time_s, p.energy_j)
                for p in frontier_nd(
                    points, ("time_s", "energy_j", "carbon_g")
                )
            }
            assert base <= wider, f"trial {trial}: dropped {base - wider}"

    def test_frontier_points_are_mutually_non_dominated(self):
        rng = random.Random(21)
        objs = resolve_objectives(("time_s", "energy_j", "price_usd"))
        for _ in range(20):
            points = random_cloud(rng, rng.randint(1, 25), priced=True)
            frontier = frontier_nd(points, objs)
            vectors = [objective_vector(p, objs) for p in frontier]
            for i, a in enumerate(vectors):
                for j, b in enumerate(vectors):
                    if i != j:
                        assert not dominates(a, b)
            # every excluded feasible point is dominated or a duplicate
            kept = set(vectors)
            for p in points:
                if p.feasible and p not in frontier:
                    v = objective_vector(p, objs)
                    assert v in kept or any(
                        dominates(w, v) for w in vectors
                    )

    def test_infeasible_and_empty(self):
        assert frontier_nd([], ("time_s", "energy_j", "carbon_g")) == []
        dead = [point("x", 1.0, 1.0, feasible=False, carbon_g=1.0)]
        assert frontier_nd(dead, ("time_s", "energy_j", "carbon_g")) == []


class TestKneeNd:
    def test_three_objective_knee_finds_the_elbow(self):
        # one point close to ideal on all three axes, plus axis extremes
        points = [
            point("t-end", 1.0, 100.0, carbon_g=100.0, price_usd=100.0),
            point("e-end", 100.0, 1.0, carbon_g=100.0, price_usd=100.0),
            point("c-end", 100.0, 100.0, carbon_g=1.0, price_usd=100.0),
            point("elbow", 10.0, 10.0, carbon_g=10.0, price_usd=100.0),
        ]
        knee = knee_nd(points, ("time_s", "energy_j", "carbon_g"))
        assert knee.label == "elbow"

    def test_degenerate_frontiers_fall_back_to_edp(self):
        objs = ("time_s", "energy_j", "carbon_g")
        # fewer frontier points than objectives
        few = [
            point("a", 1.0, 9.0, carbon_g=5.0),
            point("b", 9.0, 1.0, carbon_g=5.0),
        ]
        assert knee_nd(few, objs).label == knee_point(few).label
        # a zero-span axis (all carbon equal) degenerates too
        flat = [
            point("a", 1.0, 9.0, carbon_g=5.0),
            point("b", 3.0, 3.0, carbon_g=5.0),
            point("c", 9.0, 1.0, carbon_g=5.0),
            point("d", 2.0, 5.0, carbon_g=5.0),
        ]
        edp_best = min(
            pareto_frontier(flat), key=lambda p: (p.edp, p.time_s, p.label)
        )
        assert knee_nd(flat, objs).label == edp_best.label

    def test_no_feasible_point_raises(self):
        with pytest.raises(ModelError, match="no feasible"):
            knee_nd([point("x", 1.0, 1.0, feasible=False)], None)

    def test_knee_is_deterministic_under_shuffling(self):
        rng = random.Random(3)
        points = random_cloud(rng, 25, priced=True)
        objs = ("time_s", "energy_j", "price_usd")
        first = knee_nd(points, objs).label
        for _ in range(5):
            rng.shuffle(points)
            assert knee_nd(points, objs).label == first


class TestBudgetSelectors:
    def priced_points(self):
        return [
            point("cheap-slow", 10.0, 50.0, carbon_g=20.0, price_usd=1.0),
            point("mid", 5.0, 60.0, carbon_g=40.0, price_usd=2.0),
            point("fast-dear", 2.0, 90.0, carbon_g=80.0, price_usd=5.0),
        ]

    def test_best_under_budget_picks_fastest_that_fits(self):
        points = self.priced_points()
        assert best_under_budget(points, 10.0).label == "fast-dear"
        assert best_under_budget(points, 2.5).label == "mid"
        assert best_under_budget(points, 1.0).label == "cheap-slow"

    def test_best_under_carbon_picks_fastest_that_fits(self):
        points = self.priced_points()
        assert best_under_carbon(points, 100.0).label == "fast-dear"
        assert best_under_carbon(points, 50.0).label == "mid"

    def test_caps_validated(self):
        with pytest.raises(ModelError, match="> 0"):
            best_under_budget(self.priced_points(), 0.0)
        with pytest.raises(ModelError, match="> 0"):
            best_under_carbon(self.priced_points(), -1.0)

    def test_nothing_fits_is_a_named_error(self):
        with pytest.raises(ModelError, match="fits"):
            best_under_budget(self.priced_points(), 0.5)
        with pytest.raises(ModelError, match="fits"):
            best_under_carbon(self.priced_points(), 10.0)

    def test_unpriced_points_name_the_missing_cost_model(self):
        bare = [point("a", 1.0, 1.0)]
        with pytest.raises(ModelError, match="CostModel"):
            best_under_budget(bare, 10.0)
        with pytest.raises(ModelError, match="CostModel"):
            best_under_carbon(bare, 10.0)

    def test_infeasible_points_never_win(self):
        points = self.priced_points() + [
            point("broken", 0.1, 1.0, feasible=False, carbon_g=0.1, price_usd=0.1)
        ]
        assert best_under_budget(points, 10.0).label == "fast-dear"

    def test_ties_on_time_resolve_by_energy_then_label(self):
        points = [
            point("z", 2.0, 30.0, price_usd=1.0, carbon_g=1.0),
            point("a", 2.0, 30.0, price_usd=1.0, carbon_g=1.0),
            point("hungrier", 2.0, 40.0, price_usd=1.0, carbon_g=1.0),
        ]
        assert best_under_budget(points, 5.0).label == "a"
        assert best_under_carbon(points, 5.0).label == "a"


class TestCostModelObjectiveIntegration:
    def test_priced_cloud_supports_cost_axes_end_to_end(self):
        model = CostModel(
            tariff_usd_per_kwh=0.2,
            carbon_g_per_kwh=300.0,
            default_capex_usd_per_node_hour=0.5,
        )
        raw = [point(f"p{k}", 1.0 + k, 100.0 - 10.0 * k) for k in range(5)]
        priced = [
            replace(
                p,
                carbon_g=model.carbon_g(p.energy_j),
                price_usd=model.price_usd(p.candidate, p.time_s, p.energy_j),
            )
            for p in raw
        ]
        frontier = frontier_nd(priced, ("time_s", "price_usd"))
        assert frontier  # non-empty and consistent with the pricing
        for p in frontier:
            assert p.price_usd == pytest.approx(
                model.price_usd(p.candidate, p.time_s, p.energy_j)
            )
