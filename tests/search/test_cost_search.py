"""Cost-model threading through the whole selection stack.

End-to-end contracts: with no :class:`CostModel` configured every record,
frontier, knee, and SLA pick is bit-identical to the pre-cost behaviour
(cost fields ``None``); with one attached, price/carbon are stamped on
every evaluation path (model, simulator, weights-only, timed), aggregate
linearly over suites, partition the evaluation cache, and flow into
exports and Study selections.
"""

import csv
import io

import pytest

from repro.costmodel import CarbonIntensityCurve, CostModel, JOULES_PER_KWH
from repro.errors import ConfigurationError, ModelError
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.search import (
    CallableEvaluator,
    DesignGrid,
    DesignSpaceSearch,
    EvaluationCache,
    ModelEvaluator,
    SimulatorEvaluator,
)
from repro.study import Study
from repro.workloads.arrivals import poisson_arrivals
from repro.workloads.protocol import TimedTrace
from repro.workloads.queries import q3_join
from repro.workloads.suite import SuiteEntry, WorkloadSuite

GRID = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(4,),
)

MODEL = CostModel(
    tariff_usd_per_kwh=0.12,
    carbon_g_per_kwh=350.0,
    capex_usd_per_node_hour={"cluster-V": 0.8, "wimpy-laptopB": 0.05},
)


def small_trace(count=4, rate=0.05, seed=3) -> TimedTrace:
    query = q3_join(100, 0.05, 0.05)
    return TimedTrace.from_schedule(
        "poisson-q3", query, poisson_arrivals(count, rate_per_s=rate, seed=seed)
    )


class TestDefaultPathParity:
    """No cost model => records and selections exactly as before."""

    def test_records_carry_no_cost_and_match_priced_time_energy(self):
        query = q3_join(100, 0.05, 0.05)
        bare = DesignSpaceSearch(evaluator=ModelEvaluator()).search(GRID, query)
        priced = DesignSpaceSearch(
            evaluator=ModelEvaluator(cost_model=MODEL)
        ).search(GRID, query)
        assert all(p.carbon_g is None and p.price_usd is None for p in bare.points)
        # pricing is an annotation: time/energy arithmetic is untouched
        assert [(p.label, p.time_s, p.energy_j) for p in priced.points] == [
            (p.label, p.time_s, p.energy_j) for p in bare.points
        ]
        assert [p.label for p in priced.pareto_frontier()] == [
            p.label for p in bare.pareto_frontier()
        ]
        assert priced.knee().label == bare.knee().label

    def test_default_fingerprints_are_unchanged(self):
        """The cache-key shape with no model must equal the pre-cost shape,
        so persisted caches and warm engines stay valid."""
        assert ModelEvaluator().fingerprint() == ModelEvaluator(
            cost_model=None
        ).fingerprint()
        assert MODEL.fingerprint() not in ModelEvaluator().fingerprint()
        priced = ModelEvaluator(cost_model=MODEL).fingerprint()
        assert priced[:-1] == ModelEvaluator().fingerprint()
        assert priced[-1] == MODEL.fingerprint()

    def test_unpriced_selections_refuse_cost_axes(self):
        result = DesignSpaceSearch(evaluator=ModelEvaluator()).search(
            GRID, q3_join(100, 0.05, 0.05)
        )
        with pytest.raises(ModelError, match="CostModel"):
            result.best_under_budget(100.0)
        with pytest.raises(ModelError, match="CostModel"):
            result.best_under_carbon(100.0)
        with pytest.raises(ModelError, match="CostModel"):
            result.pareto_frontier(objectives=("time_s", "price_usd"))


class TestPricingThroughEvaluators:
    def test_model_evaluator_prices_records_exactly(self):
        result = DesignSpaceSearch(
            evaluator=ModelEvaluator(cost_model=MODEL)
        ).search(GRID, q3_join(100, 0.05, 0.05))
        for p in result.feasible_points:
            assert p.price_usd == pytest.approx(
                MODEL.price_usd(p.candidate, p.time_s, p.energy_j)
            )
            assert p.carbon_g == pytest.approx(MODEL.carbon_g(p.energy_j))

    def test_simulator_evaluator_prices_records_exactly(self):
        result = DesignSpaceSearch(
            evaluator=SimulatorEvaluator(cost_model=MODEL)
        ).search(GRID, q3_join(100, 0.05, 0.05))
        for p in result.feasible_points:
            assert p.price_usd == pytest.approx(
                MODEL.price_usd(p.candidate, p.time_s, p.energy_j)
            )
            assert p.carbon_g == pytest.approx(MODEL.carbon_g(p.energy_j))

    def test_callable_evaluator_prices_and_fingerprints(self):
        def fn(candidate, query):
            return 2.0, 1000.0

        bare = CallableEvaluator(fn)
        priced = CallableEvaluator(fn, cost_model=MODEL)
        record = priced.evaluate_query(GRID.candidate_list()[0], q3_join(100, 0.05, 0.05))
        assert record.carbon_g == pytest.approx(MODEL.carbon_g(1000.0))
        assert bare.fingerprint() != priced.fingerprint()

    def test_infeasible_records_stay_unpriced(self):
        from repro.workloads.queries import JoinWorkloadSpec

        huge = JoinWorkloadSpec(
            name="huge", build_volume_mb=1e12, probe_volume_mb=1e12,
            build_selectivity=1.0, probe_selectivity=1.0,
        )
        result = DesignSpaceSearch(
            evaluator=ModelEvaluator(cost_model=MODEL)
        ).search(GRID, huge)
        assert result.points
        assert all(
            p.carbon_g is None and p.price_usd is None for p in result.points
        )


class TestSuiteAggregation:
    def test_suite_costs_are_weight_sums_of_per_query_costs(self):
        query_a = q3_join(100, 0.05, 0.05)
        query_b = q3_join(100, 0.05, 0.10)
        suite = WorkloadSuite(
            name="mix",
            entries=(SuiteEntry(query_a, 2.0), SuiteEntry(query_b, 0.5)),
        )
        engine = DesignSpaceSearch(evaluator=ModelEvaluator(cost_model=MODEL))
        combined = engine.search(GRID, suite)
        solo_a = engine.search(GRID, query_a)
        solo_b = engine.search(GRID, query_b)
        for mix, a, b in zip(combined.points, solo_a.points, solo_b.points):
            assert mix.price_usd == pytest.approx(
                2.0 * a.price_usd + 0.5 * b.price_usd
            )
            assert mix.carbon_g == pytest.approx(
                2.0 * a.carbon_g + 0.5 * b.carbon_g
            )
            # and linearity means the aggregate equals direct pricing too
            assert mix.price_usd == pytest.approx(
                MODEL.price_usd(mix.candidate, mix.time_s, mix.energy_j)
            )


class TestTimedPricing:
    def test_flat_grid_timed_carbon_equals_energy_pricing(self):
        candidate = GRID.candidate_list()[0]
        record = SimulatorEvaluator(cost_model=MODEL).evaluate_trace(
            candidate, small_trace()
        )
        assert record.carbon_g == pytest.approx(MODEL.carbon_g(record.energy_j))
        assert record.price_usd == pytest.approx(
            MODEL.price_usd(candidate, record.time_s, record.energy_j)
        )

    def test_time_varying_carbon_integrates_the_curve(self):
        """A curve whose slots differ prices a timed run away from the
        mean — and the result is bracketed by trough and peak pricing."""
        candidate = GRID.candidate_list()[0]
        trace = small_trace()
        curve = CarbonIntensityCurve(slots=(50.0, 650.0), period_s=40.0)
        timed_model = CostModel(carbon_g_per_kwh=curve)
        record = SimulatorEvaluator(cost_model=timed_model).evaluate_trace(
            candidate, trace
        )
        kwh = record.energy_j / JOULES_PER_KWH
        assert 50.0 * kwh <= record.carbon_g <= 650.0 * kwh
        # the trace spans both slots, so the exact integral is not the mean
        assert record.carbon_g != pytest.approx(curve.mean * kwh, rel=1e-6)

    def test_time_varying_does_not_perturb_time_energy(self):
        """Interval recording is observation only: the timed run with a
        curve model replays bit-identically to the unpriced run."""
        candidate = GRID.candidate_list()[0]
        trace = small_trace()
        bare = SimulatorEvaluator().evaluate_trace(candidate, trace)
        curve_model = CostModel(
            carbon_g_per_kwh=CarbonIntensityCurve.diurnal(100.0, 500.0)
        )
        timed = SimulatorEvaluator(cost_model=curve_model).evaluate_trace(
            candidate, trace
        )
        assert timed.time_s == bare.time_s
        assert timed.energy_j == bare.energy_j
        assert timed.latency == bare.latency

    def test_trace_batch_equals_serial_under_time_varying_model(self):
        """The multiplexed batch path routes time-varying pricing to the
        serial evaluator, so both paths must agree record-for-record."""
        evaluator = SimulatorEvaluator(
            cost_model=CostModel(
                tariff_usd_per_kwh=0.1,
                carbon_g_per_kwh=CarbonIntensityCurve.diurnal(
                    100.0, 500.0, period_s=200.0
                ),
            )
        )
        trace = small_trace()
        candidates = GRID.candidate_list()
        batch = evaluator.evaluate_trace_batch(trace, candidates)
        serial = [evaluator.evaluate_trace(c, trace) for c in candidates]
        assert [
            (p.label, p.time_s, p.energy_j, p.carbon_g, p.price_usd)
            for p in batch
        ] == [
            (p.label, p.time_s, p.energy_j, p.carbon_g, p.price_usd)
            for p in serial
        ]


class TestCachePartitioning:
    def test_priced_and_unpriced_records_never_alias(self):
        """Two engines over one shared cache, one priced one not: the
        priced sweep re-evaluates instead of serving unpriced records."""
        cache = EvaluationCache()
        query = q3_join(100, 0.05, 0.05)
        bare = DesignSpaceSearch(evaluator=ModelEvaluator(), cache=cache).search(
            GRID, query
        )
        priced = DesignSpaceSearch(
            evaluator=ModelEvaluator(cost_model=MODEL), cache=cache
        ).search(GRID, query)
        assert priced.evaluations == len(priced.points)
        assert priced.cache_hits == 0
        assert all(p.price_usd is not None for p in priced.feasible_points)
        # and the unpriced keys still serve the unpriced engine
        warm = DesignSpaceSearch(evaluator=ModelEvaluator(), cache=cache).search(
            GRID, query
        )
        assert warm.evaluations == 0
        assert all(p.price_usd is None for p in warm.points)
        assert warm.points == bare.points

    def test_two_models_partition_each_other(self):
        cache = EvaluationCache()
        query = q3_join(100, 0.05, 0.05)
        other = CostModel(tariff_usd_per_kwh=0.50)
        first = DesignSpaceSearch(
            evaluator=ModelEvaluator(cost_model=MODEL), cache=cache
        ).search(GRID, query)
        second = DesignSpaceSearch(
            evaluator=ModelEvaluator(cost_model=other), cache=cache
        ).search(GRID, query)
        assert second.evaluations == len(second.points)
        for a, b in zip(first.feasible_points, second.feasible_points):
            assert a.price_usd != b.price_usd


class TestStudyFacade:
    def test_with_cost_model_threads_to_selections_and_rows(self):
        result = (
            Study(GRID)
            .with_workload(q3_join(100, 0.05, 0.05))
            .with_cost_model(MODEL)
            .run()
        )
        feasible = result.feasible_points
        assert feasible and all(p.price_usd is not None for p in feasible)
        dearest = max(p.price_usd for p in feasible)
        assert result.best_under_budget(dearest * 1.01).feasible
        assert result.best_under_carbon(
            max(p.carbon_g for p in feasible) * 1.01
        ).feasible
        row = result.to_rows()[0]
        assert row["price_usd"] == result.points[0].price_usd
        assert row["carbon_g"] == result.points[0].carbon_g

    def test_cost_model_study_is_a_separate_engine_cell(self):
        """with_cost_model must not share the cached engine with the
        unpriced study over the same grid."""
        base = Study(GRID).with_workload(q3_join(100, 0.05, 0.05))
        bare = base.run()
        priced = base.with_cost_model(MODEL).run()
        assert all(p.price_usd is None for p in bare.points)
        assert all(
            p.price_usd is not None for p in priced.feasible_points
        )

    def test_incompatible_evaluator_is_a_named_error(self):
        study = (
            Study(GRID)
            .with_workload(q3_join(100, 0.05, 0.05))
            .with_evaluator(CallableEvaluator(lambda c, q: (1.0, 1.0)))
            .with_cost_model(MODEL)
        )
        with pytest.raises(ConfigurationError, match="cost model"):
            study.run()

    def test_tco_csv_exports_the_cost_frontier(self):
        result = (
            Study(GRID)
            .with_workload(q3_join(100, 0.05, 0.05))
            .with_cost_model(MODEL)
            .run()
        )
        rows = list(csv.DictReader(io.StringIO(result.tco_csv())))
        assert rows
        assert {"carbon_g", "price_usd", "label"} <= set(rows[0])
        frontier = {
            p.label
            for p in result.pareto_frontier(
                objectives=("time_s", "energy_j", "price_usd", "carbon_g")
            )
        }
        assert {r["label"] for r in rows} == frontier

    def test_optimize_accepts_objectives(self):
        result = (
            Study(GRID)
            .with_workload(q3_join(100, 0.05, 0.05))
            .with_cost_model(MODEL)
            .optimize(
                budget=4,
                optimizer="random",
                objectives=("time_s", "price_usd"),
            )
        )
        assert result.feasible_points
        assert all(
            p.price_usd is not None for p in result.feasible_points
        )
        assert result.pareto_frontier(objectives=("time_s", "price_usd"))
