"""Degraded-mode (nemesis) evaluation through the search engine.

A :class:`FaultedTrace` routes to the exact serial simulation path,
records carry a ``degraded_latency`` profile plus failure accounting
(``recovery_energy_j``, ``retried_jobs``, ``dropped_jobs``,
``faults_survived``), and selection happens through
``best_under_degraded_sla``.  The healthy paths — weights-only, timed
serial, timed multiplexed — must stay byte-for-byte untouched.
"""

import pytest

from repro.errors import ModelError
from repro.faults import FailurePolicy, FaultSchedule, NodeCrash
from repro.hardware.powerstate import PowerStateModel
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.search import DesignGrid, DesignSpaceSearch, SimulatorEvaluator
from repro.search.pareto import best_under_degraded_sla
from repro.study import Study
from repro.workloads.arrivals import periodic_arrivals
from repro.workloads.protocol import TimedTrace
from repro.workloads.queries import q3_join

GRID = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(4,),
)

#: short boot so degraded latencies stay in test-friendly ranges
FAST = PowerStateModel(shutdown_s=0.0, boot_s=5.0)
RETRY = FailurePolicy.abort_and_retry(backoff_base_s=1.0, transitions=FAST)


def trace(count=4, interval=20.0) -> TimedTrace:
    query = q3_join(100, 0.05, 0.05)
    return TimedTrace.from_schedule(
        "periodic-q3", query, periodic_arrivals(count, interval_s=interval)
    )


def mid_crash() -> FaultSchedule:
    """One recoverable crash that catches the first query in flight."""
    return FaultSchedule(
        events=(NodeCrash(node=1, at_s=0.5, recover_at_s=6.0),), name="c1"
    )


class TestDegradedRecords:
    def test_faulted_search_populates_degraded_fields(self):
        engine = DesignSpaceSearch(evaluator=SimulatorEvaluator())
        faulted = trace().with_faults(mid_crash(), failure_policy=RETRY)
        result = engine.search(GRID, faulted)
        for point in result.feasible_points:
            assert point.latency is None
            assert point.degraded_latency is not None
            assert point.degraded_latency.count == 4
            assert point.recovery_energy_j is not None
            assert point.recovery_energy_j > 0.0
            assert point.retried_jobs >= 1
            assert point.dropped_jobs == 0
            assert point.faults_survived == 1
        assert result.feasible_points

    def test_degraded_latency_pays_for_the_outage(self):
        engine = DesignSpaceSearch(evaluator=SimulatorEvaluator())
        healthy = engine.search(GRID, trace())
        degraded = engine.search(
            GRID, trace().with_faults(mid_crash(), failure_policy=RETRY)
        )
        for before, after in zip(healthy.feasible_points, degraded.feasible_points):
            assert before.label == after.label
            assert after.degraded_latency.max_s > before.latency.max_s

    def test_healthy_records_carry_no_degraded_fields(self):
        result = DesignSpaceSearch(evaluator=SimulatorEvaluator()).search(
            GRID, trace()
        )
        for point in result.points:
            assert point.degraded_latency is None
            assert point.recovery_energy_j is None
            assert point.retried_jobs is None
            assert point.faults_survived is None

    def test_coverage_loss_becomes_infeasible_under_fault(self):
        """A crash stranding every copy of a partition (replication
        factor 1: no copies survive any crash) marks the design
        infeasible-under-fault, not silently wrong."""
        engine = DesignSpaceSearch(evaluator=SimulatorEvaluator())
        faulted = trace().with_faults(
            mid_crash(), failure_policy=RETRY, replication_factor=1
        )
        result = engine.search(GRID, faulted)
        assert result.points
        assert all(not point.feasible for point in result.points)
        assert all(
            "replica coverage lost" in point.infeasible_reason
            for point in result.points
        )

    def test_replication_survives_single_crash(self):
        engine = DesignSpaceSearch(evaluator=SimulatorEvaluator())
        faulted = trace().with_faults(
            mid_crash(), failure_policy=RETRY, replication_factor=2
        )
        result = engine.search(GRID, faulted)
        assert result.feasible_points


class TestEmptyScheduleParity:
    def test_serial_parity(self):
        healthy = DesignSpaceSearch(evaluator=SimulatorEvaluator()).search(
            GRID, trace()
        )
        empty = DesignSpaceSearch(evaluator=SimulatorEvaluator()).search(
            GRID, trace().with_faults(FaultSchedule())
        )
        assert [
            (p.label, p.time_s, p.energy_j, p.latency) for p in empty.points
        ] == [(p.label, p.time_s, p.energy_j, p.latency) for p in healthy.points]
        assert all(point.degraded_latency is None for point in empty.points)

    def test_multiplexed_parity(self):
        """An empty schedule rides the event-multiplexed batch path and
        stays bit-identical to the healthy multiplexed search."""
        healthy = DesignSpaceSearch(evaluator=SimulatorEvaluator()).search(
            GRID, trace()
        )
        with DesignSpaceSearch(
            evaluator=SimulatorEvaluator(), workers=2, min_dispatch_tasks=1
        ) as engine:
            empty = engine.search(GRID, trace().with_faults(FaultSchedule()))
        assert empty.workers_used == 2
        assert [
            (p.label, p.time_s, p.energy_j, p.latency) for p in empty.points
        ] == [(p.label, p.time_s, p.energy_j, p.latency) for p in healthy.points]


class TestCacheNamespacing:
    def test_faulted_and_healthy_keys_are_disjoint(self):
        engine = DesignSpaceSearch(evaluator=SimulatorEvaluator())
        healthy = engine.search(GRID, trace())
        assert healthy.evaluations == len(healthy.points)
        faulted = engine.search(
            GRID, trace().with_faults(mid_crash(), failure_policy=RETRY)
        )
        # the healthy rows must not satisfy the degraded scenario
        assert faulted.evaluations == len(faulted.points)
        # ...and degraded rows don't leak back into the healthy path
        warm_healthy = engine.search(GRID, trace())
        assert warm_healthy.evaluations == 0

    def test_faulted_search_is_memoized(self):
        engine = DesignSpaceSearch(evaluator=SimulatorEvaluator())
        faulted = trace().with_faults(mid_crash(), failure_policy=RETRY)
        cold = engine.search(GRID, faulted)
        warm = engine.search(GRID, faulted)
        assert warm.evaluations == 0
        assert warm.cache_hits == len(warm.points)
        assert [
            (p.label, p.degraded_latency, p.recovery_energy_j) for p in warm.points
        ] == [(p.label, p.degraded_latency, p.recovery_energy_j) for p in cold.points]

    def test_different_schedules_evaluate_separately(self):
        engine = DesignSpaceSearch(evaluator=SimulatorEvaluator())
        engine.search(GRID, trace().with_faults(mid_crash(), failure_policy=RETRY))
        other = FaultSchedule(
            events=(NodeCrash(node=2, at_s=30.0, recover_at_s=40.0),), name="c2"
        )
        result = engine.search(
            GRID, trace().with_faults(other, failure_policy=RETRY)
        )
        assert result.evaluations == len(result.points)


class TestDegradedSelection:
    def search_both(self):
        engine = DesignSpaceSearch(evaluator=SimulatorEvaluator())
        healthy = engine.search(GRID, trace())
        degraded = engine.search(
            GRID, trace().with_faults(mid_crash(), failure_policy=RETRY)
        )
        return healthy, degraded

    def test_best_under_degraded_sla_reads_degraded_profile(self):
        _, degraded = self.search_both()
        worst = max(
            point.degraded_latency.max_s for point in degraded.feasible_points
        )
        best = degraded.best_under_degraded_sla(worst * 1.01)
        eligible_energy = min(p.energy_j for p in degraded.feasible_points)
        assert best.energy_j == eligible_energy
        fastest = min(
            point.degraded_latency.max_s for point in degraded.feasible_points
        )
        with pytest.raises(ModelError, match="under the fault schedule"):
            degraded.best_under_degraded_sla(fastest * 0.5)

    def test_selector_populations_are_disjoint(self):
        healthy, degraded = self.search_both()
        with pytest.raises(ModelError, match="degraded latency profile"):
            healthy.best_under_degraded_sla(1e9)
        with pytest.raises(ModelError, match="latency profile"):
            degraded.best_under_latency_sla(1e9)

    def test_sla_must_be_positive(self):
        _, degraded = self.search_both()
        with pytest.raises(ModelError):
            degraded.best_under_degraded_sla(0.0)

    def test_allow_drops_gate(self):
        """Points that shed queries are excluded unless explicitly
        allowed."""
        engine = DesignSpaceSearch(evaluator=SimulatorEvaluator())
        drop = FailurePolicy.drop(transitions=FAST)
        # catch the first query in flight so the drop policy sheds it
        early = FaultSchedule(
            events=(NodeCrash(node=1, at_s=0.5, recover_at_s=2.0),), name="e1"
        )
        result = engine.search(GRID, trace().with_faults(early, failure_policy=drop))
        shed = [p for p in result.feasible_points if p.dropped_jobs]
        assert shed, "early crash under the drop policy must shed the first query"
        with pytest.raises(ModelError, match="shed queries"):
            best_under_degraded_sla(result.feasible_points, 1e9)
        best = best_under_degraded_sla(
            result.feasible_points, 1e9, allow_drops=True
        )
        assert best.degraded_latency is not None


class TestExportAndStudy:
    def test_export_rows_carry_degraded_columns(self):
        from repro.analysis.export import search_to_rows

        engine = DesignSpaceSearch(evaluator=SimulatorEvaluator())
        result = engine.search(
            GRID, trace().with_faults(mid_crash(), failure_policy=RETRY)
        )
        rows = search_to_rows(result)
        feasible = [row for row in rows if row["feasible"]]
        assert feasible
        for row in feasible:
            assert row["degraded_response_p99_s"] is not None
            assert row["recovery_energy_j"] is not None
            assert row["retried_jobs"] is not None
            assert row["dropped_jobs"] == 0
            assert row["faults_survived"] == 1
            assert row["response_p99_s"] is None

    def test_healthy_export_rows_have_null_degraded_columns(self):
        from repro.analysis.export import search_to_rows

        result = DesignSpaceSearch(evaluator=SimulatorEvaluator()).search(
            GRID, trace()
        )
        for row in search_to_rows(result):
            assert row["degraded_response_p99_s"] is None
            assert row["recovery_energy_j"] is None

    def test_study_passthrough(self):
        faulted = trace().with_faults(mid_crash(), failure_policy=RETRY)
        result = (
            Study(GRID)
            .with_workload(faulted)
            .with_evaluator(SimulatorEvaluator())
            .run()
        )
        worst = max(
            point.degraded_latency.max_s for point in result.feasible_points
        )
        best = result.best_under_degraded_sla(worst * 1.01)
        assert best.degraded_latency is not None
