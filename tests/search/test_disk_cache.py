"""Disk-backed evaluation cache: persistence across processes/instances."""

import pytest

from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.search import (
    CallableEvaluator,
    DesignGrid,
    DesignSpaceSearch,
    EvaluationCache,
)
from repro.workloads.queries import section54_join
from repro.workloads.suite import WorkloadSuite


def paper_grid():
    return DesignGrid.paper_axis(CLUSTER_V_NODE, WIMPY_LAPTOP_B, 8)


def _module_level_cost(cluster, query):
    return (float(cluster.num_beefy), 1.0)


class TestDiskBackedCache:
    def test_memory_cache_is_not_persistent(self):
        assert not EvaluationCache().persistent

    def test_entries_survive_a_new_cache_instance(self, tmp_path):
        """Simulates a process restart: a fresh cache reads the old rows."""
        path = tmp_path / "evals.sqlite"
        first = EvaluationCache(cache_path=path)
        assert first.persistent
        result = DesignSpaceSearch(cache=first).search(paper_grid(), section54_join())
        assert result.evaluations == 9
        first.close()

        warm = EvaluationCache(cache_path=path)
        assert len(warm) == 9
        resumed = DesignSpaceSearch(cache=warm).search(paper_grid(), section54_join())
        assert resumed.evaluations == 0
        assert resumed.cache_hits == 9
        assert resumed.points == result.points

    def test_infeasible_results_are_persisted_too(self, tmp_path):
        path = tmp_path / "evals.sqlite"
        query = section54_join(0.10, 0.10)  # 1B,7W / 0B,8W cannot hold the table
        first = DesignSpaceSearch(cache=EvaluationCache(cache_path=path)).search(
            paper_grid(), query
        )
        assert first.infeasible_points
        resumed = DesignSpaceSearch(cache=EvaluationCache(cache_path=path)).search(
            paper_grid(), query
        )
        assert resumed.evaluations == 0
        assert {p.label for p in resumed.infeasible_points} == {
            p.label for p in first.infeasible_points
        }

    def test_suite_workloads_share_the_disk_store(self, tmp_path):
        path = tmp_path / "evals.sqlite"
        suite = WorkloadSuite.of("s", section54_join(0.01, 0.10))
        DesignSpaceSearch(cache=EvaluationCache(cache_path=path)).search(
            paper_grid(), suite
        )
        resumed = DesignSpaceSearch(cache=EvaluationCache(cache_path=path)).search(
            paper_grid(), suite
        )
        assert resumed.evaluations == 0

    def test_clear_empties_the_disk_store(self, tmp_path):
        path = tmp_path / "evals.sqlite"
        cache = EvaluationCache(cache_path=path)
        DesignSpaceSearch(cache=cache).search(paper_grid(), section54_join())
        cache.clear()
        assert len(cache) == 0
        assert len(EvaluationCache(cache_path=path)) == 0

    def test_contains_reads_the_disk_tier_without_counting(self, tmp_path):
        path = tmp_path / "evals.sqlite"
        cache = EvaluationCache(cache_path=path)
        DesignSpaceSearch(cache=cache).search(paper_grid(), section54_join())
        key = next(iter(cache._entries))
        fresh = EvaluationCache(cache_path=path)
        assert key in fresh
        assert (fresh.hits, fresh.misses) == (0, 0)
        # the probed entry was promoted: the follow-up get() is a dict hit
        assert key in fresh._entries

    def test_corrupt_rows_degrade_to_misses(self, tmp_path):
        """A truncated/garbage row must re-evaluate, not crash the sweep."""
        path = tmp_path / "evals.sqlite"
        cache = EvaluationCache(cache_path=path)
        DesignSpaceSearch(cache=cache).search(paper_grid(), section54_join())
        cache.close()

        import sqlite3

        db = sqlite3.connect(str(path))
        db.execute("UPDATE evaluations SET value = ?", (b"garbage",))
        db.commit()
        db.close()

        resumed = DesignSpaceSearch(cache=EvaluationCache(cache_path=path)).search(
            paper_grid(), section54_join()
        )
        assert resumed.evaluations == 9  # all rows dropped and re-evaluated
        assert all(p.feasible for p in resumed.points[:2])

    def test_version_bump_invalidates_persisted_entries(self, tmp_path):
        """Entries written by another package version are dropped, bounding
        the silent-staleness window of unchanged evaluator fingerprints."""
        path = tmp_path / "evals.sqlite"
        cache = EvaluationCache(cache_path=path)
        DesignSpaceSearch(cache=cache).search(paper_grid(), section54_join())
        cache.close()

        import sqlite3

        db = sqlite3.connect(str(path))
        db.execute("UPDATE meta SET value = '0.0.0' WHERE key = 'repro_version'")
        db.commit()
        db.close()

        stale = EvaluationCache(cache_path=path)
        assert len(stale) == 0
        resumed = DesignSpaceSearch(cache=stale).search(paper_grid(), section54_join())
        assert resumed.evaluations == 9

    def test_len_counts_disk_and_memory_only_entries(self, tmp_path):
        path = tmp_path / "evals.sqlite"
        cache = EvaluationCache(cache_path=path)
        DesignSpaceSearch(cache=cache).search(paper_grid(), section54_join())
        cache.close()

        fresh = EvaluationCache(cache_path=path)
        evaluator = CallableEvaluator(lambda cluster, query: (1.0, 2.0))
        DesignSpaceSearch(evaluator=evaluator, cache=fresh).search(
            paper_grid(), section54_join()
        )
        assert len(fresh) == 18  # 9 persisted + 9 memory-only (lambda key)

    def test_unpicklable_keys_degrade_to_memory_only(self, tmp_path):
        """Lambda-backed evaluators cannot persist; sweeps must still work."""
        path = tmp_path / "evals.sqlite"
        evaluator = CallableEvaluator(lambda cluster, query: (1.0, 2.0))
        cache = EvaluationCache(cache_path=path)
        search = DesignSpaceSearch(evaluator=evaluator, cache=cache)
        first = search.search(paper_grid(), section54_join())
        assert all(p.time_s == 1.0 for p in first.points)
        # in-memory memoization still applies within the process ...
        again = search.search(paper_grid(), section54_join())
        assert again.evaluations == 0
        # ... but nothing landed on disk
        fresh = EvaluationCache(cache_path=path)
        rows = fresh._db.execute("SELECT COUNT(*) FROM evaluations").fetchone()[0]
        assert rows == 0

    def test_module_level_callables_are_not_persisted_either(self, tmp_path):
        """A module-level function pickles by *name*, so persisting its
        entries would survive edits to the function body and serve stale
        numbers; callable fingerprints always stay memory-only."""
        path = tmp_path / "evals.sqlite"
        evaluator = CallableEvaluator(_module_level_cost)
        cache = EvaluationCache(cache_path=path)
        DesignSpaceSearch(evaluator=evaluator, cache=cache).search(
            paper_grid(), section54_join()
        )
        rows = cache._db.execute("SELECT COUNT(*) FROM evaluations").fetchone()[0]
        assert rows == 0
        assert len(cache._entries) == 9  # memory tier still memoizes

    def test_disk_and_memory_tiers_agree_on_stats_entries(self, tmp_path):
        path = tmp_path / "evals.sqlite"
        cache = EvaluationCache(cache_path=path)
        DesignSpaceSearch(cache=cache).search(paper_grid(), section54_join())
        assert cache.stats.entries == 9


class TestLockRetry:
    def test_locked_store_is_retried_with_backoff(self, monkeypatch):
        from repro.search import cache as cache_module

        sleeps = []
        monkeypatch.setattr(cache_module.time, "sleep", sleeps.append)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise cache_module.sqlite3.OperationalError("database is locked")
            return "ok"

        assert cache_module._with_lock_retry(flaky) == "ok"
        assert len(attempts) == 3
        assert sleeps == sorted(sleeps)  # backoff grows between attempts

    def test_lock_retries_warn_and_count(self, monkeypatch, caplog):
        """Each backoff warns with the attempt count and cumulative wait
        on ``repro.search.cache``, and bumps ``cache.lock_retries``."""
        import logging

        from repro.search import cache as cache_module
        from repro.telemetry import capture

        monkeypatch.setattr(cache_module.time, "sleep", lambda _s: None)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise cache_module.sqlite3.OperationalError("database is locked")
            return "ok"

        with capture() as telemetry:
            with caplog.at_level(logging.WARNING, logger="repro.search.cache"):
                assert cache_module._with_lock_retry(flaky) == "ok"
        assert telemetry.counter("cache.lock_retries") == 2
        records = [r for r in caplog.records if r.name == "repro.search.cache"]
        assert len(records) == 2
        assert "attempt 1 of 5" in records[0].getMessage()
        assert "0.025s waited so far" in records[0].getMessage()
        assert "attempt 2 of 5" in records[1].getMessage()
        assert "0.075s waited so far" in records[1].getMessage()

    def test_lock_retries_are_silent_when_telemetry_is_disabled(self, monkeypatch):
        """The counter hook is a no-op by default — the global registry
        stays empty even while retries happen."""
        from repro.search import cache as cache_module
        from repro.telemetry import capture

        monkeypatch.setattr(cache_module.time, "sleep", lambda _s: None)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 2:
                raise cache_module.sqlite3.OperationalError("database is locked")
            return "ok"

        with capture(enabled=False) as telemetry:
            assert cache_module._with_lock_retry(flaky) == "ok"
        assert telemetry.counters == {}

    def test_non_lock_errors_propagate_immediately(self, monkeypatch):
        import sqlite3

        from repro.search import cache as cache_module

        monkeypatch.setattr(cache_module.time, "sleep", lambda _s: None)
        attempts = []

        def broken():
            attempts.append(1)
            raise sqlite3.OperationalError("no such table: evaluations")

        with pytest.raises(sqlite3.OperationalError, match="no such table"):
            cache_module._with_lock_retry(broken)
        assert len(attempts) == 1

    def test_persistent_lock_eventually_propagates(self, monkeypatch):
        import sqlite3

        from repro.search import cache as cache_module

        monkeypatch.setattr(cache_module.time, "sleep", lambda _s: None)

        def always_locked():
            raise sqlite3.OperationalError("database is locked")

        with pytest.raises(sqlite3.OperationalError, match="locked"):
            cache_module._with_lock_retry(always_locked)

    def test_sweep_survives_transiently_locked_writes(self, tmp_path, monkeypatch):
        """End to end: the first insert of every put hits a spurious lock."""
        import sqlite3

        from repro.search import cache as cache_module

        monkeypatch.setattr(cache_module.time, "sleep", lambda _s: None)
        cache = EvaluationCache(cache_path=tmp_path / "evals.sqlite")

        class FlakyConnection:
            """Connection proxy whose INSERTs fail once before succeeding."""

            def __init__(self, real):
                self._real = real
                self._locked_once = set()

            def execute(self, sql, *args):
                if sql.startswith("INSERT OR REPLACE") and args not in self._locked_once:
                    self._locked_once.add(args)
                    raise sqlite3.OperationalError("database is locked")
                return self._real.execute(sql, *args)

            def __getattr__(self, name):
                return getattr(self._real, name)

        cache._db = FlakyConnection(cache._db)
        result = DesignSpaceSearch(cache=cache).search(paper_grid(), section54_join())
        assert result.evaluations == 9
        assert len(cache) == 9  # every locked write landed on retry


class TestCacheMerge:
    def shard(self, path, query):
        cache = EvaluationCache(cache_path=path)
        DesignSpaceSearch(cache=cache).search(paper_grid(), query)
        cache.close()

    def test_merge_combines_parallel_shards(self, tmp_path):
        """Two CI shards warm disjoint workloads; the merged store serves
        both without re-evaluation."""
        self.shard(tmp_path / "a.sqlite", section54_join(0.01, 0.10))
        self.shard(tmp_path / "b.sqlite", section54_join(0.10, 0.02))

        combined = EvaluationCache(cache_path=tmp_path / "a.sqlite")
        assert combined.merge(tmp_path / "b.sqlite") == 9
        for query in (section54_join(0.01, 0.10), section54_join(0.10, 0.02)):
            result = DesignSpaceSearch(cache=combined).search(paper_grid(), query)
            assert result.evaluations == 0

    def test_merge_keeps_existing_rows_and_is_idempotent(self, tmp_path):
        self.shard(tmp_path / "a.sqlite", section54_join())
        self.shard(tmp_path / "b.sqlite", section54_join())  # same 9 keys

        combined = EvaluationCache(cache_path=tmp_path / "a.sqlite")
        assert combined.merge(tmp_path / "b.sqlite") == 0  # nothing new
        assert len(combined) == 9

    def test_merge_requires_a_disk_backed_cache(self, tmp_path):
        from repro.errors import ConfigurationError

        self.shard(tmp_path / "b.sqlite", section54_join())
        with pytest.raises(ConfigurationError, match="disk-backed"):
            EvaluationCache().merge(tmp_path / "b.sqlite")

    def test_merge_rejects_other_versions(self, tmp_path):
        import sqlite3

        from repro.errors import ConfigurationError

        self.shard(tmp_path / "b.sqlite", section54_join())
        db = sqlite3.connect(str(tmp_path / "b.sqlite"))
        db.execute("UPDATE meta SET value = '0.0.0' WHERE key = 'repro_version'")
        db.commit()
        db.close()

        combined = EvaluationCache(cache_path=tmp_path / "a.sqlite")
        with pytest.raises(ConfigurationError, match="0.0.0"):
            combined.merge(tmp_path / "b.sqlite")

    def test_merge_count_survives_a_locked_commit(self, tmp_path, monkeypatch):
        """A retried fold must not count its own uncommitted inserts as
        pre-existing rows (regression: rollback before re-counting)."""
        import sqlite3

        from repro.search import cache as cache_module

        monkeypatch.setattr(cache_module.time, "sleep", lambda _s: None)
        self.shard(tmp_path / "a.sqlite", section54_join(0.01, 0.10))
        self.shard(tmp_path / "b.sqlite", section54_join(0.10, 0.02))
        combined = EvaluationCache(cache_path=tmp_path / "a.sqlite")

        class FlakyCommit:
            """Connection proxy whose first commit hits a spurious lock."""

            def __init__(self, real):
                self._real = real
                self._failed = False

            def commit(self):
                if not self._failed:
                    self._failed = True
                    raise sqlite3.OperationalError("database is locked")
                return self._real.commit()

            def __getattr__(self, name):
                return getattr(self._real, name)

        combined._db = FlakyCommit(combined._db)
        assert combined.merge(tmp_path / "b.sqlite") == 9

    def test_merge_rejects_non_cache_files(self, tmp_path):
        import sqlite3

        from repro.errors import ConfigurationError

        stray = tmp_path / "not-a-cache.sqlite"
        db = sqlite3.connect(str(stray))
        db.execute("CREATE TABLE misc (x INTEGER)")
        db.commit()
        db.close()

        combined = EvaluationCache(cache_path=tmp_path / "a.sqlite")
        with pytest.raises(ConfigurationError, match="not an evaluation cache"):
            combined.merge(stray)
