"""Cheap-task dispatch threshold + shutdown-safe pool lifecycle."""

import subprocess
import sys
import textwrap

import pytest

from repro.errors import ConfigurationError
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.search import (
    DEFAULT_MIN_DISPATCH_TASKS,
    DesignGrid,
    DesignSpaceSearch,
    EvaluationCache,
)
from repro.study import Study
from repro.workloads.queries import section54_join


def paper_grid(size=8):
    return DesignGrid.paper_axis(CLUSTER_V_NODE, WIMPY_LAPTOP_B, size)


class TestMinDispatchTasks:
    def test_tiny_batches_stay_serial_by_default(self):
        """9 model tasks cost ~0.4 ms serially; a pool dispatch costs
        milliseconds — the default threshold keeps the pool out of it."""
        engine = DesignSpaceSearch(workers=4, cache=EvaluationCache())
        result = engine.search(paper_grid(), section54_join())
        assert len(paper_grid().candidate_list()) < DEFAULT_MIN_DISPATCH_TASKS
        assert result.workers_used == 1
        assert not engine.pool_active  # never even spawned

    def test_threshold_boundary(self):
        """Exactly at the threshold the batch fans out; below it stays
        serial."""
        grid = paper_grid(9)  # 10 candidates, single join: 10 tasks
        at = DesignSpaceSearch(
            workers=2, cache=EvaluationCache(), min_dispatch_tasks=10
        )
        with at:
            assert at.search(grid, section54_join()).workers_used == 2
        below = DesignSpaceSearch(
            workers=2, cache=EvaluationCache(), min_dispatch_tasks=11
        )
        assert below.search(grid, section54_join()).workers_used == 1
        assert not below.pool_active

    def test_serial_fallback_returns_identical_results(self):
        serial = DesignSpaceSearch(cache=EvaluationCache()).search(
            paper_grid(), section54_join()
        )
        thresholded = DesignSpaceSearch(
            workers=2, cache=EvaluationCache()
        ).search(paper_grid(), section54_join())
        assert serial.points == thresholded.points

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ConfigurationError, match="min_dispatch_tasks"):
            DesignSpaceSearch(min_dispatch_tasks=0)

    def test_study_passes_the_threshold_through(self):
        study = (
            Study(paper_grid())
            .with_workload(section54_join())
            .with_workers(3, min_dispatch_tasks=1)
        )
        assert study.run().search.workers_used == 3
        # the knob is an engine setting: changing it starts a fresh engine
        base = Study(paper_grid()).with_workload(section54_join())
        assert (
            base.engine()
            is not base.with_workers(1, min_dispatch_tasks=5).engine()
        )


class TestShutdownSafety:
    def test_close_is_idempotent_and_safe_before_first_search(self):
        engine = DesignSpaceSearch(workers=2, cache=EvaluationCache())
        engine.close()  # nothing to release yet
        engine.close()
        engine.search(paper_grid(), section54_join())  # still usable
        engine.close()
        engine.close()

    def test_close_survives_a_half_constructed_engine(self):
        """__del__ may run on an engine whose __init__ raised before
        _pool existed; close() must not add an AttributeError on top."""
        shell = object.__new__(DesignSpaceSearch)
        shell.close()  # no _pool attribute at all
        del shell

    def test_pool_owning_engine_collected_at_exit_is_silent(self):
        """A forgotten engine (no close(), no context manager) must not
        spray ImportError/AttributeError noise at interpreter shutdown."""
        script = textwrap.dedent(
            """
            from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
            from repro.search import DesignGrid, DesignSpaceSearch, EvaluationCache
            from repro.workloads.queries import section54_join

            engine = DesignSpaceSearch(
                workers=2, cache=EvaluationCache(), min_dispatch_tasks=1
            )
            grid = DesignGrid.paper_axis(CLUSTER_V_NODE, WIMPY_LAPTOP_B, 8)
            result = engine.search(grid, section54_join())
            assert result.workers_used == 2 and engine.pool_active
            print("OK", len(result.points))
            # exit with the pool still alive: __del__ runs during shutdown
            """
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert completed.stdout.startswith("OK 9")
        assert completed.stderr.strip() == ""
