"""Worker-pool fault tolerance: a chunk that dies is retried serially.

A worker process failing (or its result failing to unpickle) must not
poison the whole search — the engine re-runs the chunk in-process once,
logs the incident, and counts it on ``SearchResult.dispatch_retries``.
"""

import logging
import os

import pytest

from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.search import (
    DesignGrid,
    DesignSpaceSearch,
    EvaluationCache,
    ModelEvaluator,
    SimulatorEvaluator,
)
from repro.workloads.arrivals import periodic_arrivals
from repro.workloads.protocol import TimedTrace
from repro.workloads.queries import q3_join, section54_join

GRID = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(6, 8),
)


class WorkerHostileEvaluator(ModelEvaluator):
    """Fails in every process except the one that built it.

    Picklable (so dispatch itself succeeds), but any evaluation running
    inside a pool worker raises — simulating a chunk whose worker dies.
    The serial in-process retry then lands back in the home process and
    succeeds, so results must match a clean serial search.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._home_pid = os.getpid()

    def evaluate_query_batch(self, candidate, queries):
        if os.getpid() != self._home_pid:
            raise RuntimeError("worker went down mid-chunk")
        return super().evaluate_query_batch(candidate, queries)


class WorkerHostileSimulatorEvaluator(SimulatorEvaluator):
    """Same trick for the timed-trace path."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._home_pid = os.getpid()

    def evaluate_trace_batch(self, trace, candidates):
        if os.getpid() != self._home_pid:
            raise RuntimeError("worker went down mid-chunk")
        return super().evaluate_trace_batch(trace, candidates)


def test_dying_chunks_are_retried_serially(caplog):
    query = section54_join()
    clean = DesignSpaceSearch(cache=EvaluationCache()).search(GRID, query)
    with DesignSpaceSearch(
        evaluator=WorkerHostileEvaluator(),
        cache=EvaluationCache(),
        workers=2,
        min_dispatch_tasks=1,
    ) as engine:
        with caplog.at_level(logging.WARNING, logger="repro.search"):
            result = engine.search(GRID, query)
    assert result.dispatch_retries >= 1
    assert [(p.label, p.time_s, p.energy_j) for p in result.points] == [
        (p.label, p.time_s, p.energy_j) for p in clean.points
    ]
    assert any("retrying serially" in record.message for record in caplog.records)


def test_timed_path_retries_dying_chunks(caplog):
    trace = TimedTrace.from_schedule(
        "t", q3_join(100, 0.05, 0.05), periodic_arrivals(3, interval_s=20.0)
    )
    clean = DesignSpaceSearch(
        evaluator=SimulatorEvaluator(), cache=EvaluationCache()
    ).search(GRID, trace)
    with DesignSpaceSearch(
        evaluator=WorkerHostileSimulatorEvaluator(),
        cache=EvaluationCache(),
        workers=2,
        min_dispatch_tasks=1,
    ) as engine:
        with caplog.at_level(logging.WARNING, logger="repro.search"):
            result = engine.search(GRID, trace)
    assert result.dispatch_retries >= 1
    assert [(p.label, p.time_s, p.latency) for p in result.points] == [
        (p.label, p.time_s, p.latency) for p in clean.points
    ]
    assert any("retrying serially" in record.message for record in caplog.records)


def test_healthy_pool_never_retries():
    with DesignSpaceSearch(
        cache=EvaluationCache(), workers=2, min_dispatch_tasks=1
    ) as engine:
        result = engine.search(GRID, section54_join())
    assert result.dispatch_retries == 0
    assert result.workers_used == 2


def test_serial_search_never_retries():
    result = DesignSpaceSearch(cache=EvaluationCache()).search(
        GRID, section54_join()
    )
    assert result.dispatch_retries == 0


def test_chunk_timeout_must_be_positive():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        DesignSpaceSearch(chunk_timeout_s=0.0)
    with pytest.raises(ConfigurationError):
        DesignSpaceSearch(chunk_timeout_s=-1.0)
