"""The old explorer API and the new search API agree on the paper's axis."""

import pytest

from repro.core.design_space import DesignSpaceExplorer
from repro.errors import ModelError
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.pstore.plans import ExecutionMode
from repro.search import DesignGrid, DesignSpaceSearch, ModelEvaluator
from repro.workloads.queries import section54_join


@pytest.fixture(scope="module")
def explorer():
    return DesignSpaceExplorer(CLUSTER_V_NODE, WIMPY_LAPTOP_B, cluster_size=8)


def search_axis(query, **evaluator_kwargs):
    grid = DesignGrid.paper_axis(CLUSTER_V_NODE, WIMPY_LAPTOP_B, 8)
    engine = DesignSpaceSearch(evaluator=ModelEvaluator(**evaluator_kwargs))
    return engine.search(grid, query)


@pytest.mark.parametrize(
    "build_selectivity,probe_selectivity",
    [(0.10, 0.01), (0.10, 0.10), (0.01, 0.10), (0.25, 0.01)],
)
def test_sweep_matches_search_exactly(explorer, build_selectivity, probe_selectivity):
    """Same labels, same times, same energies — bit-for-bit."""
    query = section54_join(build_selectivity, probe_selectivity)
    curve = explorer.sweep(query)
    result = search_axis(query)
    feasible = result.feasible_points
    assert [p.label for p in curve] == [p.label for p in feasible]
    for old, new in zip(curve, feasible):
        assert old.time_s == new.time_s
        assert old.energy_j == new.energy_j
        assert old.prediction.mode is new.prediction.mode


def test_infeasibility_agrees(explorer):
    """Designs the explorer drops are exactly the search's infeasible set."""
    query = section54_join(0.10, 0.10)
    curve_labels = {p.label for p in explorer.sweep(query)}
    result = search_axis(query)
    assert {p.label for p in result.feasible_points} == curve_labels
    assert {p.label for p in result.infeasible_points} == {"1B,7W", "0B,8W"}


def test_forced_mode_parity(explorer):
    query = section54_join(0.01, 0.01)
    curve = explorer.sweep(query, mode=ExecutionMode.HOMOGENEOUS)
    grid = DesignGrid(
        node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
        cluster_sizes=(8,),
        modes=(ExecutionMode.HOMOGENEOUS,),
    )
    result = DesignSpaceSearch().search(grid, query)
    for old, new in zip(curve, result.feasible_points):
        assert old.time_s == new.time_s
        assert old.energy_j == new.energy_j


def test_warm_cache_and_strict_flags_propagate():
    explorer = DesignSpaceExplorer(
        CLUSTER_V_NODE, WIMPY_LAPTOP_B, 8, warm_cache=True, strict_paper_conditions=True
    )
    query = section54_join()
    curve = explorer.sweep(query)
    result = search_axis(query, warm_cache=True, strict_paper_conditions=True)
    for old, new in zip(curve, result.feasible_points):
        assert old.time_s == new.time_s
        assert old.energy_j == new.energy_j


def test_explorer_evaluate_matches_search_single_point(explorer):
    """The explorer's point API and the engine price a design identically."""
    query = section54_join()
    cluster = explorer.mixes()[2]  # 6B,2W
    old = explorer.evaluate(cluster, query)
    new = search_axis(query).point("6B,2W")
    assert old.time_s == new.time_s
    assert old.energy_j == new.energy_j


def test_explorer_resweep_is_cached(explorer):
    """Delegation gives the old API free memoization."""
    query = section54_join(0.05, 0.05)
    explorer.sweep(query)
    hits_before = explorer._cache.hits
    explorer.sweep(query)
    assert explorer._cache.hits == hits_before + 9


def test_explorer_evaluate_warms_the_sweep_memo():
    """Single-point evaluations go through the shared evaluator + cache."""
    from repro.hardware.presets import CLUSTER_V_NODE as beefy
    from repro.hardware.presets import WIMPY_LAPTOP_B as wimpy

    fresh = DesignSpaceExplorer(beefy, wimpy, cluster_size=8)
    query = section54_join()
    fresh.evaluate(fresh.mixes()[2], query)  # 6B,2W
    assert len(fresh._cache) == 1
    curve = fresh.sweep(query)
    # the sweep re-used the single-point entry: 9 designs, 8 fresh evals
    assert len(fresh._cache) == 9
    assert fresh._cache.hits >= 1
    assert curve.point("6B,2W")


def test_explorer_evaluate_reads_the_sweep_memo():
    from repro.hardware.presets import CLUSTER_V_NODE as beefy
    from repro.hardware.presets import WIMPY_LAPTOP_B as wimpy

    fresh = DesignSpaceExplorer(beefy, wimpy, cluster_size=8)
    query = section54_join()
    fresh.sweep(query)
    misses_before = fresh._cache.misses
    point = fresh.evaluate(fresh.mixes()[0], query)  # 8B,0W: already priced
    assert fresh._cache.misses == misses_before
    assert point.label == "8B,0W"


def test_explorer_evaluate_raises_for_infeasible_designs():
    from repro.hardware.presets import CLUSTER_V_NODE as beefy
    from repro.hardware.presets import WIMPY_LAPTOP_B as wimpy

    fresh = DesignSpaceExplorer(beefy, wimpy, cluster_size=8)
    query = section54_join(0.10, 0.10)
    with pytest.raises(ModelError):
        fresh.evaluate(fresh.mixes()[-1], query)  # 0B,8W cannot hold the table


def test_explorer_evaluate_foreign_cluster_reaches_the_callable():
    """A custom evaluator receives the caller's actual cluster — even one
    the explorer's specs cannot rebuild — and the result never lands in
    the sweep cache under a same-shaped key (regression)."""
    from repro.hardware.cluster import ClusterSpec

    seen = []

    def spy(cluster, query):
        seen.append(cluster)
        return (1.0, 2.0)

    fresh = DesignSpaceExplorer(
        CLUSTER_V_NODE, WIMPY_LAPTOP_B, cluster_size=8, evaluator=spy
    )
    all_wimpy = ClusterSpec.beefy_wimpy(WIMPY_LAPTOP_B, 4, WIMPY_LAPTOP_B, 4)
    point = fresh.evaluate(all_wimpy, section54_join())
    assert seen[0] is all_wimpy  # the callable saw the foreign hardware
    assert point.cluster is all_wimpy
    assert len(fresh._cache) == 0  # foreign clusters must not pollute the memo

    # a matching cluster still routes through the engine and is cached
    fresh.evaluate(fresh.mixes()[2], section54_join())
    assert len(fresh._cache) == 1
    assert seen[1].num_beefy == 6


def test_sweep_sizes_parity():
    explorer = DesignSpaceExplorer(CLUSTER_V_NODE, WIMPY_LAPTOP_B, 8)
    query = section54_join(0.10, 0.01)
    curve = explorer.sweep_sizes(query, sizes=[8, 6, 4])
    assert [p.label for p in curve] == ["8B", "6B", "4B"]
    # Homogeneous size-sweep points carry single-group clusters (no empty
    # Wimpy group), exactly as the pre-delegation explorer built them.
    for point in curve:
        assert len(point.cluster.groups) == 1
        assert point.cluster.num_wimpy == 0
