"""Query-granularity fan-out: per-entry memoization, dedupe, pool reuse.

The engine's unit of evaluation, memoization, and dispatch is
(candidate x query entry).  These tests pin the redesign's promises:
suites reuse member-join cache rows (and vice versa), identical tasks
dedupe across candidates, the per-entry parallel path is bit-identical
to serial, and the persistent worker pool survives across ``search()``
calls.
"""

import pytest

from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.search import (
    DesignGrid,
    DesignSpaceSearch,
    EvaluationCache,
    SimulatorEvaluator,
)
from repro.search.evaluators import evaluate_entry
from repro.search.grid import DesignCandidate
from repro.workloads.protocol import ArrivalMix, SingleJoin, entry_cache_key
from repro.workloads.queries import q3_join, section54_join
from repro.workloads.suite import SuiteEntry, WorkloadSuite


def paper_grid(size=8):
    return DesignGrid.paper_axis(CLUSTER_V_NODE, WIMPY_LAPTOP_B, size)


def mixed_suite():
    return WorkloadSuite(
        name="nightly",
        entries=(
            SuiteEntry(section54_join(0.01, 0.10), weight=3.0),
            SuiteEntry(section54_join(0.10, 0.02), weight=1.0),
        ),
    )


class TestPerEntryMemoization:
    def test_suite_reuses_member_join_cache(self):
        """A suite search after a single-join search performs zero fresh
        evaluations for the shared entry (the redesign's headline)."""
        shared = section54_join(0.01, 0.10)
        fresh = section54_join(0.10, 0.02)
        engine = DesignSpaceSearch()
        single = engine.search(paper_grid(), shared)
        assert single.query_evaluations == 9

        suite = WorkloadSuite.of("pair", shared, fresh)
        result = engine.search(paper_grid(), suite)
        # only the new member costs anything: 9 tasks, not 18
        assert result.query_evaluations == 9
        assert result.evaluations == 9

    def test_join_search_reuses_suite_entries(self):
        """Sharing works in both directions: member entries cached by a
        suite sweep serve a later single-join search for free."""
        shared = section54_join(0.01, 0.10)
        engine = DesignSpaceSearch()
        engine.search(paper_grid(), WorkloadSuite.of("solo-suite", shared))
        result = engine.search(paper_grid(), shared)
        assert result.query_evaluations == 0
        assert result.evaluations == 0
        assert result.cache_hits == 9

    def test_overlapping_mixes_share_computation(self):
        """Two mixes sharing most member joins share most evaluations —
        the many-query x many-config regime the redesign targets."""
        queries = [q3_join(100, 0.01 * (i + 1), 0.05) for i in range(5)]
        first = WorkloadSuite.of("mix-a", *queries[:4])
        second = WorkloadSuite.of("mix-b", *queries[1:])  # shares 3 of 4
        engine = DesignSpaceSearch()
        a = engine.search(paper_grid(), first)
        b = engine.search(paper_grid(), second)
        assert a.query_evaluations == 4 * 9
        assert b.query_evaluations == 1 * 9  # only the unshared member

    def test_weights_do_not_partition_entry_rows(self):
        """The same join at weight 1 and weight 5 shares one entry row —
        weights apply at aggregation, not evaluation."""
        query = section54_join(0.01, 0.10)
        light = WorkloadSuite(name="light", entries=(SuiteEntry(query, 1.0),))
        heavy = WorkloadSuite(name="heavy", entries=(SuiteEntry(query, 5.0),))
        engine = DesignSpaceSearch()
        engine.search(paper_grid(), light)
        result = engine.search(paper_grid(), heavy)
        assert result.query_evaluations == 0

    def test_aggregate_fast_path_still_serves_warm_sweeps(self):
        engine = DesignSpaceSearch()
        first = engine.search(paper_grid(), mixed_suite())
        hits_before = engine.cache.hits
        second = engine.search(paper_grid(), mixed_suite())
        # one aggregate lookup per design, no per-entry traffic
        assert engine.cache.hits == hits_before + 9
        assert second.points == first.points

    def test_entry_cache_key_is_the_single_join_key(self):
        query = section54_join()
        assert entry_cache_key(query) == SingleJoin(query).cache_key()


class TestDedupeAcrossCandidates:
    def test_same_key_candidates_evaluate_once(self):
        base = dict(
            beefy=CLUSTER_V_NODE, wimpy=WIMPY_LAPTOP_B, num_beefy=4, num_wimpy=4
        )
        twins = [DesignCandidate(label="a", **base), DesignCandidate(label="b", **base)]
        result = DesignSpaceSearch().search(twins, section54_join())
        assert result.query_evaluations == 1  # deduped across candidates
        assert result.evaluations == 2  # both designs drew on the fresh task
        a, b = result.points
        assert (a.label, b.label) == ("a", "b")
        assert (a.time_s, a.energy_j) == (b.time_s, b.energy_j)

    def test_dedupe_applies_to_suite_entries_too(self):
        base = dict(
            beefy=CLUSTER_V_NODE, wimpy=WIMPY_LAPTOP_B, num_beefy=4, num_wimpy=4
        )
        twins = [DesignCandidate(label="a", **base), DesignCandidate(label="b", **base)]
        result = DesignSpaceSearch().search(twins, mixed_suite())
        assert result.query_evaluations == 2  # one per unique member join
        assert result.points[0].time_s == result.points[1].time_s

    @pytest.mark.parametrize("workers", [1, 2])
    def test_dedupe_property_on_duplicated_grids(self, workers):
        """K copies of a grid cost exactly one grid's worth of tasks."""
        grid_points = paper_grid().candidate_list()
        copies = [
            DesignCandidate(
                label=f"{c.label}|copy{n}",
                beefy=c.beefy,
                wimpy=c.wimpy,
                num_beefy=c.num_beefy,
                num_wimpy=c.num_wimpy,
            )
            for n in range(3)
            for c in grid_points
        ]
        result = DesignSpaceSearch(workers=workers).search(copies, section54_join())
        assert result.query_evaluations == len(grid_points)
        for offset in range(len(grid_points)):
            runs = result.points[offset :: len(grid_points)]
            assert len({(p.time_s, p.energy_j, p.feasible) for p in runs}) == 1


class TestQueryGranularParallelism:
    def test_serial_equals_parallel_at_entry_granularity(self):
        """Multi-entry workloads fan out per entry, results bit-identical."""
        mix = ArrivalMix.from_trace(
            "trace",
            [(section54_join(0.01, 0.10), 0.0), (section54_join(0.10, 0.02), 1.0)],
        )
        serial = DesignSpaceSearch(workers=1, cache=EvaluationCache()).search(
            paper_grid(), mix
        )
        parallel = DesignSpaceSearch(
            workers=3, cache=EvaluationCache(), min_dispatch_tasks=1
        ).search(paper_grid(), mix)
        assert parallel.workers_used == 3
        assert parallel.query_evaluations == serial.query_evaluations == 18
        assert serial.points == parallel.points

    def test_parallelism_granularity_exceeds_the_candidate_count(self):
        """N candidates x K entries outnumber N: a 2-candidate suite search
        can still use more than 2 workers."""
        candidates = paper_grid().candidate_list()[:2]
        suite = WorkloadSuite.of(
            "wide", *[q3_join(100, 0.01 * (i + 1), 0.05) for i in range(4)]
        )
        result = DesignSpaceSearch(
            workers=4, cache=EvaluationCache(), min_dispatch_tasks=1
        ).search(candidates, suite)
        assert result.query_evaluations == 8
        assert result.workers_used == 4  # > the 2 candidates

    def test_simulator_batch_equals_per_query_records(self):
        """The amortized simulator batch returns exactly the per-query
        results, infeasible entries included."""
        evaluator = SimulatorEvaluator()
        candidate = DesignCandidate(
            label="1B,3W",
            beefy=CLUSTER_V_NODE,
            wimpy=WIMPY_LAPTOP_B,
            num_beefy=1,
            num_wimpy=3,
        )
        queries = [
            q3_join(100, 0.05, 0.05),
            section54_join(0.10, 0.10),  # 1 Beefy cannot hold this table
            q3_join(100, 0.01, 0.10),
        ]
        batch = evaluator.evaluate_query_batch(candidate, queries)
        solo = [evaluate_entry(evaluator, candidate, query) for query in queries]
        assert batch == solo
        assert [record.feasible for record in batch] == [True, False, True]


class TestPoolLifecycle:
    def test_pool_is_lazy_and_reused_across_searches(self):
        engine = DesignSpaceSearch(
            workers=2, cache=EvaluationCache(), min_dispatch_tasks=1
        )
        assert not engine.pool_active
        engine.search(paper_grid(), section54_join(0.01, 0.10))
        assert engine.pool_active
        pool = engine._pool
        engine.search(paper_grid(), section54_join(0.10, 0.02))
        assert engine._pool is pool  # same pool, no respawn
        engine.close()

    def test_close_releases_and_next_search_recreates(self):
        engine = DesignSpaceSearch(
            workers=2, cache=EvaluationCache(), min_dispatch_tasks=1
        )
        engine.search(paper_grid(), section54_join(0.01, 0.10))
        engine.close()
        assert not engine.pool_active
        engine.close()  # idempotent
        result = engine.search(paper_grid(), section54_join(0.10, 0.02))
        assert result.workers_used == 2
        assert engine.pool_active
        engine.close()

    def test_context_manager_closes_the_pool(self):
        with DesignSpaceSearch(
            workers=2, cache=EvaluationCache(), min_dispatch_tasks=1
        ) as engine:
            engine.search(paper_grid(), section54_join(0.01, 0.10))
            assert engine.pool_active
        assert not engine.pool_active

    def test_serial_engines_never_spawn_a_pool(self):
        engine = DesignSpaceSearch(workers=1)
        engine.search(paper_grid(), section54_join())
        assert not engine.pool_active

    def test_cached_resweep_does_not_touch_the_pool(self):
        engine = DesignSpaceSearch(
            workers=2, cache=EvaluationCache(), min_dispatch_tasks=1
        )
        engine.search(paper_grid(), section54_join())
        engine.close()
        again = engine.search(paper_grid(), section54_join())
        assert again.evaluations == 0
        assert not engine.pool_active  # nothing to dispatch, no respawn
