"""Grid enumeration: counts, labels, DVFS application, validation."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.pstore.plans import ExecutionMode
from repro.search.grid import DesignCandidate, DesignGrid, query_key, unique_labels
from repro.workloads.queries import section54_join


PAIR = (CLUSTER_V_NODE, WIMPY_LAPTOP_B)


class TestDesignGrid:
    def test_paper_axis_is_the_section54_space(self):
        grid = DesignGrid.paper_axis(CLUSTER_V_NODE, WIMPY_LAPTOP_B, 8)
        candidates = grid.candidate_list()
        assert len(grid) == 9
        assert [c.label for c in candidates][:2] == ["8B,0W", "7B,1W"]
        assert candidates[-1].label == "0B,8W"
        assert all(c.num_beefy + c.num_wimpy == 8 for c in candidates)

    def test_len_matches_enumeration_on_full_product(self):
        grid = DesignGrid(
            node_pairs=(PAIR, (CLUSTER_V_NODE, CLUSTER_V_NODE)),
            cluster_sizes=(4, 6),
            frequency_factors=(1.0, 0.8),
            modes=(None, ExecutionMode.HOMOGENEOUS),
        )
        candidates = grid.candidate_list()
        assert len(candidates) == len(grid) == 2 * (5 + 7) * 2 * 2

    def test_labels_are_unique_across_all_dimensions(self):
        grid = DesignGrid(
            node_pairs=(PAIR,),
            cluster_sizes=(4, 8),
            frequency_factors=(1.0, 0.5),
            modes=(None, ExecutionMode.HOMOGENEOUS),
        )
        candidates = grid.candidate_list()
        assert len({c.label for c in candidates}) == len(candidates)
        unique_labels(candidates)  # should not raise

    def test_mix_step_keeps_both_endpoints(self):
        grid = DesignGrid(node_pairs=(PAIR,), cluster_sizes=(5,), mix_step=2)
        beefy_counts = [c.num_beefy for c in grid.candidates()]
        assert beefy_counts == [5, 3, 1, 0]  # all-Wimpy endpoint forced in

    def test_dvfs_factor_scales_the_node_specs(self):
        grid = DesignGrid(
            node_pairs=(PAIR,), cluster_sizes=(2,), frequency_factors=(0.5,)
        )
        candidate = grid.candidate_list()[0]
        assert candidate.effective_beefy.cpu_bandwidth_mbps == pytest.approx(
            0.5 * CLUSTER_V_NODE.cpu_bandwidth_mbps
        )
        assert candidate.effective_wimpy.cpu_bandwidth_mbps == pytest.approx(
            0.5 * WIMPY_LAPTOP_B.cpu_bandwidth_mbps
        )
        # ... but unity keeps the original objects untouched
        plain = DesignCandidate(
            label="x", beefy=CLUSTER_V_NODE, wimpy=WIMPY_LAPTOP_B, num_beefy=1, num_wimpy=1
        )
        assert plain.effective_beefy is CLUSTER_V_NODE

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(node_pairs=(), cluster_sizes=(8,)),
            dict(node_pairs=(PAIR,), cluster_sizes=()),
            dict(node_pairs=(PAIR,), cluster_sizes=(0,)),
            dict(node_pairs=(PAIR,), cluster_sizes=(8, 8)),
            dict(node_pairs=(PAIR,), cluster_sizes=(8,), frequency_factors=(1.5,)),
            dict(node_pairs=(PAIR,), cluster_sizes=(8,), frequency_factors=()),
            dict(node_pairs=(PAIR,), cluster_sizes=(8,), modes=()),
            dict(node_pairs=(PAIR,), cluster_sizes=(8,), mix_step=0),
            dict(node_pairs=(PAIR,), cluster_sizes=(8,), beefy_frequency_factors=()),
            dict(
                node_pairs=(PAIR,),
                cluster_sizes=(8,),
                beefy_frequency_factors=(1.2,),
            ),
            dict(
                node_pairs=(PAIR,),
                cluster_sizes=(8,),
                wimpy_frequency_factors=(0.0,),
            ),
        ],
    )
    def test_invalid_grids_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            DesignGrid(**kwargs)


class TestPerTypeDvfsAxes:
    def test_axes_enter_the_cross_product(self):
        grid = DesignGrid(
            node_pairs=(PAIR,),
            cluster_sizes=(4,),
            beefy_frequency_factors=(1.0, 0.8),
            wimpy_frequency_factors=(1.0, 0.6),
        )
        candidates = grid.candidate_list()
        assert len(candidates) == len(grid) == 5 * 2 * 2
        states = {
            (c.effective_beefy_frequency, c.effective_wimpy_frequency)
            for c in candidates
        }
        assert states == {(1.0, 1.0), (1.0, 0.6), (0.8, 1.0), (0.8, 0.6)}

    def test_asymmetric_states_are_labeled_and_unique(self):
        grid = DesignGrid(
            node_pairs=(PAIR,),
            cluster_sizes=(2,),
            beefy_frequency_factors=(1.0, 0.8),
            wimpy_frequency_factors=(0.6,),
        )
        labels = [c.label for c in grid.candidates()]
        unique_labels(grid.candidate_list())  # should not raise
        assert "2B,0W|phiB0.8|phiW0.6" in labels
        assert "2B,0W|phiB1|phiW0.6" in labels

    def test_single_unity_override_adds_no_label_noise(self):
        grid = DesignGrid(
            node_pairs=(PAIR,),
            cluster_sizes=(2,),
            beefy_frequency_factors=(1.0,),
        )
        assert [c.label for c in grid.candidates()] == ["2B,0W", "1B,1W", "0B,2W"]

    def test_per_type_override_beats_the_cluster_factor(self):
        grid = DesignGrid(
            node_pairs=(PAIR,),
            cluster_sizes=(2,),
            frequency_factors=(0.5,),
            beefy_frequency_factors=(0.9,),
        )
        candidate = grid.candidate_list()[0]
        assert candidate.effective_beefy_frequency == 0.9
        assert candidate.effective_wimpy_frequency == 0.5  # follows cluster-wide

    def test_shadowed_cluster_axis_rejected(self):
        """Both per-type axes override the cluster-wide factor on every
        candidate, so a non-trivial frequency_factors axis would only
        enumerate duplicate hardware states."""
        with pytest.raises(ConfigurationError, match="shadowed"):
            DesignGrid(
                node_pairs=(PAIR,),
                cluster_sizes=(4,),
                frequency_factors=(1.0, 0.8),
                beefy_frequency_factors=(0.9,),
                wimpy_frequency_factors=(0.9,),
            )

    def test_equivalent_states_share_a_cache_key(self):
        """A cluster-wide factor and the same value as per-type overrides
        describe the same hardware, so grid points agree on the key."""
        wide = DesignGrid(
            node_pairs=(PAIR,), cluster_sizes=(2,), frequency_factors=(0.8,)
        )
        split = DesignGrid(
            node_pairs=(PAIR,),
            cluster_sizes=(2,),
            beefy_frequency_factors=(0.8,),
            wimpy_frequency_factors=(0.8,),
        )
        for a, b in zip(wide.candidate_list(), split.candidate_list()):
            assert a.key() == b.key()


class TestDesignCandidate:
    def test_cluster_mirrors_the_mix(self):
        candidate = DesignCandidate(
            label="3B,5W", beefy=CLUSTER_V_NODE, wimpy=WIMPY_LAPTOP_B,
            num_beefy=3, num_wimpy=5,
        )
        cluster = candidate.cluster()
        assert cluster.name == "3B,5W"
        assert (cluster.num_beefy, cluster.num_wimpy) == (3, 5)

    def test_homogeneous_cluster_has_no_wimpy_group(self):
        candidate = DesignCandidate(
            label="4B", beefy=CLUSTER_V_NODE, wimpy=WIMPY_LAPTOP_B,
            num_beefy=4, num_wimpy=0, homogeneous=True,
        )
        assert len(candidate.cluster().groups) == 1

    def test_key_ignores_label_but_not_geometry(self):
        base = dict(beefy=CLUSTER_V_NODE, wimpy=WIMPY_LAPTOP_B, num_beefy=2, num_wimpy=2)
        a = DesignCandidate(label="a", **base)
        b = DesignCandidate(label="b", **base)
        c = DesignCandidate(label="c", **{**base, "num_beefy": 3})
        d = DesignCandidate(label="d", **{**base, "frequency_factor": 0.8})
        assert a.key() == b.key()
        assert a.key() != c.key()
        assert a.key() != d.key()

    def test_invalid_candidates_rejected(self):
        with pytest.raises(ConfigurationError):
            DesignCandidate(
                label="none", beefy=CLUSTER_V_NODE, wimpy=WIMPY_LAPTOP_B,
                num_beefy=0, num_wimpy=0,
            )
        with pytest.raises(ConfigurationError):
            DesignCandidate(
                label="bad-phi", beefy=CLUSTER_V_NODE, wimpy=WIMPY_LAPTOP_B,
                num_beefy=1, num_wimpy=0, frequency_factor=0.0,
            )
        with pytest.raises(ConfigurationError):
            DesignCandidate(
                label="homo-wimpy", beefy=CLUSTER_V_NODE, wimpy=WIMPY_LAPTOP_B,
                num_beefy=1, num_wimpy=1, homogeneous=True,
            )

    def test_duplicate_labels_detected(self):
        candidate = DesignCandidate(
            label="dup", beefy=CLUSTER_V_NODE, wimpy=WIMPY_LAPTOP_B,
            num_beefy=1, num_wimpy=0,
        )
        with pytest.raises(ConfigurationError, match="dup"):
            unique_labels([candidate, candidate])


def test_query_key_distinguishes_workloads():
    assert query_key(section54_join()) == query_key(section54_join())
    assert query_key(section54_join(0.10)) != query_key(section54_join(0.05))
