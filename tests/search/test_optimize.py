"""Adaptive optimizers: determinism, cache compatibility, acceptance.

The acceptance bar for the subsystem (ISSUE 4): on the 216-design
reference space, seeded SuccessiveHalving reaches the exhaustive grid's
knee design with at most 40% of the grid's fresh evaluations — verified
through the shared EvaluationCache counters — and every optimizer
evaluation is bit-identical to a grid evaluation of the same candidate.
"""

import struct

import pytest

from repro.errors import ConfigurationError
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.search import (
    DesignGrid,
    DesignSpaceSearch,
    EvaluationCache,
    LocalSearch,
    OptimizationLoop,
    RandomSearch,
    RangeAxis,
    SearchSpace,
    SuccessiveHalving,
    build_optimizer,
)
from repro.search.grid import DesignCandidate
from repro.study import OptimizationResult, Study, StudyResult
from repro.workloads.queries import q3_join, section54_join
from repro.workloads.suite import WorkloadSuite

#: the acceptance-criteria space: 216 designs (6 sizes x mixes x 3 DVFS)
REFERENCE_GRID = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(6, 8, 10, 12, 14, 16),
    frequency_factors=(1.0, 0.8, 0.6),
)

SMALL_GRID = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(6, 8),
    frequency_factors=(1.0, 0.8),
)


def nightly_suite(members: int = 4) -> WorkloadSuite:
    return WorkloadSuite.of(
        "nightly", *[q3_join(100, 0.01 * (i + 1), 0.05) for i in range(members)]
    )


def record_bytes(point):
    return struct.pack("2d", point.time_s, point.energy_j)


class TestAcceptance:
    """The ISSUE 4 acceptance criteria, end to end."""

    def test_successive_halving_finds_the_grid_knee_within_budget(self):
        suite = nightly_suite()
        grid_engine = DesignSpaceSearch(cache=EvaluationCache())
        exhaustive = grid_engine.search(REFERENCE_GRID, suite)
        assert exhaustive.query_evaluations == 216 * 4  # cold-cache grid cost

        sha_cache = EvaluationCache()
        sha_engine = DesignSpaceSearch(cache=sha_cache)
        result = OptimizationLoop(
            sha_engine,
            SearchSpace.from_grid(REFERENCE_GRID),
            suite,
            SuccessiveHalving(),
            seed=0,
        ).run()

        # <= 40% of the grid's fresh evaluations, counted two ways: the
        # result's own budget currency and the shared cache's counters
        # (every fresh evaluation is exactly one per-entry cache miss
        # that was then written back).
        budget_cap = 0.4 * exhaustive.query_evaluations
        assert result.fresh_query_evaluations <= budget_cap
        fresh_entry_rows = sum(
            1 for key in sha_cache._entries if key[1][0] == "join"
        )
        assert fresh_entry_rows == result.fresh_query_evaluations
        assert fresh_entry_rows <= budget_cap

        # the exhaustive knee design is recovered exactly
        assert result.knee().candidate.key() == exhaustive.knee().candidate.key()
        assert result.knee().label == exhaustive.knee().label

    def test_optimizer_evaluations_are_bit_identical_to_grid_evaluations(self):
        suite = nightly_suite()
        exhaustive = DesignSpaceSearch(cache=EvaluationCache()).search(
            REFERENCE_GRID, suite
        )
        by_key = {p.candidate.key(): p for p in exhaustive.points}
        result = OptimizationLoop(
            DesignSpaceSearch(cache=EvaluationCache()),
            SearchSpace.from_grid(REFERENCE_GRID),
            suite,
            SuccessiveHalving(),
            seed=0,
        ).run()
        assert result.points  # the archive holds the final rung
        for point in result.points:
            twin = by_key[point.candidate.key()]
            assert record_bytes(point) == record_bytes(twin)
            assert point.feasible == twin.feasible

    def test_optimizer_run_warms_a_later_grid_sweep(self):
        """Cache-key compatibility, measured with the shared cache: the
        grid sweep pays only for what the optimizer did not evaluate."""
        suite = nightly_suite()
        study = Study(REFERENCE_GRID).with_workload(suite)
        optimized = study.optimize(optimizer="successive-halving", seed=0)
        sweep = study.run()  # same engine, same cache
        assert (
            sweep.search.query_evaluations
            == 216 * 4 - optimized.fresh_query_evaluations
        )
        # and the other direction: everything is warm now
        assert study.run().search.query_evaluations == 0


class TestDeterminism:
    def test_same_seed_same_trajectory_and_archive(self):
        suite = nightly_suite()
        runs = [
            Study(REFERENCE_GRID)
            .with_workload(suite)
            .optimize(optimizer="successive-halving", seed=7)
            for _ in range(2)
        ]
        assert runs[0].trajectory == runs[1].trajectory
        assert [p.label for p in runs[0].points] == [
            p.label for p in runs[1].points
        ]
        assert [record_bytes(p) for p in runs[0].points] == [
            record_bytes(p) for p in runs[1].points
        ]

    @pytest.mark.parametrize("optimizer", ["random", "local"])
    def test_same_seed_same_candidates_for_sampling_optimizers(self, optimizer):
        results = [
            Study(SMALL_GRID)
            .with_workload(section54_join())
            .optimize(budget=12, optimizer=optimizer, seed=3, batch_size=4)
            for _ in range(2)
        ]
        assert [p.label for p in results[0].points] == [
            p.label for p in results[1].points
        ]
        assert results[0].trajectory == results[1].trajectory

    def test_reused_optimizer_instance_resets_between_runs(self):
        """setup() must clear sampler state: a second run with the same
        instance and seed is identical to the first, not empty
        (regression)."""
        optimizer = RandomSearch(batch_size=4)
        runs = [
            Study(SMALL_GRID)
            .with_workload(section54_join())
            .optimize(budget=12, optimizer=optimizer, seed=3)
            for _ in range(2)
        ]
        assert len(runs[1].points) == len(runs[0].points) > 0
        assert [p.label for p in runs[0].points] == [
            p.label for p in runs[1].points
        ]
        refiner = LocalSearch(batch_size=4)
        refined = [
            Study(SMALL_GRID)
            .with_workload(section54_join())
            .optimize(budget=12, optimizer=refiner, seed=3)
            for _ in range(2)
        ]
        assert [p.label for p in refined[0].points] == [
            p.label for p in refined[1].points
        ]

    def test_serial_equals_parallel(self):
        suite = nightly_suite()
        serial = (
            Study(REFERENCE_GRID)
            .with_workload(suite)
            .optimize(optimizer="successive-halving", seed=5)
        )
        parallel = (
            Study(REFERENCE_GRID)
            .with_workload(suite)
            .with_workers(2, min_dispatch_tasks=1)
            .optimize(optimizer="successive-halving", seed=5)
        )
        assert parallel.search.workers_used > 1
        assert [p.label for p in serial.points] == [
            p.label for p in parallel.points
        ]
        assert serial.points == parallel.points
        assert serial.trajectory == parallel.trajectory


class TestStoppingRules:
    def test_budget_exhaustion_stops_and_is_reported(self):
        result = (
            Study(REFERENCE_GRID)
            .with_workload(nightly_suite())
            .optimize(budget=100, optimizer="random", seed=6)
        )
        assert result.stop_reason == "budget-exhausted"
        assert result.fresh_query_evaluations >= 100
        # overshoot is bounded by one batch (16 candidates x 4 entries)
        assert result.fresh_query_evaluations <= 100 + 16 * 4

    def test_patience_convergence_stops(self):
        result = (
            Study(REFERENCE_GRID)
            .with_workload(nightly_suite())
            .optimize(optimizer="random", seed=4, patience=3)
        )
        assert result.stop_reason == "converged"
        assert len(result.points) < len(REFERENCE_GRID)

    def test_open_ended_optimizer_without_stop_rule_rejected(self):
        with pytest.raises(ConfigurationError, match="budget"):
            Study(SMALL_GRID).with_workload(section54_join()).optimize(
                optimizer="random"
            )

    def test_successive_halving_terminates_on_its_own(self):
        result = (
            Study(SMALL_GRID)
            .with_workload(nightly_suite(2))
            .optimize(optimizer="successive-halving", seed=0)
        )
        assert result.stop_reason == "optimizer-finished"


class TestSuccessiveHalving:
    def test_rung_schedule_subsamples_then_promotes(self):
        result = (
            Study(REFERENCE_GRID)
            .with_workload(nightly_suite())
            .optimize(optimizer="successive-halving", seed=0)
        )
        fidelities = [point.fidelity for point in result.trajectory]
        assert fidelities == [0.25, 0.5, 1.0]  # 1, 2, then all 4 entries
        pools = [point.candidates for point in result.trajectory]
        assert pools == [216, 72, 24]  # eta=3 cuts
        # only the full-fidelity rung populates the archive
        assert [point.archive_size for point in result.trajectory] == [0, 0, 24]

    def test_single_entry_workload_collapses_to_one_full_rung(self):
        result = (
            Study(SMALL_GRID)
            .with_workload(section54_join())
            .optimize(optimizer="successive-halving", seed=0)
        )
        assert len(result.trajectory) == 1
        assert result.trajectory[0].fidelity == 1.0
        assert len(result.points) == len(SMALL_GRID)  # races the whole space

    def test_initial_bounds_the_starting_pool(self):
        result = (
            Study(REFERENCE_GRID)
            .with_workload(section54_join())
            .optimize(optimizer="successive-halving", seed=1, initial=30)
        )
        assert result.trajectory[0].candidates == 30

    def test_rungs_reuse_entries_across_promotions(self):
        """A promoted candidate pays only for the entries its rung adds:
        216*1 + 72*1 + 24*2 fresh tasks, never 216+144+96."""
        result = (
            Study(REFERENCE_GRID)
            .with_workload(nightly_suite())
            .optimize(optimizer="successive-halving", seed=0)
        )
        spent = [p.fresh_query_evaluations for p in result.trajectory]
        assert spent == [216, 216 + 72, 216 + 72 + 48]


class TestOptimizers:
    def test_random_search_never_repeats_a_design(self):
        result = (
            Study(REFERENCE_GRID)
            .with_workload(section54_join())
            .optimize(budget=60, optimizer="random", seed=2)
        )
        keys = [p.candidate.key() for p in result.points]
        assert len(keys) == len(set(keys))

    @pytest.mark.parametrize("seed", [0, 6])  # 6: rejection-sampler regression
    def test_random_search_exhausts_a_finite_space_and_finishes(self, seed):
        """Finite spaces are covered exactly before the optimizer quits —
        the sampler must not declare exhaustion with designs unseen."""
        for grid in (SMALL_GRID, REFERENCE_GRID):
            result = (
                Study(grid)
                .with_workload(section54_join())
                .optimize(budget=10_000, optimizer="random", seed=seed)
            )
            assert result.stop_reason == "optimizer-finished"
            assert len(result.points) == len(grid)

    def test_local_search_stays_inside_the_space(self):
        grid_keys = {c.key() for c in REFERENCE_GRID.candidate_list()}
        result = (
            Study(REFERENCE_GRID)
            .with_workload(section54_join())
            .optimize(budget=60, optimizer="local", seed=3, batch_size=8)
        )
        assert all(p.candidate.key() in grid_keys for p in result.points)

    def test_local_search_refines_on_an_open_space(self):
        space = SearchSpace(
            node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
            cluster_sizes=RangeAxis("cluster_size", 4, 24, integer=True),
            frequency_factors=RangeAxis("frequency_factor", 0.5, 1.0),
        )
        result = (
            Study(space)
            .with_workload(section54_join())
            .optimize(budget=80, optimizer="local", seed=3)
        )
        assert result.stop_reason == "budget-exhausted"
        assert result.pareto_frontier()
        # open spaces cannot be run exhaustively
        with pytest.raises(ConfigurationError, match="optimize"):
            Study(space).with_workload(section54_join()).run()

    def test_build_optimizer_registry(self):
        assert isinstance(build_optimizer("random"), RandomSearch)
        assert isinstance(build_optimizer("sha"), SuccessiveHalving)
        assert isinstance(build_optimizer("evolutionary"), LocalSearch)
        instance = SuccessiveHalving(eta=4)
        assert build_optimizer(instance) is instance
        with pytest.raises(ConfigurationError, match="unknown optimizer"):
            build_optimizer("annealing")
        with pytest.raises(ConfigurationError, match="configure"):
            build_optimizer(instance, eta=2)


class TestEngineBatchHook:
    def test_duplicate_keys_collapse(self):
        base = dict(
            beefy=CLUSTER_V_NODE, wimpy=WIMPY_LAPTOP_B, num_beefy=4, num_wimpy=4
        )
        twins = [
            DesignCandidate(label="a", **base),
            DesignCandidate(label="b", **base),
        ]
        result = DesignSpaceSearch().evaluate_batch(twins, section54_join())
        assert len(result.points) == 1
        assert result.points[0].label == "a"

    def test_label_collisions_between_distinct_designs_are_suffixed(self):
        base = dict(beefy=CLUSTER_V_NODE, wimpy=WIMPY_LAPTOP_B)
        clash = [
            DesignCandidate(label="x", num_beefy=4, num_wimpy=4, **base),
            DesignCandidate(label="x", num_beefy=2, num_wimpy=6, **base),
        ]
        result = DesignSpaceSearch().evaluate_batch(clash, section54_join())
        assert [p.label for p in result.points] == ["x", "x~2"]


class TestOptimizationResultSurface:
    @pytest.fixture(scope="class")
    def result(self) -> OptimizationResult:
        return (
            Study(REFERENCE_GRID)
            .with_workload(nightly_suite())
            .with_reference("16B,0W|n16|phi1")
            .optimize(optimizer="successive-halving", seed=0)
        )

    def test_is_a_study_result(self, result):
        assert isinstance(result, StudyResult)
        assert result.knee().label in {p.label for p in result.pareto_frontier()}
        assert result.best_under_sla(result.points[0].time_s * 10).feasible
        assert result.curve().reference.label == "16B,0W|n16|phi1"

    def test_trajectory_exports(self, result):
        rows = result.trajectory_rows()
        assert len(rows) == len(result.trajectory) == 3
        assert rows[0]["fresh_query_evaluations"] == 216
        assert rows[-1]["knee_label"] == result.knee().label
        from repro.analysis.export import trajectory_to_csv

        csv_text = trajectory_to_csv(result)
        assert csv_text.splitlines()[0].startswith("batch,rung,fidelity")
        assert len(csv_text.splitlines()) == 4

    def test_json_export_extends_the_search_payload(self, result):
        import json

        payload = json.loads(result.to_json())
        assert payload["optimizer"] == "successive-halving"
        assert payload["stop_reason"] == "optimizer-finished"
        assert payload["num_points"] == len(result.points)
        assert len(payload["trajectory"]) == 3
        assert payload["knee"] == result.knee().label
