"""Evaluation-cache behavior: hits, misses, stats, key partitioning."""

from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.search.cache import EvaluationCache
from repro.search.engine import DesignSpaceSearch
from repro.search.evaluators import EvaluatedDesign, ModelEvaluator
from repro.search.grid import DesignCandidate, DesignGrid
from repro.workloads.queries import section54_join


def make_point(label="2B,0W"):
    candidate = DesignCandidate(
        label=label, beefy=CLUSTER_V_NODE, wimpy=WIMPY_LAPTOP_B,
        num_beefy=2, num_wimpy=0,
    )
    return EvaluatedDesign(candidate=candidate, time_s=1.0, energy_j=2.0)


class TestEvaluationCache:
    def test_miss_then_hit(self):
        cache = EvaluationCache()
        assert cache.get(("k",)) is None
        cache.put(("k",), make_point())
        assert cache.get(("k",)).time_s == 1.0
        assert (cache.hits, cache.misses, len(cache)) == (1, 1, 1)

    def test_contains_does_not_touch_counters(self):
        cache = EvaluationCache()
        cache.put(("k",), make_point())
        assert ("k",) in cache and ("other",) not in cache
        assert (cache.hits, cache.misses) == (0, 0)

    def test_clear_resets_everything(self):
        cache = EvaluationCache()
        cache.put(("k",), make_point())
        cache.get(("k",))
        cache.clear()
        assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)

    def test_stats_hit_rate(self):
        cache = EvaluationCache()
        assert cache.stats.hit_rate == 0.0
        cache.put(("k",), make_point())
        cache.get(("k",))
        cache.get(("missing",))
        assert cache.stats.hit_rate == 0.5
        assert cache.stats.lookups == 2


class TestCacheThroughEngine:
    def test_resweep_performs_zero_evaluations(self):
        grid = DesignGrid.paper_axis(CLUSTER_V_NODE, WIMPY_LAPTOP_B, 8)
        search = DesignSpaceSearch()
        first = search.search(grid, section54_join())
        second = search.search(grid, section54_join())
        assert first.evaluations == len(grid)
        assert second.evaluations == 0
        assert second.cache_hits == len(grid)
        assert second.points == first.points

    def test_infeasible_points_are_cached_too(self):
        grid = DesignGrid.paper_axis(CLUSTER_V_NODE, WIMPY_LAPTOP_B, 8)
        search = DesignSpaceSearch()
        first = search.search(grid, section54_join(0.10, 0.10))
        assert first.infeasible_points  # 1B,7W and 0B,8W cannot hold the table
        second = search.search(grid, section54_join(0.10, 0.10))
        assert second.evaluations == 0

    def test_cache_partitioned_by_query(self):
        grid = DesignGrid.paper_axis(CLUSTER_V_NODE, WIMPY_LAPTOP_B, 8)
        search = DesignSpaceSearch()
        search.search(grid, section54_join(0.10))
        other = search.search(grid, section54_join(0.05))
        assert other.evaluations == len(grid)  # different workload: no reuse

    def test_cache_partitioned_by_evaluator_settings(self):
        grid = DesignGrid.paper_axis(CLUSTER_V_NODE, WIMPY_LAPTOP_B, 8)
        shared = EvaluationCache()
        DesignSpaceSearch(evaluator=ModelEvaluator(), cache=shared).search(
            grid, section54_join()
        )
        warm = DesignSpaceSearch(
            evaluator=ModelEvaluator(warm_cache=True), cache=shared
        ).search(grid, section54_join())
        assert warm.evaluations == len(grid)  # different fingerprint: no reuse

    def test_shared_cache_reused_across_engines(self):
        grid = DesignGrid.paper_axis(CLUSTER_V_NODE, WIMPY_LAPTOP_B, 8)
        shared = EvaluationCache()
        DesignSpaceSearch(cache=shared).search(grid, section54_join())
        result = DesignSpaceSearch(cache=shared).search(grid, section54_join())
        assert result.evaluations == 0

    def test_cache_partitioned_by_power_model(self):
        """Specs differing only in power model must not collide (regression)."""
        from repro.hardware.power import PowerLawModel

        hot = CLUSTER_V_NODE.with_overrides(
            power_model=PowerLawModel(coefficient=260.06, exponent=0.2369)
        )
        shared = EvaluationCache()
        query = section54_join()
        base = DesignSpaceSearch(cache=shared).search(
            DesignGrid.paper_axis(CLUSTER_V_NODE, WIMPY_LAPTOP_B, 8), query
        )
        doubled = DesignSpaceSearch(cache=shared).search(
            DesignGrid.paper_axis(hot, WIMPY_LAPTOP_B, 8), query
        )
        assert doubled.evaluations == 9  # no false cache hits
        assert doubled.point("8B,0W").energy_j > base.point("8B,0W").energy_j

    def test_cache_hits_carry_the_requested_labels(self):
        """A hit from a differently-labeled grid is relabeled (regression)."""
        query = section54_join()
        search = DesignSpaceSearch()
        multi = DesignGrid(
            node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),), cluster_sizes=(8, 4)
        )
        search.search(multi, query)  # labels like '8B,0W|n8'
        axis = search.search(DesignGrid.paper_axis(CLUSTER_V_NODE, WIMPY_LAPTOP_B, 8), query)
        assert axis.evaluations == 0  # same geometry: fully cached
        assert [p.label for p in axis.points][:2] == ["8B,0W", "7B,1W"]
        assert axis.point("8B,0W").candidate.label == "8B,0W"

    def test_callable_fingerprints_hold_the_function(self):
        """id() reuse cannot alias two callables in a shared cache."""
        from repro.search.evaluators import CallableEvaluator

        fn_a = lambda cluster, query: (1.0, 1.0)  # noqa: E731
        fn_b = lambda cluster, query: (2.0, 2.0)  # noqa: E731
        a, b = CallableEvaluator(fn_a), CallableEvaluator(fn_b)
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint()[1] is fn_a  # strong reference, not a bare id
