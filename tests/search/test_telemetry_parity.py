"""Telemetry must observe, never perturb: results are bit-identical with
instrumentation on or off, and worker-side counters merge back exactly."""

import pytest

from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.search import DesignGrid, DesignSpaceSearch
from repro.study import Study
from repro.telemetry import capture
from repro.workloads.queries import section54_join
from repro.workloads.suite import WorkloadSuite


def paper_grid():
    return DesignGrid.paper_axis(CLUSTER_V_NODE, WIMPY_LAPTOP_B, 8)


def nightly_suite():
    return WorkloadSuite.of(
        "nightly", section54_join(), section54_join(0.02, 0.02)
    )


def record_view(points):
    return [
        (p.label, p.time_s, p.energy_j, p.edp, p.feasible) for p in points
    ]


def run_study(workers: int, enabled: bool):
    """One cold Study.run inside an isolated registry; returns
    (record view, counters)."""
    with capture(enabled=enabled) as telemetry:
        with Study(
            paper_grid(),
            workload=nightly_suite(),
            workers=workers,
            min_dispatch_tasks=1,
        ) as study:
            result = study.run()
    return record_view(result.points), telemetry.counters


def optimize_study(workers: int, enabled: bool):
    with capture(enabled=enabled) as telemetry:
        with Study(
            paper_grid(),
            workload=nightly_suite(),
            workers=workers,
            min_dispatch_tasks=1,
        ) as study:
            result = study.optimize(budget=12, optimizer="random", seed=3)
    return record_view(result.points), telemetry.counters


def engine_counters(k: str) -> bool:
    """Counters whose location (parent vs worker) depends on dispatch;
    everything else must merge back to the exact serial totals."""
    return k.startswith("search.dispatch")


class TestResultsUnchanged:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_study_run_is_bit_identical_on_vs_off(self, workers):
        off, off_counters = run_study(workers, enabled=False)
        on, on_counters = run_study(workers, enabled=True)
        assert on == off
        assert off_counters == {}  # disabled leaves no trace
        assert on_counters["search.runs"] == 1

    @pytest.mark.parametrize("workers", [1, 2])
    def test_study_optimize_is_bit_identical_on_vs_off(self, workers):
        off, _ = optimize_study(workers, enabled=False)
        on, on_counters = optimize_study(workers, enabled=True)
        assert on == off
        assert on_counters["evaluator.query_evals"] > 0


class TestWorkerMerge:
    def test_parallel_counters_equal_serial_counters(self):
        """Worker-side counts (query evaluations, simulator events) ship
        back in chunk snapshots and must sum to the serial totals."""
        serial_view, serial = run_study(workers=1, enabled=True)
        parallel_view, parallel = run_study(workers=2, enabled=True)
        assert parallel_view == serial_view
        assert {k: v for k, v in serial.items() if not engine_counters(k)} == {
            k: v for k, v in parallel.items() if not engine_counters(k)
        }

    def test_parallel_dispatch_accounting(self):
        _, counters = run_study(workers=2, enabled=True)
        grid_size = len(paper_grid())
        assert counters["search.dispatch.chunks"] >= 1
        # a cold 2-entry suite dispatches one task per (candidate, entry)
        assert counters["search.dispatch.tasks"] == 2 * grid_size
        # misses: one aggregate lookup plus two entry lookups per candidate
        assert counters["cache.miss"] == 3 * grid_size
        assert counters.get("search.dispatch.retries", 0) == 0

    def test_worker_chunk_spans_land_under_dispatch(self):
        with capture() as telemetry:
            engine = DesignSpaceSearch(workers=2, min_dispatch_tasks=1)
            with engine:
                engine.search(paper_grid(), nightly_suite())
        paths = telemetry.spans
        chunk_paths = [p for p in paths if p[-1] == "worker.chunk"]
        assert chunk_paths == [("search", "search.dispatch", "worker.chunk")]
        chunks = telemetry.counter("search.dispatch.chunks")
        assert paths[chunk_paths[0]][0] == chunks

    def test_serial_chunk_retry_keeps_counters_exact(self):
        """The in-process retry of a failed instrumented chunk records
        into an isolated registry — no double count, no stack damage."""
        from repro.search import engine as engine_module

        with capture() as telemetry:
            engine = DesignSpaceSearch(workers=2, min_dispatch_tasks=1)
            with engine:
                original_get_pool = engine._get_pool

                class FailingHandle:
                    def __init__(self, pool, call, payload):
                        self._handle = pool.apply_async(call, (payload,))

                    def get(self, timeout=None):
                        self._handle.get(timeout)  # chunk ran, result dropped
                        raise RuntimeError("simulated lost chunk result")

                class FlakyPool:
                    def __init__(self, pool):
                        self._pool = pool
                        self.failures = 0

                    def apply_async(self, call, args):
                        if self.failures == 0:
                            self.failures += 1
                            return FailingHandle(self._pool, call, args[0])
                        return self._pool.apply_async(call, args)

                flaky = FlakyPool(original_get_pool())
                engine._get_pool = lambda: flaky
                result = engine.search(paper_grid(), nightly_suite())
        assert result.dispatch_retries == 1
        assert telemetry.counter("search.dispatch.retries") == 1
        # the retried chunk's work is counted once, not twice: every
        # candidate evaluated exactly one suite (2 entries each)
        assert telemetry.counter("evaluator.query_evals") == 2 * len(
            result.points
        )
        assert telemetry._stack == []
