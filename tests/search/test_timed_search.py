"""Timed-trace evaluation through the search engine and the Study facade.

The latency-aware path: a :class:`TimedTrace` keeps its arrival times,
:class:`SimulatorEvaluator` replays them under queueing, records carry a
:class:`LatencyProfile`, and selection/export read it.  The weights-only
path must stay byte-for-byte untouched next to all of this.
"""

import pytest

from repro.errors import ConfigurationError, ModelError
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.search import (
    DesignGrid,
    DesignSpaceSearch,
    LatencyProfile,
    ModelEvaluator,
    SimulatorEvaluator,
    best_under_latency_sla,
)
from repro.study import Study
from repro.workloads.arrivals import batched_arrivals, periodic_arrivals, poisson_arrivals
from repro.workloads.protocol import TimedTrace
from repro.workloads.queries import q3_join

GRID = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(4,),
)


def small_trace(count=4, rate=0.05, seed=3) -> TimedTrace:
    query = q3_join(100, 0.05, 0.05)
    return TimedTrace.from_schedule(
        "poisson-q3", query, poisson_arrivals(count, rate_per_s=rate, seed=seed)
    )


class TestLatencyProfile:
    def test_percentiles_are_observed_and_ordered(self):
        samples = [float(v) for v in range(1, 101)]
        profile = LatencyProfile.from_samples(samples)
        assert profile.count == 100
        assert profile.mean_s == pytest.approx(50.5)
        assert profile.p50_s == 50.0
        assert profile.p95_s == 95.0
        assert profile.p99_s == 99.0
        assert profile.max_s == 100.0
        assert profile.p50_s <= profile.p95_s <= profile.p99_s <= profile.max_s

    def test_single_sample(self):
        profile = LatencyProfile.from_samples([2.5])
        assert profile.p99_s == profile.max_s == profile.mean_s == 2.5
        assert profile.count == 1

    def test_empty_and_bad_metric_rejected(self):
        with pytest.raises(ModelError):
            LatencyProfile.from_samples([])
        with pytest.raises(ModelError, match="unknown latency metric"):
            LatencyProfile.from_samples([1.0]).value("p42")

    def test_value_by_name(self):
        profile = LatencyProfile.from_samples([1.0, 3.0])
        assert profile.value("mean") == 2.0
        assert profile.value("max") == 3.0


class TestEvaluateTrace:
    def test_record_carries_latency_and_stream_totals(self):
        candidate = GRID.candidate_list()[0]
        trace = small_trace()
        record = SimulatorEvaluator().evaluate_trace(candidate, trace)
        assert record.feasible
        assert record.latency is not None
        assert record.latency.count == len(trace)
        assert record.latency.mean_s <= record.latency.max_s
        # the stream's makespan spans at least the scheduling horizon
        assert record.time_s >= trace.span_s

    def test_compressed_trace_is_never_faster_per_query(self):
        """Queueing through the evaluator: batching all arrivals can only
        worsen (or preserve) each query's response time vs wide spacing."""
        candidate = GRID.candidate_list()[0]
        query = q3_join(100, 0.05, 0.05)
        evaluator = SimulatorEvaluator()
        solo = evaluator.evaluate_query(candidate, query).time_s
        spaced = evaluator.evaluate_trace(
            candidate,
            TimedTrace.from_schedule(
                "spaced", query, periodic_arrivals(3, interval_s=3 * solo)
            ),
        )
        burst = evaluator.evaluate_trace(
            candidate,
            TimedTrace.from_schedule("burst", query, batched_arrivals(3)),
        )
        assert spaced.latency.max_s == pytest.approx(solo, rel=1e-6)
        assert burst.latency.max_s >= spaced.latency.max_s
        # all-at-once equals the classic concurrency evaluation
        concurrent = SimulatorEvaluator(concurrency=3).evaluate_query(
            candidate, query
        )
        assert burst.time_s == pytest.approx(concurrent.time_s)
        assert burst.energy_j == pytest.approx(concurrent.energy_j)

    def test_model_evaluator_refuses_timed(self):
        candidate = GRID.candidate_list()[0]
        with pytest.raises(ConfigurationError, match="arrival times"):
            ModelEvaluator().evaluate_trace(candidate, small_trace())


class TestTimedSearch:
    def test_search_populates_latency_and_caches(self):
        engine = DesignSpaceSearch(evaluator=SimulatorEvaluator())
        trace = small_trace()
        result = engine.search(GRID, trace)
        assert all(point.latency is not None for point in result.points)
        assert result.evaluations == len(result.points)
        assert result.query_evaluations == len(result.points) * len(trace)
        warm = engine.search(GRID, trace)
        assert warm.evaluations == 0
        assert warm.cache_hits == len(warm.points)
        assert [(p.label, p.time_s, p.latency) for p in warm.points] == [
            (p.label, p.time_s, p.latency) for p in result.points
        ]

    def test_timed_and_weights_only_keys_are_disjoint(self):
        """Evaluating the weights-only mix must not warm the timed search
        (and vice versa): a weights aggregate knows nothing of queueing."""
        engine = DesignSpaceSearch(evaluator=SimulatorEvaluator())
        trace = small_trace()
        mix_result = engine.search(GRID, trace.weights_only())
        timed_result = engine.search(GRID, trace)
        assert timed_result.evaluations == len(timed_result.points)
        assert all(point.latency is None for point in mix_result.points)
        # and the timed rows don't leak back into the weights-only path
        warm_mix = engine.search(GRID, trace.weights_only())
        assert all(point.latency is None for point in warm_mix.points)
        assert warm_mix.evaluations == 0

    def test_different_schedules_evaluate_separately(self):
        engine = DesignSpaceSearch(evaluator=SimulatorEvaluator())
        query = q3_join(100, 0.05, 0.05)
        burst = TimedTrace.from_schedule("t", query, batched_arrivals(3))
        spread = TimedTrace.from_schedule("t", query, periodic_arrivals(3, 1000.0))
        engine.search(GRID, burst)
        result = engine.search(GRID, spread)
        assert result.evaluations == len(result.points)

    def test_engine_rejects_untimed_evaluators(self):
        engine = DesignSpaceSearch(evaluator=ModelEvaluator())
        with pytest.raises(ConfigurationError, match="stream-capable"):
            engine.search(GRID, small_trace())

    def test_serial_equals_parallel(self):
        trace = small_trace(count=3)
        serial = DesignSpaceSearch(evaluator=SimulatorEvaluator()).search(
            GRID, trace
        )
        with DesignSpaceSearch(
            evaluator=SimulatorEvaluator(), workers=2, min_dispatch_tasks=1
        ) as engine:
            parallel = engine.search(GRID, trace)
        assert parallel.workers_used == 2
        assert [
            (p.label, p.time_s, p.energy_j, p.latency) for p in parallel.points
        ] == [(p.label, p.time_s, p.energy_j, p.latency) for p in serial.points]

    def test_infeasible_designs_become_records(self):
        """A trace whose join cannot run on a design yields an infeasible
        record (no latency), exactly like the per-entry path."""
        from repro.workloads.queries import JoinWorkloadSpec

        huge = JoinWorkloadSpec(
            name="huge",
            build_volume_mb=1e12,
            probe_volume_mb=1e12,
            build_selectivity=1.0,
            probe_selectivity=1.0,
        )
        trace = TimedTrace.from_schedule("huge-trace", huge, [0.0, 1.0])
        result = DesignSpaceSearch(evaluator=SimulatorEvaluator()).search(
            GRID, trace
        )
        assert result.points
        assert all(not point.feasible for point in result.points)
        assert all(point.latency is None for point in result.points)


class TestLatencySelection:
    def test_best_under_latency_sla_reads_the_profile(self):
        result = DesignSpaceSearch(evaluator=SimulatorEvaluator()).search(
            GRID, small_trace()
        )
        worst = max(point.latency.max_s for point in result.feasible_points)
        best = result.best_under_latency_sla(worst * 1.01)
        eligible_energy = min(p.energy_j for p in result.feasible_points)
        assert best.energy_j == eligible_energy
        # a tight SLA prunes to faster-responding designs
        fastest = min(point.latency.max_s for point in result.feasible_points)
        tight = result.best_under_latency_sla(fastest * 1.01)
        assert tight.latency.max_s <= fastest * 1.01
        with pytest.raises(ModelError, match="meets the"):
            result.best_under_latency_sla(fastest * 0.5)

    def test_metric_selects_the_binding_statistic(self):
        result = DesignSpaceSearch(evaluator=SimulatorEvaluator()).search(
            GRID, small_trace()
        )
        point = result.feasible_points[0]
        assert point.latency.mean_s <= point.latency.max_s
        by_mean = result.best_under_latency_sla(point.latency.mean_s, metric="mean")
        assert by_mean.latency.mean_s <= point.latency.mean_s

    def test_weights_only_points_are_never_eligible(self):
        result = DesignSpaceSearch(evaluator=SimulatorEvaluator()).search(
            GRID, small_trace().weights_only()
        )
        with pytest.raises(ModelError, match="latency profile"):
            result.best_under_latency_sla(1e9)

    def test_sla_validation(self):
        with pytest.raises(ModelError, match="> 0"):
            best_under_latency_sla([], 0.0)


class TestStudyFacade:
    def test_end_to_end_timed_study(self):
        trace = small_trace()
        study = (
            Study(GRID).with_workload(trace).with_evaluator(SimulatorEvaluator())
        )
        result = study.run()
        assert all(point.latency is not None for point in result.points)
        worst = max(point.latency.max_s for point in result.feasible_points)
        assert result.best_under_latency_sla(worst * 2).feasible
        rows = result.to_rows()
        assert rows[0]["response_p99_s"] == result.points[0].latency.p99_s
        assert rows[0]["response_max_s"] == result.points[0].latency.max_s

    def test_default_evaluator_fails_with_guidance(self):
        with pytest.raises(ConfigurationError, match="SimulatorEvaluator"):
            Study(GRID).with_workload(small_trace()).run()

    def test_weights_only_rows_export_null_latency(self):
        result = (
            Study(GRID)
            .with_workload(small_trace().weights_only())
            .with_evaluator(SimulatorEvaluator())
            .run()
        )
        row = result.to_rows()[0]
        assert row["response_mean_s"] is None
        assert row["response_max_s"] is None
