"""Search-engine behavior: ordering, feasibility, evaluators, selections."""

import pytest

from repro.errors import ConfigurationError, ModelError
from repro.hardware.presets import BEEFY_L5630, CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.pstore.plans import ExecutionMode
from repro.search import (
    CallableEvaluator,
    DesignGrid,
    DesignSpaceSearch,
    ModelEvaluator,
    SimulatorEvaluator,
)
from repro.search.grid import DesignCandidate
from repro.workloads.queries import q3_join, section54_join


@pytest.fixture(scope="module")
def axis_result():
    grid = DesignGrid.paper_axis(CLUSTER_V_NODE, WIMPY_LAPTOP_B, 8)
    return DesignSpaceSearch().search(grid, section54_join())


class TestSearch:
    def test_points_come_back_in_grid_order(self, axis_result):
        labels = [p.label for p in axis_result.points]
        assert labels[0] == "8B,0W"
        assert labels[-1] == "0B,8W"
        assert len(labels) == 9

    def test_infeasible_designs_kept_with_reason(self, axis_result):
        infeasible = {p.label: p for p in axis_result.infeasible_points}
        assert set(infeasible) == {"1B,7W", "0B,8W"}
        for point in infeasible.values():
            assert not point.feasible
            assert point.infeasible_reason
            assert point.time_s == float("inf")

    def test_model_evaluator_attaches_predictions(self, axis_result):
        for point in axis_result.feasible_points:
            assert point.prediction is not None
            assert point.time_s == pytest.approx(point.prediction.time_s)

    def test_large_multidimensional_grid(self):
        """The acceptance-criteria sweep: >= 200 designs in one search."""
        grid = DesignGrid(
            node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
            cluster_sizes=(6, 8, 10, 12, 14, 16),
            frequency_factors=(1.0, 0.8, 0.6),
        )
        assert len(grid) == 216 >= 200
        result = DesignSpaceSearch().search(grid, section54_join())
        assert len(result.points) == 216
        assert result.evaluations == 216
        assert len(result.feasible_points) >= 200
        assert result.pareto_frontier()

    def test_empty_space_rejected(self):
        with pytest.raises(ConfigurationError):
            DesignSpaceSearch().search([], section54_join())

    def test_invalid_engine_configuration(self):
        with pytest.raises(ConfigurationError):
            DesignSpaceSearch(workers=0)
        with pytest.raises(ConfigurationError):
            DesignSpaceSearch(chunk_size=0)

    def test_point_lookup(self, axis_result):
        assert axis_result.point("4B,4W").label == "4B,4W"
        with pytest.raises(ModelError):
            axis_result.point("9B,0W")

    def test_iteration_and_len(self, axis_result):
        assert len(axis_result) == 9
        assert [p.label for p in axis_result] == [p.label for p in axis_result.points]


class TestSelectionsOnResult:
    def test_sla_selection_matches_energy_ordering(self, axis_result):
        fastest = axis_result.feasible_points[0]
        winner = axis_result.best_under_sla(fastest.time_s * 1.5)
        eligible = [
            p for p in axis_result.feasible_points if p.time_s <= fastest.time_s * 1.5
        ]
        assert winner.energy_j == min(p.energy_j for p in eligible)

    def test_sla_too_tight_raises(self, axis_result):
        fastest = min(p.time_s for p in axis_result.feasible_points)
        with pytest.raises(ModelError, match="SLA"):
            axis_result.best_under_sla(fastest / 2)

    def test_knee_and_edp_are_on_the_frontier(self, axis_result):
        frontier_labels = {p.label for p in axis_result.pareto_frontier()}
        assert axis_result.knee().label in frontier_labels
        assert axis_result.edp_optimal().label in frontier_labels


class TestEvaluators:
    def test_callable_evaluator(self):
        search = DesignSpaceSearch(
            evaluator=CallableEvaluator(
                lambda cluster, query: (float(cluster.num_beefy), 100.0)
            )
        )
        grid = DesignGrid.paper_axis(CLUSTER_V_NODE, WIMPY_LAPTOP_B, 4)
        result = search.search(grid, section54_join())
        assert [p.time_s for p in result.points] == [4.0, 3.0, 2.0, 1.0, 0.0]

    def test_simulator_evaluator(self):
        grid = DesignGrid.paper_axis(BEEFY_L5630, WIMPY_LAPTOP_B, 4)
        query = q3_join(100, 0.05, 0.05)
        result = DesignSpaceSearch(evaluator=SimulatorEvaluator()).search(grid, query)
        assert result.feasible_points
        for point in result.feasible_points:
            assert point.time_s > 0
            assert point.energy_j > 0

    def test_forced_mode_flows_through_candidates(self):
        candidate = DesignCandidate(
            label="6B,2W", beefy=CLUSTER_V_NODE, wimpy=WIMPY_LAPTOP_B,
            num_beefy=6, num_wimpy=2, mode=ExecutionMode.HETEROGENEOUS,
        )
        result = DesignSpaceSearch(evaluator=ModelEvaluator()).search(
            [candidate], section54_join()
        )
        assert result.points[0].prediction.mode is ExecutionMode.HETEROGENEOUS
