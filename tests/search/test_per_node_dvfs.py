"""Per-node-type DVFS factors on design candidates (ROADMAP item)."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.search import DesignSpaceSearch, EvaluationCache
from repro.search.grid import DesignCandidate
from repro.workloads.queries import section54_join


def candidate(**kwargs):
    defaults = dict(
        label="4B,4W",
        beefy=CLUSTER_V_NODE,
        wimpy=WIMPY_LAPTOP_B,
        num_beefy=4,
        num_wimpy=4,
    )
    defaults.update(kwargs)
    return DesignCandidate(**defaults)


class TestPerNodeFactors:
    def test_defaults_follow_the_cluster_wide_factor(self):
        point = candidate(frequency_factor=0.8)
        assert point.effective_beefy_frequency == 0.8
        assert point.effective_wimpy_frequency == 0.8
        assert point.effective_beefy.cpu_bandwidth_mbps == pytest.approx(
            0.8 * CLUSTER_V_NODE.cpu_bandwidth_mbps
        )

    def test_per_type_overrides_apply_independently(self):
        point = candidate(beefy_frequency_factor=0.8)  # Wimpies at nominal
        assert point.effective_beefy_frequency == 0.8
        assert point.effective_wimpy_frequency == 1.0
        assert point.effective_beefy.cpu_bandwidth_mbps == pytest.approx(
            0.8 * CLUSTER_V_NODE.cpu_bandwidth_mbps
        )
        assert point.effective_wimpy is WIMPY_LAPTOP_B

    def test_out_of_range_overrides_rejected(self):
        with pytest.raises(ConfigurationError):
            candidate(beefy_frequency_factor=0.0)
        with pytest.raises(ConfigurationError):
            candidate(wimpy_frequency_factor=1.5)

    def test_cache_key_uses_resolved_frequencies(self):
        """A cluster-wide factor and the equivalent per-type pair describe
        the same hardware and must share one cache entry."""
        cluster_wide = candidate(frequency_factor=0.8)
        per_type = candidate(
            beefy_frequency_factor=0.8, wimpy_frequency_factor=0.8
        )
        assert cluster_wide.key() == per_type.key()

    def test_distinct_per_type_states_get_distinct_keys(self):
        nominal = candidate()
        beefy_only = candidate(beefy_frequency_factor=0.8)
        wimpy_only = candidate(wimpy_frequency_factor=0.8)
        keys = {nominal.key(), beefy_only.key(), wimpy_only.key()}
        assert len(keys) == 3


class TestPerNodeFactorsThroughEngine:
    def test_beefy_downclock_differs_from_cluster_downclock(self):
        query = section54_join(0.01, 0.10)
        engine = DesignSpaceSearch(cache=EvaluationCache())
        both = engine.search(
            [candidate(label="both@80", frequency_factor=0.8)], query
        ).points[0]
        beefy_only = engine.search(
            [candidate(label="beefy@80", beefy_frequency_factor=0.8)], query
        ).points[0]
        assert engine.cache.stats.entries == 2  # no key collision
        assert beefy_only.energy_j != both.energy_j

    def test_exports_carry_resolved_per_type_frequencies(self):
        """CSV/JSON rows must state the DVFS state the evaluator actually
        priced, not the cluster-wide field an override hides (regression)."""
        from repro.analysis.export import search_to_rows

        result = DesignSpaceSearch().search(
            [candidate(label="asym", beefy_frequency_factor=0.8)],
            section54_join(0.01, 0.10),
        )
        row = search_to_rows(result)[0]
        assert row["beefy_frequency_factor"] == 0.8
        assert row["wimpy_frequency_factor"] == 1.0

    def test_mixed_dvfs_states_search_cleanly(self):
        """The paper's ROADMAP example: Beefies at 0.8, Wimpies at 1.0."""
        query = section54_join(0.01, 0.10)
        candidates = [
            candidate(label="nominal"),
            candidate(label="beefy-throttled", beefy_frequency_factor=0.8),
            candidate(
                label="inverse",
                beefy_frequency_factor=1.0,
                wimpy_frequency_factor=0.8,
            ),
        ]
        result = DesignSpaceSearch().search(candidates, query)
        assert [p.label for p in result.points] == [
            "nominal",
            "beefy-throttled",
            "inverse",
        ]
        assert all(p.feasible for p in result.points)
