"""Workload-level search: suites and trace mixes through the engine.

The PR-2 redesign promises that any :class:`Workload` runs through
:class:`DesignSpaceSearch` with the same memoization, fan-out, and
selection rules as single joins.  These tests pin that down: weighted
aggregation semantics, cache partitioning across workload types, and the
serial == parallel property for multi-query workloads.
"""

import pytest

from repro.core.model import ModelParameters, PStoreModel
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.search import DesignGrid, DesignSpaceSearch, EvaluationCache
from repro.workloads.protocol import ArrivalMix, SingleJoin
from repro.workloads.queries import section54_join
from repro.workloads.suite import SuiteEntry, WorkloadSuite


def mixed_suite():
    return WorkloadSuite(
        name="nightly",
        entries=(
            SuiteEntry(section54_join(0.01, 0.10), weight=3.0),  # homogeneous-mode
            SuiteEntry(section54_join(0.10, 0.02), weight=1.0),  # heterogeneous-mode
        ),
    )


def paper_grid(size=8):
    return DesignGrid.paper_axis(CLUSTER_V_NODE, WIMPY_LAPTOP_B, size)


class TestSuiteThroughEngine:
    def test_points_are_weighted_sums_of_member_predictions(self):
        result = DesignSpaceSearch().search(paper_grid(), mixed_suite())
        point = result.point("8B,0W")
        params = ModelParameters.from_specs(CLUSTER_V_NODE, 8, WIMPY_LAPTOP_B, 0)
        model = PStoreModel(params)
        expected_time = 0.0
        expected_energy = 0.0
        for entry in mixed_suite().entries:
            prediction = model.predict(entry.workload)
            expected_time += entry.weight * prediction.time_s
            expected_energy += entry.weight * prediction.energy_j
        assert point.time_s == expected_time
        assert point.energy_j == expected_energy

    def test_any_infeasible_member_fails_the_design(self):
        # the heterogeneous-mode member needs >= 2 Beefy nodes
        result = DesignSpaceSearch().search(paper_grid(), mixed_suite())
        infeasible = {p.label for p in result.infeasible_points}
        assert infeasible == {"1B,7W", "0B,8W"}

    def test_suite_resweep_is_memoized(self):
        search = DesignSpaceSearch()
        first = search.search(paper_grid(), mixed_suite())
        second = search.search(paper_grid(), mixed_suite())
        assert first.evaluations == 9
        assert second.evaluations == 0
        assert second.points == first.points

    def test_pareto_selections_available_for_suites(self):
        result = DesignSpaceSearch().search(paper_grid(), mixed_suite())
        frontier_labels = {p.label for p in result.pareto_frontier()}
        assert frontier_labels
        assert result.knee().label in frontier_labels
        assert result.edp_optimal().label in frontier_labels
        fastest = result.feasible_points[0].time_s
        assert result.best_under_sla(fastest * 2.0).feasible

    def test_single_entry_unit_weight_suite_equals_bare_join(self):
        """Weight-1 singleton suites keep per-query records (fast path)."""
        query = section54_join(0.01, 0.10)
        suite = WorkloadSuite.of("solo", query)
        cache = EvaluationCache()
        engine = DesignSpaceSearch(cache=cache)
        as_suite = engine.search(paper_grid(), suite)
        as_join = engine.search(paper_grid(), query)
        for ours, theirs in zip(as_suite.points, as_join.points):
            assert ours.time_s == theirs.time_s
            assert ours.energy_j == theirs.energy_j
        assert as_suite.points[0].prediction is not None
        # per-entry memoization: the join search reuses the suite's
        # member-join entries, so it performs zero fresh evaluations
        assert as_join.evaluations == 0
        assert as_join.query_evaluations == 0
        assert as_join.cache_hits == 9

    def test_query_property_raises_for_multi_query_workloads(self):
        from repro.errors import ModelError

        result = DesignSpaceSearch().search(paper_grid(), mixed_suite())
        assert result.workload.name == "nightly"
        with pytest.raises(ModelError, match="use .workload"):
            result.query


class TestTraceMixThroughEngine:
    def test_trace_mix_weighted_like_equivalent_suite(self):
        daily = section54_join(0.01, 0.10)
        rare = section54_join(0.10, 0.02)
        mix = ArrivalMix.from_trace(
            "nightly", [(daily, 0.0), (daily, 10.0), (daily, 20.0), (rare, 30.0)]
        )
        suite = WorkloadSuite(
            name="nightly",
            entries=(SuiteEntry(daily, 3.0), SuiteEntry(rare, 1.0)),
        )
        cache = EvaluationCache()
        engine = DesignSpaceSearch(cache=cache)
        via_trace = engine.search(paper_grid(), mix)
        via_suite = engine.search(paper_grid(), suite)
        for ours, theirs in zip(via_trace.points, via_suite.points):
            assert ours.time_s == theirs.time_s
            assert ours.energy_j == theirs.energy_j
        # the suite shares the trace mix's per-entry cache rows: both
        # flatten to the same (entry key, candidate key) tasks
        assert via_trace.query_evaluations == 18
        assert via_suite.evaluations == 0
        assert via_suite.query_evaluations == 0


class TestWorkloadCachePartitioning:
    def test_aggregates_partitioned_but_entries_shared(self):
        """Same name, same grid, three workload types: each keeps its own
        workload-level aggregate rows (distinct ``cache_key()`` tags), but
        all three share the per-entry rows of the one member join — only
        the first search evaluates anything."""
        query = section54_join()
        single = SingleJoin(query)
        suite = WorkloadSuite(name=query.name, entries=(SuiteEntry(query, 1.0),))
        mix = ArrivalMix.from_trace(query.name, [(query, 0.0)])
        cache = EvaluationCache()
        engine = DesignSpaceSearch(cache=cache)
        first = engine.search(paper_grid(), single)
        assert first.query_evaluations == 9
        for workload in (suite, mix):
            result = engine.search(paper_grid(), workload)
            assert result.query_evaluations == 0  # entries shared across types
        # 9 shared entry rows + 9 suite aggregates + 9 trace aggregates
        # (a single join's aggregate key IS its entry key)
        assert len(cache) == 27


class TestSuiteParallelism:
    def test_serial_equals_parallel_for_suites(self):
        grid = DesignGrid(
            node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
            cluster_sizes=(6, 8, 10),
        )
        suite = mixed_suite()
        serial = DesignSpaceSearch(workers=1, cache=EvaluationCache()).search(
            grid, suite
        )
        parallel = DesignSpaceSearch(
            workers=3, cache=EvaluationCache(), min_dispatch_tasks=1
        ).search(grid, suite)
        assert parallel.workers_used == 3
        assert serial.points == parallel.points

    @pytest.mark.parametrize("chunk_size", [None, 1, 4])
    def test_serial_equals_parallel_for_trace_mixes(self, chunk_size):
        query = section54_join(0.01, 0.10)
        mix = ArrivalMix.from_trace("t", [(query, float(i)) for i in range(5)])
        serial = DesignSpaceSearch(workers=1, cache=EvaluationCache()).search(
            paper_grid(), mix
        )
        parallel = DesignSpaceSearch(
            workers=2,
            chunk_size=chunk_size,
            cache=EvaluationCache(),
            min_dispatch_tasks=1,
        ).search(paper_grid(), mix)
        assert parallel.workers_used == 2
        assert serial.points == parallel.points
