"""Pareto analysis on hand-built point sets."""

import pytest

from repro.errors import ModelError
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.search.evaluators import EvaluatedDesign
from repro.search.grid import DesignCandidate
from repro.search.pareto import best_under_sla, edp_optimal, knee_point, pareto_frontier


def point(label, time_s, energy_j, feasible=True):
    candidate = DesignCandidate(
        label=label, beefy=CLUSTER_V_NODE, wimpy=WIMPY_LAPTOP_B,
        num_beefy=1, num_wimpy=1,
    )
    return EvaluatedDesign(
        candidate=candidate,
        time_s=time_s,
        energy_j=energy_j,
        feasible=feasible,
        infeasible_reason="" if feasible else "does not fit",
    )


class TestParetoFrontier:
    def test_dominated_points_removed(self):
        points = [
            point("fast-hungry", 1.0, 100.0),
            point("balanced", 2.0, 50.0),
            point("dominated", 3.0, 60.0),  # slower AND hungrier than balanced
            point("slow-frugal", 4.0, 10.0),
        ]
        assert [p.label for p in pareto_frontier(points)] == [
            "fast-hungry", "balanced", "slow-frugal",
        ]

    def test_frontier_sorted_by_time(self):
        points = [point("b", 2.0, 1.0), point("a", 1.0, 2.0)]
        assert [p.label for p in pareto_frontier(points)] == ["a", "b"]

    def test_equal_energy_keeps_only_the_faster(self):
        points = [point("fast", 1.0, 5.0), point("slow", 2.0, 5.0)]
        assert [p.label for p in pareto_frontier(points)] == ["fast"]

    def test_exact_duplicates_keep_first_label(self):
        points = [point("z", 1.0, 5.0), point("a", 1.0, 5.0)]
        assert [p.label for p in pareto_frontier(points)] == ["a"]

    def test_infeasible_points_excluded(self):
        points = [point("ok", 2.0, 2.0), point("nope", 1.0, 1.0, feasible=False)]
        assert [p.label for p in pareto_frontier(points)] == ["ok"]

    def test_empty_input(self):
        assert pareto_frontier([]) == []
        assert pareto_frontier([point("x", 1.0, 1.0, feasible=False)]) == []


class TestSelections:
    def test_edp_optimal(self):
        points = [
            point("a", 10.0, 10.0),  # EDP 100
            point("b", 3.0, 20.0),  # EDP 60  <- winner
            point("c", 20.0, 4.0),  # EDP 80
        ]
        assert edp_optimal(points).label == "b"

    def test_edp_optimal_requires_a_feasible_point(self):
        with pytest.raises(ModelError):
            edp_optimal([point("x", 1.0, 1.0, feasible=False)])

    def test_knee_of_elbowed_curve(self):
        points = [
            point("a", 10.0, 100.0),
            point("b", 11.0, 30.0),  # big energy drop for a tiny slowdown
            point("c", 30.0, 25.0),  # long flat tail
        ]
        assert knee_point(points).label == "b"

    def test_knee_degenerate_curves_fall_back_to_edp(self):
        two = [point("a", 1.0, 10.0), point("b", 2.0, 5.0)]
        assert knee_point(two).label == edp_optimal(two).label
        with pytest.raises(ModelError):
            knee_point([])


class TestSlaSelection:
    POINTS = [
        point("fast-hungry", 1.0, 100.0),
        point("balanced", 2.0, 50.0),
        point("slow-frugal", 4.0, 10.0),
    ]

    def test_picks_cheapest_design_meeting_the_sla(self):
        assert best_under_sla(self.POINTS, max_time_s=2.5).label == "balanced"
        assert best_under_sla(self.POINTS, max_time_s=10.0).label == "slow-frugal"

    def test_sla_boundary_is_inclusive(self):
        assert best_under_sla(self.POINTS, max_time_s=2.0).label == "balanced"

    def test_no_feasible_point_raises(self):
        with pytest.raises(ModelError, match="SLA"):
            best_under_sla(self.POINTS, max_time_s=0.5)
        with pytest.raises(ModelError, match="SLA"):
            best_under_sla([point("x", 1.0, 1.0, feasible=False)], max_time_s=5.0)

    def test_invalid_sla_rejected(self):
        with pytest.raises(ModelError):
            best_under_sla(self.POINTS, max_time_s=0.0)

    def test_energy_ties_break_on_time_then_label(self):
        tied = [
            point("slower", 3.0, 10.0),
            point("faster", 2.0, 10.0),
        ]
        assert best_under_sla(tied, max_time_s=5.0).label == "faster"
        same = [point("b", 2.0, 10.0), point("a", 2.0, 10.0)]
        assert best_under_sla(same, max_time_s=5.0).label == "a"
