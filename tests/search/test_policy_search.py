"""(design x policy) candidates through the search stack.

Determinism, serial/parallel parity, multiplex routing, cache-key
disjointness, and the Study facade over policy spaces.
"""

import pytest

from repro.hardware.powerstate import PowerStateModel
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.policy import PolicyCandidate, PowerGatePolicy, StaticPolicy
from repro.search import (
    DesignGrid,
    DesignSpaceSearch,
    SearchSpace,
    SimulatorEvaluator,
)
from repro.search.evaluators import evaluate_timed_design
from repro.study import Study
from repro.workloads.arrivals import diurnal_arrivals
from repro.workloads.protocol import TimedTrace
from repro.workloads.queries import q3_join

GRID = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(4,),
)

TRANSITIONS = PowerStateModel(
    shutdown_s=0.1,
    boot_s=0.2,
    transition_power_fraction=0.5,
    gated_power_fraction=0.05,
)


def policies():
    return (
        StaticPolicy(),
        PowerGatePolicy(
            utilization_floor=0.05, min_idle_s=2.0, transitions=TRANSITIONS
        ),
    )


def policy_space(control_interval_s=0.5):
    return SearchSpace.from_grid(
        GRID, policies=policies(), control_interval_s=control_interval_s
    )


def gappy_trace(count=6, seed=3) -> TimedTrace:
    query = q3_join(100, 0.05, 0.05)
    times = diurnal_arrivals(
        count,
        base_rate_per_s=0.01,
        peak_rate_per_s=1.0,
        period_s=60.0,
        seed=seed,
    )
    return TimedTrace.from_schedule("diurnal-q3", query, times)


class TestStudyOverPolicySpace:
    def test_run_annotates_policy_records(self):
        result = (
            Study(policy_space())
            .with_workload(gappy_trace())
            .with_evaluator(SimulatorEvaluator())
            .run()
        )
        assert len(result.points) == 2 * len(GRID.candidate_list())
        for point in result.points:
            assert point.policy in {"static", policies()[1].label}
            assert point.gated_node_seconds is not None
            assert point.energy_saved_j is not None
        static_points = [p for p in result.points if p.policy == "static"]
        assert all(p.gated_node_seconds == 0.0 for p in static_points)
        assert all(p.energy_saved_j == 0.0 for p in static_points)

    def test_static_policy_scores_match_bare_designs(self):
        """StaticPolicy rides the multiplexed fast path and scores exactly
        like the bare design (only the label/key/annotations differ)."""
        trace = gappy_trace()
        evaluator = SimulatorEvaluator()
        bare = DesignSpaceSearch(evaluator=evaluator).search(GRID, trace)
        wrapped = DesignSpaceSearch(evaluator=evaluator).search(
            [
                PolicyCandidate(design=design, policy=StaticPolicy())
                for design in GRID.candidate_list()
            ],
            trace,
        )
        for bare_point, wrapped_point in zip(bare.points, wrapped.points):
            assert wrapped_point.time_s == bare_point.time_s
            assert wrapped_point.energy_j == bare_point.energy_j
            assert wrapped_point.latency == bare_point.latency
            assert wrapped_point.policy == "static"
            assert bare_point.policy is None

    def test_optimize_same_seed_is_deterministic(self):
        def run_once():
            study = (
                Study(policy_space())
                .with_workload(gappy_trace())
                .with_evaluator(SimulatorEvaluator())
            )
            return study.optimize(
                budget=60, optimizer="random", seed=11, batch_size=4
            )

        first, second = run_once(), run_once()
        fields = lambda p: (
            p.label,
            p.time_s,
            p.energy_j,
            p.policy,
            p.gated_node_seconds,
            p.energy_saved_j,
        )
        assert [fields(p) for p in first.points] == [
            fields(p) for p in second.points
        ]
        assert first.evaluations == second.evaluations

    def test_optimize_explores_policy_dimension(self):
        result = (
            Study(policy_space())
            .with_workload(gappy_trace())
            .with_evaluator(SimulatorEvaluator())
            .optimize(budget=120, optimizer="random", seed=5, batch_size=6)
        )
        seen = {point.policy for point in result.points}
        assert "static" in seen and policies()[1].label in seen


class TestDispatchParity:
    def test_serial_equals_chunked_parallel_for_policy_candidates(self):
        trace = gappy_trace(count=4)
        candidates = policy_space().candidate_list()
        serial = DesignSpaceSearch(evaluator=SimulatorEvaluator()).search(
            candidates, trace
        )
        with DesignSpaceSearch(
            evaluator=SimulatorEvaluator(), workers=2, min_dispatch_tasks=1
        ) as engine:
            parallel = engine.search(candidates, trace)
        assert parallel.workers_used == 2
        fields = lambda p: (
            p.label,
            p.time_s,
            p.energy_j,
            p.latency,
            p.policy,
            p.gated_node_seconds,
            p.energy_saved_j,
        )
        assert [fields(p) for p in parallel.points] == [
            fields(p) for p in serial.points
        ]

    def test_mixed_batch_routes_dynamic_policies_serially(self):
        """evaluate_trace_batch on a mix of bare designs, static-policy and
        dynamic-policy candidates matches per-candidate serial replay for
        every lane — the dynamic fallback is automatic."""
        trace = gappy_trace(count=4)
        evaluator = SimulatorEvaluator()
        designs = GRID.candidate_list()[:2]
        mixed = [
            designs[0],
            PolicyCandidate(design=designs[0], policy=StaticPolicy()),
            PolicyCandidate(
                design=designs[0], policy=policies()[1], control_interval_s=0.5
            ),
            designs[1],
            PolicyCandidate(
                design=designs[1], policy=policies()[1], control_interval_s=0.5
            ),
        ]
        batch = evaluator.evaluate_trace_batch(trace, mixed)
        serial = [
            evaluate_timed_design(evaluator, candidate, trace)
            for candidate in mixed
        ]
        assert [(r.label, r.time_s, r.energy_j, r.latency) for r in batch] == [
            (r.label, r.time_s, r.energy_j, r.latency) for r in serial
        ]
        assert [r.policy for r in batch] == [r.policy for r in serial]


class TestCacheDisjointness:
    def test_policy_and_design_rows_never_alias(self):
        """Evaluating bare designs does not warm policy candidates, and
        policy rows never serve bare designs — both directions."""
        trace = gappy_trace(count=4)
        engine = DesignSpaceSearch(evaluator=SimulatorEvaluator())
        bare = engine.search(GRID, trace)
        assert bare.evaluations == len(bare.points)
        wrapped = engine.search(policy_space().candidate_list(), trace)
        # nothing came from the design-only rows
        assert wrapped.evaluations == len(wrapped.points)
        # and the reverse: policy rows don't leak into a design-only sweep
        warm_bare = engine.search(GRID, trace)
        assert warm_bare.evaluations == 0  # its own rows, still warm
        warm_wrapped = engine.search(policy_space().candidate_list(), trace)
        assert warm_wrapped.evaluations == 0


class TestSelection:
    def test_sla_selection_reads_policy_records(self):
        result = (
            Study(policy_space())
            .with_workload(gappy_trace())
            .with_evaluator(SimulatorEvaluator())
            .run()
        )
        worst = max(p.latency.max_s for p in result.feasible_points)
        best = result.best_under_latency_sla(worst * 1.01)
        assert best.policy is not None
        rows = result.to_rows()
        by_label = {row["label"]: row for row in rows}
        for point in result.points:
            row = by_label[point.label]
            assert row["policy"] == point.policy
            assert row["gated_node_seconds"] == point.gated_node_seconds
            assert row["energy_saved_j"] == point.energy_saved_j
