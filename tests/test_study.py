"""The Study facade: configuration, parity with legacy APIs, exports."""

import json

import pytest

from repro.core.design_space import DesignSpaceExplorer
from repro.core.model import ModelParameters
from repro.errors import ConfigurationError, ModelError
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.pstore.plans import ExecutionMode
from repro.search import DesignCandidate, DesignGrid, EvaluationCache, ModelEvaluator
from repro.study import Study, StudyResult
from repro.workloads.queries import section54_join
from repro.workloads.suite import (
    SuiteEntry,
    WorkloadSuite,
    evaluate_suite,
    suite_tradeoff_curve,
)


def explorer(**kwargs):
    return DesignSpaceExplorer(CLUSTER_V_NODE, WIMPY_LAPTOP_B, cluster_size=8, **kwargs)


def mixed_suite():
    return WorkloadSuite(
        name="nightly",
        entries=(
            SuiteEntry(section54_join(0.01, 0.10), weight=3.0),
            SuiteEntry(section54_join(0.10, 0.02), weight=1.0),
        ),
    )


class TestStudyConfiguration:
    def test_run_without_workload_rejected(self):
        with pytest.raises(ConfigurationError, match="with_workload"):
            Study(explorer()).run()

    def test_empty_candidate_space_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            Study([])

    def test_with_steps_do_not_mutate_the_original(self):
        base = Study(explorer())
        configured = base.with_workload(section54_join()).with_workers(4)
        assert base._workload is None
        assert base._workers == 1
        assert configured._workers == 4

    def test_with_evaluator_adapts_callables(self):
        study = (
            Study(explorer())
            .with_workload(section54_join())
            .with_evaluator(lambda cluster, query: (float(cluster.num_beefy), 1.0))
        )
        result = study.run()
        assert [p.time_s for p in result.points] == [float(n) for n in range(8, -1, -1)]

    def test_with_evaluator_rejects_non_callables(self):
        with pytest.raises(ConfigurationError, match="not an evaluator"):
            Study(explorer()).with_evaluator(42)

    def test_explorer_candidates_cover_the_mix_axis(self):
        labels = [c.label for c in Study(explorer()).candidates()]
        assert labels[0] == "8B,0W"
        assert labels[-1] == "0B,8W"
        assert len(labels) == 9

    def test_with_mode_forces_candidates(self):
        study = Study(explorer()).with_mode(ExecutionMode.HOMOGENEOUS)
        assert all(
            c.mode is ExecutionMode.HOMOGENEOUS for c in study.candidates()
        )

    def test_with_mode_applies_to_grid_and_list_spaces(self):
        """A forced mode must not be silently dropped for non-explorer
        spaces (regression)."""
        grid = DesignGrid(
            node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),), cluster_sizes=(8,)
        )
        forced = Study(grid).with_mode(ExecutionMode.HOMOGENEOUS)
        assert all(c.mode is ExecutionMode.HOMOGENEOUS for c in forced.candidates())
        explicit = [
            DesignCandidate(
                label="4B,4W",
                beefy=CLUSTER_V_NODE,
                wimpy=WIMPY_LAPTOP_B,
                num_beefy=4,
                num_wimpy=4,
            )
        ]
        forced_list = Study(explicit).with_mode(ExecutionMode.HETEROGENEOUS)
        assert forced_list.candidates()[0].mode is ExecutionMode.HETEROGENEOUS


class TestSingleJoinParity:
    """Study over an explorer == the explorer's own sweep, bit for bit."""

    @pytest.mark.parametrize(
        "build_selectivity,probe_selectivity",
        [(0.10, 0.01), (0.10, 0.10), (0.01, 0.10)],
    )
    def test_curve_matches_sweep(self, build_selectivity, probe_selectivity):
        query = section54_join(build_selectivity, probe_selectivity)
        ex = explorer()
        old = ex.sweep(query)
        new = Study(ex).with_workload(query).run().curve()
        assert [p.label for p in new] == [p.label for p in old]
        for ours, theirs in zip(new, old):
            assert ours.time_s == theirs.time_s
            assert ours.energy_j == theirs.energy_j

    def test_study_and_sweep_share_the_explorer_cache(self):
        ex = explorer()
        query = section54_join()
        Study(ex).with_workload(query).run()
        result = Study(ex).with_workload(query).run()
        assert result.evaluations == 0  # second study fully memoized
        hits = ex._cache.hits
        ex.sweep(query)  # the legacy API reads the same memo
        assert ex._cache.hits == hits + 9

    def test_warm_and_strict_flags_adopted_from_explorer(self):
        query = section54_join()
        ex = explorer(warm_cache=True, strict_paper_conditions=True)
        old = ex.sweep(query)
        new = Study(ex).with_workload(query).run().curve()
        for ours, theirs in zip(new, old):
            assert ours.time_s == theirs.time_s
            assert ours.energy_j == theirs.energy_j


class TestSuiteParity:
    """Suite studies == the pre-redesign per-mix evaluate_suite loop."""

    def legacy_curve_points(self, suite, ex):
        """The pre-PR-2 suite_tradeoff_curve algorithm, verbatim."""
        points = []
        for cluster in ex.mixes():
            params = ModelParameters.from_specs(
                ex.beefy, cluster.num_beefy, ex.wimpy, cluster.num_wimpy
            )
            try:
                evaluation = evaluate_suite(suite, params, warm_cache=ex.warm_cache)
            except ModelError:
                continue
            points.append((cluster.name, evaluation.time_s, evaluation.energy_j))
        return points

    def test_bit_identical_to_legacy_algorithm(self):
        suite = mixed_suite()
        ex = explorer()
        expected = self.legacy_curve_points(suite, explorer())
        curve = Study(ex).with_workload(suite).run().curve()
        assert [(p.label, p.time_s, p.energy_j) for p in curve] == expected

    def test_shim_ignores_strict_flag_like_the_legacy_loop(self):
        """The legacy loop never passed strict_paper_conditions to
        evaluate_suite; the shim must not adopt it either (regression)."""
        suite = mixed_suite()
        strict_explorer = explorer(strict_paper_conditions=True)
        expected = self.legacy_curve_points(suite, explorer(strict_paper_conditions=True))
        curve = suite_tradeoff_curve(suite, strict_explorer)
        assert [(p.label, p.time_s, p.energy_j) for p in curve] == expected

    def test_shim_ignores_custom_evaluators_like_the_legacy_loop(self):
        """The legacy loop always priced suites with the analytical model,
        even on explorers carrying a custom evaluator (regression)."""
        suite = mixed_suite()
        custom = explorer(evaluator=lambda cluster, query: (1.0, 1.0))
        expected = self.legacy_curve_points(suite, explorer())
        curve = suite_tradeoff_curve(suite, custom)
        assert [(p.label, p.time_s, p.energy_j) for p in curve] == expected

    def test_suite_tradeoff_curve_is_the_study_shim(self):
        suite = mixed_suite()
        old = suite_tradeoff_curve(suite, explorer())
        new = Study(explorer()).with_workload(suite).run().curve()
        assert [(p.label, p.time_s, p.energy_j) for p in old] == [
            (p.label, p.time_s, p.energy_j) for p in new
        ]
        assert [p.cluster for p in old] == [p.cluster for p in new]

    def test_suites_gain_pareto_and_sla_selections(self):
        result = Study(explorer()).with_workload(mixed_suite()).run()
        frontier = result.pareto_frontier()
        assert frontier
        assert result.knee().label in {p.label for p in frontier}
        fastest = result.feasible_points[0].time_s
        assert result.best_under_sla(fastest * 1.5).feasible

    def test_suites_gain_parallel_search(self):
        suite = mixed_suite()
        serial = Study(explorer()).with_workload(suite).run()
        parallel = (
            Study(explorer())
            .with_workload(suite)
            .with_workers(3, min_dispatch_tasks=1)
            .run()
        )
        assert parallel.search.workers_used == 3
        assert serial.points == parallel.points


class TestStudyEngineSharing:
    def grid(self):
        return DesignGrid(
            node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),), cluster_sizes=(8,)
        )

    def test_workload_swapped_studies_share_engine_and_memo(self):
        """The campaign pattern reuses one engine: overlapping workloads
        share per-entry cache rows across derived studies."""
        base = Study(self.grid())
        shared = section54_join(0.01, 0.10)
        first = base.with_workload(shared).run()
        assert first.search.query_evaluations == 9
        suite = WorkloadSuite.of("pair", shared, section54_join(0.10, 0.02))
        second = base.with_workload(suite).run()
        assert second.search.query_evaluations == 9  # only the new member
        assert base.engine() is base.with_workload(shared).engine()

    def test_engine_config_changes_start_a_fresh_engine(self):
        base = Study(self.grid()).with_workload(section54_join())
        assert base.engine() is not base.with_workers(2).engine()
        assert base.engine() is not base.with_cache(EvaluationCache()).engine()
        assert (
            base.engine()
            is not base.with_evaluator(ModelEvaluator(warm_cache=True)).engine()
        )
        # non-engine steps keep sharing
        assert base.engine() is base.with_reference("8B,0W").engine()


class TestStudySpaces:
    def test_grid_space(self):
        grid = DesignGrid(
            node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
            cluster_sizes=(6, 8),
            frequency_factors=(1.0, 0.8),
        )
        result = Study(grid).with_workload(section54_join()).run()
        assert len(result) == len(grid)

    def test_explicit_candidate_space(self):
        candidates = [
            DesignCandidate(
                label=f"{n}B,{8 - n}W",
                beefy=CLUSTER_V_NODE,
                wimpy=WIMPY_LAPTOP_B,
                num_beefy=n,
                num_wimpy=8 - n,
            )
            for n in (8, 4)
        ]
        result = Study(candidates).with_workload(section54_join()).run()
        assert [p.label for p in result.points] == ["8B,0W", "4B,4W"]

    def test_explicit_cache_is_used(self):
        cache = EvaluationCache()
        study = (
            Study(explorer())
            .with_workload(section54_join())
            .with_cache(cache)
            .with_evaluator(ModelEvaluator())
        )
        study.run()
        assert len(cache) == 9


class TestStudyResultSurface:
    @pytest.fixture(scope="class")
    def result(self) -> StudyResult:
        return Study(explorer()).with_workload(mixed_suite()).run()

    def test_iteration_and_lookup(self, result):
        assert len(result) == 9
        assert len(list(result)) == 9
        assert result.point("8B,0W").label == "8B,0W"

    def test_normalized_and_best_design(self, result):
        normalized = result.normalized()
        assert normalized[0].performance == 1.0
        best = result.best_design(target_performance=0.6)
        assert best.num_wimpy > 0

    def test_reference_label_flows_to_curve(self):
        result = (
            Study(explorer())
            .with_workload(section54_join())
            .with_reference("6B,2W")
            .run()
        )
        assert result.curve().reference.label == "6B,2W"
        assert result.normalized()[2].performance == 1.0

    def test_no_feasible_designs_raises(self):
        result = Study(explorer()).with_workload(section54_join(0.80, 0.10)).run()
        if result.feasible_points:  # guard: workload chosen to be infeasible
            pytest.skip("workload unexpectedly feasible")
        with pytest.raises(ModelError, match="no feasible design"):
            result.curve()

    def test_export_hooks(self, result):
        payload = json.loads(result.to_json())
        assert payload["workload"] == "nightly"
        assert payload["num_points"] == 9
        rows = result.to_rows()
        assert len(rows) == 9
        frontier_csv = result.frontier_csv()
        assert frontier_csv.splitlines()[0].startswith("label,")
        curve_csv = result.curve_csv()
        assert len(curve_csv.splitlines()) == len(result.feasible_points) + 1
