"""The Workload protocol: adapters, trace mixes, coercion, cache keys."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.protocol import (
    ArrivalMix,
    SingleJoin,
    TimedTrace,
    WeightedQuery,
    Workload,
    as_workload,
    is_timed,
    join_cache_key,
)
from repro.workloads.queries import section54_join
from repro.workloads.suite import SuiteEntry, WorkloadSuite


class TestWeightedQuery:
    def test_unpacks_as_spec_weight_pair(self):
        query = section54_join()
        spec, weight = WeightedQuery(query, 2.5)
        assert spec is query
        assert weight == 2.5

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(WorkloadError):
            WeightedQuery(section54_join(), 0.0)


class TestSingleJoin:
    def test_name_and_entries(self):
        query = section54_join()
        single = SingleJoin(query)
        assert single.name == query.name
        assert [tuple(e) for e in single.weighted_queries()] == [(query, 1.0)]
        assert [e.query for e in single] == [query]

    def test_cache_key_extends_join_key(self):
        query = section54_join()
        assert SingleJoin(query).cache_key() == ("join", *join_cache_key(query))


class TestArrivalMix:
    def test_from_trace_counts_arrivals(self):
        daily = section54_join(0.01, 0.01)
        weekly = section54_join(0.01, 0.10)
        events = [(daily, 0.0), (weekly, 5.0), (daily, 10.0), (daily, 60.0)]
        mix = ArrivalMix.from_trace("day", events)
        assert [tuple(e) for e in mix.weighted_queries()] == [
            (daily, 3.0),
            (weekly, 1.0),
        ]
        assert mix.total_weight == 4.0

    def test_first_appearance_order_is_kept(self):
        a, b = section54_join(0.01, 0.10), section54_join(0.10, 0.02)
        mix = ArrivalMix.from_trace("t", [(b, 0.0), (a, 1.0), (b, 2.0)])
        assert [entry.query for entry in mix.entries] == [b, a]

    def test_negative_arrival_time_rejected(self):
        with pytest.raises(WorkloadError, match=">= 0"):
            ArrivalMix.from_trace("t", [(section54_join(), -1.0)])

    def test_empty_trace_rejected(self):
        with pytest.raises(WorkloadError):
            ArrivalMix.from_trace("t", [])

    def test_duplicate_entries_rejected(self):
        query = section54_join()
        with pytest.raises(WorkloadError, match="twice"):
            ArrivalMix(
                name="t",
                entries=(WeightedQuery(query, 1.0), WeightedQuery(query, 2.0)),
            )

    def test_arrival_schedules_feed_traces(self):
        """The arrivals module's schedules zip directly into a mix."""
        from repro.workloads.arrivals import periodic_arrivals

        query = section54_join()
        times = periodic_arrivals(4, interval_s=30.0)
        mix = ArrivalMix.from_trace("periodic", [(query, t) for t in times])
        assert mix.weighted_queries()[0].weight == 4.0

    def test_out_of_order_events_are_time_sorted(self):
        """Regression: the docstring claimed times 'do not affect the
        weights' yet unsorted events silently changed entry order.  The
        enforced behavior: events sort by arrival time, so any list order
        of the same events yields the identical mix."""
        a, b = section54_join(0.01, 0.10), section54_join(0.10, 0.02)
        shuffled = ArrivalMix.from_trace("t", [(a, 9.0), (b, 0.0), (a, 4.0)])
        sorted_events = ArrivalMix.from_trace("t", [(b, 0.0), (a, 4.0), (a, 9.0)])
        assert shuffled == sorted_events
        # entry order is first-*arrival* order, not list order
        assert [entry.query for entry in shuffled.entries] == [b, a]
        assert shuffled.cache_key() == sorted_events.cache_key()


class TestTimedTrace:
    def test_schedule_is_time_sorted(self):
        a, b = section54_join(0.01, 0.10), section54_join(0.10, 0.02)
        trace = TimedTrace.from_trace("t", [(a, 9.0), (b, 0.0), (a, 4.0)])
        assert trace.schedule() == ((b, 0.0), (a, 4.0), (a, 9.0))
        assert trace.span_s == 9.0
        assert len(trace) == 3

    def test_weights_match_the_arrival_mix(self):
        """The untimed projection agrees with ArrivalMix.from_trace."""
        a, b = section54_join(0.01, 0.10), section54_join(0.10, 0.02)
        events = [(a, 5.0), (b, 1.0), (a, 3.0)]
        trace = TimedTrace.from_trace("t", events)
        mix = ArrivalMix.from_trace("t", events)
        assert trace.weighted_queries() == mix.weighted_queries()
        assert trace.weights_only() == mix
        assert trace.total_weight == 3.0

    def test_from_schedule_zips_with_generators(self):
        from repro.workloads.arrivals import poisson_arrivals

        query = section54_join()
        times = poisson_arrivals(5, rate_per_s=0.1, seed=2)
        trace = TimedTrace.from_schedule("poisson", query, times)
        assert [t for _, t in trace.schedule()] == times

    def test_cache_key_includes_times(self):
        """Two traces with identical weights but different schedules must
        never share cache rows — queueing depends on the times."""
        query = section54_join()
        burst = TimedTrace.from_schedule("t", query, [0.0, 0.0, 0.0])
        spread = TimedTrace.from_schedule("t", query, [0.0, 60.0, 120.0])
        assert burst.weighted_queries() == spread.weighted_queries()
        assert burst.cache_key() != spread.cache_key()

    def test_cache_key_disjoint_from_weights_only_key(self):
        query = section54_join()
        trace = TimedTrace.from_schedule("t", query, [0.0, 60.0])
        assert trace.cache_key() != trace.weights_only().cache_key()

    def test_validation(self):
        query = section54_join()
        with pytest.raises(WorkloadError):
            TimedTrace.from_trace("t", [])
        with pytest.raises(WorkloadError, match=">= 0"):
            TimedTrace.from_trace("t", [(query, -1.0)])

    def test_is_timed_is_structural(self):
        query = section54_join()
        trace = TimedTrace.from_schedule("t", query, [0.0])
        assert is_timed(trace)
        assert not is_timed(trace.weights_only())
        assert not is_timed(SingleJoin(query))
        assert not is_timed(query)

    def test_satisfies_the_workload_protocol(self):
        trace = TimedTrace.from_schedule("t", section54_join(), [0.0, 1.0])
        assert as_workload(trace) is trace
        assert isinstance(trace, Workload)


class TestAsWorkload:
    def test_join_spec_is_wrapped(self):
        query = section54_join()
        workload = as_workload(query)
        assert isinstance(workload, SingleJoin)
        assert workload.query is query

    def test_protocol_objects_pass_through(self):
        suite = WorkloadSuite.of("s", section54_join())
        mix = ArrivalMix.from_trace("t", [(section54_join(), 0.0)])
        single = SingleJoin(section54_join())
        for workload in (suite, mix, single):
            assert as_workload(workload) is workload

    def test_structural_duck_typing(self):
        """Any object with the three protocol members qualifies."""

        class Custom:
            name = "custom"

            def cache_key(self):
                return ("custom",)

            def weighted_queries(self):
                return (WeightedQuery(section54_join(), 1.0),)

        custom = Custom()
        assert as_workload(custom) is custom
        assert isinstance(custom, Workload)

    def test_non_workloads_rejected(self):
        with pytest.raises(WorkloadError, match="not a workload"):
            as_workload(42)
        with pytest.raises(WorkloadError, match="not a workload"):
            as_workload("section5.4-join")


class TestCacheKeyNonCollision:
    """A join, a suite, and a trace sharing one name must never collide."""

    def test_types_are_tagged(self):
        query = section54_join()  # name: section5.4-join
        single = SingleJoin(query)
        suite = WorkloadSuite(
            name=query.name, entries=(SuiteEntry(query, 1.0),)
        )
        mix = ArrivalMix.from_trace(query.name, [(query, 0.0)])
        keys = {single.cache_key(), suite.cache_key(), mix.cache_key()}
        assert len(keys) == 3

    def test_suite_keys_cover_weights(self):
        query = section54_join()
        light = WorkloadSuite(name="s", entries=(SuiteEntry(query, 1.0),))
        heavy = WorkloadSuite(name="s", entries=(SuiteEntry(query, 2.0),))
        assert light.cache_key() != heavy.cache_key()

    def test_suite_keys_cover_entry_parameters(self):
        a = WorkloadSuite.of("s", section54_join(0.01, 0.10))
        b = WorkloadSuite.of("s", section54_join(0.10, 0.10))
        assert a.cache_key() != b.cache_key()

    def test_join_keys_cover_tuple_bytes(self):
        """Joins differing only in tuple_bytes must not collide: custom
        evaluators may price per-tuple costs (regression)."""
        from dataclasses import replace

        base = section54_join()
        fat = replace(base, tuple_bytes=base.tuple_bytes * 10)
        assert join_cache_key(base) != join_cache_key(fat)
