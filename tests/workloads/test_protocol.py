"""The Workload protocol: adapters, trace mixes, coercion, cache keys."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.protocol import (
    ArrivalMix,
    SingleJoin,
    WeightedQuery,
    Workload,
    as_workload,
    join_cache_key,
)
from repro.workloads.queries import section54_join
from repro.workloads.suite import SuiteEntry, WorkloadSuite


class TestWeightedQuery:
    def test_unpacks_as_spec_weight_pair(self):
        query = section54_join()
        spec, weight = WeightedQuery(query, 2.5)
        assert spec is query
        assert weight == 2.5

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(WorkloadError):
            WeightedQuery(section54_join(), 0.0)


class TestSingleJoin:
    def test_name_and_entries(self):
        query = section54_join()
        single = SingleJoin(query)
        assert single.name == query.name
        assert [tuple(e) for e in single.weighted_queries()] == [(query, 1.0)]
        assert [e.query for e in single] == [query]

    def test_cache_key_extends_join_key(self):
        query = section54_join()
        assert SingleJoin(query).cache_key() == ("join", *join_cache_key(query))


class TestArrivalMix:
    def test_from_trace_counts_arrivals(self):
        daily = section54_join(0.01, 0.01)
        weekly = section54_join(0.01, 0.10)
        events = [(daily, 0.0), (weekly, 5.0), (daily, 10.0), (daily, 60.0)]
        mix = ArrivalMix.from_trace("day", events)
        assert [tuple(e) for e in mix.weighted_queries()] == [
            (daily, 3.0),
            (weekly, 1.0),
        ]
        assert mix.total_weight == 4.0

    def test_first_appearance_order_is_kept(self):
        a, b = section54_join(0.01, 0.10), section54_join(0.10, 0.02)
        mix = ArrivalMix.from_trace("t", [(b, 0.0), (a, 1.0), (b, 2.0)])
        assert [entry.query for entry in mix.entries] == [b, a]

    def test_negative_arrival_time_rejected(self):
        with pytest.raises(WorkloadError, match=">= 0"):
            ArrivalMix.from_trace("t", [(section54_join(), -1.0)])

    def test_empty_trace_rejected(self):
        with pytest.raises(WorkloadError):
            ArrivalMix.from_trace("t", [])

    def test_duplicate_entries_rejected(self):
        query = section54_join()
        with pytest.raises(WorkloadError, match="twice"):
            ArrivalMix(
                name="t",
                entries=(WeightedQuery(query, 1.0), WeightedQuery(query, 2.0)),
            )

    def test_arrival_schedules_feed_traces(self):
        """The arrivals module's schedules zip directly into a mix."""
        from repro.workloads.arrivals import periodic_arrivals

        query = section54_join()
        times = periodic_arrivals(4, interval_s=30.0)
        mix = ArrivalMix.from_trace("periodic", [(query, t) for t in times])
        assert mix.weighted_queries()[0].weight == 4.0


class TestAsWorkload:
    def test_join_spec_is_wrapped(self):
        query = section54_join()
        workload = as_workload(query)
        assert isinstance(workload, SingleJoin)
        assert workload.query is query

    def test_protocol_objects_pass_through(self):
        suite = WorkloadSuite.of("s", section54_join())
        mix = ArrivalMix.from_trace("t", [(section54_join(), 0.0)])
        single = SingleJoin(section54_join())
        for workload in (suite, mix, single):
            assert as_workload(workload) is workload

    def test_structural_duck_typing(self):
        """Any object with the three protocol members qualifies."""

        class Custom:
            name = "custom"

            def cache_key(self):
                return ("custom",)

            def weighted_queries(self):
                return (WeightedQuery(section54_join(), 1.0),)

        custom = Custom()
        assert as_workload(custom) is custom
        assert isinstance(custom, Workload)

    def test_non_workloads_rejected(self):
        with pytest.raises(WorkloadError, match="not a workload"):
            as_workload(42)
        with pytest.raises(WorkloadError, match="not a workload"):
            as_workload("section5.4-join")


class TestCacheKeyNonCollision:
    """A join, a suite, and a trace sharing one name must never collide."""

    def test_types_are_tagged(self):
        query = section54_join()  # name: section5.4-join
        single = SingleJoin(query)
        suite = WorkloadSuite(
            name=query.name, entries=(SuiteEntry(query, 1.0),)
        )
        mix = ArrivalMix.from_trace(query.name, [(query, 0.0)])
        keys = {single.cache_key(), suite.cache_key(), mix.cache_key()}
        assert len(keys) == 3

    def test_suite_keys_cover_weights(self):
        query = section54_join()
        light = WorkloadSuite(name="s", entries=(SuiteEntry(query, 1.0),))
        heavy = WorkloadSuite(name="s", entries=(SuiteEntry(query, 2.0),))
        assert light.cache_key() != heavy.cache_key()

    def test_suite_keys_cover_entry_parameters(self):
        a = WorkloadSuite.of("s", section54_join(0.01, 0.10))
        b = WorkloadSuite.of("s", section54_join(0.10, 0.10))
        assert a.cache_key() != b.cache_key()

    def test_join_keys_cover_tuple_bytes(self):
        """Joins differing only in tuple_bytes must not collide: custom
        evaluators may price per-tuple costs (regression)."""
        from dataclasses import replace

        base = section54_join()
        fat = replace(base, tuple_bytes=base.tuple_bytes * 10)
        assert join_cache_key(base) != join_cache_key(fat)
