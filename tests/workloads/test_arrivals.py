"""Arrival schedules and streamed query execution."""

import pytest

from repro.errors import PlanError, WorkloadError
from repro.hardware.cluster import ClusterSpec
from repro.hardware.presets import CLUSTER_V_NODE
from repro.pstore.engine import PStore, PStoreConfig
from repro.workloads.arrivals import batched_arrivals, periodic_arrivals, poisson_arrivals
from repro.workloads.queries import q3_join


class TestGenerators:
    def test_periodic(self):
        assert periodic_arrivals(3, 10.0) == [0.0, 10.0, 20.0]
        assert periodic_arrivals(2, 5.0, start_s=1.0) == [1.0, 6.0]

    def test_periodic_validation(self):
        with pytest.raises(WorkloadError):
            periodic_arrivals(0, 1.0)
        with pytest.raises(WorkloadError):
            periodic_arrivals(2, -1.0)

    def test_poisson_monotone_and_deterministic(self):
        a = poisson_arrivals(10, rate_per_s=0.5, seed=3)
        b = poisson_arrivals(10, rate_per_s=0.5, seed=3)
        assert a == b
        assert a[0] == 0.0
        assert all(x <= y for x, y in zip(a, a[1:]))

    def test_poisson_rate_controls_spacing(self):
        fast = poisson_arrivals(200, rate_per_s=1.0, seed=1)
        slow = poisson_arrivals(200, rate_per_s=0.1, seed=1)
        assert slow[-1] > fast[-1]

    def test_poisson_validation(self):
        with pytest.raises(WorkloadError):
            poisson_arrivals(0, 1.0)
        with pytest.raises(WorkloadError):
            poisson_arrivals(5, 0.0)

    def test_batched(self):
        assert batched_arrivals(3) == [0.0, 0.0, 0.0]
        with pytest.raises(WorkloadError):
            batched_arrivals(0)


class TestStreamedExecution:
    @pytest.fixture(scope="class")
    def engine(self):
        return PStore(
            ClusterSpec.homogeneous(CLUSTER_V_NODE, 4),
            config=PStoreConfig(warm_cache=True),
            record_intervals=False,
        )

    def test_spaced_arrivals_run_in_isolation(self, engine):
        """Wide spacing: every query sees an empty cluster."""
        workload = q3_join(100, 0.05, 0.05)
        solo = engine.simulate(workload)
        stream = engine.simulate_stream(
            workload, periodic_arrivals(3, interval_s=solo.makespan_s * 2)
        )
        for index in range(3):
            assert stream.response_time_s(f"join#{index}") == pytest.approx(
                solo.makespan_s, rel=1e-6
            )

    def test_overlapping_arrivals_contend(self, engine):
        """Tight spacing: later queries are slowed by earlier ones."""
        workload = q3_join(100, 0.05, 0.05)
        solo = engine.simulate(workload)
        stream = engine.simulate_stream(
            workload, periodic_arrivals(3, interval_s=solo.makespan_s * 0.25)
        )
        assert stream.response_time_s("join#1") > solo.makespan_s * 1.1

    def test_batched_stream_equals_concurrency_mode(self, engine):
        workload = q3_join(100, 0.05, 0.05)
        stream = engine.simulate_stream(workload, batched_arrivals(3))
        concurrent = engine.simulate(workload, concurrency=3)
        assert stream.makespan_s == pytest.approx(concurrent.makespan_s)
        assert stream.energy_j == pytest.approx(concurrent.energy_j)

    def test_stream_validation(self, engine):
        workload = q3_join(100, 0.05, 0.05)
        with pytest.raises(PlanError):
            engine.simulate_stream(workload, [])
        with pytest.raises(PlanError):
            engine.simulate_stream(workload, [-1.0])

    def test_delayed_execution_energy_tradeoff(self, engine):
        """The [20, 23] idea: spreading queries over time on a small cluster
        instead of bursting lowers peak contention; total energy per query
        stays comparable while individual latency improves."""
        workload = q3_join(100, 0.05, 0.05)
        burst = engine.simulate_stream(workload, batched_arrivals(4))
        solo_time = engine.simulate(workload).makespan_s
        spaced = engine.simulate_stream(
            workload, periodic_arrivals(4, interval_s=solo_time)
        )
        # spaced queries finish individually faster than the burst's average
        burst_rt = max(burst.response_time_s(f"join#{i}") for i in range(4))
        spaced_rt = max(spaced.response_time_s(f"join#{i}") for i in range(4))
        assert spaced_rt < burst_rt
