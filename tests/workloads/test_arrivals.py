"""Arrival schedules and streamed query execution."""

import numpy as np
import pytest

from repro.errors import PlanError, SimulationError, WorkloadError
from repro.hardware.cluster import ClusterSpec
from repro.hardware.presets import CLUSTER_V_NODE
from repro.pstore.engine import PStore, PStoreConfig
from repro.workloads.arrivals import (
    batched_arrivals,
    bursty_arrivals,
    diurnal_arrivals,
    periodic_arrivals,
    poisson_arrivals,
)
from repro.workloads.queries import q3_join


class TestGenerators:
    def test_periodic(self):
        assert periodic_arrivals(3, 10.0) == [0.0, 10.0, 20.0]
        assert periodic_arrivals(2, 5.0, start_s=1.0) == [1.0, 6.0]

    def test_periodic_validation(self):
        with pytest.raises(WorkloadError):
            periodic_arrivals(0, 1.0)
        with pytest.raises(WorkloadError):
            periodic_arrivals(2, -1.0)

    def test_poisson_monotone_and_deterministic(self):
        a = poisson_arrivals(10, rate_per_s=0.5, seed=3)
        b = poisson_arrivals(10, rate_per_s=0.5, seed=3)
        assert a == b
        assert a[0] == 0.0
        assert all(x <= y for x, y in zip(a, a[1:]))

    def test_poisson_rate_controls_spacing(self):
        fast = poisson_arrivals(200, rate_per_s=1.0, seed=1)
        slow = poisson_arrivals(200, rate_per_s=0.1, seed=1)
        assert slow[-1] > fast[-1]

    def test_poisson_single_arrival_is_the_start(self):
        assert poisson_arrivals(1, rate_per_s=0.5, seed=9, start_s=3.0) == [3.0]

    def test_poisson_realized_rate_is_unbiased(self):
        """Regression: the old implementation drew ``count`` gaps and then
        overwrote ``times[0] = start_s`` *after* the cumsum, making the
        first spacing the sum of two exponential draws — the realized
        rate was biased low.  The mean inter-arrival of a long trace must
        match 1/rate within sampling tolerance."""
        rate = 2.0
        times = np.asarray(poisson_arrivals(20_001, rate_per_s=rate, seed=7))
        gaps = np.diff(times)
        # 20k exponential gaps: the sample mean is within ~3 std errors
        assert gaps.mean() == pytest.approx(1.0 / rate, rel=0.03)

    def test_poisson_first_gap_is_one_draw(self):
        """The first spacing follows the same exponential as the rest:
        averaged over many seeds, it matches 1/rate (the old bias doubled
        it)."""
        rate = 0.5
        first_gaps = [
            poisson_arrivals(2, rate_per_s=rate, seed=seed)[1]
            for seed in range(400)
        ]
        mean = sum(first_gaps) / len(first_gaps)
        # 400 samples of Exp(1/rate): std error = (1/rate)/20 = 0.1; the
        # old two-draw bug would put the mean near 2/rate = 4.0
        assert mean == pytest.approx(1.0 / rate, rel=0.2)

    def test_poisson_validation(self):
        with pytest.raises(WorkloadError):
            poisson_arrivals(0, 1.0)
        with pytest.raises(WorkloadError):
            poisson_arrivals(5, 0.0)

    def test_batched(self):
        assert batched_arrivals(3) == [0.0, 0.0, 0.0]
        with pytest.raises(WorkloadError):
            batched_arrivals(0)


class TestDiurnalArrivals:
    def test_deterministic_monotone_and_counted(self):
        a = diurnal_arrivals(50, 0.1, 1.0, period_s=100.0, seed=4)
        b = diurnal_arrivals(50, 0.1, 1.0, period_s=100.0, seed=4)
        assert a == b
        assert len(a) == 50
        assert all(x < y for x, y in zip(a, a[1:]))
        assert a[0] >= 0.0

    def test_seed_changes_schedule(self):
        a = diurnal_arrivals(20, 0.1, 1.0, period_s=100.0, seed=1)
        b = diurnal_arrivals(20, 0.1, 1.0, period_s=100.0, seed=2)
        assert a != b

    def test_peaks_draw_more_arrivals_than_troughs(self):
        """The raised-cosine rate troughs at phase 0 and crests half a
        period in: counting arrivals landing in trough quarters vs peak
        quarters of each cycle must show a clear surplus at the peak."""
        period = 100.0
        times = diurnal_arrivals(
            2000, base_rate_per_s=0.05, peak_rate_per_s=2.0,
            period_s=period, seed=11,
        )
        phases = [(t % period) / period for t in times]
        trough = sum(1 for p in phases if p < 0.25 or p >= 0.75)
        peak = sum(1 for p in phases if 0.25 <= p < 0.75)
        assert peak > 3 * trough

    def test_zero_base_rate_empties_the_trough(self):
        """base=0: the instantaneous rate vanishes at phase 0, so almost
        nothing lands in the near-trough band."""
        period = 100.0
        times = diurnal_arrivals(
            1000, base_rate_per_s=0.0, peak_rate_per_s=2.0,
            period_s=period, seed=11,
        )
        phases = [(t % period) / period for t in times]
        near_trough = sum(1 for p in phases if p < 0.05 or p >= 0.95)
        assert near_trough < 0.03 * len(times)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            diurnal_arrivals(0, 0.1, 1.0, period_s=10.0)
        with pytest.raises(WorkloadError):
            diurnal_arrivals(5, 0.1, 0.0, period_s=10.0)
        with pytest.raises(WorkloadError):
            diurnal_arrivals(5, 2.0, 1.0, period_s=10.0)  # base > peak
        with pytest.raises(WorkloadError):
            diurnal_arrivals(5, -0.1, 1.0, period_s=10.0)
        with pytest.raises(WorkloadError):
            diurnal_arrivals(5, 0.1, 1.0, period_s=0.0)
        with pytest.raises(WorkloadError):
            diurnal_arrivals(5, 0.1, 1.0, period_s=10.0, start_s=-1.0)


class TestBurstyArrivals:
    def test_deterministic_monotone_and_counted(self):
        a = bursty_arrivals(40, 1.0, burst_s=10.0, idle_s=30.0, seed=5)
        b = bursty_arrivals(40, 1.0, burst_s=10.0, idle_s=30.0, seed=5)
        assert a == b
        assert len(a) == 40
        assert all(x < y for x, y in zip(a, a[1:]))

    def test_silent_idle_confines_arrivals_to_burst_windows(self):
        """idle_rate=0 is an exact property: every accepted arrival falls
        inside a burst window of its cycle."""
        burst, idle = 10.0, 40.0
        times = bursty_arrivals(
            500, 2.0, burst_s=burst, idle_s=idle, idle_rate_per_s=0.0, seed=7
        )
        cycle = burst + idle
        assert all(t % cycle < burst for t in times)

    def test_nonzero_idle_rate_populates_idle_windows(self):
        burst, idle = 10.0, 40.0
        times = bursty_arrivals(
            2000, 2.0, burst_s=burst, idle_s=idle,
            idle_rate_per_s=0.1, seed=7,
        )
        cycle = burst + idle
        in_idle = sum(1 for t in times if t % cycle >= burst)
        assert in_idle > 0
        # ...but the bursts still dominate despite the idle window being 4x
        # longer (rate ratio 20:1 vs duration ratio 1:4)
        assert in_idle < 0.5 * len(times)

    def test_start_offset_shifts_the_windows(self):
        burst, idle, start = 10.0, 40.0, 25.0
        times = bursty_arrivals(
            100, 2.0, burst_s=burst, idle_s=idle, seed=3, start_s=start
        )
        cycle = burst + idle
        assert times[0] >= start
        assert all((t - start) % cycle < burst for t in times)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            bursty_arrivals(0, 1.0, burst_s=1.0, idle_s=1.0)
        with pytest.raises(WorkloadError):
            bursty_arrivals(5, 0.0, burst_s=1.0, idle_s=1.0)
        with pytest.raises(WorkloadError):
            bursty_arrivals(5, 1.0, burst_s=0.0, idle_s=1.0)
        with pytest.raises(WorkloadError):
            bursty_arrivals(5, 1.0, burst_s=1.0, idle_s=-1.0)
        with pytest.raises(WorkloadError):
            # idle rate may not exceed the burst rate (thinning envelope)
            bursty_arrivals(5, 1.0, burst_s=1.0, idle_s=1.0, idle_rate_per_s=2.0)


class TestStreamedExecution:
    @pytest.fixture(scope="class")
    def engine(self):
        return PStore(
            ClusterSpec.homogeneous(CLUSTER_V_NODE, 4),
            config=PStoreConfig(warm_cache=True),
            record_intervals=False,
        )

    def test_spaced_arrivals_run_in_isolation(self, engine):
        """Wide spacing: every query sees an empty cluster."""
        workload = q3_join(100, 0.05, 0.05)
        solo = engine.simulate(workload)
        stream = engine.simulate_stream(
            workload, periodic_arrivals(3, interval_s=solo.makespan_s * 2)
        )
        for index in range(3):
            assert stream.response_time_s(f"join#{index}") == pytest.approx(
                solo.makespan_s, rel=1e-6
            )

    def test_overlapping_arrivals_contend(self, engine):
        """Tight spacing: later queries are slowed by earlier ones."""
        workload = q3_join(100, 0.05, 0.05)
        solo = engine.simulate(workload)
        stream = engine.simulate_stream(
            workload, periodic_arrivals(3, interval_s=solo.makespan_s * 0.25)
        )
        assert stream.response_time_s("join#1") > solo.makespan_s * 1.1

    def test_batched_stream_equals_concurrency_mode(self, engine):
        workload = q3_join(100, 0.05, 0.05)
        stream = engine.simulate_stream(workload, batched_arrivals(3))
        concurrent = engine.simulate(workload, concurrency=3)
        assert stream.makespan_s == pytest.approx(concurrent.makespan_s)
        assert stream.energy_j == pytest.approx(concurrent.energy_j)

    def test_stream_validation(self, engine):
        workload = q3_join(100, 0.05, 0.05)
        with pytest.raises(PlanError):
            engine.simulate_stream(workload, [])
        # Malformed schedules fail upfront with a SimulationError (the
        # schedule is validated before any job is built).
        with pytest.raises(SimulationError, match="negative arrival"):
            engine.simulate_stream(workload, [-1.0])
        with pytest.raises(SimulationError, match="non-finite"):
            engine.simulate_stream(workload, [0.0, float("nan")])

    def test_stream_accepts_numpy_schedules(self, engine):
        """Regression: ``if not start_times_s`` / ``any(t < 0 ...)`` raised
        ``ValueError: truth value of an array is ambiguous`` on the numpy
        arrays that cumsum-based generators naturally produce."""
        workload = q3_join(100, 0.05, 0.05)
        times = np.cumsum(np.asarray([0.0, 50.0, 50.0]))
        result = engine.simulate_stream(workload, times)
        assert result.response_time_s("join#2") > 0
        listed = engine.simulate_stream(workload, [float(t) for t in times])
        assert result.makespan_s == pytest.approx(listed.makespan_s)
        with pytest.raises(PlanError):
            engine.simulate_stream(workload, np.asarray([]))
        with pytest.raises(SimulationError, match="negative arrival"):
            engine.simulate_stream(workload, np.asarray([-1.0, 0.0]))

    def test_compressing_arrivals_never_improves_response(self, engine):
        """Queueing semantics: shrinking the inter-arrival interval can
        only add contention, so the worst response time is monotonically
        non-improving, and interval -> 0 approaches the batched
        (all-at-once concurrency) result."""
        workload = q3_join(100, 0.05, 0.05)
        solo = engine.simulate(workload).makespan_s
        worsts = []
        for interval in (2.0 * solo, solo, 0.5 * solo, 0.1 * solo, 0.0):
            stream = engine.simulate_stream(
                workload, periodic_arrivals(3, interval_s=interval)
            )
            worsts.append(
                max(stream.response_time_s(f"join#{i}") for i in range(3))
            )
        for looser, tighter in zip(worsts, worsts[1:]):
            assert tighter >= looser * (1 - 1e-9)
        batched = engine.simulate(workload, concurrency=3)
        assert worsts[-1] == pytest.approx(batched.makespan_s)

    def test_delayed_execution_energy_tradeoff(self, engine):
        """The [20, 23] idea: spreading queries over time on a small cluster
        instead of bursting lowers peak contention; total energy per query
        stays comparable while individual latency improves."""
        workload = q3_join(100, 0.05, 0.05)
        burst = engine.simulate_stream(workload, batched_arrivals(4))
        solo_time = engine.simulate(workload).makespan_s
        spaced = engine.simulate_stream(
            workload, periodic_arrivals(4, interval_s=solo_time)
        )
        # spaced queries finish individually faster than the burst's average
        burst_rt = max(burst.response_time_s(f"join#{i}") for i in range(4))
        spaced_rt = max(spaced.response_time_s(f"join#{i}") for i in range(4))
        assert spaced_rt < burst_rt
