"""Join workload specifications."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.queries import (
    JoinMethod,
    JoinWorkloadSpec,
    q3_join,
    section54_join,
)


def test_q3_join_volumes_sf1000():
    q = q3_join(1000)
    assert q.build_volume_mb == pytest.approx(30_000.0)  # ORDERS projected
    assert q.probe_volume_mb == pytest.approx(120_000.0)  # LINEITEM projected
    assert q.build_selectivity == 0.05
    assert q.probe_selectivity == 0.05


def test_section54_volumes():
    q = section54_join()
    assert q.build_volume_mb == pytest.approx(700_000.0)  # 700 GB
    assert q.probe_volume_mb == pytest.approx(2_800_000.0)  # 2.8 TB
    assert q.build_selectivity == 0.10
    assert q.probe_selectivity == 0.01


def test_qualifying_volumes():
    q = section54_join(0.10, 0.01)
    assert q.qualifying_build_mb == pytest.approx(70_000.0)
    assert q.qualifying_probe_mb == pytest.approx(28_000.0)


def test_hash_table_share_paper_example():
    """Figure 10(a): 1% ORDERS selectivity -> 875 MB per node on 8 nodes."""
    q = section54_join(0.01, 0.10)
    assert q.hash_table_share_mb(8) == pytest.approx(875.0)


def test_hash_table_share_invalid_nodes():
    with pytest.raises(WorkloadError):
        section54_join().hash_table_share_mb(0)


def test_with_selectivities():
    q = section54_join(0.10, 0.10).with_selectivities(probe=0.02)
    assert q.build_selectivity == 0.10
    assert q.probe_selectivity == 0.02


def test_with_method():
    q = q3_join(100).with_method(JoinMethod.BROADCAST)
    assert q.method is JoinMethod.BROADCAST


def test_invalid_selectivity():
    with pytest.raises(WorkloadError):
        JoinWorkloadSpec(
            name="bad",
            build_volume_mb=10.0,
            probe_volume_mb=10.0,
            build_selectivity=0.0,
            probe_selectivity=0.5,
        )
    with pytest.raises(WorkloadError):
        section54_join(1.5, 0.1)


def test_invalid_volume():
    with pytest.raises(WorkloadError):
        JoinWorkloadSpec(
            name="bad",
            build_volume_mb=0.0,
            probe_volume_mb=10.0,
            build_selectivity=0.5,
            probe_selectivity=0.5,
        )


def test_str_mentions_method():
    assert "shuffle" in str(q3_join(1))
