"""Skew generators (the Section 4.1 future-work bottleneck)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.skew import (
    hot_node_weights,
    imbalance,
    zipf_keys,
    zipf_partition_weights,
)


class TestZipfWeights:
    def test_theta_zero_is_uniform(self):
        weights = zipf_partition_weights(4, theta=0.0)
        assert weights == pytest.approx([1.0, 1.0, 1.0, 1.0])

    def test_weights_normalized_to_node_count(self):
        weights = zipf_partition_weights(8, theta=1.0)
        assert sum(weights) == pytest.approx(8.0)

    def test_weights_decreasing(self):
        weights = zipf_partition_weights(6, theta=0.8)
        assert weights == sorted(weights, reverse=True)

    def test_higher_theta_more_skew(self):
        mild = imbalance(zipf_partition_weights(8, theta=0.3))
        heavy = imbalance(zipf_partition_weights(8, theta=1.2))
        assert heavy > mild > 1.0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            zipf_partition_weights(0, 0.5)
        with pytest.raises(WorkloadError):
            zipf_partition_weights(4, -0.1)

    @given(st.integers(1, 16), st.floats(0.0, 2.0))
    def test_property_positive_and_normalized(self, n, theta):
        weights = zipf_partition_weights(n, theta)
        assert all(w > 0 for w in weights)
        assert sum(weights) == pytest.approx(n)


class TestHotNode:
    def test_hot_fraction(self):
        weights = hot_node_weights(4, hot_fraction=0.55)
        assert weights[0] == pytest.approx(0.55 * 4)
        assert sum(weights) == pytest.approx(4.0)

    def test_uniform_special_case(self):
        weights = hot_node_weights(4, hot_fraction=0.25)
        assert weights == pytest.approx([1.0] * 4)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            hot_node_weights(1, 0.5)
        with pytest.raises(WorkloadError):
            hot_node_weights(4, 1.0)


class TestZipfKeys:
    def test_uniform_theta_zero(self):
        keys = zipf_keys(50_000, 100, theta=0.0, seed=1)
        counts = np.bincount(keys, minlength=101)[1:]
        assert counts.max() / counts.mean() < 1.3

    def test_skewed_keys_concentrate(self):
        keys = zipf_keys(50_000, 100, theta=1.5, seed=1)
        hottest = np.sum(keys == 1) / len(keys)
        assert hottest > 0.15  # key 1 dominates

    def test_keys_in_domain(self):
        keys = zipf_keys(1000, 10, theta=1.0, seed=2)
        assert keys.min() >= 1
        assert keys.max() <= 10

    def test_deterministic(self):
        a = zipf_keys(100, 10, 1.0, seed=5)
        b = zipf_keys(100, 10, 1.0, seed=5)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            zipf_keys(0, 10, 1.0)
        with pytest.raises(WorkloadError):
            zipf_keys(10, 10, -1.0)


class TestImbalance:
    def test_balanced(self):
        assert imbalance([1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_skewed(self):
        assert imbalance([3.0, 1.0]) == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            imbalance([])


class TestSkewInSimulator:
    def test_skew_slows_the_join(self):
        """The hot node gates the barrier, stretching response time."""
        from repro.hardware.cluster import ClusterSpec
        from repro.hardware.presets import CLUSTER_V_NODE
        from repro.pstore.engine import PStore, PStoreConfig
        from repro.workloads.queries import q3_join

        engine = PStore(
            ClusterSpec.homogeneous(CLUSTER_V_NODE, 4),
            config=PStoreConfig(warm_cache=True),
            record_intervals=False,
        )
        workload = q3_join(100, 0.01, 0.01)  # CPU-bound: barrier fully visible
        uniform = engine.simulate(workload)
        skewed = engine.simulate(
            workload, partition_weights=zipf_partition_weights(4, theta=1.0)
        )
        assert skewed.makespan_s > uniform.makespan_s
        # the hot node holds ~48% of data vs 25% uniform -> ~1.9x slower
        expected = zipf_partition_weights(4, theta=1.0)[0]
        assert skewed.makespan_s == pytest.approx(
            uniform.makespan_s * expected, rel=0.05
        )
