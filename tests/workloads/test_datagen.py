"""Synthetic data generation."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import datagen


SF = 0.002  # 3000 orders, ~12000 lineitems: fast but statistically useful


def test_orders_schema_and_cardinality():
    orders = datagen.generate_orders(SF, seed=1)
    assert orders.num_rows == 3000
    assert set(orders.column_names) == {
        "o_orderkey",
        "o_custkey",
        "o_orderdate",
        "o_shippriority",
    }


def test_orders_keys_are_dense_and_unique():
    orders = datagen.generate_orders(SF, seed=1)
    keys = orders.column("o_orderkey")
    assert keys.min() == 1
    assert keys.max() == orders.num_rows
    assert len(np.unique(keys)) == orders.num_rows


def test_lineitem_references_orders():
    orders, lineitem = datagen.generate_join_pair(SF, seed=2)
    assert set(np.unique(lineitem.column("l_orderkey"))).issubset(
        set(orders.column("o_orderkey"))
    )


def test_lineitem_fanout_in_tpch_range():
    orders, lineitem = datagen.generate_join_pair(SF, seed=3)
    fanout = lineitem.num_rows / orders.num_rows
    assert 3.0 < fanout < 5.0  # uniform 1..7 -> mean 4


def test_determinism():
    a = datagen.generate_orders(SF, seed=5)
    b = datagen.generate_orders(SF, seed=5)
    assert np.array_equal(a.column("o_custkey"), b.column("o_custkey"))


def test_different_seeds_differ():
    a = datagen.generate_orders(SF, seed=5)
    b = datagen.generate_orders(SF, seed=6)
    assert not np.array_equal(a.column("o_custkey"), b.column("o_custkey"))


def test_dates_within_domain():
    orders = datagen.generate_orders(SF, seed=7)
    dates = orders.column("o_orderdate")
    assert dates.min() >= datagen.DATE_MIN
    assert dates.max() <= datagen.DATE_MAX


@pytest.mark.parametrize("selectivity", [0.01, 0.10, 0.50, 1.00])
def test_date_cutoff_achieves_selectivity(selectivity):
    _, lineitem = datagen.generate_join_pair(0.01, seed=11)
    cutoff = datagen.date_cutoff_for_selectivity(selectivity)
    actual = float(np.mean(lineitem.column("l_shipdate") < cutoff))
    assert actual == pytest.approx(selectivity, abs=0.03)


def test_date_cutoff_extremes():
    assert datagen.date_cutoff_for_selectivity(0.0) == datagen.DATE_MIN
    cutoff = datagen.date_cutoff_for_selectivity(1.0)
    assert cutoff > datagen.DATE_MAX  # everything qualifies


def test_date_cutoff_invalid():
    with pytest.raises(WorkloadError):
        datagen.date_cutoff_for_selectivity(1.5)


def test_invalid_scale():
    with pytest.raises(WorkloadError):
        datagen.generate_orders(0.0)
    with pytest.raises(WorkloadError):
        datagen.generate_lineitem(-1.0)


def test_lineitem_standalone_generation():
    lineitem = datagen.generate_lineitem(SF, seed=13)
    assert lineitem.num_rows > 0
    assert lineitem.column("l_discount").max() <= 0.10
