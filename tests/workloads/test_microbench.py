"""The Figure 6 single-node microbenchmark."""

import pytest

from repro.errors import WorkloadError
from repro.hardware.presets import LAPTOP_B, TABLE2_SYSTEMS, WORKSTATION_A
from repro.workloads.microbench import (
    FIGURE6_JOIN,
    MicroJoinSpec,
    run_functional_microbench,
    simulate_microbench,
)


def test_figure6_join_shape():
    assert FIGURE6_JOIN.build_mb == pytest.approx(10.0)
    assert FIGURE6_JOIN.probe_mb == pytest.approx(2000.0)


def test_invalid_spec():
    with pytest.raises(WorkloadError):
        MicroJoinSpec(build_rows=0, probe_rows=10, row_bytes=100)


def test_laptop_b_lowest_energy():
    """The paper's headline: Laptop B wins on energy despite being slower."""
    results = {s.name: simulate_microbench(s) for s in TABLE2_SYSTEMS}
    best = min(results.values(), key=lambda r: r.energy_j)
    assert best.system == "laptop-B"


def test_workstations_fastest():
    results = {s.name: simulate_microbench(s) for s in TABLE2_SYSTEMS}
    fastest = min(results.values(), key=lambda r: r.response_time_s)
    assert fastest.system.startswith("workstation")


def test_paper_energy_magnitudes():
    """Laptop B ~800 J, Workstation A ~1300 J (Figure 6's y-axis)."""
    laptop = simulate_microbench(LAPTOP_B)
    workstation = simulate_microbench(WORKSTATION_A)
    assert laptop.energy_j == pytest.approx(800.0, rel=0.10)
    assert workstation.energy_j == pytest.approx(1300.0, rel=0.10)


def test_laptop_slower_but_cheaper():
    laptop = simulate_microbench(LAPTOP_B)
    workstation = simulate_microbench(WORKSTATION_A)
    assert laptop.response_time_s > workstation.response_time_s
    assert laptop.energy_j < workstation.energy_j


def test_average_power():
    r = simulate_microbench(LAPTOP_B)
    assert r.average_power_w == pytest.approx(r.energy_j / r.response_time_s)


def test_functional_microbench_join_is_correct():
    expected, joined = run_functional_microbench(scale=0.002, seed=3)
    assert joined.num_rows == expected
    assert "build_payload" in joined
    assert "probe_payload" in joined


def test_functional_microbench_invalid_scale():
    with pytest.raises(WorkloadError):
        run_functional_microbench(scale=0.0)
