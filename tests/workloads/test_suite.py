"""Multi-query workload suites."""

import pytest

from repro.core.design_space import DesignSpaceExplorer
from repro.core.model import ModelParameters
from repro.errors import ModelError, WorkloadError
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.workloads.queries import section54_join
from repro.workloads.suite import (
    SuiteEntry,
    WorkloadSuite,
    evaluate_suite,
    suite_from_selectivity_mix,
    suite_tradeoff_curve,
)


def explorer():
    return DesignSpaceExplorer(CLUSTER_V_NODE, WIMPY_LAPTOP_B, cluster_size=8)


def mixed_suite():
    return WorkloadSuite(
        name="nightly",
        entries=(
            SuiteEntry(section54_join(0.01, 0.10), weight=3.0),  # homogeneous-mode
            SuiteEntry(section54_join(0.10, 0.02), weight=1.0),  # heterogeneous-mode
        ),
    )


class TestSuiteConstruction:
    def test_of_builder_equal_weights(self):
        suite = WorkloadSuite.of("s", section54_join(0.01, 0.10))
        assert suite.total_weight == 1.0

    def test_duplicate_workloads_rejected(self):
        q = section54_join(0.01, 0.10)
        with pytest.raises(WorkloadError, match="same workload twice"):
            WorkloadSuite.of("s", q, q)

    def test_empty_suite_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadSuite(name="empty", entries=())

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(WorkloadError):
            SuiteEntry(section54_join(0.01, 0.10), weight=0.0)

    def test_selectivity_mix_builder(self):
        suite = suite_from_selectivity_mix(
            "mix", section54_join(0.10, 0.10), [0.02, 0.06, 0.10]
        )
        assert len(suite.entries) == 3
        names = [entry.workload.name for entry in suite.entries]
        assert len(set(names)) == 3
        sels = [entry.workload.probe_selectivity for entry in suite.entries]
        assert sels == [0.02, 0.06, 0.10]

    def test_selectivity_mix_weights_length(self):
        with pytest.raises(WorkloadError):
            suite_from_selectivity_mix(
                "mix", section54_join(0.10, 0.10), [0.02, 0.10], weights=[1.0]
            )


class TestEvaluation:
    def test_totals_are_weighted_sums(self):
        suite = mixed_suite()
        params = ModelParameters.from_specs(CLUSTER_V_NODE, 8)
        evaluation = evaluate_suite(suite, params)
        from repro.core.model import PStoreModel

        model = PStoreModel(params)
        expected_time = 3.0 * model.predict(suite.entries[0].workload).time_s
        expected_time += 1.0 * model.predict(suite.entries[1].workload).time_s
        assert evaluation.time_s == pytest.approx(expected_time)
        assert evaluation.mean_response_time_s == pytest.approx(expected_time / 4.0)

    def test_infeasible_query_fails_the_suite(self):
        suite = WorkloadSuite.of("s", section54_join(0.10, 0.10))
        params = ModelParameters.from_specs(CLUSTER_V_NODE, 1)  # 1 node: no fit
        with pytest.raises(ModelError):
            evaluate_suite(suite, params)


class TestSuiteCurve:
    def test_curve_skips_designs_infeasible_for_any_query(self):
        curve = suite_tradeoff_curve(mixed_suite(), explorer())
        labels = [p.label for p in curve]
        # the heterogeneous-mode query needs >= 2 beefy nodes
        assert "1B,7W" not in labels
        assert "0B,8W" not in labels
        assert labels[0] == "8B,0W"

    def test_suite_level_design_selection(self):
        curve = suite_tradeoff_curve(mixed_suite(), explorer())
        best = curve.best_design(target_performance=0.6)
        norm = curve.normalized_point(best.label)
        assert norm.performance >= 0.6
        # mixing in the scalable query still leaves wimpy substitution a win
        assert best.num_wimpy > 0
        assert norm.energy < 1.0
