"""TPC-H schema metadata and sizing."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import tpch


def test_row_counts_at_sf1():
    assert tpch.LINEITEM.rows(1) == 6_000_000
    assert tpch.ORDERS.rows(1) == 1_500_000
    assert tpch.CUSTOMER.rows(1) == 150_000
    assert tpch.SUPPLIER.rows(1) == 10_000


def test_fixed_cardinality_tables_ignore_scale():
    assert tpch.NATION.rows(1000) == 25
    assert tpch.REGION.rows(1000) == 5


def test_row_counts_scale_linearly():
    assert tpch.LINEITEM.rows(400) == 2_400_000_000


def test_fractional_scale_factor():
    assert tpch.ORDERS.rows(0.001) == 1_500


def test_invalid_scale_factor():
    with pytest.raises(WorkloadError):
        tpch.LINEITEM.rows(0)


def test_projected_sizes_match_paper_working_sets():
    """Section 5.2: 48 GB LINEITEM and 12 GB ORDERS at SF 400."""
    assert tpch.projected_size_mb(tpch.LINEITEM, 400) == pytest.approx(48_000.0)
    assert tpch.projected_size_mb(tpch.ORDERS, 400) == pytest.approx(12_000.0)


def test_projected_sizes_at_sf1000():
    """Section 4.3's in-memory projections at scale 1000."""
    assert tpch.projected_size_mb(tpch.LINEITEM, 1000) == pytest.approx(120_000.0)
    assert tpch.projected_size_mb(tpch.ORDERS, 1000) == pytest.approx(30_000.0)


def test_projection_bytes_explicit_columns():
    width = tpch.LINEITEM.projection_bytes(tpch.LINEITEM_JOIN_PROJECTION)
    assert width == 8 + 8 + 4 + 4  # orderkey, extendedprice, discount, shipdate


def test_full_size_uses_row_bytes():
    mb = tpch.full_size_mb(tpch.ORDERS, 1)
    assert mb == pytest.approx(1_500_000 * tpch.ORDERS.row_bytes / 1e6)


def test_full_lineitem_larger_than_orders():
    assert tpch.full_size_mb(tpch.LINEITEM, 1) > tpch.full_size_mb(tpch.ORDERS, 1)


def test_unknown_column():
    with pytest.raises(WorkloadError):
        tpch.LINEITEM.column("nope")


def test_registry_contains_all_eight_tables():
    assert set(tpch.TPCH_TABLES) == {
        "lineitem",
        "orders",
        "customer",
        "supplier",
        "part",
        "partsupp",
        "nation",
        "region",
    }


def test_duplicate_columns_rejected():
    with pytest.raises(WorkloadError):
        tpch.TableSchema(
            name="bad",
            rows_per_sf=10,
            columns=(tpch.Column("x", 4), tpch.Column("x", 8)),
        )
