"""Functional execution must move the data volumes the simulator prices.

The simulated executor charges the network `selectivity * volume * (n-1)/n`
for a shuffle and `selectivity * volume * (n-1)` for a broadcast; here we
run the *functional* engine on real tuples and check the rows that actually
crossed node boundaries match those fractions (within hash-placement
noise).  This ties the two P-store halves together.
"""

import pytest

from repro.pstore.catalog import PartitionScheme
from repro.pstore.functional import FunctionalCluster
from repro.pstore.planner import broadcast_network_mb, shuffle_network_mb
from repro.pstore.storage import PartitionedStore
from repro.workloads import datagen
from repro.workloads.queries import JoinWorkloadSpec

SF = 0.004
NUM_NODES = 4


@pytest.fixture(scope="module")
def tables():
    return datagen.generate_join_pair(SF, seed=33)


def partitions(batch, key):
    return PartitionedStore("t", batch, PartitionScheme.hash(key), NUM_NODES).partitions()


def predicate(column, selectivity):
    cutoff = datagen.date_cutoff_for_selectivity(selectivity)
    return lambda b: b.column(column) < cutoff


@pytest.mark.parametrize("build_sel,probe_sel", [(1.0, 1.0), (0.5, 0.25), (0.1, 0.6)])
def test_shuffle_rows_match_simulated_fraction(tables, build_sel, probe_sel):
    orders, lineitem = tables
    cluster = FunctionalCluster(NUM_NODES)
    result = cluster.shuffle_join(
        partitions(orders, "o_custkey"),
        partitions(lineitem, "l_shipdate"),
        build_key="o_orderkey",
        probe_key="l_orderkey",
        build_predicate=predicate("o_orderdate", build_sel),
        probe_predicate=predicate("l_shipdate", probe_sel),
    )
    expected_fraction = (NUM_NODES - 1) / NUM_NODES
    assert result.build_stats.network_fraction == pytest.approx(
        expected_fraction, abs=0.05
    )
    assert result.probe_stats.network_fraction == pytest.approx(
        expected_fraction, abs=0.05
    )

    # Row counts track the workload's qualifying volumes.
    qualifying_build = result.build_stats.total_rows
    assert qualifying_build == pytest.approx(orders.num_rows * build_sel, rel=0.15)


def test_shuffle_bytes_match_planner_estimate(tables):
    """ExchangeStats bytes ~= shuffle_network_mb for the same workload."""
    orders, lineitem = tables
    row_bytes = 20
    cluster = FunctionalCluster(NUM_NODES, row_bytes=row_bytes)
    build_sel, probe_sel = 0.5, 0.5
    result = cluster.shuffle_join(
        partitions(orders, "o_custkey"),
        partitions(lineitem, "l_shipdate"),
        build_key="o_orderkey",
        probe_key="l_orderkey",
        build_predicate=predicate("o_orderdate", build_sel),
        probe_predicate=predicate("l_shipdate", probe_sel),
    )
    workload = JoinWorkloadSpec(
        name="functional-parity",
        build_volume_mb=orders.num_rows * row_bytes / 1e6,
        probe_volume_mb=lineitem.num_rows * row_bytes / 1e6,
        build_selectivity=build_sel,
        probe_selectivity=probe_sel,
    )
    expected_mb = shuffle_network_mb(workload, NUM_NODES, NUM_NODES)
    actual_mb = (result.build_stats.bytes_sent + result.probe_stats.bytes_sent) / 1e6
    assert actual_mb == pytest.approx(expected_mb, rel=0.10)


def test_broadcast_bytes_match_planner_estimate(tables):
    orders, lineitem = tables
    row_bytes = 20
    cluster = FunctionalCluster(NUM_NODES, row_bytes=row_bytes)
    build_sel = 0.2
    result = cluster.broadcast_join(
        partitions(orders, "o_custkey"),
        partitions(lineitem, "l_shipdate"),
        build_key="o_orderkey",
        probe_key="l_orderkey",
        build_predicate=predicate("o_orderdate", build_sel),
    )
    workload = JoinWorkloadSpec(
        name="broadcast-parity",
        build_volume_mb=orders.num_rows * row_bytes / 1e6,
        probe_volume_mb=lineitem.num_rows * row_bytes / 1e6,
        build_selectivity=build_sel,
        probe_selectivity=1.0,
    )
    expected_mb = broadcast_network_mb(workload, NUM_NODES)
    actual_mb = result.build_stats.bytes_sent / 1e6
    assert actual_mb == pytest.approx(expected_mb, rel=0.10)


def test_heterogeneous_routing_concentrates_on_join_nodes(tables):
    """With 2 of 4 nodes joining, each join node ingests ~3/8 of qualifying
    rows (vs 3/16 homogeneous) — the ingest-concentration effect."""
    orders, lineitem = tables
    cluster = FunctionalCluster(NUM_NODES)
    hetero = cluster.shuffle_join(
        partitions(orders, "o_custkey"),
        partitions(lineitem, "l_shipdate"),
        build_key="o_orderkey",
        probe_key="l_orderkey",
        join_node_ids=[0, 1],
    )
    homo = cluster.shuffle_join(
        partitions(orders, "o_custkey"),
        partitions(lineitem, "l_shipdate"),
        build_key="o_orderkey",
        probe_key="l_orderkey",
    )
    # same total network rows (the invariant the planner encodes)...
    assert hetero.build_stats.rows_sent == pytest.approx(
        homo.build_stats.rows_sent, rel=0.10
    )
    # ...but concentrated on half as many receivers
    hetero_per_node = hetero.build_stats.rows_sent / 2
    homo_per_node = homo.build_stats.rows_sent / 4
    assert hetero_per_node == pytest.approx(2 * homo_per_node, rel=0.10)
