"""Every paper artifact regenerates and every claim holds."""

import pytest

from repro.errors import ReproError
from repro.experiments import EXPERIMENTS, run, run_all


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_claims_hold(experiment_id):
    result = run(experiment_id)
    assert result.experiment_id == experiment_id
    assert result.text.strip()
    assert result.claims, "every experiment must check paper claims"
    assert result.all_claims_hold, "\n" + result.report()


def test_registry_covers_every_paper_artifact():
    from repro.experiments import EXTENSION_EXPERIMENTS, PAPER_EXPERIMENTS

    expected = {
        "fig1a", "fig1b", "fig2a", "fig2b", "fig3", "fig4", "fig5", "fig6",
        "fig7a", "fig7b", "fig8", "fig9", "fig10a", "fig10b", "fig11",
        "fig12", "tbl1", "tbl2", "tbl3",
    }
    assert set(PAPER_EXPERIMENTS) == expected
    assert set(EXTENSION_EXPERIMENTS) == {
        "ext-trends", "ext-skew", "ext-dvfs", "ext-stream",
    }
    assert set(EXPERIMENTS) == expected | set(EXTENSION_EXPERIMENTS)


def test_unknown_experiment():
    with pytest.raises(ReproError, match="unknown experiment"):
        run("fig99")


def test_run_all_returns_everything():
    results = run_all()
    assert len(results) == len(EXPERIMENTS)


def test_cli_main(capsys):
    from repro.experiments.__main__ import main

    assert main(["tbl3", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "tbl3: ok" in out


def test_cli_full_report(capsys):
    from repro.experiments.__main__ import main

    assert main(["tbl2"]) == 0
    out = capsys.readouterr().out
    assert "laptop-B" in out
    assert "[PASS]" in out


def test_cli_list(capsys):
    from repro.experiments.__main__ import main

    assert main(["--list"]) == 0
    out = capsys.readouterr().out.split()
    assert out == list(EXPERIMENTS)


def test_cli_json(capsys):
    import json

    from repro.experiments.__main__ import main

    assert main(["tbl3", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["id"] == "tbl3"
    assert payload["all_claims_hold"] is True


def test_cli_requires_ids():
    from repro.experiments.__main__ import main

    with pytest.raises(SystemExit):
        main([])


def test_report_format():
    result = run("tbl3")
    report = result.report()
    assert report.startswith("=== tbl3")
    assert "[PASS]" in report
