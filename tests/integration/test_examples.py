"""Every example script runs cleanly end-to-end (deliverable b)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable minimum, comfortably exceeded


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples must print their findings"


def test_quickstart_mentions_best_design():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "Best design" in completed.stdout
    assert "B," in completed.stdout  # a mix label like 3B,5W
