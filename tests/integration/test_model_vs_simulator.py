"""The analytical model and the fluid simulator must tell the same story.

These are the library's own "Figure 8/9" checks, run over a wider grid than
the paper's: absolute agreement for homogeneous clusters (both
implementations compute the same physics) and normalized agreement for
mixed clusters (where the model approximates barrier/ingest dynamics).
"""

import pytest

from repro.core.model import ModelParameters, PStoreModel
from repro.hardware.cluster import ClusterSpec
from repro.hardware.presets import BEEFY_L5630, CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.pstore.engine import PStore, PStoreConfig
from repro.pstore.plans import ExecutionMode
from repro.workloads.queries import q3_join, section54_join

SELECTIVITY_GRID = [(0.01, 0.01), (0.01, 0.10), (0.10, 0.05), (0.25, 0.25)]


@pytest.mark.parametrize("sb,sp", SELECTIVITY_GRID)
@pytest.mark.parametrize("size", [2, 4, 8])
def test_homogeneous_cold_absolute_agreement(sb, sp, size):
    cluster = ClusterSpec.homogeneous(CLUSTER_V_NODE, size)
    engine = PStore(cluster, config=PStoreConfig(warm_cache=False), record_intervals=False)
    model = PStoreModel(ModelParameters.from_cluster(cluster), warm_cache=False)
    workload = section54_join(sb, sp)
    if workload.hash_table_share_mb(size) > CLUSTER_V_NODE.memory_mb:
        pytest.skip("hash table does not fit at this size (P-store has no 2-pass join)")
    simulated = engine.simulate(workload, force_mode=ExecutionMode.HOMOGENEOUS)
    predicted = model.predict(workload, mode=ExecutionMode.HOMOGENEOUS)
    assert simulated.makespan_s == pytest.approx(predicted.time_s, rel=0.12)
    assert simulated.energy_j == pytest.approx(predicted.energy_j, rel=0.12)


@pytest.mark.parametrize("sb,sp", SELECTIVITY_GRID)
def test_homogeneous_warm_absolute_agreement(sb, sp):
    cluster = ClusterSpec.homogeneous(BEEFY_L5630, 4)
    config = PStoreConfig(warm_cache=True, pipeline_cpu_cost=3.0)
    engine = PStore(cluster, config=config, record_intervals=False)
    model = PStoreModel(
        ModelParameters.from_cluster(cluster), warm_cache=True, pipeline_cpu_cost=3.0
    )
    workload = q3_join(400, sb, sp)
    simulated = engine.simulate(workload, force_mode=ExecutionMode.HOMOGENEOUS)
    predicted = model.predict(workload, mode=ExecutionMode.HOMOGENEOUS)
    assert simulated.makespan_s == pytest.approx(predicted.time_s, rel=0.10)
    assert simulated.energy_j == pytest.approx(predicted.energy_j, rel=0.10)


@pytest.mark.parametrize("orders_sel,mode", [
    (0.01, ExecutionMode.HOMOGENEOUS),
    (0.10, ExecutionMode.HETEROGENEOUS),
])
def test_mixed_cluster_normalized_agreement(orders_sel, mode):
    """The paper's validation bounds: 5% homogeneous, 10% heterogeneous."""
    wimpy = WIMPY_LAPTOP_B.with_overrides(nic_bandwidth_mbps=88.0)
    cluster = ClusterSpec.beefy_wimpy(BEEFY_L5630, 2, wimpy, 2)
    config = PStoreConfig(warm_cache=True, pipeline_cpu_cost=3.0)
    engine = PStore(cluster, config=config, record_intervals=False)
    model = PStoreModel(
        ModelParameters.from_specs(BEEFY_L5630, 2, wimpy, 2),
        warm_cache=True,
        pipeline_cpu_cost=3.0,
    )
    tolerance = 0.05 if mode is ExecutionMode.HOMOGENEOUS else 0.10

    observed, predicted = {}, {}
    for ls in (0.01, 0.10, 0.50, 1.00):
        workload = q3_join(400, orders_sel, ls)
        observed[ls] = engine.simulate(workload, force_mode=mode)
        predicted[ls] = model.predict(workload, mode=mode)
    for ls in observed:
        obs_rt = observed[ls].makespan_s / observed[1.00].makespan_s
        mod_rt = predicted[ls].time_s / predicted[1.00].time_s
        obs_e = observed[ls].energy_j / observed[1.00].energy_j
        mod_e = predicted[ls].energy_j / predicted[1.00].energy_j
        assert abs(obs_rt - mod_rt) <= tolerance, f"RT mismatch at L{ls:.0%}"
        assert abs(obs_e - mod_e) <= tolerance, f"energy mismatch at L{ls:.0%}"


def test_model_and_simulator_rank_designs_identically():
    """What matters for design decisions: both rank the mixes the same."""
    workload = section54_join(0.10, 0.02)
    rankings = {}
    for evaluator_name in ("model", "simulator"):
        energies = []
        for nb in (8, 6, 4, 2):
            nw = 8 - nb
            if evaluator_name == "model":
                model = PStoreModel(
                    ModelParameters.from_specs(CLUSTER_V_NODE, nb, WIMPY_LAPTOP_B, nw),
                    warm_cache=False,
                )
                energies.append((nb, model.predict(workload).energy_j))
            else:
                wimpy = WIMPY_LAPTOP_B.with_overrides(
                    disk_bandwidth_mbps=CLUSTER_V_NODE.disk_bandwidth_mbps,
                    nic_bandwidth_mbps=CLUSTER_V_NODE.nic_bandwidth_mbps,
                )
                cluster = (
                    ClusterSpec.homogeneous(CLUSTER_V_NODE, 8)
                    if nw == 0
                    else ClusterSpec.beefy_wimpy(CLUSTER_V_NODE, nb, wimpy, nw)
                )
                engine = PStore(
                    cluster, config=PStoreConfig(warm_cache=False), record_intervals=False
                )
                energies.append((nb, engine.simulate(workload).energy_j))
        rankings[evaluator_name] = [
            nb for nb, _ in sorted(energies, key=lambda pair: pair[1])
        ]
    assert rankings["model"] == rankings["simulator"]
