"""Metering a simulated cluster the way the authors metered a real one.

The paper's energy numbers come from WattsUp wall meters (1 Hz, +/-1.5%)
integrating cluster power over a run.  Here the same instrument samples the
fluid simulator's power trace, and the meter's energy estimate must agree
with the simulator's exact piecewise integration — closing the loop between
the measurement methodology and the substrate.
"""

import pytest

from repro.hardware.cluster import ClusterSpec
from repro.hardware.meter import WattsUpMeter
from repro.hardware.presets import CLUSTER_V_NODE
from repro.pstore.engine import PStore, PStoreConfig
from repro.simulator.trace import power_function
from repro.workloads.queries import q3_join


@pytest.fixture(scope="module")
def run():
    engine = PStore(
        ClusterSpec.homogeneous(CLUSTER_V_NODE, 4),
        config=PStoreConfig(warm_cache=True),
    )
    # a long enough run for 1 Hz sampling to resolve (~100 s)
    return engine.simulate(q3_join(1000, 0.05, 0.05), concurrency=8)


def test_wattsup_energy_matches_exact_integration(run):
    meter = WattsUpMeter(accuracy=0.0, seed=0)
    samples = meter.sample(power_function(run), duration_s=run.makespan_s)
    measured = WattsUpMeter.energy_joules(samples)
    # trapezoid over 1 Hz samples vs exact: within 2% on a ~100 s run
    assert measured == pytest.approx(run.energy_j, rel=0.02)


def test_realistic_accuracy_stays_within_spec(run):
    meter = WattsUpMeter(accuracy=0.015, seed=42)
    samples = meter.sample(power_function(run), duration_s=run.makespan_s)
    measured = WattsUpMeter.energy_joules(samples)
    assert measured == pytest.approx(run.energy_j, rel=0.03)


def test_average_power_agrees(run):
    meter = WattsUpMeter(accuracy=0.0, seed=0)
    samples = meter.sample(power_function(run), duration_s=run.makespan_s)
    assert WattsUpMeter.average_watts(samples) == pytest.approx(
        run.average_power_w, rel=0.02
    )


def test_power_function_lookup_spans_the_run(run):
    power = power_function(run)
    for fraction in (0.0, 0.25, 0.5, 0.75, 0.999):
        watts = power(run.makespan_s * fraction)
        assert watts > 0
    # a sanity anchor: cluster power never exceeds 4 nodes at peak
    assert max(
        power(run.makespan_s * f) for f in (0.1, 0.5, 0.9)
    ) <= 4 * CLUSTER_V_NODE.peak_power_w + 1e-9
