"""Bottleneck attribution from simulator bindings."""

import pytest

from repro.analysis.bottlenecks import (
    bottleneck_breakdown,
    derive_query_profile,
    network_bound_fraction,
)
from repro.dbms.vertica_like import VerticaLikeDBMS
from repro.errors import SimulationError
from repro.hardware.cluster import ClusterSpec
from repro.hardware.presets import CLUSTER_V_NODE
from repro.pstore.engine import PStore, PStoreConfig
from repro.workloads.queries import JoinMethod, q3_join


def simulate(workload, nodes=8):
    engine = PStore(
        ClusterSpec.homogeneous(CLUSTER_V_NODE, nodes),
        config=PStoreConfig(warm_cache=True),
    )
    return engine.simulate(workload)


class TestBreakdown:
    def test_network_bound_shuffle_blames_the_nic(self):
        result = simulate(q3_join(1000, 0.05, 0.05))
        breakdown = bottleneck_breakdown(result)
        assert network_bound_fraction(result) > 0.9
        assert breakdown["cpu"] < 0.1

    def test_cpu_bound_local_join_blames_the_cpu(self):
        result = simulate(q3_join(1000, 0.05, 0.05, method=JoinMethod.LOCAL))
        breakdown = bottleneck_breakdown(result)
        assert breakdown["cpu"] == pytest.approx(1.0)
        assert network_bound_fraction(result) == 0.0

    def test_cold_selective_scan_blames_the_disk(self):
        engine = PStore(
            ClusterSpec.homogeneous(CLUSTER_V_NODE.with_overrides(
                disk_bandwidth_mbps=200.0), 8),
            config=PStoreConfig(warm_cache=False),
        )
        result = engine.simulate(q3_join(100, 0.01, 0.01))
        breakdown = bottleneck_breakdown(result)
        assert breakdown["disk"] == pytest.approx(1.0)

    def test_fractions_sum_to_one(self):
        result = simulate(q3_join(1000, 0.05, 0.05))
        assert sum(bottleneck_breakdown(result).values()) == pytest.approx(1.0)

    def test_broadcast_probe_shifts_time_to_cpu(self):
        shuffle = simulate(q3_join(1000, 0.01, 0.05))
        broadcast = simulate(q3_join(1000, 0.01, 0.05, method=JoinMethod.BROADCAST))
        assert (
            bottleneck_breakdown(broadcast)["cpu"]
            > bottleneck_breakdown(shuffle)["cpu"]
        )

    def test_requires_intervals(self):
        engine = PStore(
            ClusterSpec.homogeneous(CLUSTER_V_NODE, 2),
            config=PStoreConfig(warm_cache=True),
            record_intervals=False,
        )
        result = engine.simulate(q3_join(10, 0.05, 0.05))
        with pytest.raises(SimulationError, match="record_intervals"):
            bottleneck_breakdown(result)


class TestDerivedProfiles:
    def test_profile_from_network_bound_run(self):
        """A Q12-like P-store run yields a Q12-like profile."""
        result = simulate(q3_join(1000, 0.05, 0.05))
        profile = derive_query_profile(result, "derived-shuffle", reference_nodes=8)
        assert profile.local_fraction < 0.10  # pure exchange workload
        assert profile.reference_time_s == pytest.approx(result.makespan_s)

    def test_profile_from_local_run_is_scalable(self):
        result = simulate(q3_join(1000, 0.05, 0.05, method=JoinMethod.LOCAL))
        profile = derive_query_profile(result, "derived-local", reference_nodes=8)
        assert profile.local_fraction == pytest.approx(1.0)

    def test_derived_profile_drives_the_size_sweep(self):
        """End-to-end: simulate once, characterize, sweep like Section 3."""
        result = simulate(q3_join(1000, 0.05, 0.05, method=JoinMethod.LOCAL))
        profile = derive_query_profile(result, "derived", reference_nodes=8)
        curve = VerticaLikeDBMS(CLUSTER_V_NODE).size_sweep(profile, [8, 16])
        norm = {p.label: p for p in curve.normalized()}
        # fully local -> ideal speedup, flat energy (the Figure 2a shape)
        assert norm["8N"].performance == pytest.approx(0.5, abs=0.02)
        assert norm["8N"].energy == pytest.approx(1.0, abs=0.05)

    def test_validation(self):
        result = simulate(q3_join(10, 0.05, 0.05))
        with pytest.raises(SimulationError):
            derive_query_profile(result, "x", reference_nodes=0)
