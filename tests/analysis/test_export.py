"""JSON/CSV export of experiment results and curves."""

import csv
import io
import json

import pytest

from repro.analysis.export import (
    curve_to_csv,
    curve_to_rows,
    experiment_to_dict,
    experiment_to_json,
    experiments_summary_csv,
    frontier_to_csv,
    search_to_json,
    search_to_rows,
)
from repro.core.edp import NormalizedPoint
from repro.errors import ReproError
from repro.experiments.base import ExperimentResult, check
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.search import DesignGrid, DesignSpaceSearch, SearchResult
from repro.workloads.queries import section54_join

POINTS = [
    NormalizedPoint("8B,0W", 1.0, 1.0),
    NormalizedPoint("4B,4W", 0.8, 0.6),
]


def sample_result(ok=True):
    return ExperimentResult(
        experiment_id="figX",
        title="sample",
        text="body",
        claims=(check("something", ok, "detail"),),
    )


class TestCurveExport:
    def test_rows_shape(self):
        rows = curve_to_rows(POINTS)
        assert rows[0]["label"] == "8B,0W"
        assert rows[1]["below_edp"] is True
        assert rows[1]["edp_ratio"] == pytest.approx(0.75)

    def test_csv_roundtrip(self):
        text = curve_to_csv(POINTS)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 2
        assert parsed[0]["label"] == "8B,0W"
        assert float(parsed[1]["energy"]) == pytest.approx(0.6)

    def test_empty_curve_rejected(self):
        with pytest.raises(ReproError):
            curve_to_csv([])


class TestExperimentExport:
    def test_dict_fields(self):
        payload = experiment_to_dict(sample_result())
        assert payload["id"] == "figX"
        assert payload["all_claims_hold"] is True
        assert payload["claims"][0]["description"] == "something"

    def test_json_parses(self):
        parsed = json.loads(experiment_to_json(sample_result()))
        assert parsed["title"] == "sample"

    def test_summary_csv(self):
        text = experiments_summary_csv([sample_result(), sample_result(ok=False)])
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows[0]["status"] == "ok"
        assert rows[1]["status"] == "FAILED"
        assert rows[0]["claims_passed"] == "1"

    def test_summary_requires_results(self):
        with pytest.raises(ReproError):
            experiments_summary_csv([])

    def test_real_experiment_exports(self):
        from repro.experiments import run

        payload = experiment_to_dict(run("tbl3"))
        assert payload["all_claims_hold"]
        assert json.loads(experiment_to_json(run("tbl2")))["id"] == "tbl2"


@pytest.fixture(scope="module")
def search_result():
    grid = DesignGrid.paper_axis(CLUSTER_V_NODE, WIMPY_LAPTOP_B, 8)
    return DesignSpaceSearch().search(grid, section54_join(0.10, 0.10))


class TestSearchExport:
    def test_rows_cover_the_whole_grid(self, search_result):
        rows = search_to_rows(search_result)
        assert len(rows) == 9
        assert rows[0]["label"] == "8B,0W"
        assert rows[0]["num_beefy"] == 8
        assert rows[0]["feasible"] is True

    def test_infeasible_rows_have_null_metrics(self, search_result):
        by_label = {row["label"]: row for row in search_to_rows(search_result)}
        assert by_label["0B,8W"]["feasible"] is False
        assert by_label["0B,8W"]["time_s"] is None
        assert by_label["0B,8W"]["on_frontier"] is False

    def test_frontier_csv_contains_only_frontier_rows(self, search_result):
        parsed = list(csv.DictReader(io.StringIO(frontier_to_csv(search_result))))
        frontier_labels = [p.label for p in search_result.pareto_frontier()]
        assert [row["label"] for row in parsed] == frontier_labels
        assert all(row["on_frontier"] == "True" for row in parsed)

    def test_full_csv_includes_dominated_rows(self, search_result):
        parsed = list(
            csv.DictReader(io.StringIO(frontier_to_csv(search_result, frontier_only=False)))
        )
        assert len(parsed) == 9

    def test_json_payload(self, search_result):
        payload = json.loads(search_to_json(search_result))
        assert payload["query"] == search_result.query.name
        assert payload["num_points"] == 9
        assert payload["num_feasible"] == 7
        assert payload["frontier"]
        assert payload["knee"] in {p.label for p in search_result.pareto_frontier()}
        assert len(payload["points"]) == 9

    def test_empty_export_rejected(self):
        empty = SearchResult(workload=section54_join(), points=[])
        with pytest.raises(ReproError):
            frontier_to_csv(empty)

    def test_weights_only_rows_have_null_latency_columns(self, search_result):
        row = search_to_rows(search_result)[0]
        for column in (
            "response_mean_s",
            "response_p95_s",
            "response_p99_s",
            "response_max_s",
        ):
            assert column in row
            assert row[column] is None


class TestTimedSearchExport:
    """Latency columns of timed-trace evaluations reach CSV and JSON."""

    @pytest.fixture(scope="class")
    def timed_result(self):
        from repro.search import SimulatorEvaluator
        from repro.workloads.protocol import TimedTrace
        from repro.workloads.queries import q3_join

        grid = DesignGrid(
            node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),), cluster_sizes=(4,)
        )
        trace = TimedTrace.from_schedule(
            "t", q3_join(100, 0.05, 0.05), [0.0, 0.5, 1.0]
        )
        return DesignSpaceSearch(evaluator=SimulatorEvaluator()).search(grid, trace)

    def test_rows_carry_response_times(self, timed_result):
        rows = search_to_rows(timed_result)
        point = timed_result.points[0]
        assert rows[0]["response_p99_s"] == point.latency.p99_s
        assert rows[0]["response_max_s"] == point.latency.max_s
        assert rows[0]["response_mean_s"] <= rows[0]["response_max_s"]

    def test_csv_and_json_roundtrip(self, timed_result):
        parsed = list(
            csv.DictReader(
                io.StringIO(frontier_to_csv(timed_result, frontier_only=False))
            )
        )
        assert float(parsed[0]["response_max_s"]) > 0
        payload = json.loads(search_to_json(timed_result))
        assert payload["points"][0]["response_p99_s"] > 0

    def test_bare_design_rows_have_null_policy_columns(self, timed_result):
        row = search_to_rows(timed_result)[0]
        assert row["policy"] is None
        assert row["gated_node_seconds"] is None
        assert row["energy_saved_j"] is None


class TestPolicySearchExport:
    """Policy annotations round-trip through rows, CSV, and JSON."""

    @pytest.fixture(scope="class")
    def policy_result(self):
        from repro.hardware.powerstate import PowerStateModel
        from repro.policy import PowerGatePolicy, StaticPolicy
        from repro.search import SearchSpace, SimulatorEvaluator
        from repro.workloads.arrivals import diurnal_arrivals
        from repro.workloads.protocol import TimedTrace
        from repro.workloads.queries import q3_join

        grid = DesignGrid(
            node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),), cluster_sizes=(4,)
        )
        space = SearchSpace.from_grid(
            grid,
            policies=(
                StaticPolicy(),
                PowerGatePolicy(
                    min_idle_s=2.0,
                    transitions=PowerStateModel(
                        shutdown_s=0.1, boot_s=0.2, gated_power_fraction=0.05
                    ),
                ),
            ),
            control_interval_s=0.5,
        )
        trace = TimedTrace.from_schedule(
            "diurnal",
            q3_join(100, 0.05, 0.05),
            diurnal_arrivals(
                6, base_rate_per_s=0.01, peak_rate_per_s=1.0,
                period_s=60.0, seed=3,
            ),
        )
        return DesignSpaceSearch(evaluator=SimulatorEvaluator()).search(
            space.candidate_list(), trace
        )

    def test_rows_carry_policy_annotations(self, policy_result):
        rows = search_to_rows(policy_result)
        by_label = {row["label"]: row for row in rows}
        for point in policy_result.points:
            row = by_label[point.label]
            assert row["policy"] == point.policy
            assert row["gated_node_seconds"] == point.gated_node_seconds
            assert row["energy_saved_j"] == point.energy_saved_j
        assert {row["policy"] for row in rows} >= {"static"}

    def test_csv_roundtrip_preserves_policy_columns(self, policy_result):
        parsed = list(
            csv.DictReader(
                io.StringIO(frontier_to_csv(policy_result, frontier_only=False))
            )
        )
        assert len(parsed) == len(policy_result.points)
        by_label = {row["label"]: row for row in parsed}
        for point in policy_result.points:
            row = by_label[point.label]
            assert row["policy"] == point.policy
            assert float(row["gated_node_seconds"]) == pytest.approx(
                point.gated_node_seconds
            )
            assert float(row["energy_saved_j"]) == pytest.approx(
                point.energy_saved_j
            )

    def test_json_payload_includes_policy_fields(self, policy_result):
        payload = json.loads(search_to_json(policy_result))
        assert len(payload["points"]) == len(policy_result.points)
        for entry in payload["points"]:
            assert "policy" in entry
            assert "gated_node_seconds" in entry
            assert "energy_saved_j" in entry
        statics = [e for e in payload["points"] if e["policy"] == "static"]
        assert statics
        assert all(e["gated_node_seconds"] == 0.0 for e in statics)
