"""JSON/CSV export of experiment results and curves."""

import csv
import io
import json

import pytest

from repro.analysis.export import (
    curve_to_csv,
    curve_to_rows,
    experiment_to_dict,
    experiment_to_json,
    experiments_summary_csv,
)
from repro.core.edp import NormalizedPoint
from repro.errors import ReproError
from repro.experiments.base import ExperimentResult, check

POINTS = [
    NormalizedPoint("8B,0W", 1.0, 1.0),
    NormalizedPoint("4B,4W", 0.8, 0.6),
]


def sample_result(ok=True):
    return ExperimentResult(
        experiment_id="figX",
        title="sample",
        text="body",
        claims=(check("something", ok, "detail"),),
    )


class TestCurveExport:
    def test_rows_shape(self):
        rows = curve_to_rows(POINTS)
        assert rows[0]["label"] == "8B,0W"
        assert rows[1]["below_edp"] is True
        assert rows[1]["edp_ratio"] == pytest.approx(0.75)

    def test_csv_roundtrip(self):
        text = curve_to_csv(POINTS)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 2
        assert parsed[0]["label"] == "8B,0W"
        assert float(parsed[1]["energy"]) == pytest.approx(0.6)

    def test_empty_curve_rejected(self):
        with pytest.raises(ReproError):
            curve_to_csv([])


class TestExperimentExport:
    def test_dict_fields(self):
        payload = experiment_to_dict(sample_result())
        assert payload["id"] == "figX"
        assert payload["all_claims_hold"] is True
        assert payload["claims"][0]["description"] == "something"

    def test_json_parses(self):
        parsed = json.loads(experiment_to_json(sample_result()))
        assert parsed["title"] == "sample"

    def test_summary_csv(self):
        text = experiments_summary_csv([sample_result(), sample_result(ok=False)])
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows[0]["status"] == "ok"
        assert rows[1]["status"] == "FAILED"
        assert rows[0]["claims_passed"] == "1"

    def test_summary_requires_results(self):
        with pytest.raises(ReproError):
            experiments_summary_csv([])

    def test_real_experiment_exports(self):
        from repro.experiments import run

        payload = experiment_to_dict(run("tbl3"))
        assert payload["all_claims_hold"]
        assert json.loads(experiment_to_json(run("tbl2")))["id"] == "tbl2"
