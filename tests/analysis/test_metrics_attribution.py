"""Per-job energy attribution."""

import pytest

from repro.analysis.metrics import attribute_energy_by_job
from repro.errors import SimulationError
from repro.hardware.cluster import ClusterSpec
from repro.hardware.presets import CLUSTER_V_NODE
from repro.pstore.engine import PStore, PStoreConfig
from repro.workloads.queries import q3_join


@pytest.fixture(scope="module")
def engine():
    return PStore(
        ClusterSpec.homogeneous(CLUSTER_V_NODE, 4),
        config=PStoreConfig(warm_cache=True),
    )


def test_attribution_sums_to_total(engine):
    result = engine.simulate(q3_join(100, 0.05, 0.05), concurrency=3)
    attribution = attribute_energy_by_job(result)
    assert sum(attribution.values()) == pytest.approx(result.energy_j)


def test_identical_concurrent_jobs_split_evenly(engine):
    result = engine.simulate(q3_join(100, 0.05, 0.05), concurrency=2)
    attribution = attribute_energy_by_job(result)
    assert attribution["join#0"] == pytest.approx(attribution["join#1"], rel=0.01)


def test_sequential_jobs_own_their_intervals(engine):
    solo = engine.simulate(q3_join(100, 0.05, 0.05))
    stream = engine.simulate_stream(
        q3_join(100, 0.05, 0.05), [0.0, solo.makespan_s * 3]
    )
    attribution = attribute_energy_by_job(stream)
    # both queries run in isolation and cost the same; the idle gap between
    # them is attributed separately
    assert attribution["join#0"] == pytest.approx(attribution["join#1"], rel=0.01)
    assert attribution["(idle)"] > 0
    assert sum(attribution.values()) == pytest.approx(stream.energy_j)


def test_requires_intervals():
    engine = PStore(
        ClusterSpec.homogeneous(CLUSTER_V_NODE, 2),
        config=PStoreConfig(warm_cache=True),
        record_intervals=False,
    )
    result = engine.simulate(q3_join(10, 0.05, 0.05))
    with pytest.raises(SimulationError):
        attribute_energy_by_job(result)


def test_bigger_job_costs_more(engine):
    """A job with twice the data should be attributed more energy."""
    from repro.pstore.simulated import build_join_job
    from repro.simulator.engine import ClusterSimulator

    plan_small = engine.plan(q3_join(50, 0.05, 0.05))
    plan_big = engine.plan(q3_join(100, 0.05, 0.05))
    jobs = [
        build_join_job(plan_small, job_name="small"),
        build_join_job(plan_big, job_name="big"),
    ]
    simulator = ClusterSimulator(engine.cluster)
    result = simulator.run(jobs)
    attribution = attribute_energy_by_job(result)
    assert attribution["big"] > attribution["small"]
