"""ASCII reports and derived metrics."""

import pytest

from repro.analysis.metrics import energy_summary, joules_per_qualifying_mb
from repro.analysis.report import (
    render_normalized_curve,
    render_series,
    render_table,
)
from repro.core.edp import NormalizedPoint
from repro.hardware.cluster import ClusterSpec
from repro.hardware.presets import CLUSTER_V_NODE
from repro.pstore.engine import PStore, PStoreConfig
from repro.workloads.queries import q3_join


def test_render_table_alignment_and_rule():
    text = render_table(["name", "value"], [["a", 1.5], ["bb", 22]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1]
    assert set(lines[2].replace("  ", "")) == {"-"}
    assert "bb" in lines[4]


def test_render_table_formats_floats():
    text = render_table(["x"], [[1.23456789]])
    assert "1.235" in text


def test_render_series():
    text = render_series("energy", [("8N", 1.0), ("4N", 0.8)], unit="kJ")
    assert "8N=1 kJ" in text
    assert text.startswith("energy:")


def test_render_normalized_curve_flags_edp():
    points = [
        NormalizedPoint("ref", 1.0, 1.0),
        NormalizedPoint("good", 0.8, 0.6),
        NormalizedPoint("bad", 0.5, 0.9),
    ]
    text = render_normalized_curve("Fig", points)
    lines = text.splitlines()
    assert "Fig" == lines[0]
    good_line = next(line for line in lines if line.startswith("good"))
    assert "below" in good_line
    bad_line = next(line for line in lines if line.startswith("bad"))
    assert "above" in bad_line


def test_energy_summary_from_simulation():
    engine = PStore(
        ClusterSpec.homogeneous(CLUSTER_V_NODE, 4),
        config=PStoreConfig(warm_cache=True),
    )
    result = engine.simulate(q3_join(10))
    summary = energy_summary(result)
    assert summary.energy_j == pytest.approx(result.energy_j)
    assert summary.energy_kj == pytest.approx(result.energy_j / 1000.0)
    assert summary.edp_js == pytest.approx(result.energy_j * result.makespan_s)
    assert summary.average_power_w == pytest.approx(result.average_power_w)


def test_joules_per_qualifying_mb():
    q = q3_join(10)  # qualifying = (300 + 1200) * 0.05
    assert joules_per_qualifying_mb(150.0, q) == pytest.approx(150.0 / 75.0)
