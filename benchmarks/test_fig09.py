"""Figure 9: model validation, heterogeneous plans (10% bound)."""

from conftest import assert_claims

from repro.experiments.fig08 import fig9


def test_fig9(benchmark):
    result = benchmark(fig9)
    assert_claims(result)
