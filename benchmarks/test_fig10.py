"""Figure 10: modeled design space at two selectivity settings."""

from conftest import assert_claims

from repro.experiments.fig10 import fig10a, fig10b


def test_fig10a(benchmark):
    result = benchmark(fig10a)
    assert_claims(result)


def test_fig10b(benchmark):
    result = benchmark(fig10b)
    assert_claims(result)
