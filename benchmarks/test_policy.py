"""Policy bench: the (design x policy) campaign on a diurnal trace.

The claim behind :mod:`repro.policy` is quantitative: on a trace with
real quiet hours, searching (design x control policy) jointly finds a
configuration that spends strictly less energy than the best static
design *at the same p99 response-time SLA*.  This benchmark pins that
claim on the reference 216-design campaign and fails — not warns — when
it stops holding.

Three gates, all hard:

* every StaticPolicy record must be bit-identical to its bare design's
  record (the static fast path rides the multiplexed engine);
* dynamic-policy records must match per-candidate serial replay (the
  automatic serial fallback is exact, not approximate);
* the best power-gated candidate must beat the best static candidate on
  energy at the static candidate's own p99 — by at least
  ``MIN_ENERGY_WIN`` relative.

``pytest benchmarks/test_policy.py -q`` runs compact slices through
pytest-benchmark; ``make bench-json`` (``python benchmarks/test_policy.py
--json BENCH_policy.json``) runs the full campaign.
"""

import json
import multiprocessing
import sys
import time

from repro.hardware.powerstate import PowerStateModel
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.policy import PolicyCandidate, PowerGatePolicy, StaticPolicy
from repro.search import (
    DesignGrid,
    DesignSpaceSearch,
    SearchSpace,
    SimulatorEvaluator,
)
from repro.search.evaluators import evaluate_timed_design
from repro.workloads.arrivals import diurnal_arrivals
from repro.workloads.protocol import TimedTrace
from repro.workloads.queries import q3_join

EVENTS = 48

#: the bench fails outright below this relative energy win at equal p99
MIN_ENERGY_WIN = 0.05

#: the reference campaign space: 216 designs (matches BENCH_stream.json)
FULL_GRID = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(6, 8, 10, 12, 14, 16),
    frequency_factors=(1.0, 0.8, 0.6),
)

#: compact variant so the pytest-benchmark rounds stay quick
SMALL_GRID = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(6, 8),
)


def solo_runtime() -> float:
    """Solo runtime of the reference join on the grid's first design —
    the time unit every trace and policy parameter is calibrated in."""
    return (
        SimulatorEvaluator()
        .evaluate_query(FULL_GRID.candidate_list()[0], q3_join(100, 0.05, 0.05))
        .time_s
    )


def reference_trace(solo: float, events: int = EVENTS) -> TimedTrace:
    """A diurnal trace with genuinely quiet troughs.

    The rate crests at ~0.5 arrivals per solo runtime (real queueing at
    the peak) and troughs near silence; the period spans ~55 solo
    runtimes, so each quiet half-cycle is a long stretch of idleness —
    the window a gating policy exploits.
    """
    times = diurnal_arrivals(
        events,
        base_rate_per_s=0.005 / solo,
        peak_rate_per_s=0.5 / solo,
        period_s=55.0 * solo,
        seed=11,
    )
    return TimedTrace.from_schedule("bench-diurnal", q3_join(100, 0.05, 0.05), times)


def gate_policy(solo: float) -> PowerGatePolicy:
    """Power-gate idle wimpy nodes on fast-sleep transition hardware."""
    return PowerGatePolicy(
        utilization_floor=0.05,
        min_idle_s=2.0 * solo,
        transitions=PowerStateModel(
            shutdown_s=0.03 * solo,
            boot_s=0.05 * solo,
            transition_power_fraction=0.5,
            gated_power_fraction=0.05,
        ),
    )


def policy_space(grid, solo: float) -> SearchSpace:
    return SearchSpace.from_grid(
        grid,
        policies=(StaticPolicy(), gate_policy(solo)),
        control_interval_s=0.125 * solo,
    )


def policy_campaign(grid, trace, solo, workers=1):
    """One cold (design x policy) search; returns the SearchResult."""
    engine = DesignSpaceSearch(
        evaluator=SimulatorEvaluator(), workers=workers, min_dispatch_tasks=1
    )
    with engine:
        return engine.search(policy_space(grid, solo).candidate_list(), trace)


def record_view(points):
    return [
        (p.label, p.time_s, p.energy_j, p.feasible, p.latency, p.policy)
        for p in points
    ]


def split_by_policy(points):
    static = [p for p in points if p.feasible and p.policy == "static"]
    dynamic = [p for p in points if p.feasible and p.policy not in (None, "static")]
    return static, dynamic


def energy_win_at_static_sla(points) -> tuple[float, dict]:
    """Relative energy win of the best gated candidate at the p99 of the
    cheapest static candidate; also returns the matchup for the payload."""
    static, dynamic = split_by_policy(points)
    best_static = min(static, key=lambda p: p.energy_j)
    sla_s = best_static.latency.p99_s
    meeting = [p for p in dynamic if p.latency.p99_s <= sla_s]
    if not meeting:
        return 0.0, {"sla_p99_s": sla_s, "static_label": best_static.label}
    best_dynamic = min(meeting, key=lambda p: p.energy_j)
    win = (best_static.energy_j - best_dynamic.energy_j) / best_static.energy_j
    return win, {
        "sla_p99_s": round(sla_s, 3),
        "static_label": best_static.label,
        "static_energy_j": round(best_static.energy_j, 1),
        "dynamic_label": best_dynamic.label,
        "dynamic_energy_j": round(best_dynamic.energy_j, 1),
        "dynamic_gated_node_s": round(best_dynamic.gated_node_seconds, 1),
    }


def test_static_policy_rides_the_fast_path():
    """StaticPolicy records equal bare-design records field for field."""
    solo = solo_runtime()
    trace = reference_trace(solo, events=8)
    engine = DesignSpaceSearch(evaluator=SimulatorEvaluator())
    bare = engine.search(SMALL_GRID, trace)
    wrapped = engine.search(
        [
            PolicyCandidate(design=d, policy=StaticPolicy())
            for d in SMALL_GRID.candidate_list()
        ],
        trace,
    )
    for b, w in zip(bare.points, wrapped.points):
        assert (w.time_s, w.energy_j, w.latency) == (b.time_s, b.energy_j, b.latency)


def test_dynamic_records_match_serial_replay():
    """The batch path's serial fallback is exact per candidate."""
    solo = solo_runtime()
    trace = reference_trace(solo, events=8)
    candidates = policy_space(SMALL_GRID, solo).candidate_list()
    campaign = policy_campaign(SMALL_GRID, trace, solo)
    evaluator = SimulatorEvaluator()
    oracle = [
        evaluate_timed_design(evaluator, candidate, trace)
        for candidate in candidates
    ]
    assert record_view(campaign.points) == record_view(oracle)


def test_gating_wins_on_the_small_grid():
    solo = solo_runtime()
    trace = reference_trace(solo, events=24)
    campaign = policy_campaign(SMALL_GRID, trace, solo)
    win, _ = energy_win_at_static_sla(campaign.points)
    assert win > 0.0


def test_policy_campaign_small(benchmark):
    solo = solo_runtime()
    trace = reference_trace(solo, events=8)
    result = benchmark(policy_campaign, SMALL_GRID, trace, solo)
    assert len(result.points) == 2 * len(SMALL_GRID.candidate_list())


def run_policy_bench(grid=FULL_GRID, events=EVENTS) -> dict:
    """Time the full (design x policy) campaign and gate the energy win.

    Raises ``SystemExit`` if static records diverge from bare designs, if
    parallel dispatch diverges from serial, or if the gated win at the
    static p99 SLA falls under :data:`MIN_ENERGY_WIN`.
    """
    solo = solo_runtime()
    trace = reference_trace(solo, events)
    candidates = policy_space(grid, solo).candidate_list()

    start = time.perf_counter()
    campaign = policy_campaign(grid, trace, solo)
    campaign_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = policy_campaign(grid, trace, solo, workers=2)
    parallel_s = time.perf_counter() - start

    identical = record_view(campaign.points) == record_view(parallel.points)

    bare = DesignSpaceSearch(evaluator=SimulatorEvaluator()).search(grid, trace)
    static_points, dynamic_points = split_by_policy(campaign.points)
    # Enumeration is design-major with the static policy first, so the
    # static record for design i sits at campaign.points[2 * i].
    static_fast_path_ok = all(
        (campaign.points[2 * i].time_s, campaign.points[2 * i].energy_j,
         campaign.points[2 * i].latency)
        == (b.time_s, b.energy_j, b.latency)
        for i, b in enumerate(bare.points)
    )

    win, matchup = energy_win_at_static_sla(campaign.points)
    payload = {
        "benchmark": "(design x policy) diurnal autoscaling campaign",
        "designs": len(grid),
        "candidates": len(candidates),
        "arrival_events": events,
        "cpus": multiprocessing.cpu_count(),
        "campaign_wall_s": round(campaign_s, 4),
        "parallel_wall_s": round(parallel_s, 4),
        "candidates_per_s": round(len(candidates) / campaign_s, 2),
        "results_identical": identical,
        "static_fast_path_ok": static_fast_path_ok,
        "feasible_static": len(static_points),
        "feasible_dynamic": len(dynamic_points),
        "gated_candidates": sum(
            1 for p in dynamic_points if p.gated_node_seconds > 0
        ),
        "energy_win_at_static_sla": round(win, 4),
        "min_energy_win": MIN_ENERGY_WIN,
        **matchup,
    }
    if not identical:
        raise SystemExit(
            "policy bench FAILED: parallel campaign diverged from serial"
        )
    if not static_fast_path_ok:
        raise SystemExit(
            "policy bench FAILED: StaticPolicy records diverged from bare designs"
        )
    if win < MIN_ENERGY_WIN:
        raise SystemExit(
            f"policy bench FAILED: gated energy win {win:.1%} at the static "
            f"p99 SLA is under the {MIN_ENERGY_WIN:.0%} floor"
        )
    return payload


if __name__ == "__main__":
    out = sys.argv[sys.argv.index("--json") + 1] if "--json" in sys.argv else None
    payload = run_policy_bench()
    text = json.dumps(payload, indent=2) + "\n"
    if out:
        with open(out, "w") as handle:
            handle.write(text)
    sys.stdout.write(text)
