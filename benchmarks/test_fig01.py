"""Figure 1: framing results (Vertica Q12 sweep; modeled mixes)."""

from conftest import assert_claims

from repro.experiments.fig01 import fig1a, fig1b


def test_fig1a(benchmark):
    result = benchmark(fig1a)
    assert_claims(result)


def test_fig1b(benchmark):
    result = benchmark(fig1b)
    assert_claims(result)
