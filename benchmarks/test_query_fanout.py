"""Query-fanout bench: old workload-granular vs new per-entry dispatch.

The scenario is the redesign's target regime — a *campaign* of suite
searches over a 216-design grid, where the suites overlap heavily in
member joins (the nightly-report pattern: mixes share most queries).

* **legacy** replays the pre-redesign engine faithfully: one evaluation
  per (candidate, workload), workload-level dispatch chunks, and a fresh
  ``multiprocessing`` pool spun up per ``search()`` call (via the
  preserved :func:`~repro.search.evaluators.evaluate_chunk` entry point);
* **fanout** is the shipped engine: flatten to (candidate x entry) tasks,
  dedupe and memoize per entry, dispatch over one persistent pool shared
  by the whole campaign.

``pytest benchmarks/test_query_fanout.py -q`` runs a compact campaign
through pytest-benchmark and asserts the two paths agree point for
point.  ``make bench-json`` (``python benchmarks/test_query_fanout.py
--json BENCH_search.json``) times the full 216-design campaign and
records the wall-clock win so future PRs can track the speedup.
"""

import json
import math
import sys
import time

from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.search import (
    DesignGrid,
    DesignSpaceSearch,
    EvaluationCache,
    SimulatorEvaluator,
)
from repro.search.evaluators import evaluate_chunk
from repro.workloads.queries import q3_join
from repro.workloads.suite import WorkloadSuite

WORKERS = 2

#: the acceptance-criteria space: 216 designs (>= 200)
FULL_GRID = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(6, 8, 10, 12, 14, 16),
    frequency_factors=(1.0, 0.8, 0.6),
)

#: compact variant so the pytest-benchmark rounds stay quick
SMALL_GRID = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(6, 8, 10),
)


def campaign_suites(members: int = 4, pool: int = 6) -> list[WorkloadSuite]:
    """Sliding-window suites over a shared query pool (heavy overlap)."""
    queries = [q3_join(100, 0.01 * (i + 1), 0.05) for i in range(pool)]
    return [
        WorkloadSuite.of(f"mix-{start}", *queries[start : start + members])
        for start in range(0, pool - members + 1)
    ]


def legacy_campaign(candidates, suites, workers=WORKERS):
    """The pre-redesign dispatch: (candidate x workload) granularity and
    one pool per search call."""
    evaluator = SimulatorEvaluator()
    context = DesignSpaceSearch._context()
    results = []
    for suite in suites:
        chunk = max(1, math.ceil(len(candidates) / (workers * 4)))
        payloads = [
            (evaluator, suite, candidates[start : start + chunk])
            for start in range(0, len(candidates), chunk)
        ]
        with context.Pool(processes=workers) as pool:
            chunked = pool.map(evaluate_chunk, payloads)
        results.append([point for batch in chunked for point in batch])
    return results


def fanout_campaign(candidates, suites, workers=WORKERS):
    """The shipped engine: per-entry dedupe/memoization + persistent pool."""
    engine = DesignSpaceSearch(
        evaluator=SimulatorEvaluator(), workers=workers, cache=EvaluationCache()
    )
    with engine:
        return [engine.search(candidates, suite).points for suite in suites]


def test_fanout_matches_legacy():
    """The redesigned dispatch returns the legacy results bit for bit."""
    candidates = SMALL_GRID.candidate_list()
    suites = campaign_suites()
    legacy = legacy_campaign(candidates, suites)
    fanout = fanout_campaign(candidates, suites)
    for old_points, new_points in zip(legacy, fanout):
        assert [(p.time_s, p.energy_j, p.feasible) for p in old_points] == [
            (p.time_s, p.energy_j, p.feasible) for p in new_points
        ]


def test_legacy_campaign(benchmark):
    candidates = SMALL_GRID.candidate_list()
    results = benchmark(legacy_campaign, candidates, campaign_suites())
    assert len(results) == 3


def test_fanout_campaign(benchmark):
    candidates = SMALL_GRID.candidate_list()
    results = benchmark(fanout_campaign, candidates, campaign_suites())
    assert len(results) == 3


def run_comparison(grid=FULL_GRID, workers=WORKERS) -> dict:
    """Time both dispatch strategies on the full campaign."""
    candidates = grid.candidate_list()
    suites = campaign_suites()

    start = time.perf_counter()
    legacy = legacy_campaign(candidates, suites, workers)
    legacy_s = time.perf_counter() - start

    start = time.perf_counter()
    fanout = fanout_campaign(candidates, suites, workers)
    fanout_s = time.perf_counter() - start

    agree = all(
        [(p.time_s, p.energy_j, p.feasible) for p in old_points]
        == [(p.time_s, p.energy_j, p.feasible) for p in new_points]
        for old_points, new_points in zip(legacy, fanout)
    )
    unique_queries = len({query for suite in suites for query, _weight in suite})
    members = len(suites[0].entries)
    return {
        "benchmark": "query-fanout suite-sweep campaign",
        "designs": len(candidates),
        "suites": len(suites),
        "members_per_suite": members,
        "unique_queries": unique_queries,
        "workers": workers,
        "legacy_query_evaluations": len(candidates) * len(suites) * members,
        "fanout_query_evaluations": len(candidates) * unique_queries,
        "legacy_wall_s": round(legacy_s, 4),
        "fanout_wall_s": round(fanout_s, 4),
        "speedup": round(legacy_s / fanout_s, 3),
        "results_identical": agree,
    }


if __name__ == "__main__":
    out = sys.argv[sys.argv.index("--json") + 1] if "--json" in sys.argv else None
    payload = run_comparison()
    text = json.dumps(payload, indent=2) + "\n"
    if out:
        with open(out, "w") as handle:
            handle.write(text)
    sys.stdout.write(text)
