"""Evaluations-to-knee: exhaustive grid vs adaptive optimizers.

The adaptive-search promise is budget, not wall-clock: on the reference
216-design space the exhaustive sweep spends ``216 x entries`` fresh
per-entry evaluations to locate the trade-off knee, while seeded
``SuccessiveHalving`` races entry-subsampled rungs to the same knee for
a fraction of that, and seeded ``RandomSearch`` gives the
budget-baseline in between.  ``pytest benchmarks/test_optimize.py -q``
checks the claims through pytest-benchmark; ``make bench-json`` (``python
benchmarks/test_optimize.py --json BENCH_optimize.json``) records the
evaluations-to-knee trajectory so future PRs can track it alongside
``BENCH_search.json``.
"""

import json
import sys
import time

from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.search import (
    DesignGrid,
    DesignSpaceSearch,
    EvaluationCache,
    OptimizationLoop,
    RandomSearch,
    SearchSpace,
    SuccessiveHalving,
)
from repro.workloads.queries import q3_join
from repro.workloads.suite import WorkloadSuite

#: the acceptance-criteria space: 216 designs
FULL_GRID = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(6, 8, 10, 12, 14, 16),
    frequency_factors=(1.0, 0.8, 0.6),
)

SEED = 0


def nightly_suite(members: int = 4) -> WorkloadSuite:
    return WorkloadSuite.of(
        "nightly", *[q3_join(100, 0.01 * (i + 1), 0.05) for i in range(members)]
    )


def grid_baseline(grid=FULL_GRID, suite=None):
    suite = suite if suite is not None else nightly_suite()
    result = DesignSpaceSearch(cache=EvaluationCache()).search(grid, suite)
    return result


def optimize(optimizer, grid=FULL_GRID, suite=None, **loop_options):
    suite = suite if suite is not None else nightly_suite()
    loop = OptimizationLoop(
        DesignSpaceSearch(cache=EvaluationCache()),
        SearchSpace.from_grid(grid),
        suite,
        optimizer,
        seed=SEED,
        **loop_options,
    )
    return loop.run()


def evaluations_to_knee(result, knee_key) -> int | None:
    """Fresh evaluations spent when the archive knee first matched."""
    by_label = {}
    for point in result.points:
        by_label[point.label] = point.candidate.key()
    for point in result.trajectory:
        if point.knee_label is None:
            continue
        if by_label.get(point.knee_label) == knee_key:
            return point.fresh_query_evaluations
    return None


# ------------------------------------------------------------- pytest gate
def test_successive_halving_recovers_the_knee_cheaply():
    exhaustive = grid_baseline()
    sha = optimize(SuccessiveHalving())
    assert sha.knee().candidate.key() == exhaustive.knee().candidate.key()
    assert sha.fresh_query_evaluations <= 0.4 * exhaustive.query_evaluations


def test_grid_campaign(benchmark):
    result = benchmark(grid_baseline)
    assert len(result.points) == 216


def test_successive_halving_campaign(benchmark):
    result = benchmark(optimize, SuccessiveHalving())
    assert result.stop_reason == "optimizer-finished"


def test_random_campaign(benchmark):
    result = benchmark(optimize, RandomSearch(), budget=400)
    assert result.stop_reason in ("budget-exhausted", "optimizer-finished")


# --------------------------------------------------------------- JSON entry
def run_comparison(grid=FULL_GRID) -> dict:
    """Evaluations-to-knee (and wall time) for grid vs random vs SHA."""
    suite = nightly_suite()

    start = time.perf_counter()
    exhaustive = grid_baseline(grid, suite)
    grid_wall_s = time.perf_counter() - start
    knee_key = exhaustive.knee().candidate.key()

    start = time.perf_counter()
    sha = optimize(SuccessiveHalving(), grid, suite)
    sha_wall_s = time.perf_counter() - start

    start = time.perf_counter()
    rand = optimize(
        RandomSearch(), grid, suite, budget=exhaustive.query_evaluations
    )
    random_wall_s = time.perf_counter() - start

    sha_to_knee = evaluations_to_knee(sha, knee_key)
    random_to_knee = evaluations_to_knee(rand, knee_key)
    return {
        "benchmark": "evaluations-to-knee, adaptive vs exhaustive",
        "designs": len(grid.candidate_list()),
        "workload_entries": len(suite.weighted_queries()),
        "seed": SEED,
        "grid_fresh_evaluations": exhaustive.query_evaluations,
        "grid_knee": exhaustive.knee().label,
        "grid_wall_s": round(grid_wall_s, 4),
        "sha_fresh_evaluations": sha.fresh_query_evaluations,
        "sha_evaluations_to_knee": sha_to_knee,
        "sha_knee_matches_grid": sha.knee().candidate.key() == knee_key,
        "sha_fraction_of_grid": round(
            sha.fresh_query_evaluations / exhaustive.query_evaluations, 4
        ),
        "sha_wall_s": round(sha_wall_s, 4),
        "random_fresh_evaluations": rand.fresh_query_evaluations,
        "random_evaluations_to_knee": random_to_knee,
        "random_knee_matches_grid": rand.knee().candidate.key() == knee_key,
        "random_wall_s": round(random_wall_s, 4),
    }


if __name__ == "__main__":
    out = sys.argv[sys.argv.index("--json") + 1] if "--json" in sys.argv else None
    payload = run_comparison()
    text = json.dumps(payload, indent=2) + "\n"
    if out:
        with open(out, "w") as handle:
            handle.write(text)
    sys.stdout.write(text)
