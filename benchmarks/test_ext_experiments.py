"""Benches for the packaged extension experiments (ext-* ids)."""

from conftest import assert_claims

from repro.experiments.extensions import ext_dvfs, ext_skew, ext_stream, ext_trends


def test_ext_trends(benchmark):
    result = benchmark(ext_trends)
    assert_claims(result)


def test_ext_skew(benchmark):
    result = benchmark(ext_skew)
    assert_claims(result)


def test_ext_dvfs(benchmark):
    result = benchmark(ext_dvfs)
    assert_claims(result)


def test_ext_stream(benchmark):
    result = benchmark(ext_stream)
    assert_claims(result)
