"""Cost bench: TCO pricing on the reference diurnal campaign.

The multi-objective cost model's contract is threefold, and each clause
is a hard gate here — the bench fails, not warns, when one breaks:

* **default-path bit-parity** — a campaign with no :class:`CostModel`
  attached produces records, frontier, and knee identical to a priced
  campaign's base fields: pricing is an annotation, never a perturbation;
* **knee divergence** — on the reference 216-design diurnal campaign the
  3-objective (time, energy, price) knee differs from the classic
  2-objective knee: the added axis genuinely reshapes selection (a capex
  model that prices wall time pulls the knee off the energy-optimal
  shoulder);
* **exact time-of-day integration** — a time-varying carbon curve's
  per-record grams must match an independent per-interval oracle that
  splits every simulator interval at slot boundaries and integrates
  piecewise, to float precision.

``pytest benchmarks/test_cost.py -q`` runs compact slices;
``make bench-json`` (``python benchmarks/test_cost.py --json
BENCH_cost.json``) runs the full campaign.
"""

import json
import multiprocessing
import sys
import time

from repro.costmodel import CarbonIntensityCurve, CostModel, JOULES_PER_KWH
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.pstore.simulated import SimulatedPStore
from repro.search import DesignGrid, DesignSpaceSearch, SimulatorEvaluator
from repro.workloads.arrivals import diurnal_arrivals
from repro.workloads.protocol import TimedTrace
from repro.workloads.queries import q3_join

EVENTS = 48

#: the reference campaign space: 216 designs (matches BENCH_policy.json)
FULL_GRID = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(6, 8, 10, 12, 14, 16),
    frequency_factors=(1.0, 0.8, 0.6),
)

#: compact variant so the pytest rounds stay quick
SMALL_GRID = DesignGrid(
    node_pairs=FULL_GRID.node_pairs,
    cluster_sizes=(6, 8),
)

#: capex prices wall time (a beefy server amortizes ~10x a laptop node),
#: which is exactly what pulls the 3-objective knee off the 2-objective one
REFERENCE_MODEL = CostModel(
    tariff_usd_per_kwh=0.12,
    carbon_g_per_kwh=400.0,
    capex_usd_per_node_hour={"cluster-V": 0.80, "wimpy-laptopB": 0.08},
)


def solo_runtime() -> float:
    return (
        SimulatorEvaluator()
        .evaluate_query(FULL_GRID.candidate_list()[0], q3_join(100, 0.05, 0.05))
        .time_s
    )


def reference_trace(solo: float, events: int = EVENTS) -> TimedTrace:
    """The diurnal reference trace (same shape as the policy bench)."""
    times = diurnal_arrivals(
        events,
        base_rate_per_s=0.005 / solo,
        peak_rate_per_s=0.5 / solo,
        period_s=55.0 * solo,
        seed=11,
    )
    return TimedTrace.from_schedule("bench-diurnal", q3_join(100, 0.05, 0.05), times)


def diurnal_model(solo: float, events: int = EVENTS) -> CostModel:
    """REFERENCE_MODEL with its flat grid swapped for a diurnal curve
    spanning the trace (trough at the stream's start)."""
    return CostModel(
        tariff_usd_per_kwh=REFERENCE_MODEL.tariff_usd_per_kwh,
        carbon_g_per_kwh=CarbonIntensityCurve.diurnal(
            50.0, 750.0, period_s=55.0 * solo
        ),
        capex_usd_per_node_hour=REFERENCE_MODEL.capex_usd_per_node_hour,
    )


def campaign(grid, trace, cost_model=None):
    return DesignSpaceSearch(
        evaluator=SimulatorEvaluator(cost_model=cost_model)
    ).search(grid, trace)


def base_view(points):
    """The pre-cost record surface: everything but the two cost fields."""
    return [
        (p.label, p.time_s, p.energy_j, p.feasible, p.latency) for p in points
    ]


def oracle_carbon_g(evaluator, candidate, trace, curve) -> float:
    """Independent per-interval integration: re-run the trace with
    interval recording and integrate each stretch by splitting at slot
    boundaries with :meth:`CarbonIntensityCurve.at` — no closed form."""
    cluster = candidate.cluster()
    store = SimulatedPStore(cluster, record_intervals=True)
    result = store.run_trace(evaluator._trace_schedule(cluster, candidate, trace))
    total = 0.0
    for interval in result.intervals:
        t = interval.start_s
        while t < interval.end_s:
            # advance to the next slot boundary (or the interval's end);
            # the rounding guard keeps a boundary that lands exactly on t
            # from producing a zero-width step
            boundary = (t // curve.slot_s + 1.0) * curve.slot_s
            if boundary <= t:
                boundary = (t // curve.slot_s + 2.0) * curve.slot_s
            step_end = min(boundary, interval.end_s)
            total += (
                interval.cluster_power_w
                * curve.at((t + step_end) / 2.0)
                * (step_end - t)
                / JOULES_PER_KWH
            )
            t = step_end
    return total


def test_default_path_parity_small():
    solo = solo_runtime()
    trace = reference_trace(solo, events=8)
    bare = campaign(SMALL_GRID, trace)
    priced = campaign(SMALL_GRID, trace, REFERENCE_MODEL)
    assert base_view(bare.points) == base_view(priced.points)
    assert all(p.carbon_g is None and p.price_usd is None for p in bare.points)
    assert all(
        p.carbon_g is not None and p.price_usd is not None
        for p in priced.points
        if p.feasible
    )


def test_time_of_day_carbon_matches_oracle_small():
    solo = solo_runtime()
    trace = reference_trace(solo, events=8)
    model = diurnal_model(solo, events=8)
    evaluator = SimulatorEvaluator(cost_model=model)
    for candidate in SMALL_GRID.candidate_list()[:4]:
        record = evaluator.evaluate_trace(candidate, trace)
        oracle = oracle_carbon_g(
            evaluator, candidate, trace, model.carbon_g_per_kwh
        )
        assert abs(record.carbon_g - oracle) <= 1e-9 * max(oracle, 1.0)


def test_cost_campaign_small(benchmark):
    solo = solo_runtime()
    trace = reference_trace(solo, events=8)
    result = benchmark(campaign, SMALL_GRID, trace, REFERENCE_MODEL)
    assert len(result.points) == len(SMALL_GRID.candidate_list())


def run_cost_bench(grid=FULL_GRID, events=EVENTS) -> dict:
    """Time the priced campaigns and gate the three cost contracts.

    Raises ``SystemExit`` on any violation: priced records diverging from
    bare ones on the base fields, a 3-objective knee that collapses onto
    the 2-objective knee, or time-of-day carbon drifting from the
    per-interval oracle.
    """
    solo = solo_runtime()
    trace = reference_trace(solo, events)

    start = time.perf_counter()
    bare = campaign(grid, trace)
    bare_s = time.perf_counter() - start

    start = time.perf_counter()
    priced = campaign(grid, trace, REFERENCE_MODEL)
    priced_s = time.perf_counter() - start

    parity_ok = base_view(bare.points) == base_view(priced.points) and all(
        p.carbon_g is None and p.price_usd is None for p in bare.points
    )
    frontier_parity_ok = [p.label for p in bare.pareto_frontier()] == [
        p.label for p in priced.pareto_frontier()
    ] and bare.knee().label == priced.knee().label

    knee_2d = priced.knee()
    knee_3d = priced.knee(objectives=("time_s", "energy_j", "price_usd"))
    frontier_2d = priced.pareto_frontier()
    frontier_3d = priced.pareto_frontier(
        objectives=("time_s", "energy_j", "price_usd")
    )

    # time-varying carbon: serial path with interval recording, checked
    # record-for-record against the boundary-splitting oracle
    model = diurnal_model(solo, events)
    start = time.perf_counter()
    timed = campaign(grid, trace, model)
    timed_s = time.perf_counter() - start
    evaluator = SimulatorEvaluator(cost_model=model)
    worst_drift = 0.0
    for point in timed.feasible_points:
        oracle = oracle_carbon_g(
            evaluator, point.candidate, trace, model.carbon_g_per_kwh
        )
        worst_drift = max(
            worst_drift, abs(point.carbon_g - oracle) / max(oracle, 1.0)
        )
    oracle_ok = worst_drift <= 1e-9

    # the diurnal curve must actually matter vs pricing at its mean
    mean_priced = {
        p.label: p.carbon_g / (p.energy_j / JOULES_PER_KWH)
        for p in timed.feasible_points
    }
    realized_spread = max(mean_priced.values()) - min(mean_priced.values())

    payload = {
        "benchmark": "TCO cost-model diurnal campaign",
        "designs": len(grid),
        "arrival_events": events,
        "cpus": multiprocessing.cpu_count(),
        "bare_wall_s": round(bare_s, 4),
        "priced_wall_s": round(priced_s, 4),
        "timed_carbon_wall_s": round(timed_s, 4),
        "pricing_overhead": round(priced_s / bare_s - 1.0, 4),
        "default_path_parity": parity_ok,
        "frontier_parity": frontier_parity_ok,
        "knee_2d": knee_2d.label,
        "knee_3d": knee_3d.label,
        "frontier_2d_size": len(frontier_2d),
        "frontier_3d_size": len(frontier_3d),
        "carbon_oracle_worst_rel_drift": worst_drift,
        "realized_g_per_kwh_spread": round(realized_spread, 2),
        "knee_3d_price_usd": round(knee_3d.price_usd, 4),
        "knee_2d_price_usd": round(knee_2d.price_usd, 4),
    }
    if not parity_ok:
        raise SystemExit(
            "cost bench FAILED: priced campaign perturbed the base records"
        )
    if not frontier_parity_ok:
        raise SystemExit(
            "cost bench FAILED: default-objective selections changed under pricing"
        )
    if knee_3d.label == knee_2d.label:
        raise SystemExit(
            "cost bench FAILED: the price axis did not move the knee "
            f"(both {knee_2d.label})"
        )
    if len(frontier_3d) < len(frontier_2d):
        raise SystemExit(
            "cost bench FAILED: adding the price objective shrank the frontier"
        )
    if not oracle_ok:
        raise SystemExit(
            "cost bench FAILED: time-of-day carbon drifted from the "
            f"per-interval oracle by {worst_drift:.2e} relative"
        )
    return payload


if __name__ == "__main__":
    out = sys.argv[sys.argv.index("--json") + 1] if "--json" in sys.argv else None
    payload = run_cost_bench()
    text = json.dumps(payload, indent=2) + "\n"
    if out:
        with open(out, "w") as handle:
            handle.write(text)
    sys.stdout.write(text)
