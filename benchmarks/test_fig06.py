"""Figure 6: single-node hash-join energy across hardware classes."""

from conftest import assert_claims

from repro.experiments.fig06 import fig6


def test_fig6(benchmark):
    result = benchmark(fig6)
    assert_claims(result)
