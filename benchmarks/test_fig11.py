"""Figure 11: knee migration with probe selectivity."""

from conftest import assert_claims

from repro.experiments.fig11 import fig11


def test_fig11(benchmark):
    result = benchmark(fig11)
    assert_claims(result)
