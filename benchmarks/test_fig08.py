"""Figure 8: model validation, homogeneous plans (5% bound)."""

from conftest import assert_claims

from repro.experiments.fig08 import fig8


def test_fig8(benchmark):
    result = benchmark(fig8)
    assert_claims(result)
