"""Tables 1-3: configuration, hardware, and model constants."""

from conftest import assert_claims

from repro.experiments.tables import tbl1, tbl2, tbl3


def test_table1(benchmark):
    result = benchmark(tbl1)
    assert_claims(result)


def test_table2(benchmark):
    result = benchmark(tbl2)
    assert_claims(result)


def test_table3(benchmark):
    result = benchmark(tbl3)
    assert_claims(result)
