"""Ablation benches for the design choices called out in DESIGN.md.

1. **Fluid simulator vs analytical model** — on scenarios both cover, the
   two independent implementations agree (this is what makes the Figure 8/9
   validation meaningful).
2. **Switch contention** — disabling the SMC-switch interference collapses
   the Figure 3 concurrency effect: energy savings stop growing with
   concurrency, and the Vertica Q12 shape degenerates toward ideal scaling
   with an ideal (alpha = 1) shuffle stage.
3. **Receive-side CPU cost** — the paper's model charges scan-side CPU
   only; enabling receive cost shifts energy but must not change who wins.
"""

import pytest

from repro.core.model import ModelParameters, PStoreModel
from repro.dbms.vertica_like import QueryProfile, VerticaLikeDBMS
from repro.experiments.fig03 import run_concurrency_sweep
from repro.hardware.cluster import ClusterSpec
from repro.hardware.presets import CLUSTER_V_NODE
from repro.pstore.engine import PStore, PStoreConfig
from repro.pstore.plans import ExecutionMode
from repro.simulator.network import IDEAL_SWITCH
from repro.workloads.queries import q3_join, section54_join


def fluid_vs_analytic():
    """Max absolute relative gap between simulator and model across a grid."""
    cluster = ClusterSpec.homogeneous(CLUSTER_V_NODE, 8)
    engine = PStore(
        cluster, config=PStoreConfig(warm_cache=False), record_intervals=False
    )
    model = PStoreModel(ModelParameters.from_cluster(cluster), warm_cache=False)
    worst = 0.0
    for sb, sp in ((0.01, 0.01), (0.10, 0.01), (0.10, 0.10), (0.50, 0.05)):
        workload = section54_join(sb, sp)
        simulated = engine.simulate(workload, force_mode=ExecutionMode.HOMOGENEOUS)
        predicted = model.predict(workload, mode=ExecutionMode.HOMOGENEOUS)
        worst = max(
            worst,
            abs(simulated.makespan_s - predicted.time_s) / predicted.time_s,
            abs(simulated.energy_j - predicted.energy_j) / predicted.energy_j,
        )
    return worst


def test_fluid_vs_analytic(benchmark):
    """Simulator and closed-form model agree on homogeneous cold scans."""
    worst = benchmark(fluid_vs_analytic)
    assert worst <= 0.12, f"simulator vs model diverge by {worst:.1%}"


def concurrency_effect(switch):
    workload = q3_join(1000, 0.05, 0.05)
    curves = run_concurrency_sweep(workload)
    if switch is IDEAL_SWITCH:
        # recompute without contention
        from repro.core.edp import normalized_series
        from repro.pstore.engine import PStore as Engine

        curves = {}
        for k in (1, 4):
            measurements = []
            for n in (8, 4):
                engine = Engine(
                    ClusterSpec.homogeneous(CLUSTER_V_NODE, n, name=f"{n}N"),
                    switch=IDEAL_SWITCH,
                    config=PStoreConfig(warm_cache=True),
                    record_intervals=False,
                )
                result = engine.simulate(workload, concurrency=k)
                measurements.append((f"{n}N", result.makespan_s, result.energy_j))
            curves[k] = normalized_series(measurements)
    savings = {k: 1.0 - points[-1].energy for k, points in curves.items()}
    return savings


def test_switch_contention_drives_concurrency_effect(benchmark):
    """Without interference, savings do not grow with concurrency."""
    ideal = benchmark(concurrency_effect, IDEAL_SWITCH)
    assert abs(ideal[4] - ideal[1]) <= 0.01, (
        f"ideal switch should show no concurrency effect: {ideal}"
    )


def q12_with_alpha(alpha):
    profile = QueryProfile(
        name="q12-ablated",
        local_fraction=0.52,
        reference_nodes=8,
        reference_time_s=60.0,
        shuffle_scaling=alpha,
    )
    curve = VerticaLikeDBMS(CLUSTER_V_NODE).size_sweep(profile, [8, 16])
    return {p.label: p for p in curve.normalized()}


def test_ideal_shuffle_scaling_erases_fig1a(benchmark):
    """alpha = 1 (no switch contention): Q12 energy goes flat, the paper's
    Figure 1(a) energy savings disappear."""
    norm = benchmark(q12_with_alpha, 1.0)
    assert norm["8N"].performance == pytest.approx(0.5, abs=0.02)
    assert norm["8N"].energy == pytest.approx(1.0, abs=0.06)
    # whereas the calibrated alpha shows the paper's shape
    calibrated = q12_with_alpha(0.34)
    assert calibrated["8N"].energy < 0.85


def winner_with_receive_cost(receive_cpu_cost):
    workload = q3_join(400, 0.01, 1.00)
    config = PStoreConfig(
        warm_cache=True, pipeline_cpu_cost=3.0, receive_cpu_cost=receive_cpu_cost
    )
    from repro.hardware.presets import BEEFY_L5630, WIMPY_LAPTOP_B

    ab = PStore(
        ClusterSpec.homogeneous(BEEFY_L5630, 4, name="AB"),
        config=config,
        record_intervals=False,
    )
    bw = PStore(
        ClusterSpec.beefy_wimpy(
            BEEFY_L5630, 2, WIMPY_LAPTOP_B.with_overrides(nic_bandwidth_mbps=88.0), 2,
            name="BW",
        ),
        config=config,
        record_intervals=False,
    )
    return bw.simulate(workload).energy_j / ab.simulate(workload).energy_j


def test_receive_cost_does_not_flip_fig7a_winner(benchmark):
    """Charging hash-build CPU at receivers changes magnitudes, not the
    BW-wins-at-L100 conclusion."""
    with_cost = benchmark(winner_with_receive_cost, 0.5)
    without_cost = winner_with_receive_cost(0.0)
    assert with_cost < 1.0 and without_cost < 1.0
    assert abs(with_cost - without_cost) < 0.15
