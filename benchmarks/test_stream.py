"""Stream bench: timed-trace evaluation over the reference design campaign.

The latency-aware path replays a whole arrival trace per design, and
since the event-multiplexed engine landed
(:func:`repro.simulator.multiplex.run_multiplexed`) the campaign advances
every design's replay together on one event loop.  This benchmark tracks
that speedup honestly: the *oracle* run replays the trace design by
design through the scalar engine
(:func:`~repro.search.evaluators.evaluate_timed_design`), the measured
run is the multiplexed campaign (``DesignSpaceSearch.search`` →
``evaluate_trace_batch``), and the two must agree record for record —
the engine's contract is bit-identical results, not "close enough".

``pytest benchmarks/test_stream.py -q`` runs compact slices through
pytest-benchmark and asserts the multiplexed campaign matches both the
serial oracle and parallel dispatch record for record.  ``make
bench-json`` (``python benchmarks/test_stream.py --json
BENCH_stream.json``) times the full 216-design campaign and *fails* if
the records diverge or the multiplexed speedup drops below
``MIN_SPEEDUP`` — a perf regression gate, not just a report.
"""

import json
import multiprocessing
import sys
import time

from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.search import DesignGrid, DesignSpaceSearch, SimulatorEvaluator
from repro.search.evaluators import evaluate_timed_design
from repro.workloads.arrivals import poisson_arrivals
from repro.workloads.protocol import TimedTrace
from repro.workloads.queries import q3_join

WORKERS = 2
EVENTS = 24

#: the bench fails outright below this multiplexed-over-serial speedup
MIN_SPEEDUP = 5.0

#: the reference campaign space: 216 designs (matches BENCH_search.json)
FULL_GRID = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(6, 8, 10, 12, 14, 16),
    frequency_factors=(1.0, 0.8, 0.6),
)

#: compact variant so the pytest-benchmark rounds stay quick
SMALL_GRID = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(6, 8),
)


def reference_trace(events: int = EVENTS) -> TimedTrace:
    """A Poisson arrival day with genuine queueing on the reference join.

    The rate is calibrated to ~1.5 arrivals per solo runtime on the
    grid's first design, so a fair share of queries overlap and the p99
    actually measures contention, not isolated runs.
    """
    query = q3_join(100, 0.05, 0.05)
    solo = SimulatorEvaluator().evaluate_query(
        FULL_GRID.candidate_list()[0], query
    ).time_s
    times = poisson_arrivals(events, rate_per_s=1.5 / solo, seed=11)
    return TimedTrace.from_schedule("bench-day", query, times)


def timed_campaign(grid, trace, workers=1):
    """One cold timed search over the grid; returns the SearchResult."""
    engine = DesignSpaceSearch(
        evaluator=SimulatorEvaluator(), workers=workers, min_dispatch_tasks=1
    )
    with engine:
        return engine.search(grid, trace)


def serial_oracle(grid, trace):
    """The pre-multiplexing path: one scalar trace replay per design."""
    evaluator = SimulatorEvaluator()
    return [
        evaluate_timed_design(evaluator, candidate, trace)
        for candidate in grid.candidate_list()
    ]


def record_view(points):
    return [
        (p.label, p.time_s, p.energy_j, p.feasible, p.latency) for p in points
    ]


def test_multiplexed_matches_serial_oracle():
    """The multiplexed campaign is bit-identical to design-by-design replay."""
    trace = reference_trace(events=8)
    campaign = timed_campaign(SMALL_GRID, trace)
    assert record_view(campaign.points) == record_view(
        serial_oracle(SMALL_GRID, trace)
    )


def test_serial_matches_parallel():
    """Timed dispatch is deterministic across the pool boundary."""
    trace = reference_trace(events=8)
    serial = timed_campaign(SMALL_GRID, trace, workers=1)
    parallel = timed_campaign(SMALL_GRID, trace, workers=WORKERS)
    assert parallel.workers_used == WORKERS
    assert record_view(serial.points) == record_view(parallel.points)


def test_timed_campaign_small(benchmark):
    trace = reference_trace(events=8)
    result = benchmark(timed_campaign, SMALL_GRID, trace)
    assert all(p.latency is not None for p in result.feasible_points)


def run_stream_bench(grid=FULL_GRID, events=EVENTS) -> dict:
    """Time the full timed campaign: multiplexed, serial oracle, warm.

    Raises ``SystemExit`` if the multiplexed records diverge from the
    oracle's or the speedup falls under :data:`MIN_SPEEDUP`.
    """
    trace = reference_trace(events)
    candidates = grid.candidate_list()

    engine = DesignSpaceSearch(
        evaluator=SimulatorEvaluator(), workers=1, min_dispatch_tasks=1
    )
    with engine:
        start = time.perf_counter()
        campaign = engine.search(grid, trace)
        multiplexed_s = time.perf_counter() - start
        start = time.perf_counter()
        warm = engine.search(grid, trace)
        warm_s = time.perf_counter() - start

    start = time.perf_counter()
    oracle = serial_oracle(grid, trace)
    serial_s = time.perf_counter() - start

    identical = record_view(campaign.points) == record_view(oracle)
    speedup = serial_s / multiplexed_s

    knee = campaign.knee()
    sla_s = min(p.latency.max_s for p in campaign.feasible_points) * 1.25
    pick = campaign.best_under_latency_sla(sla_s)
    payload = {
        "benchmark": "timed-trace stream campaign (event-multiplexed)",
        "designs": len(candidates),
        "arrival_events": events,
        "simulated_jobs": campaign.query_evaluations,
        "cpus": multiprocessing.cpu_count(),
        "multiplexed_wall_s": round(multiplexed_s, 4),
        "serial_wall_s": round(serial_s, 4),
        "warm_wall_s": round(warm_s, 4),
        "speedup": round(speedup, 3),
        # throughput of the shipping path (the multiplexed campaign)
        "designs_per_s": round(len(candidates) / multiplexed_s, 2),
        "simulated_jobs_per_s": round(
            campaign.query_evaluations / multiplexed_s, 1
        ),
        "results_identical": identical,
        "min_speedup": MIN_SPEEDUP,
        "warm_evaluations": warm.evaluations,
        "knee_label": knee.label,
        "knee_p99_s": round(knee.latency.p99_s, 3) if knee.latency else None,
        "latency_sla_s": round(sla_s, 3),
        "latency_sla_pick": pick.label,
        "latency_sla_pick_worst_s": round(pick.latency.max_s, 3),
    }
    if not identical:
        raise SystemExit(
            "stream bench FAILED: multiplexed campaign diverged from the "
            "serial oracle"
        )
    if speedup < MIN_SPEEDUP:
        raise SystemExit(
            f"stream bench FAILED: multiplexed speedup {speedup:.2f}x is "
            f"under the {MIN_SPEEDUP}x floor"
        )
    return payload


if __name__ == "__main__":
    out = sys.argv[sys.argv.index("--json") + 1] if "--json" in sys.argv else None
    payload = run_stream_bench()
    text = json.dumps(payload, indent=2) + "\n"
    if out:
        with open(out, "w") as handle:
            handle.write(text)
    sys.stdout.write(text)
