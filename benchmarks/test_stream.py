"""Stream bench: timed-trace evaluation over the reference design campaign.

The latency-aware path replays a whole arrival trace per design
(:meth:`SimulatorEvaluator.evaluate_trace` →
:meth:`SimulatedPStore.run_trace`), so its unit cost is one stream
simulation of every arrival — much heavier than a weights-only model
point.  This benchmark tracks that cost on a slice of the repo's
reference campaign: the 216-design grid of ``BENCH_search.json`` scored
against a Poisson day of TPC-H Q3 arrivals tuned for real queueing
(rate ~1.5 queries per solo runtime).

``pytest benchmarks/test_stream.py -q`` runs a compact slice through
pytest-benchmark and asserts serial and parallel dispatch agree record
for record.  ``make bench-json`` (``python benchmarks/test_stream.py
--json BENCH_stream.json``) times the full 216-design campaign — serial,
parallel, and warm-cache re-sweep — and records throughput plus the
knee/SLA latency readings so future PRs can track both speed and the
measured p99.
"""

import json
import multiprocessing
import sys
import time

from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.search import DesignGrid, DesignSpaceSearch, SimulatorEvaluator
from repro.workloads.arrivals import poisson_arrivals
from repro.workloads.protocol import TimedTrace
from repro.workloads.queries import q3_join

WORKERS = 2
EVENTS = 24

#: the reference campaign space: 216 designs (matches BENCH_search.json)
FULL_GRID = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(6, 8, 10, 12, 14, 16),
    frequency_factors=(1.0, 0.8, 0.6),
)

#: compact variant so the pytest-benchmark rounds stay quick
SMALL_GRID = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(6, 8),
)


def reference_trace(events: int = EVENTS) -> TimedTrace:
    """A Poisson arrival day with genuine queueing on the reference join.

    The rate is calibrated to ~1.5 arrivals per solo runtime on the
    grid's first design, so a fair share of queries overlap and the p99
    actually measures contention, not isolated runs.
    """
    query = q3_join(100, 0.05, 0.05)
    solo = SimulatorEvaluator().evaluate_query(
        FULL_GRID.candidate_list()[0], query
    ).time_s
    times = poisson_arrivals(events, rate_per_s=1.5 / solo, seed=11)
    return TimedTrace.from_schedule("bench-day", query, times)


def timed_campaign(grid, trace, workers=1):
    """One cold timed search over the grid; returns the SearchResult."""
    engine = DesignSpaceSearch(
        evaluator=SimulatorEvaluator(), workers=workers, min_dispatch_tasks=1
    )
    with engine:
        return engine.search(grid, trace)


def record_view(result):
    return [
        (p.label, p.time_s, p.energy_j, p.feasible, p.latency) for p in result.points
    ]


def test_serial_matches_parallel():
    """Timed dispatch is deterministic across the pool boundary."""
    trace = reference_trace(events=8)
    serial = timed_campaign(SMALL_GRID, trace, workers=1)
    parallel = timed_campaign(SMALL_GRID, trace, workers=WORKERS)
    assert parallel.workers_used == WORKERS
    assert record_view(serial) == record_view(parallel)


def test_timed_campaign_small(benchmark):
    trace = reference_trace(events=8)
    result = benchmark(timed_campaign, SMALL_GRID, trace)
    assert all(p.latency is not None for p in result.feasible_points)


def run_stream_bench(grid=FULL_GRID, workers=WORKERS, events=EVENTS) -> dict:
    """Time the full timed campaign: serial, parallel, and warm re-sweep."""
    trace = reference_trace(events)
    candidates = grid.candidate_list()

    start = time.perf_counter()
    serial = timed_campaign(grid, trace, workers=1)
    serial_s = time.perf_counter() - start

    engine = DesignSpaceSearch(
        evaluator=SimulatorEvaluator(), workers=workers, min_dispatch_tasks=1
    )
    with engine:
        start = time.perf_counter()
        parallel = engine.search(grid, trace)
        parallel_s = time.perf_counter() - start
        start = time.perf_counter()
        warm = engine.search(grid, trace)
        warm_s = time.perf_counter() - start

    knee = serial.knee()
    sla_s = min(p.latency.max_s for p in serial.feasible_points) * 1.25
    pick = serial.best_under_latency_sla(sla_s)
    return {
        "benchmark": "timed-trace stream campaign",
        "designs": len(candidates),
        "arrival_events": events,
        "simulated_jobs": serial.query_evaluations,
        "workers": workers,
        # parallel dispatch cannot beat serial on a single-CPU container;
        # read speedup alongside this
        "cpus": multiprocessing.cpu_count(),
        "serial_wall_s": round(serial_s, 4),
        "parallel_wall_s": round(parallel_s, 4),
        "warm_wall_s": round(warm_s, 4),
        "speedup": round(serial_s / parallel_s, 3),
        # throughput is reported off the *serial* run so the metric means
        # the same thing on every machine, core count notwithstanding
        "designs_per_s": round(len(candidates) / serial_s, 2),
        "simulated_jobs_per_s": round(serial.query_evaluations / serial_s, 1),
        "results_identical": record_view(serial) == record_view(parallel),
        "warm_evaluations": warm.evaluations,
        "knee_label": knee.label,
        "knee_p99_s": round(knee.latency.p99_s, 3) if knee.latency else None,
        "latency_sla_s": round(sla_s, 3),
        "latency_sla_pick": pick.label,
        "latency_sla_pick_worst_s": round(pick.latency.max_s, 3),
    }


if __name__ == "__main__":
    out = sys.argv[sys.argv.index("--json") + 1] if "--json" in sys.argv else None
    payload = run_stream_bench()
    text = json.dumps(payload, indent=2) + "\n"
    if out:
        with open(out, "w") as handle:
            handle.write(text)
    sys.stdout.write(text)
