"""Benchmark-suite configuration.

Each benchmark regenerates one paper table/figure via its experiment driver
and asserts every paper claim.  ``pytest benchmarks/ --benchmark-only``
therefore doubles as the reproduction gate: timings tell you the cost of
regenerating each artifact; assertion failures tell you a paper-level
conclusion no longer holds.
"""


def assert_claims(result):
    """Fail with the full report if any paper claim broke."""
    assert result.all_claims_hold, "\n" + result.report()
