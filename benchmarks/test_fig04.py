"""Figure 4: broadcast join under concurrency (simulator)."""

from conftest import assert_claims

from repro.experiments.fig04 import fig4


def test_fig4(benchmark):
    result = benchmark(fig4)
    assert_claims(result)
