"""Extension benches: DVFS and multi-query suites (Section 7 future work)."""

from repro.core.design_space import DesignSpaceExplorer
from repro.hardware.cluster import ClusterSpec
from repro.hardware.dvfs import dvfs_variant
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.pstore.engine import PStore, PStoreConfig
from repro.workloads.queries import q3_join, section54_join
from repro.workloads.suite import WorkloadSuite, suite_tradeoff_curve


def dvfs_vs_downsizing():
    """Three ways to save energy on a network-bound join, 8-node budget."""
    workload = q3_join(1000, 0.05, 0.05)
    config = PStoreConfig(warm_cache=True)

    def run(cluster):
        return PStore(cluster, config=config, record_intervals=False).simulate(workload)

    nominal = run(ClusterSpec.homogeneous(CLUSTER_V_NODE, 8, name="8N"))
    downsized = run(ClusterSpec.homogeneous(CLUSTER_V_NODE, 4, name="4N"))
    scaled = run(
        ClusterSpec.homogeneous(dvfs_variant(CLUSTER_V_NODE, 0.6), 8, name="8N@60%")
    )
    return nominal, downsized, scaled


def test_dvfs_beats_downsizing_for_network_bound_joins(benchmark):
    """DVFS sheds watts without touching the network bottleneck, so it
    saves energy at (almost) no performance cost — downsizing cannot."""
    nominal, downsized, scaled = benchmark(dvfs_vs_downsizing)
    # DVFS: same speed, less energy.
    assert scaled.makespan_s <= nominal.makespan_s * 1.02
    assert scaled.energy_j < nominal.energy_j * 0.80
    # Downsizing: saves energy too, but pays ~40% in latency.
    assert downsized.energy_j < nominal.energy_j
    assert downsized.makespan_s > nominal.makespan_s * 1.3
    # At equal performance budgets, DVFS dominates here.
    assert scaled.energy_j < downsized.energy_j


def suite_design_selection():
    from repro.workloads.suite import SuiteEntry

    suite = WorkloadSuite(
        name="nightly-reports",
        entries=(
            # a scalable scan-heavy report (runs 3x per night)
            SuiteEntry(section54_join(0.01, 0.10), weight=3.0),
            # a bottlenecked repartitioning join
            SuiteEntry(section54_join(0.10, 0.02), weight=1.0),
        ),
    )
    explorer = DesignSpaceExplorer(CLUSTER_V_NODE, WIMPY_LAPTOP_B, cluster_size=8)
    return suite_tradeoff_curve(suite, explorer)


def test_suite_level_advisor(benchmark):
    """Suite-level curves keep the single-query conclusions: Wimpy
    substitution wins subject to the Beefy-memory feasibility cut."""
    curve = benchmark(suite_design_selection)
    labels = [p.label for p in curve]
    assert labels[0] == "8B,0W"
    assert "0B,8W" not in labels  # heterogeneous query needs beefy nodes
    best = curve.best_design(target_performance=0.6)
    norm = curve.normalized_point(best.label)
    assert best.num_wimpy > 0
    assert norm.energy < 0.85
