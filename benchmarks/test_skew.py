"""Extension bench: data skew (Section 4.1 / future work).

The paper flags skew as a bottleneck that creates "cluster and server
imbalances even in highly tuned configurations".  This bench quantifies it:
Zipf-skewed partitions stretch response time (the barrier waits for the hot
node) and erode the energy savings that downsizing a bottlenecked cluster
would otherwise deliver.
"""


from repro.hardware.cluster import ClusterSpec
from repro.hardware.presets import CLUSTER_V_NODE
from repro.pstore.engine import PStore, PStoreConfig
from repro.simulator.network import SMC_GS5_SWITCH
from repro.workloads.queries import q3_join
from repro.workloads.skew import imbalance, zipf_partition_weights

WORKLOAD = q3_join(1000, 0.05, 0.05)


def run_skew_grid():
    results = {}
    for theta in (0.0, 0.5, 1.0):
        for nodes in (8, 4):
            engine = PStore(
                ClusterSpec.homogeneous(CLUSTER_V_NODE, nodes, name=f"{nodes}N"),
                switch=SMC_GS5_SWITCH,
                config=PStoreConfig(warm_cache=True),
                record_intervals=False,
            )
            weights = zipf_partition_weights(nodes, theta)
            results[(theta, nodes)] = engine.simulate(
                WORKLOAD, partition_weights=weights
            )
    return results


def test_skew_stretches_response_time(benchmark):
    results = benchmark(run_skew_grid)
    for nodes in (8, 4):
        uniform = results[(0.0, nodes)].makespan_s
        mild = results[(0.5, nodes)].makespan_s
        heavy = results[(1.0, nodes)].makespan_s
        assert uniform < mild < heavy, f"{nodes}N: skew must slow the join"


def test_skew_amplifies_downsizing_savings():
    """Section 4.1: skew creates imbalances 'especially as the system
    scales' — under a Zipf placement the hot node's share of the data grows
    with cluster size, so the big cluster wastes proportionally more idle
    capacity and downsizing saves even more energy."""
    results = run_skew_grid()
    savings = {
        theta: 1.0 - results[(theta, 4)].energy_j / results[(theta, 8)].energy_j
        for theta in (0.0, 0.5, 1.0)
    }
    assert savings[0.0] > 0.10  # the baseline Figure 3 effect
    assert savings[0.0] < savings[0.5] < savings[1.0]
    # the hot node's relative share at 8 nodes exceeds its share at 4
    assert imbalance(zipf_partition_weights(8, 1.0)) > imbalance(
        zipf_partition_weights(4, 1.0)
    )


def test_imbalance_metric_tracks_theta():
    assert (
        imbalance(zipf_partition_weights(8, 0.0))
        < imbalance(zipf_partition_weights(8, 0.5))
        < imbalance(zipf_partition_weights(8, 1.0))
    )
