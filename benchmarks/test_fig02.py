"""Figure 2: Vertica Q1/Q21 — scalable queries have flat energy."""

from conftest import assert_claims

from repro.experiments.fig02 import fig2a, fig2b


def test_fig2a(benchmark):
    result = benchmark(fig2a)
    assert_claims(result)


def test_fig2b(benchmark):
    result = benchmark(fig2b)
    assert_claims(result)
