"""Search-engine bench: serial vs parallel sweep, and cached re-sweep.

Measures the three performance claims of :mod:`repro.search`:

* a simulator-backed grid sweep parallelizes across a process pool,
* the parallel path returns exactly the serial path's results,
* a repeated sweep is served entirely from the evaluation cache.

Run with ``pytest benchmarks/test_search.py -q`` (or ``make bench``); the
printed per-test timings give the serial/parallel ratio on this machine.
"""

from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.search import (
    DesignGrid,
    DesignSpaceSearch,
    EvaluationCache,
    SimulatorEvaluator,
)
from repro.workloads.queries import section54_join

QUERY = section54_join()

#: simulator-backed sweep: heavy enough per point for fan-out to pay off
GRID = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(6, 8, 10),
    frequency_factors=(1.0, 0.8),
)


def run_search(workers: int):
    search = DesignSpaceSearch(
        evaluator=SimulatorEvaluator(),
        workers=workers,
        cache=EvaluationCache(),  # fresh cache: measure evaluation, not lookup
    )
    return search.search(GRID, QUERY)


def test_search_serial(benchmark):
    result = benchmark(run_search, 1)
    assert result.evaluations == len(GRID)


def test_search_parallel(benchmark):
    result = benchmark(run_search, 4)
    assert result.evaluations == len(GRID)


def test_parallel_matches_serial():
    assert run_search(4).points == run_search(1).points


def test_cached_resweep(benchmark):
    search = DesignSpaceSearch(evaluator=SimulatorEvaluator(), workers=1)
    search.search(GRID, QUERY)  # warm the cache once

    result = benchmark(search.search, GRID, QUERY)
    assert result.evaluations == 0
    assert result.cache_hits == len(GRID)
