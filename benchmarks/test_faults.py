"""Faults bench: degraded-mode evaluation on the reference campaign.

The claim behind :mod:`repro.faults` is twofold.  First, *do no harm*:
an empty ``FaultSchedule`` must ride the multiplexed fast path and
reproduce the healthy campaign bit for bit.  Second, *faults change the
answer*: under a seeded crash-and-recover scenario aimed at the diurnal
peak, the design ``best_under_degraded_sla`` selects differs from the
one the healthy ``best_under_latency_sla`` rule picks at the same SLA —
robustness costs real hardware, and the selector must surface that.

Two gates, both hard:

* fault-free parity — the empty-schedule search must be bit-identical
  (label, time, energy, latency) to the healthy search;
* knee shift — on the 216-design campaign the degraded pick must differ
  from the healthy pick at the shared SLA, and the crash must actually
  kill work (retries observed on every feasible degraded record).

``pytest benchmarks/test_faults.py -q`` runs compact slices through
pytest-benchmark; ``make bench-json`` (``python benchmarks/test_faults.py
--json BENCH_faults.json``) runs the full campaign.
"""

import json
import multiprocessing
import sys
import time

from repro.faults import FailurePolicy, FaultSchedule, NodeCrash, Straggler
from repro.hardware.powerstate import PowerStateModel
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.search import DesignGrid, DesignSpaceSearch, SimulatorEvaluator
from repro.search.pareto import best_under_degraded_sla, best_under_latency_sla
from repro.workloads.arrivals import diurnal_arrivals
from repro.workloads.protocol import TimedTrace
from repro.workloads.queries import q3_join

EVENTS = 48

#: the reference campaign space: 216 designs (matches BENCH_stream.json)
FULL_GRID = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(6, 8, 10, 12, 14, 16),
    frequency_factors=(1.0, 0.8, 0.6),
)

#: compact variant so the pytest-benchmark rounds stay quick
SMALL_GRID = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(6, 8),
)


def solo_runtime() -> float:
    """Solo runtime of the reference join on the grid's first design —
    the time unit the trace and fault scenario are calibrated in."""
    return (
        SimulatorEvaluator()
        .evaluate_query(FULL_GRID.candidate_list()[0], q3_join(100, 0.05, 0.05))
        .time_s
    )


def reference_trace(solo: float, events: int = EVENTS) -> TimedTrace:
    """The diurnal reference trace (same shape as the policy bench)."""
    times = diurnal_arrivals(
        events,
        base_rate_per_s=0.005 / solo,
        peak_rate_per_s=0.5 / solo,
        period_s=55.0 * solo,
        seed=11,
    )
    return TimedTrace.from_schedule("bench-diurnal", q3_join(100, 0.05, 0.05), times)


def nemesis(trace: TimedTrace, solo: float) -> FaultSchedule:
    """Crash-and-recover aimed at the diurnal peak, plus a straggler.

    The crash lands just after a real arrival, so on every design a
    query dies mid-flight and the retry/backoff machinery runs; the
    node stays down for several solo runtimes, long enough that queueing
    piles up behind the outage.
    """
    times = [at_s for _, at_s in trace.schedule()]
    crash_at = times[len(times) // 3] + 0.02 * solo
    return FaultSchedule(
        events=(
            NodeCrash(node=1, at_s=crash_at, recover_at_s=crash_at + 8.0 * solo),
            Straggler(
                node=2,
                at_s=crash_at + 10.0 * solo,
                slowdown=0.6,
                duration_s=6.0 * solo,
            ),
        ),
        name="bench-nemesis",
    )


def failure_policy(solo: float) -> FailurePolicy:
    """Abort-and-retry with fast-sleep reboot hardware."""
    return FailurePolicy.abort_and_retry(
        backoff_base_s=0.1 * solo,
        backoff_cap_s=2.0 * solo,
        transitions=PowerStateModel(
            shutdown_s=0.03 * solo,
            boot_s=0.5 * solo,
            transition_power_fraction=0.8,
            gated_power_fraction=0.05,
        ),
    )


def record_view(points):
    return [(p.label, p.time_s, p.energy_j, p.feasible, p.latency) for p in points]


def knee_shift(healthy_points, degraded_points) -> tuple[dict, bool]:
    """Healthy vs degraded pick at a shared p99 SLA.

    The SLA gives the most robust design 5% headroom over its degraded
    p99, so the degraded selector has at least one candidate while the
    healthy selector sees a roomy requirement and optimizes energy.
    """
    degraded_feasible = [p for p in degraded_points if p.feasible]
    sla_s = 1.05 * min(p.degraded_latency.p99_s for p in degraded_feasible)
    healthy_pick = best_under_latency_sla(healthy_points, sla_s, metric="p99")
    degraded_pick = best_under_degraded_sla(degraded_points, sla_s, metric="p99")
    matchup = {
        "sla_p99_s": round(sla_s, 3),
        "healthy_label": healthy_pick.label,
        "healthy_energy_j": round(healthy_pick.energy_j, 1),
        "healthy_p99_s": round(healthy_pick.latency.p99_s, 3),
        "degraded_label": degraded_pick.label,
        "degraded_energy_j": round(degraded_pick.energy_j, 1),
        "degraded_p99_s": round(degraded_pick.degraded_latency.p99_s, 3),
        "recovery_energy_j": round(degraded_pick.recovery_energy_j, 1),
        "retried_jobs": degraded_pick.retried_jobs,
    }
    return matchup, healthy_pick.label != degraded_pick.label


def test_empty_schedule_parity_small():
    trace = reference_trace(solo_runtime(), events=8)
    engine = DesignSpaceSearch(evaluator=SimulatorEvaluator())
    healthy = engine.search(SMALL_GRID, trace)
    empty = engine.search(SMALL_GRID, trace.with_faults(FaultSchedule()))
    assert record_view(empty.points) == record_view(healthy.points)


def test_nemesis_bites_on_the_small_grid():
    solo = solo_runtime()
    trace = reference_trace(solo, events=24)
    faulted = trace.with_faults(nemesis(trace, solo), failure_policy(solo))
    result = DesignSpaceSearch(evaluator=SimulatorEvaluator()).search(
        SMALL_GRID, faulted
    )
    feasible = [p for p in result.points if p.feasible]
    assert feasible
    assert all(p.retried_jobs >= 1 for p in feasible)
    assert all(p.recovery_energy_j > 0 for p in feasible)
    assert all(p.faults_survived == 2 for p in feasible)


def test_degraded_campaign_small(benchmark):
    solo = solo_runtime()
    trace = reference_trace(solo, events=8)
    faulted = trace.with_faults(nemesis(trace, solo), failure_policy(solo))

    def campaign():
        return DesignSpaceSearch(evaluator=SimulatorEvaluator()).search(
            SMALL_GRID, faulted
        )

    result = benchmark(campaign)
    assert len(result.points) == len(SMALL_GRID.candidate_list())


def run_faults_bench(grid=FULL_GRID, events=EVENTS) -> dict:
    """Time the healthy + degraded campaigns and gate parity + knee shift.

    Raises ``SystemExit`` if the empty-schedule campaign diverges from
    the healthy one, if the nemesis fails to kill any work, or if the
    degraded-SLA pick equals the healthy pick (faults not changing the
    answer means the degraded path is not discriminating anything).
    """
    solo = solo_runtime()
    trace = reference_trace(solo, events)
    faults = nemesis(trace, solo)
    faulted = trace.with_faults(faults, failure_policy(solo))

    engine = DesignSpaceSearch(evaluator=SimulatorEvaluator())
    start = time.perf_counter()
    healthy = engine.search(grid, trace)
    healthy_s = time.perf_counter() - start

    start = time.perf_counter()
    empty = engine.search(grid, trace.with_faults(FaultSchedule()))
    empty_s = time.perf_counter() - start
    parity = record_view(empty.points) == record_view(healthy.points)

    start = time.perf_counter()
    degraded = engine.search(grid, faulted)
    degraded_s = time.perf_counter() - start

    degraded_feasible = [p for p in degraded.points if p.feasible]
    retried_total = sum(p.retried_jobs for p in degraded_feasible)
    crash_bit = bool(degraded_feasible) and all(
        p.retried_jobs >= 1 for p in degraded_feasible
    )
    matchup, shifted = knee_shift(healthy.points, degraded.points)

    payload = {
        "benchmark": "degraded-mode (nemesis) diurnal campaign",
        "designs": len(grid),
        "arrival_events": events,
        "fault_events": len(faults),
        "cpus": multiprocessing.cpu_count(),
        "healthy_wall_s": round(healthy_s, 4),
        "empty_schedule_wall_s": round(empty_s, 4),
        "degraded_wall_s": round(degraded_s, 4),
        "designs_per_s_degraded": round(len(grid) / degraded_s, 2),
        "fault_free_parity": parity,
        "feasible_degraded": len(degraded_feasible),
        "retried_jobs_total": retried_total,
        "recovery_energy_j_total": round(
            sum(p.recovery_energy_j for p in degraded_feasible), 1
        ),
        "knee_shifted": shifted,
        **matchup,
    }
    if not parity:
        raise SystemExit(
            "faults bench FAILED: empty-schedule campaign diverged from healthy"
        )
    if not crash_bit:
        raise SystemExit(
            "faults bench FAILED: the nemesis crash killed no work "
            f"({retried_total} retries across {len(degraded_feasible)} designs)"
        )
    if not shifted:
        raise SystemExit(
            "faults bench FAILED: degraded-SLA pick equals the healthy pick "
            f"({matchup['healthy_label']}) — faults did not change the answer"
        )
    return payload


if __name__ == "__main__":
    out = sys.argv[sys.argv.index("--json") + 1] if "--json" in sys.argv else None
    payload = run_faults_bench()
    text = json.dumps(payload, indent=2) + "\n"
    if out:
        with open(out, "w") as handle:
            handle.write(text)
    sys.stdout.write(text)
