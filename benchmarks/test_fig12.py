"""Figure 12: the design-principles advisor end-to-end."""

from conftest import assert_claims

from repro.experiments.fig12 import fig12


def test_fig12(benchmark):
    result = benchmark(fig12)
    assert_claims(result)
