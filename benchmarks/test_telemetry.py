"""Telemetry bench: observability must be free when off, cheap when on.

:mod:`repro.telemetry` instruments the hottest paths in the repository —
the search pipeline, the evaluation cache, the simulator event loops —
so its cost model is part of its contract: disabled hooks are no-ops,
and enabled instrumentation stays within ``MAX_OVERHEAD`` of the
uninstrumented wall time on the reference 216-design diurnal campaign
(the same space ``BENCH_stream.json`` and ``BENCH_policy.json`` pin).

Three gates, all hard:

* enabled wall time (min of repeats) within ``MAX_OVERHEAD`` of the
  disabled wall time (min of repeats) on the full campaign;
* the recorded spans attribute at least ``ATTRIBUTION_FLOOR`` of the
  campaign's root wall time to named stages (the unattributed remainder
  is reported, never hidden);
* counters are exact: two cold runs at the fixed seed record identical
  counter values and identical span call counts.

``pytest benchmarks/test_telemetry.py -q`` runs compact slices through
pytest-benchmark; ``make bench-json`` (``python
benchmarks/test_telemetry.py --json BENCH_telemetry.json``) runs the
full campaign and embeds the recorded profile in the payload.
"""

import json
import multiprocessing
import sys
import time

from repro.analysis.export import telemetry_to_dict
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.search import DesignGrid, DesignSpaceSearch, SimulatorEvaluator
from repro.telemetry import attribution, capture
from repro.workloads.arrivals import diurnal_arrivals
from repro.workloads.protocol import TimedTrace
from repro.workloads.queries import q3_join

EVENTS = 48
REPEATS = 3

#: the bench fails outright above this relative enabled-vs-disabled cost
MAX_OVERHEAD = 0.05

#: minimum fraction of root wall time the named spans must account for
ATTRIBUTION_FLOOR = 0.95

#: the reference campaign space: 216 designs (matches BENCH_stream.json)
FULL_GRID = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(6, 8, 10, 12, 14, 16),
    frequency_factors=(1.0, 0.8, 0.6),
)

#: compact variant so the pytest-benchmark rounds stay quick
SMALL_GRID = DesignGrid(
    node_pairs=((CLUSTER_V_NODE, WIMPY_LAPTOP_B),),
    cluster_sizes=(6, 8),
)


def solo_runtime() -> float:
    """Solo runtime of the reference join on the grid's first design."""
    return (
        SimulatorEvaluator()
        .evaluate_query(FULL_GRID.candidate_list()[0], q3_join(100, 0.05, 0.05))
        .time_s
    )


def reference_trace(solo: float, events: int = EVENTS) -> TimedTrace:
    """The reference diurnal trace (same calibration as the policy bench)."""
    times = diurnal_arrivals(
        events,
        base_rate_per_s=0.005 / solo,
        peak_rate_per_s=0.5 / solo,
        period_s=55.0 * solo,
        seed=11,
    )
    return TimedTrace.from_schedule("bench-diurnal", q3_join(100, 0.05, 0.05), times)


def campaign(grid, trace, workers: int = 1):
    """One cold multiplexed trace campaign; returns the SearchResult."""
    engine = DesignSpaceSearch(
        evaluator=SimulatorEvaluator(), workers=workers, min_dispatch_tasks=1
    )
    with engine:
        return engine.search(grid.candidate_list(), trace)


def _deterministic_view(snapshot):
    """The reproducible part of a snapshot: counters plus span call counts
    (wall times are measurements and legitimately vary run to run)."""
    return (
        snapshot.counters,
        {path: calls for path, (calls, _) in snapshot.spans.items()},
    )


def _timed_campaign(grid, trace, enabled: bool):
    """One cold campaign inside an isolated registry; returns
    (wall seconds, snapshot)."""
    with capture(enabled=enabled) as telemetry:
        start = time.perf_counter()
        campaign(grid, trace)
        wall = time.perf_counter() - start
    return wall, telemetry.snapshot()


# ------------------------------------------------------------- pytest slices
def test_disabled_records_nothing():
    solo = solo_runtime()
    trace = reference_trace(solo, events=8)
    _, snapshot = _timed_campaign(SMALL_GRID, trace, enabled=False)
    assert snapshot.counters == {}
    assert snapshot.spans == {}


def test_counters_reproduce_exactly():
    solo = solo_runtime()
    trace = reference_trace(solo, events=8)
    _, first = _timed_campaign(SMALL_GRID, trace, enabled=True)
    _, second = _timed_campaign(SMALL_GRID, trace, enabled=True)
    assert first.counters  # the campaign actually recorded something
    assert _deterministic_view(first) == _deterministic_view(second)


def test_spans_attribute_the_campaign():
    solo = solo_runtime()
    trace = reference_trace(solo, events=8)
    _, snapshot = _timed_campaign(SMALL_GRID, trace, enabled=True)
    assert attribution(snapshot)["fraction"] >= ATTRIBUTION_FLOOR


def test_telemetry_campaign_small(benchmark):
    solo = solo_runtime()
    trace = reference_trace(solo, events=8)
    result = benchmark(_timed_campaign, SMALL_GRID, trace, True)
    assert result[1].counters["evaluator.trace_evals"] == len(
        SMALL_GRID.candidate_list()
    )


# --------------------------------------------------------------- full bench
def run_telemetry_bench(grid=FULL_GRID, events=EVENTS) -> dict:
    """Time the campaign with telemetry off and on; gate the overhead.

    Raises ``SystemExit`` if the enabled overhead exceeds
    :data:`MAX_OVERHEAD`, if span attribution falls under
    :data:`ATTRIBUTION_FLOOR`, or if two enabled runs disagree on any
    counter or span call count.
    """
    solo = solo_runtime()
    trace = reference_trace(solo, events)

    disabled_walls = []
    enabled_walls = []
    snapshots = []
    for _ in range(REPEATS):
        wall, _ = _timed_campaign(grid, trace, enabled=False)
        disabled_walls.append(wall)
        wall, snapshot = _timed_campaign(grid, trace, enabled=True)
        enabled_walls.append(wall)
        snapshots.append(snapshot)

    disabled_s = min(disabled_walls)
    enabled_s = min(enabled_walls)
    overhead = enabled_s / disabled_s - 1.0
    deterministic = all(
        _deterministic_view(snapshot) == _deterministic_view(snapshots[0])
        for snapshot in snapshots[1:]
    )
    coverage = attribution(snapshots[0])

    payload = {
        "benchmark": "telemetry overhead on the 216-design diurnal campaign",
        "designs": len(grid),
        "arrival_events": events,
        "cpus": multiprocessing.cpu_count(),
        "repeats": REPEATS,
        "disabled_wall_s": round(disabled_s, 4),
        "enabled_wall_s": round(enabled_s, 4),
        "overhead": round(overhead, 4),
        "max_overhead": MAX_OVERHEAD,
        "attributed_fraction": round(coverage["fraction"], 4),
        "attribution_floor": ATTRIBUTION_FLOOR,
        "unattributed_s": round(coverage["unattributed_s"], 4),
        "counters_deterministic": deterministic,
        "telemetry": telemetry_to_dict(snapshots[0]),
    }
    if overhead > MAX_OVERHEAD:
        raise SystemExit(
            f"telemetry bench FAILED: enabled overhead {overhead:.1%} is "
            f"over the {MAX_OVERHEAD:.0%} ceiling "
            f"({enabled_s:.3f}s vs {disabled_s:.3f}s)"
        )
    if coverage["fraction"] < ATTRIBUTION_FLOOR:
        raise SystemExit(
            f"telemetry bench FAILED: spans attribute only "
            f"{coverage['fraction']:.1%} of root wall time "
            f"(floor {ATTRIBUTION_FLOOR:.0%})"
        )
    if not deterministic:
        raise SystemExit(
            "telemetry bench FAILED: counters diverged between runs at a "
            "fixed seed"
        )
    return payload


if __name__ == "__main__":
    out = sys.argv[sys.argv.index("--json") + 1] if "--json" in sys.argv else None
    payload = run_telemetry_bench()
    text = json.dumps(payload, indent=2) + "\n"
    if out:
        with open(out, "w") as handle:
            handle.write(text)
    sys.stdout.write(text)
