"""Figure 3: dual-shuffle join under concurrency (simulator)."""

from conftest import assert_claims

from repro.experiments.fig03 import fig3


def test_fig3(benchmark):
    result = benchmark(fig3)
    assert_claims(result)
