"""Figure 7: all-Beefy vs 2-Beefy/2-Wimpy prototype clusters."""

from conftest import assert_claims

from repro.experiments.fig07 import fig7a, fig7b


def test_fig7a(benchmark):
    result = benchmark(fig7a)
    assert_claims(result)


def test_fig7b(benchmark):
    result = benchmark(fig7b)
    assert_claims(result)
