"""Figure 5: half- vs full-cluster energy by execution plan."""

from conftest import assert_claims

from repro.experiments.fig05 import fig5


def test_fig5(benchmark):
    result = benchmark(fig5)
    assert_claims(result)
