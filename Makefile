# Developer entry points.  The repo is import-run from src/ (no install
# step), so every target exports PYTHONPATH=src.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench search-demo

# Tier-1 verification: the unit/integration suite (benchmarks are opt-in).
test:
	$(PYTHON) -m pytest -x -q

# Paper-reproduction + performance benchmarks (regenerates every figure).
bench:
	$(PYTHON) -m pytest benchmarks -q

# Sweep a 216-point design grid and print its Pareto frontier.
search-demo:
	$(PYTHON) examples/design_space_search.py
