# Developer entry points.  The repo is import-run from src/ (no install
# step), so every target exports PYTHONPATH=src.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint pytest bench bench-json search-demo profile

# Tier-1 verification: lint (when available) + the unit/integration
# suite (benchmarks are opt-in).
test: lint pytest

pytest:
	$(PYTHON) -m pytest -x -q

# Static checks (ruff, configured in pyproject.toml).  The container may
# not ship ruff; the target degrades to a no-op notice instead of
# failing the test flow.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks examples; \
	else \
		echo "lint: ruff not installed, skipping (pip install ruff to enable)"; \
	fi

# Paper-reproduction + performance benchmarks (regenerates every figure).
bench:
	$(PYTHON) -m pytest benchmarks -q

# Search-engine perf trajectory: times old vs new dispatch on the
# 216-design suite-sweep campaign, plus evaluations-to-knee for the
# adaptive optimizers, plus the timed-trace (stream queueing) campaign,
# the (design x policy) autoscaling campaign, the degraded-mode
# (nemesis fault injection) campaign, and the telemetry overhead gate —
# all recorded for future PRs.
bench-json:
	$(PYTHON) benchmarks/test_query_fanout.py --json BENCH_search.json
	$(PYTHON) benchmarks/test_optimize.py --json BENCH_optimize.json
	$(PYTHON) benchmarks/test_stream.py --json BENCH_stream.json
	$(PYTHON) benchmarks/test_policy.py --json BENCH_policy.json
	$(PYTHON) benchmarks/test_faults.py --json BENCH_faults.json
	$(PYTHON) benchmarks/test_telemetry.py --json BENCH_telemetry.json
	$(PYTHON) benchmarks/test_cost.py --json BENCH_cost.json

# Sweep a 216-point design grid and print its Pareto frontier.
search-demo:
	$(PYTHON) examples/design_space_search.py

# Where does a campaign's wall time go?  Run the reference 216-design
# diurnal campaign with telemetry on and print the stage breakdown.
profile:
	$(PYTHON) examples/telemetry_report.py
