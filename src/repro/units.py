"""Unit conversions and small numeric helpers used throughout the library.

The paper (and therefore this library) works in a compact unit system:

* data volumes in **megabytes** (MB),
* bandwidths/rates in **MB/s**,
* time in **seconds**,
* power in **watts**,
* energy in **joules** (W x s),
* EDP (energy-delay product) in **joule-seconds**.

All public APIs state their units explicitly; these helpers exist so that
callers can write ``gb(2.8 * 1000)`` instead of sprinkling ``* 1000.0``
literals around, and so tests can assert conversions in one place.
"""

from __future__ import annotations

__all__ = [
    "KB_PER_MB",
    "MB_PER_GB",
    "MB_PER_TB",
    "GBPS_IN_MBPS",
    "kb",
    "gb",
    "tb",
    "gbps",
    "mbps_to_gbps",
    "joules_to_kilojoules",
    "watt_hours",
    "clamp",
    "approx_equal",
]

KB_PER_MB = 1000.0
MB_PER_GB = 1000.0
MB_PER_TB = 1000.0 * 1000.0

#: 1 Gb/s expressed in MB/s.  The paper treats its 1 Gb/s NICs as delivering
#: roughly 95-125 MB/s of payload; the *usable* figure is supplied by the
#: hardware presets, this constant is the theoretical line rate.
GBPS_IN_MBPS = 125.0


def kb(value: float) -> float:
    """Convert kilobytes to megabytes."""
    return value / KB_PER_MB


def gb(value: float) -> float:
    """Convert gigabytes to megabytes."""
    return value * MB_PER_GB


def tb(value: float) -> float:
    """Convert terabytes to megabytes."""
    return value * MB_PER_TB


def gbps(value: float) -> float:
    """Convert gigabits/second to MB/s (line rate, not payload)."""
    return value * GBPS_IN_MBPS


def mbps_to_gbps(value: float) -> float:
    """Convert MB/s to gigabits/second."""
    return value / GBPS_IN_MBPS


def joules_to_kilojoules(value: float) -> float:
    """Convert joules to kilojoules."""
    return value / 1000.0


def watt_hours(joules: float) -> float:
    """Convert joules to watt-hours (1 Wh = 3600 J)."""
    return joules / 3600.0


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval [low, high]."""
    if low > high:
        raise ValueError(f"clamp: low ({low}) > high ({high})")
    return max(low, min(high, value))


def approx_equal(a: float, b: float, rel_tol: float = 1e-9, abs_tol: float = 1e-12) -> bool:
    """Relative/absolute float comparison (math.isclose semantics)."""
    return abs(a - b) <= max(rel_tol * max(abs(a), abs(b)), abs_tol)
