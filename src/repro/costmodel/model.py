"""The TCO cost model: dollars and grams of CO₂ per evaluation.

A :class:`CostModel` prices one evaluated design in the two currencies
the paper's Section 1 motivation reaches past joules for:

* **price_usd** — per-node-type capex amortization (``$/node·h``, keyed
  by :class:`~repro.hardware.node.NodeSpec` name) over the evaluation's
  wall time, plus the energy tariff (``$/kWh``) over its energy;
* **carbon_g** — grid carbon intensity (``gCO₂/kWh``), either flat or a
  :class:`~repro.costmodel.carbon.CarbonIntensityCurve` integrated
  exactly against the simulator's per-interval energy so a diurnal
  gating policy earns its true time-of-day carbon credit.

Both are *annotations*: attaching a cost model to an evaluator (or a
:class:`~repro.study.Study` via ``with_cost_model``) never changes the
time/energy arithmetic of a record — with no model configured every
record stays bit-identical to the pre-cost behaviour, cost fields
``None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.costmodel.carbon import CarbonIntensityCurve
from repro.errors import ConfigurationError

__all__ = ["CostModel", "JOULES_PER_KWH"]

#: one kilowatt-hour in joules — the tariff/intensity unit bridge
JOULES_PER_KWH = 3.6e6


@dataclass(frozen=True)
class CostModel:
    """Prices (time, energy) outcomes in dollars and grams of CO₂.

    ``capex_usd_per_node_hour`` maps node-spec names to amortized $/h
    rates (a mapping is accepted and canonicalized to a sorted tuple so
    the model stays hashable and cache-fingerprintable); node types
    absent from it fall back to ``default_capex_usd_per_node_hour``.
    ``carbon_g_per_kwh`` is a flat float or a
    :class:`CarbonIntensityCurve`; weights-only evaluations — which have
    no timeline — price carbon at the curve's cycle mean, timed
    evaluations integrate the curve exactly.
    """

    tariff_usd_per_kwh: float = 0.0
    carbon_g_per_kwh: float | CarbonIntensityCurve = 0.0
    capex_usd_per_node_hour: tuple[tuple[str, float], ...] | Mapping[str, float] = ()
    default_capex_usd_per_node_hour: float = 0.0
    _rates: dict = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        rates = self.capex_usd_per_node_hour
        if isinstance(rates, Mapping):
            items = rates.items()
        else:
            items = tuple(rates)
        canonical = tuple(sorted((str(name), float(rate)) for name, rate in items))
        object.__setattr__(self, "capex_usd_per_node_hour", canonical)
        object.__setattr__(self, "_rates", dict(canonical))
        if self.tariff_usd_per_kwh < 0:
            raise ConfigurationError(
                f"energy tariff cannot be negative: {self.tariff_usd_per_kwh}"
            )
        if self.default_capex_usd_per_node_hour < 0:
            raise ConfigurationError(
                "default capex rate cannot be negative: "
                f"{self.default_capex_usd_per_node_hour}"
            )
        if any(rate < 0 for _, rate in canonical):
            raise ConfigurationError("capex rates cannot be negative")
        if (
            not isinstance(self.carbon_g_per_kwh, CarbonIntensityCurve)
            and self.carbon_g_per_kwh < 0
        ):
            raise ConfigurationError(
                f"carbon intensity cannot be negative: {self.carbon_g_per_kwh}"
            )

    # ------------------------------------------------------------- structure
    @property
    def time_varying(self) -> bool:
        """Whether carbon pricing needs a timeline (a curve, not a flat)."""
        return isinstance(self.carbon_g_per_kwh, CarbonIntensityCurve)

    @property
    def mean_carbon_g_per_kwh(self) -> float:
        """Flat intensity, or the curve's time-weighted cycle mean."""
        if isinstance(self.carbon_g_per_kwh, CarbonIntensityCurve):
            return self.carbon_g_per_kwh.mean
        return self.carbon_g_per_kwh

    def node_rate_usd_per_hour(self, spec_name: str) -> float:
        """Amortized capex $/h of one node of the named spec."""
        return self._rates.get(spec_name, self.default_capex_usd_per_node_hour)

    def capex_rate_usd_per_hour(self, candidate) -> float:
        """Amortized capex $/h of one candidate's whole cluster."""
        return candidate.num_beefy * self.node_rate_usd_per_hour(
            candidate.beefy.name
        ) + candidate.num_wimpy * self.node_rate_usd_per_hour(candidate.wimpy.name)

    # --------------------------------------------------------------- pricing
    def price_usd(self, candidate, time_s: float, energy_j: float) -> float:
        """Dollars of one evaluation: capex over wall time + tariff.

        Linear in (time, energy), so weight-summing per-entry prices
        equals pricing the weight-summed totals — the aggregation rule
        suites rely on.
        """
        return (
            self.capex_rate_usd_per_hour(candidate) * time_s / 3600.0
            + self.tariff_usd_per_kwh * energy_j / JOULES_PER_KWH
        )

    def carbon_g(self, energy_j: float) -> float:
        """Grams of CO₂ for an energy total with no timeline.

        Flat grids price exactly; a time-of-day curve prices at its
        cycle mean (the unbiased stand-in when nothing says *when* the
        energy was drawn — timed evaluations use :meth:`carbon_g_timed`).
        """
        return energy_j / JOULES_PER_KWH * self.mean_carbon_g_per_kwh

    def carbon_g_timed(self, intervals: Iterable) -> float:
        """Exact grams of CO₂ for a piecewise-constant power timeline.

        ``intervals`` expose ``start_s`` / ``end_s`` / ``cluster_power_w``
        (the simulator's :class:`~repro.simulator.engine.Interval`); each
        stretch's constant power multiplies the curve's exact time
        integral, so energy shifted into the trough by a gating policy is
        credited at trough intensity, not at the mean.
        """
        curve = self.carbon_g_per_kwh
        if not isinstance(curve, CarbonIntensityCurve):
            return self.carbon_g(
                sum(i.cluster_power_w * (i.end_s - i.start_s) for i in intervals)
            )
        total = 0.0
        for interval in intervals:
            total += (
                interval.cluster_power_w
                * curve.integral(interval.start_s, interval.end_s)
                / JOULES_PER_KWH
            )
        return total

    # --------------------------------------------------------------- caching
    def fingerprint(self) -> tuple:
        """Value identity for evaluation-cache keys.

        Primitives only (persistable across processes and runs): two
        models priced differently must never alias one cached record, so
        evaluators append this to their own fingerprints when a model is
        attached.
        """
        carbon = (
            self.carbon_g_per_kwh.fingerprint()
            if isinstance(self.carbon_g_per_kwh, CarbonIntensityCurve)
            else self.carbon_g_per_kwh
        )
        return (
            "costmodel",
            self.tariff_usd_per_kwh,
            carbon,
            self.capex_usd_per_node_hour,
            self.default_capex_usd_per_node_hour,
        )
