"""Grid carbon intensity: flat numbers and time-of-day curves.

The paper's Section 1 motivation — energy as a growing fraction of total
cost — generalizes past joules the moment the grid behind the cluster is
priced: a kWh drawn at 3 a.m. from a wind-heavy grid emits a fraction of
the CO₂ the same kWh emits at the evening peak.  A
:class:`CarbonIntensityCurve` models that as a piecewise-constant
gCO₂/kWh profile repeating over a period (a day, usually), with an exact
closed-form time integral so a diurnal gating policy that shifts energy
into the trough earns its true carbon credit — no sampling error.

A plain ``float`` gCO₂/kWh stands in for a flat grid everywhere a curve
is accepted (:class:`~repro.costmodel.model.CostModel` normalizes the
two cases).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["CarbonIntensityCurve"]


@dataclass(frozen=True)
class CarbonIntensityCurve:
    """A repeating piecewise-constant carbon-intensity profile.

    ``slots`` are gCO₂/kWh values covering one ``period_s``-long cycle in
    equal-width steps (24 slots over 86400 s = one value per hour); the
    profile repeats forever in both directions, so simulations longer
    than one period integrate over as many cycles as they span.

    The three accessors are exact, not sampled:

    * :meth:`at` — the intensity in force at an instant;
    * :meth:`integral` — ∫ intensity dt over ``[start_s, end_s]`` in
      g·s/kWh, splitting at slot and period boundaries analytically;
    * :attr:`mean` — the time-weighted cycle average, used wherever an
      evaluation has no timeline to integrate against (weights-only
      records).
    """

    slots: tuple[float, ...]
    period_s: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "slots", tuple(float(s) for s in self.slots))
        if not self.slots:
            raise ConfigurationError("a carbon curve needs at least one slot")
        if any(s < 0 for s in self.slots):
            raise ConfigurationError("carbon intensity cannot be negative")
        if not self.period_s > 0:
            raise ConfigurationError(
                f"carbon curve period must be > 0 seconds, got {self.period_s}"
            )

    @classmethod
    def diurnal(
        cls,
        trough_g_per_kwh: float,
        peak_g_per_kwh: float,
        period_s: float = 86400.0,
        slots: int = 24,
        phase: float = 0.0,
    ) -> "CarbonIntensityCurve":
        """A sinusoidal day: trough at t=0 (+``phase`` cycles), peak half
        a period later — the canonical wind-at-night / gas-peaker shape."""
        if slots < 1:
            raise ConfigurationError(f"slots must be >= 1, got {slots}")
        mid = (trough_g_per_kwh + peak_g_per_kwh) / 2.0
        amplitude = (peak_g_per_kwh - trough_g_per_kwh) / 2.0
        values = tuple(
            mid - amplitude * math.cos(2.0 * math.pi * ((k + 0.5) / slots + phase))
            for k in range(slots)
        )
        return cls(slots=values, period_s=period_s)

    @property
    def slot_s(self) -> float:
        """Width of one slot in seconds."""
        return self.period_s / len(self.slots)

    @property
    def mean(self) -> float:
        """Time-weighted cycle-average intensity (slots are equal-width)."""
        return sum(self.slots) / len(self.slots)

    def at(self, time_s: float) -> float:
        """The intensity in force at an instant (right-open slots)."""
        offset = time_s % self.period_s
        index = min(int(offset / self.slot_s), len(self.slots) - 1)
        return self.slots[index]

    def _cumulative(self, offset_s: float) -> float:
        """∫₀^offset intensity dt for one offset inside a single period."""
        width = self.slot_s
        index = min(int(offset_s / width), len(self.slots) - 1)
        whole = sum(self.slots[:index]) * width
        return whole + self.slots[index] * (offset_s - index * width)

    def integral(self, start_s: float, end_s: float) -> float:
        """Exact ∫ intensity dt over ``[start_s, end_s]`` (g·s/kWh).

        Multiplying by a constant power in W and dividing by J-per-kWh
        gives grams of CO₂ for the stretch; an empty or inverted range
        integrates to zero.
        """
        if end_s <= start_s:
            return 0.0
        cycle = sum(self.slots) * self.slot_s
        start_cycles = math.floor(start_s / self.period_s)
        end_cycles = math.floor(end_s / self.period_s)
        return (
            (end_cycles - start_cycles) * cycle
            + self._cumulative(end_s - end_cycles * self.period_s)
            - self._cumulative(start_s - start_cycles * self.period_s)
        )

    def fingerprint(self) -> tuple:
        """Value identity for cache keys (primitives only, persistable)."""
        return ("carbon-curve", self.period_s, *self.slots)
