"""Total-cost-of-ownership pricing: dollars and carbon per evaluation.

The package behind multi-objective selection: a
:class:`~repro.costmodel.model.CostModel` attaches to any evaluator (or
a :class:`~repro.study.Study` via ``with_cost_model``) and annotates
every feasible record with ``price_usd`` — per-node-type capex
amortization plus energy tariff — and ``carbon_g`` — grid carbon
intensity, flat or a time-of-day
:class:`~repro.costmodel.carbon.CarbonIntensityCurve` integrated exactly
against the simulator's per-interval energy.  Records without a model
keep ``None`` cost fields and stay bit-identical to pre-cost behaviour.
"""

from repro.costmodel.carbon import CarbonIntensityCurve
from repro.costmodel.model import JOULES_PER_KWH, CostModel

__all__ = ["CarbonIntensityCurve", "CostModel", "JOULES_PER_KWH"]
