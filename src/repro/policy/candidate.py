"""(design x policy) pairs as first-class search candidates.

A :class:`PolicyCandidate` wraps a
:class:`~repro.search.grid.DesignCandidate` with a
:class:`~repro.policy.policies.ControlPolicy` and a control-tick
interval, and quacks like a design candidate everywhere the search stack
looks: ``label``, ``key()``, ``cluster()``, the mix/DVFS/mode accessors,
and picklability.  The engine, optimizers, cache, Pareto selections, and
exports therefore handle (design x policy) points without modification;
only the evaluator inspects the ``policy`` attribute to decide how to
replay a timed trace.

Cache keys are namespaced (``("policy", ...)``): a policy-bearing
candidate can never collide with — nor be served from — a design-only
cache row, in either direction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.hardware.cluster import ClusterSpec
from repro.hardware.node import NodeSpec
from repro.policy.policies import ControlPolicy
from repro.pstore.plans import ExecutionMode
from repro.search.grid import DesignCandidate

__all__ = ["PolicyCandidate"]


@dataclass(frozen=True)
class PolicyCandidate:
    """One (cluster design, control policy) point of the search space.

    ``control_interval_s`` is how often the simulator consults the
    policy mid-trace.  The default label is ``{design}|{policy}``; the
    engine may relabel on collisions (``label`` is a real field for
    that), but identity always flows through :meth:`key`.
    """

    design: DesignCandidate
    policy: ControlPolicy
    control_interval_s: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.policy, ControlPolicy):
            raise ConfigurationError(
                f"not a control policy: {self.policy!r}"
            )
        if self.control_interval_s <= 0:
            raise ConfigurationError(
                f"control interval must be > 0, got {self.control_interval_s}"
            )
        if not self.label:
            object.__setattr__(
                self, "label", f"{self.design.label}|{self.policy.label}"
            )

    # ------------------------------------------------ design-candidate surface
    @property
    def beefy(self) -> NodeSpec:
        return self.design.beefy

    @property
    def wimpy(self) -> NodeSpec:
        return self.design.wimpy

    @property
    def num_beefy(self) -> int:
        return self.design.num_beefy

    @property
    def num_wimpy(self) -> int:
        return self.design.num_wimpy

    @property
    def num_nodes(self) -> int:
        return self.design.num_nodes

    @property
    def frequency_factor(self) -> float:
        return self.design.frequency_factor

    @property
    def beefy_frequency_factor(self) -> float | None:
        return self.design.beefy_frequency_factor

    @property
    def wimpy_frequency_factor(self) -> float | None:
        return self.design.wimpy_frequency_factor

    @property
    def effective_beefy_frequency(self) -> float:
        return self.design.effective_beefy_frequency

    @property
    def effective_wimpy_frequency(self) -> float:
        return self.design.effective_wimpy_frequency

    @property
    def effective_beefy(self) -> NodeSpec:
        return self.design.effective_beefy

    @property
    def effective_wimpy(self) -> NodeSpec:
        return self.design.effective_wimpy

    @property
    def homogeneous(self) -> bool:
        return self.design.homogeneous

    @property
    def mode(self) -> ExecutionMode | None:
        return self.design.mode

    def cluster(self) -> ClusterSpec:
        return self.design.cluster()

    def with_mode(self, mode: ExecutionMode | None) -> "PolicyCandidate":
        """This candidate with one execution mode forced on its design.

        The counterpart of ``dataclasses.replace(candidate, mode=...)``
        on a bare design (``mode`` is a delegated property here, not a
        field); :meth:`repro.study.Study.candidates` calls whichever the
        candidate offers.
        """
        return replace(self, design=replace(self.design, mode=mode))

    def key(self) -> tuple:
        """Namespaced cache key: disjoint from every design-only key."""
        return (
            "policy",
            self.design.key(),
            self.policy.cache_key(),
            self.control_interval_s,
        )
