"""Control policies: the decision side of dynamic cluster control.

A :class:`ControlPolicy` is consulted by the simulator at every control
tick (:meth:`~repro.simulator.engine.ClusterSimulator.run` with a
``policy``) and answers with a list of actions — gate a node, wake a
node, step a node's frequency.  Policies are *stateless* frozen
dataclasses: everything a decision needs (current power states, load
fractions, queue depth, how long the cluster has been idle) arrives in
the :class:`ClusterState` snapshot, so the same policy object can be
shared across candidates, pickled to worker processes, and keyed into
the evaluation cache via :meth:`ControlPolicy.cache_key`.

The shipped policies mirror the related work the ROADMAP names (Schall &
Härder's wimpy clusters powering nodes up/down with load):

* :class:`StaticPolicy` — the do-nothing baseline; marked ``is_static``
  so evaluation takes the exact no-policy fast path (bit-identical
  results, just labeled);
* :class:`PowerGatePolicy` — gates nodes of one role once the cluster
  has been idle past a floor, wakes them when arrivals are held waiting;
  the wake-up latency penalty is priced by its
  :class:`~repro.hardware.powerstate.PowerStateModel`;
* :class:`DvfsLadderPolicy` — steps a node role's frequency factor up
  and down a ladder against queue depth;
* :class:`PolicyChain` — composes policies; actions apply in order.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.cluster import WIMPY
from repro.hardware.powerstate import TRADITIONAL_SERVER, PowerStateModel
from repro.simulator.engine import ACTIVE, GATED, GATING, WAKING

__all__ = [
    "ACTIVE",
    "GATED",
    "GATING",
    "WAKING",
    "Action",
    "ClusterState",
    "ControlPolicy",
    "DvfsLadderPolicy",
    "GateNode",
    "PolicyChain",
    "PowerGatePolicy",
    "SetFrequency",
    "StaticPolicy",
    "UngateNode",
]

@dataclass(frozen=True)
class ClusterState:
    """What a policy sees at one control tick.

    ``node_utilization`` is each node's *load fraction* — its allocated
    CPU rate over its current effective capacity, in [0, 1], and 0 for
    inactive nodes — not the engine-floored utilization the power model
    reads, so thresholds compare against actual work.  ``idle_s`` is how
    long the cluster has had no work at all (no running and no held
    jobs); it resets to 0 the moment work exists, which gives gating
    policies hysteresis against flapping inside busy periods.
    """

    time_s: float
    node_roles: tuple[str, ...]
    node_states: tuple[str, ...]
    node_utilization: tuple[float, ...]
    frequency_factors: tuple[float, ...]
    #: jobs currently running plus jobs held waiting for inactive nodes
    queue_depth: int
    #: jobs that have arrived but wait for a gated/transitioning node
    held_jobs: int
    idle_s: float

    @property
    def num_nodes(self) -> int:
        return len(self.node_states)

    def nodes_in_state(self, state: str, role: str | None = None) -> list[int]:
        """Node ids currently in ``state`` (optionally of one role)."""
        return [
            node_id
            for node_id in range(self.num_nodes)
            if self.node_states[node_id] == state
            and (role is None or self.node_roles[node_id] == role)
        ]

    def mean_utilization(self, role: str | None = None) -> float:
        """Mean load fraction over the *active* nodes (of one role).

        0.0 when no node of the role is active — an all-gated role reads
        as unloaded, which is what a wake-up decision should key on
        ``held_jobs`` for, not this.
        """
        active = self.nodes_in_state(ACTIVE, role)
        if not active:
            return 0.0
        return sum(self.node_utilization[node_id] for node_id in active) / len(
            active
        )


@dataclass(frozen=True)
class GateNode:
    """Power one node down (active -> gating -> gated)."""

    node_id: int


@dataclass(frozen=True)
class UngateNode:
    """Power one node back up (gated -> waking -> active)."""

    node_id: int


@dataclass(frozen=True)
class SetFrequency:
    """Step one node's DVFS factor (applied on top of the design's)."""

    node_id: int
    frequency_factor: float

    def __post_init__(self) -> None:
        if not 0.0 < self.frequency_factor <= 1.0:
            raise ConfigurationError(
                f"frequency factor must be in (0, 1], got "
                f"{self.frequency_factor}"
            )


Action = GateNode | UngateNode | SetFrequency


class ControlPolicy(abc.ABC):
    """Observes the cluster at each control tick and emits actions.

    The simulator applies actions in order and silently drops the ones
    that do not apply (gating a node that live flows still demand, waking
    a node that is not gated) — a controller acts on a snapshot and races
    with the cluster, exactly as a real autoscaler does.
    """

    #: a static policy never acts; evaluation routes such candidates
    #: through the exact no-policy path (and the multiplexed fast path)
    is_static: bool = False

    @property
    @abc.abstractmethod
    def label(self) -> str:
        """Short display name (used in candidate labels and exports)."""

    @abc.abstractmethod
    def cache_key(self) -> tuple:
        """Deterministic identity for evaluation-cache keys."""

    @abc.abstractmethod
    def observe(self, state: ClusterState) -> list[Action]:
        """The actions to take given one cluster snapshot."""

    def power_state_model(self) -> PowerStateModel:
        """How this policy's gate/wake transitions are priced."""
        return TRADITIONAL_SERVER


@dataclass(frozen=True)
class StaticPolicy(ControlPolicy):
    """The always-on baseline: never acts.

    Candidates carrying it evaluate on the exact no-policy path (the
    event-multiplexed one included) and differ from a bare design only by
    their label and cache key — the control-sized zero against which the
    dynamic policies' energy savings are measured.
    """

    is_static = True

    @property
    def label(self) -> str:
        return "static"

    def cache_key(self) -> tuple:
        return ("static",)

    def observe(self, state: ClusterState) -> list[Action]:
        return []


@dataclass(frozen=True)
class PowerGatePolicy(ControlPolicy):
    """Gate one node role when the cluster idles, wake it when work waits.

    At each tick: if jobs are held waiting for inactive nodes, every
    gated node of ``node_role`` is woken.  Otherwise, once the cluster
    has been idle for ``min_idle_s`` *and* the role's mean load fraction
    sits at or under ``utilization_floor``, every active node of the role
    beyond ``min_active`` is gated.  ``min_idle_s`` is the hysteresis
    that keeps short gaps inside a busy period from cycling nodes;
    ``transitions`` prices the shutdown/boot delay and power — the
    wake-up latency penalty held jobs pay.
    """

    utilization_floor: float = 0.05
    node_role: str = WIMPY
    min_active: int = 0
    min_idle_s: float = 0.0
    transitions: PowerStateModel = TRADITIONAL_SERVER

    def __post_init__(self) -> None:
        if not 0.0 <= self.utilization_floor <= 1.0:
            raise ConfigurationError(
                f"utilization floor must be in [0, 1], got "
                f"{self.utilization_floor}"
            )
        if self.min_active < 0:
            raise ConfigurationError(
                f"min_active must be >= 0, got {self.min_active}"
            )
        if self.min_idle_s < 0:
            raise ConfigurationError(
                f"min_idle_s must be >= 0, got {self.min_idle_s}"
            )

    @property
    def label(self) -> str:
        return (
            f"gate-{self.node_role}@{self.utilization_floor:g}"
            + (f"+{self.min_idle_s:g}s" if self.min_idle_s else "")
        )

    def cache_key(self) -> tuple:
        return (
            "power-gate",
            self.node_role,
            self.utilization_floor,
            self.min_active,
            self.min_idle_s,
            self.transitions.shutdown_s,
            self.transitions.boot_s,
            self.transitions.transition_power_fraction,
            self.transitions.gated_power_fraction,
        )

    def power_state_model(self) -> PowerStateModel:
        return self.transitions

    def observe(self, state: ClusterState) -> list[Action]:
        if state.held_jobs > 0:
            return [
                UngateNode(node_id)
                for node_id in state.nodes_in_state(GATED, self.node_role)
            ]
        if state.idle_s < self.min_idle_s:
            return []
        if state.mean_utilization(self.node_role) > self.utilization_floor:
            return []
        active = state.nodes_in_state(ACTIVE, self.node_role)
        return [GateNode(node_id) for node_id in active[self.min_active :]]


@dataclass(frozen=True)
class DvfsLadderPolicy(ControlPolicy):
    """Step one node role's frequency factor against queue depth.

    ``ladder`` maps queue-depth thresholds to frequency factors: at each
    tick the rung with the largest threshold not exceeding the current
    queue depth wins, and every node of ``node_role`` not already at that
    factor is stepped to it.  The first rung must start at depth 0 (the
    idle clock), thresholds must be strictly increasing.
    """

    ladder: tuple[tuple[int, float], ...] = ((0, 0.6), (2, 0.8), (4, 1.0))
    node_role: str = WIMPY

    def __post_init__(self) -> None:
        if not self.ladder:
            raise ConfigurationError("the DVFS ladder needs at least one rung")
        if self.ladder[0][0] != 0:
            raise ConfigurationError(
                f"the first ladder rung must start at queue depth 0, got "
                f"{self.ladder[0][0]}"
            )
        for (low, _), (high, _) in zip(self.ladder, self.ladder[1:]):
            if high <= low:
                raise ConfigurationError(
                    f"ladder thresholds must be strictly increasing: "
                    f"{self.ladder}"
                )
        for _, factor in self.ladder:
            if not 0.0 < factor <= 1.0:
                raise ConfigurationError(
                    f"ladder frequency factors must be in (0, 1], got {factor}"
                )

    @property
    def label(self) -> str:
        rungs = ",".join(f"{depth}:{phi:g}" for depth, phi in self.ladder)
        return f"dvfs-{self.node_role}[{rungs}]"

    def cache_key(self) -> tuple:
        return ("dvfs-ladder", self.node_role, self.ladder)

    def target_factor(self, queue_depth: int) -> float:
        """The ladder rung in force at one queue depth."""
        factor = self.ladder[0][1]
        for depth, phi in self.ladder:
            if queue_depth >= depth:
                factor = phi
        return factor

    def observe(self, state: ClusterState) -> list[Action]:
        target = self.target_factor(state.queue_depth)
        return [
            SetFrequency(node_id, target)
            for node_id in range(state.num_nodes)
            if state.node_roles[node_id] == self.node_role
            and state.frequency_factors[node_id] != target
        ]


@dataclass(frozen=True)
class PolicyChain(ControlPolicy):
    """Several policies acting as one: actions concatenate in order.

    The chain is static only if every member is; its power-state model is
    the single non-default model among its members (two members pricing
    transitions differently would be ambiguous, and is rejected).
    """

    policies: tuple[ControlPolicy, ...]

    def __post_init__(self) -> None:
        if not self.policies:
            raise ConfigurationError("a policy chain needs at least one policy")
        self.power_state_model()  # reject ambiguous transition pricing early

    @property
    def is_static(self) -> bool:  # type: ignore[override]
        return all(policy.is_static for policy in self.policies)

    @property
    def label(self) -> str:
        return "+".join(policy.label for policy in self.policies)

    def cache_key(self) -> tuple:
        return ("chain",) + tuple(policy.cache_key() for policy in self.policies)

    def power_state_model(self) -> PowerStateModel:
        models = {
            policy.power_state_model() for policy in self.policies
        } - {TRADITIONAL_SERVER}
        if len(models) > 1:
            raise ConfigurationError(
                "policy chain members price power-state transitions "
                "differently; give them one PowerStateModel"
            )
        return models.pop() if models else TRADITIONAL_SERVER

    def observe(self, state: ClusterState) -> list[Action]:
        actions: list[Action] = []
        for policy in self.policies:
            actions.extend(policy.observe(state))
        return actions
