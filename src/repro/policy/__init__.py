"""Dynamic cluster control: policies acting on the cluster mid-trace.

The paper's design-space story treats every cluster as static for the
whole workload; the strongest related results (Schall & Härder's wimpy
clusters, *Dynamic Physiological Partitioning*) come from powering nodes
up and down *with* load.  This package supplies the control plane for
that:

* :mod:`repro.policy.policies` — the :class:`ControlPolicy` protocol
  (``observe(ClusterState) -> [Action]``) and the shipped policies:
  :class:`StaticPolicy` (always-on baseline), :class:`PowerGatePolicy`
  (gate a node role during idle stretches, wake on held arrivals),
  :class:`DvfsLadderPolicy` (frequency ladder against queue depth), and
  the composable :class:`PolicyChain`;
* :mod:`repro.policy.candidate` — :class:`PolicyCandidate`, the
  (design x policy) pair the search stack evaluates, caches, and ranks
  like any design point.

The simulator honors policies through
:meth:`~repro.simulator.engine.ClusterSimulator.run` /
:meth:`~repro.pstore.simulated.SimulatedPStore.run_trace` (``policy=``,
``control_interval_s=``); the search surface is
``SearchSpace(policies=...)`` and the ``policy`` /
``gated_node_seconds`` / ``energy_saved_j`` fields on
:class:`~repro.search.evaluators.EvaluatedDesign`.
"""

from repro.policy.candidate import PolicyCandidate
from repro.policy.policies import (
    ACTIVE,
    GATED,
    GATING,
    WAKING,
    Action,
    ClusterState,
    ControlPolicy,
    DvfsLadderPolicy,
    GateNode,
    PolicyChain,
    PowerGatePolicy,
    SetFrequency,
    StaticPolicy,
    UngateNode,
)

__all__ = [
    "ACTIVE",
    "GATED",
    "GATING",
    "WAKING",
    "Action",
    "ClusterState",
    "ControlPolicy",
    "DvfsLadderPolicy",
    "GateNode",
    "PolicyCandidate",
    "PolicyChain",
    "PowerGatePolicy",
    "SetFrequency",
    "StaticPolicy",
    "UngateNode",
]
