"""Figures 8 and 9: validating the analytical model against "observed" runs.

The paper validates its model against measured 2B/2W-cluster joins by
comparing series normalized to the 100%-LINEITEM point: within 5% for the
homogeneous plans (Figure 8) and within 10% for the heterogeneous plans
(Figure 9).  Our "observations" come from the fluid simulator — the
independent implementation the model must agree with.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.core.model import ModelParameters, PStoreModel
from repro.core.validation import ValidationReport, compare_normalized
from repro.experiments.base import ExperimentResult, check
from repro.experiments.fig07 import FIG7_CONFIG, fig7_engines, fig7_wimpy_node
from repro.hardware.presets import BEEFY_L5630
from repro.pstore.plans import ExecutionMode
from repro.workloads.queries import q3_join

__all__ = ["fig8", "fig9", "run_validation"]

LINEITEM_SELECTIVITIES = (0.01, 0.10, 0.50, 1.00)
REFERENCE = "L100%"


def _label(ls: float) -> str:
    return f"L{ls:.0%}"


def run_validation(
    orders_selectivity: float, mode: ExecutionMode
) -> tuple[ValidationReport, ValidationReport]:
    """Observed (simulator) vs modeled, both normalized by the L100% run."""
    _, bw = fig7_engines()
    params = ModelParameters.from_specs(BEEFY_L5630, 2, fig7_wimpy_node(), 2)
    model = PStoreModel(
        params,
        warm_cache=FIG7_CONFIG.warm_cache,
        pipeline_cpu_cost=FIG7_CONFIG.pipeline_cpu_cost,
    )

    observed_rt, observed_energy, modeled_rt, modeled_energy = {}, {}, {}, {}
    for ls in LINEITEM_SELECTIVITIES:
        workload = q3_join(400, orders_selectivity, ls)
        label = _label(ls)
        observed = bw.simulate(workload, force_mode=mode)
        predicted = model.predict(workload, mode=mode)
        observed_rt[label] = observed.makespan_s
        observed_energy[label] = observed.energy_j
        modeled_rt[label] = predicted.time_s
        modeled_energy[label] = predicted.energy_j

    order = [_label(ls) for ls in LINEITEM_SELECTIVITIES]
    rt = compare_normalized(
        "response time", observed_rt, modeled_rt, reference=REFERENCE, order=order
    )
    energy = compare_normalized(
        "energy", observed_energy, modeled_energy, reference=REFERENCE, order=order
    )
    return rt, energy


def _result(
    experiment_id: str,
    title: str,
    orders_selectivity: float,
    mode: ExecutionMode,
    tolerance: float,
) -> ExperimentResult:
    rt, energy = run_validation(orders_selectivity, mode)
    rows = [
        (row_rt.label, f"{row_rt.observed:.3f}", f"{row_rt.modeled:.3f}",
         f"{row_e.observed:.3f}", f"{row_e.modeled:.3f}")
        for row_rt, row_e in zip(rt.rows, energy.rows)
    ]
    claims = (
        check(
            f"normalized response time within {tolerance:.0%} (paper's bound)",
            rt.within(tolerance),
            f"max error {rt.max_error:.3f}",
        ),
        check(
            f"normalized energy within {tolerance:.0%} (paper's bound)",
            energy.within(tolerance),
            f"max error {energy.max_error:.3f}",
        ),
    )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        text=render_table(
            ("workload", "RT obs", "RT model", "E obs", "E model"), rows
        ),
        claims=claims,
        data={"rt": rt, "energy": energy},
    )


def fig8() -> ExperimentResult:
    """Homogeneous validation: ORDERS 1%, within 5% (Figure 8)."""
    return _result(
        "fig8",
        "Model validation, 2B/2W homogeneous (ORDERS 1%)",
        orders_selectivity=0.01,
        mode=ExecutionMode.HOMOGENEOUS,
        tolerance=0.05,
    )


def fig9() -> ExperimentResult:
    """Heterogeneous validation: ORDERS 10%, within 10% (Figure 9)."""
    return _result(
        "fig9",
        "Model validation, 2B/2W heterogeneous (ORDERS 10%)",
        orders_selectivity=0.10,
        mode=ExecutionMode.HETEROGENEOUS,
        tolerance=0.10,
    )
