"""Figure 6: single-node hash-join energy across five hardware classes.

An in-memory 0.1M x 20M row join (100-byte tuples) on the Table 2 systems.
Laptop B consumes the least energy (~800 J) even though the workstations
finish far sooner — low-power systems cut power draw more than they cut
performance, which is the premise for the Wimpy-node design space.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.experiments.base import ExperimentResult, check
from repro.hardware.presets import TABLE2_SYSTEMS
from repro.workloads.microbench import simulate_microbench

__all__ = ["fig6"]


def fig6() -> ExperimentResult:
    results = {s.name: simulate_microbench(s) for s in TABLE2_SYSTEMS}
    rows = [
        (r.system, f"{r.response_time_s:.1f}", f"{r.energy_j:.0f}",
         f"{r.average_power_w:.1f}")
        for r in results.values()
    ]
    by_energy = sorted(results.values(), key=lambda r: r.energy_j)
    by_speed = sorted(results.values(), key=lambda r: r.response_time_s)

    claims = (
        check(
            "Laptop B consumes the least energy for the join",
            by_energy[0].system == "laptop-B",
            f"winner: {by_energy[0].system} at {by_energy[0].energy_j:.0f} J",
        ),
        check(
            "a workstation is fastest (lowest response time)",
            by_speed[0].system.startswith("workstation"),
            f"fastest: {by_speed[0].system} at {by_speed[0].response_time_s:.1f} s",
        ),
        check(
            "Laptop B energy ~800 J (paper's reading)",
            abs(results["laptop-B"].energy_j - 800.0) <= 80.0,
            f"{results['laptop-B'].energy_j:.0f} J",
        ),
        check(
            "Workstation A energy ~1300 J (paper's reading)",
            abs(results["workstation-A"].energy_j - 1300.0) <= 130.0,
            f"{results['workstation-A'].energy_j:.0f} J",
        ),
        check(
            "all response times within the figure's 0-50 s axis",
            all(0.0 < r.response_time_s <= 50.0 for r in results.values()),
        ),
        check(
            "all energies within the figure's 0-1800 J axis",
            all(0.0 < r.energy_j <= 1800.0 for r in results.values()),
        ),
    )
    return ExperimentResult(
        experiment_id="fig6",
        title="Single-node in-memory hash join: energy vs response time",
        text=render_table(
            ("system", "response time (s)", "energy (J)", "avg power (W)"), rows
        ),
        claims=claims,
        data={"results": results},
    )
