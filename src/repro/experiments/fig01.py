"""Figure 1: the paper's two framing results.

* **Figure 1(a)** — empirical Vertica TPC-H Q12 (SF 1000) size sweep,
  16N -> 8N: energy drops as the cluster shrinks, but every point stays
  *above* the constant-EDP curve (proportionally more performance is lost
  than energy saved).
* **Figure 1(b)** — modeled 8-node Beefy/Wimpy mixes for the Section 5.4
  dual-shuffle join (ORDERS 10%, LINEITEM 1%): heterogeneous designs fall
  *below* the EDP curve.
"""

from __future__ import annotations

from repro.analysis.report import render_normalized_curve
from repro.core.design_space import DesignSpaceExplorer
from repro.dbms.calibration import Q12_PROFILE
from repro.dbms.vertica_like import VerticaLikeDBMS
from repro.experiments.base import ExperimentResult, check
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.workloads.queries import section54_join

__all__ = ["fig1a", "fig1b"]

SIZES = (8, 10, 12, 14, 16)


def fig1a() -> ExperimentResult:
    """Vertica-like Q12 speedup and its effect on energy (Figure 1a)."""
    dbms = VerticaLikeDBMS(CLUSTER_V_NODE)
    curve = dbms.size_sweep(Q12_PROFILE, SIZES)
    norm = {p.label: p for p in curve.normalized()}

    energies = [norm[f"{n}N"].energy for n in sorted(SIZES, reverse=True)]
    claims = (
        check(
            "all downsized configurations lie above the constant-EDP curve",
            all(p.edp_ratio > 1.0 for p in curve.normalized()[1:]),
        ),
        check(
            "8N performance ratio is ~0.64 (paper: 36% drop from 16N)",
            0.58 <= norm["8N"].performance <= 0.70,
            f"measured {norm['8N'].performance:.3f}",
        ),
        check(
            "10N trades ~24% performance for ~16% energy (paper's quote)",
            abs(norm["10N"].performance - 0.76) <= 0.05
            and abs(norm["10N"].energy - 0.84) <= 0.05,
            f"perf {norm['10N'].performance:.3f}, energy {norm['10N'].energy:.3f}",
        ),
        check(
            "energy decreases monotonically as the cluster shrinks",
            energies == sorted(energies, reverse=True),
        ),
    )
    return ExperimentResult(
        experiment_id="fig1a",
        title="Vertica TPC-H Q12 (SF1000): energy vs performance, 8..16 nodes",
        text=render_normalized_curve("normalized vs 16N", curve.normalized()),
        claims=claims,
        data={"normalized": curve.normalized()},
    )


def fig1b() -> ExperimentResult:
    """Modeled Beefy/Wimpy mixes for the O10%/L1% join (Figure 1b)."""
    explorer = DesignSpaceExplorer(CLUSTER_V_NODE, WIMPY_LAPTOP_B, cluster_size=8)
    curve = explorer.sweep(section54_join(0.10, 0.01))
    norm = {p.label: p for p in curve.normalized()}
    below = curve.below_edp_points()

    claims = (
        check(
            "mixed designs fall below the constant-EDP curve",
            len(below) >= 4,
            f"{len(below)} of {len(curve) - 1} mixes below EDP",
        ),
        check(
            "the wimpiest feasible design (2B,6W) saves large energy",
            norm["2B,6W"].energy <= 0.65,
            f"energy ratio {norm['2B,6W'].energy:.3f}",
        ),
        check(
            "2B,6W keeps most of the performance (paper axis reaches ~0.7)",
            norm["2B,6W"].performance >= 0.55,
            f"performance ratio {norm['2B,6W'].performance:.3f}",
        ),
        check(
            "designs stop at 2 Beefy nodes (1B cannot hold the hash table)",
            "1B,7W" not in norm and "0B,8W" not in norm,
        ),
    )
    return ExperimentResult(
        experiment_id="fig1b",
        title="Modeled 8-node mixes, ORDERS 10% x LINEITEM 1% dual-shuffle join",
        text=render_normalized_curve("normalized vs 8B,0W", curve.normalized()),
        claims=claims,
        data={"normalized": curve.normalized()},
    )
