"""Figure 12: the cluster design principles, executed end-to-end.

Three scenarios with a 40% acceptable performance loss (target 0.6):

* **(a)** a highly scalable workload -> use all nodes;
* **(b)** a bottlenecked workload on homogeneous clusters -> the fewest
  nodes still meeting the target (4 of 8);
* **(c)** the same bottlenecked workload with heterogeneous options -> a
  2-Beefy/6-Wimpy mix beats the best homogeneous design and sits below the
  EDP curve.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.core.principles import Principle, recommend_design
from repro.experiments.base import ExperimentResult, check
from repro.experiments.fig10 import section54_explorer
from repro.pstore.plans import ExecutionMode
from repro.workloads.queries import JoinMethod, section54_join

__all__ = ["fig12"]

TARGET_PERFORMANCE = 0.6
SIZES = (8, 6, 4, 2)

#: the Figure 12(c) workload: ORDERS 10%, LINEITEM 2%
BOTTLENECKED = section54_join(0.10, 0.02)
#: a perfectly-partitionable variant (pre-partitioned on the join key)
SCALABLE = section54_join(0.10, 0.02).with_method(JoinMethod.LOCAL)


def fig12() -> ExperimentResult:
    explorer = section54_explorer()
    # The homogeneous size sweeps use the paper's verbatim branch condition
    # (build network-bound at every size), which is how the paper's own
    # Figure 12(b,c) homogeneous curves were produced.
    from repro.core.design_space import DesignSpaceExplorer
    from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B

    strict_explorer = DesignSpaceExplorer(
        CLUSTER_V_NODE, WIMPY_LAPTOP_B, cluster_size=8, strict_paper_conditions=True
    )

    # (a) scalable: a partition-compatible join scales linearly.  The model
    # treats LOCAL as exchange-free, so emulate with a disk-bound sweep:
    # ORDERS 1% / LINEITEM 1% is disk-bound at every size (I*S < L).
    scalable_curve = strict_explorer.sweep_sizes(
        section54_join(0.01, 0.01), sizes=SIZES, mode=ExecutionMode.HOMOGENEOUS
    )
    rec_a = recommend_design(scalable_curve, TARGET_PERFORMANCE)

    # (b) bottlenecked homogeneous sweep.
    homo_curve = strict_explorer.sweep_sizes(
        BOTTLENECKED, sizes=SIZES, mode=ExecutionMode.HOMOGENEOUS
    )
    rec_b = recommend_design(homo_curve, TARGET_PERFORMANCE)

    # (c) the same homogeneous sweep plus the heterogeneous mixes.
    hetero_curve = explorer.sweep(BOTTLENECKED)
    rec_c = recommend_design(
        homo_curve, TARGET_PERFORMANCE, heterogeneous_curve=hetero_curve
    )
    hetero_norm = hetero_curve.normalized_point(rec_c.design.label)
    homo_norm = homo_curve.normalized_point(rec_b.design.label)

    rows = [
        ("(a) scalable", rec_a.principle.value, rec_a.design.label,
         f"{rec_a.normalized_performance:.3f}", f"{rec_a.normalized_energy:.3f}"),
        ("(b) bottlenecked homo", rec_b.principle.value, rec_b.design.label,
         f"{rec_b.normalized_performance:.3f}", f"{rec_b.normalized_energy:.3f}"),
        ("(c) heterogeneous", rec_c.principle.value, rec_c.design.label,
         f"{rec_c.normalized_performance:.3f}", f"{rec_c.normalized_energy:.3f}"),
    ]

    claims = (
        check(
            "(a) scalable workload -> use all available nodes",
            rec_a.principle is Principle.SCALABLE_USE_ALL_NODES
            and rec_a.design.label == "8B",
            f"recommended {rec_a.design.label}",
        ),
        check(
            "(b) bottlenecked workload -> downsize to the fewest nodes "
            "meeting the 0.6 target",
            rec_b.principle is Principle.BOTTLENECKED_DOWNSIZE
            and rec_b.design.cluster.num_nodes < 8
            and rec_b.normalized_performance >= TARGET_PERFORMANCE,
            f"recommended {rec_b.design.label} "
            f"(perf {rec_b.normalized_performance:.3f})",
        ),
        check(
            "(c) a Beefy/Wimpy mix beats the best homogeneous design "
            "(paper substitutes 6 of 8 Beefy nodes; our model picks the "
            "wimpiest mix still meeting the target)",
            rec_c.principle is Principle.HETEROGENEOUS_SUBSTITUTION
            and rec_c.design.num_wimpy >= 4,
            f"recommended {rec_c.design.label}",
        ),
        check(
            "(c) the winning mix consumes less energy than the best "
            "homogeneous design while meeting the target",
            hetero_norm.energy < homo_norm.energy
            and hetero_norm.performance >= TARGET_PERFORMANCE,
            f"{rec_c.design.label}: energy {hetero_norm.energy:.3f} vs "
            f"{rec_b.design.label}: {homo_norm.energy:.3f}",
        ),
        check(
            "(c) the winning mix lies below the constant-EDP curve",
            hetero_norm.below_edp_curve,
            f"EDP ratio {hetero_norm.edp_ratio:.3f}",
        ),
    )
    return ExperimentResult(
        experiment_id="fig12",
        title="Design principles at a 0.6 performance target",
        text=render_table(
            ("scenario", "principle", "design", "perf", "energy"), rows
        ),
        claims=claims,
        data={"recommendations": (rec_a, rec_b, rec_c)},
    )
