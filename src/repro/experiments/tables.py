"""Tables 1, 2 and 3: configurations, hardware, and model constants.

``tbl1`` is more than a listing: it re-runs the Section 3.1 calibration
workflow — hold CPU utilization levels with concurrent joins, read power
through the (simulated) iLO2 interface, fit exponential/power/logarithmic
regressions, keep the best R² — and checks that it recovers the published
``130.03 * C^0.2369`` SysPower model.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.core.model import TABLE3, ModelConstants
from repro.experiments.base import ExperimentResult, check
from repro.hardware.calibration import fit_best_model, fit_exponential, fit_logarithmic
from repro.hardware.meter import ILO2Interface
from repro.hardware.presets import CLUSTER_V_NODE, TABLE2_SYSTEMS, WIMPY_LAPTOP_B

__all__ = ["tbl1", "tbl2", "tbl3"]

UTILIZATION_LEVELS = (0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.65, 0.80, 0.90, 1.00)


def tbl1() -> ExperimentResult:
    """Cluster-V configuration and SysPower calibration (Table 1)."""
    truth = CLUSTER_V_NODE.power_model
    ilo2 = ILO2Interface(accuracy=0.01, seed=2012)
    readings = ilo2.utilization_sweep(truth.power, UTILIZATION_LEVELS)
    best = fit_best_model(readings)
    exponential = fit_exponential(readings)
    logarithmic = fit_logarithmic(readings)

    config_rows = [
        ("DBMS", CLUSTER_V_NODE.description["DBMS"]),
        ("# nodes", "16"),
        ("TPC-H size", "1TB (scale 1000)"),
        ("CPU", CLUSTER_V_NODE.description["CPU"]),
        ("RAM", CLUSTER_V_NODE.description["RAM"]),
        ("Disks", CLUSTER_V_NODE.description["Disks"]),
        ("Network", CLUSTER_V_NODE.description["Network"]),
        ("SysPower (published)", CLUSTER_V_NODE.description["SysPower"]),
        ("SysPower (recalibrated)", best.model.formula()),
    ]

    coefficient = best.model.coefficient  # type: ignore[attr-defined]
    exponent = best.model.exponent  # type: ignore[attr-defined]
    claims = (
        check(
            "the power-law family wins the R² comparison (as in the paper)",
            best.family == "power",
            f"power R²={best.r2:.4f}, exp R²={exponential.r2:.4f}, "
            f"log R²={logarithmic.r2:.4f}",
        ),
        check(
            "recovered coefficient ~130.03",
            abs(coefficient - 130.03) / 130.03 <= 0.05,
            f"{coefficient:.2f}",
        ),
        check(
            "recovered exponent ~0.2369",
            abs(exponent - 0.2369) / 0.2369 <= 0.10,
            f"{exponent:.4f}",
        ),
    )
    return ExperimentResult(
        experiment_id="tbl1",
        title="Cluster-V configuration and SysPower recalibration",
        text=render_table(("field", "value"), config_rows),
        claims=claims,
        data={"fit": best, "readings": readings},
    )


def tbl2() -> ExperimentResult:
    """The five measured systems (Table 2)."""
    rows = [
        (
            s.name,
            s.description.get("CPU", ""),
            s.description.get("RAM", ""),
            f"{s.power_model.idle_power:.0f}W",
        )
        for s in TABLE2_SYSTEMS
    ]
    published_idle = {
        "workstation-A": 93.0,
        "workstation-B": 69.0,
        "desktop-atom": 28.0,
        "laptop-A": 12.0,
        "laptop-B": 11.0,
    }
    claims = (
        check(
            "idle powers match the published Table 2 values",
            all(
                abs(s.power_model.idle_power - published_idle[s.name]) < 0.5
                for s in TABLE2_SYSTEMS
            ),
        ),
        check("all five systems are present", len(TABLE2_SYSTEMS) == 5),
    )
    return ExperimentResult(
        experiment_id="tbl2",
        title="Hardware configuration of different systems",
        text=render_table(("system", "CPU (cores/threads)", "RAM", "idle power"), rows),
        claims=claims,
        data={"systems": TABLE2_SYSTEMS},
    )


def tbl3() -> ExperimentResult:
    """Model constants (Table 3)."""
    constants = ModelConstants()
    rows = [
        ("CB (Beefy CPU bandwidth)", f"{constants.CB:.0f} MB/s"),
        ("CW (Wimpy CPU bandwidth)", f"{constants.CW:.0f} MB/s"),
        ("GB (Beefy P-store constant)", f"{constants.GB}"),
        ("GW (Wimpy P-store constant)", f"{constants.GW}"),
        ("fB(c)", constants.beefy_power_model().formula()),
        ("fW(c)", constants.wimpy_power_model().formula()),
    ]
    claims = (
        check("CB = 5037", constants.CB == 5037.0),
        check("CW = 1129", constants.CW == 1129.0),
        check("GB = 0.25", constants.GB == 0.25),
        check("GW = 0.13", constants.GW == 0.13),
        check(
            "fB matches 130.03 x (100c)^0.2369",
            constants.beefy_power_coefficient == 130.03
            and constants.beefy_power_exponent == 0.2369,
        ),
        check(
            "fW matches 10.994 x (100c)^0.2875",
            constants.wimpy_power_coefficient == 10.994
            and constants.wimpy_power_exponent == 0.2875,
        ),
        check(
            "presets agree with Table 3 (CB/CW wired into the node specs)",
            CLUSTER_V_NODE.cpu_bandwidth_mbps == constants.CB
            and WIMPY_LAPTOP_B.cpu_bandwidth_mbps == constants.CW,
        ),
        check("the module-level TABLE3 singleton matches", TABLE3 == constants),
    )
    return ExperimentResult(
        experiment_id="tbl3",
        title="Model variables (Table 3 constants)",
        text=render_table(("constant", "value"), rows),
        claims=claims,
        data={"constants": constants},
    )
