"""Figure 10: model-explored design space at two selectivity settings.

* **10(a)** — ORDERS 1% / LINEITEM 10%: hash tables fit everywhere, the
  disk/network bottlenecks mask the Wimpy CPUs, so performance stays ~1.0
  across all mixes and the all-Wimpy design cuts energy by ~90%.
* **10(b)** — ORDERS 10% / LINEITEM 10%: heterogeneous execution; Beefy
  ingest saturates, performance collapses while energy never improves
  meaningfully (paper: never below 95% of all-Beefy).
"""

from __future__ import annotations

from repro.analysis.report import render_normalized_curve
from repro.core.design_space import DesignSpaceExplorer
from repro.experiments.base import ExperimentResult, check
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.study import Study
from repro.workloads.queries import section54_join

__all__ = ["fig10a", "fig10b", "section54_explorer", "section54_study"]


def section54_explorer() -> DesignSpaceExplorer:
    """The Section 5.4 parameterization: cluster-V Beefy + Laptop B Wimpy."""
    return DesignSpaceExplorer(CLUSTER_V_NODE, WIMPY_LAPTOP_B, cluster_size=8)


def section54_study() -> Study:
    """The same parameterization as a workload-ready :class:`Study`."""
    return Study(section54_explorer())


def fig10a() -> ExperimentResult:
    curve = section54_study().with_workload(section54_join(0.01, 0.10)).run().curve()
    norm = {p.label: p for p in curve.normalized()}
    claims = (
        check(
            "all nine mixes are feasible (homogeneous execution)",
            len(curve) == 9,
            f"{len(curve)} designs",
        ),
        check(
            "performance ratio stays ~1.0 across all configurations",
            all(p.performance >= 0.95 for p in curve.normalized()),
            f"min {min(p.performance for p in curve.normalized()):.3f}",
        ),
        check(
            "the all-Wimpy design cuts energy by ~90% (paper: 'almost 90%')",
            norm["0B,8W"].energy <= 0.20,
            f"energy ratio {norm['0B,8W'].energy:.3f}",
        ),
        check(
            "energy decreases monotonically with each Beefy->Wimpy swap",
            all(
                a.energy > b.energy
                for a, b in zip(curve.normalized(), curve.normalized()[1:])
            ),
        ),
    )
    return ExperimentResult(
        experiment_id="fig10a",
        title="Modeled mixes, ORDERS 1% x LINEITEM 10% (homogeneous)",
        text=render_normalized_curve("normalized vs 8B,0W", curve.normalized()),
        claims=claims,
        data={"normalized": curve.normalized()},
    )


def fig10b() -> ExperimentResult:
    curve = section54_study().with_workload(section54_join(0.10, 0.10)).run().curve()
    norm = {p.label: p for p in curve.normalized()}
    claims = (
        check(
            "designs stop at 2B,6W (Beefy memory limit)",
            [p.label for p in curve][-1] == "2B,6W" and len(curve) == 7,
        ),
        check(
            "performance degrades severely toward Wimpy-heavy mixes",
            norm["2B,6W"].performance <= 0.35,
            f"2B,6W performance {norm['2B,6W'].performance:.3f}",
        ),
        check(
            "energy never drops meaningfully below the all-Beefy level "
            "(paper: not below 95%)",
            all(p.energy >= 0.95 for p in curve.normalized()),
            f"min energy ratio {min(p.energy for p in curve.normalized()):.3f}",
        ),
        check(
            "no design lies below the constant-EDP curve",
            len(curve.below_edp_points()) == 0,
        ),
    )
    return ExperimentResult(
        experiment_id="fig10b",
        title="Modeled mixes, ORDERS 10% x LINEITEM 10% (heterogeneous)",
        text=render_normalized_curve("normalized vs 8B,0W", curve.normalized()),
        claims=claims,
        data={"normalized": curve.normalized()},
    )
