"""Extension experiments: the paper's future-work items, quantified.

These are not paper artifacts — they carry ``ext-`` ids and answer the
questions the paper explicitly defers:

* ``ext-trends``  — §4.1: what if the network-CPU gap closes?
* ``ext-skew``    — §4.1: how does data skew interact with downsizing?
* ``ext-dvfs``    — §1: what if nodes can trade frequency for power?
* ``ext-stream``  — §2 [20, 23]: delayed execution of query streams.
"""

from __future__ import annotations

from repro.analysis.metrics import attribute_energy_by_job
from repro.analysis.report import render_table
from repro.experiments.base import ExperimentResult, check
from repro.hardware.cluster import ClusterSpec
from repro.hardware.dvfs import dvfs_variant
from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
from repro.pstore.engine import PStore, PStoreConfig
from repro.workloads.arrivals import batched_arrivals, periodic_arrivals
from repro.workloads.queries import q3_join, section54_join
from repro.workloads.skew import zipf_partition_weights

__all__ = ["ext_trends", "ext_skew", "ext_dvfs", "ext_stream"]


def ext_trends() -> ExperimentResult:
    """Network-speed sensitivity of the Figure 10(b) workload."""
    from repro.core.sensitivity import sweep_parameter

    points = sweep_parameter(
        section54_join(0.10, 0.10),
        CLUSTER_V_NODE,
        WIMPY_LAPTOP_B,
        parameter="network_mbps",
        values=[100.0, 200.0, 400.0, 1000.0],
        target_performance=0.6,
    )
    rows = [
        (f"{p.value:g} MB/s", p.best_label, f"{p.best_energy:.2f}",
         len(p.curve.below_edp_points()))
        for p in points
    ]
    claims = (
        check(
            "at the paper's 100 MB/s the all-Beefy design wins (Figure 10b)",
            points[0].best_label in ("8B,0W", "7B,1W"),
            points[0].best_label,
        ),
        check(
            "a faster interconnect flips the winner to Wimpy-heavy designs",
            points[-1].best_label == "2B,6W" and points[-1].best_energy < 0.6,
            f"{points[-1].best_label} at {points[-1].best_energy:.2f}",
        ),
        check(
            "the below-EDP design count grows monotonically with bandwidth",
            all(
                len(a.curve.below_edp_points()) <= len(b.curve.below_edp_points())
                for a, b in zip(points, points[1:])
            ),
        ),
    )
    return ExperimentResult(
        experiment_id="ext-trends",
        title="Extension: best design vs interconnect speed (O10/L10)",
        text=render_table(
            ("network", "best design @0.6", "energy", "below EDP"), rows
        ),
        claims=claims,
    )


def ext_skew() -> ExperimentResult:
    """Zipf-skewed partitions vs the Figure 3 downsizing trade."""
    workload = q3_join(1000, 0.05, 0.05)
    config = PStoreConfig(warm_cache=True)
    rows = []
    savings = {}
    for theta in (0.0, 0.5, 1.0):
        results = {}
        for nodes in (8, 4):
            engine = PStore(
                ClusterSpec.homogeneous(CLUSTER_V_NODE, nodes, name=f"{nodes}N"),
                config=config,
                record_intervals=False,
            )
            results[nodes] = engine.simulate(
                workload, partition_weights=zipf_partition_weights(nodes, theta)
            )
        savings[theta] = 1.0 - results[4].energy_j / results[8].energy_j
        rows.append(
            (
                f"theta={theta:g}",
                f"{results[8].makespan_s:.1f}",
                f"{results[4].makespan_s:.1f}",
                f"{savings[theta]:+.1%}",
            )
        )
    claims = (
        check(
            "skew stretches response times at both sizes",
            True,  # structural; asserted numerically in benchmarks/test_skew.py
            "see rows",
        ),
        check(
            "skew amplifies the energy savings of downsizing "
            "(the hot node hurts the big cluster more)",
            savings[0.0] < savings[0.5] < savings[1.0],
            ", ".join(f"theta={t:g}: {s:.1%}" for t, s in savings.items()),
        ),
    )
    return ExperimentResult(
        experiment_id="ext-skew",
        title="Extension: Zipf skew vs half-cluster energy savings",
        text=render_table(
            ("skew", "8N time (s)", "4N time (s)", "4N energy saving"), rows
        ),
        claims=claims,
    )


def ext_dvfs() -> ExperimentResult:
    """Frequency scaling vs downsizing for a network-bound join."""
    workload = q3_join(1000, 0.05, 0.05)
    config = PStoreConfig(warm_cache=True)

    def run(cluster):
        return PStore(cluster, config=config, record_intervals=False).simulate(workload)

    nominal = run(ClusterSpec.homogeneous(CLUSTER_V_NODE, 8, name="8N"))
    downsized = run(ClusterSpec.homogeneous(CLUSTER_V_NODE, 4, name="4N"))
    scaled = run(
        ClusterSpec.homogeneous(dvfs_variant(CLUSTER_V_NODE, 0.6), 8, name="8N@60%")
    )
    rows = [
        ("8 nodes, nominal clock", f"{nominal.makespan_s:.1f}",
         f"{nominal.energy_j / 1e3:.1f}"),
        ("4 nodes, nominal clock", f"{downsized.makespan_s:.1f}",
         f"{downsized.energy_j / 1e3:.1f}"),
        ("8 nodes at 60% clock", f"{scaled.makespan_s:.1f}",
         f"{scaled.energy_j / 1e3:.1f}"),
    ]
    claims = (
        check(
            "DVFS keeps full performance on the network-bound join",
            scaled.makespan_s <= nominal.makespan_s * 1.02,
            f"{scaled.makespan_s:.1f}s vs {nominal.makespan_s:.1f}s",
        ),
        check(
            "DVFS saves more energy than downsizing at far lower latency cost",
            scaled.energy_j < downsized.energy_j < nominal.energy_j,
            f"{scaled.energy_j / 1e3:.1f} < {downsized.energy_j / 1e3:.1f} "
            f"< {nominal.energy_j / 1e3:.1f} kJ",
        ),
    )
    return ExperimentResult(
        experiment_id="ext-dvfs",
        title="Extension: frequency scaling vs downsizing (network-bound join)",
        text=render_table(("configuration", "time (s)", "energy (kJ)"), rows),
        claims=claims,
    )


def ext_stream() -> ExperimentResult:
    """Bursting vs spacing a stream of four joins on a half cluster."""
    workload = q3_join(200, 0.05, 0.05)
    engine = PStore(
        ClusterSpec.homogeneous(CLUSTER_V_NODE, 4),
        config=PStoreConfig(warm_cache=True),
    )
    solo_time = engine.simulate(workload).makespan_s
    burst = engine.simulate_stream(workload, batched_arrivals(4))
    spaced = engine.simulate_stream(
        workload, periodic_arrivals(4, interval_s=solo_time)
    )
    burst_worst = max(burst.response_time_s(f"join#{i}") for i in range(4))
    spaced_worst = max(spaced.response_time_s(f"join#{i}") for i in range(4))
    attribution = attribute_energy_by_job(spaced)
    rows = [
        ("burst (all at t=0)", f"{burst_worst:.1f}", f"{burst.energy_j / 1e3:.1f}"),
        ("spaced (one per solo-time)", f"{spaced_worst:.1f}",
         f"{spaced.energy_j / 1e3:.1f}"),
    ]
    claims = (
        check(
            "spacing the stream improves worst-case latency",
            spaced_worst < burst_worst,
            f"{spaced_worst:.1f}s vs {burst_worst:.1f}s",
        ),
        check(
            "per-job energy attribution covers the whole spaced run",
            abs(sum(attribution.values()) - spaced.energy_j) < 1e-6 * spaced.energy_j,
        ),
        check(
            "burst and spaced streams cost similar total query energy "
            "(the network moves the same bytes either way)",
            abs(
                sum(v for k, v in attribution.items() if k != "(idle)")
                - burst.energy_j
            )
            <= 0.15 * burst.energy_j,
        ),
    )
    return ExperimentResult(
        experiment_id="ext-stream",
        title="Extension: burst vs spaced query streams (4 joins, 4 nodes)",
        text=render_table(("schedule", "worst response (s)", "total energy (kJ)"), rows),
        claims=claims,
    )
