"""Command-line entry point: regenerate paper tables and figures.

Usage::

    python -m repro.experiments all
    python -m repro.experiments fig1a fig3 tbl1
    repro-experiments fig11          # via the installed console script

Exits non-zero if any paper claim fails its check.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import EXPERIMENTS, run


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print only the claim check summary",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit each result as a JSON object instead of text",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list available experiment ids and exit",
    )
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return 0
    if not args.experiments:
        parser.error("provide experiment ids, 'all', or --list")

    ids = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    failures = 0
    for experiment_id in ids:
        result = run(experiment_id)
        if args.json:
            from repro.analysis.export import experiment_to_json

            print(experiment_to_json(result))
        elif args.quiet:
            status = "ok" if result.all_claims_hold else "FAILED"
            print(f"{experiment_id}: {status}")
        else:
            print(result.report())
            print()
        failures += len(result.failed_claims())
    if failures:
        print(f"{failures} claim check(s) failed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
