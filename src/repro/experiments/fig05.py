"""Figure 5: summary — half-cluster energy savings by execution plan.

The paper's synthesis of Sections 3-4: for the same 2-way join,

* **shuffle both tables** — half cluster saves ~18% energy;
* **broadcast small table** — half cluster saves ~26% (worst scalability);
* **pre-partitioned (no network)** — energy "mostly unchanged".
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.experiments.base import ExperimentResult, check
from repro.hardware.cluster import ClusterSpec
from repro.hardware.presets import CLUSTER_V_NODE
from repro.pstore.engine import PStore, PStoreConfig
from repro.simulator.network import SMC_GS5_SWITCH
from repro.workloads.queries import JoinMethod, q3_join

__all__ = ["fig5"]

PLANS = (
    ("shuffle both tables", q3_join(1000, 0.05, 0.05, method=JoinMethod.SHUFFLE)),
    ("broadcast small table", q3_join(1000, 0.01, 0.05, method=JoinMethod.BROADCAST)),
    ("prepartitioned (no network)", q3_join(1000, 0.05, 0.05, method=JoinMethod.LOCAL)),
)


def _simulate(workload, num_nodes):
    engine = PStore(
        ClusterSpec.homogeneous(CLUSTER_V_NODE, num_nodes, name=f"{num_nodes}N"),
        switch=SMC_GS5_SWITCH,
        config=PStoreConfig(warm_cache=True),
    )
    return engine.simulate(workload)


def fig5() -> ExperimentResult:
    """Half (4N) vs full (8N) cluster for the three execution plans."""
    from repro.analysis.bottlenecks import network_bound_fraction

    rows = []
    savings: dict[str, float] = {}
    perf: dict[str, float] = {}
    network_fraction: dict[str, float] = {}
    for label, workload in PLANS:
        full = _simulate(workload, 8)
        half = _simulate(workload, 4)
        savings[label] = 1.0 - half.energy_j / full.energy_j
        perf[label] = full.makespan_s / half.makespan_s
        network_fraction[label] = network_bound_fraction(full)
        rows.append(
            (
                label,
                f"{perf[label]:.3f}",
                f"{savings[label]:+.1%}",
                f"{network_fraction[label]:.0%}",
            )
        )

    claims = (
        check(
            "broadcast saves the most energy at half cluster (paper: ~26%)",
            savings["broadcast small table"]
            > savings["shuffle both tables"]
            > savings["prepartitioned (no network)"],
            ", ".join(f"{k}: {v:.1%}" for k, v in savings.items()),
        ),
        check(
            "shuffle-join savings in the paper's band (~18%)",
            0.10 <= savings["shuffle both tables"] <= 0.30,
            f"{savings['shuffle both tables']:.1%}",
        ),
        check(
            "broadcast-join savings in the paper's band (~26%)",
            0.18 <= savings["broadcast small table"] <= 0.35,
            f"{savings['broadcast small table']:.1%}",
        ),
        check(
            "pre-partitioned plan's energy is mostly unchanged",
            abs(savings["prepartitioned (no network)"]) <= 0.05,
            f"{savings['prepartitioned (no network)']:.1%}",
        ),
        check(
            "pre-partitioned plan scales linearly (perf ratio ~0.5)",
            abs(perf["prepartitioned (no network)"] - 0.5) <= 0.03,
            f"{perf['prepartitioned (no network)']:.3f}",
        ),
        check(
            "the savings track the network-bound time fraction "
            "(the Section 4.1 causal story)",
            network_fraction["broadcast small table"] > 0.3
            and network_fraction["shuffle both tables"] > 0.5
            and network_fraction["prepartitioned (no network)"] == 0.0,
            ", ".join(f"{k}: {v:.0%}" for k, v in network_fraction.items()),
        ),
    )
    return ExperimentResult(
        experiment_id="fig5",
        title="Energy savings of half cluster over full cluster, by plan",
        text=render_table(
            ("plan", "half-cluster perf ratio", "energy savings",
             "network-bound time"),
            rows,
        ),
        claims=claims,
        data={
            "savings": savings,
            "performance": perf,
            "network_fraction": network_fraction,
        },
    )
