"""Figure 11: knee migration with probe-table selectivity.

Dual-shuffle join, ORDERS fixed at 10%, LINEITEM swept 10% -> 2%.  As fewer
probe tuples pass the filter, the curves dip below the constant-EDP line
and the knee — the mix where the bottleneck flips from Beefy-NIC ingestion
to source scanning — migrates toward Wimpy-heavy designs (more Wimpies are
needed to saturate the Beefy inbound ports).
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.experiments.base import ExperimentResult, check
from repro.experiments.fig10 import section54_study
from repro.workloads.queries import section54_join

__all__ = ["fig11", "ingest_bound_knee"]

LINEITEM_SELECTIVITIES = (0.10, 0.08, 0.06, 0.04, 0.02)


def ingest_bound_knee(curve) -> int:
    """Largest Beefy count whose probe phase is ingest-bound (0 if none).

    To the left of the paper's knee, designs are ingest-bound; to the
    right, source-bound.  The knee is the transition mix.
    """
    knee = 0
    for point in curve:
        prediction = point.prediction
        if prediction is not None and prediction.probe.bottleneck == "ingest":
            knee = max(knee, point.num_beefy)
    return knee


def fig11() -> ExperimentResult:
    # All five per-selectivity studies fork one base study and therefore
    # share its explorer's evaluation cache.
    study = section54_study()
    rows = []
    below_counts: dict[float, int] = {}
    knees: dict[float, int] = {}
    curves = {}
    for ls in LINEITEM_SELECTIVITIES:
        curve = study.with_workload(section54_join(0.10, ls)).run().curve()
        curves[ls] = curve
        below = curve.below_edp_points()
        below_counts[ls] = len(below)
        knees[ls] = ingest_bound_knee(curve)
        tail = curve.normalized()[-1]
        rows.append(
            (
                f"LI {ls:.0%}",
                len(curve),
                len(below),
                f"{knees[ls]}B" if knees[ls] else "none",
                f"{tail.performance:.3f}",
                f"{tail.energy:.3f}",
            )
        )

    ordered = [below_counts[ls] for ls in LINEITEM_SELECTIVITIES]  # 10% .. 2%
    knee_series = [knees[ls] for ls in LINEITEM_SELECTIVITIES]
    claims = (
        check(
            "tightening the LINEITEM predicate pushes designs below the "
            "EDP curve (below-EDP count grows from 10% to 2%)",
            all(a <= b for a, b in zip(ordered, ordered[1:])) and ordered[-1] >= 4,
            f"counts 10%->2%: {ordered}",
        ),
        check(
            "at 10% selectivity no design beats constant EDP",
            below_counts[0.10] == 0,
        ),
        check(
            "the ingest knee moves toward Wimpy-heavy designs as the "
            "probe predicate tightens (fewer Beefy nodes saturate)",
            all(a >= b for a, b in zip(knee_series, knee_series[1:]))
            and knee_series[0] > knee_series[-1],
            f"knee Beefy counts 10%->2%: {knee_series}",
        ),
        check(
            "2% selectivity keeps most performance at 2B,6W while saving "
            ">40% energy (the Figure 11 sweet spot)",
            curves[0.02].normalized()[-1].performance >= 0.55
            and curves[0.02].normalized()[-1].energy <= 0.60,
            f"2B,6W at LI 2%: perf "
            f"{curves[0.02].normalized()[-1].performance:.3f}, "
            f"energy {curves[0.02].normalized()[-1].energy:.3f}",
        ),
    )
    return ExperimentResult(
        experiment_id="fig11",
        title="Knee migration: ORDERS 10%, LINEITEM 2-10%, 8-node mixes",
        text=render_table(
            ("probe sel", "designs", "below EDP", "ingest knee",
             "2B,6W perf", "2B,6W energy"),
            rows,
        ),
        claims=claims,
        data={"curves": curves, "knees": knees, "below_counts": below_counts},
    )
