"""Experiment registry: one driver per paper table/figure.

Run any experiment::

    from repro.experiments import run
    result = run("fig1a")
    print(result.report())

or from the command line::

    python -m repro.experiments fig1a fig3
    python -m repro.experiments all
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ReproError
from repro.experiments.base import Claim, ExperimentResult, check
from repro.experiments.fig01 import fig1a, fig1b
from repro.experiments.fig02 import fig2a, fig2b
from repro.experiments.fig03 import fig3
from repro.experiments.fig04 import fig4
from repro.experiments.fig05 import fig5
from repro.experiments.fig06 import fig6
from repro.experiments.fig07 import fig7a, fig7b
from repro.experiments.fig08 import fig8, fig9
from repro.experiments.fig10 import fig10a, fig10b
from repro.experiments.fig11 import fig11
from repro.experiments.extensions import ext_dvfs, ext_skew, ext_stream, ext_trends
from repro.experiments.fig12 import fig12
from repro.experiments.tables import tbl1, tbl2, tbl3

__all__ = [
    "PAPER_EXPERIMENTS",
    "EXTENSION_EXPERIMENTS",
    "EXPERIMENTS",
    "run",
    "run_all",
    "ExperimentResult",
    "Claim",
    "check",
]

#: every table and figure of the paper's evaluation, in paper order
PAPER_EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "fig1a": fig1a,
    "fig1b": fig1b,
    "tbl1": tbl1,
    "fig2a": fig2a,
    "fig2b": fig2b,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "tbl2": tbl2,
    "fig6": fig6,
    "fig7a": fig7a,
    "fig7b": fig7b,
    "tbl3": tbl3,
    "fig8": fig8,
    "fig9": fig9,
    "fig10a": fig10a,
    "fig10b": fig10b,
    "fig11": fig11,
    "fig12": fig12,
}

#: future-work studies beyond the paper (see repro.experiments.extensions)
EXTENSION_EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "ext-trends": ext_trends,
    "ext-skew": ext_skew,
    "ext-dvfs": ext_dvfs,
    "ext-stream": ext_stream,
}

EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    **PAPER_EXPERIMENTS,
    **EXTENSION_EXPERIMENTS,
}


def run(experiment_id: str) -> ExperimentResult:
    """Run one experiment by id (raises for unknown ids)."""
    try:
        driver = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(EXPERIMENTS)}"
        ) from None
    return driver()


def run_all() -> list[ExperimentResult]:
    """Run every experiment in paper order."""
    return [driver() for driver in EXPERIMENTS.values()]
