"""Figure 4: P-store broadcast join under concurrency (a-c).

Broadcasting the 1%-filtered ORDERS table means every node receives
(n-1)/n of the qualifying tuples — the build phase barely speeds up with
more nodes (the algorithmic bottleneck), so the 8->4 node trade sits *on*
the constant-EDP curve: ~30% performance for 25-30% energy.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.experiments.base import ExperimentResult, check
from repro.experiments.fig03 import run_concurrency_sweep
from repro.workloads.queries import JoinMethod, q3_join

__all__ = ["fig4"]


def fig4() -> ExperimentResult:
    """Broadcast Q3 join (ORDERS 1%, LINEITEM 5%) at concurrency 1/2/4."""
    workload = q3_join(
        scale_factor=1000,
        build_selectivity=0.01,
        probe_selectivity=0.05,
        method=JoinMethod.BROADCAST,
    )
    curves = run_concurrency_sweep(workload)

    rows = []
    for k, points in curves.items():
        for p in points:
            rows.append(
                (k, p.label, f"{p.performance:.3f}", f"{p.energy:.3f}",
                 f"{p.energy - p.performance:+.3f}")
            )
    savings = {k: 1.0 - points[-1].energy for k, points in curves.items()}
    perf_loss = {k: 1.0 - points[-1].performance for k, points in curves.items()}
    edp_distance = {
        k: max(abs(p.energy - p.performance) for p in points)
        for k, points in curves.items()
    }

    claims = (
        check(
            "points lie on/near the constant-EDP curve (paper: 'on the line')",
            all(d <= 0.08 for d in edp_distance.values()),
            ", ".join(f"k={k}: max|E-P|={d:.3f}" for k, d in edp_distance.items()),
        ),
        check(
            "halving the cluster loses ~30% performance (paper: 30-32%)",
            all(0.22 <= perf_loss[k] <= 0.38 for k in curves),
            ", ".join(f"k={k}: {perf_loss[k]:.1%}" for k in curves),
        ),
        check(
            "4N saves ~25-30% energy vs 8N",
            all(0.18 <= savings[k] <= 0.35 for k in curves),
            ", ".join(f"k={k}: {savings[k]:.1%}" for k in curves),
        ),
        check(
            "broadcast trades closer to EDP than dual shuffle "
            "(higher degree of non-linear scalability)",
            all(savings[k] / perf_loss[k] > 0.75 for k in curves),
        ),
    )
    return ExperimentResult(
        experiment_id="fig4",
        title="P-store broadcast TPC-H Q3 join (SF1000), concurrency 1/2/4",
        text=render_table(
            ("concurrency", "cluster", "perf", "energy", "E-P"), rows
        ),
        claims=claims,
        data={"curves": curves},
    )
