"""Figure 3: P-store dual-shuffle join under concurrency (a-c).

The partition-incompatible TPC-H Q3 join (LINEITEM x ORDERS, SF 1000, 5%
selectivity on both tables) is network bound.  Halving the cluster from 8
to 4 nodes costs ~33-38% performance but saves ~20-24% energy, and the
savings *grow* with query concurrency because switch contention hurts the
larger cluster more.  All points stay above the EDP curve.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.core.edp import NormalizedPoint, normalized_series
from repro.experiments.base import ExperimentResult, check
from repro.hardware.cluster import ClusterSpec
from repro.hardware.presets import CLUSTER_V_NODE
from repro.pstore.engine import PStore, PStoreConfig
from repro.simulator.network import SMC_GS5_SWITCH
from repro.workloads.queries import q3_join

__all__ = ["fig3", "run_concurrency_sweep"]

SIZES = (8, 6, 4)
CONCURRENCY_LEVELS = (1, 2, 4)


def run_concurrency_sweep(workload, concurrency_levels=CONCURRENCY_LEVELS, sizes=SIZES):
    """Simulate one workload across cluster sizes and concurrency levels.

    Returns {concurrency: [NormalizedPoint per size, largest first]}.
    """
    curves: dict[int, list[NormalizedPoint]] = {}
    for k in concurrency_levels:
        measurements = []
        for n in sizes:
            engine = PStore(
                ClusterSpec.homogeneous(CLUSTER_V_NODE, n, name=f"{n}N"),
                switch=SMC_GS5_SWITCH,
                config=PStoreConfig(warm_cache=True),
                record_intervals=False,
            )
            result = engine.simulate(workload, concurrency=k)
            measurements.append((f"{n}N", result.makespan_s, result.energy_j))
        curves[k] = normalized_series(measurements)
    return curves


def fig3() -> ExperimentResult:
    """Dual-shuffle Q3 join at concurrency 1, 2, 4 (Figure 3 a-c)."""
    workload = q3_join(scale_factor=1000, build_selectivity=0.05, probe_selectivity=0.05)
    curves = run_concurrency_sweep(workload)

    rows = []
    for k, points in curves.items():
        for p in points:
            rows.append((f"{k} quer{'y' if k == 1 else 'ies'}", p.label,
                         f"{p.performance:.3f}", f"{p.energy:.3f}",
                         "above" if p.edp_ratio > 1 else "at/below"))
    savings = {k: 1.0 - points[-1].energy for k, points in curves.items()}
    perf_loss = {k: 1.0 - points[-1].performance for k, points in curves.items()}

    claims = (
        check(
            "4N always consumes less energy than 8N",
            all(points[-1].energy < 1.0 for points in curves.values()),
            ", ".join(f"k={k}: {1 - s:.3f}" for k, s in
                      ((k, savings[k]) for k in curves)),
        ),
        check(
            "energy savings grow with concurrency (paper: ~20% -> ~24%)",
            savings[1] < savings[2] < savings[4],
            ", ".join(f"k={k}: {savings[k]:.1%}" for k in curves),
        ),
        check(
            "halving the cluster loses ~33-38% performance",
            all(0.25 <= perf_loss[k] <= 0.45 for k in curves),
            ", ".join(f"k={k}: {perf_loss[k]:.1%}" for k in curves),
        ),
        check(
            "all points lie above the constant-EDP curve",
            all(
                p.edp_ratio > 1.0
                for points in curves.values()
                for p in points[1:]
            ),
        ),
        check(
            "savings are in the paper's ~15-30% band at 4N",
            all(0.10 <= savings[k] <= 0.35 for k in curves),
        ),
    )
    return ExperimentResult(
        experiment_id="fig3",
        title="P-store dual-shuffle TPC-H Q3 join (SF1000), concurrency 1/2/4",
        text=render_table(
            ("concurrency", "cluster", "perf", "energy", "vs EDP"), rows
        ),
        claims=claims,
        data={"curves": curves},
    )
