"""Figure 2: Vertica TPC-H Q1 and Q21 size sweeps.

Both queries are dominated by node-local work (Q1 entirely; Q21 at 94.5%),
so they exhibit near-ideal speedup and *flat* energy curves — the paper's
evidence that for scalable queries the energy-optimal design is simply the
largest cluster.
"""

from __future__ import annotations

from repro.analysis.report import render_normalized_curve
from repro.dbms.calibration import Q1_PROFILE, Q21_PROFILE
from repro.dbms.vertica_like import QueryProfile, VerticaLikeDBMS
from repro.experiments.base import ExperimentResult, check
from repro.hardware.presets import CLUSTER_V_NODE

__all__ = ["fig2a", "fig2b"]

SIZES = (8, 10, 12, 14, 16)


def _run(profile: QueryProfile, experiment_id: str, title: str) -> ExperimentResult:
    dbms = VerticaLikeDBMS(CLUSTER_V_NODE)
    curve = dbms.size_sweep(profile, SIZES)
    norm = {p.label: p for p in curve.normalized()}
    ideal_perf_8n = 8 / 16

    claims = (
        check(
            "speedup is (near-)linear: 8N performance ~0.5 of 16N",
            abs(norm["8N"].performance - ideal_perf_8n) <= 0.04,
            f"measured {norm['8N'].performance:.3f}",
        ),
        check(
            "energy consumption is flat across cluster sizes",
            all(abs(p.energy - 1.0) <= 0.06 for p in curve.normalized()),
            "max deviation "
            + f"{max(abs(p.energy - 1.0) for p in curve.normalized()):.3f}",
        ),
        check(
            "therefore the largest cluster is the energy-efficient choice "
            "(no savings from downsizing)",
            min(p.energy for p in curve.normalized()) >= 0.94,
        ),
    )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        text=render_normalized_curve("normalized vs 16N", curve.normalized()),
        claims=claims,
        data={"normalized": curve.normalized()},
    )


def fig2a() -> ExperimentResult:
    """TPC-H Q1: pure local aggregation (Figure 2a)."""
    return _run(Q1_PROFILE, "fig2a", "Vertica TPC-H Q1 (SF1000): ideal speedup")


def fig2b() -> ExperimentResult:
    """TPC-H Q21: four-table join, 94.5% local at 8N (Figure 2b)."""
    return _run(Q21_PROFILE, "fig2b", "Vertica TPC-H Q21 (SF1000): near-ideal speedup")
