"""Experiment harness shared machinery.

Every paper artifact (table or figure) has one driver function returning an
:class:`ExperimentResult`: the regenerated rows/series, a rendered text
report, and a list of **claims** — the qualitative/quantitative statements
the paper makes about that artifact, each checked against our reproduction.
The benchmark suite asserts every claim, so a regression in any model or
simulator component that changes a paper-level conclusion fails CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Claim", "ExperimentResult", "check"]


@dataclass(frozen=True)
class Claim:
    """One paper statement and whether our reproduction satisfies it."""

    description: str
    holds: bool
    detail: str = ""

    def __str__(self) -> str:
        status = "PASS" if self.holds else "FAIL"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{status}] {self.description}{suffix}"


def check(description: str, holds: bool, detail: str = "") -> Claim:
    return Claim(description=description, holds=bool(holds), detail=detail)


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    experiment_id: str
    title: str
    text: str
    claims: tuple[Claim, ...]
    data: dict[str, Any] = field(default_factory=dict)

    @property
    def all_claims_hold(self) -> bool:
        return all(claim.holds for claim in self.claims)

    def failed_claims(self) -> list[Claim]:
        return [claim for claim in self.claims if not claim.holds]

    def report(self) -> str:
        """Rendered data plus the claim checklist."""
        lines = [f"=== {self.experiment_id}: {self.title} ===", self.text, ""]
        lines.extend(str(claim) for claim in self.claims)
        return "\n".join(lines)
