"""Figure 7: all-Beefy (AB) vs 2-Beefy/2-Wimpy (BW) prototype clusters.

Simulated reproduction of the Section 5.2 SF-400 dual-shuffle joins on the
L5630 Beefy prototype and Laptop B Wimpy nodes:

* **7(a)** — ORDERS 1% (homogeneous execution): AB wins at selective
  LINEITEM predicates (the Wimpy scan limit dominates), BW wins big at
  50%/100% (everyone is network-bound, Wimpies draw a fraction of the
  power).
* **7(b)** — ORDERS 10% (heterogeneous execution forced, as in the paper):
  Wimpy nodes scan/filter for the Beefy pair; the Beefy ingest bottleneck
  roughly doubles response time.

Calibration (documented in EXPERIMENTS.md): ``pipeline_cpu_cost = 3.0``
matches the paper's observed AB response times (L1 ~8 s); the Wimpy NIC is
set to 88 MB/s matching the BW/AB slowdown at L100.  Known deviation: in
7(b) the paper measured BW saving 7-13% at L50/L100, while our simulator —
which keeps the paper's own G_B = 0.25 engine-utilization floor during
network stalls — shows BW costing ~10-15% more; the paper's own *model*
(Figure 10b) agrees with our direction (savings never exceed 5%).
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.experiments.base import ExperimentResult, check
from repro.hardware.cluster import ClusterSpec
from repro.hardware.presets import BEEFY_L5630, WIMPY_LAPTOP_B
from repro.pstore.engine import PStore, PStoreConfig
from repro.pstore.plans import ExecutionMode
from repro.workloads.queries import q3_join

__all__ = ["fig7a", "fig7b", "FIG7_CONFIG", "fig7_wimpy_node", "fig7_engines"]

#: Engine calibration for the SF-400 prototype experiments.
FIG7_CONFIG = PStoreConfig(warm_cache=True, pipeline_cpu_cost=3.0)

LINEITEM_SELECTIVITIES = (0.01, 0.10, 0.50, 1.00)


def fig7_wimpy_node():
    """Laptop B with its measured usable NIC bandwidth (88 MB/s)."""
    return WIMPY_LAPTOP_B.with_overrides(nic_bandwidth_mbps=88.0)


def fig7_engines():
    """The AB and BW prototype clusters as simulated engines."""
    ab = PStore(
        ClusterSpec.homogeneous(BEEFY_L5630, 4, name="AB"),
        config=FIG7_CONFIG,
        record_intervals=False,
    )
    bw = PStore(
        ClusterSpec.beefy_wimpy(BEEFY_L5630, 2, fig7_wimpy_node(), 2, name="BW"),
        config=FIG7_CONFIG,
        record_intervals=False,
    )
    return ab, bw


def _grid(orders_selectivity: float, mode: ExecutionMode | None):
    ab, bw = fig7_engines()
    rows = []
    data = {}
    for ls in LINEITEM_SELECTIVITIES:
        workload = q3_join(400, orders_selectivity, ls)
        result_ab = ab.simulate(workload)
        result_bw = bw.simulate(workload, force_mode=mode)
        saving = 1.0 - result_bw.energy_j / result_ab.energy_j
        data[ls] = (result_ab, result_bw, saving)
        rows.append(
            (
                f"L{ls:.0%}",
                f"{result_ab.makespan_s:.1f}",
                f"{result_ab.energy_j / 1e3:.1f}",
                f"{result_bw.makespan_s:.1f}",
                f"{result_bw.energy_j / 1e3:.1f}",
                f"{saving:+.1%}",
            )
        )
    text = render_table(
        ("LINEITEM sel", "AB time (s)", "AB energy (kJ)",
         "BW time (s)", "BW energy (kJ)", "BW saving"),
        rows,
    )
    return data, text


def fig7a() -> ExperimentResult:
    """ORDERS 1%: homogeneous execution — all nodes build hash tables."""
    data, text = _grid(0.01, mode=None)
    claims = (
        check(
            "AB consumes less energy at 1% and 10% LINEITEM selectivity",
            data[0.01][2] < 0.0 and data[0.10][2] < 0.0,
            f"BW 'saving' L1={data[0.01][2]:+.0%}, L10={data[0.10][2]:+.0%}",
        ),
        check(
            "BW saves substantially at 50% (paper: 43%)",
            data[0.50][2] >= 0.25,
            f"{data[0.50][2]:+.1%}",
        ),
        check(
            "BW saves substantially at 100% (paper: 56%)",
            data[1.00][2] >= 0.25,
            f"{data[1.00][2]:+.1%}",
        ),
        check(
            "at L1 the Wimpy scan limit dominates (BW ~4-6x slower)",
            3.0 <= data[0.01][1].makespan_s / data[0.01][0].makespan_s <= 7.0,
            f"ratio {data[0.01][1].makespan_s / data[0.01][0].makespan_s:.1f}",
        ),
        check(
            "at L100 both clusters are network bound (BW ~8-15% slower)",
            1.0 <= data[1.00][1].makespan_s / data[1.00][0].makespan_s <= 1.25,
            f"ratio {data[1.00][1].makespan_s / data[1.00][0].makespan_s:.2f}",
        ),
    )
    return ExperimentResult(
        experiment_id="fig7a",
        title="AB vs BW clusters, ORDERS 1% (homogeneous), SF400",
        text=text,
        claims=claims,
        data={"grid": data},
    )


def fig7b() -> ExperimentResult:
    """ORDERS 10%: heterogeneous execution — Wimpies feed the Beefies."""
    data, text = _grid(0.10, mode=ExecutionMode.HETEROGENEOUS)
    claims = (
        check(
            "AB wins clearly at selective LINEITEM predicates (L1/L10)",
            data[0.01][2] < -0.25 and data[0.10][2] < -0.25,
            f"L1={data[0.01][2]:+.0%}, L10={data[0.10][2]:+.0%}",
        ),
        check(
            "at L50/L100 BW is energy-competitive with AB (within 20%; "
            "paper measured 7-13% savings, paper's own model <=5%)",
            abs(data[0.50][2]) <= 0.20 and abs(data[1.00][2]) <= 0.20,
            f"L50={data[0.50][2]:+.1%}, L100={data[1.00][2]:+.1%}",
        ),
        check(
            "heterogeneous ingest roughly doubles response time at L100 "
            "(paper: ~290 s vs ~155 s)",
            1.6 <= data[1.00][1].makespan_s / data[1.00][0].makespan_s <= 2.4,
            f"ratio {data[1.00][1].makespan_s / data[1.00][0].makespan_s:.2f}",
        ),
    )
    return ExperimentResult(
        experiment_id="fig7b",
        title="AB vs BW clusters, ORDERS 10% (heterogeneous), SF400",
        text=text,
        claims=claims,
        data={"grid": data},
    )
