"""repro — reproduction of *Towards Energy-Efficient Database Cluster Design*.

Lang, Harizopoulos, Patel, Shah, Tsirogiannis — PVLDB 5(11), 2012.

The library provides:

* :mod:`repro.hardware` — node specs, power models, calibration, meters;
* :mod:`repro.simulator` — fluid discrete-event cluster simulator;
* :mod:`repro.workloads` — TPC-H schema/sizing, data generation, queries;
* :mod:`repro.pstore` — the P-store parallel query engine (functional and
  simulated executors);
* :mod:`repro.dbms` — behavioural models of Vertica-like and HadoopDB-like
  parallel DBMSs;
* :mod:`repro.core` — the paper's analytical model, design-space explorer,
  EDP analysis, and cluster design principles;
* :mod:`repro.search` — parallel, memoized Pareto search over
  multi-dimensional cluster design grids, plus budgeted adaptive
  optimizers (random / successive-halving / evolutionary) over design
  spaces too large to enumerate;
* :mod:`repro.policy` — dynamic cluster control (power gating, DVFS
  ladders) as searchable (design x policy) candidates;
* :mod:`repro.faults` — nemesis-style fault injection (crashes,
  stragglers, network degradation) for scoring candidates in degraded
  mode, not just at full health;
* :mod:`repro.study` — the fluent :class:`Study` facade, the single entry
  point for design-space studies over any workload;
* :mod:`repro.analysis` — metrics, normalized curves, ASCII reports;
* :mod:`repro.experiments` — one driver per paper table/figure.

Quickstart — a :class:`Study` prices any workload (a single join, a
weighted :class:`WorkloadSuite`, an arrival-trace mix) over a design
space, with memoization, optional multiprocessing, and the paper's
selection rules::

    from repro import (
        CLUSTER_V_NODE, WIMPY_LAPTOP_B,
        DesignSpaceExplorer, HashJoinQuery, Study, WorkloadSuite,
    )

    query = HashJoinQuery.tpch_orders_lineitem(
        scale_factor=1000, build_selectivity=0.10, probe_selectivity=0.01)
    explorer = DesignSpaceExplorer(
        beefy=CLUSTER_V_NODE, wimpy=WIMPY_LAPTOP_B, cluster_size=8)

    result = Study(explorer).with_workload(query).run()
    print(result.pareto_frontier())                   # raw (time, energy) frontier
    print(result.curve().best_design(0.6))            # Section 6 selection rule

    nightly = WorkloadSuite.of("nightly", query, query.with_selectivities(probe=0.10))
    print(Study(explorer).with_workload(nightly).run().knee().label)

The space can also be a multi-dimensional :class:`DesignGrid` (node pairs
x sizes x Beefy/Wimpy mixes x DVFS states x modes), and ``.with_workers(n)``
fans evaluations out over processes.  The classic
:class:`DesignSpaceExplorer` sweep API remains and returns bit-identical
results — it shares its evaluation cache with studies over the same
explorer.
"""

from repro.core.design_space import DesignPoint, DesignSpaceExplorer, TradeoffCurve
from repro.core.edp import edp, normalized_series
from repro.core.model import (
    HashJoinQuery,
    ModelConstants,
    ModelParameters,
    Prediction,
    PStoreModel,
)
from repro.core.principles import DesignRecommendation, recommend_design
from repro.errors import ReproError
from repro.faults import (
    FailurePolicy,
    FaultSchedule,
    FaultedTrace,
    NetworkDegrade,
    NodeCrash,
    Straggler,
    correlated_rack_failure,
    random_crashes,
    rolling_restart,
)
from repro.hardware.cluster import ClusterSpec, NodeGroup
from repro.hardware.dvfs import dvfs_variant
from repro.hardware.node import NodeSpec
from repro.hardware.power import (
    ExponentialModel,
    IdlePeakModel,
    LogarithmicModel,
    PowerLawModel,
    PowerModel,
)
from repro.hardware.powerstate import TRADITIONAL_SERVER, PowerStateModel
from repro.hardware.presets import (
    BEEFY_L5630,
    CLUSTER_V_NODE,
    LAPTOP_B,
    TABLE2_SYSTEMS,
    WIMPY_LAPTOP_B,
)
from repro.costmodel import CarbonIntensityCurve, CostModel
from repro.policy import (
    ControlPolicy,
    DvfsLadderPolicy,
    PolicyCandidate,
    PolicyChain,
    PowerGatePolicy,
    StaticPolicy,
)
from repro.pstore.engine import PStore, PStoreConfig
from repro.pstore.replication import ReplicatedLayout
from repro.search import (
    CallableEvaluator,
    ChoiceAxis,
    DesignCandidate,
    DesignGrid,
    DesignSpaceSearch,
    EvaluatedDesign,
    EvaluationCache,
    LatencyProfile,
    LocalSearch,
    ModelEvaluator,
    Objective,
    OptimizationLoop,
    Optimizer,
    RandomSearch,
    RangeAxis,
    SearchResult,
    SearchSpace,
    SimulatorEvaluator,
    SuccessiveHalving,
    best_under_budget,
    best_under_carbon,
)
from repro.study import OptimizationResult, Study, StudyResult
from repro.workloads.protocol import (
    ArrivalMix,
    SingleJoin,
    TimedTrace,
    WeightedQuery,
    Workload,
    as_workload,
)
from repro.workloads.queries import JoinMethod, JoinWorkloadSpec, q3_join, section54_join
from repro.workloads.suite import SuiteEntry, WorkloadSuite

# 1.1.0: EvaluatedDesign gained the `latency` field (timed-trace
# evaluation), so persisted evaluation caches written by 1.0.0 hold
# records of the old pickle shape; the version stamp invalidates them.
# 1.2.0: dynamic cluster control — EvaluatedDesign gained the `policy`,
# `gated_node_seconds`, and `energy_saved_j` fields and SimulationResult
# the matching totals, so older persisted caches are invalidated again.
# 1.3.0: fault injection — EvaluatedDesign gained `degraded_latency`,
# `recovery_energy_j`, `retried_jobs`, `dropped_jobs`, and
# `faults_survived`, and SimulationResult the matching fields; the bump
# invalidates persisted caches holding the old record shapes.
# 1.5.0: multi-objective cost model — EvaluatedDesign and
# SimulationResult gained `carbon_g` / `price_usd`, so persisted caches
# written by older versions hold records of the old pickle shape; the
# bump invalidates them.
__version__ = "1.5.0"

__all__ = [
    "__version__",
    "ReproError",
    # hardware
    "NodeSpec",
    "NodeGroup",
    "ClusterSpec",
    "PowerModel",
    "PowerLawModel",
    "ExponentialModel",
    "LogarithmicModel",
    "IdlePeakModel",
    "CLUSTER_V_NODE",
    "BEEFY_L5630",
    "WIMPY_LAPTOP_B",
    "LAPTOP_B",
    "TABLE2_SYSTEMS",
    # core
    "HashJoinQuery",
    "ModelConstants",
    "ModelParameters",
    "PStoreModel",
    "Prediction",
    "DesignPoint",
    "DesignSpaceExplorer",
    "TradeoffCurve",
    "edp",
    "normalized_series",
    "DesignRecommendation",
    "recommend_design",
    # design-space search
    "DesignCandidate",
    "DesignGrid",
    "DesignSpaceSearch",
    "SearchResult",
    "EvaluatedDesign",
    "EvaluationCache",
    "LatencyProfile",
    "ModelEvaluator",
    "SimulatorEvaluator",
    "CallableEvaluator",
    # multi-objective cost model
    "CostModel",
    "CarbonIntensityCurve",
    "Objective",
    "best_under_budget",
    "best_under_carbon",
    # dynamic cluster control
    "PowerStateModel",
    "TRADITIONAL_SERVER",
    "ControlPolicy",
    "StaticPolicy",
    "PowerGatePolicy",
    "DvfsLadderPolicy",
    "PolicyChain",
    "PolicyCandidate",
    # fault injection
    "FaultSchedule",
    "FaultedTrace",
    "FailurePolicy",
    "NodeCrash",
    "Straggler",
    "NetworkDegrade",
    "random_crashes",
    "rolling_restart",
    "correlated_rack_failure",
    # adaptive optimization
    "SearchSpace",
    "ChoiceAxis",
    "RangeAxis",
    "Optimizer",
    "RandomSearch",
    "SuccessiveHalving",
    "LocalSearch",
    "OptimizationLoop",
    "OptimizationResult",
    # studies
    "Study",
    "StudyResult",
    # engine & workloads
    "PStore",
    "PStoreConfig",
    "JoinMethod",
    "JoinWorkloadSpec",
    "q3_join",
    "section54_join",
    "Workload",
    "WeightedQuery",
    "SingleJoin",
    "ArrivalMix",
    "TimedTrace",
    "as_workload",
    "SuiteEntry",
    "WorkloadSuite",
    "ReplicatedLayout",
    "dvfs_variant",
]
