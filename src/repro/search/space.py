"""Design spaces for adaptive (non-grid) search.

A :class:`~repro.search.grid.DesignGrid` is an *enumeration*: every axis
is a finite tuple and every point will be visited.  The adaptive
optimizers of :mod:`repro.search.optimize` need the complementary
abstraction — a :class:`SearchSpace` that can *draw* and *perturb*
candidates without ever enumerating the space, so fine DVFS ladders and
wide cluster-size ranges (the regime where the paper's cluster-design
question gets interesting, and where Schall & Härder-style wimpy scaling
studies live) stay searchable after exhaustive sweeps stop scaling.

A space is described by axes:

* :class:`ChoiceAxis` — a finite set of values (what a grid axis is);
* :class:`RangeAxis` — a continuous interval (``integer=True`` for
  integer-valued ranges like cluster size), which no grid could
  enumerate.

and three constructors:

* :meth:`SearchSpace.from_grid` — the discrete space of exactly one
  :class:`DesignGrid`; sampled candidates are grid points (identical
  :meth:`~repro.search.grid.DesignCandidate.key`), so optimizer runs and
  grid sweeps share evaluation-cache rows;
* the direct constructor — open spaces mixing :class:`ChoiceAxis` and
  :class:`RangeAxis` per dimension (node pair x cluster size x
  Beefy-fraction x DVFS states x mode);
* :meth:`SearchSpace.from_candidates` — an explicit candidate list
  (uniform sampling, unstructured mutation).

:meth:`SearchSpace.sample` draws one candidate, :meth:`SearchSpace.mutate`
perturbs one axis of an existing candidate (the evolutionary refiner's
neighborhood move), and finite spaces still offer
:meth:`SearchSpace.candidate_list` so exhaustive baselines stay
available.  All randomness flows through a caller-provided
:class:`random.Random`, so seeded optimizer runs are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.hardware.node import NodeSpec
from repro.pstore.plans import ExecutionMode
from repro.search.grid import DesignCandidate, DesignGrid, candidate_label

__all__ = ["ChoiceAxis", "RangeAxis", "SearchSpace"]


@dataclass(frozen=True)
class ChoiceAxis:
    """A finite, ordered set of values for one search dimension."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        if not self.values:
            raise ConfigurationError(f"axis {self.name!r} has no values")

    @property
    def is_varied(self) -> bool:
        return len(self.values) > 1

    def sample(self, rng: random.Random):
        return self.values[rng.randrange(len(self.values))]

    def mutate(self, value, rng: random.Random):
        """Move to a neighboring value (the axis order defines adjacency)."""
        if len(self.values) == 1:
            return self.values[0]
        try:
            index = self.values.index(value)
        except ValueError:
            # A value from outside the axis (hand-built candidate): restart
            # from the nearest axis value when comparable, else anywhere.
            try:
                index = min(
                    range(len(self.values)),
                    key=lambda i: abs(self.values[i] - value),
                )
            except TypeError:
                index = rng.randrange(len(self.values))
        neighbors = [i for i in (index - 1, index + 1) if 0 <= i < len(self.values)]
        return self.values[neighbors[rng.randrange(len(neighbors))]]


@dataclass(frozen=True)
class RangeAxis:
    """A continuous interval — the axis kind no grid can enumerate.

    ``integer=True`` restricts draws to whole numbers (cluster sizes);
    mutation is a Gaussian step of ``mutation_scale`` times the span,
    clipped back into the interval.
    """

    name: str
    low: float
    high: float
    integer: bool = False
    mutation_scale: float = 0.25

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ConfigurationError(
                f"axis {self.name!r}: need low < high, got [{self.low}, {self.high}]"
            )
        if not 0.0 < self.mutation_scale <= 1.0:
            raise ConfigurationError(
                f"axis {self.name!r}: mutation_scale must be in (0, 1], "
                f"got {self.mutation_scale}"
            )
        if self.integer and (
            self.low != int(self.low) or self.high != int(self.high)
        ):
            raise ConfigurationError(
                f"axis {self.name!r}: integer range bounds must be whole, "
                f"got [{self.low}, {self.high}]"
            )

    @property
    def is_varied(self) -> bool:
        return True

    def sample(self, rng: random.Random):
        if self.integer:
            return rng.randrange(int(self.low), int(self.high) + 1)
        return rng.uniform(self.low, self.high)

    def mutate(self, value, rng: random.Random):
        span = self.high - self.low
        moved = value + rng.gauss(0.0, self.mutation_scale * span)
        moved = min(self.high, max(self.low, moved))
        if self.integer:
            moved = int(round(moved))
            if moved == value:  # a zero-step integer move is no mutation
                moved = value + 1 if value < self.high else value - 1
            moved = int(min(self.high, max(self.low, moved)))
        return moved


def _as_axis(name: str, spec) -> ChoiceAxis | RangeAxis:
    """Coerce a plain tuple/list (or a bare value) into a ChoiceAxis."""
    if isinstance(spec, (ChoiceAxis, RangeAxis)):
        return spec
    if isinstance(spec, (tuple, list)):
        return ChoiceAxis(name, tuple(spec))
    return ChoiceAxis(name, (spec,))


class SearchSpace:
    """Sampleable, mutable design space over `DesignCandidate`s.

    Dimensions mirror :class:`~repro.search.grid.DesignGrid` — node pair,
    cluster size, Beefy/Wimpy mix, cluster-wide and per-type DVFS states,
    execution mode — but each numeric dimension may be a finite
    :class:`ChoiceAxis` *or* an open :class:`RangeAxis`.  The mix
    dimension is expressed as ``beefy_fractions`` (the fraction of nodes
    that are Beefy, mapped to a whole node count per sampled size);
    grid-backed spaces instead reproduce the grid's exact per-size split
    enumeration so every sampled candidate is a grid point.

    ``policies`` adds a control-policy dimension: every enumerated,
    sampled, or mutated design is wrapped into a (design x policy)
    :class:`~repro.policy.candidate.PolicyCandidate`, making autoscaling
    thresholds part of the searched object alongside node mix and DVFS.
    """

    def __init__(
        self,
        node_pairs: Sequence[tuple[NodeSpec, NodeSpec]],
        cluster_sizes,
        *,
        beefy_fractions=None,
        frequency_factors=(1.0,),
        beefy_frequency_factors=None,
        wimpy_frequency_factors=None,
        modes: Sequence[ExecutionMode | None] = (None,),
        grid: DesignGrid | None = None,
        candidates: Sequence[DesignCandidate] | None = None,
        policies=None,
        control_interval_s: float = 1.0,
    ):
        self.node_pairs = tuple(node_pairs)
        if not self.node_pairs:
            raise ConfigurationError("a search space needs at least one node pair")
        self.cluster_sizes = _as_axis("cluster_size", cluster_sizes)
        self._validate_size_axis(self.cluster_sizes)
        if beefy_fractions is None and grid is None:
            beefy_fractions = RangeAxis("beefy_fraction", 0.0, 1.0)
        self.beefy_fractions = (
            None if beefy_fractions is None else _as_axis("beefy_fraction", beefy_fractions)
        )
        if self.beefy_fractions is not None:
            self._validate_unit_axis(self.beefy_fractions, closed_low=True)
        self.frequency_factors = _as_axis("frequency_factor", frequency_factors)
        self._validate_unit_axis(self.frequency_factors)
        self.beefy_frequency_factors = (
            None
            if beefy_frequency_factors is None
            else _as_axis("beefy_frequency_factor", beefy_frequency_factors)
        )
        self.wimpy_frequency_factors = (
            None
            if wimpy_frequency_factors is None
            else _as_axis("wimpy_frequency_factor", wimpy_frequency_factors)
        )
        for axis in (self.beefy_frequency_factors, self.wimpy_frequency_factors):
            if axis is not None:
                self._validate_unit_axis(axis)
        self.modes = tuple(modes)
        if not self.modes:
            raise ConfigurationError("a search space needs at least one mode entry")
        self._grid = grid
        self._candidates = None if candidates is None else list(candidates)
        if self._candidates is not None and not self._candidates:
            raise ConfigurationError("the candidate list is empty")
        self.policy_axis = self._policy_axis(policies)
        if control_interval_s <= 0:
            raise ConfigurationError(
                f"control interval must be > 0, got {control_interval_s}"
            )
        self.control_interval_s = control_interval_s
        self._enumerated: list[DesignCandidate] | None = None

    @staticmethod
    def _policy_axis(policies) -> ChoiceAxis | None:
        """Validated policy dimension (``None`` for design-only spaces)."""
        if policies is None:
            return None
        # Deferred import: repro.policy wraps design candidates from this
        # package, so a module-level import would be circular.
        from repro.policy.policies import ControlPolicy

        values = tuple(policies)
        for policy in values:
            if not isinstance(policy, ControlPolicy):
                raise ConfigurationError(f"not a control policy: {policy!r}")
        labels = [policy.label for policy in values]
        if len(set(labels)) != len(labels):
            raise ConfigurationError(f"duplicate policy labels: {labels}")
        return ChoiceAxis("policy", values)

    # -------------------------------------------------------------- builders
    @classmethod
    def from_grid(
        cls,
        grid: DesignGrid,
        policies=None,
        control_interval_s: float = 1.0,
    ) -> "SearchSpace":
        """The discrete space of exactly one grid's points.

        Samples and mutants are grid points — same values, same
        :meth:`~repro.search.grid.DesignCandidate.key`, same labels — so
        an optimizer run over this space warms the evaluation cache for a
        later exhaustive sweep of ``grid`` (and vice versa).

        ``policies`` crosses the grid with a policy dimension: every
        point becomes a (design x policy)
        :class:`~repro.policy.candidate.PolicyCandidate`.
        """
        return cls(
            policies=policies,
            control_interval_s=control_interval_s,
            node_pairs=grid.node_pairs,
            cluster_sizes=ChoiceAxis("cluster_size", grid.cluster_sizes),
            frequency_factors=ChoiceAxis("frequency_factor", grid.frequency_factors),
            beefy_frequency_factors=(
                None
                if grid.beefy_frequency_factors is None
                else ChoiceAxis("beefy_frequency_factor", grid.beefy_frequency_factors)
            ),
            wimpy_frequency_factors=(
                None
                if grid.wimpy_frequency_factors is None
                else ChoiceAxis("wimpy_frequency_factor", grid.wimpy_frequency_factors)
            ),
            modes=grid.modes,
            grid=grid,
        )

    @classmethod
    def from_candidates(
        cls, candidates: Iterable[DesignCandidate]
    ) -> "SearchSpace":
        """An explicit candidate list as a (finite) search space.

        Sampling is uniform over the list; mutation degrades to
        resampling, since an arbitrary list carries no axis structure to
        take neighborhood steps in.
        """
        candidates = list(candidates)
        if not candidates:
            raise ConfigurationError("the candidate list is empty")
        first = candidates[0]
        return cls(
            node_pairs=((first.beefy, first.wimpy),),
            cluster_sizes=ChoiceAxis("cluster_size", (first.num_nodes,)),
            beefy_fractions=ChoiceAxis("beefy_fraction", (1.0,)),
            candidates=candidates,
        )

    # -------------------------------------------------------------- geometry
    @property
    def finite(self) -> bool:
        """Whether every point of the space could be enumerated."""
        if self._candidates is not None or self._grid is not None:
            return True
        return all(
            isinstance(axis, ChoiceAxis)
            for axis in self._axes()
            if axis is not None
        )

    def _axes(self):
        return (
            self.cluster_sizes,
            self.beefy_fractions,
            self.frequency_factors,
            self.beefy_frequency_factors,
            self.wimpy_frequency_factors,
        )

    def candidate_list(self) -> list[DesignCandidate]:
        """Every point of a finite space, in deterministic order."""
        if self._enumerated is None:
            self._enumerated = self._enumerate()
        return list(self._enumerated)

    def __len__(self) -> int:
        return len(self.candidate_list())

    def _enumerate(self) -> list[DesignCandidate]:
        designs = self._enumerate_designs()
        if self.policy_axis is None:
            return designs
        # Design-major order: all policies of one design are adjacent, so
        # policy effects read off consecutive rows of an exported sweep.
        return [
            self._wrap(design, policy)
            for design in designs
            for policy in self.policy_axis.values
        ]

    def _enumerate_designs(self) -> list[DesignCandidate]:
        if self._candidates is not None:
            return list(self._candidates)
        if self._grid is not None:
            return self._grid.candidate_list()
        if not self.finite:
            raise ConfigurationError(
                "this search space has open RangeAxis dimensions and cannot "
                "be enumerated; use sample()/mutate() through an optimizer"
            )
        points: list[DesignCandidate] = []
        seen: set[tuple] = set()
        for pair_index in range(len(self.node_pairs)):
            for size in self.cluster_sizes.values:
                for num_beefy in self._mix_counts(size):
                    for phi in self.frequency_factors.values:
                        for bphi in self._per_type_values(
                            self.beefy_frequency_factors
                        ):
                            for wphi in self._per_type_values(
                                self.wimpy_frequency_factors
                            ):
                                for mode in self.modes:
                                    point = self._build(
                                        pair_index, size, num_beefy,
                                        phi, bphi, wphi, mode,
                                    )
                                    if point.key() in seen:
                                        continue  # two fractions, one split
                                    seen.add(point.key())
                                    points.append(point)
        return points

    @staticmethod
    def _per_type_values(axis: ChoiceAxis | None) -> tuple:
        return (None,) if axis is None else axis.values

    def _mix_counts(self, size: int) -> list[int]:
        """The Beefy counts the mix dimension allows at one cluster size."""
        if self._grid is not None:
            return self._grid._beefy_counts(size)
        axis = self.beefy_fractions
        if isinstance(axis, RangeAxis):
            return list(range(size, -1, -1))
        counts = {int(round(fraction * size)) for fraction in axis.values}
        return sorted(counts, reverse=True)

    # -------------------------------------------------------------- sampling
    def sample(self, rng: random.Random) -> DesignCandidate:
        """Draw one candidate uniformly along each axis.

        The policy (when the space has that dimension) is drawn *after*
        the design axes, so design-only spaces consume the rng exactly as
        before — seeded optimizer runs without policies reproduce their
        historical trajectories bit for bit.
        """
        design = self._sample_design(rng)
        if self.policy_axis is None:
            return design
        return self._wrap(design, self.policy_axis.sample(rng))

    def _sample_design(self, rng: random.Random) -> DesignCandidate:
        if self._candidates is not None:
            return self._candidates[rng.randrange(len(self._candidates))]
        pair_index = rng.randrange(len(self.node_pairs))
        size = int(self.cluster_sizes.sample(rng))
        counts = self._mix_counts(size)
        num_beefy = counts[rng.randrange(len(counts))]
        phi = self.frequency_factors.sample(rng)
        bphi = (
            None
            if self.beefy_frequency_factors is None
            else self.beefy_frequency_factors.sample(rng)
        )
        wphi = (
            None
            if self.wimpy_frequency_factors is None
            else self.wimpy_frequency_factors.sample(rng)
        )
        mode = self.modes[rng.randrange(len(self.modes))]
        return self._build(pair_index, size, num_beefy, phi, bphi, wphi, mode)

    def mutate(
        self, candidate: DesignCandidate, rng: random.Random
    ) -> DesignCandidate:
        """Perturb one axis of ``candidate`` (a neighborhood move).

        The mutated axis is drawn uniformly from the dimensions that can
        actually vary; when nothing can (a single-point space), the
        candidate comes back unchanged and the caller's dedupe decides
        what to do.  List-backed spaces resample instead — an arbitrary
        candidate list has no axis structure to step along.
        """
        if self._candidates is not None:
            return self.sample(rng)
        design = getattr(candidate, "design", candidate)
        dimensions = self._mutable_dimensions(design)
        if self.policy_axis is not None and self.policy_axis.is_varied:
            dimensions.append("policy")
        if not dimensions:
            return self._rewrap(design, candidate)
        dimension = dimensions[rng.randrange(len(dimensions))]
        if dimension == "policy":
            current = getattr(candidate, "policy", None)
            if current is None:  # a bare design entering a policy space
                current = self.policy_axis.values[0]
            return self._wrap(design, self.policy_axis.mutate(current, rng))
        return self._rewrap(
            self._mutate_design(design, dimension, rng), candidate
        )

    def _mutate_design(
        self, candidate: DesignCandidate, dimension: str, rng: random.Random
    ) -> DesignCandidate:
        """Step one design axis of a bare design candidate."""
        pair_index = self._pair_index(candidate)
        size = candidate.num_nodes
        num_beefy = candidate.num_beefy
        phi = candidate.frequency_factor
        bphi = candidate.beefy_frequency_factor
        wphi = candidate.wimpy_frequency_factor
        mode = candidate.mode
        if dimension == "pair":
            others = [i for i in range(len(self.node_pairs)) if i != pair_index]
            pair_index = others[rng.randrange(len(others))]
        elif dimension == "size":
            new_size = int(self.cluster_sizes.mutate(size, rng))
            # keep the Beefy share, snapped to an allowed split
            fraction = num_beefy / size
            num_beefy = self._snap_count(
                int(round(fraction * new_size)), new_size
            )
            size = new_size
        elif dimension == "mix":
            counts = self._mix_counts(size)
            axis = ChoiceAxis("mix", tuple(counts))
            num_beefy = axis.mutate(num_beefy, rng)
        elif dimension == "frequency":
            phi = self.frequency_factors.mutate(phi, rng)
        elif dimension == "beefy_frequency":
            current = candidate.effective_beefy_frequency
            bphi = self.beefy_frequency_factors.mutate(current, rng)
        elif dimension == "wimpy_frequency":
            current = candidate.effective_wimpy_frequency
            wphi = self.wimpy_frequency_factors.mutate(current, rng)
        else:  # mode
            others = [m for m in self.modes if m is not candidate.mode]
            mode = others[rng.randrange(len(others))]
        return self._build(pair_index, size, num_beefy, phi, bphi, wphi, mode)

    def _mutable_dimensions(self, candidate: DesignCandidate) -> list[str]:
        dimensions = []
        if len(self.node_pairs) > 1:
            dimensions.append("pair")
        if self.cluster_sizes.is_varied:
            dimensions.append("size")
        if len(self._mix_counts(candidate.num_nodes)) > 1:
            dimensions.append("mix")
        if self.frequency_factors.is_varied:
            dimensions.append("frequency")
        if (
            self.beefy_frequency_factors is not None
            and self.beefy_frequency_factors.is_varied
        ):
            dimensions.append("beefy_frequency")
        if (
            self.wimpy_frequency_factors is not None
            and self.wimpy_frequency_factors.is_varied
        ):
            dimensions.append("wimpy_frequency")
        if len(self.modes) > 1:
            dimensions.append("mode")
        return dimensions

    def _pair_index(self, candidate: DesignCandidate) -> int:
        for index, (beefy, wimpy) in enumerate(self.node_pairs):
            if beefy is candidate.beefy and wimpy is candidate.wimpy:
                return index
        for index, (beefy, wimpy) in enumerate(self.node_pairs):
            if (
                beefy.name == candidate.beefy.name
                and wimpy.name == candidate.wimpy.name
            ):
                return index
        return 0  # foreign candidate: mutate within the space's first pair

    def _snap_count(self, num_beefy: int, size: int) -> int:
        counts = self._mix_counts(size)
        return min(counts, key=lambda count: (abs(count - num_beefy), count))

    # ------------------------------------------------------------ candidates
    def _build(
        self,
        pair_index: int,
        size: int,
        num_beefy: int,
        phi: float,
        bphi: float | None,
        wphi: float | None,
        mode: ExecutionMode | None,
    ) -> DesignCandidate:
        beefy, wimpy = self.node_pairs[pair_index]
        num_wimpy = size - num_beefy
        # One label builder shared with DesignGrid.candidates(), so a
        # sampled grid point and its enumerated twin never diverge.  A
        # per-type factor with no matching axis (a foreign candidate
        # being mutated) keeps the grid's single-value policy: labeled
        # only when it differs from nominal clock.
        label = candidate_label(
            beefy,
            wimpy,
            num_beefy,
            num_wimpy,
            multi_pair=len(self.node_pairs) > 1,
            multi_size=self.cluster_sizes.is_varied,
            multi_freq=self.frequency_factors.is_varied,
            multi_beefy=(
                self.beefy_frequency_factors is not None
                and self.beefy_frequency_factors.is_varied
            ),
            multi_wimpy=(
                self.wimpy_frequency_factors is not None
                and self.wimpy_frequency_factors.is_varied
            ),
            multi_mode=len(self.modes) > 1,
            frequency_factor=phi,
            beefy_factor=bphi,
            wimpy_factor=wphi,
            mode=mode,
        )
        return DesignCandidate(
            label=label,
            beefy=beefy,
            wimpy=wimpy,
            num_beefy=num_beefy,
            num_wimpy=num_wimpy,
            frequency_factor=phi,
            mode=mode,
            beefy_frequency_factor=bphi,
            wimpy_frequency_factor=wphi,
        )

    def _wrap(self, design: DesignCandidate, policy):
        """One (design x policy) candidate at this space's tick interval."""
        from repro.policy.candidate import PolicyCandidate

        if getattr(design, "policy", None) is not None:
            raise ConfigurationError(
                f"candidate {design.label!r} already carries a policy; a "
                "space with a policy axis needs bare design candidates"
            )
        return PolicyCandidate(
            design=design,
            policy=policy,
            control_interval_s=self.control_interval_s,
        )

    def _rewrap(self, design: DesignCandidate, original):
        """Re-attach ``original``'s policy after a design-axis move."""
        if self.policy_axis is None:
            return design
        policy = getattr(original, "policy", None)
        if policy is None:  # a bare design entering a policy space
            policy = self.policy_axis.values[0]
        return self._wrap(design, policy)

    def with_mode(self, mode: ExecutionMode | None) -> "SearchSpace":
        """This space with one execution mode forced on every candidate."""
        space = SearchSpace(
            node_pairs=self.node_pairs,
            cluster_sizes=self.cluster_sizes,
            beefy_fractions=self.beefy_fractions,
            frequency_factors=self.frequency_factors,
            beefy_frequency_factors=self.beefy_frequency_factors,
            wimpy_frequency_factors=self.wimpy_frequency_factors,
            modes=(mode,),
            grid=None if self._grid is None else replace(self._grid, modes=(mode,)),
            candidates=(
                None
                if self._candidates is None
                else [
                    c.with_mode(mode)
                    if hasattr(c, "with_mode")
                    else replace(c, mode=mode)
                    for c in self._candidates
                ]
            ),
            policies=None if self.policy_axis is None else self.policy_axis.values,
            control_interval_s=self.control_interval_s,
        )
        return space

    # ------------------------------------------------------------ validation
    @staticmethod
    def _validate_size_axis(axis: ChoiceAxis | RangeAxis) -> None:
        if isinstance(axis, ChoiceAxis):
            for size in axis.values:
                if not isinstance(size, int) or size <= 0:
                    raise ConfigurationError(
                        f"cluster sizes must be positive integers: {axis.values}"
                    )
        elif not axis.integer or axis.low < 1:
            raise ConfigurationError(
                "a cluster-size RangeAxis must be integer with low >= 1"
            )

    @staticmethod
    def _validate_unit_axis(
        axis: ChoiceAxis | RangeAxis, closed_low: bool = False
    ) -> None:
        if isinstance(axis, ChoiceAxis):
            for value in axis.values:
                ok = (0.0 <= value <= 1.0) if closed_low else (0.0 < value <= 1.0)
                if not ok:
                    raise ConfigurationError(
                        f"axis {axis.name!r} values must be in "
                        f"{'[0, 1]' if closed_low else '(0, 1]'}: {axis.values}"
                    )
        else:
            low_ok = axis.low >= 0.0 if closed_low else axis.low > 0.0
            if not (low_ok and axis.high <= 1.0):
                raise ConfigurationError(
                    f"axis {axis.name!r} range must lie in "
                    f"{'[0, 1]' if closed_low else '(0, 1]'}: "
                    f"[{axis.low}, {axis.high}]"
                )
