"""Budgeted, adaptive optimizers over design spaces (non-grid search).

Exhaustive grid enumeration answers the paper's cluster-design question
only while the space stays small; fine DVFS ladders, heterogeneous node
mixes, and per-workload tuning blow it up combinatorially.  This module
searches the same :class:`~repro.search.grid.DesignCandidate` space
*adaptively*: an :class:`Optimizer` proposes batches of candidates drawn
from a :class:`~repro.search.space.SearchSpace`, the
:class:`OptimizationLoop` evaluates them through the existing
:class:`~repro.search.engine.DesignSpaceSearch` engine — so per-entry
memoization, the :class:`~repro.search.cache.EvaluationCache`, and the
persistent worker pool are reused verbatim, and every evaluation is
bit-identical to (and shares cache rows with) a grid sweep of the same
candidate — and an incremental Pareto archive accumulates the
full-fidelity results.

Three optimizers ship:

* :class:`RandomSearch` — seeded uniform sampling without replacement
  (by candidate key), the canonical budget-constrained baseline;
* :class:`SuccessiveHalving` — multi-fidelity racing: budget rungs are
  realized as *workload-entry subsampling* (rung 0 scores every starter
  on a cheap prefix of the weighted entries, survivors are promoted to
  ever-larger prefixes and finally the full weighted suite), so the
  per-entry cache makes each promotion pay only for its *new* entries;
* :class:`LocalSearch` — a mutation-based evolutionary refiner that
  perturbs Pareto-frontier candidates via
  :meth:`~repro.search.space.SearchSpace.mutate`.

Stopping is budget- and convergence-driven: ``budget`` caps fresh
per-entry evaluations (measured exactly like
:attr:`~repro.search.engine.SearchResult.query_evaluations`), and
``patience`` stops after that many consecutive full-fidelity batches
without a frontier change.  The :class:`OptimizationResult` is
:class:`~repro.study.StudyResult`-compatible (frontier, knee, EDP, SLA
selections, exports) and additionally carries the search *trajectory* —
the evaluations-vs-frontier-quality curve a budget study plots.

The friendly front door is :meth:`repro.study.Study.optimize`.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.search.engine import DesignSpaceSearch, SearchResult
from repro.search.evaluators import EvaluatedDesign
from repro.search.grid import DesignCandidate
from repro.search.pareto import edp_optimal, knee_point, pareto_frontier
from repro.search.space import SearchSpace
from repro.workloads.protocol import WeightedQuery, Workload, as_workload

__all__ = [
    "LocalSearch",
    "OptimizationLoop",
    "Optimizer",
    "Proposal",
    "RandomSearch",
    "SuccessiveHalving",
    "TrajectoryPoint",
    "build_optimizer",
]


# --------------------------------------------------------------------------
# proposals and workload-entry subsampling (the fidelity dimension)
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class Proposal:
    """One optimizer batch: candidates plus an evaluation fidelity.

    ``entry_count`` is the number of weighted workload entries to score
    the batch on — the budget rung.  Entries are taken as a prefix of the
    workload's entries ordered by descending weight, so rung ``k+1``
    strictly extends rung ``k`` and promotions only pay for new entries.
    A count of at least the workload's entry total means full fidelity.
    """

    candidates: tuple[DesignCandidate, ...]
    entry_count: int
    rung: int | None = None


@dataclass(frozen=True)
class _EntrySubset:
    """A workload's heaviest-``count`` entries as a Workload.

    Per-entry cache keys are workload-independent, so evaluating a subset
    warms exactly the rows the full workload will read; only the
    workload-level aggregate tier is partitioned by this subset key.
    """

    name: str
    entries: tuple[WeightedQuery, ...]
    base_key: tuple
    count: int

    def cache_key(self) -> tuple:
        return ("subset", self.base_key, self.count)

    def weighted_queries(self) -> tuple[WeightedQuery, ...]:
        return self.entries


def _ordered_entries(workload: Workload) -> tuple[WeightedQuery, ...]:
    """Entries by descending weight (ties keep workload order).

    The subsample prefix should score candidates on the entries that
    dominate the weighted aggregate, so heavier entries come first.
    """
    entries = workload.weighted_queries()
    order = sorted(range(len(entries)), key=lambda i: (-entries[i].weight, i))
    return tuple(entries[i] for i in order)


# --------------------------------------------------------------------------
# the optimizer protocol
# --------------------------------------------------------------------------
class Optimizer(abc.ABC):
    """Ask/tell strategy over a :class:`SearchSpace`.

    The :class:`OptimizationLoop` drives the conversation: ``setup`` once,
    then alternately :meth:`ask` for a :class:`Proposal` and :meth:`tell`
    the evaluated records (aligned with the proposal's candidates).
    ``ask`` returning ``None`` means the strategy is finished;
    ``terminates`` declares whether that ever happens, so the loop can
    insist on a budget or patience rule for open-ended strategies.
    """

    #: display name recorded in results and exports
    name: str = "optimizer"
    #: whether ask() eventually returns None without external stopping
    terminates: bool = False
    #: objective axes steering frontier-driven decisions (parent pools,
    #: promotion ranks, convergence) — set by the loop before ``setup``;
    #: ``None`` keeps the classic (time, energy) pair bit-identically
    objectives: Sequence | None = None

    def setup(
        self, space: SearchSpace, workload: Workload, rng: random.Random
    ) -> None:
        self.space = space
        self.workload = workload
        self.rng = rng
        self.total_entries = len(workload.weighted_queries())

    @abc.abstractmethod
    def ask(self) -> Proposal | None:
        """The next batch to evaluate, or ``None`` when finished."""

    def tell(
        self, proposal: Proposal, records: Sequence[EvaluatedDesign]
    ) -> None:
        """Observe the evaluations of one proposal (default: ignore)."""

    # ---------------------------------------------------------------- helpers
    def _sample_unseen(
        self, count: int, seen: set[tuple]
    ) -> list[DesignCandidate]:
        """Up to ``count`` uniform space samples with keys not in ``seen``.

        Keys are added to ``seen`` as candidates are drawn.  On a finite
        space the draw is exact — sample (without replacement) from the
        enumerated not-yet-seen candidates, so the space is provably
        exhausted before an empty batch is returned.  Open spaces fall
        back to rejection sampling with a generous attempt budget.
        """
        if self.space.finite:
            unseen = [
                candidate
                for candidate in self.space.candidate_list()
                if candidate.key() not in seen
            ]
            if len(unseen) > count:
                unseen = self.rng.sample(unseen, count)
            for candidate in unseen:
                seen.add(candidate.key())
            return unseen
        batch: list[DesignCandidate] = []
        attempts = max(64, count * 32)
        while len(batch) < count and attempts > 0:
            attempts -= 1
            candidate = self.space.sample(self.rng)
            key = candidate.key()
            if key in seen:
                continue
            seen.add(key)
            batch.append(candidate)
        return batch


class RandomSearch(Optimizer):
    """Seeded uniform sampling without replacement (by candidate key)."""

    name = "random"
    terminates = False

    def __init__(self, batch_size: int = 16):
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        self._seen: set[tuple] = set()

    def setup(
        self, space: SearchSpace, workload: Workload, rng: random.Random
    ) -> None:
        # Fresh run, fresh state: a reused optimizer instance must not
        # remember the previous run's draws (same-seed determinism).
        super().setup(space, workload, rng)
        self._seen = set()

    def ask(self) -> Proposal | None:
        batch = self._sample_unseen(self.batch_size, self._seen)
        if not batch:
            return None  # finite space fully explored
        return Proposal(candidates=tuple(batch), entry_count=self.total_entries)


class LocalSearch(Optimizer):
    """Evolutionary refiner: mutate Pareto-frontier candidates.

    The first batch samples the space at random; every later batch draws
    parents uniformly from the current frontier of the designs this
    optimizer has observed and proposes one
    :meth:`~repro.search.space.SearchSpace.mutate` step per slot.  Slots
    whose mutants all collide with already-seen designs fall back to
    fresh random samples, so the refiner keeps exploring once a local
    neighborhood is exhausted.
    """

    name = "local"
    terminates = False

    def __init__(self, batch_size: int = 16, mutation_attempts: int = 8):
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        if mutation_attempts < 1:
            raise ConfigurationError(
                f"mutation_attempts must be >= 1, got {mutation_attempts}"
            )
        self.batch_size = batch_size
        self.mutation_attempts = mutation_attempts
        self._seen: set[tuple] = set()
        self._observed: list[EvaluatedDesign] = []

    def setup(
        self, space: SearchSpace, workload: Workload, rng: random.Random
    ) -> None:
        # Fresh run, fresh state (see RandomSearch.setup).
        super().setup(space, workload, rng)
        self._seen = set()
        self._observed = []

    def ask(self) -> Proposal | None:
        frontier = pareto_frontier(self._observed, objectives=self.objectives)
        if not frontier:
            batch = self._sample_unseen(self.batch_size, self._seen)
            if not batch:
                return None
            return Proposal(
                candidates=tuple(batch), entry_count=self.total_entries
            )
        batch: list[DesignCandidate] = []
        for _ in range(self.batch_size):
            mutant = self._mutant(frontier)
            if mutant is not None:
                batch.append(mutant)
        if not batch:
            return None  # neighborhoods and the space itself are exhausted
        return Proposal(candidates=tuple(batch), entry_count=self.total_entries)

    def _mutant(
        self, frontier: Sequence[EvaluatedDesign]
    ) -> DesignCandidate | None:
        for _ in range(self.mutation_attempts):
            parent = frontier[self.rng.randrange(len(frontier))]
            child = self.space.mutate(parent.candidate, self.rng)
            key = child.key()
            if key not in self._seen:
                self._seen.add(key)
                return child
        fallback = self._sample_unseen(1, self._seen)
        return fallback[0] if fallback else None

    def tell(
        self, proposal: Proposal, records: Sequence[EvaluatedDesign]
    ) -> None:
        if proposal.entry_count >= self.total_entries:
            self._observed.extend(records)


class SuccessiveHalving(Optimizer):
    """Multi-fidelity racing with workload-entry subsampling rungs.

    Rung ``r`` scores its candidates on the ``k_r`` heaviest workload
    entries, where ``k_0 = min_entries`` and each rung multiplies the
    entry count by ``entry_growth`` until the full suite is reached; the
    candidate pool is cut by ``eta`` between rungs (Pareto-rank order, so
    the whole proxy frontier — knee included — survives before any
    dominated design does).  Because the engine caches per entry, a
    promoted candidate pays only for the entries its new rung adds — on
    the reference 216-design suite study this reaches the exhaustive
    knee with roughly a third of the grid's fresh evaluations.

    ``initial`` bounds the starting pool: ``None`` races every point of
    a finite space (the exhaustive-coverage mode that guarantees the true
    knee is in the pool) and defaults to 64 samples on open spaces.  For
    a single-entry workload there is nothing to subsample, so the race
    collapses to one full-fidelity rung over the starting pool and
    ``initial`` becomes the only budget lever.
    """

    name = "successive-halving"
    terminates = True

    def __init__(
        self,
        eta: int = 3,
        initial: int | None = None,
        min_entries: int = 1,
        entry_growth: int = 2,
    ):
        if eta < 2:
            raise ConfigurationError(f"eta must be >= 2, got {eta}")
        if initial is not None and initial < 1:
            raise ConfigurationError(f"initial must be >= 1, got {initial}")
        if min_entries < 1:
            raise ConfigurationError(f"min_entries must be >= 1, got {min_entries}")
        if entry_growth < 2:
            raise ConfigurationError(
                f"entry_growth must be >= 2, got {entry_growth}"
            )
        self.eta = eta
        self.initial = initial
        self.min_entries = min_entries
        self.entry_growth = entry_growth
        self._rung: int = 0
        self._pool: tuple[DesignCandidate, ...] | None = None
        self._entry_schedule: tuple[int, ...] | None = None
        self._done = False

    def setup(
        self, space: SearchSpace, workload: Workload, rng: random.Random
    ) -> None:
        super().setup(space, workload, rng)
        counts = [min(self.min_entries, self.total_entries)]
        while counts[-1] < self.total_entries:
            counts.append(min(self.total_entries, counts[-1] * self.entry_growth))
        self._entry_schedule = tuple(counts)
        self._rung = 0
        self._done = False
        self._pool = None

    def _starting_pool(self) -> tuple[DesignCandidate, ...]:
        if self.initial is None and self.space.finite:
            return tuple(self.space.candidate_list())
        count = self.initial if self.initial is not None else 64
        seen: set[tuple] = set()
        if self.space.finite and count >= len(self.space.candidate_list()):
            return tuple(self.space.candidate_list())
        return tuple(self._sample_unseen(count, seen))

    def ask(self) -> Proposal | None:
        if self._done:
            return None
        if self._pool is None:
            self._pool = self._starting_pool()
            if not self._pool:
                self._done = True
                return None
        return Proposal(
            candidates=self._pool,
            entry_count=self._entry_schedule[self._rung],
            rung=self._rung,
        )

    def tell(
        self, proposal: Proposal, records: Sequence[EvaluatedDesign]
    ) -> None:
        if proposal.rung != self._rung:
            return
        if self._rung == len(self._entry_schedule) - 1:
            self._done = True  # full fidelity reached: the race is over
            return
        keep = max(1, len(self._pool) // self.eta)
        order = _promotion_order(records, objectives=self.objectives)
        self._pool = tuple(proposal.candidates[i] for i in order[:keep])
        self._rung += 1


def _promotion_order(
    records: Sequence[EvaluatedDesign], objectives: Sequence | None = None
) -> list[int]:
    """Indices of ``records`` in promotion-priority order.

    Feasible designs are peeled into successive Pareto layers (the whole
    current proxy frontier outranks every dominated design); within a
    layer, lower EDP first, then time, then label — all deterministic.
    Infeasible designs rank last, in label order.  ``objectives`` layers
    under those axes instead of the classic (time, energy) pair.
    """
    feasible = [i for i, record in enumerate(records) if record.feasible]
    infeasible = [i for i, record in enumerate(records) if not record.feasible]
    order: list[int] = []
    remaining = feasible
    while remaining:
        layer_points = pareto_frontier(
            [records[i] for i in remaining], objectives=objectives
        )
        layer_ids = {id(point) for point in layer_points}
        layer = [i for i in remaining if id(records[i]) in layer_ids]
        layer.sort(
            key=lambda i: (records[i].edp, records[i].time_s, records[i].label)
        )
        order.extend(layer)
        layer_set = set(layer)
        remaining = [i for i in remaining if i not in layer_set]
    infeasible.sort(key=lambda i: records[i].label)
    return order + infeasible


# --------------------------------------------------------------------------
# the driving loop
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class TrajectoryPoint:
    """One batch of the optimization, for evaluations-vs-quality curves."""

    batch: int
    rung: int | None
    fidelity: float  # fraction of workload entries this batch scored
    candidates: int  # batch size after key-dedupe
    fresh_query_evaluations: int  # cumulative fresh per-entry tasks so far
    archive_size: int  # full-fidelity designs archived so far
    frontier_size: int
    best_edp: float | None  # archive EDP optimum (None while archive empty)
    knee_label: str | None  # archive knee (None while archive empty)


class OptimizationLoop:
    """Drive one optimizer over one space/workload through the engine.

    The loop owns the Pareto *archive* — every full-fidelity evaluation,
    keyed by candidate key — and the stopping rules:

    * ``budget`` — stop proposing once cumulative fresh per-entry
      evaluations reach it (the batch in flight completes, so totals can
      overshoot by at most one batch; a budget smaller than the first
      full-fidelity batch leaves the archive empty, and the result's
      selections then raise like any all-infeasible search);
    * ``patience`` — stop after this many consecutive full-fidelity
      batches that leave the Pareto frontier unchanged;
    * the optimizer finishing on its own (``ask()`` returning ``None``).

    Open-ended optimizers (``terminates=False``) must set at least one of
    ``budget``/``patience``.  Everything is deterministic under ``seed``:
    the same (space, workload, optimizer, seed) yields the same candidate
    trajectory and archive, serial or parallel.

    ``objectives`` steers every frontier-driven decision — the archive
    frontier, convergence detection, mutation parent pools, and halving
    promotion ranks — under those axes (e.g. ``("time_s", "energy_j",
    "carbon_g")`` on a cost-model-priced evaluator); ``None`` keeps the
    classic (time, energy) pair bit-identically.
    """

    def __init__(
        self,
        engine: DesignSpaceSearch,
        space: SearchSpace,
        workload: Workload,
        optimizer: Optimizer,
        *,
        budget: int | None = None,
        patience: int | None = None,
        seed: int = 0,
        objectives: Sequence | None = None,
    ):
        if budget is not None and budget < 1:
            raise ConfigurationError(f"budget must be >= 1, got {budget}")
        if patience is not None and patience < 1:
            raise ConfigurationError(f"patience must be >= 1, got {patience}")
        self.engine = engine
        self.space = space
        self.workload = as_workload(workload)
        self.optimizer = optimizer
        self.budget = budget
        self.patience = patience
        self.seed = seed
        self.objectives = objectives

    def run(self, reference_label: str | None = None):
        """Run to a stopping rule; returns an
        :class:`~repro.study.OptimizationResult`."""
        # Imported here: repro.study builds on this module (the facade
        # owns the StudyResult-compatible result type).
        from repro.study import OptimizationResult

        if (
            not self.optimizer.terminates
            and self.budget is None
            and self.patience is None
        ):
            raise ConfigurationError(
                f"optimizer {self.optimizer.name!r} never finishes on its "
                "own; set budget= and/or patience="
            )
        rng = random.Random(self.seed)
        self.optimizer.objectives = self.objectives
        self.optimizer.setup(self.space, self.workload, rng)
        ordered = _ordered_entries(self.workload)
        total_entries = len(ordered)

        archive: dict[tuple, EvaluatedDesign] = {}
        trajectory: list[TrajectoryPoint] = []
        fresh_total = 0
        evaluations = 0
        workers_used = 1
        frontier_keys: set[tuple] = set()
        stalled = 0
        stop_reason = "optimizer-finished"

        batch_index = 0
        while True:
            if self.budget is not None and fresh_total >= self.budget:
                stop_reason = "budget-exhausted"
                break
            proposal = self.optimizer.ask()
            if proposal is None or not proposal.candidates:
                stop_reason = "optimizer-finished"
                break
            full_fidelity = proposal.entry_count >= total_entries
            result = self.engine.evaluate_batch(
                proposal.candidates, self._rung_workload(proposal, ordered)
            )
            fresh_total += result.query_evaluations
            workers_used = max(workers_used, result.workers_used)
            by_key = {point.candidate.key(): point for point in result.points}
            self.optimizer.tell(
                proposal,
                [by_key[candidate.key()] for candidate in proposal.candidates],
            )
            if full_fidelity:
                evaluations += result.evaluations
                for point in result.points:
                    archive.setdefault(point.candidate.key(), point)
            # One frontier pass per batch feeds both the trajectory and
            # the convergence check (the EDP optimum and the knee are
            # frontier points, so the frontier is all they need).
            frontier = pareto_frontier(
                list(archive.values()), objectives=self.objectives
            )
            trajectory.append(
                self._trajectory_point(
                    batch_index, proposal, result, len(archive),
                    frontier, fresh_total, total_entries, self.objectives,
                )
            )
            batch_index += 1
            if full_fidelity and self.patience is not None:
                keys = {point.candidate.key() for point in frontier}
                if keys == frontier_keys:
                    stalled += 1
                    if stalled >= self.patience:
                        stop_reason = "converged"
                        break
                else:
                    stalled = 0
                    frontier_keys = keys

        search = SearchResult(
            workload=self.workload,
            points=list(archive.values()),
            evaluations=evaluations,
            cache_hits=len(archive) - evaluations,
            workers_used=workers_used,
            query_evaluations=fresh_total,
        )
        return OptimizationResult(
            search,
            trajectory=tuple(trajectory),
            optimizer_name=self.optimizer.name,
            budget=self.budget,
            stop_reason=stop_reason,
            reference_label=reference_label,
        )

    def _rung_workload(
        self, proposal: Proposal, ordered: tuple[WeightedQuery, ...]
    ):
        """The (sub)workload a proposal evaluates against.

        Full fidelity uses the base workload itself — same aggregate
        cache keys, same entry order, bit-identical records to a grid
        sweep.  Partial fidelity evaluates the heaviest-entry prefix.
        """
        count = proposal.entry_count
        if count >= len(ordered):
            return self.workload
        if count < 1:
            raise ConfigurationError(
                f"proposal entry_count must be >= 1, got {count}"
            )
        return _EntrySubset(
            name=f"{self.workload.name}[:{count}]",
            entries=ordered[:count],
            base_key=self.workload.cache_key(),
            count=count,
        )

    @staticmethod
    def _trajectory_point(
        batch_index, proposal, result, archive_size,
        frontier, fresh_total, total_entries, objectives=None,
    ) -> TrajectoryPoint:
        return TrajectoryPoint(
            batch=batch_index,
            rung=proposal.rung,
            fidelity=min(1.0, proposal.entry_count / total_entries),
            candidates=len(result.points),
            fresh_query_evaluations=fresh_total,
            archive_size=archive_size,
            frontier_size=len(frontier),
            best_edp=edp_optimal(frontier).edp if frontier else None,
            knee_label=(
                knee_point(frontier, objectives=objectives).label
                if frontier
                else None
            ),
        )


# --------------------------------------------------------------------------
# registry
# --------------------------------------------------------------------------
_OPTIMIZERS = {
    "random": RandomSearch,
    "local": LocalSearch,
    "evolutionary": LocalSearch,
    "successive-halving": SuccessiveHalving,
    "sha": SuccessiveHalving,
    "halving": SuccessiveHalving,
}


def build_optimizer(spec: "Optimizer | str", **kwargs) -> Optimizer:
    """Resolve an optimizer instance from a name (or pass one through).

    ``kwargs`` are forwarded to the named optimizer's constructor;
    passing both an instance and kwargs is rejected to avoid silently
    ignoring configuration.
    """
    if isinstance(spec, Optimizer):
        if kwargs:
            raise ConfigurationError(
                "optimizer options were passed alongside an Optimizer "
                f"instance; configure {type(spec).__name__} directly instead"
            )
        return spec
    if not isinstance(spec, str) or spec not in _OPTIMIZERS:
        known = ", ".join(sorted(set(_OPTIMIZERS)))
        raise ConfigurationError(
            f"unknown optimizer {spec!r} (expected an Optimizer instance "
            f"or one of: {known})"
        )
    return _OPTIMIZERS[spec](**kwargs)
