"""Pareto analysis of evaluated design points.

The paper reads its trade-off curves three ways, all supported here on raw
(time, energy) points rather than normalized curves:

* the **Pareto frontier** — designs not dominated in both response time
  and energy (the "interesting" designs of Figures 1b/10/11);
* the **knee** — the frontier point of maximum perpendicular distance
  from the chord between the frontier's endpoints (Figure 11's bottleneck
  flip);
* **EDP-optimal** — the minimum energy-delay-product design (Section 6's
  balanced pick);
* **SLA-constrained** — the minimum-energy design whose response time
  meets a target (Section 6: "fix an acceptable performance loss, then
  choose the least-energy design still meeting it");
* **latency-SLA-constrained** — the timed-trace variant: the
  minimum-energy design whose *per-query* response time under queueing
  (worst case by default, or a percentile) meets a target — the binding
  constraint for interactive service sizing (Section 2's delayed-
  analytics citations).

All selectors break ties deterministically (lower time, then label) so
repeated sweeps — serial or parallel — pick the same design.

:func:`pareto_frontier` and :func:`knee_point` additionally accept an
``objectives=`` list (names or :class:`~repro.search.objectives
.Objective` instances) to select in more than two dimensions — e.g.
``("time_s", "energy_j", "price_usd")`` over cost-model-priced records;
the default ``None`` keeps the classic (time, energy) code paths
bit-identical.  The N-dimensional machinery (and the
``best_under_budget`` / ``best_under_carbon`` TCO selectors) lives in
:mod:`repro.search.objectives`.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ModelError
from repro.search.evaluators import EvaluatedDesign

__all__ = [
    "pareto_frontier",
    "knee_point",
    "edp_optimal",
    "best_under_sla",
    "best_under_latency_sla",
    "best_under_degraded_sla",
]


def _feasible(points: Sequence[EvaluatedDesign]) -> list[EvaluatedDesign]:
    return [p for p in points if p.feasible]


def pareto_frontier(
    points: Sequence[EvaluatedDesign],
    objectives: Sequence | None = None,
) -> list[EvaluatedDesign]:
    """Non-dominated points, sorted by ascending response time.

    A point dominates another when it is no worse on both axes and
    strictly better on at least one.  Exact (time, energy) duplicates
    keep only their **first representative by label order** — the sort
    below ties by label, and the explicit dedupe skip drops every later
    duplicate — so the frontier stays a function of the design space,
    not of enumeration order.

    ``objectives`` selects under any axis list instead
    (:func:`~repro.search.objectives.frontier_nd`, which preserves both
    the duplicate rule and — for the default pair — this sweep's exact
    output); ``None`` keeps this classic two-objective path.
    """
    if objectives is not None:
        from repro.search.objectives import frontier_nd

        return frontier_nd(points, objectives)
    feasible = _feasible(points)
    if not feasible:
        return []
    ordered = sorted(feasible, key=lambda p: (p.time_s, p.energy_j, p.label))
    frontier: list[EvaluatedDesign] = []
    best_energy = float("inf")
    previous: tuple[float, float] | None = None
    for point in ordered:
        pair = (point.time_s, point.energy_j)
        if pair == previous:
            continue  # exact duplicate: the min-label representative won
        previous = pair
        if point.energy_j < best_energy:
            frontier.append(point)
            best_energy = point.energy_j
    return frontier


def edp_optimal(points: Sequence[EvaluatedDesign]) -> EvaluatedDesign:
    """The minimum energy-delay-product design."""
    feasible = _feasible(points)
    if not feasible:
        raise ModelError("no feasible design to pick an EDP optimum from")
    return min(feasible, key=lambda p: (p.edp, p.time_s, p.label))


def knee_point(
    points: Sequence[EvaluatedDesign],
    objectives: Sequence | None = None,
) -> EvaluatedDesign:
    """The frontier point farthest from the endpoint chord.

    Both axes are normalized to [0, 1] over the frontier's span first so
    seconds and joules weigh equally.  Degenerate frontiers (fewer than
    three points, or zero span) fall back to the EDP optimum.

    ``objectives`` generalizes the chord to the endpoint *simplex* — the
    hyperplane through the frontier's per-axis minimizers
    (:func:`~repro.search.objectives.knee_nd`); ``None`` keeps this
    classic two-objective path.
    """
    if objectives is not None:
        from repro.search.objectives import knee_nd

        return knee_nd(points, objectives)
    frontier = pareto_frontier(points)
    if not frontier:
        raise ModelError("no feasible design to locate a knee on")
    if len(frontier) < 3:
        return edp_optimal(frontier)
    t_low, t_high = frontier[0].time_s, frontier[-1].time_s
    e_low = min(p.energy_j for p in frontier)
    e_high = max(p.energy_j for p in frontier)
    t_span = t_high - t_low
    e_span = e_high - e_low
    if t_span <= 0 or e_span <= 0:
        return edp_optimal(frontier)

    def normalized(p: EvaluatedDesign) -> tuple[float, float]:
        return (p.time_s - t_low) / t_span, (p.energy_j - e_low) / e_span

    x0, y0 = normalized(frontier[0])
    x1, y1 = normalized(frontier[-1])
    dx, dy = x1 - x0, y1 - y0
    length = (dx * dx + dy * dy) ** 0.5
    best, best_distance = frontier[0], -1.0
    for point in frontier:
        x, y = normalized(point)
        distance = abs(dx * (y0 - y) - (x0 - x) * dy) / length
        if distance > best_distance:
            best, best_distance = point, distance
    return best


def best_under_sla(
    points: Sequence[EvaluatedDesign], max_time_s: float
) -> EvaluatedDesign:
    """Minimum-energy design with response time within the SLA.

    Raises :class:`ModelError` when the SLA is invalid or no feasible
    design meets it; ties on energy resolve to the faster design, then to
    label order.
    """
    if max_time_s <= 0:
        raise ModelError(f"SLA must be > 0 seconds, got {max_time_s}")
    eligible = [p for p in _feasible(points) if p.time_s <= max_time_s]
    if not eligible:
        raise ModelError(
            f"no feasible design meets the {max_time_s:g}s response-time SLA"
        )
    return min(eligible, key=lambda p: (p.energy_j, p.time_s, p.label))


def best_under_latency_sla(
    points: Sequence[EvaluatedDesign], max_response_s: float, metric: str = "max"
) -> EvaluatedDesign:
    """Minimum-energy design whose per-query response time meets the SLA.

    Where :func:`best_under_sla` constrains the aggregate ``time_s`` (the
    whole workload's weighted cost), this constrains the *queueing*
    response times a timed-trace evaluation measured: ``metric`` picks
    the binding statistic from each point's
    :class:`~repro.search.evaluators.LatencyProfile` — ``"max"`` (worst
    case, the default), ``"p99"``, ``"p95"``, ``"p50"``, or ``"mean"``.
    Points without a latency profile (weights-only evaluations) are never
    eligible; if *no* point has one, that is an error pointing at the
    missing timed evaluation rather than an empty-SLA error.  Ties on
    energy resolve to the faster design, then to label order.
    """
    if max_response_s <= 0:
        raise ModelError(f"latency SLA must be > 0 seconds, got {max_response_s}")
    profiled = [p for p in _feasible(points) if p.latency is not None]
    if not profiled:
        raise ModelError(
            "no design point carries a latency profile; evaluate a timed "
            "trace (TimedTrace) through a stream-capable evaluator to get "
            "response times under queueing"
        )
    eligible = [p for p in profiled if p.latency.value(metric) <= max_response_s]
    if not eligible:
        raise ModelError(
            f"no feasible design meets the {max_response_s:g}s {metric} "
            "response-time SLA"
        )
    return min(eligible, key=lambda p: (p.energy_j, p.time_s, p.label))


def best_under_degraded_sla(
    points: Sequence[EvaluatedDesign],
    max_response_s: float,
    metric: str = "max",
    allow_drops: bool = False,
) -> EvaluatedDesign:
    """Minimum-energy design meeting the SLA *under fault injection*.

    The degraded counterpart of :func:`best_under_latency_sla`: it
    constrains each point's ``degraded_latency`` — the response-time
    profile a fault-injected trace evaluation measured — so the two
    selectors draw from disjoint populations (healthy records carry
    ``latency``, degraded ones ``degraded_latency``, never both).  A
    design that only meets its SLA while every node stays healthy fails
    here; that divergence is the degraded-mode knee this selector
    exists to find.

    By default a point that *shed* queries (``dropped_jobs > 0``) is not
    eligible no matter how fast the survivors finished — an SLA met by
    not running the work is not met.  Pass ``allow_drops=True`` to relax
    that for drop-policy studies where shedding is the point.  Points
    whose fault schedule was outright unsurvivable (coverage lost, all
    jobs dropped) arrive as infeasible records and are excluded with the
    rest of the infeasible set.  Ties on energy resolve to the faster
    design, then to label order.
    """
    if max_response_s <= 0:
        raise ModelError(f"latency SLA must be > 0 seconds, got {max_response_s}")
    profiled = [p for p in _feasible(points) if p.degraded_latency is not None]
    if not profiled:
        raise ModelError(
            "no design point carries a degraded latency profile; evaluate "
            "a fault-injected trace (TimedTrace.with_faults) through a "
            "stream-capable evaluator to get response times under failure"
        )
    if not allow_drops:
        profiled = [p for p in profiled if not p.dropped_jobs]
        if not profiled:
            raise ModelError(
                "every degraded design point shed queries; pass "
                "allow_drops=True to select among them anyway"
            )
    eligible = [
        p for p in profiled if p.degraded_latency.value(metric) <= max_response_s
    ]
    if not eligible:
        raise ModelError(
            f"no feasible design meets the {max_response_s:g}s {metric} "
            "response-time SLA under the fault schedule"
        )
    return min(eligible, key=lambda p: (p.energy_j, p.time_s, p.label))
