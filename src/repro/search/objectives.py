"""Declared objectives and N-dimensional Pareto selection.

The paper's selection rules read a two-dimensional (time, energy) point
cloud; real TCO decisions add dollars and grams of CO₂.  This module is
the generalization layer: an :class:`Objective` names one axis (where on
an :class:`~repro.search.evaluators.EvaluatedDesign` the value lives and
which direction is better), a registry maps the well-known names —
``time_s``, ``energy_j``, ``price_usd``, ``carbon_g``, ``edp`` — and the
selection functions work on any objective vector:

* :func:`dominates` — componentwise N-dimensional dominance;
* :func:`frontier_nd` — the non-dominated set under any objective list,
  with the same explicit exact-duplicate rule as the classic
  2-objective sweep (duplicates keep their first representative by
  label order), which the default configuration reproduces
  bit-identically (property-tested);
* :func:`knee_nd` — the knee generalized from max-chord-distance to
  max-distance-from-the-endpoint-simplex: each axis is normalized to
  [0, 1] over the frontier's span, the per-axis minimizers span a
  hyperplane, and the frontier point farthest from it is the knee (in
  two dimensions the simplex *is* the endpoint chord, so the classic
  knee falls out as the special case);
* :func:`best_under_budget` / :func:`best_under_carbon` — the TCO
  counterparts of the SLA selectors: the fastest feasible design whose
  price (resp. carbon) fits under a cap.

Cost-axis values come from a
:class:`~repro.costmodel.model.CostModel`-configured evaluator; selecting
on a cost objective without one is a :class:`~repro.errors.ModelError`
naming the missing configuration, never a silent empty result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ConfigurationError, ModelError
from repro.search.evaluators import EvaluatedDesign

__all__ = [
    "DEFAULT_OBJECTIVES",
    "Objective",
    "best_under_budget",
    "best_under_carbon",
    "dominates",
    "frontier_nd",
    "knee_nd",
    "objective_vector",
    "register_objective",
    "resolve_objectives",
]


@dataclass(frozen=True)
class Objective:
    """One selection axis: a name, an accessor, and a direction.

    ``accessor`` maps an :class:`EvaluatedDesign` to the raw value (by
    default ``getattr(point, name)``); ``direction`` is ``"min"`` or
    ``"max"`` — maximized axes are negated internally so dominance and
    distances always work in minimized coordinates.  ``missing_hint``
    completes the error message raised when a feasible point lacks the
    value (``None``), pointing at the configuration that produces it.
    """

    name: str
    accessor: Callable[[EvaluatedDesign], float | None] | None = None
    direction: str = "min"
    missing_hint: str = ""

    def __post_init__(self) -> None:
        if self.direction not in ("min", "max"):
            raise ConfigurationError(
                f"objective {self.name!r} direction must be 'min' or 'max', "
                f"got {self.direction!r}"
            )

    def raw_value(self, point: EvaluatedDesign) -> float | None:
        if self.accessor is not None:
            return self.accessor(point)
        return getattr(point, self.name, None)

    def value(self, point: EvaluatedDesign) -> float:
        """The minimized-coordinate value; ``None`` is a named error."""
        raw = self.raw_value(point)
        if raw is None:
            hint = f" ({self.missing_hint})" if self.missing_hint else ""
            raise ModelError(
                f"design point {point.label!r} carries no {self.name!r} "
                f"value{hint}"
            )
        return -raw if self.direction == "max" else raw


#: the registered well-known axes, by name
_REGISTRY: dict[str, Objective] = {}


def register_objective(objective: Objective, overwrite: bool = False) -> Objective:
    """Add an objective to the by-name registry (used by string specs)."""
    if not overwrite and objective.name in _REGISTRY:
        raise ConfigurationError(
            f"objective {objective.name!r} is already registered; pass "
            "overwrite=True to replace it"
        )
    _REGISTRY[objective.name] = objective
    return objective


_COST_HINT = (
    "attach a CostModel — Study.with_cost_model(...) or an evaluator's "
    "cost_model= — so evaluations are priced"
)

register_objective(Objective("time_s"))
register_objective(Objective("energy_j"))
register_objective(Objective("edp"))
register_objective(Objective("price_usd", missing_hint=_COST_HINT))
register_objective(Objective("carbon_g", missing_hint=_COST_HINT))

#: the classic paper configuration every default code path uses
DEFAULT_OBJECTIVES: tuple[str, str] = ("time_s", "energy_j")


def resolve_objectives(
    spec: Sequence[str | Objective] | None,
) -> tuple[Objective, ...]:
    """Normalize an objective spec to concrete :class:`Objective` axes.

    ``None`` means the classic (time, energy) pair; strings resolve
    through the registry; :class:`Objective` instances pass through.  At
    least two distinct axes are required — a one-axis "frontier" is just
    a minimum and should be taken directly.
    """
    if spec is None:
        spec = DEFAULT_OBJECTIVES
    resolved: list[Objective] = []
    for item in spec:
        if isinstance(item, Objective):
            resolved.append(item)
            continue
        objective = _REGISTRY.get(item)
        if objective is None:
            known = ", ".join(sorted(_REGISTRY))
            raise ConfigurationError(
                f"unknown objective {item!r} (registered: {known}; or pass "
                "an Objective instance)"
            )
        resolved.append(objective)
    names = [objective.name for objective in resolved]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate objectives in {names}")
    if len(resolved) < 2:
        raise ConfigurationError(
            "need at least two objectives to trade off; got "
            f"{names or 'none'}"
        )
    return tuple(resolved)


def objective_vector(
    point: EvaluatedDesign, objectives: Sequence[Objective]
) -> tuple[float, ...]:
    """One point's minimized-coordinate objective vector."""
    return tuple(objective.value(point) for objective in objectives)


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether vector ``a`` dominates ``b`` (minimized coordinates):
    no worse on every axis, strictly better on at least one."""
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def _feasible(points: Sequence[EvaluatedDesign]) -> list[EvaluatedDesign]:
    return [p for p in points if p.feasible]


def frontier_nd(
    points: Sequence[EvaluatedDesign],
    objectives: Sequence[str | Objective] | None = None,
) -> list[EvaluatedDesign]:
    """Non-dominated points under any objective list, first axis ascending.

    The generalization of the classic 2-objective sweep, preserving its
    two contracts exactly (property-tested equivalence):

    * exact duplicate vectors keep only their **first representative by
      label order** — an explicit dedupe step, so the frontier stays a
      function of the design space, not of enumeration order;
    * the result is sorted lexicographically by objective vector (ties
      by label), which for the default axes is ascending response time.

    A dominator is lexicographically no later than what it dominates, so
    after sorting only earlier survivors need checking.
    """
    objs = resolve_objectives(objectives)
    feasible = _feasible(points)
    if not feasible:
        return []
    decorated = sorted(
        ((objective_vector(p, objs), p.label, p) for p in feasible),
        key=lambda item: (item[0], item[1]),
    )
    frontier: list[EvaluatedDesign] = []
    kept_vectors: list[tuple[float, ...]] = []
    previous: tuple[float, ...] | None = None
    for vector, _, point in decorated:
        if vector == previous:
            continue  # exact duplicate: the min-label representative won
        previous = vector
        if not any(dominates(kept, vector) for kept in kept_vectors):
            frontier.append(point)
            kept_vectors.append(vector)
    return frontier


def _edp_rule(frontier: Sequence[EvaluatedDesign]) -> EvaluatedDesign:
    # The degenerate-knee fallback, identical to pareto.edp_optimal on an
    # all-feasible frontier (inlined here: pareto imports this module).
    return min(frontier, key=lambda p: (p.edp, p.time_s, p.label))


def knee_nd(
    points: Sequence[EvaluatedDesign],
    objectives: Sequence[str | Objective] | None = None,
) -> EvaluatedDesign:
    """The frontier point farthest from the endpoint simplex.

    Every axis is normalized to [0, 1] over the frontier's span; the N
    per-axis minimizers are the frontier's endpoints, and the knee is
    the frontier point of maximum distance from the hyperplane they
    span.  With two objectives that hyperplane is the endpoint chord —
    the classic knee.  Degenerate frontiers (fewer than N+1 points, a
    zero-span axis, or a singular endpoint simplex) fall back to the
    EDP optimum, mirroring the 2-objective rule.
    """
    objs = resolve_objectives(objectives)
    frontier = frontier_nd(points, objs)
    if not frontier:
        raise ModelError("no feasible design to locate a knee on")
    if len(frontier) <= len(objs):
        return _edp_rule(frontier)
    vectors = [objective_vector(p, objs) for p in frontier]
    lows = [min(v[i] for v in vectors) for i in range(len(objs))]
    highs = [max(v[i] for v in vectors) for i in range(len(objs))]
    spans = [high - low for low, high in zip(lows, highs)]
    if any(span <= 0 for span in spans):
        return _edp_rule(frontier)
    normalized = [
        tuple((v[i] - lows[i]) / spans[i] for i in range(len(objs)))
        for v in vectors
    ]
    if len(objs) == 2:
        return _knee_2d(frontier, normalized)
    return _knee_simplex(frontier, normalized)


def _knee_2d(
    frontier: Sequence[EvaluatedDesign],
    normalized: Sequence[tuple[float, ...]],
) -> EvaluatedDesign:
    """Max perpendicular distance from the chord between the sort ends.

    The frontier is monotone under two objectives (first axis ascending,
    second descending), so the lexicographic ends are exactly the
    per-axis minimizers — the same chord, arithmetic and tie-breaks, as
    the classic knee.
    """
    x0, y0 = normalized[0]
    x1, y1 = normalized[-1]
    dx, dy = x1 - x0, y1 - y0
    length = (dx * dx + dy * dy) ** 0.5
    best, best_distance = frontier[0], -1.0
    for point, (x, y) in zip(frontier, normalized):
        distance = abs(dx * (y0 - y) - (x0 - x) * dy) / length
        if distance > best_distance:
            best, best_distance = point, distance
    return best


def _knee_simplex(
    frontier: Sequence[EvaluatedDesign],
    normalized: Sequence[tuple[float, ...]],
) -> EvaluatedDesign:
    """Max distance from the hyperplane through the per-axis minimizers."""
    import numpy as np

    dims = len(normalized[0])
    endpoints = []
    for axis in range(dims):
        index = min(
            range(len(frontier)),
            key=lambda i: (normalized[i][axis], normalized[i], frontier[i].label),
        )
        endpoints.append(normalized[index])
    matrix = np.array(endpoints, dtype=float)
    try:
        # the hyperplane a·x = 1 through the N endpoints
        coeffs = np.linalg.solve(matrix, np.ones(dims))
    except np.linalg.LinAlgError:
        return _edp_rule(frontier)  # coincident/degenerate endpoints
    norm = float(np.linalg.norm(coeffs))
    if norm <= 0 or not np.isfinite(norm):
        return _edp_rule(frontier)
    best, best_distance = frontier[0], -1.0
    for point, vector in zip(frontier, normalized):
        distance = abs(float(np.dot(coeffs, vector)) - 1.0) / norm
        if distance > best_distance:
            best, best_distance = point, distance
    return best


def best_under_budget(
    points: Sequence[EvaluatedDesign], max_usd: float
) -> EvaluatedDesign:
    """The fastest feasible design whose price fits the budget.

    The TCO counterpart of the SLA selectors: cap dollars, optimize
    performance.  Ties on time resolve to lower energy, then label.
    Raises :class:`ModelError` when the budget is invalid, no point
    carries a price (no :class:`~repro.costmodel.model.CostModel` was
    configured), or nothing fits.
    """
    if max_usd <= 0:
        raise ModelError(f"budget must be > 0 USD, got {max_usd}")
    priced = [p for p in _feasible(points) if p.price_usd is not None]
    if not priced:
        raise ModelError(f"no design point carries a price; {_COST_HINT}")
    eligible = [p for p in priced if p.price_usd <= max_usd]
    if not eligible:
        raise ModelError(
            f"no feasible design fits the ${max_usd:g} budget"
        )
    return min(eligible, key=lambda p: (p.time_s, p.energy_j, p.label))


def best_under_carbon(
    points: Sequence[EvaluatedDesign], max_g: float
) -> EvaluatedDesign:
    """The fastest feasible design within a carbon cap (gCO₂).

    Ties on time resolve to lower energy, then label; raises
    :class:`ModelError` when the cap is invalid, no point carries a
    carbon value, or nothing fits.
    """
    if max_g <= 0:
        raise ModelError(f"carbon cap must be > 0 gCO₂, got {max_g}")
    priced = [p for p in _feasible(points) if p.carbon_g is not None]
    if not priced:
        raise ModelError(f"no design point carries a carbon value; {_COST_HINT}")
    eligible = [p for p in priced if p.carbon_g <= max_g]
    if not eligible:
        raise ModelError(
            f"no feasible design fits the {max_g:g} gCO₂ carbon cap"
        )
    return min(eligible, key=lambda p: (p.time_s, p.energy_j, p.label))
