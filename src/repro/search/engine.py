"""The parallel, memoized design-space search engine.

:class:`DesignSpaceSearch` evaluates every point of a
:class:`~repro.search.grid.DesignGrid` (or an explicit candidate list)
through a pluggable evaluator, with two performance levers:

* **memoization** — every result, including infeasible points, lands in a
  keyed :class:`~repro.search.cache.EvaluationCache`; a repeated sweep
  performs zero new evaluations;
* **parallelism** — cache misses fan out over a ``multiprocessing`` pool
  in deterministic chunks.  Serial and parallel runs funnel through the
  same :func:`~repro.search.evaluators.evaluate_design`, so their results
  are identical point for point.

Searches accept any :class:`~repro.workloads.protocol.Workload` — a bare
join spec, a :class:`~repro.workloads.suite.WorkloadSuite`, an
arrival-trace mix — keyed into the cache by the workload's own
``cache_key()``, so multi-query mixes are memoized and fanned out exactly
like single joins.  The resulting :class:`SearchResult` carries the
evaluated points in grid order plus the paper's selection rules (Pareto
frontier, knee, EDP optimum, SLA-constrained best).
"""

from __future__ import annotations

import math
import multiprocessing
import pickle
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro.errors import ConfigurationError, ModelError
from repro.search.cache import EvaluationCache
from repro.search.evaluators import (
    EvaluatedDesign,
    ModelEvaluator,
    SearchEvaluator,
    evaluate_chunk,
    evaluate_design,
)
from repro.search.grid import DesignCandidate, DesignGrid, unique_labels
from repro.search.pareto import best_under_sla, edp_optimal, knee_point, pareto_frontier
from repro.workloads.protocol import Workload, as_workload
from repro.workloads.queries import JoinWorkloadSpec

__all__ = ["DesignSpaceSearch", "SearchResult"]


@dataclass
class SearchResult:
    """Outcome of one :meth:`DesignSpaceSearch.search` call."""

    workload: Workload
    points: list[EvaluatedDesign] = field(repr=False)
    #: fresh evaluator calls performed by this search (0 on a cached re-sweep)
    evaluations: int = 0
    #: points served from the evaluation cache
    cache_hits: int = 0
    #: worker processes actually used (1 = serial path)
    workers_used: int = 1

    def __post_init__(self) -> None:
        self.workload = as_workload(self.workload)

    @property
    def query(self) -> JoinWorkloadSpec:
        """The sole underlying join of a single-query search (legacy API)."""
        entries = self.workload.weighted_queries()
        if len(entries) == 1:
            return entries[0].query
        raise ModelError(
            f"workload {self.workload.name!r} has {len(entries)} queries; "
            "use .workload instead of .query"
        )

    # ------------------------------------------------------------ selection
    @property
    def feasible_points(self) -> list[EvaluatedDesign]:
        return [p for p in self.points if p.feasible]

    @property
    def infeasible_points(self) -> list[EvaluatedDesign]:
        return [p for p in self.points if not p.feasible]

    def pareto_frontier(self) -> list[EvaluatedDesign]:
        """Non-dominated (time, energy) points, fastest first."""
        return pareto_frontier(self.points)

    def knee(self) -> EvaluatedDesign:
        """The frontier's knee (max distance from the endpoint chord)."""
        return knee_point(self.points)

    def edp_optimal(self) -> EvaluatedDesign:
        """The minimum energy-delay-product design."""
        return edp_optimal(self.points)

    def best_under_sla(self, max_time_s: float) -> EvaluatedDesign:
        """Minimum-energy design meeting a response-time SLA."""
        return best_under_sla(self.points, max_time_s)

    def point(self, label: str) -> EvaluatedDesign:
        for p in self.points:
            if p.label == label:
                return p
        raise ModelError(f"no design point {label!r}")

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)


class DesignSpaceSearch:
    """Enumerate, memoize, and (optionally in parallel) evaluate a grid.

    ``workers=1`` evaluates serially in-process; ``workers=n`` fans cache
    misses out over ``n`` processes in chunks of ``chunk_size`` candidates
    (default: enough chunks to give each worker about four).  Unpicklable
    evaluators (e.g. lambda-backed :class:`CallableEvaluator`) degrade to
    the serial path automatically.
    """

    def __init__(
        self,
        evaluator: SearchEvaluator | None = None,
        workers: int = 1,
        chunk_size: int | None = None,
        cache: EvaluationCache | None = None,
    ):
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        self.evaluator = evaluator if evaluator is not None else ModelEvaluator()
        self.workers = workers
        self.chunk_size = chunk_size
        self.cache = cache if cache is not None else EvaluationCache()

    # ---------------------------------------------------------------- public
    def search(
        self,
        space: DesignGrid | Iterable[DesignCandidate],
        workload: Workload | JoinWorkloadSpec,
    ) -> SearchResult:
        """Evaluate every point of ``space`` for ``workload``.

        ``workload`` is anything satisfying the
        :class:`~repro.workloads.protocol.Workload` protocol — a bare
        :class:`JoinWorkloadSpec`, a :class:`~repro.workloads.suite
        .WorkloadSuite`, an arrival-trace mix — so multi-query mixes get
        memoization and fan-out identically to single joins.  Points come
        back in enumeration order; infeasible designs are kept (with
        ``feasible=False``) so callers can report coverage.
        """
        workload = as_workload(workload)
        candidates = (
            space.candidate_list() if isinstance(space, DesignGrid) else list(space)
        )
        if not candidates:
            raise ConfigurationError("the design space is empty")
        unique_labels(candidates)

        fingerprint = self.evaluator.fingerprint()
        workload_key = workload.cache_key()
        keys = [(fingerprint, workload_key, c.key()) for c in candidates]

        resolved: dict[int, EvaluatedDesign] = {}
        missing: list[int] = []
        for index, key in enumerate(keys):
            cached = self.cache.get(key)
            if cached is None:
                missing.append(index)
            else:
                # Rebind the requested candidate: cache keys deliberately
                # ignore display labels, so a hit may carry the label of
                # the grid that populated it.
                if cached.candidate is not candidates[index]:
                    cached = replace(cached, candidate=candidates[index])
                resolved[index] = cached
        cache_hits = len(resolved)

        workers_used = 1
        if missing:
            to_evaluate = [candidates[i] for i in missing]
            fresh, workers_used = self._evaluate(to_evaluate, workload)
            for index, point in zip(missing, fresh):
                resolved[index] = point
                self.cache.put(keys[index], point)

        return SearchResult(
            workload=workload,
            points=[resolved[i] for i in range(len(candidates))],
            evaluations=len(missing),
            cache_hits=cache_hits,
            workers_used=workers_used,
        )

    # --------------------------------------------------------------- internal
    def _evaluate(
        self, candidates: Sequence[DesignCandidate], workload: Workload
    ) -> tuple[list[EvaluatedDesign], int]:
        """Evaluate uncached candidates; returns (points, workers used)."""
        workers = min(self.workers, len(candidates))
        if workers > 1 and not self._picklable(workload, candidates[0]):
            workers = 1
        if workers <= 1:
            return (
                [evaluate_design(self.evaluator, c, workload) for c in candidates],
                1,
            )

        chunk = self.chunk_size or max(1, math.ceil(len(candidates) / (workers * 4)))
        payloads = [
            (self.evaluator, workload, candidates[start : start + chunk])
            for start in range(0, len(candidates), chunk)
        ]
        context = self._context()
        with context.Pool(processes=workers) as pool:
            chunked = pool.map(evaluate_chunk, payloads)
        return [point for batch in chunked for point in batch], workers

    def _picklable(self, workload: Workload, candidate: DesignCandidate) -> bool:
        try:
            pickle.dumps((self.evaluator, workload, candidate))
            return True
        except Exception:
            return False

    @staticmethod
    def _context():
        # fork is cheapest and keeps worker imports identical to the parent;
        # fall back to the platform default where fork is unavailable.
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else None)
