"""The parallel, memoized design-space search engine.

:class:`DesignSpaceSearch` evaluates every point of a
:class:`~repro.search.grid.DesignGrid` (or an explicit candidate list)
through a pluggable evaluator.  Since the query-granularity redesign the
unit of evaluation, memoization, and parallel dispatch is **(candidate x
query entry)**, not (candidate x workload); one search executes as a
five-stage pipeline:

1. **flatten** — the workload is expanded into its ``weighted_queries()``
   entries; a suite of K joins over N candidates becomes at most N x K
   entry tasks;
2. **dedupe** — tasks are keyed by (evaluator fingerprint, entry key,
   candidate key) and identical tasks collapse to one evaluation, across
   candidates and across workloads;
3. **cache** — each surviving task consults the
   :class:`~repro.search.cache.EvaluationCache`; the workload-level
   aggregate key is kept as a derived fast path, so a fully warm design
   costs one lookup and pre-redesign caches stay valid;
4. **dispatch** — cache misses run serially or fan out in deterministic
   chunks over a persistent ``multiprocessing`` pool owned by the engine
   (lazily created, reused across ``search()`` calls, released by
   :meth:`DesignSpaceSearch.close` or the context-manager protocol);
   tasks ship grouped by candidate so evaluators can amortize
   per-candidate setup (:meth:`~repro.search.evaluators.SearchEvaluator
   .evaluate_query_batch`);
5. **aggregate** — per-entry records are weight-summed back into
   :class:`~repro.search.evaluators.EvaluatedDesign` records in entry
   order, bit-identically to the workload-granular rule (any infeasible
   entry makes the design infeasible, with the first entry's reason).

Because entries are cached under workload-independent keys
(:func:`~repro.workloads.protocol.entry_cache_key`), two mixes sharing
member joins share their computation: a suite sweep after a single-join
search performs zero fresh evaluations for the shared entry.

Searches accept any :class:`~repro.workloads.protocol.Workload` — a bare
join spec, a :class:`~repro.workloads.suite.WorkloadSuite`, an
arrival-trace mix.  *Timed* workloads
(:class:`~repro.workloads.protocol.TimedTrace`) bypass the per-entry
pipeline: arrival times couple a trace's queries, so those evaluate at
(candidate x whole trace) granularity under time-inclusive cache keys
(see :meth:`DesignSpaceSearch._search_timed`), and their records carry
response-time profiles.  The resulting :class:`SearchResult` carries the
evaluated points in grid order plus the paper's selection rules (Pareto
frontier, knee, EDP optimum, SLA-constrained best — including the
latency-SLA variant over timed records).
"""

from __future__ import annotations

import logging
import math
import multiprocessing
import pickle
import sys
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Sequence

from repro.errors import ConfigurationError, ModelError
from repro.search.cache import EvaluationCache
from repro.search.evaluators import (
    EvaluatedDesign,
    ModelEvaluator,
    SearchEvaluator,
    evaluate_entry_chunk,
    evaluate_instrumented_chunk,
    evaluate_trace_chunk,
)
from repro.search.grid import DesignCandidate, DesignGrid, unique_labels
from repro.search.objectives import best_under_budget, best_under_carbon
from repro.telemetry import get_telemetry
from repro.search.pareto import (
    best_under_degraded_sla,
    best_under_latency_sla,
    best_under_sla,
    edp_optimal,
    knee_point,
    pareto_frontier,
)
from repro.workloads.protocol import (
    WeightedQuery,
    Workload,
    as_workload,
    entry_cache_key,
    is_timed,
)
from repro.workloads.queries import JoinWorkloadSpec

__all__ = ["DEFAULT_MIN_DISPATCH_TASKS", "DesignSpaceSearch", "SearchResult"]

#: the module's logger — ``repro.search.engine``, a child of ``repro.search``
#: (handlers or caplog filters on either name observe these records)
_LOG = logging.getLogger(__name__)

#: Smallest fresh-task batch worth shipping to the worker pool.  Measured
#: on the ``BENCH_search.json`` container (2 workers, warm pool): one
#: parallel dispatch costs ~2-10 ms in IPC and chunk bookkeeping, so
#: batches under ~64 tasks never recover it — a 64-task ModelEvaluator
#: batch computes in ~3 ms serially (~40 us per point) and even 64
#: ~1.3 ms SimulatorEvaluator tasks finish faster in-process.  The
#: 1296-task campaign the benchmark tracks still wins 2.1x parallel.
DEFAULT_MIN_DISPATCH_TASKS = 64


@dataclass
class SearchResult:
    """Outcome of one :meth:`DesignSpaceSearch.search` call."""

    workload: Workload
    points: list[EvaluatedDesign] = field(repr=False)
    #: designs that needed fresh evaluator work (0 on a cached re-sweep)
    evaluations: int = 0
    #: designs served entirely from the evaluation cache
    cache_hits: int = 0
    #: worker processes actually used (1 = serial path)
    workers_used: int = 1
    #: fresh per-entry ``evaluate_query`` tasks dispatched, after dedupe
    #: (timed searches count the arrival events each fresh trace replay
    #: simulated, so the budget currency stays "query executions")
    query_evaluations: int = 0
    #: worker-pool chunks that died (worker crash, unpicklable result)
    #: and were recovered by serial in-process retry
    dispatch_retries: int = 0

    def __post_init__(self) -> None:
        self.workload = as_workload(self.workload)

    @property
    def query(self) -> JoinWorkloadSpec:
        """The sole underlying join of a single-query search (legacy API)."""
        entries = self.workload.weighted_queries()
        if len(entries) == 1:
            return entries[0].query
        raise ModelError(
            f"workload {self.workload.name!r} has {len(entries)} queries; "
            "use .workload instead of .query"
        )

    # ------------------------------------------------------------ selection
    @property
    def feasible_points(self) -> list[EvaluatedDesign]:
        return [p for p in self.points if p.feasible]

    @property
    def infeasible_points(self) -> list[EvaluatedDesign]:
        return [p for p in self.points if not p.feasible]

    def pareto_frontier(
        self, objectives: Sequence | None = None
    ) -> list[EvaluatedDesign]:
        """Non-dominated (time, energy) points, fastest first.

        ``objectives`` — names or :class:`~repro.search.objectives
        .Objective` instances, e.g. ``("time_s", "energy_j",
        "price_usd")`` — selects the frontier in those dimensions
        instead; ``None`` keeps the classic (time, energy) pair.
        """
        return pareto_frontier(self.points, objectives=objectives)

    def knee(self, objectives: Sequence | None = None) -> EvaluatedDesign:
        """The frontier's knee (max distance from the endpoint chord).

        With ``objectives`` the chord generalizes to the endpoint
        simplex through the frontier's per-axis minimizers.
        """
        return knee_point(self.points, objectives=objectives)

    def best_under_budget(self, max_usd: float) -> EvaluatedDesign:
        """Fastest design whose ``price_usd`` fits the dollar budget.

        Requires cost-model-priced points (a
        :class:`~repro.costmodel.model.CostModel` on the evaluator or
        study); raises :class:`ModelError` otherwise.
        """
        return best_under_budget(self.points, max_usd)

    def best_under_carbon(self, max_g: float) -> EvaluatedDesign:
        """Fastest design whose ``carbon_g`` fits the emission cap.

        Requires cost-model-priced points, like :meth:`best_under_budget`.
        """
        return best_under_carbon(self.points, max_g)

    def edp_optimal(self) -> EvaluatedDesign:
        """The minimum energy-delay-product design."""
        return edp_optimal(self.points)

    def best_under_sla(self, max_time_s: float) -> EvaluatedDesign:
        """Minimum-energy design meeting a response-time SLA."""
        return best_under_sla(self.points, max_time_s)

    def best_under_latency_sla(
        self, max_response_s: float, metric: str = "max"
    ) -> EvaluatedDesign:
        """Minimum-energy design meeting a per-query response-time SLA.

        Reads the :class:`~repro.search.evaluators.LatencyProfile` a
        timed-trace evaluation attached to each record — ``metric``
        selects which statistic binds (``"max"`` = worst case, the
        default; ``"p99"``, ``"p95"``, ``"p50"``, ``"mean"``).  Only
        available on searches of timed workloads.
        """
        return best_under_latency_sla(self.points, max_response_s, metric=metric)

    def best_under_degraded_sla(
        self,
        max_response_s: float,
        metric: str = "max",
        allow_drops: bool = False,
    ) -> EvaluatedDesign:
        """Minimum-energy design meeting the SLA *under fault injection*.

        Reads the ``degraded_latency`` profile a fault-injected trace
        evaluation (``TimedTrace.with_faults``) attached to each record;
        designs that shed queries are excluded unless ``allow_drops``.
        Only available on searches of faulted timed workloads.
        """
        return best_under_degraded_sla(
            self.points, max_response_s, metric=metric, allow_drops=allow_drops
        )

    def point(self, label: str) -> EvaluatedDesign:
        for p in self.points:
            if p.label == label:
                return p
        raise ModelError(f"no design point {label!r}")

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)


def _aggregate_entries(
    candidate: DesignCandidate,
    entries: Sequence[WeightedQuery],
    records: Sequence[EvaluatedDesign],
) -> EvaluatedDesign:
    """Weight-sum per-entry records into one design record.

    Bit-identical to the workload-granular rule this replaced: a
    single-entry unit-weight workload keeps its per-query record
    (prediction attached); otherwise times and energies accumulate in
    entry order, and the first infeasible entry makes the whole design
    infeasible with that entry's reason.

    Cost-model annotations weight-sum the same way — pricing is linear
    in (time, energy), so summed per-entry costs equal the cost of the
    summed totals exactly.  They aggregate only when *every* entry
    carries them (a mixed cache — some entries priced before the cost
    model was attached — must not fabricate a partial total); unpriced
    records keep ``None`` and the aggregate is bit-identical to before.
    """
    if len(entries) == 1 and entries[0].weight == 1.0:
        record = records[0]
        if record.candidate is not candidate:
            record = replace(record, candidate=candidate)
        return record
    for record in records:
        if not record.feasible:
            return EvaluatedDesign(
                candidate=candidate,
                time_s=float("inf"),
                energy_j=float("inf"),
                feasible=False,
                infeasible_reason=record.infeasible_reason,
            )
    total_time = 0.0
    total_energy = 0.0
    total_carbon = 0.0
    total_price = 0.0
    priced = bool(records)
    for entry, record in zip(entries, records):
        total_time += entry.weight * record.time_s
        total_energy += entry.weight * record.energy_j
        if record.carbon_g is None or record.price_usd is None:
            priced = False
        elif priced:
            total_carbon += entry.weight * record.carbon_g
            total_price += entry.weight * record.price_usd
    return EvaluatedDesign(
        candidate=candidate,
        time_s=total_time,
        energy_j=total_energy,
        carbon_g=total_carbon if priced else None,
        price_usd=total_price if priced else None,
    )


def _batch_tasks(
    tasks: Sequence[tuple[DesignCandidate, JoinWorkloadSpec]],
) -> list[tuple[DesignCandidate, list[JoinWorkloadSpec]]]:
    """Group consecutive same-candidate tasks into (candidate, queries).

    The task list is built candidate-major, so grouping runs of the same
    candidate preserves task order while letting evaluators amortize
    per-candidate setup across a whole batch.
    """
    batches: list[tuple[DesignCandidate, list[JoinWorkloadSpec]]] = []
    for candidate, query in tasks:
        if batches and batches[-1][0] is candidate:
            batches[-1][1].append(query)
        else:
            batches.append((candidate, [query]))
    return batches


class DesignSpaceSearch:
    """Enumerate, memoize, and (optionally in parallel) evaluate a grid.

    ``workers=1`` evaluates serially in-process; ``workers=n`` fans cache
    misses out over a persistent ``n``-process pool in chunks of
    ``chunk_size`` entry tasks (default: enough chunks to give each worker
    about four).  Batches smaller than ``min_dispatch_tasks`` stay serial
    even on a parallel engine: a :class:`~repro.search.evaluators
    .ModelEvaluator` point costs ~40 us while one pool dispatch costs
    milliseconds, so tiny batches — warm re-sweeps with a few misses, an
    optimizer's final rungs — would pay IPC for nothing (pass
    ``min_dispatch_tasks=1`` to force fan-out regardless).  The pool is
    created lazily on the first parallel dispatch and reused across
    ``search()`` calls — a :class:`~repro.study.Study` issuing many
    searches pays the spin-up once.  Release it with :meth:`close` or use
    the engine as a context manager::

        with DesignSpaceSearch(workers=4) as engine:
            engine.search(grid, suite_a)
            engine.search(grid, suite_b)  # same pool, shared entry memo

    Unpicklable evaluators (e.g. lambda-backed :class:`CallableEvaluator`)
    degrade to the serial path automatically; the pickling verdict is
    probed once and cached per engine.

    Parallel dispatch is fault tolerant at chunk granularity: a chunk
    whose worker dies mid-task or whose result cannot cross the process
    boundary (unpicklable record, corrupted pipe) is retried **once,
    serially in-process**, so one bad worker costs latency rather than
    the whole search.  Retries are logged to the ``repro.search.engine``
    logger (a child of ``repro.search``; see
    :func:`repro.telemetry.configure_logging`) and counted on
    :attr:`SearchResult.dispatch_retries`.
    ``chunk_timeout_s`` optionally bounds how long one chunk may run
    before it is declared lost and retried — the guard against the
    ``multiprocessing`` failure mode where a hard-killed worker's task
    would otherwise be awaited forever (``None``, the default, trusts
    the pool to report worker death, which it does for ordinary
    crashes).
    """

    def __init__(
        self,
        evaluator: SearchEvaluator | None = None,
        workers: int = 1,
        chunk_size: int | None = None,
        cache: EvaluationCache | None = None,
        min_dispatch_tasks: int = DEFAULT_MIN_DISPATCH_TASKS,
        chunk_timeout_s: float | None = None,
    ):
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        if min_dispatch_tasks < 1:
            raise ConfigurationError(
                f"min_dispatch_tasks must be >= 1, got {min_dispatch_tasks}"
            )
        if chunk_timeout_s is not None and chunk_timeout_s <= 0:
            raise ConfigurationError(
                f"chunk_timeout_s must be > 0, got {chunk_timeout_s}"
            )
        self.evaluator = evaluator if evaluator is not None else ModelEvaluator()
        self.workers = workers
        self.chunk_size = chunk_size
        self.min_dispatch_tasks = min_dispatch_tasks
        self.chunk_timeout_s = chunk_timeout_s
        self.cache = cache if cache is not None else EvaluationCache()
        self._pool = None
        self._evaluator_picklable: bool | None = None

    # ---------------------------------------------------------------- public
    def search(
        self,
        space: DesignGrid | Iterable[DesignCandidate],
        workload: Workload | JoinWorkloadSpec,
    ) -> SearchResult:
        """Evaluate every point of ``space`` for ``workload``.

        ``workload`` is anything satisfying the
        :class:`~repro.workloads.protocol.Workload` protocol — a bare
        :class:`JoinWorkloadSpec`, a :class:`~repro.workloads.suite
        .WorkloadSuite`, an arrival-trace mix.  Evaluation runs at
        (candidate x entry) granularity: member joins are deduped,
        memoized, and dispatched individually, then weight-summed back
        into design records (see the module docstring for the pipeline).
        Points come back in enumeration order; infeasible designs are
        kept (with ``feasible=False``) so callers can report coverage.
        """
        workload = as_workload(workload)
        candidates = (
            space.candidate_list() if isinstance(space, DesignGrid) else list(space)
        )
        if not candidates:
            raise ConfigurationError("the design space is empty")
        unique_labels(candidates)
        telemetry = get_telemetry()
        if is_timed(workload):
            with telemetry.span("search"):
                return self._search_timed(candidates, workload)

        with telemetry.span("search"):
            with telemetry.span("search.flatten"):
                fingerprint = self.evaluator.fingerprint()
                workload_key = workload.cache_key()
                entries = workload.weighted_queries()
                entry_keys = [entry_cache_key(entry.query) for entry in entries]
                candidate_keys = [c.key() for c in candidates]
                aggregate_keys = [
                    (fingerprint, workload_key, ck) for ck in candidate_keys
                ]
                # For a single join the aggregate key IS the entry key; skip
                # the redundant second lookup on that tier.
                entry_is_aggregate = (
                    len(entry_keys) == 1 and entry_keys[0] == workload_key
                )

            # --------------------------------------- aggregate fast path
            resolved: dict[int, EvaluatedDesign] = {}
            pending: list[int] = []
            with telemetry.span("search.cache"):
                for index, key in enumerate(aggregate_keys):
                    cached = self.cache.get(key)
                    if cached is None:
                        pending.append(index)
                    else:
                        # Rebind the requested candidate: cache keys
                        # deliberately ignore display labels, so a hit may
                        # carry the label of the grid that populated it.
                        if cached.candidate is not candidates[index]:
                            cached = replace(cached, candidate=candidates[index])
                        resolved[index] = cached

            # --------------------- flatten + dedupe + per-entry lookup
            entry_records: dict[tuple, EvaluatedDesign | None] = {}
            tasks: list[tuple[tuple, DesignCandidate, JoinWorkloadSpec]] = []
            with telemetry.span("search.dedupe"):
                for index in pending:
                    for position, entry_key in enumerate(entry_keys):
                        task_key = (fingerprint, entry_key, candidate_keys[index])
                        if task_key in entry_records:
                            continue  # deduped: another candidate/entry owns it
                        cached = (
                            None
                            if entry_is_aggregate
                            else self.cache.get(task_key)
                        )
                        entry_records[task_key] = cached
                        if cached is None:
                            tasks.append(
                                (
                                    task_key,
                                    candidates[index],
                                    entries[position].query,
                                )
                            )

            # -------------------------------------------------- dispatch
            workers_used = 1
            dispatch_retries = 0
            with telemetry.span("search.dispatch"):
                if tasks:
                    telemetry.count("search.dispatch.tasks", len(tasks))
                    fresh, workers_used, dispatch_retries = self._evaluate(
                        [(candidate, query) for _, candidate, query in tasks]
                    )
                    for (task_key, _, _), record in zip(tasks, fresh):
                        entry_records[task_key] = record
                        self.cache.put(task_key, record)
            fresh_keys = {task_key for task_key, _, _ in tasks}

            # ------------------------------------------------- aggregate
            evaluations = 0
            with telemetry.span("search.aggregate"):
                for index in pending:
                    task_keys = [
                        (fingerprint, entry_key, candidate_keys[index])
                        for entry_key in entry_keys
                    ]
                    point = _aggregate_entries(
                        candidates[index],
                        entries,
                        [entry_records[key] for key in task_keys],
                    )
                    resolved[index] = point
                    if any(key in fresh_keys for key in task_keys):
                        evaluations += 1
                    if not entry_is_aggregate:
                        self.cache.put(aggregate_keys[index], point)

            telemetry.count("search.runs")
            return SearchResult(
                workload=workload,
                points=[resolved[i] for i in range(len(candidates))],
                evaluations=evaluations,
                cache_hits=len(candidates) - evaluations,
                workers_used=workers_used,
                query_evaluations=len(tasks),
                dispatch_retries=dispatch_retries,
            )

    def evaluate_batch(
        self,
        candidates: Iterable[DesignCandidate],
        workload: Workload | JoinWorkloadSpec,
    ) -> SearchResult:
        """Evaluate an optimizer-proposed batch of candidates.

        The batch hook behind :class:`~repro.search.optimize
        .OptimizationLoop`: unlike :meth:`search`, the batch need not be
        curated — candidates proposed by samplers and mutators may repeat
        (same :meth:`~repro.search.grid.DesignCandidate.key`) or collide
        on display labels (two continuous DVFS states rounding to one
        label).  Duplicates by key collapse to a single point, and label
        collisions between *distinct* designs are suffixed ``~2``, ``~3``,
        ... so the underlying search stays well-formed.  Points come back
        in first-occurrence order; cache keys are exactly :meth:`search`
        keys, so optimizer evaluations and grid sweeps share one memo.
        """
        deduped: list[DesignCandidate] = []
        seen_keys: set[tuple] = set()
        label_counts: dict[str, int] = {}
        for candidate in candidates:
            key = candidate.key()
            if key in seen_keys:
                continue
            seen_keys.add(key)
            count = label_counts.get(candidate.label, 0) + 1
            label_counts[candidate.label] = count
            if count > 1:
                candidate = replace(
                    candidate, label=f"{candidate.label}~{count}"
                )
            deduped.append(candidate)
        return self.search(deduped, workload)

    # ------------------------------------------------------------ timed path
    def _search_timed(
        self, candidates: list[DesignCandidate], workload: Workload
    ) -> SearchResult:
        """Evaluate a timed workload: whole-trace replay per candidate.

        Arrival times couple a trace's queries (a query's response time
        depends on what else is in flight), so the unit of evaluation,
        memoization, and dispatch is **(candidate x trace)** — there is
        no per-entry tier.  Records are cached under
        ``(fingerprint, trace cache_key, candidate key)``; the trace's
        time-inclusive ``cache_key()`` keeps timed rows disjoint from
        every weights-only key, so the untimed path is untouched.
        """
        if not getattr(self.evaluator, "supports_timed", False):
            raise ConfigurationError(
                f"evaluator {type(self.evaluator).__name__} cannot simulate "
                f"arrival times, so the timed workload {workload.name!r} "
                "cannot be scored on response time under queueing.  Use a "
                "stream-capable evaluator (e.g. SimulatorEvaluator), or "
                "evaluate the weights-only projection "
                "(trace.weights_only())."
            )
        telemetry = get_telemetry()
        fingerprint = self.evaluator.fingerprint()
        workload_key = workload.cache_key()
        keys = [(fingerprint, workload_key, c.key()) for c in candidates]

        resolved: dict[int, EvaluatedDesign] = {}
        tasks: list[tuple[tuple, DesignCandidate]] = []
        task_keys: set[tuple] = set()
        pending: list[int] = []
        with telemetry.span("search.cache"):
            for index, key in enumerate(keys):
                cached = self.cache.get(key)
                if cached is not None:
                    if cached.candidate is not candidates[index]:
                        cached = replace(cached, candidate=candidates[index])
                    resolved[index] = cached
                    continue
                pending.append(index)
                if key not in task_keys:  # dedupe: equal-key candidates share one replay
                    task_keys.add(key)
                    tasks.append((key, candidates[index]))

        fresh: dict[tuple, EvaluatedDesign] = {}
        workers_used = 1
        dispatch_retries = 0
        with telemetry.span("search.dispatch"):
            if tasks:
                telemetry.count("search.dispatch.traces", len(tasks))
                records, workers_used, dispatch_retries = self._evaluate_timed(
                    workload, [candidate for _, candidate in tasks]
                )
                for (key, _), record in zip(tasks, records):
                    fresh[key] = record
                    self.cache.put(key, record)
        with telemetry.span("search.aggregate"):
            for index in pending:
                record = fresh[keys[index]]
                if record.candidate is not candidates[index]:
                    record = replace(record, candidate=candidates[index])
                resolved[index] = record

        telemetry.count("search.timed_runs")
        num_events = len(workload.schedule())
        return SearchResult(
            workload=workload,
            points=[resolved[i] for i in range(len(candidates))],
            evaluations=len(pending),
            cache_hits=len(candidates) - len(pending),
            workers_used=workers_used,
            query_evaluations=len(tasks) * num_events,
            dispatch_retries=dispatch_retries,
        )

    def _evaluate_timed(
        self, workload: Workload, candidates: Sequence[DesignCandidate]
    ) -> tuple[list[EvaluatedDesign], int, int]:
        """Replay the trace on uncached candidates; (records, workers,
        chunk retries).

        The cheap-batch threshold counts *simulated jobs* (candidates x
        arrival events), not candidates: one trace replay costs roughly
        one simulator run per event, so a 4-candidate x 32-event batch is
        real work worth shipping to the pool.

        Both paths funnel through
        :meth:`~repro.search.evaluators.SearchEvaluator
        .evaluate_trace_batch` (serially as one batch, in parallel as one
        batch per chunk), so a stream-capable evaluator advances the
        whole batch on one multiplexed event loop instead of replaying
        designs one by one — with records guaranteed identical to the
        per-candidate serial loop.
        """
        num_events = len(workload.schedule())
        workers = min(self.workers, len(candidates))
        if len(candidates) * num_events < self.min_dispatch_tasks:
            workers = 1
        if workers > 1 and not self._dispatchable((candidates[0], workload)):
            workers = 1
        if workers <= 1:
            return self.evaluator.evaluate_trace_batch(
                workload, list(candidates)
            ), 1, 0

        chunk = self.chunk_size or max(1, math.ceil(len(candidates) / (workers * 4)))
        payloads = [
            (self.evaluator, workload, list(candidates[start : start + chunk]))
            for start in range(0, len(candidates), chunk)
        ]
        chunked, retries = self._map_with_retry(evaluate_trace_chunk, payloads)
        return [record for batch in chunked for record in batch], workers, retries

    # ------------------------------------------------------- pool lifecycle
    def close(self) -> None:
        """Release the persistent worker pool (no-op if never created).

        Idempotent and safe at any point of the engine's life — including
        a half-constructed engine (``__init__`` raised before ``_pool``
        existed) and repeated calls.  The engine stays usable: the next
        parallel dispatch lazily creates a fresh pool.
        """
        pool = getattr(self, "_pool", None)
        self._pool = None
        if pool is not None:
            pool.close()
            pool.join()

    @property
    def pool_active(self) -> bool:
        """Whether the persistent worker pool is currently alive."""
        return self._pool is not None

    def __enter__(self) -> "DesignSpaceSearch":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):
        # A pool-owning engine collected at interpreter exit must not spray
        # ImportError/AttributeError noise: module globals (multiprocessing
        # internals included) may already be torn down, so joining worker
        # handshakes is unsafe.  terminate() only signals the daemons —
        # which die with the interpreter anyway — and everything is wrapped
        # because even attribute access can fail mid-shutdown.
        try:
            if sys.is_finalizing():
                pool = getattr(self, "_pool", None)
                self._pool = None
                if pool is not None:
                    pool.terminate()
            else:
                self.close()
        except Exception:
            pass

    # --------------------------------------------------------------- internal
    def _evaluate(
        self, tasks: Sequence[tuple[DesignCandidate, JoinWorkloadSpec]]
    ) -> tuple[list[EvaluatedDesign], int, int]:
        """Evaluate uncached entry tasks; (records, workers, chunk retries)."""
        workers = min(self.workers, len(tasks))
        if len(tasks) < self.min_dispatch_tasks:
            workers = 1  # cheap batch: IPC would cost more than the work
        if workers > 1 and not self._dispatchable(tasks[0]):
            workers = 1
        if workers <= 1:
            records: list[EvaluatedDesign] = []
            for candidate, queries in _batch_tasks(tasks):
                records.extend(
                    self.evaluator.evaluate_query_batch(candidate, queries)
                )
            return records, 1, 0

        # Chunk over whole (candidate, queries) batches — never through
        # one — so a candidate's per-batch setup amortization survives
        # chunk boundaries; chunk_size counts tasks, rounded up to the
        # enclosing batch.
        chunk = self.chunk_size or max(1, math.ceil(len(tasks) / (workers * 4)))
        payloads = []
        current: list = []
        current_tasks = 0
        for batch in _batch_tasks(tasks):
            current.append(batch)
            current_tasks += len(batch[1])
            if current_tasks >= chunk:
                payloads.append((self.evaluator, current))
                current, current_tasks = [], 0
        if current:
            payloads.append((self.evaluator, current))
        chunked, retries = self._map_with_retry(evaluate_entry_chunk, payloads)
        return [record for batch in chunked for record in batch], workers, retries

    def _map_with_retry(
        self, fn: Callable, payloads: Sequence[tuple]
    ) -> tuple[list, int]:
        """``pool.map`` with per-chunk fault tolerance; (results, retries).

        Chunks dispatch individually (``apply_async``) so one dying chunk
        does not poison the rest of the batch: a chunk whose worker
        crashes, whose result cannot be unpickled, or — with
        ``chunk_timeout_s`` set — whose worker went silent past the
        deadline is recomputed **once, serially in-process**.  The chunk
        functions already map per-design infeasibility to records, so
        anything surfacing here is infrastructure failure; if the serial
        retry fails too, that error propagates — it is not the pool's
        fault.

        With telemetry enabled at dispatch time, every chunk ships
        wrapped in :func:`~repro.search.evaluators
        .evaluate_instrumented_chunk`: the worker measures the chunk
        into a captured registry (per-chunk ``worker.chunk`` span,
        evaluator/simulator counters) and returns ``(records,
        snapshot)``; the snapshots merge back here, nested under the
        open ``search.dispatch`` span.  The decision rides in the
        payload — a pool forked before ``telemetry.enable()`` still
        measures — and the in-process retry captures too, so it cannot
        corrupt this registry's span stack.
        """
        telemetry = get_telemetry()
        instrumented = telemetry.enabled
        if instrumented:
            call = evaluate_instrumented_chunk
            wrapped: list = [(fn, payload) for payload in payloads]
        else:
            call = fn
            wrapped = list(payloads)
        handles = [
            self._get_pool().apply_async(call, (payload,)) for payload in wrapped
        ]
        results: list = []
        retries = 0
        for payload, handle in zip(wrapped, handles):
            try:
                results.append(handle.get(self.chunk_timeout_s))
            except Exception as exc:
                retries += 1
                inner = payload[1] if instrumented else payload
                _LOG.warning(
                    "worker chunk of %d tasks failed (%s: %s); "
                    "retrying serially in-process",
                    len(inner[-1]),
                    type(exc).__name__,
                    exc,
                )
                results.append(call(payload))
        if instrumented:
            unwrapped = []
            for records, snap in results:
                telemetry.merge(snap)
                unwrapped.append(records)
            results = unwrapped
            telemetry.count("search.dispatch.chunks", len(payloads))
            if retries:
                telemetry.count("search.dispatch.retries", retries)
        return results, retries

    def _get_pool(self):
        """The persistent worker pool, created on first parallel dispatch."""
        if self._pool is None:
            self._pool = self._context().Pool(processes=self.workers)
        return self._pool

    def _dispatchable(self, task: tuple[DesignCandidate, JoinWorkloadSpec]) -> bool:
        """Whether tasks can cross a process boundary.

        The evaluator's verdict is probed once and cached per engine
        (evaluators are fixed at construction); the first task — a frozen
        candidate/query pair — is probed per search, which is cheap and
        guards exotic custom specs.
        """
        if self._evaluator_picklable is None:
            try:
                pickle.dumps(self.evaluator)
                self._evaluator_picklable = True
            except Exception:
                self._evaluator_picklable = False
        if not self._evaluator_picklable:
            return False
        try:
            pickle.dumps(task)
            return True
        except Exception:
            return False

    @staticmethod
    def _context():
        # fork is cheapest and keeps worker imports identical to the parent;
        # fall back to the platform default where fork is unavailable.
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else None)
