"""Parallel Pareto search over cluster design spaces (Sections 5.4-5.5).

The paper's design-space exercise (Section 5.4) sweeps the Beefy/Wimpy
mixes of an 8-node cluster with the analytical model and reads the
resulting energy-vs-performance trade-off curves (Section 5.5 and
Figures 1b/10/11): which designs are worth considering at all, where the
knee sits, and which design is cheapest under a performance target.

This subsystem scales that exercise beyond the paper's single axis:

* :mod:`repro.search.grid` — multi-dimensional design grids: node-type
  pair x cluster size x Beefy/Wimpy split x DVFS state x execution mode
  (:class:`DesignGrid`, :class:`DesignCandidate`);
* :mod:`repro.search.evaluators` — pluggable point evaluators: the
  Section 5.3 analytical model (:class:`ModelEvaluator`), the fluid
  simulator (:class:`SimulatorEvaluator`), or any legacy callable
  (:class:`CallableEvaluator`);
* :mod:`repro.search.cache` — keyed memoization of evaluations
  (:class:`EvaluationCache`): repeated sweeps are near-free;
* :mod:`repro.search.engine` — :class:`DesignSpaceSearch`, which fans
  cache misses out over a ``multiprocessing`` pool with chunked dispatch
  and returns a :class:`SearchResult`;
* :mod:`repro.search.pareto` — frontier extraction, knee location,
  EDP-optimal and SLA-constrained selection (the Section 5.5/6 reading
  rules applied to raw (time, energy) points).

Every entry point accepts any :class:`~repro.workloads.protocol.Workload`
— a bare join spec, a weighted :class:`~repro.workloads.suite
.WorkloadSuite`, an arrival-trace mix — and the classic
:class:`~repro.core.design_space.DesignSpaceExplorer` delegates its
sweeps here, so the paper's figures, workload-level studies, and the
extended grids all run on the same engine.  The fluent
:class:`~repro.study.Study` facade is the friendly front door.

>>> from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
>>> from repro.search import DesignGrid, DesignSpaceSearch
>>> from repro.workloads.queries import section54_join
>>> grid = DesignGrid.paper_axis(CLUSTER_V_NODE, WIMPY_LAPTOP_B, 8)
>>> result = DesignSpaceSearch().search(grid, section54_join())
>>> len(result.pareto_frontier()) >= 1
True
"""

from repro.search.cache import CacheStats, EvaluationCache
from repro.search.engine import DesignSpaceSearch, SearchResult
from repro.search.evaluators import (
    CallableEvaluator,
    EvaluatedDesign,
    ModelEvaluator,
    SearchEvaluator,
    SimulatorEvaluator,
)
from repro.search.grid import DesignCandidate, DesignGrid
from repro.search.pareto import best_under_sla, edp_optimal, knee_point, pareto_frontier

__all__ = [
    "CacheStats",
    "CallableEvaluator",
    "DesignCandidate",
    "DesignGrid",
    "DesignSpaceSearch",
    "EvaluatedDesign",
    "EvaluationCache",
    "ModelEvaluator",
    "SearchEvaluator",
    "SearchResult",
    "SimulatorEvaluator",
    "best_under_sla",
    "edp_optimal",
    "knee_point",
    "pareto_frontier",
]
