"""Parallel Pareto search over cluster design spaces (Sections 5.4-5.5).

The paper's design-space exercise (Section 5.4) sweeps the Beefy/Wimpy
mixes of an 8-node cluster with the analytical model and reads the
resulting energy-vs-performance trade-off curves (Section 5.5 and
Figures 1b/10/11): which designs are worth considering at all, where the
knee sits, and which design is cheapest under a performance target.

This subsystem scales that exercise beyond the paper's single axis:

* :mod:`repro.search.grid` — multi-dimensional design grids: node-type
  pair x cluster size x Beefy/Wimpy split x DVFS state x execution mode
  (:class:`DesignGrid`, :class:`DesignCandidate`);
* :mod:`repro.search.evaluators` — pluggable point evaluators: the
  Section 5.3 analytical model (:class:`ModelEvaluator`), the fluid
  simulator (:class:`SimulatorEvaluator`), or any legacy callable
  (:class:`CallableEvaluator`);
* :mod:`repro.search.cache` — keyed memoization of evaluations
  (:class:`EvaluationCache`): repeated sweeps are near-free;
* :mod:`repro.search.engine` — :class:`DesignSpaceSearch`, which fans
  cache misses out over a persistent ``multiprocessing`` pool with
  chunked dispatch and returns a :class:`SearchResult`;
* :mod:`repro.search.pareto` — frontier extraction, knee location,
  EDP-optimal and SLA-constrained selection (the Section 5.5/6 reading
  rules applied to raw (time, energy) points);
* :mod:`repro.search.space` — sampleable design spaces
  (:class:`SearchSpace`): discrete :class:`ChoiceAxis` dimensions derived
  from grids plus open :class:`RangeAxis` dimensions (continuous DVFS
  ladders, wide size ranges) no grid could enumerate;
* :mod:`repro.search.optimize` — budgeted adaptive optimizers over those
  spaces (:class:`RandomSearch`, :class:`SuccessiveHalving`,
  :class:`LocalSearch`) driven by an :class:`OptimizationLoop`.

How a search executes
---------------------

One :meth:`DesignSpaceSearch.search` call runs a five-stage pipeline at
**(candidate x query entry)** granularity:

1. **flatten** — the workload is expanded into its weighted
   ``weighted_queries()`` entries, so a suite of K joins over N
   candidates is at most N x K entry tasks, never N opaque suite
   evaluations;
2. **dedupe** — tasks are keyed by (evaluator fingerprint, entry key,
   candidate key); identical tasks collapse to a single evaluation
   across candidates and workloads;
3. **cache** — surviving tasks consult the :class:`EvaluationCache`
   per entry (the workload-level aggregate key remains a derived fast
   path, so a fully warm sweep costs one lookup per design), and two
   mixes sharing member joins share their cached computation;
4. **dispatch** — cache misses run serially, or in deterministic chunks
   over the engine's persistent worker pool (created lazily, reused
   across searches, released via :meth:`DesignSpaceSearch.close` or the
   context-manager protocol); tasks ship grouped by candidate so
   evaluators like :class:`SimulatorEvaluator` amortize per-candidate
   setup across a batch;
5. **aggregate** — per-entry records are weight-summed back into
   :class:`EvaluatedDesign` records in entry order, bit-identically to
   the workload-granular rule (any infeasible entry makes the design
   infeasible with the first such entry's reason).

Every entry point accepts any :class:`~repro.workloads.protocol.Workload`
— a bare join spec, a weighted :class:`~repro.workloads.suite
.WorkloadSuite`, an arrival-trace mix — and the classic
:class:`~repro.core.design_space.DesignSpaceExplorer` delegates its
sweeps here, so the paper's figures, workload-level studies, and the
extended grids all run on the same engine.  The fluent
:class:`~repro.study.Study` facade is the friendly front door.

The timed path
--------------

A *timed* workload (:class:`~repro.workloads.protocol.TimedTrace`,
recognized structurally by :func:`~repro.workloads.protocol.is_timed`
via its ``schedule()`` accessor) short-circuits the per-entry pipeline
above: arrival times couple a trace's queries — a query's response time
depends on what else is in flight — so flattening to independent entry
tasks would erase exactly the queueing the trace exists to measure.
Instead the unit of evaluation, memoization, and dispatch is
**(candidate x whole trace)**:

1. **gate** — the evaluator must be stream-capable
   (``supports_timed``); only :class:`SimulatorEvaluator` ships it, and
   the engine raises rather than silently degrading to weights;
2. **cache** — records are keyed by (evaluator fingerprint, the trace's
   *time-inclusive* ``cache_key()``, candidate key), so timed rows never
   collide with — and are never served from — weights-only rows, and the
   weights-only path keeps its existing keys bit for bit;
3. **dispatch** — cache misses are evaluated as a *batch*
   (:meth:`SimulatorEvaluator.evaluate_trace_batch
   <repro.search.evaluators.SimulatorEvaluator.evaluate_trace_batch>`):
   every candidate's trace replay advances together on one
   event-multiplexed loop
   (:func:`~repro.simulator.multiplex.run_multiplexed`), which batches
   the per-event simulator math — max-min fair allocation, volume
   decrements, utilization → power → energy integration — into numpy
   kernels across candidates while reproducing the serial
   :meth:`~repro.pstore.simulated.SimulatedPStore.run_trace` oracle bit
   for bit (~15× on `BENCH_stream.json`; property-tested in
   ``tests/simulator/test_multiplex.py``).  Parallel dispatch chunks
   candidates over the persistent pool and multiplexes within each
   chunk (the cheap-batch threshold counts candidates x arrival events,
   since each replay simulates every arrival); a candidate whose replay
   fails falls back to its own serial replay, so error isolation
   matches the one-at-a-time path;
4. **score** — each record's ``time_s`` is the stream's makespan,
   ``energy_j`` the total including idle gaps between arrivals, and
   ``latency`` a :class:`~repro.search.evaluators.LatencyProfile`
   (mean/p50/p95/p99/worst-case response time under queueing), which
   :meth:`SearchResult.best_under_latency_sla` and the
   ``response_*_s`` export columns read.

Adaptive search
---------------

When the space outgrows enumeration, :meth:`Study.optimize
<repro.study.Study.optimize>` (or a hand-built :class:`OptimizationLoop`)
searches it adaptively.  One optimization executes as its own loop *on
top of* the five-stage pipeline above:

1. **propose** — the :class:`Optimizer` asks for a batch: seeded samples
   (:class:`RandomSearch`), a racing pool with an entry-count rung
   (:class:`SuccessiveHalving`), or mutants of the current frontier
   (:class:`LocalSearch`), all drawn from a :class:`SearchSpace` whose
   axes may be grid-derived choices or open ranges;
2. **evaluate** — :meth:`DesignSpaceSearch.evaluate_batch` runs the batch
   through the ordinary search pipeline (dedupe by candidate key, label
   collisions suffixed), so per-entry memoization, the
   :class:`EvaluationCache`, and the persistent pool are reused verbatim
   and every record is bit-identical to a grid sweep of that candidate;
3. **subsample** — partial-fidelity rungs score candidates on the
   heaviest-weight prefix of the workload's entries; promotion to a
   larger rung pays only for the entries it adds, because the per-entry
   cache rows are workload-independent;
4. **archive** — full-fidelity records accumulate in the Pareto archive
   (the eventual :class:`~repro.study.OptimizationResult` points), and
   each batch appends an evaluations-vs-frontier-quality
   :class:`TrajectoryPoint`;
5. **stop** — on the optimizer finishing, the fresh-evaluation budget
   running out, or ``patience`` batches without a frontier change.

Because optimizer evaluations and grid sweeps share one keyspace, an
optimization warms a later exhaustive sweep (and vice versa): on the
216-design reference space, seeded :class:`SuccessiveHalving` recovers
the exhaustive knee with roughly a third of the grid's fresh
evaluations.

Dynamic control policies
------------------------

``SearchSpace(..., policies=(...))`` (or
:meth:`SearchSpace.from_grid(grid, policies=...)
<repro.search.space.SearchSpace.from_grid>`) crosses every design with a
:class:`~repro.policy.policies.ControlPolicy`, making **(design x
policy)** the searched object: each point is a
:class:`~repro.policy.candidate.PolicyCandidate` that quacks like a
design candidate (label, namespaced ``key()``, cluster accessors), so
enumeration, memoization, Pareto ranking, SLA selection, and export all
apply unchanged.  On timed traces the evaluator replays policy-bearing
candidates with the policy in charge of node power states and per-node
DVFS (control ticks every ``control_interval_s``); dynamic policies
cannot share the event-multiplexed loop — control ticks are
per-candidate events — so they fall back to serial replay automatically
while static policies and bare designs stay on the fast path.  Records
gain ``policy`` / ``gated_node_seconds`` / ``energy_saved_j``
annotations, and policy keys are disjoint from design-only keys in both
directions, so a cached design row can never masquerade as a policy run
(nor vice versa).

Evaluating under failure
------------------------

The frontier above assumes every node stays healthy for the whole
trace; :mod:`repro.faults` asks what the same candidates cost when they
do not.  ``trace.with_faults(schedule)`` binds a timed trace to a
:class:`~repro.faults.schedule.FaultSchedule` of typed, seeded events —
:class:`~repro.faults.schedule.NodeCrash` (a forced power-gate with
zero notice, recovery priced as a reboot),
:class:`~repro.faults.schedule.Straggler` (a DVFS-style frequency
multiplier), :class:`~repro.faults.schedule.NetworkDegrade` (scaled
switch capacity) — built by hand or by the canonical generators
(:func:`~repro.faults.generators.random_crashes`,
:func:`~repro.faults.generators.rolling_restart`,
:func:`~repro.faults.generators.correlated_rack_failure`).  The
resulting :class:`~repro.faults.trace.FaultedTrace` satisfies the timed
protocol, so ``search(grid, trace.with_faults(...))`` needs no new
entry point:

1. **routing** — fault events are per-candidate (node indices wrap per
   cluster size, retry backoffs reschedule per run), so a non-empty
   schedule routes every candidate down the exact serial replay path —
   the same rule dynamic policies use.  An *empty* schedule rides the
   multiplexed fast path and is bit-identical to the bare trace;
2. **failure semantics** — a crash kills every in-flight job owning the
   dead node; the :class:`~repro.faults.schedule.FailurePolicy` either
   re-queues them with capped exponential backoff
   (:meth:`~repro.faults.schedule.FailurePolicy.abort_and_retry`, the
   default) or sheds them (:meth:`~repro.faults.schedule.FailurePolicy
   .drop`).  With ``replication_factor`` set, each candidate gets a
   chained-declustering :class:`~repro.pstore.replication
   .ReplicatedLayout` sized to its cluster, and a crash stranding every
   copy of a partition makes the candidate infeasible-under-fault
   (a :class:`~repro.errors.SimulationError` naming the lost
   partitions) instead of silently continuing;
3. **cache** — ``FaultedTrace.cache_key()`` namespaces the trace's key
   with the schedule's, the failure policy's, and the replication
   settings, so degraded rows and healthy rows can never be served for
   each other;
4. **score** — degraded records put their response-time profile in
   ``degraded_latency`` (``latency`` stays ``None``), plus
   ``recovery_energy_j``, ``retried_jobs``, ``dropped_jobs``, and
   ``faults_survived``; :meth:`SearchResult.best_under_degraded_sla`
   (and :func:`~repro.search.pareto.best_under_degraded_sla`) then
   selects the cheapest design that meets its SLA *while failing*,
   which is generally not the design
   :meth:`~SearchResult.best_under_latency_sla` picks at full health —
   that gap is the resilience premium the study measures.  The
   ``degraded_response_*_s`` / ``recovery_energy_j`` / ``retried_jobs``
   / ``dropped_jobs`` / ``faults_survived`` export columns carry all of
   it to CSV/JSON.

The search engine itself also tolerates faults on the *host* running
it: a worker-pool chunk that dies (worker crash, unpicklable result)
is retried once serially in-process, logged to the
``repro.search.engine`` logger, and counted on
:attr:`SearchResult.dispatch_retries`.

Multi-objective selection and TCO
---------------------------------

The selection rules above read a two-dimensional (time, energy) cloud;
real procurement decisions also price dollars and grams of CO₂.
:mod:`repro.costmodel` and :mod:`repro.search.objectives` make those
first-class objectives through the same stack:

1. **pricing** — a :class:`~repro.costmodel.model.CostModel` (per-node
   capex $/h, energy tariff $/kWh, grid carbon intensity gCO₂/kWh —
   flat or a time-of-day
   :class:`~repro.costmodel.carbon.CarbonIntensityCurve`) attaches to
   any evaluator (``cost_model=``) or study
   (:meth:`Study.with_cost_model <repro.study.Study.with_cost_model>`);
   every feasible record then carries ``carbon_g`` / ``price_usd``.
   Weights-only evaluations price carbon at the curve's cycle mean; a
   timed simulator replay integrates the curve *exactly* against its
   per-interval power timeline, so a diurnal gating policy earns its
   true trough-time carbon credit.  Cost aggregation is linear in
   (time, energy), so weight-summed suites price exactly; priced
   records cache under cost-model-fingerprinted keys, disjoint from
   unpriced rows;
2. **objectives** — :func:`pareto_frontier` / :func:`knee_point` (and
   the :class:`SearchResult` / :class:`~repro.study.StudyResult`
   methods, and ``Study.optimize(objectives=...)``) accept an
   ``objectives=`` axis list — names from the
   :mod:`repro.search.objectives` registry (``time_s``, ``energy_j``,
   ``edp``, ``price_usd``, ``carbon_g``) or custom
   :class:`~repro.search.objectives.Objective` instances.  Dominance
   generalizes componentwise; the knee generalizes from
   max-chord-distance to max-distance-from-the-endpoint-simplex (the
   hyperplane through the frontier's per-axis minimizers, which in two
   dimensions *is* the chord);
3. **budgeted picks** — :func:`~repro.search.objectives
   .best_under_budget` / :func:`~repro.search.objectives
   .best_under_carbon` select the fastest design under a dollar or
   carbon cap, the TCO counterparts of the SLA selectors;
4. **compatibility** — with no cost model and no ``objectives=``
   argument, every record, frontier, knee, and SLA pick is
   bit-identical to the classic behaviour (property-tested:
   the 2-objective configuration reproduces the legacy sweep exactly,
   and adding an objective never shrinks the frontier).

``examples/tco_study.py`` walks the 216-design diurnal campaign where
the energy-, price-, and carbon-optimal picks diverge;
``benchmarks/test_cost.py`` gates default-path parity and the exact
time-of-day integration.

Observing a search
------------------

:mod:`repro.telemetry` watches the whole pipeline above from the
inside.  ``repro.telemetry.enable()`` turns on a process-local registry
of counters and nested timed spans; every subsequent search records

* a root ``search`` span with one child per pipeline stage
  (``search.flatten`` / ``search.cache`` / ``search.dedupe`` /
  ``search.dispatch`` / ``search.aggregate``),
* ``cache.hit`` / ``cache.miss`` / ``cache.insert`` counters from the
  :class:`EvaluationCache` (plus ``cache.lock_retries`` when parallel
  shards contend for one sqlite store),
* per-chunk ``worker.chunk`` spans measured *inside* each pool worker
  and merged back under ``search.dispatch`` over the ordinary
  chunk-result channel, with ``search.dispatch.tasks`` / ``.chunks`` /
  ``.retries`` counters,
* simulator-side counters (``sim.events``, ``sim.control.*``,
  ``sim.faults.*``, ``sim.multiplex.*``) from whichever replay path the
  evaluation takes.

``Study.report()`` renders the registry as a stage-time breakdown,
:func:`repro.analysis.export.telemetry_to_json` serializes it, and
``examples/telemetry_report.py`` walks the reference 216-design
campaign.  Telemetry changes no result: counts are deterministic at a
fixed seed, wall times are measurements only (never part of a cache
key), and with telemetry disabled — the default — every hook is a
no-op (``benchmarks/test_telemetry.py`` gates the enabled overhead).

>>> from repro.hardware.presets import CLUSTER_V_NODE, WIMPY_LAPTOP_B
>>> from repro.search import DesignGrid, DesignSpaceSearch
>>> from repro.workloads.queries import section54_join
>>> grid = DesignGrid.paper_axis(CLUSTER_V_NODE, WIMPY_LAPTOP_B, 8)
>>> result = DesignSpaceSearch().search(grid, section54_join())
>>> len(result.pareto_frontier()) >= 1
True
"""

from repro.search.cache import CacheStats, EvaluationCache
from repro.search.engine import (
    DEFAULT_MIN_DISPATCH_TASKS,
    DesignSpaceSearch,
    SearchResult,
)
from repro.search.evaluators import (
    CallableEvaluator,
    EvaluatedDesign,
    LatencyProfile,
    ModelEvaluator,
    SearchEvaluator,
    SimulatorEvaluator,
)
from repro.search.grid import DesignCandidate, DesignGrid
from repro.search.objectives import (
    DEFAULT_OBJECTIVES,
    Objective,
    best_under_budget,
    best_under_carbon,
    dominates,
    frontier_nd,
    knee_nd,
    register_objective,
    resolve_objectives,
)
from repro.search.optimize import (
    LocalSearch,
    OptimizationLoop,
    Optimizer,
    Proposal,
    RandomSearch,
    SuccessiveHalving,
    TrajectoryPoint,
    build_optimizer,
)
from repro.search.pareto import (
    best_under_degraded_sla,
    best_under_latency_sla,
    best_under_sla,
    edp_optimal,
    knee_point,
    pareto_frontier,
)
from repro.search.space import ChoiceAxis, RangeAxis, SearchSpace

__all__ = [
    "CacheStats",
    "CallableEvaluator",
    "ChoiceAxis",
    "DEFAULT_MIN_DISPATCH_TASKS",
    "DEFAULT_OBJECTIVES",
    "DesignCandidate",
    "DesignGrid",
    "DesignSpaceSearch",
    "EvaluatedDesign",
    "EvaluationCache",
    "LatencyProfile",
    "LocalSearch",
    "ModelEvaluator",
    "Objective",
    "OptimizationLoop",
    "Optimizer",
    "Proposal",
    "RandomSearch",
    "RangeAxis",
    "SearchEvaluator",
    "SearchResult",
    "SearchSpace",
    "SimulatorEvaluator",
    "SuccessiveHalving",
    "TrajectoryPoint",
    "best_under_budget",
    "best_under_carbon",
    "best_under_degraded_sla",
    "best_under_latency_sla",
    "best_under_sla",
    "build_optimizer",
    "dominates",
    "edp_optimal",
    "frontier_nd",
    "knee_nd",
    "knee_point",
    "pareto_frontier",
    "register_objective",
    "resolve_objectives",
]
