"""Keyed memoization of design-point evaluations.

Sweeping a large grid repeatedly — with different SLAs, different
reference points, or after widening one axis — re-evaluates mostly the
same designs.  :class:`EvaluationCache` keys each
:class:`~repro.search.evaluators.EvaluatedDesign` by (evaluator
fingerprint, workload identity, candidate identity) so a repeated sweep
performs zero new model evaluations.  The engine stores two tiers under
one keyspace: per-entry records keyed by
:func:`~repro.workloads.protocol.entry_cache_key` (shared across every
workload containing that join) and workload-level aggregates keyed by the
workload's ``cache_key()`` (the warm-sweep fast path).

The cache is an in-memory dict by default; passing ``cache_path=``
persists every entry to a sqlite database under the same keys, so sweeps
survive process restarts and CI runs share a warm cache.  Entries whose
keys cannot be serialized (e.g. lambda-backed
:class:`~repro.search.evaluators.CallableEvaluator` fingerprints) stay
memory-only — persistence degrades gracefully instead of failing the
sweep.  Concurrent writers (parallel CI shards on one cache file) are
ridden out with a short retry-with-backoff on ``database is locked``, and
:meth:`EvaluationCache.merge` folds another shard's cache file into this
one.
"""

from __future__ import annotations

import logging
import pickle
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError
from repro.search.evaluators import EvaluatedDesign
from repro.telemetry import count as _telemetry_count

__all__ = ["CacheStats", "EvaluationCache"]

_LOG = logging.getLogger(__name__)

#: retry schedule for a locked sqlite store: total worst-case wait ~1.6 s
_LOCK_RETRIES = 6
_LOCK_BACKOFF_S = 0.025


def _is_locked(error: sqlite3.OperationalError) -> bool:
    message = str(error).lower()
    return "database is locked" in message or "database is busy" in message


def _with_lock_retry(operation):
    """Run ``operation`` (a no-arg callable), retrying on a locked store.

    WAL mode keeps readers and one writer concurrent, but two writers —
    parallel CI shards sharing a cache file — still collide.  A short
    exponential backoff rides out the other writer's commit instead of
    failing the sweep; a store that stays locked past the schedule is a
    real deadlock and the error propagates.  Each backoff warns on the
    ``repro.search.cache`` logger with the attempt count and cumulative
    wait, and bumps the ``cache.lock_retries`` telemetry counter —
    contended shards show up as slow, not silent.
    """
    waited_s = 0.0
    for attempt in range(_LOCK_RETRIES):
        try:
            return operation()
        except sqlite3.OperationalError as error:
            if not _is_locked(error) or attempt == _LOCK_RETRIES - 1:
                raise
            backoff_s = _LOCK_BACKOFF_S * (2**attempt)
            waited_s += backoff_s
            _telemetry_count("cache.lock_retries")
            _LOG.warning(
                "evaluation cache store is locked (%s); retrying "
                "(attempt %d of %d) after %.3fs backoff, %.3fs waited so far",
                error,
                attempt + 1,
                _LOCK_RETRIES - 1,
                backoff_s,
                waited_s,
            )
            time.sleep(backoff_s)


@dataclass(frozen=True)
class CacheStats:
    """Cumulative hit/miss counters of one cache."""

    hits: int
    misses: int
    entries: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class EvaluationCache:
    """Map from evaluation keys to evaluated designs, optionally on disk.

    Infeasible results are cached too: re-sweeping a grid with infeasible
    corners must not retry them.  With ``cache_path`` set, every
    serializable entry is also written to (and read back from) a sqlite
    table, so a fresh process starts warm.
    """

    def __init__(self, cache_path: str | Path | None = None) -> None:
        self._entries: dict[tuple, EvaluatedDesign] = {}
        self.hits = 0
        self.misses = 0
        self._db: sqlite3.Connection | None = None
        if cache_path is not None:
            self._db = sqlite3.connect(str(cache_path))
            _with_lock_retry(self._initialize_store)

    def _initialize_store(self) -> None:
        # WAL + NORMAL keeps the per-put commits cheap (no full-journal
        # fsync per design point on large sweeps) while staying durable
        # across clean process exits.
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute("PRAGMA synchronous=NORMAL")
        self._db.execute(
            "CREATE TABLE IF NOT EXISTS evaluations "
            "(key BLOB PRIMARY KEY, value BLOB NOT NULL)"
        )
        self._db.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
        )
        self._reconcile_version()
        self._db.commit()

    def _reconcile_version(self) -> None:
        """Drop persisted entries written by a different package version.

        Evaluator fingerprints identify *parameters*, not implementations;
        a model-code change inside one version is invisible to the keys.
        Stamping the package version bounds that staleness window to a
        release: bump ``repro.__version__`` (or delete the cache file) to
        invalidate every persisted entry.
        """
        import repro

        row = self._db.execute(
            "SELECT value FROM meta WHERE key = 'repro_version'"
        ).fetchone()
        if row is not None and row[0] == repro.__version__:
            return
        if row is not None:
            self._db.execute("DELETE FROM evaluations")
        self._db.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES ('repro_version', ?)",
            (repro.__version__,),
        )

    @property
    def persistent(self) -> bool:
        """Whether entries survive this process (a disk store is attached)."""
        return self._db is not None

    def get(self, key: tuple) -> EvaluatedDesign | None:
        """Look up one key, counting the hit or miss."""
        entry = self._entries.get(key)
        if entry is None and self._db is not None:
            entry = self._disk_get(key)
            if entry is not None:
                self._entries[key] = entry  # promote: later hits skip sqlite
        if entry is None:
            self.misses += 1
            _telemetry_count("cache.miss")
        else:
            self.hits += 1
            _telemetry_count("cache.hit")
        return entry

    def put(self, key: tuple, value: EvaluatedDesign) -> None:
        _telemetry_count("cache.insert")
        self._entries[key] = value
        if self._db is not None:
            self._disk_put(key, value)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        if self._db is not None:

            def wipe():
                self._db.execute("DELETE FROM evaluations")
                self._db.commit()

            _with_lock_retry(wipe)

    def merge(self, other_path: str | Path) -> int:
        """Import the persisted entries of another cache file.

        Parallel CI shards each warm their own cache file; merging folds
        them into one shared store.  Existing rows win (the stores hold
        the same deterministic evaluations, so either copy is correct);
        returns the number of newly imported rows.  The source must be a
        disk cache written by the same ``repro`` version — merging a
        stale store would smuggle version-invalidated entries past
        :meth:`_reconcile_version`.
        """
        if self._db is None:
            raise ConfigurationError(
                "merge() needs a disk-backed cache; pass cache_path= when "
                "constructing the EvaluationCache"
            )
        import repro

        def read_source() -> tuple:
            other = sqlite3.connect(str(other_path))
            try:
                version = other.execute(
                    "SELECT value FROM meta WHERE key = 'repro_version'"
                ).fetchone()
                entries = other.execute(
                    "SELECT key, value FROM evaluations"
                ).fetchall()
            finally:
                other.close()
            return version, entries

        try:
            row, rows = _with_lock_retry(read_source)
        except sqlite3.OperationalError as error:
            if _is_locked(error):
                raise  # a genuinely stuck shard, not a malformed file
            raise ConfigurationError(
                f"{other_path} is not an evaluation cache: {error}"
            ) from error
        if row is None or row[0] != repro.__version__:
            raise ConfigurationError(
                f"cannot merge {other_path}: written by repro version "
                f"{row[0] if row else 'unknown'}, this is {repro.__version__}"
            )

        def fold() -> int:
            # A retried fold may re-enter with the previous attempt's
            # transaction still open (commit was what failed); roll it
            # back so the before-count never sees uncommitted inserts.
            self._db.rollback()
            before = self._db.execute(
                "SELECT COUNT(*) FROM evaluations"
            ).fetchone()[0]
            self._db.executemany(
                "INSERT OR IGNORE INTO evaluations (key, value) VALUES (?, ?)",
                rows,
            )
            self._db.commit()
            after = self._db.execute(
                "SELECT COUNT(*) FROM evaluations"
            ).fetchone()[0]
            return after - before

        return _with_lock_retry(fold)

    def close(self) -> None:
        """Release the sqlite handle (no-op for memory-only caches)."""
        if self._db is not None:
            self._db.close()
            self._db = None

    @property
    def stats(self) -> CacheStats:
        return CacheStats(hits=self.hits, misses=self.misses, entries=len(self))

    def __len__(self) -> int:
        if self._db is not None:
            row = self._db.execute("SELECT COUNT(*) FROM evaluations").fetchone()
            # Every serializable-key entry is also on disk (put writes both
            # tiers), so the distinct count is the disk rows plus the
            # memory-only entries whose keys could never persist.  The
            # value-identity check alone decides that — pickling a tuple of
            # primitives cannot fail, so no need to serialize just to count.
            memory_only = sum(
                1 for key in self._entries if not self._value_identity(key)
            )
            return int(row[0]) + memory_only
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        """Membership test without touching the hit/miss counters."""
        if key in self._entries:
            return True
        if self._db is None:
            return False
        entry = self._disk_get(key)
        if entry is None:
            return False
        self._entries[key] = entry  # promote: the likely follow-up get() is free
        return True

    # ------------------------------------------------------------ disk tier
    def _disk_get(self, key: tuple) -> EvaluatedDesign | None:
        blob = self._serialize_key(key)
        if blob is None:
            return None
        row = self._db.execute(
            "SELECT value FROM evaluations WHERE key = ?", (blob,)
        ).fetchone()
        if row is None:
            return None
        try:
            return pickle.loads(row[0])
        except Exception:
            # A corrupt or version-incompatible row is a miss, not a crash:
            # drop it so the slot is re-evaluated and rewritten.
            def drop():
                self._db.execute("DELETE FROM evaluations WHERE key = ?", (blob,))
                self._db.commit()

            _with_lock_retry(drop)
            return None

    def _disk_put(self, key: tuple, value: EvaluatedDesign) -> None:
        blob = self._serialize_key(key)
        if blob is None:
            return
        try:
            payload = pickle.dumps(value)
        except Exception:
            return  # unpicklable result (custom evaluator payloads): memory only

        def write():
            self._db.execute(
                "INSERT OR REPLACE INTO evaluations (key, value) VALUES (?, ?)",
                (blob, payload),
            )
            self._db.commit()

        _with_lock_retry(write)

    @classmethod
    def _serialize_key(cls, key: tuple) -> bytes | None:
        """Pickle a key tuple, or None for keys that cannot leave memory.

        Only keys built entirely from value-identity primitives (names,
        counts, factors, formula strings) may persist.  Object-identity
        components — above all the function inside a
        :class:`~repro.search.evaluators.CallableEvaluator` fingerprint —
        are rejected even when picklable: a module-level function pickles
        by qualified *name*, so a persisted entry would silently survive
        edits to the function's body and serve stale results.
        """
        if not cls._value_identity(key):
            return None
        try:
            return pickle.dumps(key)
        except Exception:
            return None

    @classmethod
    def _value_identity(cls, part) -> bool:
        """True iff every leaf is a primitive whose equality is its value."""
        if isinstance(part, tuple):
            return all(cls._value_identity(item) for item in part)
        return part is None or isinstance(part, (str, int, float, bool, bytes))
