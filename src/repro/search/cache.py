"""Keyed memoization of design-point evaluations.

Sweeping a large grid repeatedly — with different SLAs, different
reference points, or after widening one axis — re-evaluates mostly the
same designs.  :class:`EvaluationCache` keys each
:class:`~repro.search.evaluators.EvaluatedDesign` by (evaluator
fingerprint, workload identity, candidate identity) so a repeated sweep
performs zero new model evaluations.

The cache is a plain in-memory dict; a disk-backed variant is a ROADMAP
follow-on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.search.evaluators import EvaluatedDesign

__all__ = ["CacheStats", "EvaluationCache"]


@dataclass(frozen=True)
class CacheStats:
    """Cumulative hit/miss counters of one cache."""

    hits: int
    misses: int
    entries: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class EvaluationCache:
    """In-memory map from evaluation keys to evaluated designs.

    Infeasible results are cached too: re-sweeping a grid with infeasible
    corners must not retry them.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple, EvaluatedDesign] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> EvaluatedDesign | None:
        """Look up one key, counting the hit or miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, key: tuple, value: EvaluatedDesign) -> None:
        self._entries[key] = value

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    @property
    def stats(self) -> CacheStats:
        return CacheStats(hits=self.hits, misses=self.misses, entries=len(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        """Membership test without touching the hit/miss counters."""
        return key in self._entries
