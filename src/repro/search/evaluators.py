"""Pluggable design-point evaluators for the search engine.

An evaluator turns a :class:`~repro.search.grid.DesignCandidate` plus a
:class:`~repro.workloads.protocol.Workload` into an
:class:`EvaluatedDesign` — response time, cluster energy, and (for
single-join analytical evaluations) the full model prediction.  Three
evaluators cover the repo's estimation stacks:

* :class:`ModelEvaluator` — the Section 5.3 analytical
  :class:`~repro.core.model.PStoreModel` (microseconds per point; the
  default);
* :class:`SimulatorEvaluator` — the fluid
  :class:`~repro.pstore.simulated.SimulatedPStore` executor (milliseconds
  per point, captures contention the closed-form model cannot);
* :class:`CallableEvaluator` — adapts a legacy
  ``(ClusterSpec, JoinWorkloadSpec) -> (time_s, energy_j)`` callable (the
  :class:`~repro.core.design_space.DesignSpaceExplorer` extension point).

Subclasses implement :meth:`SearchEvaluator.evaluate_query` for one join;
the shared :meth:`SearchEvaluator.evaluate` prices any workload — single
joins, :class:`~repro.workloads.suite.WorkloadSuite` mixes, arrival-trace
mixes — as the weight-summed cost of its entries, so suites inherit every
evaluator (and the engine's memoization and fan-out) for free.

Evaluators are plain picklable objects so the engine can ship them to
``multiprocessing`` workers; an infeasible evaluation raises
:class:`~repro.errors.ReproError`, which :func:`evaluate_entry` (the
engine's per-entry unit) and :func:`evaluate_design` (the workload-level
legacy entry point) convert into an infeasible :class:`EvaluatedDesign`
record (identically on the serial and parallel paths).  A workload is
infeasible on a design as soon as *any* of its entries is — a design must
run its whole workload.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.core.model import ModelParameters, Prediction, PStoreModel
from repro.costmodel.model import CostModel
from repro.errors import ConfigurationError, ModelError, ReproError
from repro.hardware.cluster import ClusterSpec
from repro.pstore.planner import plan_join
from repro.pstore.simulated import SimulatedPStore, trace_jobs
from repro.search.grid import DesignCandidate
from repro.simulator.engine import SimulationResult
from repro.simulator.multiplex import run_multiplexed
from repro.telemetry import capture, get_telemetry
from repro.workloads.protocol import TimedTrace, Workload, as_workload
from repro.workloads.queries import JoinWorkloadSpec

__all__ = [
    "EvaluatedDesign",
    "LatencyProfile",
    "SearchEvaluator",
    "ModelEvaluator",
    "SimulatorEvaluator",
    "CallableEvaluator",
    "evaluate_design",
    "evaluate_entry",
    "evaluate_entry_chunk",
    "evaluate_instrumented_chunk",
    "evaluate_timed_design",
    "evaluate_trace_chunk",
]


@dataclass(frozen=True)
class LatencyProfile:
    """Response-time distribution of one timed-trace evaluation.

    Summarizes the per-job response times (completion minus arrival,
    queueing delay included) that a stream simulation produced: the
    latency half of the latency/energy trade the paper's Section 2
    citations motivate.  Percentiles use the nearest-rank method over the
    sorted samples, so every reported value is an actually observed
    response time.
    """

    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float
    count: int

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyProfile":
        if not len(samples):
            raise ModelError("a latency profile needs at least one sample")
        ordered = sorted(float(sample) for sample in samples)

        def rank(q: float) -> float:
            return ordered[min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1)]

        return cls(
            mean_s=sum(ordered) / len(ordered),
            p50_s=rank(0.50),
            p95_s=rank(0.95),
            p99_s=rank(0.99),
            max_s=ordered[-1],
            count=len(ordered),
        )

    def value(self, metric: str) -> float:
        """One summary statistic by name: mean, p50, p95, p99, or max."""
        try:
            return getattr(self, f"{metric}_s")
        except AttributeError:
            raise ModelError(
                f"unknown latency metric {metric!r} "
                "(expected mean, p50, p95, p99, or max)"
            ) from None


@dataclass(frozen=True)
class EvaluatedDesign:
    """One evaluated (or infeasible) design point.

    ``latency`` is populated only by timed-trace evaluations (the design
    was scored by replaying an arrival schedule under queueing); on the
    weights-only path it stays ``None`` and records are bit-identical to
    the pre-latency ones.

    The ``policy`` / ``gated_node_seconds`` / ``energy_saved_j`` fields
    describe dynamic cluster control: for a
    :class:`~repro.policy.candidate.PolicyCandidate` they carry the
    policy's label and the run's gated node-seconds and energy saved
    versus keeping every node active-idle; for a bare design candidate
    all three stay ``None``.

    The fault fields are populated only by degraded-mode evaluations
    (the trace was a :class:`~repro.faults.trace.FaultedTrace` with a
    non-empty schedule): ``degraded_latency`` holds the response-time
    profile of the jobs that survived the scenario — ``latency`` stays
    ``None`` on those records, so healthy and degraded SLA selectors
    (:func:`~repro.search.pareto.best_under_latency_sla` vs
    :func:`~repro.search.pareto.best_under_degraded_sla`) can never pick
    from each other's population — ``recovery_energy_j`` the energy
    spent rebooting crashed nodes, ``retried_jobs`` / ``dropped_jobs``
    the failure policy's retry and shed counts, and ``faults_survived``
    the number of fault onsets the run absorbed.

    ``carbon_g`` / ``price_usd`` are populated only when the evaluator
    carries a :class:`~repro.costmodel.model.CostModel`: grams of CO₂
    (grid intensity — time-of-day-integrated on timed simulator runs)
    and dollars (capex amortization plus energy tariff).  Without a cost
    model both stay ``None`` and records are bit-identical to the
    pre-cost ones.
    """

    candidate: DesignCandidate
    time_s: float
    energy_j: float
    feasible: bool = True
    infeasible_reason: str = ""
    prediction: Prediction | None = None
    latency: LatencyProfile | None = None
    policy: str | None = None
    gated_node_seconds: float | None = None
    energy_saved_j: float | None = None
    degraded_latency: LatencyProfile | None = None
    recovery_energy_j: float | None = None
    retried_jobs: int | None = None
    dropped_jobs: int | None = None
    faults_survived: int | None = None
    carbon_g: float | None = None
    price_usd: float | None = None

    @property
    def label(self) -> str:
        return self.candidate.label

    @property
    def performance(self) -> float:
        """The paper's performance metric: inverse response time."""
        if self.time_s <= 0:
            raise ModelError(f"{self.label}: zero-duration point has no performance")
        return 1.0 / self.time_s

    @property
    def edp(self) -> float:
        """Energy-delay product in joule-seconds."""
        return self.energy_j * self.time_s


class SearchEvaluator(abc.ABC):
    """Maps one candidate + workload to time/energy."""

    #: whether :meth:`evaluate_trace` replays real arrival times.  Only
    #: stream-capable evaluators (the simulator) can price queueing; the
    #: engine refuses timed workloads on evaluators that cannot, instead
    #: of silently degrading to the weights-only aggregate.
    supports_timed: bool = False

    #: optional :class:`~repro.costmodel.model.CostModel` annotating
    #: feasible records with ``carbon_g`` / ``price_usd``.  ``None`` (the
    #: default) leaves every record bit-identical to pre-cost behaviour;
    #: dataclass evaluators override this with an instance field.
    cost_model: CostModel | None = None

    def _priced(self, record: EvaluatedDesign) -> EvaluatedDesign:
        """Annotate one feasible record with flat-rate cost fields.

        The weights-only pricing rule: carbon at the flat intensity (or
        a curve's cycle mean — there is no timeline to integrate), price
        from capex over ``time_s`` plus the tariff.  Both are linear in
        (time, energy), so pricing per entry and weight-summing equals
        pricing the weight-summed aggregate.  A ``None`` model is the
        identity.
        """
        model = self.cost_model
        if model is None or not record.feasible:
            return record
        return replace(
            record,
            carbon_g=model.carbon_g(record.energy_j),
            price_usd=model.price_usd(
                record.candidate, record.time_s, record.energy_j
            ),
        )

    def evaluate_trace(
        self, candidate: DesignCandidate, trace: TimedTrace
    ) -> EvaluatedDesign:
        """Evaluate one design by replaying a timed arrival trace.

        Stream-capable subclasses override this to simulate the trace's
        ``schedule()`` under queueing and attach a :class:`LatencyProfile`
        to the record; raise :class:`ReproError` if the trace is
        infeasible on the design.
        """
        raise ConfigurationError(
            f"{type(self).__name__} cannot simulate arrival times; evaluate "
            "timed traces with a stream-capable evaluator "
            "(e.g. SimulatorEvaluator), or reduce the trace to weights with "
            ".weights_only()"
        )

    def evaluate_trace_batch(
        self, trace: TimedTrace, candidates: Sequence[DesignCandidate]
    ) -> list[EvaluatedDesign]:
        """Replay one timed trace on several designs, one record each.

        Infeasible designs come back as infeasible *records* (never an
        exception), so a batch always yields ``len(candidates)`` results
        — the timed counterpart of :meth:`evaluate_query_batch`.  The
        default just loops :func:`evaluate_timed_design`; evaluators that
        can advance many independent simulations together override this
        (:class:`SimulatorEvaluator` multiplexes the whole batch onto one
        event loop) while producing bit-identical records.
        """
        get_telemetry().count("evaluator.trace_evals", len(candidates))
        return [
            evaluate_timed_design(self, candidate, trace)
            for candidate in candidates
        ]

    def evaluate(
        self, candidate: DesignCandidate, workload: Workload | JoinWorkloadSpec
    ) -> EvaluatedDesign:
        """Evaluate one design for any workload.

        A workload's cost is the weight-summed cost of its entries (the
        :func:`~repro.workloads.suite.evaluate_suite` aggregation rule);
        single-entry unit-weight workloads keep the per-query record —
        prediction attached — so the pre-redesign behaviour is preserved
        bit for bit.  Raises :class:`ReproError` if any entry is
        infeasible.
        """
        entries = as_workload(workload).weighted_queries()
        if len(entries) == 1 and entries[0].weight == 1.0:
            return self.evaluate_query(candidate, entries[0].query)
        total_time = 0.0
        total_energy = 0.0
        for query, weight in entries:
            point = self.evaluate_query(candidate, query)
            total_time += weight * point.time_s
            total_energy += weight * point.energy_j
        return self._priced(
            EvaluatedDesign(
                candidate=candidate, time_s=total_time, energy_j=total_energy
            )
        )

    @abc.abstractmethod
    def evaluate_query(
        self, candidate: DesignCandidate, query: JoinWorkloadSpec
    ) -> EvaluatedDesign:
        """Evaluate one design for one join; raise :class:`ReproError` if
        infeasible."""

    def evaluate_query_batch(
        self, candidate: DesignCandidate, queries: Sequence[JoinWorkloadSpec]
    ) -> list[EvaluatedDesign]:
        """Evaluate several joins on one design, one record per join.

        Infeasible joins come back as infeasible *records* (never an
        exception), so a batch always yields ``len(queries)`` results.
        Subclasses whose per-query setup is dominated by per-candidate
        work (cluster construction, simulator state) override this to
        amortize it — :class:`SimulatorEvaluator` does.
        """
        get_telemetry().count("evaluator.query_evals", len(queries))
        return [evaluate_entry(self, candidate, query) for query in queries]

    @abc.abstractmethod
    def fingerprint(self) -> tuple:
        """Deterministic identity used to partition the evaluation cache."""


@dataclass(frozen=True)
class ModelEvaluator(SearchEvaluator):
    """Analytical evaluation with the Section 5.3 closed-form model.

    Parameter semantics match :class:`DesignSpaceExplorer`: disk and NIC
    bandwidths come from the candidate's Beefy spec even for all-Wimpy
    designs (the paper's Section 5.4 uniformity assumption).
    """

    warm_cache: bool = False
    strict_paper_conditions: bool = False
    pipeline_cpu_cost: float = 1.0
    cost_model: CostModel | None = None

    def evaluate_query(
        self, candidate: DesignCandidate, query: JoinWorkloadSpec
    ) -> EvaluatedDesign:
        params = ModelParameters.from_specs(
            candidate.effective_beefy,
            candidate.num_beefy,
            candidate.effective_wimpy,
            candidate.num_wimpy,
        )
        model = PStoreModel(
            params,
            warm_cache=self.warm_cache,
            pipeline_cpu_cost=self.pipeline_cpu_cost,
            strict_paper_conditions=self.strict_paper_conditions,
        )
        prediction = model.predict(query, mode=candidate.mode)
        return self._priced(
            EvaluatedDesign(
                candidate=candidate,
                time_s=prediction.time_s,
                energy_j=prediction.energy_j,
                prediction=prediction,
            )
        )

    def fingerprint(self) -> tuple:
        base = (
            "model",
            self.warm_cache,
            self.strict_paper_conditions,
            self.pipeline_cpu_cost,
        )
        # cost-model identity appended ONLY when a model is attached, so
        # default cache keys (and persisted caches) stay bit-identical
        if self.cost_model is not None:
            return base + (self.cost_model.fingerprint(),)
        return base


@dataclass(frozen=True)
class SimulatorEvaluator(SearchEvaluator):
    """Fluid-simulator evaluation through the simulated P-store executor.

    The only shipped evaluator that can price *timed* workloads: a
    :class:`~repro.workloads.protocol.TimedTrace` is replayed through
    :meth:`~repro.pstore.simulated.SimulatedPStore.run_trace`, so queries
    arriving while earlier ones still run contend for the cluster, and
    the record carries the resulting :class:`LatencyProfile`.
    """

    warm_cache: bool = True
    pipeline_cpu_cost: float = 1.0
    receive_cpu_cost: float = 0.0
    concurrency: int = 1
    cost_model: CostModel | None = None

    supports_timed = True

    def evaluate_query(
        self, candidate: DesignCandidate, query: JoinWorkloadSpec
    ) -> EvaluatedDesign:
        cluster = candidate.cluster()
        plan = plan_join(
            cluster,
            query,
            warm_cache=self.warm_cache,
            pipeline_cpu_cost=self.pipeline_cpu_cost,
            receive_cpu_cost=self.receive_cpu_cost,
            force_mode=candidate.mode,
        )
        result = SimulatedPStore(cluster, record_intervals=False).run(
            plan, concurrency=self.concurrency
        )
        return self._priced(
            EvaluatedDesign(
                candidate=candidate,
                time_s=result.makespan_s,
                energy_j=result.energy_j,
            )
        )

    def evaluate_query_batch(
        self, candidate: DesignCandidate, queries: Sequence[JoinWorkloadSpec]
    ) -> list[EvaluatedDesign]:
        """Amortized batch: one cluster + simulated store for all joins.

        ``candidate.cluster()`` (DVFS variants, resource capacities) and
        the :class:`SimulatedPStore` construction are per-candidate work;
        each ``run()`` starts from fresh simulation state, so sharing the
        store across the batch returns exactly the per-query results.
        """
        get_telemetry().count("evaluator.query_evals", len(queries))
        cluster = candidate.cluster()
        store = SimulatedPStore(cluster, record_intervals=False)
        records = []
        for query in queries:
            try:
                plan = plan_join(
                    cluster,
                    query,
                    warm_cache=self.warm_cache,
                    pipeline_cpu_cost=self.pipeline_cpu_cost,
                    receive_cpu_cost=self.receive_cpu_cost,
                    force_mode=candidate.mode,
                )
                result = store.run(plan, concurrency=self.concurrency)
            except ReproError as exc:
                records.append(_infeasible_record(candidate, exc))
                continue
            records.append(
                self._priced(
                    EvaluatedDesign(
                        candidate=candidate,
                        time_s=result.makespan_s,
                        energy_j=result.energy_j,
                    )
                )
            )
        return records

    def evaluate_trace(
        self, candidate: DesignCandidate, trace: TimedTrace
    ) -> EvaluatedDesign:
        """Replay the trace's arrival schedule on this design, once.

        One simulation runs every event at its arrival time: the cluster
        and each distinct query's plan are built once, queries arriving
        mid-flight share the cluster (max-min fairly), and idle gaps
        between arrivals still draw engine-idle power.  The record's
        ``time_s`` is the stream's makespan, ``energy_j`` the total
        energy including idle stretches, and ``latency`` the distribution
        of per-job response times (completion minus arrival — queueing
        delay included).  ``concurrency`` does not apply here: the trace
        itself dictates how many queries are in flight.

        A :class:`~repro.policy.candidate.PolicyCandidate` replays with
        its control policy in charge of node power states (the ``policy``
        attribute is the only thing this evaluator inspects beyond the
        design-candidate surface); anything without one replays exactly
        as before.

        A :class:`~repro.faults.trace.FaultedTrace` with a non-empty
        schedule replays under fault injection and yields a *degraded*
        record: the latency profile lands in ``degraded_latency`` (with
        ``latency`` left ``None``), alongside the recovery energy and
        retry/drop counts.  A fault schedule the candidate cannot
        survive (replica coverage lost, or every job dropped) raises
        :class:`ReproError` like any other infeasibility.
        """
        cluster = candidate.cluster()
        # a time-of-day carbon curve integrates against the per-interval
        # power timeline; flat (or no) pricing keeps recording off
        record = self.cost_model is not None and self.cost_model.time_varying
        store = SimulatedPStore(cluster, record_intervals=record)
        faults = getattr(trace, "faults", None)
        if faults is not None and getattr(faults, "events", ()):
            result = store.run_trace(
                self._trace_schedule(cluster, candidate, trace),
                policy=getattr(candidate, "policy", None),
                control_interval_s=getattr(candidate, "control_interval_s", 1.0),
                faults=faults,
                failure_policy=trace.failure_policy,
                layout=trace.layout_for(candidate.num_nodes),
            )
            return self._degraded_record(candidate, result)
        result = store.run_trace(
            self._trace_schedule(cluster, candidate, trace),
            policy=getattr(candidate, "policy", None),
            control_interval_s=getattr(candidate, "control_interval_s", 1.0),
        )
        return self._trace_record(candidate, result)

    def _trace_schedule(
        self, cluster: ClusterSpec, candidate: DesignCandidate, trace: TimedTrace
    ) -> list[tuple[object, float]]:
        """The trace's (plan, arrival) schedule on one design; each
        distinct query is planned once."""
        plans: dict[JoinWorkloadSpec, object] = {}
        schedule = []
        for query, start_s in trace.schedule():
            plan = plans.get(query)
            if plan is None:
                plan = plans[query] = plan_join(
                    cluster,
                    query,
                    warm_cache=self.warm_cache,
                    pipeline_cpu_cost=self.pipeline_cpu_cost,
                    receive_cpu_cost=self.receive_cpu_cost,
                    force_mode=candidate.mode,
                )
            schedule.append((plan, start_s))
        return schedule

    def _price_timed(
        self, record: EvaluatedDesign, result: SimulationResult
    ) -> EvaluatedDesign:
        """Price one timed record against the run's actual timeline.

        A time-of-day carbon curve integrates the simulation's recorded
        intervals exactly — energy a gating policy shifted into the
        trough is credited at trough intensity; flat intensities price
        the energy total.  The priced figures are also stamped onto the
        (mutable) :class:`SimulationResult` so downstream analysis of the
        raw run sees the same numbers.  A ``None`` model is the identity.
        """
        model = self.cost_model
        if model is None:
            return record
        if model.time_varying:
            carbon = model.carbon_g_timed(result.intervals)
        else:
            carbon = model.carbon_g(record.energy_j)
        price = model.price_usd(record.candidate, record.time_s, record.energy_j)
        result.carbon_g = carbon
        result.price_usd = price
        return replace(record, carbon_g=carbon, price_usd=price)

    def _trace_record(
        self, candidate: DesignCandidate, result: SimulationResult
    ) -> EvaluatedDesign:
        """One stream simulation -> one timed design record.

        Policy-bearing candidates get the control annotations (policy
        label, gated node-seconds, energy saved); for a bare design those
        fields stay ``None`` and the record is bit-identical to before.
        """
        responses = [result.response_time_s(name) for name in result.job_completion_s]
        policy = getattr(candidate, "policy", None)
        record = EvaluatedDesign(
            candidate=candidate,
            time_s=result.makespan_s,
            energy_j=result.energy_j,
            latency=LatencyProfile.from_samples(responses),
            policy=policy.label if policy is not None else None,
            gated_node_seconds=(
                result.gated_node_seconds if policy is not None else None
            ),
            energy_saved_j=result.energy_saved_j if policy is not None else None,
        )
        return self._price_timed(record, result)

    def _degraded_record(
        self, candidate: DesignCandidate, result: SimulationResult
    ) -> EvaluatedDesign:
        """One fault-injected stream simulation -> one degraded record.

        The response-time profile of the surviving jobs goes to
        ``degraded_latency`` — never ``latency`` — so degraded records
        are invisible to healthy-SLA selection and vice versa.
        """
        responses = [result.response_time_s(name) for name in result.job_completion_s]
        policy = getattr(candidate, "policy", None)
        record = EvaluatedDesign(
            candidate=candidate,
            time_s=result.makespan_s,
            energy_j=result.energy_j,
            degraded_latency=LatencyProfile.from_samples(responses),
            policy=policy.label if policy is not None else None,
            gated_node_seconds=(
                result.gated_node_seconds if policy is not None else None
            ),
            energy_saved_j=result.energy_saved_j if policy is not None else None,
            recovery_energy_j=result.recovery_energy_j,
            retried_jobs=result.retried_jobs,
            dropped_jobs=result.dropped_jobs,
            faults_survived=result.faults_survived,
        )
        return self._price_timed(record, result)

    def evaluate_trace_batch(
        self, trace: TimedTrace, candidates: Sequence[DesignCandidate]
    ) -> list[EvaluatedDesign]:
        """Replay the trace on every design via one multiplexed event loop.

        Each candidate's cluster, plans, and jobs are built as in
        :meth:`evaluate_trace`; the simulations themselves then advance
        *together* through
        :func:`~repro.simulator.multiplex.run_multiplexed`, which batches
        the per-event allocation and energy arithmetic across designs and
        returns results bit-identical to serial replay — so the records
        (latency profiles included) match :func:`evaluate_timed_design`
        exactly.

        Error isolation matches the serial loop: a design whose plans
        cannot be built becomes an infeasible record, and if any lane
        fails *mid-simulation* (the multiplexed loop aborts as a whole)
        the batch falls back to serial per-candidate replay so one broken
        design cannot poison its batchmates.

        Candidates carrying a *dynamic* control policy cannot share the
        multiplexed event loop (control ticks and power-state transitions
        are per-candidate events); they fall back to serial
        :func:`evaluate_timed_design` automatically.  Static policies and
        bare designs stay on the fast path.

        Fault-injected traces follow the same rule: fault events are
        per-candidate (node indices wrap per cluster size, retries
        reschedule per run), so a
        :class:`~repro.faults.trace.FaultedTrace` with a non-empty
        schedule routes every candidate down the exact serial path.  An
        *empty* schedule rides the multiplexed loop and is bit-identical
        to the bare trace.

        A *time-varying* carbon curve also routes every candidate down
        the serial path: exact integration needs each run's recorded
        interval timeline, which the multiplexed fast path does not keep.
        Flat-rate cost models price from the energy total and stay on the
        fast path.
        """
        telemetry = get_telemetry()
        telemetry.count("evaluator.trace_evals", len(candidates))
        faults = getattr(trace, "faults", None)
        faulted = faults is not None and bool(getattr(faults, "events", ()))
        timed_cost = self.cost_model is not None and self.cost_model.time_varying
        records: list[EvaluatedDesign | None] = [None] * len(candidates)
        runs: list[tuple[int, DesignCandidate, object, list]] = []
        for position, candidate in enumerate(candidates):
            policy = getattr(candidate, "policy", None)
            if faulted or timed_cost or (policy is not None and not policy.is_static):
                records[position] = evaluate_timed_design(self, candidate, trace)
                continue
            try:
                cluster = candidate.cluster()
                store = SimulatedPStore(cluster, record_intervals=False)
                jobs = trace_jobs(self._trace_schedule(cluster, candidate, trace))
            except ConfigurationError:
                raise
            except ReproError as exc:
                records[position] = _infeasible_record(candidate, exc)
                continue
            runs.append((position, candidate, store.simulator, jobs))
        if runs:
            try:
                with telemetry.span("sim.multiplexed"):
                    results = run_multiplexed(
                        [(simulator, jobs) for _, _, simulator, jobs in runs]
                    )
            except ReproError:
                telemetry.count("evaluator.multiplex_fallbacks", len(runs))
                for position, candidate, _, _ in runs:
                    records[position] = evaluate_timed_design(
                        self, candidate, trace
                    )
            else:
                for (position, candidate, _, _), result in zip(runs, results):
                    records[position] = self._trace_record(candidate, result)
        return records

    def fingerprint(self) -> tuple:
        base = (
            "simulator",
            self.warm_cache,
            self.pipeline_cpu_cost,
            self.receive_cpu_cost,
            self.concurrency,
        )
        # appended ONLY when a model is attached — see ModelEvaluator
        if self.cost_model is not None:
            return base + (self.cost_model.fingerprint(),)
        return base


class CallableEvaluator(SearchEvaluator):
    """Adapts a legacy ``(cluster, query) -> (time_s, energy_j)`` callable.

    Closures are not generally picklable, so searches driven by a
    :class:`CallableEvaluator` should stay on the serial path (the engine
    enforces this by refusing to fan out unpicklable evaluators).
    """

    def __init__(
        self,
        fn: Callable[[ClusterSpec, JoinWorkloadSpec], tuple[float, float]],
        cost_model: CostModel | None = None,
    ):
        self._fn = fn
        self.cost_model = cost_model

    def evaluate_query(
        self, candidate: DesignCandidate, query: JoinWorkloadSpec
    ) -> EvaluatedDesign:
        time_s, energy_j = self._fn(candidate.cluster(), query)
        return self._priced(
            EvaluatedDesign(candidate=candidate, time_s=time_s, energy_j=energy_j)
        )

    def fingerprint(self) -> tuple:
        # The callable itself (functions hash by identity): cache keys
        # hold a strong reference, so a recycled id() can never alias two
        # different callables in a shared cache.
        if self.cost_model is not None:
            return ("callable", self._fn, self.cost_model.fingerprint())
        return ("callable", self._fn)


def _infeasible_record(
    candidate: DesignCandidate, exc: ReproError
) -> EvaluatedDesign:
    """The canonical infeasible record for one failed evaluation."""
    policy = getattr(candidate, "policy", None)
    return EvaluatedDesign(
        candidate=candidate,
        time_s=float("inf"),
        energy_j=float("inf"),
        feasible=False,
        infeasible_reason=str(exc),
        policy=policy.label if policy is not None else None,
    )


def evaluate_design(
    evaluator: SearchEvaluator,
    candidate: DesignCandidate,
    workload: Workload | JoinWorkloadSpec,
) -> EvaluatedDesign:
    """Evaluate one candidate, mapping infeasibility to a record.

    Workload-granular legacy entry point (kept for external callers and
    old-vs-new benchmarking); the engine itself now evaluates per entry
    through :func:`evaluate_entry` and aggregates in
    :mod:`repro.search.engine`.
    """
    try:
        return evaluator.evaluate(candidate, workload)
    except ReproError as exc:
        return _infeasible_record(candidate, exc)


def evaluate_entry(
    evaluator: SearchEvaluator,
    candidate: DesignCandidate,
    query: JoinWorkloadSpec,
) -> EvaluatedDesign:
    """Evaluate one (candidate, query) task, mapping infeasibility to a
    record.

    This is the engine's unit of evaluation: both the serial loop and the
    worker processes funnel every task through here (directly or via
    :meth:`SearchEvaluator.evaluate_query_batch`), so the parallel path
    is guaranteed to produce identical per-entry results to the serial
    one.
    """
    try:
        return evaluator.evaluate_query(candidate, query)
    except ReproError as exc:
        return _infeasible_record(candidate, exc)


def evaluate_chunk(
    payload: tuple[SearchEvaluator, Workload, Sequence[DesignCandidate]],
) -> list[EvaluatedDesign]:
    """Worker entry point for workload-granular dispatch (legacy)."""
    evaluator, workload, candidates = payload
    return [evaluate_design(evaluator, candidate, workload) for candidate in candidates]


def evaluate_timed_design(
    evaluator: SearchEvaluator,
    candidate: DesignCandidate,
    trace: TimedTrace,
) -> EvaluatedDesign:
    """Evaluate one (candidate, timed trace) task, mapping infeasibility
    to a record.

    The timed counterpart of :func:`evaluate_entry`: the unit both the
    serial loop and the worker processes funnel timed tasks through, so
    the parallel path is guaranteed identical to the serial one.  An
    evaluator that cannot replay arrival times at all is a configuration
    error, not an infeasible design — that propagates.
    """
    try:
        return evaluator.evaluate_trace(candidate, trace)
    except ConfigurationError:
        raise
    except ReproError as exc:
        return _infeasible_record(candidate, exc)


def evaluate_trace_chunk(
    payload: tuple[SearchEvaluator, TimedTrace, Sequence[DesignCandidate]],
) -> list[EvaluatedDesign]:
    """Worker entry point: replay one timed trace on a chunk of designs.

    Timed evaluation cannot flatten to per-entry tasks (queueing couples
    a trace's queries), so the dispatch unit is the whole trace per
    candidate; chunks group candidates.  The chunk funnels through
    :meth:`SearchEvaluator.evaluate_trace_batch` — the same unit as the
    serial path — so stream-capable evaluators multiplex each chunk and
    parallel records stay identical to serial ones.
    """
    evaluator, trace, candidates = payload
    return evaluator.evaluate_trace_batch(trace, list(candidates))


def evaluate_instrumented_chunk(payload: tuple[Callable, tuple]):
    """Worker entry point wrapping another chunk function with telemetry.

    ``payload`` is ``(chunk_fn, chunk_payload)``; the result is
    ``(records, TelemetrySnapshot)``.  The engine ships this wrapper only
    when the parent registry is enabled at dispatch time — the decision
    travels in the payload, never in fork-inherited state, so a pool
    created before ``telemetry.enable()`` still measures.  The chunk
    runs inside :func:`repro.telemetry.capture` for two reasons: a
    worker's inherited registry (usually disabled) stays untouched, and
    the engine's serial in-process retry of a failed chunk cannot
    corrupt the parent registry mid-``search.dispatch``.  The per-chunk
    ``worker.chunk`` span is the dispatch-latency measurement the parent
    merges beneath its dispatch span.
    """
    fn, inner = payload
    with capture() as telemetry:
        with telemetry.span("worker.chunk"):
            records = fn(inner)
        return records, telemetry.snapshot()


def evaluate_entry_chunk(
    payload: tuple[
        SearchEvaluator,
        Sequence[tuple[DesignCandidate, Sequence[JoinWorkloadSpec]]],
    ],
) -> list[EvaluatedDesign]:
    """Worker entry point: evaluate one chunk of per-entry tasks.

    Tasks arrive grouped by candidate — ``(candidate, queries)`` batches —
    so evaluators with per-candidate setup cost amortize it via
    :meth:`SearchEvaluator.evaluate_query_batch`.  Results come back
    flattened in task order.
    """
    evaluator, batches = payload
    records: list[EvaluatedDesign] = []
    for candidate, queries in batches:
        records.extend(evaluator.evaluate_query_batch(candidate, queries))
    return records
