"""Multi-dimensional design grids for the search engine.

The paper's design space (Section 5.4) is one axis — Beefy/Wimpy mixes of
a fixed-size cluster.  :class:`DesignGrid` generalizes it to the cross
product of

* node-type pairs (which Beefy and which Wimpy hardware),
* cluster sizes,
* Beefy/Wimpy splits of each size (the paper's ``xB,yW`` axis),
* cluster-wide DVFS states (frequency factors, Section 1's "dynamically
  control their power/performance trade-offs"),
* per-node-type DVFS overrides (asymmetric Beefy/Wimpy frequency states,
  ``beefy_frequency_factors`` / ``wimpy_frequency_factors``),
* execution modes (homogeneous / heterogeneous / model-chosen).

Each point of the grid is a :class:`DesignCandidate` — a frozen, picklable
record carrying everything an evaluator needs, plus a deterministic
:meth:`DesignCandidate.key` used by the evaluation cache.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import ConfigurationError
from repro.hardware.cluster import ClusterSpec
from repro.hardware.dvfs import dvfs_variant
from repro.hardware.node import NodeSpec
from repro.pstore.plans import ExecutionMode
from repro.workloads.protocol import join_cache_key
from repro.workloads.queries import JoinWorkloadSpec

__all__ = ["DesignCandidate", "DesignGrid", "query_key", "unique_labels"]


def _spec_key(spec: NodeSpec) -> tuple:
    """Deterministic identity of a node spec for cache keys.

    Covers every field an evaluator can read — the power model enters via
    its formula string, which encodes the model class and parameters.
    """
    return (
        spec.name,
        spec.cpu_bandwidth_mbps,
        spec.memory_mb,
        spec.disk_bandwidth_mbps,
        spec.nic_bandwidth_mbps,
        spec.engine_base_utilization,
        spec.cores,
        spec.threads,
        spec.power_model.formula(),
    )


def candidate_label(
    beefy: NodeSpec,
    wimpy: NodeSpec,
    num_beefy: int,
    num_wimpy: int,
    *,
    multi_pair: bool = False,
    multi_size: bool = False,
    multi_freq: bool = False,
    multi_beefy: bool = False,
    multi_wimpy: bool = False,
    multi_mode: bool = False,
    frequency_factor: float = 1.0,
    beefy_factor: float | None = None,
    wimpy_factor: float | None = None,
    mode=None,
) -> str:
    """The canonical display label of one design point.

    Shared by :meth:`DesignGrid.candidates` and
    :meth:`~repro.search.space.SearchSpace.sample`, so a sampled
    candidate and the identical grid point always carry the same label:
    each ``multi_*`` flag says whether that axis varies in the enclosing
    space (an axis that cannot vary is omitted from labels, like the
    paper's plain ``xB,yW`` names).
    """
    parts = [f"{num_beefy}B,{num_wimpy}W"]
    if multi_pair:
        parts.append(f"{beefy.name}+{wimpy.name}")
    if multi_size:
        parts.append(f"n{num_beefy + num_wimpy}")
    if multi_freq or frequency_factor != 1.0:
        parts.append(f"phi{frequency_factor:g}")
    if beefy_factor is not None and (multi_beefy or beefy_factor != 1.0):
        parts.append(f"phiB{beefy_factor:g}")
    if wimpy_factor is not None and (multi_wimpy or wimpy_factor != 1.0):
        parts.append(f"phiW{wimpy_factor:g}")
    if multi_mode and mode is not None:
        parts.append(mode.value)
    return "|".join(parts)


def query_key(query: JoinWorkloadSpec) -> tuple:
    """Deterministic identity of one join spec for cache keys.

    Kept as a re-export shim; the canonical definition lives with the
    :class:`~repro.workloads.protocol.Workload` protocol
    (:func:`~repro.workloads.protocol.join_cache_key`).
    """
    return join_cache_key(query)


@dataclass(frozen=True)
class DesignCandidate:
    """One point of the design space, ready for evaluation.

    ``frequency_factor`` applies cluster-wide DVFS: both node types are
    scaled with :func:`~repro.hardware.dvfs.dvfs_variant` before being
    handed to the evaluator.  ``beefy_frequency_factor`` and
    ``wimpy_frequency_factor`` override it per node type (e.g. Beefies at
    0.8 with Wimpies at nominal clock); each defaults to the cluster-wide
    factor.  ``homogeneous`` marks size-sweep points whose cluster should
    be a plain homogeneous spec (no empty Wimpy group).
    """

    label: str
    beefy: NodeSpec
    wimpy: NodeSpec
    num_beefy: int
    num_wimpy: int
    frequency_factor: float = 1.0
    mode: ExecutionMode | None = None
    homogeneous: bool = False
    beefy_frequency_factor: float | None = None
    wimpy_frequency_factor: float | None = None

    def __post_init__(self) -> None:
        if self.num_beefy < 0 or self.num_wimpy < 0:
            raise ConfigurationError("node counts must be >= 0")
        if self.num_beefy + self.num_wimpy == 0:
            raise ConfigurationError(f"candidate {self.label!r} has no nodes")
        for factor in (
            self.frequency_factor,
            self.effective_beefy_frequency,
            self.effective_wimpy_frequency,
        ):
            if not 0.0 < factor <= 1.0:
                raise ConfigurationError(
                    f"frequency factor must be in (0, 1], got {factor}"
                )
        if self.homogeneous and self.num_wimpy:
            raise ConfigurationError(
                f"candidate {self.label!r}: homogeneous designs cannot have Wimpies"
            )

    # ------------------------------------------------------------- derived
    @property
    def num_nodes(self) -> int:
        return self.num_beefy + self.num_wimpy

    @property
    def effective_beefy_frequency(self) -> float:
        """The Beefy DVFS state: per-type override or the cluster factor."""
        if self.beefy_frequency_factor is not None:
            return self.beefy_frequency_factor
        return self.frequency_factor

    @property
    def effective_wimpy_frequency(self) -> float:
        """The Wimpy DVFS state: per-type override or the cluster factor."""
        if self.wimpy_frequency_factor is not None:
            return self.wimpy_frequency_factor
        return self.frequency_factor

    @property
    def effective_beefy(self) -> NodeSpec:
        """The Beefy spec with the candidate's DVFS state applied."""
        if self.effective_beefy_frequency == 1.0:
            return self.beefy
        return dvfs_variant(self.beefy, self.effective_beefy_frequency)

    @property
    def effective_wimpy(self) -> NodeSpec:
        """The Wimpy spec with the candidate's DVFS state applied."""
        if self.effective_wimpy_frequency == 1.0:
            return self.wimpy
        return dvfs_variant(self.wimpy, self.effective_wimpy_frequency)

    def cluster(self) -> ClusterSpec:
        """The candidate as a concrete cluster specification."""
        if self.homogeneous:
            return ClusterSpec.homogeneous(
                self.effective_beefy, self.num_beefy, name=self.label
            )
        return ClusterSpec.beefy_wimpy(
            self.effective_beefy,
            self.num_beefy,
            self.effective_wimpy,
            self.num_wimpy,
            name=self.label,
        )

    def key(self) -> tuple:
        """Deterministic cache key (independent of the display label).

        DVFS enters via the *resolved* per-type frequencies, so a
        cluster-wide factor and the equivalent pair of per-type overrides
        share one cache entry — they describe the same hardware.
        """
        return (
            _spec_key(self.beefy),
            _spec_key(self.wimpy),
            self.num_beefy,
            self.num_wimpy,
            self.effective_beefy_frequency,
            self.effective_wimpy_frequency,
            self.mode.value if self.mode is not None else None,
            self.homogeneous,
        )


@dataclass(frozen=True)
class DesignGrid:
    """The cross product of the search dimensions.

    ``mix_step`` thins the Beefy/Wimpy axis (a step of 2 on a 16-node
    cluster enumerates 16B, 14B, ... 0B); both endpoints — all-Beefy and
    all-Wimpy — are always included.

    ``beefy_frequency_factors`` / ``wimpy_frequency_factors`` add
    asymmetric DVFS axes: each enumerated value overrides the cluster-wide
    ``frequency_factors`` state for that node type only (Beefies throttled
    to 0.8 while Wimpies stay at nominal clock, and so on), so asymmetric
    states are grid points instead of hand-built candidate lists.  ``None``
    (the default) leaves the per-type state following the cluster-wide
    factor.
    """

    node_pairs: tuple[tuple[NodeSpec, NodeSpec], ...]
    cluster_sizes: tuple[int, ...]
    frequency_factors: tuple[float, ...] = (1.0,)
    modes: tuple[ExecutionMode | None, ...] = (None,)
    mix_step: int = 1
    beefy_frequency_factors: tuple[float, ...] | None = None
    wimpy_frequency_factors: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if not self.node_pairs:
            raise ConfigurationError("a design grid needs at least one node pair")
        if not self.cluster_sizes:
            raise ConfigurationError("a design grid needs at least one cluster size")
        if any(size <= 0 for size in self.cluster_sizes):
            raise ConfigurationError(f"cluster sizes must be > 0: {self.cluster_sizes}")
        if len(set(self.cluster_sizes)) != len(self.cluster_sizes):
            raise ConfigurationError(f"duplicate cluster sizes: {self.cluster_sizes}")
        if not self.frequency_factors:
            raise ConfigurationError("a design grid needs at least one frequency factor")
        for factor in self.frequency_factors:
            if not 0.0 < factor <= 1.0:
                raise ConfigurationError(
                    f"frequency factors must be in (0, 1], got {factor}"
                )
        if not self.modes:
            raise ConfigurationError("a design grid needs at least one mode entry")
        if self.mix_step < 1:
            raise ConfigurationError(f"mix_step must be >= 1, got {self.mix_step}")
        for axis_name, axis in (
            ("beefy_frequency_factors", self.beefy_frequency_factors),
            ("wimpy_frequency_factors", self.wimpy_frequency_factors),
        ):
            if axis is None:
                continue
            if not axis:
                raise ConfigurationError(
                    f"{axis_name} must be None or non-empty"
                )
            for factor in axis:
                if not 0.0 < factor <= 1.0:
                    raise ConfigurationError(
                        f"{axis_name} must be in (0, 1], got {factor}"
                    )
        if (
            self.beefy_frequency_factors is not None
            and self.wimpy_frequency_factors is not None
            and self.frequency_factors != (1.0,)
        ):
            # Both per-type overrides present: every candidate ignores the
            # cluster-wide factor, so a non-trivial frequency_factors axis
            # would only enumerate duplicate hardware states.
            raise ConfigurationError(
                "frequency_factors is shadowed when both "
                "beefy_frequency_factors and wimpy_frequency_factors are "
                "set; drop it (the per-type axes define every DVFS state)"
            )

    # ------------------------------------------------------------- builders
    @classmethod
    def paper_axis(
        cls, beefy: NodeSpec, wimpy: NodeSpec, cluster_size: int
    ) -> "DesignGrid":
        """The paper's single-row space: ``8B,0W ... 0B,8W`` at one size."""
        return cls(node_pairs=((beefy, wimpy),), cluster_sizes=(cluster_size,))

    # ---------------------------------------------------------- enumeration
    def _beefy_counts(self, size: int) -> list[int]:
        counts = set(range(size, -1, -self.mix_step))
        counts.add(0)  # all-Wimpy endpoint even when the step skips it
        return sorted(counts, reverse=True)

    def __len__(self) -> int:
        mixes = sum(len(self._beefy_counts(size)) for size in self.cluster_sizes)
        return (
            len(self.node_pairs)
            * mixes
            * len(self.frequency_factors)
            * len(self.beefy_frequency_factors or (None,))
            * len(self.wimpy_frequency_factors or (None,))
            * len(self.modes)
        )

    def candidates(self) -> Iterator[DesignCandidate]:
        """Yield every grid point in deterministic order with unique labels."""
        multi_pair = len(self.node_pairs) > 1
        multi_size = len(self.cluster_sizes) > 1
        multi_freq = len(self.frequency_factors) > 1
        multi_mode = len(self.modes) > 1
        beefy_axis = self.beefy_frequency_factors or (None,)
        wimpy_axis = self.wimpy_frequency_factors or (None,)
        multi_beefy = len(beefy_axis) > 1
        multi_wimpy = len(wimpy_axis) > 1
        for beefy, wimpy in self.node_pairs:
            for size in self.cluster_sizes:
                for num_beefy in self._beefy_counts(size):
                    num_wimpy = size - num_beefy
                    for factor in self.frequency_factors:
                        for beefy_factor in beefy_axis:
                            for wimpy_factor in wimpy_axis:
                                for mode in self.modes:
                                    label = candidate_label(
                                        beefy,
                                        wimpy,
                                        num_beefy,
                                        num_wimpy,
                                        multi_pair=multi_pair,
                                        multi_size=multi_size,
                                        multi_freq=multi_freq,
                                        multi_beefy=multi_beefy,
                                        multi_wimpy=multi_wimpy,
                                        multi_mode=multi_mode,
                                        frequency_factor=factor,
                                        beefy_factor=beefy_factor,
                                        wimpy_factor=wimpy_factor,
                                        mode=mode,
                                    )
                                    yield DesignCandidate(
                                        label=label,
                                        beefy=beefy,
                                        wimpy=wimpy,
                                        num_beefy=num_beefy,
                                        num_wimpy=num_wimpy,
                                        frequency_factor=factor,
                                        mode=mode,
                                        beefy_frequency_factor=beefy_factor,
                                        wimpy_frequency_factor=wimpy_factor,
                                    )

    def candidate_list(self) -> list[DesignCandidate]:
        return list(self.candidates())


def unique_labels(candidates: Sequence[DesignCandidate]) -> None:
    """Raise if two candidates share a display label."""
    counts = Counter(candidate.label for candidate in candidates)
    duplicates = sorted(label for label, count in counts.items() if count > 1)
    if duplicates:
        raise ConfigurationError(f"duplicate candidate labels: {duplicates}")
