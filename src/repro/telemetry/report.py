"""Rendering a telemetry registry as a human-readable run report.

:func:`span_rows` flattens the span tree into rows with derived *self
time* (a span's wall time minus its direct children's), :func:`attribution`
summarizes how much of the root spans' wall time named child spans
account for — with the unattributed remainder reported explicitly, never
hidden — and :func:`render_report` draws the whole registry as text:
span tree with per-row percentages, explicit ``(unattributed)`` lines,
then counters and gauges.

One caveat the report states inline: children of a parallel stage
(worker ``worker.chunk`` spans merged under ``search.dispatch``) measure
*in-worker* seconds, which overlap in wall time — their sum can exceed
the parent's wall time, and self time clamps at zero in that case.
"""

from __future__ import annotations

from typing import Any

from repro.telemetry.registry import Telemetry, TelemetrySnapshot

__all__ = ["attribution", "render_report", "span_rows"]


def _as_snapshot(source: Telemetry | TelemetrySnapshot) -> TelemetrySnapshot:
    if isinstance(source, Telemetry):
        return source.snapshot()
    return source


def span_rows(source: Telemetry | TelemetrySnapshot) -> list[dict[str, Any]]:
    """The span tree as rows in depth-first path order.

    Each row carries its full ``path``, display ``name`` (the path
    tail), ``depth``, ``calls``, ``total_s``, the summed wall time of
    its direct children (``child_s``), and ``self_s = max(0, total_s -
    child_s)`` — the time the span spent outside any named child.
    """
    snap = _as_snapshot(source)
    spans = snap.spans
    rows = []
    for path in sorted(spans):
        calls, total = spans[path]
        child_s = sum(
            t
            for p, (_, t) in spans.items()
            if len(p) == len(path) + 1 and p[: len(path)] == path
        )
        rows.append(
            {
                "path": path,
                "name": path[-1],
                "depth": len(path) - 1,
                "calls": calls,
                "total_s": total,
                "child_s": child_s,
                "self_s": max(0.0, total - child_s),
            }
        )
    return rows


def attribution(
    source: Telemetry | TelemetrySnapshot, root: str | None = None
) -> dict[str, float]:
    """How much root-span wall time named child spans account for.

    Considers every depth-0 span (or just ``root`` when given): the
    unattributed remainder is the roots' *self* time — wall seconds
    inside a root but outside every named child.  Returns ``total_s``,
    ``attributed_s``, ``unattributed_s``, and ``fraction`` (attributed
    over total; 1.0 for an empty registry, so "nothing measured" never
    reads as "nothing attributed").
    """
    rows = [
        row
        for row in span_rows(source)
        if row["depth"] == 0 and (root is None or row["name"] == root)
    ]
    total = sum(row["total_s"] for row in rows)
    unattributed = sum(row["self_s"] for row in rows)
    return {
        "total_s": total,
        "attributed_s": total - unattributed,
        "unattributed_s": unattributed,
        "fraction": (total - unattributed) / total if total > 0 else 1.0,
    }


def render_report(
    source: Telemetry | TelemetrySnapshot, title: str = "telemetry report"
) -> str:
    """The registry as a text report: span tree, counters, gauges.

    Percentages are relative to each row's *root* span.  Spans with
    children get an explicit ``(unattributed)`` row for their self time,
    so time not covered by any named child is always visible.
    """
    snap = _as_snapshot(source)
    lines = [title, "=" * len(title)]
    rows = span_rows(snap)
    if not rows and not snap.counters and not snap.gauges:
        lines.append("no telemetry recorded (repro.telemetry.enable() first?)")
        return "\n".join(lines)

    if rows:
        root_totals = {
            row["path"][0]: row["total_s"] for row in rows if row["depth"] == 0
        }

        def pct(path: tuple, seconds: float) -> str:
            root_total = root_totals.get(path[0], 0.0)
            if root_total <= 0:
                return "    -"
            return f"{100.0 * seconds / root_total:5.1f}"

        lines.append("")
        lines.append(
            "spans  (calls, wall seconds, % of root; parallel children "
            "overlap in wall time):"
        )
        for row in rows:
            indent = "  " * row["depth"]
            label = f"{indent}{row['name']}"
            lines.append(
                f"  {label:<40} {row['calls']:>8}x {row['total_s']:>10.4f}s"
                f"  {pct(row['path'], row['total_s'])}%"
            )
            if row["child_s"] > 0:
                sub = f"{indent}  (unattributed)"
                lines.append(
                    f"  {sub:<40} {'':>9} {row['self_s']:>10.4f}s"
                    f"  {pct(row['path'], row['self_s'])}%"
                )
        summary = attribution(snap)
        lines.append(
            f"  attributed to named spans: {summary['fraction']:.1%} of "
            f"{summary['total_s']:.4f}s root wall time "
            f"(unattributed {summary['unattributed_s']:.4f}s)"
        )

    if snap.counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(snap.counters):
            value = snap.counters[name]
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name:<42} {rendered:>12}")

    if snap.gauges:
        lines.append("")
        lines.append("gauges:")
        for name in sorted(snap.gauges):
            lines.append(f"  {name:<42} {snap.gauges[name]:>12g}")

    return "\n".join(lines)
