"""The process-local telemetry registry: counters, gauges, timed spans.

One :class:`Telemetry` object holds everything a run records:

* **counters** — monotonically accumulated numbers (``cache.hit``,
  ``sim.events``).  Counts are exact and deterministic: at a fixed seed,
  two runs of the same campaign produce identical counter values.
* **gauges** — last-write-wins observations (a pool size, a batch width).
* **spans** — nested timed sections.  ``with telemetry.span("x"):``
  measures wall time and call count under the *path* formed by the spans
  currently open on this registry's stack, so ``span("search")`` around
  ``span("search.dispatch")`` records ``("search",)`` and ``("search",
  "search.dispatch")`` separately and a report can attribute parent time
  to children.

The registry is **off-by-default-cheap**: with ``enabled`` false,
``span()`` returns a shared no-op context manager and ``count()`` /
``gauge()`` return after one attribute check — no allocation, no clock
read.  Times never feed back into any computation or cache key; only the
*content* (counts) is deterministic, the seconds are measurements.

Module-level helpers (:func:`get_telemetry`, :func:`span`,
:func:`count`, ...) operate on one process-wide *active* registry, so
instrumented code never threads a registry through its call chain.
:func:`capture` swaps in a fresh registry for a block — how worker
processes (and the engine's serial in-process chunk retry) measure into
an isolated registry whose picklable :meth:`Telemetry.snapshot` is
merged back into the parent with :meth:`Telemetry.merge`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterator

__all__ = [
    "Telemetry",
    "TelemetrySnapshot",
    "capture",
    "count",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_telemetry",
    "reset",
    "snapshot",
    "span",
]


@dataclass(frozen=True)
class TelemetrySnapshot:
    """A picklable, mergeable copy of one registry's content.

    ``spans`` maps a span *path* (tuple of span names, outermost first)
    to ``(calls, total_s)``.  Snapshots cross process boundaries — the
    worker pool ships one back per instrumented chunk — and fold into
    another registry via :meth:`Telemetry.merge`.
    """

    counters: dict[str, int | float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    spans: dict[tuple[str, ...], tuple[int, float]] = field(default_factory=dict)


class _NullSpan:
    """The shared no-op span of every disabled registry."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """One live timed section; created only when telemetry is enabled."""

    __slots__ = ("_registry", "_name", "_path", "_start")

    def __init__(self, registry: "Telemetry", name: str):
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Span":
        stack = self._registry._stack
        stack.append(self._name)
        self._path = tuple(stack)
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        elapsed = perf_counter() - self._start
        spans = self._registry._spans
        prev = spans.get(self._path)
        spans[self._path] = (
            (1, elapsed) if prev is None else (prev[0] + 1, prev[1] + elapsed)
        )
        self._registry._stack.pop()
        return False


class Telemetry:
    """One registry of counters, gauges, and nested timed spans."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._counters: dict[str, int | float] = {}
        self._gauges: dict[str, float] = {}
        self._spans: dict[tuple[str, ...], tuple[int, float]] = {}
        self._stack: list[str] = []

    # ------------------------------------------------------------- recording
    def span(self, name: str):
        """A context manager timing ``name`` under the open span path."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def count(self, name: str, n: int | float = 1) -> None:
        """Accumulate ``n`` onto counter ``name`` (no-op when disabled)."""
        if self.enabled:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Record the latest observation of ``name`` (no-op when disabled)."""
        if self.enabled:
            self._gauges[name] = value

    # --------------------------------------------------------------- reading
    @property
    def counters(self) -> dict[str, int | float]:
        return dict(self._counters)

    @property
    def gauges(self) -> dict[str, float]:
        return dict(self._gauges)

    @property
    def spans(self) -> dict[tuple[str, ...], tuple[int, float]]:
        return dict(self._spans)

    def counter(self, name: str, default: int | float = 0) -> int | float:
        """One counter's accumulated value (``default`` if never counted)."""
        return self._counters.get(name, default)

    def span_stats(self, name: str) -> tuple[int, float]:
        """Total ``(calls, seconds)`` of every span path ending in ``name``.

        A span recorded under several parents (``worker.chunk`` nested
        below ``search.dispatch`` of different searches, say) sums across
        its paths; ``(0, 0.0)`` if the name was never entered.
        """
        calls, total = 0, 0.0
        for path, (c, t) in self._spans.items():
            if path[-1] == name:
                calls += c
                total += t
        return calls, total

    # ------------------------------------------------------- snapshot / merge
    def snapshot(self) -> TelemetrySnapshot:
        """A picklable copy of everything recorded so far."""
        return TelemetrySnapshot(
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            spans=dict(self._spans),
        )

    def merge(
        self,
        other: "TelemetrySnapshot | Telemetry",
        at: tuple[str, ...] | None = None,
    ) -> None:
        """Fold another registry's content into this one.

        Counters add, gauges last-write-win, and span paths are nested
        under ``at`` — by default the spans currently open on this
        registry, so a worker snapshot merged while ``search.dispatch``
        is open lands its ``worker.chunk`` time *beneath* the dispatch
        span in the report tree.  Merging is commutative across
        snapshots (counter sums and span sums are order-independent up
        to float addition order), so chunk harvest order does not change
        counter content.  Merge is deliberately unguarded by
        ``enabled``: it folds explicit data the caller already collected.
        """
        if isinstance(other, Telemetry):
            other = other.snapshot()
        prefix = tuple(self._stack) if at is None else tuple(at)
        for name, value in other.counters.items():
            self._counters[name] = self._counters.get(name, 0) + value
        self._gauges.update(other.gauges)
        for path, (calls, total) in other.spans.items():
            full = prefix + path
            prev = self._spans.get(full)
            self._spans[full] = (
                (calls, total)
                if prev is None
                else (prev[0] + calls, prev[1] + total)
            )

    def reset(self) -> None:
        """Drop everything recorded; the enabled flag is untouched."""
        self._counters.clear()
        self._gauges.clear()
        self._spans.clear()
        self._stack.clear()


# --------------------------------------------------------- process-wide state
_ACTIVE = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-wide active registry instrumented code records into."""
    return _ACTIVE


def enable() -> Telemetry:
    """Turn collection on; returns the active registry.

    Idempotent, and deliberately *not* a reset — call :func:`reset`
    first for a fresh measurement window.
    """
    _ACTIVE.enabled = True
    return _ACTIVE


def disable() -> Telemetry:
    """Turn collection off (recorded content is kept); returns the registry."""
    _ACTIVE.enabled = False
    return _ACTIVE


def enabled() -> bool:
    """Whether the active registry is collecting."""
    return _ACTIVE.enabled


def span(name: str):
    """``get_telemetry().span(name)`` — module-level convenience."""
    return _ACTIVE.span(name)


def count(name: str, n: int | float = 1) -> None:
    """``get_telemetry().count(name, n)`` — module-level convenience."""
    _ACTIVE.count(name, n)


def gauge(name: str, value: float) -> None:
    """``get_telemetry().gauge(name, value)`` — module-level convenience."""
    _ACTIVE.gauge(name, value)


def reset() -> None:
    """Clear the active registry's recorded content."""
    _ACTIVE.reset()


def snapshot() -> TelemetrySnapshot:
    """A picklable copy of the active registry's content."""
    return _ACTIVE.snapshot()


@contextmanager
def capture(enabled: bool = True) -> Iterator[Telemetry]:
    """Swap a fresh registry in as the active one for the block.

    The two places this isolation matters:

    * **worker processes** — an instrumented chunk measures into a local
      registry (whatever the fork inherited stays untouched) and ships
      ``local.snapshot()`` back over the result channel;
    * **in-process chunk retries** — the engine re-runs a failed chunk's
      instrumented wrapper in the parent process; without capture the
      wrapper would record into (and worse, re-enter the span stack of)
      the registry that is mid-``search.dispatch``.

    The prior registry is restored on exit, exception or not.
    """
    global _ACTIVE
    prior = _ACTIVE
    local = Telemetry(enabled=enabled)
    _ACTIVE = local
    try:
        yield local
    finally:
        _ACTIVE = prior
